//! `distconv-cli` — plan, run and sweep distributed CNN layers from the
//! command line.
//!
//! ```text
//! distconv-cli plan  --nb 8 --nk 64 --nc 64 --nh 28 --nw 28 --nr 3 --ns 3 -p 64 -m 1048576
//! distconv-cli run   --nb 4 --nk 16 --nc 16 --nh 8 --nw 8 -p 8 -m 1048576 [--train]
//! distconv-cli sweep --nb 8 --nk 64 --nc 64 --nh 8 --nw 8 -p 64      # memory sweep
//! distconv-cli layers [batch] [procs]                                # preset table
//! ```
//!
//! All sizes are in elements (words); defaults produce a small,
//! sub-second demonstration.

use distconv::core::{run_training_step, DistConv};
use distconv::cost::presets::{resnet50, vgg16};
use distconv::cost::{Conv2dProblem, MachineSpec, Planner};
use distconv::simnet::MachineConfig;
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--").or_else(|| a.strip_prefix("-")) {
            if i + 1 < args.len() && !args[i + 1].starts_with('-') {
                out.insert(key.to_string(), args[i + 1].clone());
                i += 2;
                continue;
            }
            out.insert(key.to_string(), "true".to_string());
        }
        i += 1;
    }
    out
}

fn get(flags: &HashMap<String, String>, key: &str, default: usize) -> usize {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn problem_from(flags: &HashMap<String, String>) -> Conv2dProblem {
    Conv2dProblem::new(
        get(flags, "nb", 4),
        get(flags, "nk", 16),
        get(flags, "nc", 16),
        get(flags, "nh", 8),
        get(flags, "nw", 8),
        get(flags, "nr", 3),
        get(flags, "ns", 3),
        get(flags, "sw", 1),
        get(flags, "sh", 1),
    )
}

fn print_plan(plan: &distconv::cost::DistPlan) {
    let g = plan.grid;
    println!("  regime        : {}", plan.regime.name());
    println!(
        "  grid          : Pb={} Pk={} Pc={} Ph={} Pw={}  (P = {})",
        g.pb,
        g.pk,
        g.pc,
        g.ph,
        g.pw,
        g.total()
    );
    println!(
        "  work partition: Wb={} Wk={} Wc={} Wh={} Ww={}",
        plan.w.wb, plan.w.wk, plan.w.wc, plan.w.wh, plan.w.ww
    );
    println!(
        "  tiles         : Tb={} Tk={} Tc={} Th={} Tw={}",
        plan.t.tb, plan.t.tk, plan.t.tc, plan.t.th, plan.t.tw
    );
    println!(
        "  predicted     : cost_I {:.0} + cost_C {:.0} = cost_D {:.0} elems/rank",
        plan.predicted.cost_i, plan.predicted.cost_c, plan.predicted.cost_d
    );
    println!(
        "  memory (Eq.11): {:.0} / {} elems/rank",
        plan.predicted.footprint_gd, plan.machine.mem
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!(
            "usage: distconv-cli <plan|run|sweep|pareto|layers> [flags]  (see source header)"
        );
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "plan" => {
            let p = problem_from(&flags);
            let machine = MachineSpec::new(get(&flags, "p", 16), get(&flags, "m", 1 << 20));
            println!("layer: {p:?}");
            match Planner::new(p, machine).plan() {
                Ok(plan) => {
                    print_plan(&plan);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("  infeasible: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "run" => {
            let p = problem_from(&flags);
            let machine = MachineSpec::new(get(&flags, "p", 8), get(&flags, "m", 1 << 20));
            let seed = get(&flags, "seed", 42) as u64;
            let plan = match Planner::new(p, machine).plan() {
                Ok(pl) => pl,
                Err(e) => {
                    eprintln!("infeasible: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("layer: {p:?}");
            print_plan(&plan);
            if flags.contains_key("train") {
                match run_training_step::<f32>(plan, seed, MachineConfig::default()) {
                    Ok(r) => {
                        println!(
                            "  training step : measured {} elems (expected {})",
                            r.measured_volume(),
                            r.expected_total()
                        );
                        println!(
                            "  verified      : forward {} / gradient {}",
                            r.forward_verified, r.grad_verified
                        );
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("  FAILED: {e}");
                        ExitCode::FAILURE
                    }
                }
            } else {
                match DistConv::<f32>::new(plan).run_verified(seed) {
                    Ok(r) => {
                        println!(
                            "  measured      : {} elems (model {}, exact match {})",
                            r.measured_volume(),
                            r.expected.total(),
                            r.measured_volume() as u128 == r.expected.total()
                        );
                        println!(
                            "  peak memory   : {} elems/rank; sim time {:.3} ms; verified {}",
                            r.max_peak_mem(),
                            r.sim_time * 1e3,
                            r.verified
                        );
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("  FAILED: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
        }
        "sweep" => {
            let p = problem_from(&flags);
            let procs = get(&flags, "p", 16);
            println!("layer: {p:?}, P = {procs}");
            println!(
                "{:>10} {:>18} {:>8} {:>14} {:>14}",
                "M_D", "grid", "regime", "cost_D", "g_D"
            );
            for shift in 10..=24usize {
                let mem = 1usize << shift;
                match Planner::new(p, MachineSpec::new(procs, mem)).plan() {
                    Ok(plan) => {
                        let g = plan.grid;
                        println!(
                            "{:>10} {:>18} {:>8} {:>14.0} {:>14.0}",
                            format!("2^{shift}"),
                            format!("{}x{}x{}x{}x{}", g.pb, g.pk, g.pc, g.ph, g.pw),
                            plan.regime.name(),
                            plan.predicted.cost_d,
                            plan.predicted.footprint_gd
                        );
                    }
                    Err(_) => println!("{:>10} {:>18}", format!("2^{shift}"), "infeasible"),
                }
            }
            ExitCode::SUCCESS
        }
        "pareto" => {
            let p = problem_from(&flags);
            let procs = get(&flags, "p", 16);
            let planner = Planner::new(p, MachineSpec::new(procs, get(&flags, "m", 1 << 24)));
            let frontier = planner.pareto_frontier();
            println!("layer: {p:?}, P = {procs}");
            println!(
                "{:>18} {:>4} {:>8} {:>14} {:>14}",
                "grid", "Pc", "regime", "memory g_D", "cost_D"
            );
            for plan in &frontier {
                let g = plan.grid;
                println!(
                    "{:>18} {:>4} {:>8} {:>14.0} {:>14.0}",
                    format!("{}x{}x{}x{}x{}", g.pb, g.pk, g.pc, g.ph, g.pw),
                    g.pc,
                    plan.regime.name(),
                    plan.predicted.footprint_gd,
                    plan.predicted.cost_d
                );
            }
            ExitCode::SUCCESS
        }
        "layers" => {
            let batch = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(32);
            let procs = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(64);
            println!(
                "{:<24} {:>9} {:>14} {:>14}",
                "layer", "regime", "cost_C/rank", "cost_D/rank"
            );
            for l in resnet50(batch).into_iter().chain(vgg16(batch)) {
                match Planner::new(l.problem, MachineSpec::new(procs, 1 << 30)).plan() {
                    Ok(plan) => println!(
                        "{:<24} {:>9} {:>14.0} {:>14.0}",
                        l.name,
                        plan.regime.name(),
                        plan.predicted.cost_c,
                        plan.predicted.cost_d
                    ),
                    Err(e) => println!("{:<24} infeasible: {e}", l.name),
                }
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command {other:?}; expected plan|run|sweep|pareto|layers");
            ExitCode::FAILURE
        }
    }
}

//! # distconv — communication-efficient distributed CNN algorithms
//!
//! A reproduction of *“Brief Announcement: Efficient Distributed
//! Algorithms for Convolutional Neural Networks”* (Li, Xu,
//! Sukumaran-Rajam, Rountev, Sadayappan — SPAA 2021).
//!
//! This facade crate re-exports the whole workspace under one roof so
//! examples, integration tests and downstream users can write
//! `use distconv::...` without tracking the internal crate split:
//!
//! * [`tensor`] — dense 4-D tensors / matrices, halo arithmetic.
//! * [`cost`] — the paper's analytical data-movement model (Eq. 1–11),
//!   the Table-1/Table-2 closed-form tile-size solvers, and the planner
//!   that turns a layer + machine into a distributed execution plan.
//! * [`simnet`] — a thread-per-rank distributed-memory machine simulator
//!   with MPI-style communicators, collectives built from point-to-point
//!   messages, exact communication-volume accounting and per-rank memory
//!   capacity enforcement.
//! * [`conv`] — sequential CNN kernels and the global-virtual-memory
//!   tiled executor of the paper's Sec. 2.1.
//! * [`distmm`] — SUMMA-2D / 2.5D / 3D distributed matrix multiplication
//!   (the algorithms the paper generalizes).
//! * [`core`] — the paper's contribution: the distributed-memory CNN
//!   algorithm of Sec. 2.2 (plan → distribute → execute → reduce).
//! * [`baselines`] — the “simple and restricted schemes” the paper's
//!   introduction contrasts: data-, spatial- and filter-parallelism plus
//!   a Horovod-style gradient allreduce.
//! * [`serve`] — the admission/batching inference front-end: bounded
//!   queues with typed backpressure, latency-budgeted batch formation,
//!   multi-tenant cluster dispatch with crash recovery, and per-request
//!   SLO percentiles.
//!
//! ## Quickstart
//!
//! ```
//! use distconv::cost::{Conv2dProblem, MachineSpec, Planner};
//! use distconv::core::DistConv;
//!
//! // A small layer on 4 simulated ranks with 2^18 words of memory each.
//! let problem = Conv2dProblem::new(2, 8, 8, 8, 8, 3, 3, 1, 1);
//! let machine = MachineSpec::new(4, 1 << 18);
//! let plan = Planner::new(problem, machine).plan().expect("feasible plan");
//! let report = DistConv::<f32>::new(plan).run_verified(7).expect("run ok");
//! assert!(report.verified);
//! // Measured inter-rank traffic equals the schedule's exact model.
//! assert_eq!(report.measured_volume() as u128, report.expected.total());
//! ```

pub use distconv_baselines as baselines;
pub use distconv_conv as conv;
pub use distconv_core as core;
pub use distconv_cost as cost;
pub use distconv_distmm as distmm;
pub use distconv_par as par;
pub use distconv_serve as serve;
pub use distconv_simnet as simnet;
pub use distconv_tensor as tensor;

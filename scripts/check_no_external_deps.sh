#!/usr/bin/env bash
# Hermeticity guard: the workspace must not declare any external
# (registry) dependency. Two independent checks:
#
#   1. No manifest may name one of the crates we replaced in-tree
#      (rand/rayon/crossbeam/parking_lot/serde/proptest/criterion).
#   2. Cargo.lock must contain no `source =` entry at all — every
#      package is a local path dependency.
#
# Run from the repository root. Exits non-zero on any violation.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0

banned='^(rand|rayon|crossbeam|parking_lot|serde|proptest|criterion)'
if grep -rEn "$banned" --include=Cargo.toml crates Cargo.toml; then
    echo "error: banned external dependency declared in a manifest" >&2
    status=1
fi

if [ ! -f Cargo.lock ]; then
    echo "error: Cargo.lock is missing (must be committed)" >&2
    status=1
elif grep -n '^source = ' Cargo.lock; then
    echo "error: Cargo.lock references a non-path (registry/git) source" >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    echo "ok: workspace is hermetic (path-only dependencies)"
fi
exit "$status"

#!/usr/bin/env bash
# Diff two bench-trajectory files (the `distconv-bench-v1` JSON written
# by `cargo bench --bench bench_kernels -- --json` or
# `--bench bench_comm -- --json`), printing per-case speedups — the
# intended workflow for "did this PR actually make the kernels faster":
#
#   git stash / checkout old commit
#   cargo bench -p distconv-bench --bench bench_kernels -- --json /tmp/old.json
#   checkout new commit
#   cargo bench -p distconv-bench --bench bench_kernels -- --json /tmp/new.json
#   scripts/bench_compare.sh /tmp/old.json /tmp/new.json
#
# With --validate FILE it only schema-checks one file (used by CI on
# the committed BENCH_kernels.json / BENCH_comm.json and on fresh
# quick-mode output).
set -euo pipefail
cd "$(dirname "$0")/.."

if [ $# -lt 1 ]; then
    echo "usage: $0 OLD.json NEW.json | $0 --validate FILE" >&2
    exit 2
fi

cargo run -q --release --offline -p distconv-bench --bin bench_compare -- "$@"

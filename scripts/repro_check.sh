#!/usr/bin/env bash
# Reproducibility gate: the analytical tables (Tables 1 and 2 of the
# paper), the event-backend scale sweep, and the chaos sweep must be
# bit-identical to the checked-in goldens. The tables are pure closed-form/brute-force
# arithmetic and the sweep runs on the deterministic discrete-event
# backend — no wall timing, no thread scheduling — so any diff is a
# real behavior change in the cost model or the schedule, never noise.
# Regenerate the goldens deliberately with:
#
#   scripts/repro_check.sh --bless
#
# and include the diff in review.
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN_DIR=tests/goldens
BINS=(repro_table1 repro_table2 repro_scale repro_chaos repro_autotune)
GOLDENS=(table1.txt table2.txt scale.txt chaos.txt autotune.txt)

cargo build --release --offline --workspace -q

if [ "${1:-}" = "--bless" ]; then
    mkdir -p "$GOLDEN_DIR"
    for i in "${!BINS[@]}"; do
        "target/release/${BINS[$i]}" > "$GOLDEN_DIR/${GOLDENS[$i]}"
        echo "blessed $GOLDEN_DIR/${GOLDENS[$i]}"
    done
    exit 0
fi

status=0
for i in "${!BINS[@]}"; do
    golden="$GOLDEN_DIR/${GOLDENS[$i]}"
    if [ ! -f "$golden" ]; then
        echo "error: missing golden $golden (run with --bless)" >&2
        status=1
        continue
    fi
    if ! "target/release/${BINS[$i]}" | diff -u "$golden" -; then
        echo "error: ${BINS[$i]} output diverged from $golden" >&2
        status=1
    else
        echo "ok: ${BINS[$i]} matches $golden"
    fi
done
exit "$status"

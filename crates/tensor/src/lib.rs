//! # distconv-tensor
//!
//! Dense tensor substrate for the `distconv` workspace.
//!
//! The SPAA '21 paper's algorithms move *slices* of three 4-dimensional
//! tensors (`In`, `Ker`, `Out`) between memories. This crate provides the
//! minimal, dependency-light storage layer those algorithms manipulate:
//!
//! * [`Tensor4`] — an owned, row-major 4-D array over any [`Scalar`],
//!   with checked indexing, sub-range [`slicing`](Tensor4::slice) and
//!   [`copy`](Tensor4::copy_range_from) operations used to pack/unpack
//!   communication buffers.
//! * [`Matrix`] — a 2-D specialization used by the distributed
//!   matrix-multiplication reference algorithms (SUMMA / 2.5D / 3D).
//! * [`Range4`]/[`Shape4`] — closed-open multi-dimensional ranges with the
//!   halo arithmetic ([`conv_input_region`]) that maps an output tile to
//!   the strided, kernel-widened input region it reads
//!   (`σ·w + r` indexing from the paper's Eq. 1).
//! * Deterministic pseudo-random initialization ([`fill_random`],
//!   [`Tensor4::random`]) so every distributed run can be checked
//!   element-for-element against a sequential reference.
//!
//! Nothing in this crate knows about processors or communication; it is a
//! pure data-layout substrate shared by every other crate in the
//! workspace.

#![warn(missing_docs)]

pub mod gemm;
pub mod matrix;
pub mod region;
pub mod scalar;
pub mod shape;
pub mod simd;
pub mod tensor4;

pub use matrix::Matrix;
pub use region::{conv_input_extent, conv_input_region};
pub use scalar::Scalar;
pub use shape::{Idx4, Range4, Shape4};
pub use tensor4::{fill_random, Tensor4};

/// Maximum relative error between two scalar slices, for approximate
/// equality checks of floating-point results produced by different
/// summation orders.
///
/// Returns `None` if the slices have different lengths.
pub fn max_rel_err<T: Scalar>(a: &[T], b: &[T]) -> Option<f64> {
    if a.len() != b.len() {
        return None;
    }
    let mut worst = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let (x, y) = (x.to_f64(), y.to_f64());
        let denom = x.abs().max(y.abs()).max(1.0);
        worst = worst.max((x - y).abs() / denom);
    }
    Some(worst)
}

/// Assert that two slices agree within `tol` relative error.
///
/// # Panics
/// Panics with a diagnostic message if the slices differ in length or any
/// element pair exceeds the tolerance.
pub fn assert_close<T: Scalar>(a: &[T], b: &[T], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    let err = max_rel_err(a, b).unwrap();
    assert!(
        err <= tol,
        "{what}: max relative error {err:.3e} exceeds tolerance {tol:.1e}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_err_basics() {
        let a = [1.0f64, 2.0, 3.0];
        let b = [1.0f64, 2.0, 3.0];
        assert_eq!(max_rel_err(&a, &b), Some(0.0));
        let c = [1.0f64, 2.0, 4.0];
        let e = max_rel_err(&a, &c).unwrap();
        assert!(e > 0.2 && e < 0.3, "{e}");
    }

    #[test]
    fn rel_err_len_mismatch() {
        assert_eq!(max_rel_err(&[1.0f32], &[1.0f32, 2.0]), None);
    }

    #[test]
    #[should_panic(expected = "exceeds tolerance")]
    fn assert_close_panics() {
        assert_close(&[1.0f32], &[2.0f32], 1e-6, "unit");
    }
}

//! The [`Scalar`] trait: the numeric element types every distconv
//! algorithm is generic over.
//!
//! The workspace deliberately avoids a heavyweight numeric-traits
//! dependency; the distributed algorithms only need a handful of
//! operations (add, multiply, zero/one, conversion to `f64` for error
//! measurement, and a deterministic hash-based initializer for
//! reproducible workloads).

use std::fmt::Debug;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Element type usable in distconv tensors and messages.
///
/// Implemented for `f32` and `f64`. The `from_u64_hash` constructor maps a
/// 64-bit position hash into a small, well-conditioned value in roughly
/// `[-1, 1]`, giving every tensor element a value that is a pure function
/// of its global coordinates — the property that lets a distributed rank
/// materialize *its* shard without ever seeing the full tensor, and lets
/// tests verify results element-by-element.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + AddAssign
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + Sum
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Lossy conversion to `f64` (exact for `f32`/`f64` inputs in range).
    fn to_f64(self) -> f64;
    /// Conversion from `f64` (rounds for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Deterministic value in roughly `[-1, 1]` derived from a position
    /// hash; see trait docs.
    fn from_u64_hash(h: u64) -> Self {
        // splitmix64 finalizer: decorrelate neighbouring coordinates.
        let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Map to [-1, 1) with 21 bits of mantissa — exactly representable
        // in f32, so f32 and f64 runs see identical inputs.
        let v = ((z >> 43) as f64) / (1u64 << 20) as f64 - 1.0;
        Self::from_f64(v)
    }
}

impl Scalar for f32 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
}

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(f32::zero() + f32::one(), 1.0);
        assert_eq!(f64::zero() + f64::one(), 1.0);
    }

    #[test]
    fn hash_is_deterministic_and_bounded() {
        for h in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            let a = f64::from_u64_hash(h);
            let b = f64::from_u64_hash(h);
            assert_eq!(a, b);
            assert!((-1.0..1.0).contains(&a), "{a}");
        }
    }

    #[test]
    fn hash_matches_across_precisions() {
        // f32 and f64 must see identical workload values so distributed
        // f32 runs can be validated against f64 references.
        for h in 0..1000u64 {
            let a = f32::from_u64_hash(h) as f64;
            let b = f64::from_u64_hash(h);
            assert_eq!(a, b, "hash {h}");
        }
    }

    #[test]
    fn hash_spreads() {
        // Neighbouring hashes should not produce identical values.
        let distinct: std::collections::BTreeSet<u64> = (0..256u64)
            .map(|h| f64::from_u64_hash(h).to_bits())
            .collect();
        assert!(distinct.len() > 250, "only {} distinct", distinct.len());
    }
}

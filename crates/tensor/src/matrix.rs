//! Row-major 2-D matrices for the distributed matrix-multiplication
//! reference algorithms (SUMMA-2D / 2.5D / 3D).
//!
//! The paper's Sec 2.2 identifies its Case-1 CNN algorithm with 2D SUMMA
//! and Case-2 with 2.5D/3D matmul; the `distconv-distmm` crate implements
//! those analogs on this type and the analogy experiments (E7) compare
//! the two families numerically via the 1×1-convolution reduction.

use crate::scalar::Scalar;

/// An owned, row-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// A zero matrix of the given dimensions.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Wrap `data` (length `rows*cols`, row-major) as a matrix.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Deterministic pseudo-random matrix; element `(i,j)` is a pure
    /// function of `(seed, i, j)` relative to a logical global matrix of
    /// `global_cols` columns with this matrix's top-left at
    /// `(row0, col0)`.
    pub fn random_window(
        rows: usize,
        cols: usize,
        seed: u64,
        row0: usize,
        col0: usize,
        global_cols: usize,
    ) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let lin = ((row0 + i) * global_cols + (col0 + j)) as u64;
                m[(i, j)] = T::from_u64_hash(seed ^ lin.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
        }
        m
    }

    /// Deterministic pseudo-random matrix (standalone; its own global
    /// coordinate system).
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        Self::random_window(rows, cols, seed, 0, 0, cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major element slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat row-major element slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the flat element vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Set every element to zero.
    pub fn clear(&mut self) {
        self.data.fill(T::zero());
    }

    /// Copy the `[r0, r0+nr) × [c0, c0+nc)` block into a packed buffer.
    pub fn pack_block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Vec<T> {
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols, "block OOB");
        let mut out = Vec::with_capacity(nr * nc);
        for i in r0..r0 + nr {
            let base = i * self.cols + c0;
            out.extend_from_slice(&self.data[base..base + nc]);
        }
        out
    }

    /// Overwrite the `[r0, r0+nr) × [c0, c0+nc)` block from a packed
    /// buffer.
    pub fn unpack_block(&mut self, r0: usize, c0: usize, nr: usize, nc: usize, buf: &[T]) {
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols, "block OOB");
        assert_eq!(buf.len(), nr * nc, "packed block length mismatch");
        for i in 0..nr {
            let base = (r0 + i) * self.cols + c0;
            self.data[base..base + nc].copy_from_slice(&buf[i * nc..(i + 1) * nc]);
        }
    }

    /// `self += other`, elementwise; shapes must match.
    pub fn add_assign(&mut self, other: &Matrix<T>) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "matrix shape mismatch in add_assign"
        );
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += buf` interpreted as a row-major matrix of identical shape.
    pub fn add_assign_slice(&mut self, buf: &[T]) {
        assert_eq!(buf.len(), self.data.len(), "slice length mismatch");
        for (a, &b) in self.data.iter_mut().zip(buf.iter()) {
            *a += b;
        }
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// `C += A · B` with a simple ikj loop order (cache-friendly row-major
/// accumulation). This is the correctness reference all distributed
/// matmuls are validated against; the blocked/parallel production kernel
/// lives in `distconv-distmm`.
pub fn matmul_acc<T: Scalar>(c: &mut Matrix<T>, a: &Matrix<T>, b: &Matrix<T>) {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "output rows mismatch");
    assert_eq!(c.cols(), b.cols(), "output cols mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i in 0..m {
        for l in 0..k {
            let av = a[(i, l)];
            let brow = &b.as_slice()[l * n..(l + 1) * n];
            let crow = &mut c.as_mut_slice()[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_shape() {
        let mut m = Matrix::<f32>::zeros(2, 3);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.as_slice()[5], 5.0);
        assert_eq!((m.rows(), m.cols(), m.len()), (2, 3, 6));
    }

    #[test]
    fn pack_unpack_block_roundtrip() {
        let m = Matrix::from_vec(3, 4, (0..12).map(|x| x as f64).collect());
        let b = m.pack_block(1, 1, 2, 2);
        assert_eq!(b, vec![5.0, 6.0, 9.0, 10.0]);
        let mut z = Matrix::<f64>::zeros(3, 4);
        z.unpack_block(1, 1, 2, 2, &b);
        assert_eq!(z[(1, 1)], 5.0);
        assert_eq!(z[(2, 2)], 10.0);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_vec(2, 2, vec![1.0f64, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0f64, 6.0, 7.0, 8.0]);
        let mut c = Matrix::zeros(2, 2);
        matmul_acc(&mut c, &a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let n = 5;
        let mut id = Matrix::<f64>::zeros(n, n);
        for i in 0..n {
            id[(i, i)] = 1.0;
        }
        let a = Matrix::random(n, n, 3);
        let mut c = Matrix::zeros(n, n);
        matmul_acc(&mut c, &a, &id);
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn random_window_consistency() {
        let full = Matrix::<f32>::random(8, 8, 7);
        let win = Matrix::<f32>::random_window(3, 4, 7, 2, 1, 8);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(win[(i, j)], full[(2 + i, 1 + j)]);
            }
        }
    }

    #[test]
    fn add_assign_works() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0f32, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![10.0f32, 20.0, 30.0]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[11.0, 22.0, 33.0]);
        a.add_assign_slice(&[1.0, 1.0, 1.0]);
        assert_eq!(a.as_slice(), &[12.0, 23.0, 34.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 3);
        let mut c = Matrix::<f64>::zeros(2, 3);
        matmul_acc(&mut c, &a, &b);
    }
}

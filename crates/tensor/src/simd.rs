//! Runtime SIMD dispatch for the GEMM micro-kernel.
//!
//! The scalar micro-kernel in [`crate::gemm`] autovectorizes to whatever
//! the *compile-time* target baseline allows (SSE2 on a stock
//! `x86_64-unknown-linux-gnu` build). This module adds hand-written
//! AVX2 kernels selected at **runtime** via
//! `is_x86_feature_detected!`, so one hermetically-built binary runs
//! the wide path on capable hosts and falls back to the always-compiled
//! scalar kernel everywhere else (non-x86, old x86, `DISTCONV_SIMD=off`).
//!
//! **Bitwise contract.** The AVX2 kernels perform, per output element,
//! *exactly* the operation sequence of the scalar kernel: ascending-`j`
//! passes of `acc ← acc + a·b`, each `a·b` rounded before the add.
//! FMA contraction is deliberately **not** used — a fused
//! multiply-add rounds once where `mul`+`add` rounds twice, which would
//! break the workspace-wide guarantee that switching kernels (or
//! hosts!) never perturbs a golden table or a verified result. The
//! `fma` CPUID bit is still part of the detection gate purely as a
//! generation marker (every AVX2 part ships FMA; requiring both keeps
//! the gate conservative). Vector lanes map to distinct output
//! elements, so lane-parallelism cannot reorder any element's sum.
//! Equivalence is pinned by `tensor/tests/simd_equivalence.rs` and
//! `conv/tests/simd_vs_scalar.rs`.
//!
//! Dispatch is resolved once (env + CPUID) and cached in an atomic;
//! benches and tests may re-pin it via [`force`].

use crate::scalar::Scalar;
use std::any::TypeId;
use std::sync::atomic::{AtomicU8, Ordering};

/// Env knob: `auto` (default — use the widest detected ISA) or `off`
/// (pin the scalar kernel). Any other value is a hard error, matching
/// the workspace convention that a typo must never silently select a
/// default.
pub const SIMD_ENV: &str = "DISTCONV_SIMD";

/// Parsed [`SIMD_ENV`] policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SimdMode {
    /// Use the widest ISA the host supports (the default).
    #[default]
    Auto,
    /// Pin the scalar kernel regardless of host capabilities.
    Off,
}

impl SimdMode {
    /// Parse an explicit mode spelling. `Err` carries the full
    /// diagnostic (offending value plus every accepted spelling).
    pub fn parse(v: &str) -> Result<Self, String> {
        match v.trim() {
            "auto" => Ok(SimdMode::Auto),
            "off" | "scalar" => Ok(SimdMode::Off),
            other => Err(format!(
                "unrecognized {SIMD_ENV} value {other:?}: expected \"auto\" or \
                 \"off\"/\"scalar\" (or unset for the default, auto)"
            )),
        }
    }

    /// Resolve the mode from [`SIMD_ENV`]; unset means [`SimdMode::Auto`],
    /// an unrecognized value panics with the accepted spellings.
    pub fn from_env() -> Self {
        match std::env::var(SIMD_ENV) {
            Ok(v) => Self::parse(&v).unwrap_or_else(|e| panic!("{e}")),
            Err(_) => SimdMode::Auto,
        }
    }
}

/// Which micro-kernel implementation [`crate::gemm::gemm_acc_rows`]
/// dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SimdPath {
    /// The portable scalar kernel (always compiled, always correct).
    Scalar = 1,
    /// 256-bit AVX2 kernels for `f32`/`f64` (x86-64, runtime-detected).
    Avx2 = 2,
}

impl SimdPath {
    /// Short display name for bench/startup notes.
    pub fn name(self) -> &'static str {
        match self {
            SimdPath::Scalar => "scalar",
            SimdPath::Avx2 => "avx2+fma",
        }
    }
}

/// Hardware detection only — ignores [`SIMD_ENV`]. Used by tests and
/// benches to decide whether a wide-vs-scalar comparison is meaningful
/// on this host.
pub fn detect() -> SimdPath {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdPath::Avx2;
        }
    }
    SimdPath::Scalar
}

/// Cached dispatch decision: 0 = unresolved, else `SimdPath as u8`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// The active micro-kernel path: [`SIMD_ENV`] policy applied to
/// [`detect`], resolved once and cached. Worker threads read the same
/// cache, so one process always runs one path (unless a bench re-pins
/// it between measurements via [`force`]).
pub fn active() -> SimdPath {
    match ACTIVE.load(Ordering::Relaxed) {
        1 => SimdPath::Scalar,
        2 => SimdPath::Avx2,
        _ => {
            let path = match SimdMode::from_env() {
                SimdMode::Off => SimdPath::Scalar,
                SimdMode::Auto => detect(),
            };
            ACTIVE.store(path as u8, Ordering::Relaxed);
            path
        }
    }
}

/// Re-pin the dispatch decision (benches measuring both paths in one
/// process; the equivalence test binary). `Some(path)` pins `path` —
/// panics if the host cannot run it; `None` clears the cache so the
/// next [`active`] call re-resolves from [`SIMD_ENV`] + CPUID.
pub fn force(path: Option<SimdPath>) {
    match path {
        Some(SimdPath::Avx2) => {
            assert!(
                detect() == SimdPath::Avx2,
                "cannot force the AVX2 kernel path: host lacks avx2+fma"
            );
            ACTIVE.store(SimdPath::Avx2 as u8, Ordering::Relaxed);
        }
        Some(SimdPath::Scalar) => ACTIVE.store(SimdPath::Scalar as u8, Ordering::Relaxed),
        None => ACTIVE.store(0, Ordering::Relaxed),
    }
}

/// Try the AVX2 kernel for this element type: returns `false` (caller
/// must run the scalar kernel) when the type has no vector
/// implementation or the build target is not x86-64. The caller has
/// already decided the AVX2 path is active; bounds are validated here
/// in safe code before the `unsafe` inner kernels run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_gemm_rows<T: Scalar>(
    c: &mut [T],
    c_stride: usize,
    mr: usize,
    n: usize,
    at: &[T],
    at_stride: usize,
    i0: usize,
    b: &[T],
    b_off: &[usize],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if TypeId::of::<T>() == TypeId::of::<f32>() {
            let (c, at, b) = unsafe { cast_mut_slices::<T, f32>(c, at, b) };
            x86::gemm_rows_f32(c, c_stride, mr, n, at, at_stride, i0, b, b_off);
            return true;
        }
        if TypeId::of::<T>() == TypeId::of::<f64>() {
            let (c, at, b) = unsafe { cast_mut_slices::<T, f64>(c, at, b) };
            x86::gemm_rows_f64(c, c_stride, mr, n, at, at_stride, i0, b, b_off);
            return true;
        }
        false
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (c, c_stride, mr, n, at, at_stride, i0, b, b_off);
        false
    }
}

/// Reinterpret `(c, at, b)` as slices of `U`. Sound only when `T` and
/// `U` are the same type (checked by the callers' `TypeId` guards —
/// the cast is then the identity).
#[cfg(target_arch = "x86_64")]
#[allow(clippy::mut_from_ref)]
unsafe fn cast_mut_slices<'a, T: 'static, U: 'static>(
    c: &'a mut [T],
    at: &'a [T],
    b: &'a [T],
) -> (&'a mut [U], &'a [U], &'a [U]) {
    debug_assert_eq!(TypeId::of::<T>(), TypeId::of::<U>());
    (
        std::slice::from_raw_parts_mut(c.as_mut_ptr() as *mut U, c.len()),
        std::slice::from_raw_parts(at.as_ptr() as *const U, at.len()),
        std::slice::from_raw_parts(b.as_ptr() as *const U, b.len()),
    )
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The AVX2 kernels proper. Safe wrappers validate every bound the
    //! raw-pointer loops rely on, then dispatch row groups of 8/4/2/1
    //! to monomorphized `#[target_feature]` kernels. Splitting the `mr`
    //! rows into groups cannot change any element's sum: each output
    //! row's accumulation is independent and stays ascending-`j`.

    use std::arch::x86_64::*;

    macro_rules! avx2_gemm {
        ($wrapper:ident, $kernel:ident, $t:ty, $v:ty, $lanes:expr,
         $loadu:ident, $storeu:ident, $set1:ident, $setzero:ident, $mul:ident, $add:ident) => {
            /// One group of `MRK` output rows: vector main loop over
            /// `n`, scalar tail — both ascending-`j` per element,
            /// `mul` rounded before `add` (no FMA; see module docs).
            #[allow(clippy::too_many_arguments)]
            #[target_feature(enable = "avx2", enable = "fma")]
            unsafe fn $kernel<const MRK: usize>(
                c: *mut $t,
                c_stride: usize,
                n: usize,
                at: *const $t,
                at_stride: usize,
                i0: usize,
                b: *const $t,
                b_off: &[usize],
            ) {
                let nv = n - n % $lanes;
                let mut h0 = 0usize;
                while h0 < nv {
                    let mut acc: [$v; MRK] = [$setzero(); MRK];
                    for r in 0..MRK {
                        acc[r] = $loadu(c.add(r * c_stride + h0));
                    }
                    for (j, &off) in b_off.iter().enumerate() {
                        let vb = $loadu(b.add(off + h0));
                        let ap = at.add(j * at_stride + i0);
                        for r in 0..MRK {
                            let va = $set1(*ap.add(r));
                            acc[r] = $add(acc[r], $mul(va, vb));
                        }
                    }
                    for r in 0..MRK {
                        $storeu(c.add(r * c_stride + h0), acc[r]);
                    }
                    h0 += $lanes;
                }
                for r in 0..MRK {
                    for h in nv..n {
                        let mut a = *c.add(r * c_stride + h);
                        for (j, &off) in b_off.iter().enumerate() {
                            a += *at.add(j * at_stride + i0 + r) * *b.add(off + h);
                        }
                        *c.add(r * c_stride + h) = a;
                    }
                }
            }

            /// Bounds-validated entry point; row groups of 8/4/2/1.
            #[allow(clippy::too_many_arguments)]
            pub(super) fn $wrapper(
                c: &mut [$t],
                c_stride: usize,
                mr: usize,
                n: usize,
                at: &[$t],
                at_stride: usize,
                i0: usize,
                b: &[$t],
                b_off: &[usize],
            ) {
                if n == 0 || b_off.is_empty() {
                    return;
                }
                assert!(
                    c.len() >= (mr - 1) * c_stride + n,
                    "C storage too small: {} rows stride {c_stride} width {n} in {}",
                    mr,
                    c.len()
                );
                assert!(
                    at.len() >= (b_off.len() - 1) * at_stride + i0 + mr,
                    "packed panel too small"
                );
                for &off in b_off {
                    assert!(off + n <= b.len(), "b_off row {off}+{n} out of bounds");
                }
                let cp = c.as_mut_ptr();
                let (atp, bp) = (at.as_ptr(), b.as_ptr());
                let mut r0 = 0usize;
                while r0 < mr {
                    let rest = mr - r0;
                    // SAFETY: bounds checked above; row group r0.. fits.
                    unsafe {
                        let cg = cp.add(r0 * c_stride);
                        if rest >= 8 {
                            $kernel::<8>(cg, c_stride, n, atp, at_stride, i0 + r0, bp, b_off);
                            r0 += 8;
                        } else if rest >= 4 {
                            $kernel::<4>(cg, c_stride, n, atp, at_stride, i0 + r0, bp, b_off);
                            r0 += 4;
                        } else if rest >= 2 {
                            $kernel::<2>(cg, c_stride, n, atp, at_stride, i0 + r0, bp, b_off);
                            r0 += 2;
                        } else {
                            $kernel::<1>(cg, c_stride, n, atp, at_stride, i0 + r0, bp, b_off);
                            r0 += 1;
                        }
                    }
                }
            }
        };
    }

    avx2_gemm!(
        gemm_rows_f32,
        kernel_f32,
        f32,
        __m256,
        8,
        _mm256_loadu_ps,
        _mm256_storeu_ps,
        _mm256_set1_ps,
        _mm256_setzero_ps,
        _mm256_mul_ps,
        _mm256_add_ps
    );
    avx2_gemm!(
        gemm_rows_f64,
        kernel_f64,
        f64,
        __m256d,
        4,
        _mm256_loadu_pd,
        _mm256_storeu_pd,
        _mm256_set1_pd,
        _mm256_setzero_pd,
        _mm256_mul_pd,
        _mm256_add_pd
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_documented_spellings() {
        assert_eq!(SimdMode::parse("auto"), Ok(SimdMode::Auto));
        assert_eq!(SimdMode::parse(" off "), Ok(SimdMode::Off));
        assert_eq!(SimdMode::parse("scalar"), Ok(SimdMode::Off));
    }

    #[test]
    fn parse_rejects_typos_with_a_clear_message() {
        let err = SimdMode::parse("avx").expect_err("typo must be rejected");
        assert!(err.contains("avx"), "names the offender: {err}");
        assert!(err.contains("DISTCONV_SIMD"), "names the knob: {err}");
        assert!(err.contains("\"auto\""), "lists spellings: {err}");
        assert!(SimdMode::parse("").is_err());
    }

    #[test]
    fn path_names() {
        assert_eq!(SimdPath::Scalar.name(), "scalar");
        assert_eq!(SimdPath::Avx2.name(), "avx2+fma");
    }

    #[test]
    fn force_scalar_then_reset_round_trips() {
        // Note: other tests in this binary read `active()` through
        // `gemm_acc_rows`; forcing Scalar is always safe (it is a valid
        // value on every host) and `force(None)` restores resolution.
        force(Some(SimdPath::Scalar));
        assert_eq!(active(), SimdPath::Scalar);
        force(None);
        let resolved = active();
        // The expected resolution honors the environment: this test
        // also runs on the CI leg that sets DISTCONV_SIMD=off.
        let expect = match SimdMode::from_env() {
            SimdMode::Off => SimdPath::Scalar,
            SimdMode::Auto => detect(),
        };
        assert_eq!(
            resolved, expect,
            "force(None) restores env+CPUID resolution"
        );
    }
}

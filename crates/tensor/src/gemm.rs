//! The register-blocked GEMM micro-kernel shared by every fast local
//! compute path: the packed im2col-GEMM convolution kernel in
//! `distconv-conv` and the packed block products in `distconv-distmm`.
//!
//! Design: the classical outer-product micro-kernel. The left operand
//! is packed **transposed** ([`pack_transposed`]) so that one panel row
//! `j` holds the register-block coefficients `A[i0..i0+mr, j]`
//! contiguously; the right operand is addressed through a per-row
//! *offset table*, which is what makes the im2col lowering implicit — a
//! convolution hands the kernel window subslices of the input rows
//! directly (`b_off[j]` = halo-row base + kernel column) without ever
//! materializing a column matrix, while a plain matmul hands
//! `b_off[j] = j·n`. The inner loop updates up to [`mr_block`] output
//! rows per pass over one right-hand row, so each loaded element is
//! reused `mr` times from registers.
//!
//! Two implementations sit behind [`gemm_acc_rows`], selected at
//! runtime by [`crate::simd::active`]:
//!
//! * the portable scalar kernel ([`MR`] = 4 rows, safe Rust shaped for
//!   the autovectorizer), always compiled;
//! * hand-written AVX2 kernels ([`MR_MAX`] = 8 rows × 8-lane f32 /
//!   4-lane f64 vectors) in [`crate::simd`], used when the host
//!   supports `avx2`+`fma` and `DISTCONV_SIMD` does not say `off`.
//!
//! Both perform the identical per-element operation sequence
//! (ascending-`j`, multiply rounded before add), so **results are
//! bitwise independent of the dispatch decision** — the workspace-wide
//! kernel-invisibility contract extends across ISAs.

use crate::scalar::Scalar;
use crate::simd::{self, SimdPath};

/// Scalar register-block height: output rows updated per pass over a
/// right-hand row by the portable kernel. 4 accumulator rows × 8-wide
/// f32 vectors stays well inside 16 architectural registers.
pub const MR: usize = 4;

/// Maximum register-block height any kernel path uses (the AVX2 path
/// runs 8 accumulator vectors). [`gemm_acc_rows`] accepts any
/// `mr ≤ MR_MAX` on every path — the scalar kernel decomposes larger
/// blocks into [`MR`]-row groups, which cannot change any element's
/// sum because each output row accumulates independently.
pub const MR_MAX: usize = 8;

/// The register-block height callers should tile the `i` dimension
/// with for the *active* kernel path: [`MR_MAX`] when the AVX2 path is
/// selected, [`MR`] for the scalar path. Purely a performance hint —
/// results are identical for any blocking (see module docs).
pub fn mr_block() -> usize {
    match simd::active() {
        SimdPath::Avx2 => MR_MAX,
        SimdPath::Scalar => MR,
    }
}

/// Pack a row-major `rows × cols` matrix into its transpose
/// (`cols × rows`, row-major), appending into `dst` (cleared first).
/// This is the panel layout [`gemm_acc_rows`] consumes on its left
/// side: element `A[i, j]` lands at `dst[j * rows + i]`, so any
/// `(i0, mr)` window reads `mr` contiguous lanes — the layout feeds
/// full SIMD register blocks without repacking. Tiled over 8×8 blocks
/// so both the source reads and destination writes stay within a few
/// cache lines per tile.
pub fn pack_transposed<T: Scalar>(src: &[T], rows: usize, cols: usize, dst: &mut Vec<T>) {
    assert_eq!(src.len(), rows * cols, "pack_transposed shape mismatch");
    const TILE: usize = 8;
    dst.clear();
    dst.resize(rows * cols, T::zero());
    for i_t in (0..rows).step_by(TILE) {
        let i_hi = (i_t + TILE).min(rows);
        for j_t in (0..cols).step_by(TILE) {
            let j_hi = (j_t + TILE).min(cols);
            for i in i_t..i_hi {
                let row = &src[i * cols..(i + 1) * cols];
                for (j, &v) in row[j_t..j_hi].iter().enumerate() {
                    dst[(j_t + j) * rows + i] = v;
                }
            }
        }
    }
}

/// `mr` output rows `+=` a packed panel times a set of right-hand rows,
/// on the kernel path selected by [`crate::simd::active`].
///
/// * `c` — output storage. Row `r` (for `r < mr`) occupies
///   `c[r * c_stride .. r * c_stride + n]`; `c_stride ≥ n` lets callers
///   accumulate directly into strided tensor rows (e.g. adjacent `k`
///   planes of an `Out` tile).
/// * `at` — transposed left panel: row `j` starts at `at[j * at_stride]`
///   and the coefficients used are `at[j * at_stride + i0 + r]`.
/// * `b` / `b_off` — right-hand rows: row `j` is
///   `b[b_off[j] .. b_off[j] + n]`. The offset indirection is the
///   implicit-im2col hook (see module docs).
///
/// The accumulation order per output element is `j` ascending — fixed
/// and independent of `mr` blocking *and of the kernel path*, so
/// results do not depend on how callers block the `i` dimension or on
/// what the host CPU supports.
#[allow(clippy::too_many_arguments)]
pub fn gemm_acc_rows<T: Scalar>(
    c: &mut [T],
    c_stride: usize,
    mr: usize,
    n: usize,
    at: &[T],
    at_stride: usize,
    i0: usize,
    b: &[T],
    b_off: &[usize],
) {
    gemm_acc_rows_with(
        simd::active(),
        c,
        c_stride,
        mr,
        n,
        at,
        at_stride,
        i0,
        b,
        b_off,
    );
}

/// [`gemm_acc_rows`] with the kernel path chosen explicitly, bypassing
/// the cached [`crate::simd::active`] decision. This is the hook the
/// bitwise-equivalence suites and the kernel benches use to compare
/// paths inside one process without mutating global dispatch state.
#[allow(clippy::too_many_arguments)]
pub fn gemm_acc_rows_with<T: Scalar>(
    path: SimdPath,
    c: &mut [T],
    c_stride: usize,
    mr: usize,
    n: usize,
    at: &[T],
    at_stride: usize,
    i0: usize,
    b: &[T],
    b_off: &[usize],
) {
    debug_assert!((1..=MR_MAX).contains(&mr), "mr {mr} out of range");
    debug_assert!(c_stride >= n || mr == 1, "c_stride {c_stride} < n {n}");
    if path == SimdPath::Avx2
        && simd::try_gemm_rows(c, c_stride, mr, n, at, at_stride, i0, b, b_off)
    {
        return;
    }
    // Scalar path. Decompose mr > MR into MR-row groups: row sums are
    // independent, so the grouping is invisible in the results.
    let mut r0 = 0usize;
    while r0 < mr {
        let g = MR.min(mr - r0);
        scalar_rows(
            &mut c[r0 * c_stride..],
            c_stride,
            g,
            n,
            at,
            at_stride,
            i0 + r0,
            b,
            b_off,
        );
        r0 += g;
    }
}

/// The portable kernel: `mr ≤ MR` rows, written over pre-sliced
/// `[..n]` slices so LLVM drops the bounds checks and autovectorizes.
/// Plain safe Rust — hot-loop speed comes from hoisting offset
/// arithmetic and shaping loops for the autovectorizer, not `unsafe`.
#[allow(clippy::too_many_arguments)]
fn scalar_rows<T: Scalar>(
    c: &mut [T],
    c_stride: usize,
    mr: usize,
    n: usize,
    at: &[T],
    at_stride: usize,
    i0: usize,
    b: &[T],
    b_off: &[usize],
) {
    match mr {
        1 => {
            let r0 = &mut c[..n];
            for (j, &off) in b_off.iter().enumerate() {
                let a0 = at[j * at_stride + i0];
                let br = &b[off..off + n];
                for (d, &bv) in r0.iter_mut().zip(br) {
                    *d += a0 * bv;
                }
            }
        }
        2 => {
            let (r0, rest) = c.split_at_mut(c_stride);
            let (r0, r1) = (&mut r0[..n], &mut rest[..n]);
            for (j, &off) in b_off.iter().enumerate() {
                let a = &at[j * at_stride + i0..][..2];
                let (a0, a1) = (a[0], a[1]);
                let br = &b[off..off + n];
                for (h, &bv) in br.iter().enumerate() {
                    r0[h] += a0 * bv;
                    r1[h] += a1 * bv;
                }
            }
        }
        3 => {
            let (r0, rest) = c.split_at_mut(c_stride);
            let (r1, rest) = rest.split_at_mut(c_stride);
            let (r0, r1, r2) = (&mut r0[..n], &mut r1[..n], &mut rest[..n]);
            for (j, &off) in b_off.iter().enumerate() {
                let a = &at[j * at_stride + i0..][..3];
                let (a0, a1, a2) = (a[0], a[1], a[2]);
                let br = &b[off..off + n];
                for (h, &bv) in br.iter().enumerate() {
                    r0[h] += a0 * bv;
                    r1[h] += a1 * bv;
                    r2[h] += a2 * bv;
                }
            }
        }
        _ => {
            let (r0, rest) = c.split_at_mut(c_stride);
            let (r1, rest) = rest.split_at_mut(c_stride);
            let (r2, rest) = rest.split_at_mut(c_stride);
            let (r0, r1, r2, r3) = (&mut r0[..n], &mut r1[..n], &mut r2[..n], &mut rest[..n]);
            for (j, &off) in b_off.iter().enumerate() {
                let a = &at[j * at_stride + i0..][..4];
                let (a0, a1, a2, a3) = (a[0], a[1], a[2], a[3]);
                let br = &b[off..off + n];
                for (h, &bv) in br.iter().enumerate() {
                    r0[h] += a0 * bv;
                    r1[h] += a1 * bv;
                    r2[h] += a2 * bv;
                    r3[h] += a3 * bv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_transposed_roundtrip() {
        // 2×3 row-major → 3×2 transposed.
        let src = vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut dst = Vec::new();
        pack_transposed(&src, 2, 3, &mut dst);
        assert_eq!(dst, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        // Repacking reuses (and clears) the buffer.
        pack_transposed(&src, 2, 3, &mut dst);
        assert_eq!(dst.len(), 6);
    }

    #[test]
    fn pack_transposed_beyond_one_tile() {
        // 13×11 exercises the 8×8 tiling plus both ragged edges.
        let (rows, cols) = (13usize, 11usize);
        let src: Vec<f32> = (0..rows * cols).map(|x| x as f32).collect();
        let mut dst = Vec::new();
        pack_transposed(&src, rows, cols, &mut dst);
        for i in 0..rows {
            for j in 0..cols {
                assert_eq!(dst[j * rows + i], src[i * cols + j], "({i},{j})");
            }
        }
    }

    /// Reference: c[r][h] += Σ_j a[i0+r][j]·b_row_j[h] in j order.
    fn reference(
        m: usize,
        kc: usize,
        n: usize,
        a: &[f64], // row-major m × kc
        b: &[f64],
        b_off: &[usize],
    ) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for r in 0..m {
            for h in 0..n {
                for j in 0..kc {
                    c[r * n + h] += a[r * kc + j] * b[b_off[j] + h];
                }
            }
        }
        c
    }

    #[test]
    fn all_mr_sizes_match_reference() {
        let (kc, n) = (5, 7);
        let b: Vec<f64> = (0..kc * n).map(|x| (x as f64) * 0.25 - 3.0).collect();
        let b_off: Vec<usize> = (0..kc).map(|j| j * n).collect();
        for m in 1..=MR_MAX {
            let a: Vec<f64> = (0..m * kc).map(|x| (x as f64) * 0.5 - 1.0).collect();
            let mut at = Vec::new();
            pack_transposed(&a, m, kc, &mut at);
            let mut c = vec![0.0f64; m * n];
            gemm_acc_rows(&mut c, n, m, n, &at, m, 0, &b, &b_off);
            assert_eq!(c, reference(m, kc, n, &a, &b, &b_off), "mr={m}");
        }
    }

    #[test]
    fn strided_c_rows_and_panel_offset() {
        // c rows spaced by stride 10, using panel columns i0..i0+2 of a
        // wider 6-row packed panel.
        let (m_total, kc, n, stride, i0) = (6usize, 3usize, 4usize, 10usize, 2usize);
        let a: Vec<f64> = (0..m_total * kc).map(|x| x as f64).collect();
        let mut at = Vec::new();
        pack_transposed(&a, m_total, kc, &mut at);
        let b: Vec<f64> = (0..kc * n).map(|x| 1.0 + x as f64).collect();
        let b_off: Vec<usize> = (0..kc).map(|j| j * n).collect();
        let mut c = vec![0.0f64; stride * 2];
        gemm_acc_rows(&mut c, stride, 2, n, &at, m_total, i0, &b, &b_off);
        let expect = reference(m_total, kc, n, &a, &b, &b_off);
        assert_eq!(&c[..n], &expect[i0 * n..i0 * n + n]);
        assert_eq!(
            &c[stride..stride + n],
            &expect[(i0 + 1) * n..(i0 + 1) * n + n]
        );
        // Gap between rows untouched.
        assert!(c[n..stride].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn accumulates_on_top_of_existing_values() {
        let n = 3;
        let at = vec![2.0f64]; // 1×1 panel
        let b = vec![1.0, 2.0, 3.0];
        let mut c = vec![10.0f64, 20.0, 30.0];
        gemm_acc_rows(&mut c, n, 1, n, &at, 1, 0, &b, &[0]);
        assert_eq!(c, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    fn overlapping_b_rows_model_implicit_im2col() {
        // b_off rows overlap (off 0 and 1 of the same buffer) — exactly
        // how the conv kernel aliases halo rows.
        let b = vec![1.0f64, 2.0, 3.0, 4.0];
        let at = vec![1.0f64, 10.0]; // kc=2, m=1
        let mut c = vec![0.0f64; 3];
        gemm_acc_rows(&mut c, 3, 1, 3, &at, 1, 0, &b, &[0, 1]);
        // c[h] = b[h] + 10·b[h+1]
        assert_eq!(c, vec![21.0, 32.0, 43.0]);
    }

    #[test]
    fn explicit_scalar_path_handles_every_mr() {
        // The scalar kernel must accept the widened block (mr ≤ MR_MAX)
        // via row-group decomposition, even on hosts where active() is
        // AVX2 — gemm_acc_rows_with pins the path.
        let (kc, n) = (4, 9);
        let b: Vec<f32> = (0..kc * n).map(|x| (x as f32) * 0.125 - 1.5).collect();
        let b_off: Vec<usize> = (0..kc).map(|j| j * n).collect();
        for m in 1..=MR_MAX {
            let a: Vec<f32> = (0..m * kc).map(|x| (x as f32) * 0.75 - 2.0).collect();
            let mut at = Vec::new();
            pack_transposed(&a, m, kc, &mut at);
            let mut c = vec![0.0f32; m * n];
            gemm_acc_rows_with(SimdPath::Scalar, &mut c, n, m, n, &at, m, 0, &b, &b_off);
            let a64: Vec<f64> = a.iter().map(|&v| v as f64).collect();
            let b64: Vec<f64> = b.iter().map(|&v| v as f64).collect();
            let want = reference(m, kc, n, &a64, &b64, &b_off);
            for (got, want) in c.iter().zip(&want) {
                assert!((*got as f64 - *want).abs() < 1e-4, "mr={m}");
            }
        }
    }

    #[test]
    fn mr_block_matches_active_path() {
        let expect = match crate::simd::active() {
            SimdPath::Avx2 => MR_MAX,
            SimdPath::Scalar => MR,
        };
        assert_eq!(mr_block(), expect);
    }
}

//! Owned row-major 4-D tensors with range-based copy in/out.
//!
//! [`Tensor4`] is the storage type for the three CNN tensors. The
//! distributed executors never send tensors — they send packed `Vec<T>`
//! buffers extracted with [`Tensor4::pack_range`] and re-inserted with
//! [`Tensor4::unpack_range`] / [`Tensor4::add_unpack_range`]; keeping
//! pack/unpack here keeps every communication path allocation-explicit,
//! which is what the per-rank memory tracker meters.

use crate::scalar::Scalar;
use crate::shape::{Idx4, Range4, Shape4};

/// An owned, row-major (last dimension contiguous) 4-D tensor.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor4<T> {
    shape: Shape4,
    data: Vec<T>,
}

impl<T: Scalar> Tensor4<T> {
    /// A zero-filled tensor of the given shape.
    pub fn zeros(shape: Shape4) -> Self {
        Tensor4 {
            shape,
            data: vec![T::zero(); shape.len()],
        }
    }

    /// Take ownership of `data` as a tensor of shape `shape`.
    ///
    /// # Panics
    /// If `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape4, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {:?}",
            data.len(),
            shape.0
        );
        Tensor4 { shape, data }
    }

    /// A tensor whose every element is a deterministic pseudo-random
    /// function of `(seed, its coordinates)`. Two tensors created with the
    /// same seed and shape are identical; shards of a larger tensor can be
    /// materialized consistently by passing global coordinates via
    /// [`Tensor4::random_window`].
    pub fn random(shape: Shape4, seed: u64) -> Self {
        Self::random_window(shape, seed, [0; 4], shape)
    }

    /// Like [`Tensor4::random`], but element `[i0..i3]` takes the value
    /// the *global* tensor of shape `global_shape` would have at
    /// `origin + [i0..i3]`. This is how distributed ranks materialize
    /// their shard of a logically global input without communication.
    pub fn random_window(shape: Shape4, seed: u64, origin: Idx4, global_shape: Shape4) -> Self {
        let mut t = Tensor4::zeros(shape);
        for idx in shape.full_range().iter() {
            let g = [
                origin[0] + idx[0],
                origin[1] + idx[1],
                origin[2] + idx[2],
                origin[3] + idx[3],
            ];
            let h = seed ^ (global_shape.offset(g) as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
            t[idx] = T::from_u64_hash(h);
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat element slice (row-major).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat element slice (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the flat element vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Set all elements to zero.
    pub fn clear(&mut self) {
        self.data.fill(T::zero());
    }

    /// Copy the elements of `range` (in this tensor's coordinates) into a
    /// fresh row-major packed buffer. This is the "pack" half of every
    /// message the distributed algorithms send.
    pub fn pack_range(&self, range: Range4) -> Vec<T> {
        assert!(
            range.fits_in(self.shape),
            "pack range {range:?} out of bounds for {:?}",
            self.shape.0
        );
        let mut out = Vec::with_capacity(range.len());
        let s = self.shape.strides();
        let row = range.hi[3] - range.lo[3];
        for a in range.lo[0]..range.hi[0] {
            for b in range.lo[1]..range.hi[1] {
                for c in range.lo[2]..range.hi[2] {
                    let base = a * s[0] + b * s[1] + c * s[2] + range.lo[3];
                    out.extend_from_slice(&self.data[base..base + row]);
                }
            }
        }
        out
    }

    /// Overwrite the elements of `range` from a packed buffer produced by
    /// [`Tensor4::pack_range`] on a range of identical extents.
    pub fn unpack_range(&mut self, range: Range4, buf: &[T]) {
        self.unpack_with(range, buf, |dst, src| *dst = src);
    }

    /// Accumulate (`+=`) a packed buffer into `range` — used for the final
    /// `Out` reduction when the processor grid replicates along `c`.
    pub fn add_unpack_range(&mut self, range: Range4, buf: &[T]) {
        self.unpack_with(range, buf, |dst, src| *dst += src);
    }

    fn unpack_with(&mut self, range: Range4, buf: &[T], mut f: impl FnMut(&mut T, T)) {
        assert!(
            range.fits_in(self.shape),
            "unpack range {range:?} out of bounds for {:?}",
            self.shape.0
        );
        assert_eq!(
            buf.len(),
            range.len(),
            "packed buffer length {} != range volume {}",
            buf.len(),
            range.len()
        );
        let s = self.shape.strides();
        let row = range.hi[3] - range.lo[3];
        let mut off = 0;
        for a in range.lo[0]..range.hi[0] {
            for b in range.lo[1]..range.hi[1] {
                for c in range.lo[2]..range.hi[2] {
                    let base = a * s[0] + b * s[1] + c * s[2] + range.lo[3];
                    for (dst, &src) in self.data[base..base + row]
                        .iter_mut()
                        .zip(buf[off..off + row].iter())
                    {
                        f(dst, src);
                    }
                    off += row;
                }
            }
        }
    }

    /// Copy `range` (coordinates of `src`) from `src` into the same range
    /// of `self`. Both tensors must contain the range.
    pub fn copy_range_from(&mut self, src: &Tensor4<T>, range: Range4) {
        let buf = src.pack_range(range);
        self.unpack_range(range, &buf);
    }

    /// Copy `src_range` of `src` into `dst_range` of `self`; the two
    /// ranges must have identical extents (a translated copy — the core
    /// of halo extraction and shard materialization).
    pub fn copy_translated(&mut self, src: &Tensor4<T>, src_range: Range4, dst_lo: Idx4) {
        let extents = src_range.extents();
        let dst_range = Range4::new(
            dst_lo,
            [
                dst_lo[0] + extents[0],
                dst_lo[1] + extents[1],
                dst_lo[2] + extents[2],
                dst_lo[3] + extents[3],
            ],
        );
        let buf = src.pack_range(src_range);
        self.unpack_range(dst_range, &buf);
    }

    /// Extract `range` as a new owned tensor with the range rebased to
    /// the origin.
    pub fn slice(&self, range: Range4) -> Tensor4<T> {
        Tensor4::from_vec(range.shape(), self.pack_range(range))
    }

    /// The contiguous `[d2][d3]` plane at `(d0, d1)` — e.g. one
    /// `(batch, channel)` image of `In`, or one `(k, c)` filter of
    /// `Ker`. Hot loops fetch a plane or [`row`](Tensor4::row) once and
    /// index into it, hoisting the 4-D offset multiply out of the inner
    /// loop (the bounds are checked once here; inner-loop accesses then
    /// compile to bare slice indexing).
    #[inline]
    pub fn plane(&self, d0: usize, d1: usize) -> &[T] {
        let d = self.shape.0;
        assert!(d0 < d[0] && d1 < d[1], "plane ({d0}, {d1}) OOB for {d:?}");
        let s = self.shape.strides();
        let base = d0 * s[0] + d1 * s[1];
        &self.data[base..base + s[1]]
    }

    /// The contiguous innermost row at `(d0, d1, d2)` (length `d3`).
    /// See [`plane`](Tensor4::plane) for why hot loops use this.
    #[inline]
    pub fn row(&self, d0: usize, d1: usize, d2: usize) -> &[T] {
        let d = self.shape.0;
        assert!(
            d0 < d[0] && d1 < d[1] && d2 < d[2],
            "row ({d0}, {d1}, {d2}) OOB for {d:?}"
        );
        let s = self.shape.strides();
        let base = d0 * s[0] + d1 * s[1] + d2 * s[2];
        &self.data[base..base + d[3]]
    }

    /// Mutable variant of [`row`](Tensor4::row).
    #[inline]
    pub fn row_mut(&mut self, d0: usize, d1: usize, d2: usize) -> &mut [T] {
        let d = self.shape.0;
        assert!(
            d0 < d[0] && d1 < d[1] && d2 < d[2],
            "row ({d0}, {d1}, {d2}) OOB for {d:?}"
        );
        let s = self.shape.strides();
        let base = d0 * s[0] + d1 * s[1] + d2 * s[2];
        &mut self.data[base..base + d[3]]
    }
}

impl<T: Scalar> std::ops::Index<Idx4> for Tensor4<T> {
    type Output = T;
    #[inline]
    fn index(&self, idx: Idx4) -> &T {
        &self.data[self.shape.offset(idx)]
    }
}

impl<T: Scalar> std::ops::IndexMut<Idx4> for Tensor4<T> {
    #[inline]
    fn index_mut(&mut self, idx: Idx4) -> &mut T {
        let o = self.shape.offset(idx);
        &mut self.data[o]
    }
}

/// Fill a mutable slice with deterministic pseudo-random scalars derived
/// from `seed` and each element's position.
pub fn fill_random<T: Scalar>(buf: &mut [T], seed: u64) {
    for (i, v) in buf.iter_mut().enumerate() {
        *v = T::from_u64_hash(seed ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(shape: Shape4) -> Tensor4<f64> {
        let data = (0..shape.len()).map(|i| i as f64).collect();
        Tensor4::from_vec(shape, data)
    }

    #[test]
    fn index_roundtrip() {
        let mut t = Tensor4::<f32>::zeros(Shape4::new(2, 3, 4, 5));
        t[[1, 2, 3, 4]] = 7.0;
        assert_eq!(t[[1, 2, 3, 4]], 7.0);
        assert_eq!(t.as_slice()[t.shape().offset([1, 2, 3, 4])], 7.0);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let t = seq_tensor(Shape4::new(3, 4, 5, 6));
        let r = Range4::new([1, 0, 2, 1], [3, 3, 4, 5]);
        let buf = t.pack_range(r);
        assert_eq!(buf.len(), r.len());
        let mut u = Tensor4::<f64>::zeros(t.shape());
        u.unpack_range(r, &buf);
        for idx in t.shape().full_range().iter() {
            let expect = if r.contains(idx) { t[idx] } else { 0.0 };
            assert_eq!(u[idx], expect, "at {idx:?}");
        }
    }

    #[test]
    fn pack_order_is_row_major() {
        let t = seq_tensor(Shape4::new(2, 2, 2, 4));
        let r = Range4::new([0, 0, 0, 1], [1, 1, 2, 3]);
        // rows [0,0,0,1..3] then [0,0,1,1..3]
        assert_eq!(t.pack_range(r), vec![1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn add_unpack_accumulates() {
        let mut t = Tensor4::<f64>::zeros(Shape4::new(1, 1, 2, 2));
        let r = t.shape().full_range();
        t.add_unpack_range(r, &[1.0, 2.0, 3.0, 4.0]);
        t.add_unpack_range(r, &[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(t.as_slice(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn copy_translated_moves_window() {
        let src = seq_tensor(Shape4::new(1, 1, 4, 4));
        let mut dst = Tensor4::<f64>::zeros(Shape4::new(1, 1, 2, 2));
        dst.copy_translated(&src, Range4::new([0, 0, 1, 1], [1, 1, 3, 3]), [0, 0, 0, 0]);
        assert_eq!(dst.as_slice(), &[5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn slice_rebases() {
        let t = seq_tensor(Shape4::new(2, 2, 2, 2));
        let s = t.slice(Range4::new([1, 0, 0, 0], [2, 2, 2, 2]));
        assert_eq!(s.shape(), Shape4::new(1, 2, 2, 2));
        assert_eq!(s[[0, 0, 0, 0]], t[[1, 0, 0, 0]]);
    }

    #[test]
    fn random_window_matches_global() {
        let g = Shape4::new(4, 4, 8, 8);
        let full = Tensor4::<f32>::random(g, 99);
        let win = Range4::new([1, 2, 3, 0], [3, 4, 6, 8]);
        let shard = Tensor4::<f32>::random_window(win.shape(), 99, win.lo, g);
        for idx in win.shape().full_range().iter() {
            let gidx = [
                win.lo[0] + idx[0],
                win.lo[1] + idx[1],
                win.lo[2] + idx[2],
                win.lo[3] + idx[3],
            ];
            assert_eq!(shard[idx], full[gidx]);
        }
    }

    #[test]
    fn random_is_seed_sensitive() {
        let s = Shape4::new(1, 1, 4, 4);
        let a = Tensor4::<f64>::random(s, 1);
        let b = Tensor4::<f64>::random(s, 2);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn plane_and_row_accessors() {
        let t = seq_tensor(Shape4::new(2, 3, 4, 5));
        let s = t.shape().strides();
        let plane = t.plane(1, 2);
        assert_eq!(plane.len(), 4 * 5);
        assert_eq!(plane[0], t[[1, 2, 0, 0]]);
        assert_eq!(plane[s[2] * 3 + 4], t[[1, 2, 3, 4]]);
        let row = t.row(1, 2, 3);
        assert_eq!(row.len(), 5);
        for y in 0..5 {
            assert_eq!(row[y], t[[1, 2, 3, y]]);
        }
        let mut t = t;
        t.row_mut(0, 1, 2)[3] = -7.0;
        assert_eq!(t[[0, 1, 2, 3]], -7.0);
    }

    #[test]
    #[should_panic(expected = "OOB")]
    fn row_out_of_bounds_panics() {
        let t = Tensor4::<f32>::zeros(Shape4::new(1, 1, 2, 2));
        let _ = t.row(0, 0, 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn pack_out_of_bounds_panics() {
        let t = Tensor4::<f32>::zeros(Shape4::new(1, 1, 2, 2));
        let _ = t.pack_range(Range4::new([0, 0, 0, 0], [1, 1, 3, 2]));
    }

    #[test]
    #[should_panic(expected = "packed buffer length")]
    fn unpack_wrong_len_panics() {
        let mut t = Tensor4::<f32>::zeros(Shape4::new(1, 1, 2, 2));
        t.unpack_range(t.shape().full_range(), &[0.0; 3]);
    }
}

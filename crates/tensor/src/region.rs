//! Halo arithmetic: which input region does an output tile read?
//!
//! The CNN indexing `In[b, c, σw·w + r, σh·h + s]` (paper Eq. at Sec. 1)
//! means an output tile of extent `Tw × Th` reads an input window of
//! extent `(σw·Tw + Nr − 1) × (σh·Th + Ns − 1)` — the "halo" the paper's
//! footprint expressions (Eq. 1, 3, 11) carry around. Centralizing the
//! arithmetic here keeps the tiled executor, the distributed data
//! distribution, and the analytical model in exact agreement.

use crate::shape::Range4;

/// Extent of input pixels read along one spatial dimension by `t_out`
/// contiguous output pixels with stride `sigma` and kernel extent `n_ker`:
/// `σ·T + N − σ` ... precisely: outputs `o, o+1, …, o+t_out−1` read inputs
/// `σ·o + 0 … σ·(o+t_out−1) + (n_ker−1)`, an extent of
/// `σ·(t_out−1) + n_ker`.
///
/// Note the paper writes this as `σ·T + N − 1`, which equals
/// `σ·(T−1) + N + (σ−1)`; the two agree for σ=1 and the paper's form is
/// an upper bound for σ>1. We use the exact extent for execution and the
/// paper's form in the analytical model (matching its equations).
#[inline]
pub fn conv_input_extent(t_out: usize, sigma: usize, n_ker: usize) -> usize {
    if t_out == 0 {
        return 0;
    }
    sigma * (t_out - 1) + n_ker
}

/// The paper's halo-extent form `σ·T + N − 1` (used verbatim by the cost
/// model so measured and modeled volumes can be compared term-for-term).
#[inline]
pub fn paper_input_extent(t_out: usize, sigma: usize, n_ker: usize) -> usize {
    if t_out == 0 {
        return 0;
    }
    sigma * t_out + n_ker - 1
}

/// Map an `Out` tile range (dimensions `[b, k, w, h]`) to the `In` region
/// it reads (dimensions `[b, c, x, y]` where `x = σw·w + r`,
/// `y = σh·h + s`), for input channels `[c_lo, c_hi)`.
///
/// The returned range is in global input coordinates and is exact
/// (σ·(T−1)+N extents).
pub fn conv_input_region(
    out_range: Range4,
    c_lo: usize,
    c_hi: usize,
    sigma_w: usize,
    sigma_h: usize,
    nr: usize,
    ns: usize,
) -> Range4 {
    let [b_lo, _k_lo, w_lo, h_lo] = out_range.lo;
    let [b_hi, _k_hi, w_hi, h_hi] = out_range.hi;
    let tw = w_hi - w_lo;
    let th = h_hi - h_lo;
    Range4::new(
        [b_lo, c_lo, sigma_w * w_lo, sigma_h * h_lo],
        [
            b_hi,
            c_hi,
            sigma_w * w_lo + conv_input_extent(tw, sigma_w, nr),
            sigma_h * h_lo + conv_input_extent(th, sigma_h, ns),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_unit_stride() {
        // 3 outputs, 3-wide kernel, stride 1: inputs 0..5 → extent 5.
        assert_eq!(conv_input_extent(3, 1, 3), 5);
        assert_eq!(paper_input_extent(3, 1, 3), 5); // agrees at σ=1
    }

    #[test]
    fn extent_strided() {
        // 3 outputs, 3-wide kernel, stride 2: inputs 0..2·2+2 → extent 7.
        assert_eq!(conv_input_extent(3, 2, 3), 7);
        // paper form is an upper bound for σ>1
        assert_eq!(paper_input_extent(3, 2, 3), 8);
        assert!(paper_input_extent(3, 2, 3) >= conv_input_extent(3, 2, 3));
    }

    #[test]
    fn extent_zero_tile() {
        assert_eq!(conv_input_extent(0, 1, 3), 0);
        assert_eq!(paper_input_extent(0, 2, 5), 0);
    }

    #[test]
    fn region_covers_all_reads() {
        // Exhaustively confirm every (w, h, r, s) read falls inside the
        // computed region, and the region's corners are attained.
        let (sw, sh, nr, ns) = (2usize, 1usize, 3usize, 5usize);
        let out = Range4::new([0, 0, 2, 1], [2, 4, 5, 4]); // [b,k,w,h]
        let reg = conv_input_region(out, 1, 3, sw, sh, nr, ns);
        assert_eq!(reg.lo, [0, 1, 4, 1]);
        let mut max_x = 0;
        let mut max_y = 0;
        for w in out.lo[2]..out.hi[2] {
            for h in out.lo[3]..out.hi[3] {
                for r in 0..nr {
                    for s in 0..ns {
                        let x = sw * w + r;
                        let y = sh * h + s;
                        assert!(
                            reg.contains([out.lo[0], 1, x, y]),
                            "read ({x},{y}) outside {reg:?}"
                        );
                        max_x = max_x.max(x);
                        max_y = max_y.max(y);
                    }
                }
            }
        }
        assert_eq!(reg.hi[2], max_x + 1, "x extent not tight");
        assert_eq!(reg.hi[3], max_y + 1, "y extent not tight");
    }

    #[test]
    fn region_batch_and_channel_passthrough() {
        let out = Range4::new([3, 0, 0, 0], [5, 2, 1, 1]);
        let reg = conv_input_region(out, 2, 7, 1, 1, 1, 1);
        assert_eq!((reg.lo[0], reg.hi[0]), (3, 5)); // batch preserved
        assert_eq!((reg.lo[1], reg.hi[1]), (2, 7)); // channels from args
        assert_eq!(reg.extents()[2], 1); // 1x1 kernel, stride 1
    }
}

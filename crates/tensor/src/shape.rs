//! Shapes, indices and closed–open multi-dimensional ranges.
//!
//! The paper manipulates 4-D tensors (`In[b,c,y,x]`, `Ker[k,c,r,s]`,
//! `Out[b,k,w,h]`); all shape arithmetic used by the tiled executors and
//! the distributed data-distribution code lives here so it can be tested
//! in isolation.

/// Shape of a 4-D tensor, row-major (last dimension contiguous).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Shape4(pub [usize; 4]);

/// A 4-D index.
pub type Idx4 = [usize; 4];

impl Shape4 {
    /// Construct from four extents.
    pub fn new(d0: usize, d1: usize, d2: usize, d3: usize) -> Self {
        Shape4([d0, d1, d2, d3])
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// True if any extent is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides (elements).
    pub fn strides(&self) -> [usize; 4] {
        let d = self.0;
        [d[1] * d[2] * d[3], d[2] * d[3], d[3], 1]
    }

    /// Linear offset of `idx`, debug-checked against the extents.
    #[inline]
    pub fn offset(&self, idx: Idx4) -> usize {
        debug_assert!(
            idx.iter().zip(self.0.iter()).all(|(i, d)| i < d),
            "index {idx:?} out of bounds for shape {:?}",
            self.0
        );
        let s = self.strides();
        idx[0] * s[0] + idx[1] * s[1] + idx[2] * s[2] + idx[3] * s[3]
    }

    /// The full range `[0, d) × … × [0, d)`.
    pub fn full_range(&self) -> Range4 {
        Range4 {
            lo: [0; 4],
            hi: self.0,
        }
    }

    /// Inverse of [`Shape4::offset`]: the 4-D index of linear offset `lin`.
    pub fn unoffset(&self, lin: usize) -> Idx4 {
        debug_assert!(lin < self.len());
        let s = self.strides();
        [
            lin / s[0],
            (lin % s[0]) / s[1],
            (lin % s[1]) / s[2],
            lin % s[2],
        ]
    }
}

/// A closed–open 4-D range `[lo, hi)`, the unit of data the tiled and
/// distributed executors move around (a tensor *slice* in the paper's
/// terminology).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Range4 {
    /// Inclusive lower corner.
    pub lo: Idx4,
    /// Exclusive upper corner.
    pub hi: Idx4,
}

impl Range4 {
    /// Construct from corner arrays; `hi[i] >= lo[i]` is required.
    pub fn new(lo: Idx4, hi: Idx4) -> Self {
        assert!(
            lo.iter().zip(hi.iter()).all(|(l, h)| l <= h),
            "invalid range lo={lo:?} hi={hi:?}"
        );
        Range4 { lo, hi }
    }

    /// Extent along each dimension.
    pub fn extents(&self) -> [usize; 4] {
        [
            self.hi[0] - self.lo[0],
            self.hi[1] - self.lo[1],
            self.hi[2] - self.lo[2],
            self.hi[3] - self.lo[3],
        ]
    }

    /// The shape of the slice this range selects.
    pub fn shape(&self) -> Shape4 {
        Shape4(self.extents())
    }

    /// Number of elements selected.
    pub fn len(&self) -> usize {
        self.extents().iter().product()
    }

    /// True if the range selects no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `self` lies fully inside a tensor of shape `shape`.
    pub fn fits_in(&self, shape: Shape4) -> bool {
        self.hi.iter().zip(shape.0.iter()).all(|(h, d)| h <= d)
    }

    /// Elementwise intersection, or `None` if disjoint/empty.
    pub fn intersect(&self, other: &Range4) -> Option<Range4> {
        let mut lo = [0; 4];
        let mut hi = [0; 4];
        for i in 0..4 {
            lo[i] = self.lo[i].max(other.lo[i]);
            hi[i] = self.hi[i].min(other.hi[i]);
            if lo[i] >= hi[i] {
                return None;
            }
        }
        Some(Range4 { lo, hi })
    }

    /// True if `idx` is inside the range.
    pub fn contains(&self, idx: Idx4) -> bool {
        (0..4).all(|i| self.lo[i] <= idx[i] && idx[i] < self.hi[i])
    }

    /// Translate so that `self.lo` becomes the origin (used when a global
    /// slice is copied into a freshly allocated local buffer).
    pub fn rebase(&self) -> Range4 {
        Range4 {
            lo: [0; 4],
            hi: self.extents(),
        }
    }

    /// Translate by `-origin` (global coordinates → coordinates inside a
    /// buffer whose element `[0,0,0,0]` is global `origin`).
    pub fn relative_to(&self, origin: Idx4) -> Range4 {
        let mut lo = [0; 4];
        let mut hi = [0; 4];
        for i in 0..4 {
            assert!(
                self.lo[i] >= origin[i],
                "range {self:?} not within origin {origin:?}"
            );
            lo[i] = self.lo[i] - origin[i];
            hi[i] = self.hi[i] - origin[i];
        }
        Range4 { lo, hi }
    }

    /// Iterate over all contained indices in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Idx4> + '_ {
        let lo = self.lo;
        let hi = self.hi;
        (lo[0]..hi[0]).flat_map(move |a| {
            (lo[1]..hi[1]).flat_map(move |b| {
                (lo[2]..hi[2]).flat_map(move |c| (lo[3]..hi[3]).map(move |d| [a, b, c, d]))
            })
        })
    }
}

/// Split `[0, n)` into `parts` contiguous chunks as evenly as possible;
/// chunk `i` is `[chunk_lo(i), chunk_lo(i+1))`. The first `n % parts`
/// chunks get one extra element — the standard block distribution used
/// for initial data placement.
#[derive(Clone, Copy, Debug)]
pub struct BlockDist {
    /// Total extent being distributed.
    pub n: usize,
    /// Number of chunks.
    pub parts: usize,
}

impl BlockDist {
    /// Create a distribution of `n` items over `parts` chunks.
    pub fn new(n: usize, parts: usize) -> Self {
        assert!(parts > 0, "cannot distribute over zero parts");
        BlockDist { n, parts }
    }

    /// Start of chunk `i` (also valid for `i == parts`, giving `n`).
    pub fn lo(&self, i: usize) -> usize {
        debug_assert!(i <= self.parts);
        let base = self.n / self.parts;
        let extra = self.n % self.parts;
        base * i + extra.min(i)
    }

    /// `[lo, hi)` bounds of chunk `i`.
    pub fn range(&self, i: usize) -> (usize, usize) {
        (self.lo(i), self.lo(i + 1))
    }

    /// Length of chunk `i`.
    pub fn len(&self, i: usize) -> usize {
        let (l, h) = self.range(i);
        h - l
    }

    /// True if every chunk is empty (`n == 0`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Which chunk owns item `x`.
    pub fn owner(&self, x: usize) -> usize {
        debug_assert!(x < self.n);
        let base = self.n / self.parts;
        let extra = self.n % self.parts;
        let fat = (base + 1) * extra; // items covered by the fat chunks
        if base == 0 || x < fat {
            x / (base + 1)
        } else {
            extra + (x - fat) / base
        }
    }

    /// Largest chunk length (the capacity a receiver must budget for).
    pub fn max_len(&self) -> usize {
        if self.n == 0 {
            0
        } else {
            self.n / self.parts + usize::from(!self.n.is_multiple_of(self.parts))
        }
    }
}

/// Exact integer ceiling division.
#[inline]
pub fn ceil_div(a: usize, b: usize) -> usize {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_offsets_roundtrip() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.len(), 120);
        let mut seen = vec![false; s.len()];
        for idx in s.full_range().iter() {
            let o = s.offset(idx);
            assert!(!seen[o], "duplicate offset for {idx:?}");
            seen[o] = true;
            assert_eq!(s.unoffset(o), idx);
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.strides(), [60, 20, 5, 1]);
        // Last dim contiguous.
        assert_eq!(s.offset([0, 0, 0, 1]) - s.offset([0, 0, 0, 0]), 1);
    }

    #[test]
    fn range_len_and_intersect() {
        let a = Range4::new([0, 0, 0, 0], [4, 4, 4, 4]);
        let b = Range4::new([2, 2, 2, 2], [6, 6, 6, 6]);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, Range4::new([2, 2, 2, 2], [4, 4, 4, 4]));
        assert_eq!(i.len(), 16);
        let c = Range4::new([4, 0, 0, 0], [5, 1, 1, 1]);
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn range_iter_covers_in_order() {
        let r = Range4::new([1, 0, 2, 0], [3, 2, 3, 2]);
        let v: Vec<_> = r.iter().collect();
        assert_eq!(v.len(), r.len());
        assert_eq!(v[0], [1, 0, 2, 0]);
        assert_eq!(v[1], [1, 0, 2, 1]);
        assert_eq!(*v.last().unwrap(), [2, 1, 2, 1]);
    }

    #[test]
    fn range_relative() {
        let r = Range4::new([4, 2, 8, 8], [6, 3, 12, 16]);
        let rel = r.relative_to([4, 2, 8, 8]);
        assert_eq!(rel, Range4::new([0, 0, 0, 0], [2, 1, 4, 8]));
        assert_eq!(r.rebase().hi, rel.hi);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn bad_range_panics() {
        let _ = Range4::new([2, 0, 0, 0], [1, 1, 1, 1]);
    }

    #[test]
    fn block_dist_partitions() {
        for n in [0usize, 1, 7, 16, 100] {
            for p in [1usize, 2, 3, 7, 16] {
                let d = BlockDist::new(n, p);
                assert_eq!(d.lo(0), 0);
                assert_eq!(d.lo(p), n);
                let mut total = 0;
                for i in 0..p {
                    let (l, h) = d.range(i);
                    assert!(l <= h);
                    assert!(h - l <= d.max_len());
                    total += h - l;
                    for x in l..h {
                        assert_eq!(d.owner(x), i, "n={n} p={p} x={x}");
                    }
                }
                assert_eq!(total, n);
            }
        }
    }

    #[test]
    fn block_dist_evenness() {
        let d = BlockDist::new(10, 3);
        assert_eq!((0..3).map(|i| d.len(i)).collect::<Vec<_>>(), vec![4, 3, 3]);
        assert_eq!(d.max_len(), 4);
    }

    #[test]
    fn ceil_div_cases() {
        assert_eq!(ceil_div(0, 3), 0);
        assert_eq!(ceil_div(1, 3), 1);
        assert_eq!(ceil_div(3, 3), 1);
        assert_eq!(ceil_div(4, 3), 2);
    }
}

//! Property-based tests for the tensor substrate: pack/unpack
//! round-trips, block distributions, and halo-region tightness under
//! randomized shapes and ranges.

use distconv_tensor::shape::{BlockDist, Range4, Shape4};
use distconv_tensor::{conv_input_extent, conv_input_region, Tensor4};
use proptest::prelude::*;

/// A random shape with extents 1..=6 (keeps the O(n⁴) walks cheap).
fn arb_shape() -> impl Strategy<Value = Shape4> {
    (1usize..=6, 1usize..=6, 1usize..=6, 1usize..=6)
        .prop_map(|(a, b, c, d)| Shape4::new(a, b, c, d))
}

/// A random shape together with a non-empty sub-range of it.
fn arb_shape_and_range() -> impl Strategy<Value = (Shape4, Range4)> {
    arb_shape().prop_flat_map(|s| arb_range(s).prop_map(move |r| (s, r)))
}

/// A random non-empty sub-range of `shape`.
fn arb_range(shape: Shape4) -> impl Strategy<Value = Range4> {
    let d = shape.0;
    (
        0..d[0],
        0..d[1],
        0..d[2],
        0..d[3],
    )
        .prop_flat_map(move |(l0, l1, l2, l3)| {
            (
                Just([l0, l1, l2, l3]),
                (l0 + 1..=d[0]),
                (l1 + 1..=d[1]),
                (l2 + 1..=d[2]),
                (l3 + 1..=d[3]),
            )
        })
        .prop_map(|(lo, h0, h1, h2, h3)| Range4::new(lo, [h0, h1, h2, h3]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pack_unpack_roundtrip(
        (shape, range) in arb_shape_and_range(),
        seed in any::<u64>(),
    ) {
        let t = Tensor4::<f64>::random(shape, seed);
        let packed = t.pack_range(range);
        prop_assert_eq!(packed.len(), range.len());
        let mut u = Tensor4::<f64>::zeros(shape);
        u.unpack_range(range, &packed);
        for idx in shape.full_range().iter() {
            let expect = if range.contains(idx) { t[idx] } else { 0.0 };
            prop_assert_eq!(u[idx], expect);
        }
    }

    #[test]
    fn slice_then_index_matches(
        (shape, range) in arb_shape_and_range(),
        seed in any::<u64>(),
    ) {
        let t = Tensor4::<f32>::random(shape, seed);
        let s = t.slice(range);
        prop_assert_eq!(s.shape(), range.shape());
        for idx in range.shape().full_range().iter() {
            let g = [
                range.lo[0] + idx[0],
                range.lo[1] + idx[1],
                range.lo[2] + idx[2],
                range.lo[3] + idx[3],
            ];
            prop_assert_eq!(s[idx], t[g]);
        }
    }

    #[test]
    fn random_window_is_restriction(
        (shape, range) in arb_shape_and_range(),
        seed in any::<u64>(),
    ) {
        // Any window of the global random tensor equals the directly
        // materialized shard — the invariant distributed ranks rely on.
        let full = Tensor4::<f64>::random(shape, seed);
        let shard = Tensor4::<f64>::random_window(range.shape(), seed, range.lo, shape);
        for idx in range.shape().full_range().iter() {
            let g = [
                range.lo[0] + idx[0],
                range.lo[1] + idx[1],
                range.lo[2] + idx[2],
                range.lo[3] + idx[3],
            ];
            prop_assert_eq!(shard[idx], full[g]);
        }
    }

    #[test]
    fn block_dist_partitions_exactly(n in 0usize..200, parts in 1usize..20) {
        let d = BlockDist::new(n, parts);
        let mut total = 0;
        let mut prev_hi = 0;
        for i in 0..parts {
            let (lo, hi) = d.range(i);
            prop_assert_eq!(lo, prev_hi, "chunks must be contiguous");
            prop_assert!(hi - lo <= d.max_len());
            // Even-ness: no chunk more than 1 longer than another.
            prop_assert!(d.len(i) + 1 >= d.len(parts - 1));
            total += hi - lo;
            prev_hi = hi;
            for x in lo..hi {
                prop_assert_eq!(d.owner(x), i);
            }
        }
        prop_assert_eq!(total, n);
    }

    #[test]
    fn conv_region_is_tight(
        tw in 1usize..6,
        th in 1usize..6,
        sw in 1usize..3,
        sh in 1usize..3,
        nr in 1usize..4,
        ns in 1usize..4,
    ) {
        // The computed region contains exactly the read inputs: both
        // bounds attained, nothing beyond.
        let out = Range4::new([0, 0, 0, 0], [1, 1, tw, th]);
        let reg = conv_input_region(out, 0, 1, sw, sh, nr, ns);
        let mut max_x = 0;
        let mut max_y = 0;
        for w in 0..tw {
            for h in 0..th {
                for r in 0..nr {
                    for s in 0..ns {
                        let (x, y) = (sw * w + r, sh * h + s);
                        prop_assert!(reg.contains([0, 0, x, y]));
                        max_x = max_x.max(x);
                        max_y = max_y.max(y);
                    }
                }
            }
        }
        prop_assert_eq!(reg.hi[2], max_x + 1);
        prop_assert_eq!(reg.hi[3], max_y + 1);
        prop_assert_eq!(reg.extents()[2], conv_input_extent(tw, sw, nr));
        prop_assert_eq!(reg.extents()[3], conv_input_extent(th, sh, ns));
    }

    #[test]
    fn add_unpack_is_linear(shape in arb_shape(), seed in any::<u64>()) {
        // unpack(x) then add_unpack(y) == unpack of (x + y).
        let full = shape.full_range();
        let x = Tensor4::<f64>::random(shape, seed);
        let y = Tensor4::<f64>::random(shape, seed ^ 0xFFFF);
        let mut a = Tensor4::<f64>::zeros(shape);
        a.unpack_range(full, x.as_slice());
        a.add_unpack_range(full, y.as_slice());
        for idx in full.iter() {
            prop_assert_eq!(a[idx], x[idx] + y[idx]);
        }
    }
}

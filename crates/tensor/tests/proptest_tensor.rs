//! Property-based tests for the tensor substrate: pack/unpack
//! round-trips, block distributions, and halo-region tightness under
//! randomized shapes and ranges. Runs on the in-tree
//! `distconv_par::proptest_mini` harness (replay a failure with
//! `DISTCONV_PROPTEST_SEED=<seed from the failure report>`).

use distconv_par::proptest_mini::{check, Config, Gen};
use distconv_tensor::shape::{BlockDist, Range4, Shape4};
use distconv_tensor::{conv_input_extent, conv_input_region, Tensor4};

/// A random shape with extents 1..=6 (keeps the O(n⁴) walks cheap).
fn gen_shape(g: &mut Gen) -> Shape4 {
    Shape4::new(
        g.usize_in(1, 6),
        g.usize_in(1, 6),
        g.usize_in(1, 6),
        g.usize_in(1, 6),
    )
}

/// A random non-empty sub-range of `shape`.
fn gen_range(g: &mut Gen, shape: Shape4) -> Range4 {
    let d = shape.0;
    let lo = [
        g.usize_in(0, d[0] - 1),
        g.usize_in(0, d[1] - 1),
        g.usize_in(0, d[2] - 1),
        g.usize_in(0, d[3] - 1),
    ];
    let hi = [
        g.usize_in(lo[0] + 1, d[0]),
        g.usize_in(lo[1] + 1, d[1]),
        g.usize_in(lo[2] + 1, d[2]),
        g.usize_in(lo[3] + 1, d[3]),
    ];
    Range4::new(lo, hi)
}

#[test]
fn pack_unpack_roundtrip() {
    check("pack_unpack_roundtrip", Config::with_cases(64), |g| {
        let shape = gen_shape(g);
        let range = gen_range(g, shape);
        let seed = g.u64();
        let t = Tensor4::<f64>::random(shape, seed);
        let packed = t.pack_range(range);
        assert_eq!(packed.len(), range.len());
        let mut u = Tensor4::<f64>::zeros(shape);
        u.unpack_range(range, &packed);
        for idx in shape.full_range().iter() {
            let expect = if range.contains(idx) { t[idx] } else { 0.0 };
            assert_eq!(u[idx], expect);
        }
    });
}

#[test]
fn slice_then_index_matches() {
    check("slice_then_index_matches", Config::with_cases(64), |g| {
        let shape = gen_shape(g);
        let range = gen_range(g, shape);
        let seed = g.u64();
        let t = Tensor4::<f32>::random(shape, seed);
        let s = t.slice(range);
        assert_eq!(s.shape(), range.shape());
        for idx in range.shape().full_range().iter() {
            let g4 = [
                range.lo[0] + idx[0],
                range.lo[1] + idx[1],
                range.lo[2] + idx[2],
                range.lo[3] + idx[3],
            ];
            assert_eq!(s[idx], t[g4]);
        }
    });
}

#[test]
fn random_window_is_restriction() {
    check(
        "random_window_is_restriction",
        Config::with_cases(64),
        |g| {
            // Any window of the global random tensor equals the directly
            // materialized shard — the invariant distributed ranks rely on.
            let shape = gen_shape(g);
            let range = gen_range(g, shape);
            let seed = g.u64();
            let full = Tensor4::<f64>::random(shape, seed);
            let shard = Tensor4::<f64>::random_window(range.shape(), seed, range.lo, shape);
            for idx in range.shape().full_range().iter() {
                let g4 = [
                    range.lo[0] + idx[0],
                    range.lo[1] + idx[1],
                    range.lo[2] + idx[2],
                    range.lo[3] + idx[3],
                ];
                assert_eq!(shard[idx], full[g4]);
            }
        },
    );
}

#[test]
fn block_dist_partitions_exactly() {
    check(
        "block_dist_partitions_exactly",
        Config::with_cases(64),
        |g| {
            let n = g.usize_in(0, 199);
            let parts = g.usize_in(1, 19);
            let d = BlockDist::new(n, parts);
            let mut total = 0;
            let mut prev_hi = 0;
            for i in 0..parts {
                let (lo, hi) = d.range(i);
                assert_eq!(lo, prev_hi, "chunks must be contiguous");
                assert!(hi - lo <= d.max_len());
                // Even-ness: no chunk more than 1 longer than another.
                assert!(d.len(i) + 1 >= d.len(parts - 1));
                total += hi - lo;
                prev_hi = hi;
                for x in lo..hi {
                    assert_eq!(d.owner(x), i);
                }
            }
            assert_eq!(total, n);
        },
    );
}

#[test]
fn conv_region_is_tight() {
    check("conv_region_is_tight", Config::with_cases(64), |g| {
        // The computed region contains exactly the read inputs: both
        // bounds attained, nothing beyond.
        let tw = g.usize_in(1, 5);
        let th = g.usize_in(1, 5);
        let sw = g.usize_in(1, 2);
        let sh = g.usize_in(1, 2);
        let nr = g.usize_in(1, 3);
        let ns = g.usize_in(1, 3);
        let out = Range4::new([0, 0, 0, 0], [1, 1, tw, th]);
        let reg = conv_input_region(out, 0, 1, sw, sh, nr, ns);
        let mut max_x = 0;
        let mut max_y = 0;
        for w in 0..tw {
            for h in 0..th {
                for r in 0..nr {
                    for s in 0..ns {
                        let (x, y) = (sw * w + r, sh * h + s);
                        assert!(reg.contains([0, 0, x, y]));
                        max_x = max_x.max(x);
                        max_y = max_y.max(y);
                    }
                }
            }
        }
        assert_eq!(reg.hi[2], max_x + 1);
        assert_eq!(reg.hi[3], max_y + 1);
        assert_eq!(reg.extents()[2], conv_input_extent(tw, sw, nr));
        assert_eq!(reg.extents()[3], conv_input_extent(th, sh, ns));
    });
}

#[test]
fn add_unpack_is_linear() {
    check("add_unpack_is_linear", Config::with_cases(64), |g| {
        // unpack(x) then add_unpack(y) == unpack of (x + y).
        let shape = gen_shape(g);
        let seed = g.u64();
        let full = shape.full_range();
        let x = Tensor4::<f64>::random(shape, seed);
        let y = Tensor4::<f64>::random(shape, seed ^ 0xFFFF);
        let mut a = Tensor4::<f64>::zeros(shape);
        a.unpack_range(full, x.as_slice());
        a.add_unpack_range(full, y.as_slice());
        for idx in full.iter() {
            assert_eq!(a[idx], x[idx] + y[idx]);
        }
    });
}

//! SIMD-vs-scalar bitwise equivalence for the GEMM micro-kernel.
//!
//! The workspace contract is that kernel dispatch is *invisible*: the
//! AVX2 kernels must produce bit-for-bit the results of the scalar
//! kernel, because goldens, traffic counters, and cross-host
//! reproducibility all assume results are a pure function of the
//! workload. These properties drive both paths explicitly through
//! `gemm_acc_rows_with` (no global dispatch state mutated), over random
//! shapes covering every `mr ≤ MR_MAX`, vector tails (`n % lanes ≠ 0`),
//! strided output rows, panel column offsets, and overlapping right-row
//! offset tables (the implicit-im2col aliasing pattern).
//!
//! On hosts without AVX2 the comparison is vacuous (both calls take the
//! scalar kernel); a loud skip note is printed so a green run on such a
//! host is not mistaken for wide-path coverage.

use distconv_par::proptest_mini::{check, Config, Gen};
use distconv_tensor::gemm::{gemm_acc_rows_with, pack_transposed, MR_MAX};
use distconv_tensor::simd::{detect, SimdPath};
use distconv_tensor::Scalar;

/// Generate one random kernel invocation and run it on both paths.
/// Returns false (skip) when the host has no wide path.
fn both_paths_bitwise<T: Scalar>(g: &mut Gen, label: &str) {
    let mr = g.usize_in(1, MR_MAX);
    let kc = g.usize_in(1, 24);
    // Cover sub-lane, exact-lane, and tail widths for both f32 (8
    // lanes) and f64 (4 lanes).
    let n = g.usize_in(1, 40);
    let c_stride = n + g.usize_in(0, 5);
    let extra_cols = g.usize_in(0, 3);
    let i0 = g.usize_in(0, extra_cols);
    let m_total = mr + extra_cols;

    let a: Vec<T> = (0..m_total * kc)
        .map(|x| T::from_u64_hash(g.u64().wrapping_add(x as u64)))
        .collect();
    let mut at = Vec::new();
    pack_transposed(&a, m_total, kc, &mut at);

    // Right-hand rows through an offset table; half the time overlap
    // rows inside one shared buffer (the im2col halo-aliasing shape).
    let overlap = g.bool();
    let b_len = if overlap {
        n + kc + g.usize_in(0, 8)
    } else {
        kc * n
    };
    let b: Vec<T> = (0..b_len).map(|_| T::from_u64_hash(g.u64())).collect();
    let b_off: Vec<usize> = (0..kc)
        .map(|j| {
            if overlap {
                g.usize_in(0, b_len - n)
            } else {
                j * n
            }
        })
        .collect();

    // Random prior contents — the kernel accumulates.
    let c_init: Vec<T> = (0..(mr - 1) * c_stride + n)
        .map(|_| T::from_u64_hash(g.u64()))
        .collect();

    let mut c_scalar = c_init.clone();
    gemm_acc_rows_with(
        SimdPath::Scalar,
        &mut c_scalar,
        c_stride,
        mr,
        n,
        &at,
        m_total,
        i0,
        &b,
        &b_off,
    );
    let mut c_simd = c_init;
    gemm_acc_rows_with(
        SimdPath::Avx2,
        &mut c_simd,
        c_stride,
        mr,
        n,
        &at,
        m_total,
        i0,
        &b,
        &b_off,
    );

    for (i, (s, v)) in c_scalar.iter().zip(&c_simd).enumerate() {
        assert!(
            s == v,
            "{label}: bitwise mismatch at flat index {i} \
             (mr={mr} kc={kc} n={n} c_stride={c_stride} i0={i0} overlap={overlap}): \
             scalar {s:?} vs simd {v:?} [case seed {}]",
            g.case_seed()
        );
    }
}

fn wide_path_available() -> bool {
    if detect() == SimdPath::Avx2 {
        true
    } else {
        eprintln!(
            "SKIP-NOTE: host has no avx2+fma — simd_equivalence properties are \
             vacuous (both paths scalar)"
        );
        false
    }
}

#[test]
fn simd_matches_scalar_bitwise_f32() {
    if !wide_path_available() {
        return;
    }
    check(
        "simd_matches_scalar_bitwise_f32",
        Config::with_cases(300),
        |g| both_paths_bitwise::<f32>(g, "f32"),
    );
}

#[test]
fn simd_matches_scalar_bitwise_f64() {
    if !wide_path_available() {
        return;
    }
    check(
        "simd_matches_scalar_bitwise_f64",
        Config::with_cases(300),
        |g| both_paths_bitwise::<f64>(g, "f64"),
    );
}

#[test]
fn accumulation_order_is_j_ascending_on_both_paths() {
    // Pin the *order* contract itself, not just path agreement: a
    // kernel summing j in a different order would produce the rounding
    // signature of that order. 1×1 output with catastrophic
    // cancellation makes the order observable: (1 + eps) - 1 ≠ eps
    // rounds differently from (1 - 1) + eps.
    if detect() != SimdPath::Avx2 {
        eprintln!("SKIP-NOTE: host has no avx2+fma — order probe runs scalar only");
    }
    let eps = f32::EPSILON / 2.0; // absorbed when added to 1.0
    let at = vec![1.0f32, 1.0, 1.0]; // kc=3, mr=1 panel
    let b = vec![1.0f32, eps, -1.0];
    let b_off = [0usize, 1, 2];
    // Ascending j: (((0+1)+eps)-1) = 0 because 1+eps rounds to 1.
    for path in [SimdPath::Scalar, SimdPath::Avx2] {
        if path == SimdPath::Avx2 && detect() != SimdPath::Avx2 {
            continue;
        }
        let mut c = vec![0.0f32];
        gemm_acc_rows_with(path, &mut c, 1, 1, 1, &at, 1, 0, &b, &b_off);
        assert_eq!(c[0], 0.0, "path {path:?} must accumulate j ascending");
    }
}

#[test]
fn fma_contraction_is_not_used() {
    // A fused multiply-add rounds a·b+acc once; mul-then-add rounds
    // twice. Pick operands where the two differ and require the
    // two-rounding (scalar-identical) result on the wide path.
    if detect() != SimdPath::Avx2 {
        eprintln!("SKIP-NOTE: host has no avx2+fma — FMA-contraction probe skipped");
        return;
    }
    // a·b = (1+2^-12)² = 1 + 2^-11 + 2^-24. The f32 mul rounds the
    // 2^-24 tail away (ties-to-even toward 1+2^-11); accumulating onto
    // -1.0 then yields exactly 2^-11, while an FMA keeps the tail and
    // yields 2^-11 + 2^-24. Use n=8 so the vector lane path (not the
    // scalar tail) is exercised.
    let a = 1.0f32 + f32::powi(2.0, -12);
    let at = vec![a; 1];
    let b = vec![a; 8];
    let mut c_wide = vec![-1.0f32; 8];
    gemm_acc_rows_with(SimdPath::Avx2, &mut c_wide, 8, 1, 8, &at, 1, 0, &b, &[0]);
    let mut c_scalar = vec![-1.0f32; 8];
    gemm_acc_rows_with(
        SimdPath::Scalar,
        &mut c_scalar,
        8,
        1,
        8,
        &at,
        1,
        0,
        &b,
        &[0],
    );
    let mul_then_add = -1.0f32 + (a * a);
    let fma_result = a.mul_add(a, -1.0f32);
    // Sanity: the probe actually discriminates on this host's arithmetic.
    assert_ne!(
        mul_then_add, fma_result,
        "probe operands no longer discriminate mul+add from fma"
    );
    assert_eq!(c_scalar[0], mul_then_add);
    assert_eq!(c_wide, c_scalar, "wide path must round mul before add");
}

//! Property-based tests for the planner and the analytical model:
//! every emitted plan must be internally consistent, feasible, and
//! theorem-conformant, for randomized layers and machines. Runs on the
//! in-tree `distconv_par::proptest_mini` harness.

use distconv_cost::closed_form::{ml_deflate, solve_table1, solve_table2};
use distconv_cost::exact::{constant_gap, eq3_cost, eq3_footprint_g};
use distconv_cost::{Conv2dProblem, MachineSpec, PlanError, Planner};
use distconv_par::proptest_mini::{check, Config, Gen};

fn arb_problem(g: &mut Gen) -> Conv2dProblem {
    Conv2dProblem::new(
        g.usize_in(1, 8),
        g.usize_in(1, 16),
        g.usize_in(1, 16),
        g.usize_in(1, 12),
        g.usize_in(1, 12),
        g.usize_in(1, 4),
        g.usize_in(1, 4),
        g.usize_in(1, 2),
        g.usize_in(1, 2),
    )
}

#[test]
fn emitted_plans_are_consistent() {
    check(
        "emitted_plans_are_consistent",
        Config::with_cases(128),
        |g| {
            let p = arb_problem(g);
            let procs = 1usize << g.u32_in(0, 5);
            let mem = 1usize << g.u32_in(10, 22);
            match Planner::new(p, MachineSpec::new(procs, mem)).plan() {
                Ok(plan) => {
                    // Grid reconstructs P and divides the extents.
                    assert_eq!(plan.grid.total(), procs);
                    assert!(plan.w.validates_eq2(&p, procs));
                    // Tiles divide the work partition, T_c = 1.
                    assert_eq!(plan.w.wb % plan.t.tb, 0);
                    assert_eq!(plan.w.wk % plan.t.tk, 0);
                    assert_eq!(plan.w.wh % plan.t.th, 0);
                    assert_eq!(plan.w.ww % plan.t.tw, 0);
                    assert_eq!(plan.t.tc, 1);
                    // Feasible under Eq. 11 and positive predicted costs.
                    assert!(plan.predicted.footprint_gd <= mem as f64);
                    assert!(plan.predicted.cost_d > 0.0);
                    // cost decomposition consistent.
                    assert!(
                        (plan.predicted.cost_d - plan.predicted.cost_i - plan.predicted.cost_c)
                            .abs()
                            < 1e-9
                    );
                    // Constant-gap theorem.
                    let (lhs, rhs) = constant_gap(&p, &plan.w, &plan.t, procs);
                    assert!((lhs - rhs).abs() < 1e-6);
                    // The tile footprint is within the memory left after
                    // the initial distribution (g consistent with g_D).
                    let gf = eq3_footprint_g(&p, &plan.t) as f64;
                    assert!(gf <= mem as f64);
                    // Eq. 3 evaluation agrees with the recorded prediction.
                    let direct = eq3_cost(&p, &plan.w, &plan.t).total();
                    assert!((direct - plan.predicted.cost_gvm).abs() < 1e-9);
                }
                Err(PlanError::Unfactorable { .. }) => {
                    // Legitimate when P shares no divisors with the extents.
                }
                Err(PlanError::InsufficientMemory { needed, available }) => {
                    assert!(needed > available);
                }
            }
        },
    );
}

#[test]
fn table_solvers_total_order() {
    check("table_solvers_total_order", Config::with_cases(128), |g| {
        let p = arb_problem(g);
        let procs = 1usize << g.u32_in(0, 6);
        let m_l = (1u64 << g.u32_in(4, 24)) as f64;
        let t1 = solve_table1(&p, procs, m_l);
        let t2 = solve_table2(&p, procs, m_l);
        // More permutations can only help.
        assert!(t2.cost <= t1.cost + 1e-9);
        // Costs decrease (weakly) in memory.
        let t1_more = solve_table1(&p, procs, m_l * 2.0);
        assert!(t1_more.cost <= t1.cost + 1e-9);
        // Costs decrease (weakly) in processors, per-processor.
        if procs >= 2 {
            let t1_half = solve_table1(&p, procs / 2, m_l);
            assert!(t1.cost <= t1_half.cost + 1e-9);
        }
    });
}

#[test]
fn ml_deflation_sandwich() {
    check("ml_deflation_sandwich", Config::with_cases(128), |g| {
        let p = arb_problem(g);
        let m = (1u64 << g.u32_in(4, 26)) as f64;
        let m_l = ml_deflate(m, &p);
        assert!(1.0 <= m_l && m_l <= m);
        // Deflation is monotone in M.
        let m_l2 = ml_deflate(2.0 * m, &p);
        assert!(m_l2 >= m_l);
        // And deflating costs something bounded by the K-term:
        // M − M_L = 3K·√M_L.
        let k = p.k_const();
        assert!((m - m_l) - 3.0 * k * m_l.sqrt() < 1e-6 * m + 1e-6);
    });
}

#[test]
fn forced_pc_never_beats_free_planner() {
    check(
        "forced_pc_never_beats_free_planner",
        Config::with_cases(128),
        |g| {
            let p = arb_problem(g);
            let procs = 1usize << g.u32_in(1, 4);
            let mem = 1usize << g.u32_in(12, 22);
            let Ok(free) = Planner::new(p, MachineSpec::new(procs, mem)).plan() else {
                return;
            };
            for pc in [1usize, 2, 4] {
                if let Ok(forced) = Planner::new(p, MachineSpec::new(procs, mem))
                    .with_forced_pc(pc)
                    .plan()
                {
                    assert!(
                        free.predicted.cost_d <= forced.predicted.cost_d + 1e-9,
                        "free {} beaten by forced pc={pc} {}",
                        free.predicted.cost_d,
                        forced.predicted.cost_d
                    );
                }
            }
        },
    );
}

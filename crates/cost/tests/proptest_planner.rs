//! Property-based tests for the planner and the analytical model:
//! every emitted plan must be internally consistent, feasible, and
//! theorem-conformant, for randomized layers and machines.

use distconv_cost::closed_form::{ml_deflate, solve_table1, solve_table2};
use distconv_cost::exact::{constant_gap, eq3_cost, eq3_footprint_g};
use distconv_cost::{Conv2dProblem, MachineSpec, PlanError, Planner};
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = Conv2dProblem> {
    (
        1usize..=8,
        1usize..=16,
        1usize..=16,
        1usize..=12,
        1usize..=12,
        1usize..=4,
        1usize..=4,
        1usize..=2,
        1usize..=2,
    )
        .prop_map(|(nb, nk, nc, nh, nw, nr, ns, sw, sh)| {
            Conv2dProblem::new(nb, nk, nc, nh, nw, nr, ns, sw, sh)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn emitted_plans_are_consistent(
        p in arb_problem(),
        procs_exp in 0u32..=5,
        mem_exp in 10u32..=22,
    ) {
        let procs = 1usize << procs_exp;
        let mem = 1usize << mem_exp;
        match Planner::new(p, MachineSpec::new(procs, mem)).plan() {
            Ok(plan) => {
                // Grid reconstructs P and divides the extents.
                prop_assert_eq!(plan.grid.total(), procs);
                prop_assert!(plan.w.validates_eq2(&p, procs));
                // Tiles divide the work partition, T_c = 1.
                prop_assert_eq!(plan.w.wb % plan.t.tb, 0);
                prop_assert_eq!(plan.w.wk % plan.t.tk, 0);
                prop_assert_eq!(plan.w.wh % plan.t.th, 0);
                prop_assert_eq!(plan.w.ww % plan.t.tw, 0);
                prop_assert_eq!(plan.t.tc, 1);
                // Feasible under Eq. 11 and positive predicted costs.
                prop_assert!(plan.predicted.footprint_gd <= mem as f64);
                prop_assert!(plan.predicted.cost_d > 0.0);
                // cost decomposition consistent.
                prop_assert!(
                    (plan.predicted.cost_d
                        - plan.predicted.cost_i
                        - plan.predicted.cost_c)
                        .abs()
                        < 1e-9
                );
                // Constant-gap theorem.
                let (lhs, rhs) = constant_gap(&p, &plan.w, &plan.t, procs);
                prop_assert!((lhs - rhs).abs() < 1e-6);
                // The tile footprint is within the memory left after
                // the initial distribution (g consistent with g_D).
                let g = eq3_footprint_g(&p, &plan.t) as f64;
                prop_assert!(g <= mem as f64);
                // Eq. 3 evaluation agrees with the recorded prediction.
                let direct = eq3_cost(&p, &plan.w, &plan.t).total();
                prop_assert!((direct - plan.predicted.cost_gvm).abs() < 1e-9);
            }
            Err(PlanError::Unfactorable { .. }) => {
                // Legitimate when P shares no divisors with the extents.
            }
            Err(PlanError::InsufficientMemory { needed, available }) => {
                prop_assert!(needed > available);
            }
        }
    }

    #[test]
    fn table_solvers_total_order(
        p in arb_problem(),
        procs_exp in 0u32..=6,
        mem_exp in 4u32..=24,
    ) {
        let procs = 1usize << procs_exp;
        let m_l = (1u64 << mem_exp) as f64;
        let t1 = solve_table1(&p, procs, m_l);
        let t2 = solve_table2(&p, procs, m_l);
        // More permutations can only help.
        prop_assert!(t2.cost <= t1.cost + 1e-9);
        // Costs decrease (weakly) in memory.
        let t1_more = solve_table1(&p, procs, m_l * 2.0);
        prop_assert!(t1_more.cost <= t1.cost + 1e-9);
        // Costs decrease (weakly) in processors, per-processor.
        if procs >= 2 {
            let t1_half = solve_table1(&p, procs / 2, m_l);
            prop_assert!(t1.cost <= t1_half.cost + 1e-9);
        }
    }

    #[test]
    fn ml_deflation_sandwich(p in arb_problem(), mem_exp in 4u32..=26) {
        let m = (1u64 << mem_exp) as f64;
        let m_l = ml_deflate(m, &p);
        prop_assert!(1.0 <= m_l && m_l <= m);
        // Deflation is monotone in M.
        let m_l2 = ml_deflate(2.0 * m, &p);
        prop_assert!(m_l2 >= m_l);
        // And deflating costs something bounded by the K-term:
        // M − M_L = 3K·√M_L.
        let k = p.k_const();
        prop_assert!((m - m_l) - 3.0 * k * m_l.sqrt() < 1e-6 * m + 1e-6);
    }

    #[test]
    fn forced_pc_never_beats_free_planner(
        p in arb_problem(),
        procs_exp in 1u32..=4,
        mem_exp in 12u32..=22,
    ) {
        let procs = 1usize << procs_exp;
        let mem = 1usize << mem_exp;
        let Ok(free) = Planner::new(p, MachineSpec::new(procs, mem)).plan() else {
            return Ok(());
        };
        for pc in [1usize, 2, 4] {
            if let Ok(forced) = Planner::new(p, MachineSpec::new(procs, mem))
                .with_forced_pc(pc)
                .plan()
            {
                prop_assert!(
                    free.predicted.cost_d <= forced.predicted.cost_d + 1e-9,
                    "free {} beaten by forced pc={pc} {}",
                    free.predicted.cost_d,
                    forced.predicted.cost_d
                );
            }
        }
    }
}

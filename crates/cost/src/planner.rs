//! The planner: paper Sec. 2.2's four-step construction, from a layer
//! and machine to a concrete, integer, feasible distributed plan.
//!
//! Steps (quoted from the paper's high-level sketch):
//!
//! 1. *"Determine the per-memory capacity `M_T` needed to hold the
//!    tensors in a distributed manner, `M = M_D − M_T`."* — done as a
//!    fixpoint iteration because `M_T` depends on the chosen `Out`
//!    slice, which depends on the solution.
//! 2. *"Use the reduced capacity `M` to solve the global-memory
//!    optimization problem."* — [`solve_table1`] with the deflated
//!    [`ml_deflate`] capacity.
//! 3. *"Determine parameters `P_b, P_k, P_c, P_h, P_w` to create a
//!    logical multi-dimensional grid."* — integer search over divisor
//!    grids near the real-valued optimum, scored by the exact Eq. 10
//!    cost.
//! 4. The data distribution and communication schedule themselves are
//!    realized by `distconv-core`; the plan carries everything it needs.

use crate::closed_form::{ml_deflate, solve_table1, Regime};
use crate::exact::{
    eq10_cost_c, eq10_cost_i, eq11_footprint_gd, eq3_cost, eq3_footprint_g, halo_h, halo_w,
};
use crate::problem::{Conv2dProblem, MachineSpec};
use crate::tiling::{divisors, factor_into_grid, Partition, Tiling};

/// The logical processor grid `P_b × P_k × P_c × P_h × P_w`
/// (`P_i = N_i / W_i`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GridShape {
    /// Extent along `b`.
    pub pb: usize,
    /// Extent along `k`.
    pub pk: usize,
    /// Extent along `c`.
    pub pc: usize,
    /// Extent along `h`.
    pub ph: usize,
    /// Extent along `w`.
    pub pw: usize,
}

impl GridShape {
    /// Total ranks in the grid.
    pub fn total(&self) -> usize {
        self.pb * self.pk * self.pc * self.ph * self.pw
    }

    /// The composite `P_bhw = P_b · P_h · P_w`.
    pub fn pbhw(&self) -> usize {
        self.pb * self.ph * self.pw
    }

    /// As `[pb, pk, pc, ph, pw]`.
    pub fn as_array(&self) -> [usize; 5] {
        [self.pb, self.pk, self.pc, self.ph, self.pw]
    }
}

/// Predicted per-processor costs of a concrete plan, from the exact
/// integer expressions (Eq. 10/11). These are the values the simulator
/// measurements are compared against.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PredictedCost {
    /// Eq. 10 initialization cost (elements).
    pub cost_i: f64,
    /// Eq. 10 collective-communication cost (elements).
    pub cost_c: f64,
    /// `cost_D = cost_I + cost_C`.
    pub cost_d: f64,
    /// Eq. 3 global-virtual-memory cost of the same `(W, T)`.
    pub cost_gvm: f64,
    /// Eq. 11 per-processor memory footprint (elements).
    pub footprint_gd: f64,
    /// Eq. 3 tile footprint `g` (elements).
    pub footprint_g: f64,
}

/// A complete distributed execution plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistPlan {
    /// The layer being planned.
    pub problem: Conv2dProblem,
    /// The machine it is planned for.
    pub machine: MachineSpec,
    /// Which matmul-analog regime the solution fell in.
    pub regime: Regime,
    /// The logical processor grid.
    pub grid: GridShape,
    /// Per-processor work partition `W_i = N_i / P_i`.
    pub w: Partition,
    /// Tile sizes within the work partition (`T_c = 1`).
    pub t: Tiling,
    /// The deflated capacity `M_L` used for the closed form.
    pub m_l: f64,
    /// The paper's analytical (real-valued) optimal cost at `M_L`.
    pub analytic_cost: f64,
    /// Exact integer predictions for this concrete plan.
    pub predicted: PredictedCost,
}

impl DistPlan {
    /// Elements in one `In` tile buffer:
    /// `T_b·(σ_w·T_w+N_r−1)(σ_h·T_h+N_s−1)` (paper's buffer-size
    /// statement; `T_c = 1`).
    pub fn in_tile_elems(&self) -> usize {
        self.t.tb * halo_w(&self.problem, self.t.tw) * halo_h(&self.problem, self.t.th) * self.t.tc
    }

    /// Elements in one `Ker` tile buffer: `T_k·N_r·N_s` (`T_c = 1`).
    pub fn ker_tile_elems(&self) -> usize {
        self.t.tk * self.problem.nr * self.problem.ns * self.t.tc
    }

    /// Number of tile steps along `c` each rank executes (`W_c / T_c`).
    pub fn c_steps(&self) -> usize {
        self.w.wc / self.t.tc
    }

    /// Tile steps per rank over all five tiled dimensions.
    pub fn total_tile_steps(&self) -> usize {
        (self.w.wb / self.t.tb)
            * (self.w.wk / self.t.tk)
            * (self.w.wc / self.t.tc)
            * (self.w.wh / self.t.th)
            * (self.w.ww / self.t.tw)
    }
}

/// Why planning failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// No processor grid with `P_i | N_i` multiplies out to `P`.
    Unfactorable {
        /// The processor count that could not be packed.
        p: usize,
    },
    /// Every candidate grid exceeds the per-processor memory `M_D`.
    InsufficientMemory {
        /// Smallest footprint over all candidate plans (elements).
        needed: u128,
        /// Available per-processor memory (elements).
        available: u128,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Unfactorable { p } => {
                write!(
                    f,
                    "cannot factor P = {p} into a grid dividing the problem extents"
                )
            }
            PlanError::InsufficientMemory { needed, available } => write!(
                f,
                "per-processor memory insufficient: need ≥ {needed} elements, have {available}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Planner: layer + machine → [`DistPlan`].
#[derive(Clone, Copy, Debug)]
pub struct Planner {
    problem: Conv2dProblem,
    machine: MachineSpec,
    /// Force a specific regime's grid style instead of the optimizer's
    /// choice (`None` = optimize). Used by the ablation experiments.
    force_pc: Option<usize>,
}

impl Planner {
    /// Create a planner for a layer and machine.
    pub fn new(problem: Conv2dProblem, machine: MachineSpec) -> Self {
        Planner {
            problem,
            machine,
            force_pc: None,
        }
    }

    /// Restrict the search to grids with the given `P_c` (e.g. `1` to
    /// force the 2D-SUMMA-style family). For ablation studies.
    pub fn with_forced_pc(mut self, pc: usize) -> Self {
        self.force_pc = Some(pc);
        self
    }

    /// Produce the best feasible plan.
    ///
    /// Enumerates candidate grids `(P_k, P_c, P_bhw)` over divisors near
    /// the closed-form optimum — and, because divisor counts are small,
    /// simply *all* of them — picking the feasible candidate with the
    /// smallest exact `cost_D`. The closed form still decides `M_L`,
    /// `regime` and the tile aspect targets; the enumeration is the
    /// integer-rounding step the paper leaves implicit.
    pub fn plan(&self) -> Result<DistPlan, PlanError> {
        let p = &self.problem;
        let procs = self.machine.p;

        // Step 1 (fixpoint): estimate M_T, reduce, re-solve. M_T depends
        // only on the Out-slice size WkWbhw = NkNbhw/P — identical for
        // every grid — plus the fixed In/Ker initial shards, so one pass
        // is exact; we keep the loop for clarity and safety.
        let fixed_init = (p.size_in_paper() + p.size_ker()) as f64 / procs as f64;
        let out_slice = (p.size_out() as f64) / procs as f64;
        let m_t = fixed_init + out_slice;
        let m_for_tiles = (self.machine.mem as f64 - m_t).max(1.0);
        let m_l = ml_deflate(m_for_tiles, p);
        let closed = solve_table1(p, procs, m_l);

        let mut best: Option<DistPlan> = None;
        let mut min_needed: u128 = u128::MAX;

        for pk in divisors(p.nk) {
            if pk > procs || !procs.is_multiple_of(pk) {
                continue;
            }
            for pc in divisors(p.nc) {
                if let Some(forced) = self.force_pc {
                    if pc != forced {
                        continue;
                    }
                }
                if pk * pc > procs || !procs.is_multiple_of(pk * pc) {
                    continue;
                }
                let pbhw = procs / (pk * pc);
                // Factor P_bhw into (Pb, Ph, Pw): batch first (cheapest
                // to split: no halo), then h, then w.
                let Some(g) = factor_into_grid(pbhw, &[p.nb, p.nh, p.nw]) else {
                    continue;
                };
                let (pb, ph, pw) = (g[0], g[1], g[2]);
                if !p.nb.is_multiple_of(pb) || !p.nh.is_multiple_of(ph) || !p.nw.is_multiple_of(pw)
                {
                    continue;
                }
                let grid = GridShape { pb, pk, pc, ph, pw };
                let w = Partition::new(p.nb / pb, p.nk / pk, p.nc / pc, p.nh / ph, p.nw / pw);
                let Some(t) = best_tiling(p, &w, m_for_tiles) else {
                    // Even unit tiles do not fit.
                    let unit = Tiling::new(1, 1, 1, 1, 1);
                    let need = eq3_footprint_g(p, &unit) + m_t as u128;
                    min_needed = min_needed.min(need);
                    continue;
                };
                let gd = eq11_footprint_gd(p, &w, &t, procs);
                if gd > self.machine.mem as f64 {
                    min_needed = min_needed.min(gd as u128);
                    continue;
                }
                let cost_i = eq10_cost_i(p, &w, procs);
                let cost_c = eq10_cost_c(p, &w, &t);
                let plan = DistPlan {
                    problem: *p,
                    machine: self.machine,
                    regime: regime_of_grid(pc, &w, &t),
                    grid,
                    w,
                    t,
                    m_l,
                    analytic_cost: closed.cost,
                    predicted: PredictedCost {
                        cost_i,
                        cost_c,
                        cost_d: cost_i + cost_c,
                        cost_gvm: eq3_cost(p, &w, &t).total(),
                        footprint_gd: gd,
                        footprint_g: eq3_footprint_g(p, &t) as f64,
                    },
                };
                if best
                    .as_ref()
                    .is_none_or(|b| plan.predicted.cost_d < b.predicted.cost_d)
                {
                    best = Some(plan);
                }
            }
        }

        best.ok_or({
            if min_needed == u128::MAX {
                PlanError::Unfactorable { p: procs }
            } else {
                PlanError::InsufficientMemory {
                    needed: min_needed,
                    available: self.machine.mem as u128,
                }
            }
        })
    }
}

/// Classify a concrete grid the way Sec. 2.2 does: `P_c = 1` is the
/// 2D-SUMMA family; `P_c > 1` with `T = W` on `k`/`bhw` is 3D; `P_c > 1`
/// with genuine sub-tiling is 2.5D.
impl Planner {
    /// Enumerate every feasible candidate plan the search considers
    /// (same space as [`Planner::plan`], without picking a winner).
    /// Used by the Pareto-frontier analysis; candidates are returned
    /// unordered.
    pub fn enumerate(&self) -> Vec<DistPlan> {
        let p = &self.problem;
        let procs = self.machine.p;
        let fixed_init = (p.size_in_paper() + p.size_ker()) as f64 / procs as f64;
        let out_slice = (p.size_out() as f64) / procs as f64;
        let m_for_tiles = (self.machine.mem as f64 - fixed_init - out_slice).max(1.0);
        let m_l = ml_deflate(m_for_tiles, p);
        let closed = solve_table1(p, procs, m_l);
        let mut out = Vec::new();
        for pk in divisors(p.nk) {
            if pk > procs || !procs.is_multiple_of(pk) {
                continue;
            }
            for pc in divisors(p.nc) {
                if let Some(forced) = self.force_pc {
                    if pc != forced {
                        continue;
                    }
                }
                if pk * pc > procs || !procs.is_multiple_of(pk * pc) {
                    continue;
                }
                let pbhw = procs / (pk * pc);
                let Some(g) = factor_into_grid(pbhw, &[p.nb, p.nh, p.nw]) else {
                    continue;
                };
                let (pb, ph, pw) = (g[0], g[1], g[2]);
                if !p.nb.is_multiple_of(pb) || !p.nh.is_multiple_of(ph) || !p.nw.is_multiple_of(pw)
                {
                    continue;
                }
                let grid = GridShape { pb, pk, pc, ph, pw };
                let w = Partition::new(p.nb / pb, p.nk / pk, p.nc / pc, p.nh / ph, p.nw / pw);
                let Some(t) = best_tiling(p, &w, m_for_tiles) else {
                    continue;
                };
                let gd = eq11_footprint_gd(p, &w, &t, procs);
                if gd > self.machine.mem as f64 {
                    continue;
                }
                let cost_i = eq10_cost_i(p, &w, procs);
                let cost_c = eq10_cost_c(p, &w, &t);
                out.push(DistPlan {
                    problem: *p,
                    machine: self.machine,
                    regime: regime_of_grid(pc, &w, &t),
                    grid,
                    w,
                    t,
                    m_l,
                    analytic_cost: closed.cost,
                    predicted: PredictedCost {
                        cost_i,
                        cost_c,
                        cost_d: cost_i + cost_c,
                        cost_gvm: eq3_cost(p, &w, &t).total(),
                        footprint_gd: gd,
                        footprint_g: eq3_footprint_g(p, &t) as f64,
                    },
                });
            }
        }
        out
    }

    /// The memory/communication **Pareto frontier** over all feasible
    /// grids: plans sorted by increasing memory footprint `g_D`, none
    /// strictly costlier in `cost_D` than a smaller-footprint plan —
    /// the CNN incarnation of the matmul family's replication knob,
    /// exposed as a queryable set rather than a single winner.
    ///
    /// Deduplication is by the full **grid tuple**, not the
    /// `(cost_D, g_D)` scalars: two *different* grids with identical
    /// cost and footprint both stay on the frontier, because how a
    /// grid shards data (and hence what inter-layer redistribution it
    /// implies) is not a function of its scalar cost. Only a plan that
    /// is strictly beaten on cost at no more memory — or that repeats
    /// a grid already present — is dropped.
    pub fn pareto_frontier(&self) -> Vec<DistPlan> {
        let mut all = self.enumerate();
        all.sort_by(|a, b| {
            a.predicted
                .footprint_gd
                .partial_cmp(&b.predicted.footprint_gd)
                .unwrap()
                .then(a.predicted.cost_d.partial_cmp(&b.predicted.cost_d).unwrap())
        });
        let mut frontier: Vec<DistPlan> = Vec::new();
        for plan in all {
            let dominated = frontier.iter().any(|f| {
                f.predicted.cost_d < plan.predicted.cost_d
                    || (f.predicted.cost_d == plan.predicted.cost_d && f.grid == plan.grid)
            });
            if !dominated {
                frontier.push(plan);
            }
        }
        frontier
    }

    /// The whole-network autotuner's per-layer candidate set: every
    /// feasible grid (one plan per grid, each with its own best
    /// tiling), guaranteed to contain the greedy [`Planner::plan`]
    /// winner.
    ///
    /// This is deliberately wider than [`Planner::pareto_frontier`]:
    /// the frontier (which dedupes by the full grid tuple, so
    /// same-cost alternate grids *are* retained) still drops any grid
    /// strictly beaten on `cost_D` by a smaller-footprint plan — but
    /// the network DP needs **every** feasible grid, because
    /// inter-layer redistribution volume depends on how the grid
    /// shards data, not on what it costs. A locally costlier grid
    /// that happens to align with the neighbouring layer is exactly
    /// the candidate the tuner exists to find. Errors exactly when
    /// `plan()` does.
    pub fn candidates(&self) -> Result<Vec<DistPlan>, PlanError> {
        let greedy = self.plan()?;
        let mut cands = self.enumerate();
        if !cands
            .iter()
            .any(|c| c.grid == greedy.grid && c.t == greedy.t)
        {
            cands.push(greedy);
        }
        Ok(cands)
    }
}

fn regime_of_grid(pc: usize, w: &Partition, t: &Tiling) -> Regime {
    if pc == 1 {
        Regime::Summa2D
    } else if t.tk == w.wk && t.tb == w.wb && t.th == w.wh && t.tw == w.ww {
        Regime::Full3D
    } else {
        Regime::Intermediate25D
    }
}

/// Best tiling for a fixed work partition: exhaustive over divisor
/// tilings of `W` (with `T_c = 1`), minimizing exact Eq. 3 cost subject
/// to `g ≤ m_for_tiles`. Divisor counts are small, so this is cheap.
fn best_tiling(p: &Conv2dProblem, w: &Partition, m_for_tiles: f64) -> Option<Tiling> {
    let mut best: Option<(f64, Tiling)> = None;
    for &tb in &divisors(w.wb) {
        for &tk in &divisors(w.wk) {
            for &th in &divisors(w.wh) {
                for &tw in &divisors(w.ww) {
                    let t = Tiling::new(tb, tk, 1, th, tw);
                    if eq3_footprint_g(p, &t) as f64 > m_for_tiles {
                        continue;
                    }
                    let cost = eq3_cost(p, w, &t).total();
                    if best.is_none_or(|(c, _)| cost < c) {
                        best = Some((cost, t));
                    }
                }
            }
        }
    }
    best.map(|(_, t)| t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> Conv2dProblem {
        Conv2dProblem::square(8, 64, 64, 16, 3)
    }

    #[test]
    fn plan_is_internally_consistent() {
        let plan = Planner::new(layer(), MachineSpec::new(16, 1 << 20))
            .plan()
            .expect("feasible");
        let p = plan.problem;
        // Grid multiplies to P and W·grid reconstructs N.
        assert_eq!(plan.grid.total(), 16);
        assert!(plan.w.validates_eq2(&p, 16));
        assert_eq!(plan.w.grid(&p), {
            let g = plan.grid;
            [g.pb, g.pk, g.pc, g.ph, g.pw]
        });
        // Tiles divide the work partition.
        assert_eq!(plan.w.wb % plan.t.tb, 0);
        assert_eq!(plan.w.wk % plan.t.tk, 0);
        assert_eq!(plan.w.wh % plan.t.th, 0);
        assert_eq!(plan.w.ww % plan.t.tw, 0);
        assert_eq!(plan.t.tc, 1);
        // Memory constraint honored.
        assert!(plan.predicted.footprint_gd <= plan.machine.mem as f64);
        // cost_D = cost_I + cost_C.
        assert!(
            (plan.predicted.cost_d - plan.predicted.cost_i - plan.predicted.cost_c).abs() < 1e-9
        );
    }

    #[test]
    fn constant_gap_theorem_on_planned_config() {
        let plan = Planner::new(layer(), MachineSpec::new(16, 1 << 20))
            .plan()
            .unwrap();
        let gap = plan.predicted.cost_d - plan.predicted.cost_gvm;
        let expected = (plan.problem.size_in_paper() + plan.problem.size_ker()) as f64 / 16.0;
        assert!(
            (gap - expected).abs() < 1e-6,
            "gap {gap} vs (|In|+|Ker|)/P = {expected}"
        );
    }

    #[test]
    fn tight_memory_fails_cleanly() {
        let err = Planner::new(layer(), MachineSpec::new(16, 64))
            .plan()
            .unwrap_err();
        assert!(matches!(err, PlanError::InsufficientMemory { .. }), "{err}");
    }

    #[test]
    fn prime_processor_count_unfactorable() {
        // P = 97 shares no factors with any extent of this layer.
        let err = Planner::new(
            Conv2dProblem::square(8, 64, 64, 16, 3),
            MachineSpec::new(97, 1 << 20),
        )
        .plan()
        .unwrap_err();
        assert_eq!(err, PlanError::Unfactorable { p: 97 });
    }

    #[test]
    fn memory_sweep_changes_regime() {
        // Small memory → Pc = 1 (2D); large memory → Pc > 1 allowed if
        // cheaper. At minimum, the selected cost must be non-increasing.
        let p = layer();
        let mut prev = f64::INFINITY;
        for mem in [1 << 15, 1 << 17, 1 << 19, 1 << 22] {
            let plan = Planner::new(p, MachineSpec::new(64, mem)).plan().unwrap();
            assert!(
                plan.predicted.cost_d <= prev * (1.0 + 1e-9),
                "mem={mem}: cost went up"
            );
            prev = plan.predicted.cost_d;
        }
    }

    #[test]
    fn forced_pc_restricts_grid() {
        let plan = Planner::new(layer(), MachineSpec::new(16, 1 << 22))
            .with_forced_pc(1)
            .plan()
            .unwrap();
        assert_eq!(plan.grid.pc, 1);
        assert_eq!(plan.regime, Regime::Summa2D);
    }

    #[test]
    fn planned_cost_not_far_from_analytic() {
        // Integer rounding should stay within a small factor of the
        // real-valued optimum for friendly power-of-two layers; the
        // planner's cost_D additionally includes cost_I, so compare the
        // GVM part.
        let plan = Planner::new(layer(), MachineSpec::new(16, 1 << 20))
            .plan()
            .unwrap();
        assert!(
            plan.predicted.cost_gvm <= plan.analytic_cost * 3.0 + 1e3,
            "gvm {} vs analytic {}",
            plan.predicted.cost_gvm,
            plan.analytic_cost
        );
    }

    #[test]
    fn pareto_frontier_is_monotone_and_contains_best() {
        let planner = Planner::new(layer(), MachineSpec::new(16, 1 << 22));
        let frontier = planner.pareto_frontier();
        assert!(!frontier.is_empty());
        for w in frontier.windows(2) {
            assert!(w[0].predicted.footprint_gd <= w[1].predicted.footprint_gd);
            assert!(
                w[1].predicted.cost_d <= w[0].predicted.cost_d,
                "frontier cost must be non-increasing as memory grows"
            );
            // Cost ties are only allowed between *distinct* grids —
            // the frontier dedupes by the full grid tuple.
            if w[1].predicted.cost_d == w[0].predicted.cost_d {
                assert_ne!(
                    w[0].grid, w[1].grid,
                    "same-cost frontier entries must differ"
                );
            }
        }
        // The planner's pick is the frontier's cheapest point.
        let best = planner.plan().unwrap();
        let cheapest = frontier.last().unwrap();
        assert_eq!(best.predicted.cost_d, cheapest.predicted.cost_d);
    }

    #[test]
    fn pareto_frontier_is_dominance_free_and_contains_greedy() {
        for (procs, mem) in [(8usize, 1usize << 18), (16, 1 << 20), (16, 1 << 22)] {
            let planner = Planner::new(layer(), MachineSpec::new(procs, mem));
            let frontier = planner.pareto_frontier();
            assert!(!frontier.is_empty(), "P={procs} mem={mem}");
            // Dominance-free: no plan *strictly* beats another on cost
            // at no more memory. Same-cost ties are legal — they carry
            // distinct grids — so only strict cost domination is banned
            // and every grid appears at most once.
            for (i, a) in frontier.iter().enumerate() {
                for (j, b) in frontier.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    assert!(
                        !(a.predicted.footprint_gd <= b.predicted.footprint_gd
                            && a.predicted.cost_d < b.predicted.cost_d),
                        "P={procs} mem={mem}: frontier[{i}] dominates frontier[{j}]"
                    );
                    assert_ne!(
                        a.grid, b.grid,
                        "P={procs} mem={mem}: duplicate grid on frontier"
                    );
                }
            }
            // The greedy plan() result is on the frontier: its cost_D is
            // the frontier's minimum (last element after the sort).
            let greedy = planner.plan().unwrap();
            assert_eq!(
                greedy.predicted.cost_d,
                frontier.last().unwrap().predicted.cost_d,
                "P={procs} mem={mem}"
            );
            // And candidates() always carries the greedy *grid* itself.
            let cands = planner.candidates().unwrap();
            assert!(cands
                .iter()
                .any(|c| c.grid == greedy.grid && c.t == greedy.t));
            assert!(cands.len() >= frontier.len());
        }
    }

    /// Regression: the frontier used to dedupe by the `(cost_D, g_D)`
    /// scalars, so two *different* grids with identical cost collapsed
    /// to one (PR 9's network tuner had to bypass the frontier as a
    /// result). A square layer is symmetric in h/w, so mirrored
    /// `(ph, pw)` grids cost exactly the same — both must survive.
    #[test]
    fn pareto_frontier_retains_same_cost_distinct_grids() {
        // P = 64 on an 8×8 layer: the {pb:4, pk:4, ph:2, pw:2} and
        // {pb:2, pk:8, ph:2, pw:2} grids cost exactly the same but
        // shard `b` and `k` differently — the exact diversity the
        // network tuner's redistribution term discriminates on.
        let p = Conv2dProblem::square(8, 64, 64, 8, 3);
        let planner = Planner::new(p, MachineSpec::new(64, 1 << 22));
        let frontier = planner.pareto_frontier();
        let tie = frontier.iter().enumerate().find_map(|(i, a)| {
            frontier[i + 1..]
                .iter()
                .find(|b| b.predicted.cost_d == a.predicted.cost_d && b.grid != a.grid)
                .map(|b| (a, b))
        });
        let (a, b) = tie.expect("frontier must keep a same-cost/different-grid pair");
        assert_eq!(a.predicted.cost_d, b.predicted.cost_d);
        assert_ne!(a.grid, b.grid);
        // The pair differs in its batch/filter split, not just cost
        // bookkeeping — exactly the alternate sharding the old scalar
        // dedupe collapsed.
        assert_ne!((a.grid.pb, a.grid.pk), (b.grid.pb, b.grid.pk));
    }

    #[test]
    fn forced_pc_propagates_through_enumeration_and_frontier() {
        let planner = Planner::new(layer(), MachineSpec::new(16, 1 << 22)).with_forced_pc(2);
        let all = planner.enumerate();
        assert!(!all.is_empty());
        assert!(all.iter().all(|c| c.grid.pc == 2));
        assert!(all.iter().all(|c| c.regime != Regime::Summa2D));
        let frontier = planner.pareto_frontier();
        assert!(!frontier.is_empty());
        assert!(frontier.iter().all(|c| c.grid.pc == 2));
        // The forced-pc plan() winner matches the frontier's cheapest.
        let best = planner.plan().unwrap();
        assert_eq!(best.grid.pc, 2);
        assert_eq!(
            best.predicted.cost_d,
            frontier.last().unwrap().predicted.cost_d
        );
    }

    #[test]
    fn forced_pc_that_cannot_factor_fails_cleanly() {
        // pc = 5 divides no extent of this layer's c = 64? 5 ∤ 64, so
        // the divisor enumeration never visits it: unfactorable.
        let err = Planner::new(layer(), MachineSpec::new(16, 1 << 22))
            .with_forced_pc(5)
            .plan()
            .unwrap_err();
        assert_eq!(err, PlanError::Unfactorable { p: 16 });
    }

    #[test]
    fn enumerate_covers_plan_choice() {
        let planner = Planner::new(layer(), MachineSpec::new(16, 1 << 20));
        let best = planner.plan().unwrap();
        let all = planner.enumerate();
        assert!(all.iter().any(|c| c.grid == best.grid && c.t == best.t));
        assert!(all
            .iter()
            .all(|c| c.predicted.cost_d >= best.predicted.cost_d));
    }

    #[test]
    fn buffer_sizes_match_paper_formulas() {
        let plan = Planner::new(layer(), MachineSpec::new(16, 1 << 20))
            .plan()
            .unwrap();
        let p = plan.problem;
        let t = plan.t;
        assert_eq!(
            plan.in_tile_elems(),
            t.tb * (p.sw * t.tw + p.nr - 1) * (p.sh * t.th + p.ns - 1)
        );
        assert_eq!(plan.ker_tile_elems(), t.tk * p.nr * p.ns);
    }
}

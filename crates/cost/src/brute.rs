//! Brute-force reference optimizers.
//!
//! The paper's closed forms (Tables 1–2) are derived by AM–GM over a
//! *relaxed* real-valued problem. These exhaustive integer searches are
//! the ground truth the closed forms are validated against in the E1/E2
//! experiments and in property tests:
//!
//! * [`brute_eq4`] — the simplified problem (Eq. 4): composite
//!   `bhw` dimension, integer divisor grid. The closed-form cost must
//!   lower-bound this and be close to it.
//! * [`brute_eq3`] — the exact problem (Eq. 3): full 5-dimensional
//!   search over divisor work-partitions and tilings with footprint
//!   `g ≤ M`. Exponential — only for small problem sizes in tests.
//! * [`property5_holds`] — checks the paper's structural Property (5)
//!   on an optimal solution.

use crate::exact::{eq3_cost, eq3_footprint_g};
use crate::problem::Conv2dProblem;
use crate::simplified::{simplified_cost, simplified_footprint, InnerLoop, SimplifiedVars};
use crate::tiling::{divisors, Partition, Tiling};

/// Result of a brute-force Eq. 4 search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BruteEq4 {
    /// Best cost found (elements moved per processor).
    pub cost: f64,
    /// The integer optimizer variables attaining it.
    pub vars: SimplifiedVars,
}

/// Exhaustive integer minimization of the simplified objective (Eq. 4
/// for `family = C`, its analogs otherwise) over divisor-valued
/// `(W_bhw, W_k, W_c, T_bhw, T_k, T_c)` with footprint `≤ m_l`.
///
/// `W_bhw`/`T_bhw` range over divisors of the composite `N_bhw`
/// (matching the relaxation's treatment of `bhw` as one index).
/// Returns `None` if no feasible point exists (`m_l` smaller than any
/// unit tile footprint).
pub fn brute_eq4(p: &Conv2dProblem, procs: usize, m_l: f64, family: InnerLoop) -> Option<BruteEq4> {
    brute_eq4_impl(p, procs, m_l, family, false)
}

fn brute_eq4_impl(
    p: &Conv2dProblem,
    procs: usize,
    m_l: f64,
    family: InnerLoop,
    require_property5: bool,
) -> Option<BruteEq4> {
    let nbhw = p.nbhw();
    let total = nbhw as u128 * p.nk as u128 * p.nc as u128;
    if !total.is_multiple_of(procs as u128) {
        return None;
    }
    let per_proc = total / procs as u128;

    let mut best: Option<BruteEq4> = None;
    for &w_bhw in &divisors(nbhw) {
        for &w_k in &divisors(p.nk) {
            let prod = w_bhw as u128 * w_k as u128;
            if !per_proc.is_multiple_of(prod) {
                continue;
            }
            let w_c_u = (per_proc / prod) as usize;
            if w_c_u > p.nc || !p.nc.is_multiple_of(w_c_u) {
                continue;
            }
            // For this W, scan tile candidates; the reload terms are
            // monotone decreasing in each T, so for each T in the
            // "driving" pair we take the largest partner that fits.
            for &t_bhw in &divisors(w_bhw) {
                for &t_k in &divisors(w_k) {
                    for &t_c in &divisors(w_c_u) {
                        let v = SimplifiedVars {
                            w_bhw: w_bhw as f64,
                            w_k: w_k as f64,
                            w_c: w_c_u as f64,
                            t_bhw: t_bhw as f64,
                            t_k: t_k as f64,
                            t_c: t_c as f64,
                        };
                        // Eq. 4 fixes the resident family's reload tile
                        // to 1; skip others to match its search space.
                        let reload_tile_ok = match family {
                            InnerLoop::C => t_c == 1,
                            InnerLoop::K => t_k == 1,
                            InnerLoop::Bhw => t_bhw == 1,
                        };
                        if !reload_tile_ok {
                            continue;
                        }
                        if simplified_footprint(p, family, &v) > m_l {
                            continue;
                        }
                        if require_property5 && !conforming_filter(p, &v) {
                            continue;
                        }
                        let cost = simplified_cost(p, procs, family, &v);
                        if best.is_none_or(|b| cost < b.cost) {
                            best = Some(BruteEq4 { cost, vars: v });
                        }
                    }
                }
            }
        }
    }
    best
}

/// Result of a brute-force Eq. 3 search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BruteEq3 {
    /// Best exact cost found.
    pub cost: f64,
    /// Work partition attaining it.
    pub w: Partition,
    /// Tiling attaining it.
    pub t: Tiling,
}

/// Exhaustive minimization of the exact Eq. 3 objective over all
/// divisor work-partitions with `∏(N_i/W_i) = P` and all divisor
/// tilings with `g ≤ m`. **Exponential** — intended for small problems
/// in tests and the E1 validation sweep.
pub fn brute_eq3(p: &Conv2dProblem, procs: usize, m: u128) -> Option<BruteEq3> {
    let n = [p.nb, p.nk, p.nc, p.nh, p.nw];
    let dim_divs: Vec<Vec<usize>> = n.iter().map(|&x| divisors(x)).collect();
    let mut best: Option<BruteEq3> = None;

    // Enumerate W tuples whose grid product equals P.
    let mut w_idx = [0usize; 5];
    'outer: loop {
        let w: Vec<usize> = (0..5).map(|i| dim_divs[i][w_idx[i]]).collect();
        let grid: usize = (0..5).map(|i| n[i] / w[i]).product();
        if grid == procs {
            let wp = Partition::new(w[0], w[1], w[2], w[3], w[4]);
            search_tiles(p, &wp, m, &mut best);
        }
        // Odometer increment.
        for i in 0..5 {
            w_idx[i] += 1;
            if w_idx[i] < dim_divs[i].len() {
                continue 'outer;
            }
            w_idx[i] = 0;
        }
        break;
    }
    best
}

fn search_tiles(p: &Conv2dProblem, w: &Partition, m: u128, best: &mut Option<BruteEq3>) {
    let wa = w.as_array();
    let t_divs: Vec<Vec<usize>> = wa.iter().map(|&x| divisors(x)).collect();
    let mut t_idx = [0usize; 5];
    'outer: loop {
        let t = Tiling::new(
            t_divs[0][t_idx[0]],
            t_divs[1][t_idx[1]],
            t_divs[2][t_idx[2]],
            t_divs[3][t_idx[3]],
            t_divs[4][t_idx[4]],
        );
        if eq3_footprint_g(p, &t) <= m {
            let cost = eq3_cost(p, w, &t).total();
            if best.as_ref().is_none_or(|b| cost < b.cost) {
                *best = Some(BruteEq3 { cost, w: *w, t });
            }
        }
        for i in 0..5 {
            t_idx[i] += 1;
            if t_idx[i] < t_divs[i].len() {
                continue 'outer;
            }
            t_idx[i] = 0;
        }
        break;
    }
}

/// Check the paper's Property (5) on a simplified-problem solution:
/// `(W_k = T_k ∧ W_bhw = T_bhw) ∨ (W_c = N_c)`.
pub fn property5_holds(p: &Conv2dProblem, v: &SimplifiedVars) -> bool {
    let eq = |a: f64, b: f64| (a - b).abs() < 1e-9;
    (eq(v.w_k, v.t_k) && eq(v.w_bhw, v.t_bhw)) || eq(v.w_c, p.nc as f64)
}

/// Like [`brute_eq4`] but restricted to candidates satisfying
/// Property (5). Used to *certify* integer violations of the property:
/// the paper proves it for the continuous relaxation, and divisor
/// constraints can make every conforming point infeasible or strictly
/// worse (e.g. `N_bhw = 30, N_k = N_c = 6, P = 8`: `W_c = N_c` forces a
/// non-integer `W_bhw·W_k`). If the unrestricted optimum violates the
/// property, this search must find either nothing or a strictly larger
/// cost — confirming the violation is an integrality artifact, not a
/// counterexample to the paper's (continuous) claim.
pub fn brute_eq4_conforming(
    p: &Conv2dProblem,
    procs: usize,
    m_l: f64,
    family: InnerLoop,
) -> Option<BruteEq4> {
    brute_eq4_impl(p, procs, m_l, family, true)
}

fn conforming_filter(p: &Conv2dProblem, v: &SimplifiedVars) -> bool {
    property5_holds(p, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::{solve_table1, thresh3d};
    use crate::simplified::resident_slice;

    fn toy() -> Conv2dProblem {
        Conv2dProblem::square(4, 8, 8, 4, 3)
    }

    #[test]
    fn brute_eq4_finds_feasible_optimum() {
        let p = toy();
        let b = brute_eq4(&p, 4, 64.0, InnerLoop::C).expect("feasible");
        assert!(b.vars.feasible(&p, 4, 1e-9), "vars: {:?}", b.vars);
        assert!(simplified_footprint(&p, InnerLoop::C, &b.vars) <= 64.0);
        assert!(b.cost > 0.0);
    }

    #[test]
    fn closed_form_lower_bounds_brute_eq4() {
        // The real-valued AM–GM optimum can only be ≤ the best integer
        // point, in every regime.
        let p = toy();
        for procs in [1usize, 4, 16] {
            for m_l in [16.0, 64.0, 256.0, 4096.0] {
                let Some(b) = brute_eq4(&p, procs, m_l, InnerLoop::C) else {
                    continue;
                };
                let cf = solve_table1(&p, procs, m_l).cost;
                assert!(
                    cf <= b.cost * (1.0 + 1e-9),
                    "P={procs} M_L={m_l}: closed {cf} > brute {}",
                    b.cost
                );
            }
        }
    }

    #[test]
    fn closed_form_is_tight_for_friendly_sizes() {
        // With power-of-two extents and M_L on the grid, the integer
        // optimum should be within a small factor of the relaxation.
        let p = Conv2dProblem::square(4, 16, 16, 8, 3);
        let procs = 16;
        for m_l in [64.0, 256.0, 1024.0] {
            let b = brute_eq4(&p, procs, m_l, InnerLoop::C).unwrap();
            let cf = solve_table1(&p, procs, m_l).cost;
            assert!(
                b.cost <= cf * 2.0,
                "integer optimum {} far above closed form {cf}",
                b.cost
            );
        }
    }

    #[test]
    fn property5_on_brute_optimum() {
        // Paper Eq. 5: every optimal solution has (Wk=Tk ∧ Wbhw=Tbhw)
        // or Wc=Nc.
        let p = toy();
        for procs in [2usize, 4, 8] {
            for m_l in [32.0, 128.0, 512.0, 2048.0] {
                if let Some(b) = brute_eq4(&p, procs, m_l, InnerLoop::C) {
                    assert!(
                        property5_holds(&p, &b.vars),
                        "P={procs} M_L={m_l}: optimum violates Property 5: {:?}",
                        b.vars
                    );
                }
            }
        }
    }

    #[test]
    fn brute_eq3_small_problem() {
        let p = Conv2dProblem::square(2, 4, 4, 4, 3);
        let b = brute_eq3(&p, 4, 256).expect("feasible");
        assert!(b.w.validates_eq2(&p, 4));
        assert!(eq3_footprint_g(&p, &b.t) <= 256);
        // Exhaustiveness sanity: cost must beat an arbitrary feasible point.
        let w = Partition::new(1, 4, 4, 4, 2);
        let t = Tiling::new(1, 1, 1, 1, 1);
        assert!(b.cost <= eq3_cost(&p, &w, &t).total());
    }

    #[test]
    fn brute_eq3_infeasible_memory() {
        let p = Conv2dProblem::square(2, 4, 4, 4, 3);
        // Minimum footprint: In (1+2)(1+2) + Out 1 + Ker 9 = 19 > 8.
        assert!(brute_eq3(&p, 4, 8).is_none());
    }

    #[test]
    fn brute_eq4_regimes_track_closed_form() {
        // As M_L grows the brute-force optimum should transition from
        // Wc = Nc (2D) to Wc < Nc (2.5D/3D), same as Table 1.
        let p = Conv2dProblem::square(4, 16, 16, 8, 3);
        let procs = 16;
        let r = resident_slice(&p, procs, InnerLoop::C);
        let lo = brute_eq4(&p, procs, r * 0.25, InnerLoop::C).unwrap();
        assert_eq!(lo.vars.w_c, p.nc as f64, "2D regime keeps Wc = Nc");
        let hi_ml = thresh3d(&p, procs) * 4.0;
        let hi = brute_eq4(&p, procs, hi_ml, InnerLoop::C).unwrap();
        assert!(
            hi.vars.w_c < p.nc as f64,
            "3D regime should replicate along c: {:?}",
            hi.vars
        );
    }
}

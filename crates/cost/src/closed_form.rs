//! Closed-form solutions of the simplified optimization problem —
//! **Table 1**, **Table 2**, the case analysis of Eq. 5–9, and the
//! `M → M_L` memory deflation.
//!
//! Terminology used throughout (all per the paper):
//!
//! * `A = N_k·N_c·N_bhw / P` — iteration points per processor,
//! * `F = N_r·N_s·σ_w·σ_h` — the kernel/stride product,
//! * `R = N_k·N_bhw / P` — the per-processor `Out` slice when `W_c = N_c`,
//! * `thresh3D = A^{2/3}·F^{1/3}` — the memory level above which the
//!   unconstrained (3D-analog) solution fits.
//!
//! The three regimes map onto distributed matmul algorithms (Sec. 2.2):
//! `M_L ≤ R` → 2D SUMMA analog (Case 1a, Eq. 6); `M_L ≥ thresh3D` → 3D
//! analog (Case 2a, Eq. 8); in between → 2.5D analog (Case 2b, Eq. 9).

use crate::problem::Conv2dProblem;
use crate::simplified::{a_const, resident_slice, InnerLoop, SimplifiedVars};

/// Which distributed-matmul analog the optimal solution corresponds to
/// (paper Sec. 2.2, last paragraph of "Parameters for Multi-dimensional
/// Processor Grid").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Regime {
    /// Case 1a (Eq. 6): memory-limited with `W_c = N_c`; analogous to 2D
    /// SUMMA. Tile footprint saturates `M_L`; no replication along `c`.
    Summa2D,
    /// Case 2a (Eq. 8): memory-rich; the unconstrained AM–GM optimum
    /// fits. Analogous to 3D matmul. `P_c > 1` (input-channel
    /// replication of `Out`).
    Full3D,
    /// Case 2b (Eq. 9): intermediate memory; footprint saturates `M_L`
    /// *and* `W_c < N_c`. Analogous to 2.5D matmul.
    Intermediate25D,
}

impl Regime {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Regime::Summa2D => "2D",
            Regime::Full3D => "3D",
            Regime::Intermediate25D => "2.5D",
        }
    }
}

/// A closed-form solution: the regime, the paper's analytical optimal
/// cost, and the real-valued optimizer variables achieving it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClosedForm {
    /// Which Table-1 row / matmul analog applies.
    pub regime: Regime,
    /// The innermost-loop family the solution assumes (`C` for Table 1).
    pub family: InnerLoop,
    /// The analytical optimal cost (elements moved per processor).
    pub cost: f64,
    /// Real-valued optimizer variables attaining the cost.
    pub vars: SimplifiedVars,
}

/// Case 1a (Eq. 6): `W_c = N_c`, memory binding (`M_L ≤ R`).
pub fn case1a(p: &Conv2dProblem, procs: usize, m_l: f64) -> ClosedForm {
    let a = a_const(p, procs);
    let f = p.rs_sigma();
    let r = resident_slice(p, procs, InnerLoop::C);
    let rs = (p.nr * p.ns) as f64;
    let ss = (p.sw * p.sh) as f64;
    let t_k = (m_l * ss / rs).sqrt();
    let t_bhw = (m_l * rs / ss).sqrt();
    // Scale W up from T, keeping the aspect ratio, until Wk·Wbhw = R.
    let scale = (r / m_l).sqrt();
    ClosedForm {
        regime: Regime::Summa2D,
        family: InnerLoop::C,
        cost: r + 2.0 * a * (f / m_l).sqrt(),
        vars: SimplifiedVars {
            w_bhw: t_bhw * scale,
            w_k: t_k * scale,
            w_c: p.nc as f64,
            t_bhw,
            t_k,
            t_c: 1.0,
        },
    }
}

/// Case 1b (Eq. 7): `W_c = N_c`, memory *not* binding (`M_L > R`); kept
/// for completeness — Table 1 shows it is always dominated by Case 2
/// when `M_L > R` (see `case1b_dominated` test).
pub fn case1b(p: &Conv2dProblem, procs: usize) -> ClosedForm {
    let a = a_const(p, procs);
    let f = p.rs_sigma();
    let r = resident_slice(p, procs, InnerLoop::C);
    let rs = (p.nr * p.ns) as f64;
    let ss = (p.sw * p.sh) as f64;
    let t_k = (r * ss / rs).sqrt();
    let t_bhw = (r * rs / ss).sqrt();
    ClosedForm {
        regime: Regime::Summa2D,
        family: InnerLoop::C,
        cost: r + 2.0 * a * (f / r).sqrt(),
        vars: SimplifiedVars {
            w_bhw: t_bhw,
            w_k: t_k,
            w_c: p.nc as f64,
            t_bhw,
            t_k,
            t_c: 1.0,
        },
    }
}

/// Case 2a (Eq. 8): the unconstrained 3-term AM–GM optimum
/// (`T = W` in `k` and `bhw`, `W_c < N_c`), feasible when
/// `M_L ≥ thresh3D`.
pub fn case2a(p: &Conv2dProblem, procs: usize) -> ClosedForm {
    let a = a_const(p, procs);
    let f = p.rs_sigma();
    let rs = (p.nr * p.ns) as f64;
    let ss = (p.sw * p.sh) as f64;
    // xy = A·NrNs/y = A·σσ/x ⇒ x = (A·σσ²/NrNs)^{1/3}, y = (A·NrNs²/σσ)^{1/3}.
    let t_k = (a * ss * ss / rs).cbrt();
    let t_bhw = (a * rs * rs / ss).cbrt();
    let w_c = a / (t_k * t_bhw);
    ClosedForm {
        regime: Regime::Full3D,
        family: InnerLoop::C,
        cost: 3.0 * a.powf(2.0 / 3.0) * f.cbrt(),
        vars: SimplifiedVars {
            w_bhw: t_bhw,
            w_k: t_k,
            w_c,
            t_bhw,
            t_k,
            t_c: 1.0,
        },
    }
}

/// Case 2b (Eq. 9): memory binding with `W_c < N_c`
/// (`R < M_L < thresh3D`).
pub fn case2b(p: &Conv2dProblem, procs: usize, m_l: f64) -> ClosedForm {
    let a = a_const(p, procs);
    let f = p.rs_sigma();
    let rs = (p.nr * p.ns) as f64;
    let ss = (p.sw * p.sh) as f64;
    let t_k = (m_l * ss / rs).sqrt();
    let t_bhw = (m_l * rs / ss).sqrt();
    let w_c = a / m_l;
    ClosedForm {
        regime: Regime::Intermediate25D,
        family: InnerLoop::C,
        cost: m_l + 2.0 * a * (f / m_l).sqrt(),
        vars: SimplifiedVars {
            w_bhw: t_bhw,
            w_k: t_k,
            w_c,
            t_bhw,
            t_k,
            t_c: 1.0,
        },
    }
}

/// The `thresh3D = A^{2/3}·F^{1/3}` memory level.
pub fn thresh3d(p: &Conv2dProblem, procs: usize) -> f64 {
    let a = a_const(p, procs);
    a.powf(2.0 / 3.0) * p.rs_sigma().cbrt()
}

/// **Table 1** — optimal solution of Eq. 4 for tile-loop permutations
/// with `c` as the innermost tiling loop, selected by regime:
///
/// | condition                      | solution  |
/// |--------------------------------|-----------|
/// | `R ≥ M_L`                      | Case 1a   |
/// | `R < M_L` and `M_L ≥ thresh3D` | Case 2a   |
/// | `R < M_L` and `M_L < thresh3D` | Case 2b   |
pub fn solve_table1(p: &Conv2dProblem, procs: usize, m_l: f64) -> ClosedForm {
    assert!(m_l >= 1.0, "M_L must be at least one element");
    let r = resident_slice(p, procs, InnerLoop::C);
    if r >= m_l {
        case1a(p, procs, m_l)
    } else if m_l >= thresh3d(p, procs) {
        case2a(p, procs)
    } else {
        case2b(p, procs, m_l)
    }
}

/// **Table 2** — optimal solution considering *all* tile-loop
/// permutations, exactly as printed in the paper:
///
/// * Row 1 (all three resident slices `≥ M_L`):
///   `min(N_k·N_bhw, N_k·N_c, N_c·N_bhw)/P + 2A√(F/M_L)`.
/// * Row 2 (`M_L ≥ thresh3D` and any resident slice `< M_L`): Eq. 8.
/// * Row 3 (`M_L < thresh3D` and any resident slice `< M_L`): Eq. 9.
///
/// The printed Row-1 `min(·)` omits the `σ_wσ_h` / `N_rN_s` weights that
/// the corresponding conditions carry; [`solve_table2_factored`] is the
/// weighted variant (which matches the brute-force optimum of the
/// generalized objectives — see the E2 experiment).
pub fn solve_table2(p: &Conv2dProblem, procs: usize, m_l: f64) -> ClosedForm {
    solve_table2_impl(p, procs, m_l, false)
}

/// Table 2 with the Row-1 `min(·)` taken over the *weighted* resident
/// slices (`N_kN_bhw/P`, `σ_wσ_h·N_cN_bhw/P`, `N_rN_s·N_kN_c/P`) — the
/// form consistent with the row's own conditions. See [`solve_table2`].
pub fn solve_table2_factored(p: &Conv2dProblem, procs: usize, m_l: f64) -> ClosedForm {
    solve_table2_impl(p, procs, m_l, true)
}

fn solve_table2_impl(p: &Conv2dProblem, procs: usize, m_l: f64, factored: bool) -> ClosedForm {
    assert!(m_l >= 1.0, "M_L must be at least one element");
    let a = a_const(p, procs);
    let f = p.rs_sigma();
    let s_c = resident_slice(p, procs, InnerLoop::C);
    let s_k = resident_slice(p, procs, InnerLoop::K);
    let s_bhw = resident_slice(p, procs, InnerLoop::Bhw);
    let all_resident_exceed = s_c >= m_l && s_k >= m_l && s_bhw >= m_l;

    if all_resident_exceed {
        // Row 1: pick the cheapest resident tensor.
        let pf = procs as f64;
        let nbhw = p.nbhw() as f64;
        let (resident, family) = if factored {
            let cands = [
                (s_c, InnerLoop::C),
                (s_k, InnerLoop::K),
                (s_bhw, InnerLoop::Bhw),
            ];
            cands
                .into_iter()
                .min_by(|x, y| x.0.partial_cmp(&y.0).unwrap())
                .unwrap()
        } else {
            let cands = [
                (p.nk as f64 * nbhw / pf, InnerLoop::C),
                (p.nc as f64 * nbhw / pf, InnerLoop::K),
                (p.nk as f64 * p.nc as f64 / pf, InnerLoop::Bhw),
            ];
            cands
                .into_iter()
                .min_by(|x, y| x.0.partial_cmp(&y.0).unwrap())
                .unwrap()
        };
        let base = case1a(p, procs, m_l);
        return ClosedForm {
            regime: Regime::Summa2D,
            family,
            cost: resident + 2.0 * a * (f / m_l).sqrt(),
            vars: base.vars,
        };
    }
    if m_l >= thresh3d(p, procs) {
        case2a(p, procs)
    } else {
        case2b(p, procs, m_l)
    }
}

/// The memory deflation `M → M_L` that makes the simplified solution
/// feasible for the exact footprint constraint (Eq. 3's `g ≤ M`):
///
/// ```text
/// K   = √(σ_w σ_h N_r N_s)
/// M_L = M − (3K/2)(√(9K² + 4M) − 3K)  =  ((√(9K² + 4M) − 3K)/2)²
/// ```
///
/// The second form (the positive root of `u² + 3Ku − M = 0` with
/// `u = √M_L`) is used for numerical stability; the two are
/// algebraically identical. Intuition: the exact tile footprint of the
/// balanced solution is `≈ M_L + 3K·√M_L` (Out tile `M_L`, plus In-halo
/// and Ker tiles of `≈ K√M_L` each); deflating by the `3K√M_L`
/// correction guarantees `g ≤ M`.
///
/// Returns at least 1.0 (a single element always fits conceptually; the
/// planner reports infeasibility separately if even minimal tiles
/// exceed `M`).
pub fn ml_deflate(m: f64, p: &Conv2dProblem) -> f64 {
    let k = p.k_const();
    let u = ((9.0 * k * k + 4.0 * m).sqrt() - 3.0 * k) / 2.0;
    (u * u).max(1.0)
}

/// By how much Table 1's cost at `M_L = M` lower-bounds the exact
/// problem: convenience wrapper returning the paper's lower bound.
pub fn table1_lower_bound(p: &Conv2dProblem, procs: usize, m: f64) -> f64 {
    solve_table1(p, procs, m).cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplified::simplified_cost;

    fn layer() -> Conv2dProblem {
        // A mid-size ResNet-ish layer.
        Conv2dProblem::square(8, 128, 128, 28, 3)
    }

    #[test]
    fn regime_selection_moves_with_memory() {
        let p = layer();
        let procs = 64;
        let r = resident_slice(&p, procs, InnerLoop::C);
        let t3 = thresh3d(&p, procs);
        assert!(r < t3, "test layer should have R < thresh3D");
        assert_eq!(solve_table1(&p, procs, r * 0.5).regime, Regime::Summa2D);
        assert_eq!(
            solve_table1(&p, procs, (r + t3) / 2.0).regime,
            Regime::Intermediate25D
        );
        assert_eq!(solve_table1(&p, procs, t3 * 2.0).regime, Regime::Full3D);
    }

    #[test]
    fn costs_decrease_with_memory() {
        let p = layer();
        let procs = 64;
        let mut prev = f64::INFINITY;
        for exp in 8..26 {
            let c = solve_table1(&p, procs, (1u64 << exp) as f64).cost;
            assert!(
                c <= prev + 1e-6,
                "cost should be non-increasing in M_L: {c} after {prev}"
            );
            prev = c;
        }
    }

    #[test]
    fn cost_continuous_at_boundaries() {
        // At M_L = R the 1a and 2b expressions agree; at M_L = thresh3D
        // the 2b and 2a expressions agree.
        let p = layer();
        let procs = 64;
        let r = resident_slice(&p, procs, InnerLoop::C);
        let c_lo = solve_table1(&p, procs, r * (1.0 - 1e-9)).cost;
        let c_hi = solve_table1(&p, procs, r * (1.0 + 1e-9)).cost;
        assert!((c_lo - c_hi).abs() / c_lo < 1e-6, "{c_lo} vs {c_hi}");
        let t3 = thresh3d(&p, procs);
        let c_lo = solve_table1(&p, procs, t3 * (1.0 - 1e-9)).cost;
        let c_hi = solve_table1(&p, procs, t3 * (1.0 + 1e-9)).cost;
        assert!((c_lo - c_hi).abs() / c_lo < 1e-6, "{c_lo} vs {c_hi}");
    }

    #[test]
    fn closed_form_vars_attain_stated_cost() {
        // The returned variables, plugged into the Eq. 4 objective, must
        // reproduce the claimed closed-form cost (AM–GM equality cases).
        let p = layer();
        let procs = 64;
        for m_l in [
            resident_slice(&p, procs, InnerLoop::C) * 0.3,
            resident_slice(&p, procs, InnerLoop::C) * 2.0,
            thresh3d(&p, procs) * 4.0,
        ] {
            let sol = solve_table1(&p, procs, m_l);
            let direct = simplified_cost(&p, procs, InnerLoop::C, &sol.vars);
            assert!(
                (direct - sol.cost).abs() / sol.cost < 1e-9,
                "regime {:?}: direct {direct} vs closed {}",
                sol.regime,
                sol.cost
            );
        }
    }

    #[test]
    fn case1b_dominated_when_memory_ample() {
        // Table 1 omits Case 1b because Case 2 dominates it for M_L > R.
        let p = layer();
        let procs = 64;
        let r = resident_slice(&p, procs, InnerLoop::C);
        for mult in [1.5, 4.0, 64.0] {
            let m_l = r * mult;
            let t1 = solve_table1(&p, procs, m_l).cost;
            let c1b = case1b(&p, procs).cost;
            assert!(
                t1 <= c1b * (1.0 + 1e-12),
                "Table1 {t1} should not exceed Case1b {c1b} at M_L = {m_l}"
            );
        }
    }

    #[test]
    fn case2_infeasible_below_r() {
        // For M_L < R, Case 2b would need W_c = A/M_L > N_c — infeasible,
        // which is why Table 1's first row is Case 1a.
        let p = layer();
        let procs = 64;
        let r = resident_slice(&p, procs, InnerLoop::C);
        let m_l = r * 0.5;
        let w_c = a_const(&p, procs) / m_l;
        assert!(w_c > p.nc as f64);
    }

    #[test]
    fn ml_deflation_properties() {
        let p = layer();
        for m in [1e3, 1e4, 1e6, 1e9] {
            let m_l = ml_deflate(m, &p);
            assert!(m_l < m, "deflated {m_l} must be < {m}");
            // Closed identity: M_L + 3K√M_L = M.
            let k = p.k_const();
            let recon = m_l + 3.0 * k * m_l.sqrt();
            assert!(
                (recon - m).abs() / m < 1e-9,
                "M={m}: M_L + 3K√M_L = {recon}"
            );
            // Both printed forms agree.
            let direct = m - 1.5 * k * ((9.0 * k * k + 4.0 * m).sqrt() - 3.0 * k);
            assert!((direct - m_l).abs() / m < 1e-9);
        }
    }

    #[test]
    fn ml_deflation_floors_at_one() {
        let p = layer();
        assert_eq!(ml_deflate(1.0, &p), 1.0);
    }

    #[test]
    fn table2_never_exceeds_table1() {
        // Considering more permutations can only help.
        let p = Conv2dProblem::new(4, 32, 512, 14, 14, 3, 3, 1, 1);
        for procs in [4usize, 16, 64] {
            for exp in 8..24 {
                let m_l = (1u64 << exp) as f64;
                let t1 = solve_table1(&p, procs, m_l).cost;
                let t2 = solve_table2(&p, procs, m_l).cost;
                assert!(
                    t2 <= t1 + 1e-6,
                    "P={procs} M_L={m_l}: table2 {t2} > table1 {t1}"
                );
            }
        }
    }

    #[test]
    fn table2_factored_at_least_printed() {
        // The weighted min can only pick a larger-or-equal resident term.
        let p = Conv2dProblem::new(4, 32, 512, 14, 14, 3, 3, 1, 1);
        for procs in [4usize, 64] {
            let m_l = 256.0;
            let printed = solve_table2(&p, procs, m_l).cost;
            let factored = solve_table2_factored(&p, procs, m_l).cost;
            assert!(factored >= printed - 1e-9);
        }
    }

    #[test]
    fn table2_row1_picks_cheapest_resident() {
        // Make Nbhw tiny so Ker-residency (NkNc) is NOT the min and
        // Out/In residency wins.
        let p = Conv2dProblem::new(1, 64, 64, 2, 2, 3, 3, 1, 1);
        let procs = 2;
        // All resident slices: C: 64·4/2=128, K: 64·4/2=128, Bhw: 9·64·64/2.
        let m_l = 64.0;
        let sol = solve_table2(&p, procs, m_l);
        // printed min over {NkNbhw, NkNc, NcNbhw}/P = min(128, 2048, 128).
        assert!(matches!(sol.family, InnerLoop::C | InnerLoop::K));
    }

    #[test]
    fn lower_bound_below_deflated_solution() {
        // Table1(M_L = M) is a lower bound; Table1(M_L = deflate(M)) is
        // the achievable value — bound ≤ achievable.
        let p = layer();
        let procs = 64;
        for m in [1e4, 1e5, 1e6] {
            let lb = table1_lower_bound(&p, procs, m);
            let ach = solve_table1(&p, procs, ml_deflate(m, &p)).cost;
            assert!(lb <= ach + 1e-9, "lb {lb} > achievable {ach}");
        }
    }
}

//! Named layer presets: the CNN layers used by the evaluation sweeps.
//!
//! The brief announcement has no empirical evaluation section; the
//! implied evaluation (experiments E8–E10 in DESIGN.md) uses the
//! standard layer shapes its references evaluate on — ResNet-50 [He et
//! al.] and VGG-16 [Simonyan & Zisserman] convolution layers — at a
//! configurable batch size.

use crate::problem::Conv2dProblem;

/// A named layer for reporting.
#[derive(Clone, Copy, Debug)]
pub struct NamedLayer {
    /// Human-readable layer name (e.g. `"resnet50/conv3_x.1"`).
    pub name: &'static str,
    /// The layer parameters.
    pub problem: Conv2dProblem,
}

/// Representative ResNet-50 convolution layers (ImageNet, 224×224
/// input), one per stage plus the stem, at batch size `nb`.
/// `(nk, nc, h=w, r=s, stride)` per layer.
pub fn resnet50(nb: usize) -> Vec<NamedLayer> {
    let mk = |name, nk, nc, hw, rs, s| NamedLayer {
        name,
        problem: Conv2dProblem::new(nb, nk, nc, hw, hw, rs, rs, s, s),
    };
    vec![
        // Stem: 7x7/2, 3→64, output 112².
        mk("resnet50/conv1", 64, 3, 112, 7, 2),
        // conv2_x 3x3: 64→64 @ 56².
        mk("resnet50/conv2_3x3", 64, 64, 56, 3, 1),
        // conv2_x 1x1 expand: 64→256 @ 56².
        mk("resnet50/conv2_1x1", 256, 64, 56, 1, 1),
        // conv3_x 3x3: 128→128 @ 28².
        mk("resnet50/conv3_3x3", 128, 128, 28, 3, 1),
        // conv4_x 3x3: 256→256 @ 14².
        mk("resnet50/conv4_3x3", 256, 256, 14, 3, 1),
        // conv5_x 3x3: 512→512 @ 7².
        mk("resnet50/conv5_3x3", 512, 512, 7, 3, 1),
        // conv5_x 1x1 expand: 512→2048 @ 7².
        mk("resnet50/conv5_1x1", 2048, 512, 7, 1, 1),
    ]
}

/// Representative VGG-16 convolution layers at batch size `nb`
/// (all 3×3, stride 1).
pub fn vgg16(nb: usize) -> Vec<NamedLayer> {
    let mk = |name, nk, nc, hw| NamedLayer {
        name,
        problem: Conv2dProblem::new(nb, nk, nc, hw, hw, 3, 3, 1, 1),
    };
    vec![
        mk("vgg16/conv1_2", 64, 64, 224),
        mk("vgg16/conv2_2", 128, 128, 112),
        mk("vgg16/conv3_3", 256, 256, 56),
        mk("vgg16/conv4_3", 512, 512, 28),
        mk("vgg16/conv5_3", 512, 512, 14),
    ]
}

/// Small layers sized so the thread-per-rank simulator can execute them
/// in tests and examples in well under a second (same *shape families*
/// as the real networks, scaled down).
pub fn simulator_scale() -> Vec<NamedLayer> {
    let mk = |name, nb, nk, nc, hw, rs, s| NamedLayer {
        name,
        problem: Conv2dProblem::new(nb, nk, nc, hw, hw, rs, rs, s, s),
    };
    vec![
        mk("sim/early_wide", 4, 16, 8, 16, 3, 1),
        mk("sim/mid_square", 4, 32, 32, 8, 3, 1),
        mk("sim/late_deep", 4, 64, 64, 4, 3, 1),
        mk("sim/pointwise", 4, 64, 32, 8, 1, 1),
        mk("sim/strided", 4, 16, 16, 8, 3, 2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_well_formed() {
        for l in resnet50(32)
            .iter()
            .chain(vgg16(32).iter())
            .chain(simulator_scale().iter())
        {
            assert!(l.problem.flops() > 0, "{} has zero work", l.name);
            assert!(!l.name.is_empty());
        }
    }

    #[test]
    fn resnet_stem_shape() {
        let l = &resnet50(32)[0];
        assert_eq!(l.problem.nc, 3);
        assert_eq!(l.problem.sw, 2);
        // 7x7/2 on 224 input → 112 output; input extent σ(N−1)+ker = 229.
        assert_eq!(l.problem.in_w(), 2 * 111 + 7);
    }

    #[test]
    fn vgg_layers_all_3x3() {
        for l in vgg16(1) {
            assert_eq!((l.problem.nr, l.problem.ns, l.problem.sw), (3, 3, 1));
        }
    }
}

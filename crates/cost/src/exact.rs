//! Exact cost and footprint expressions: Eq. 1, 3, 10 and 11.
//!
//! These are the *unsimplified* formulas, evaluated both in `f64` (for
//! optimization) and in `u128` (for exact comparison against measured
//! data volumes — the executors in `distconv-conv` and `distconv-core`
//! must match these integer values element-for-element when the tile
//! sizes divide the partition sizes).
//!
//! Halo convention: the paper writes input-tile extents in the
//! `σ·T + N − 1` form; all expressions here use that form verbatim so
//! model and paper stay term-for-term identical. The executors read the
//! exact `σ·(T−1) + N` extents; for σ = 1 the two coincide, and the
//! tests pin the σ > 1 gap explicitly.

use crate::problem::Conv2dProblem;
use crate::tiling::{Partition, Tiling};

/// Per-term breakdown of a data-movement cost, in elements.
///
/// `out` is the resident-output term (`W_b W_k W_w W_h`), `ker` the
/// kernel-reload term, `inp` the input-reload term; `total` is their sum.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostBreakdown {
    /// Output (resident tensor) term.
    pub out: f64,
    /// Kernel reload term.
    pub ker: f64,
    /// Input reload term.
    pub inp: f64,
}

impl CostBreakdown {
    /// Sum of the three terms.
    pub fn total(&self) -> f64 {
        self.out + self.ker + self.inp
    }
}

/// Paper-form halo extent of an input tile along `w`: `σw·Tw + Nr − 1`.
pub fn halo_w(p: &Conv2dProblem, tw: usize) -> usize {
    p.sw * tw + p.nr - 1
}

/// Paper-form halo extent of an input tile along `h`: `σh·Th + Ns − 1`.
pub fn halo_h(p: &Conv2dProblem, th: usize) -> usize {
    p.sh * th + p.ns - 1
}

/// Eq. 3 — data volume moved between the virtual global memory and one
/// processor's local memory when executing work partition `w` as a
/// sequence of `t`-tiles with `c` as the innermost tile loop:
///
/// ```text
/// cost = Wb·Wk·Ww·Wh                                        (Out, once)
///      + Wk·Wc·Nr·Ns · Wb·Ww·Wh / (Tb·Tw·Th)                (Ker reloads)
///      + Wb·Wc·(σw·Tw+Nr−1)(σh·Th+Ns−1) · Ww·Wh·Wk/(Tw·Th·Tk)  (In reloads)
/// ```
pub fn eq3_cost(p: &Conv2dProblem, w: &Partition, t: &Tiling) -> CostBreakdown {
    let out = (w.wb * w.wk * w.ww * w.wh) as f64;
    let ker = (w.wk * w.wc * p.nr * p.ns) as f64 * (w.wb * w.ww * w.wh) as f64
        / (t.tb * t.tw * t.th) as f64;
    let inp = (w.wb * w.wc) as f64
        * (halo_w(p, t.tw) * halo_h(p, t.th)) as f64
        * (w.ww * w.wh * w.wk) as f64
        / (t.tw * t.th * t.tk) as f64;
    CostBreakdown { out, ker, inp }
}

/// Exact integer Eq. 3, valid when every `T_i` divides `W_i` (so the
/// tile-step counts are integral). Returns `None` otherwise.
pub fn eq3_cost_int(p: &Conv2dProblem, w: &Partition, t: &Tiling) -> Option<u128> {
    let div = |wi: usize, ti: usize| -> Option<u128> {
        wi.is_multiple_of(ti).then_some((wi / ti) as u128)
    };
    let steps_bhw = div(w.wb, t.tb)? * div(w.ww, t.tw)? * div(w.wh, t.th)?;
    let steps_k = div(w.wk, t.tk)?;
    let steps_c = div(w.wc, t.tc)?;
    let out = (w.wb * w.wk * w.ww * w.wh) as u128;
    // Ker tile = Tk·Tc·Nr·Ns loaded on every (bhw, k, c) tile step.
    let ker = steps_bhw * steps_k * steps_c * (t.tk * t.tc * p.nr * p.ns) as u128;
    // In tile = Tb·Tc·halo_w·halo_h loaded on every tile step.
    let inp = steps_bhw
        * steps_k
        * steps_c
        * (t.tb * t.tc) as u128
        * (halo_w(p, t.tw) * halo_h(p, t.th)) as u128;
    Some(out + ker + inp)
}

/// Eq. 3's memory-capacity expression
/// `g = (σw·Tw+Nr−1)(σh·Th+Ns−1)·Tb·Tc + Tw·Th·Tb·Tk + Nr·Ns·Tk·Tc`
/// — the local-memory footprint of one tile (In halo + Out tile +
/// Ker tile), in elements.
pub fn eq3_footprint_g(p: &Conv2dProblem, t: &Tiling) -> u128 {
    let in_tile = (halo_w(p, t.tw) * halo_h(p, t.th)) as u128 * (t.tb * t.tc) as u128;
    let out_tile = (t.tw * t.th * t.tb * t.tk) as u128;
    let ker_tile = (p.nr * p.ns * t.tk * t.tc) as u128;
    in_tile + out_tile + ker_tile
}

/// Eq. 1 — the sequential single-level-memory cost: Eq. 3 with the work
/// partition equal to the whole problem (`P = 1`, `W = N`).
pub fn eq1_cost(p: &Conv2dProblem, t: &Tiling) -> CostBreakdown {
    let w = Partition::new(p.nb, p.nk, p.nc, p.nh, p.nw);
    eq3_cost(p, &w, &t_clamped(p, t))
}

fn t_clamped(p: &Conv2dProblem, t: &Tiling) -> Tiling {
    Tiling::new(
        t.tb.min(p.nb),
        t.tk.min(p.nk),
        t.tc.min(p.nc),
        t.th.min(p.nh),
        t.tw.min(p.nw),
    )
}

/// Eq. 10 (first line) — per-processor initialization cost of the
/// distributed algorithm: the footprint of the initial data distribution
/// (`Out` slice, plus `1/P`-th of `In` and of `Ker` in the paper's halo
/// form).
pub fn eq10_cost_i(p: &Conv2dProblem, w: &Partition, procs: usize) -> f64 {
    let out = (w.wb * w.wk * w.ww * w.wh) as f64;
    let inp = (p.in_w_paper() * p.in_h_paper() * p.nb * p.nc) as f64 / procs as f64;
    let ker = (p.nr * p.ns * p.nk * p.nc) as f64 / procs as f64;
    out + inp + ker
}

/// Eq. 10 (second line) — per-processor collective-communication volume:
/// the broadcast traffic for `Ker` and `In` tiles (identical to Eq. 3's
/// reload terms; the distributed schedule replaces global-memory reloads
/// with broadcasts of the same tiles).
pub fn eq10_cost_c(p: &Conv2dProblem, w: &Partition, t: &Tiling) -> f64 {
    let b = eq3_cost(p, w, t);
    b.ker + b.inp
}

/// Total distributed cost `cost_D = cost_I + cost_C` (Eq. 10).
pub fn eq10_cost_d(p: &Conv2dProblem, w: &Partition, t: &Tiling, procs: usize) -> f64 {
    eq10_cost_i(p, w, procs) + eq10_cost_c(p, w, t)
}

/// Eq. 11 — per-processor memory footprint of the distributed algorithm:
/// tile buffers for `In` and `Ker`, plus the initial-distribution slices
/// (`Out` in full, `1/P`-th of `In` and `Ker`).
///
/// Note (paper convention): unlike Eq. 3's `g`, there is no separate
/// `Tw·Th·Tb·Tk` output-tile term — the output tile lives inside the
/// `W_b·W_k·W_w·W_h` slice allocated by the initial distribution.
pub fn eq11_footprint_gd(p: &Conv2dProblem, w: &Partition, t: &Tiling, procs: usize) -> f64 {
    let in_tile = (halo_w(p, t.tw) * halo_h(p, t.th)) as f64 * (t.tb * t.tc) as f64;
    let ker_tile = (p.nr * p.ns * t.tk * t.tc) as f64;
    let out_slice = (w.wb * w.wk * w.ww * w.wh) as f64;
    let ker_init = (p.nr * p.ns * p.nk * p.nc) as f64 / procs as f64;
    let in_init = (p.in_w_paper() * p.in_h_paper() * p.nb * p.nc) as f64 / procs as f64;
    in_tile + ker_tile + out_slice + ker_init + in_init
}

/// The paper's constant-gap theorem: `cost_D − cost = (|In| + |Ker|)/P`
/// (both sides in elements, `In` in the paper's halo form). Returns the
/// pair `(cost_D − cost, (|In|+|Ker|)/P)`; the two must be equal.
pub fn constant_gap(p: &Conv2dProblem, w: &Partition, t: &Tiling, procs: usize) -> (f64, f64) {
    let cost = eq3_cost(p, w, t).total();
    let cost_d = eq10_cost_d(p, w, t, procs);
    let gap = (p.size_in_paper() + p.size_ker()) as f64 / procs as f64;
    (cost_d - cost, gap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Conv2dProblem {
        // Nb=2 Nk=4 Nc=4 Nh=4 Nw=4, 3x3 kernel, stride 1.
        Conv2dProblem::square(2, 4, 4, 4, 3)
    }

    #[test]
    fn eq3_hand_computed() {
        let p = toy();
        let w = Partition::new(2, 4, 4, 4, 4); // whole problem, P=1
        let t = Tiling::new(1, 2, 1, 2, 2);
        let b = eq3_cost(&p, &w, &t);
        // Out: 2·4·4·4 = 128.
        assert_eq!(b.out, 128.0);
        // Ker: Wk·Wc·Nr·Ns·(WbWwWh)/(TbTwTh) = 4·4·9·32/4 = 1152.
        assert_eq!(b.ker, 1152.0);
        // In: Wb·Wc·(2+2)(2+2)... halo = 1·2+3−1 = 4 → 2·4·16·(4·4·4)/(2·2·2)=1024.
        assert_eq!(b.inp, 2.0 * 4.0 * 16.0 * 64.0 / 8.0);
        assert_eq!(b.total(), 128.0 + 1152.0 + 1024.0);
    }

    #[test]
    fn eq3_int_matches_f64_when_divisible() {
        let p = toy();
        let w = Partition::new(2, 4, 4, 4, 4);
        let t = Tiling::new(1, 2, 1, 2, 2);
        let f = eq3_cost(&p, &w, &t).total();
        let i = eq3_cost_int(&p, &w, &t).unwrap();
        assert_eq!(i as f64, f);
    }

    #[test]
    fn eq3_int_rejects_non_divisible() {
        let p = toy();
        let w = Partition::new(2, 4, 4, 4, 4);
        let t = Tiling::new(1, 3, 1, 2, 2); // 3 does not divide 4
        assert_eq!(eq3_cost_int(&p, &w, &t), None);
    }

    #[test]
    fn footprint_hand_computed() {
        let p = toy();
        let t = Tiling::new(1, 2, 1, 2, 2);
        // In: (2+2)(2+2)·1·1 = 16; Out: 2·2·1·2 = 8; Ker: 9·2·1 = 18.
        assert_eq!(eq3_footprint_g(&p, &t), 16 + 8 + 18);
    }

    #[test]
    fn eq1_is_eq3_with_full_partition() {
        let p = toy();
        let t = Tiling::new(2, 2, 2, 2, 2);
        let w = Partition::new(p.nb, p.nk, p.nc, p.nh, p.nw);
        assert_eq!(eq1_cost(&p, &t).total(), eq3_cost(&p, &w, &t).total());
    }

    #[test]
    fn constant_gap_theorem_holds() {
        // cost_D − cost must equal (|In|+|Ker|)/P for ANY W, T, P —
        // the paper's closing theorem, by construction of Eq. 10.
        let p = toy();
        for procs in [1usize, 4, 16] {
            let w = Partition::new(2, 2, 4, 2, 2);
            let t = Tiling::new(1, 2, 1, 2, 2);
            let (lhs, rhs) = constant_gap(&p, &w, &t, procs);
            assert!((lhs - rhs).abs() < 1e-9, "P={procs}: gap {lhs} != {rhs}");
        }
    }

    #[test]
    fn strided_halo_uses_paper_form() {
        let p = Conv2dProblem::new(1, 2, 2, 4, 4, 3, 3, 2, 2);
        assert_eq!(halo_w(&p, 2), 2 * 2 + 3 - 1); // 6
        assert_eq!(halo_h(&p, 4), 2 * 4 + 3 - 1); // 10
    }

    #[test]
    fn eq11_excludes_separate_out_tile() {
        let p = toy();
        let w = Partition::new(2, 4, 4, 4, 4);
        let t = Tiling::new(1, 2, 1, 2, 2);
        let gd = eq11_footprint_gd(&p, &w, &t, 4);
        let in_tile = 16.0;
        let ker_tile = 18.0;
        let out_slice = 128.0;
        let ker_init = (9 * 4 * 4) as f64 / 4.0;
        let in_init = (6 * 6 * 2 * 4) as f64 / 4.0;
        assert_eq!(gd, in_tile + ker_tile + out_slice + ker_init + in_init);
    }
}

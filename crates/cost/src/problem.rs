//! Problem and machine descriptions.
//!
//! A [`Conv2dProblem`] carries the seven extents and two strides of the
//! paper's CNN computation
//! `Out[b,k,w,h] += In[b,c,σw·w+r,σh·h+s] · Ker[k,c,r,s]`,
//! and a [`MachineSpec`] carries the machine parameters `(P, M)`.

/// A convolution layer: problem-size parameters of the paper's Listing 1.
///
/// Extents use the paper's names: batch `N_b`, output features `N_k`,
/// input features `N_c`, output spatial `N_h × N_w`, kernel `N_r × N_s`,
/// strides `σ_w, σ_h`. `N_h`/`N_w` are *output* extents; the input
/// spatial extents are the halo-widened `σ·N + (kernel−1)` values
/// returned by [`Conv2dProblem::in_h`] / [`Conv2dProblem::in_w`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Conv2dProblem {
    /// Batch extent `N_b`.
    pub nb: usize,
    /// Output-feature extent `N_k`.
    pub nk: usize,
    /// Input-feature extent `N_c`.
    pub nc: usize,
    /// Output vertical extent `N_h`.
    pub nh: usize,
    /// Output horizontal extent `N_w`.
    pub nw: usize,
    /// Kernel vertical extent `N_r`.
    pub nr: usize,
    /// Kernel horizontal extent `N_s`.
    pub ns: usize,
    /// Horizontal stride `σ_w`.
    pub sw: usize,
    /// Vertical stride `σ_h`.
    pub sh: usize,
}

impl Conv2dProblem {
    /// Construct a layer description; all extents must be positive.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        nb: usize,
        nk: usize,
        nc: usize,
        nh: usize,
        nw: usize,
        nr: usize,
        ns: usize,
        sw: usize,
        sh: usize,
    ) -> Self {
        let p = Conv2dProblem {
            nb,
            nk,
            nc,
            nh,
            nw,
            nr,
            ns,
            sw,
            sh,
        };
        assert!(
            [nb, nk, nc, nh, nw, nr, ns, sw, sh].iter().all(|&x| x > 0),
            "all extents and strides must be positive: {p:?}"
        );
        p
    }

    /// A square, unit-stride layer (the common benchmark shape).
    pub fn square(nb: usize, nk: usize, nc: usize, hw: usize, rs: usize) -> Self {
        Self::new(nb, nk, nc, hw, hw, rs, rs, 1, 1)
    }

    /// The composite `N_bhw = N_b · N_h · N_w` the paper folds the three
    /// reuse-equivalent indices into.
    pub fn nbhw(&self) -> usize {
        self.nb * self.nh * self.nw
    }

    /// Input horizontal extent: `σw·(Nw−1) + Ns` (exact; the paper's
    /// expressions use the `σw·Nw + Ns − 1` upper-bound form, see
    /// `in_w_paper`).
    ///
    /// Note the paper indexes `In[b, c, σw·w + r, σh·h + s]`, i.e. `r`
    /// (extent `N_r`) offsets the *w*-indexed axis; we follow that
    /// pairing throughout: horizontal halo uses `N_r`, vertical uses
    /// `N_s`.
    pub fn in_w(&self) -> usize {
        self.sw * (self.nw - 1) + self.nr
    }

    /// Input vertical extent: `σh·(Nh−1) + Ns` (exact).
    pub fn in_h(&self) -> usize {
        self.sh * (self.nh - 1) + self.ns
    }

    /// Paper-form input horizontal extent `σw·Nw + Nr − 1` (Eq. 10/11).
    pub fn in_w_paper(&self) -> usize {
        self.sw * self.nw + self.nr - 1
    }

    /// Paper-form input vertical extent `σh·Nh + Ns − 1` (Eq. 10/11).
    pub fn in_h_paper(&self) -> usize {
        self.sh * self.nh + self.ns - 1
    }

    /// Elements in the full `In` tensor (exact extents).
    pub fn size_in(&self) -> u128 {
        (self.nb as u128) * (self.nc as u128) * (self.in_w() as u128) * (self.in_h() as u128)
    }

    /// Elements in `In` using the paper's halo form — what Eq. 10/11 count.
    pub fn size_in_paper(&self) -> u128 {
        (self.nb as u128)
            * (self.nc as u128)
            * (self.in_w_paper() as u128)
            * (self.in_h_paper() as u128)
    }

    /// Elements in the full `Ker` tensor.
    pub fn size_ker(&self) -> u128 {
        (self.nk as u128) * (self.nc as u128) * (self.nr as u128) * (self.ns as u128)
    }

    /// Elements in the full `Out` tensor.
    pub fn size_out(&self) -> u128 {
        (self.nb as u128) * (self.nk as u128) * (self.nw as u128) * (self.nh as u128)
    }

    /// Multiply–add operations required (`∏ N_i`).
    pub fn flops(&self) -> u128 {
        self.size_out() * (self.nc as u128) * (self.nr as u128) * (self.ns as u128)
    }

    /// Total iteration-space points `N_bhw · N_k · N_c` over the five
    /// tiled dimensions (excludes the stencil dims, matching Eq. 2).
    pub fn iter_points(&self) -> u128 {
        (self.nbhw() as u128) * (self.nk as u128) * (self.nc as u128)
    }

    /// `K = sqrt(σw σh Nr Ns)` — the constant in the `M_L` deflation.
    pub fn k_const(&self) -> f64 {
        ((self.sw * self.sh * self.nr * self.ns) as f64).sqrt()
    }

    /// The recurring product `N_r N_s σ_w σ_h` from Tables 1–2.
    pub fn rs_sigma(&self) -> f64 {
        (self.nr * self.ns * self.sw * self.sh) as f64
    }
}

/// Machine parameters: `P` processors, each with `mem` words of local
/// memory. "Words" are scalar elements — the paper counts data volume in
/// elements, not bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MachineSpec {
    /// Number of processors `P`.
    pub p: usize,
    /// Per-processor local memory capacity in words (`M` in Sec. 2.1,
    /// `M_D` in Sec. 2.2).
    pub mem: usize,
}

impl MachineSpec {
    /// Construct a machine spec; both parameters must be positive.
    pub fn new(p: usize, mem: usize) -> Self {
        assert!(p > 0 && mem > 0, "P and M must be positive");
        MachineSpec { p, mem }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_unit_stride() {
        // 3x3 kernel, stride 1: input extent = out + 2.
        let p = Conv2dProblem::square(2, 8, 4, 6, 3);
        assert_eq!(p.in_w(), 8);
        assert_eq!(p.in_h(), 8);
        assert_eq!(p.in_w_paper(), 8); // agrees at stride 1
        assert_eq!(p.size_in(), 2 * 4 * 8 * 8);
        assert_eq!(p.size_ker(), 8 * 4 * 3 * 3);
        assert_eq!(p.size_out(), 2 * 8 * 6 * 6);
        assert_eq!(p.flops(), 2 * 8 * 6 * 6 * 4 * 3 * 3);
        assert_eq!(p.nbhw(), 2 * 6 * 6);
    }

    #[test]
    fn sizes_strided() {
        let p = Conv2dProblem::new(1, 1, 1, 4, 4, 3, 3, 2, 2);
        assert_eq!(p.in_w(), 2 * 3 + 3); // σ(N−1)+ker = 9
        assert_eq!(p.in_w_paper(), 2 * 4 + 2); // paper form = 10
        assert!(p.in_w_paper() >= p.in_w());
    }

    #[test]
    fn k_const() {
        let p = Conv2dProblem::new(1, 1, 1, 4, 4, 3, 3, 2, 2);
        assert!((p.k_const() - (2.0f64 * 2.0 * 3.0 * 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(p.rs_sigma(), 36.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_extent_rejected() {
        let _ = Conv2dProblem::new(0, 1, 1, 1, 1, 1, 1, 1, 1);
    }
}

//! Hand-rolled JSON emission for report types.
//!
//! The workspace is hermetic (no external crates), so instead of
//! `serde` derives the handful of types that appear in machine-readable
//! reports implement [`ToJson`] by hand. Emission-only on purpose:
//! nothing in the workspace parses JSON — reports flow *out* (to
//! `scripts/repro_check.sh` diffs, notebooks, dashboards), and plans
//! are always recomputed from first principles rather than restored.
//!
//! Numbers are emitted with Rust's shortest-round-trip `f64` display,
//! so `serde_json`-style consumers reconstruct bit-identical values;
//! non-finite floats (never produced by a valid plan) become `null`.

use crate::closed_form::{ClosedForm, Regime};
use crate::planner::{DistPlan, GridShape, PredictedCost};
use crate::problem::{Conv2dProblem, MachineSpec};
use crate::simplified::{InnerLoop, SimplifiedVars};
use crate::tiling::{Partition, Tiling, TwoLevel};
use std::fmt::Write as _;

/// Types that can emit themselves as a JSON value.
pub trait ToJson {
    /// Serialize to a compact JSON string (no trailing newline).
    fn to_json(&self) -> String;
}

/// Incremental `{...}` builder: `field`-then-`finish`.
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{name}\":");
    }

    /// Add an unsigned integer field.
    pub fn field_usize(mut self, name: &str, v: usize) -> Self {
        self.key(name);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add an `f64` field (`null` if non-finite).
    pub fn field_f64(mut self, name: &str, v: f64) -> Self {
        self.key(name);
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Add a string field (callers pass only identifier-like strings;
    /// escaping covers the JSON mandatories all the same).
    pub fn field_str(mut self, name: &str, v: &str) -> Self {
        self.key(name);
        self.buf.push('"');
        for c in v.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\t' => self.buf.push_str("\\t"),
                '\r' => self.buf.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.buf, "\\u{:04x}", c as u32);
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
        self
    }

    /// Add a field whose value is already-serialized JSON.
    pub fn field_json(mut self, name: &str, v: &impl ToJson) -> Self {
        self.key(name);
        self.buf.push_str(&v.to_json());
        self
    }

    /// Close the object.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl ToJson for Conv2dProblem {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_usize("nb", self.nb)
            .field_usize("nk", self.nk)
            .field_usize("nc", self.nc)
            .field_usize("nh", self.nh)
            .field_usize("nw", self.nw)
            .field_usize("nr", self.nr)
            .field_usize("ns", self.ns)
            .field_usize("sw", self.sw)
            .field_usize("sh", self.sh)
            .finish()
    }
}

impl ToJson for MachineSpec {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_usize("p", self.p)
            .field_usize("mem", self.mem)
            .finish()
    }
}

impl ToJson for GridShape {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_usize("pb", self.pb)
            .field_usize("pk", self.pk)
            .field_usize("pc", self.pc)
            .field_usize("ph", self.ph)
            .field_usize("pw", self.pw)
            .finish()
    }
}

impl ToJson for Partition {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_usize("wb", self.wb)
            .field_usize("wk", self.wk)
            .field_usize("wc", self.wc)
            .field_usize("wh", self.wh)
            .field_usize("ww", self.ww)
            .finish()
    }
}

impl ToJson for Tiling {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_usize("tb", self.tb)
            .field_usize("tk", self.tk)
            .field_usize("tc", self.tc)
            .field_usize("th", self.th)
            .field_usize("tw", self.tw)
            .finish()
    }
}

impl ToJson for TwoLevel {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_json("w", &self.w)
            .field_json("t", &self.t)
            .finish()
    }
}

impl ToJson for PredictedCost {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_f64("cost_i", self.cost_i)
            .field_f64("cost_c", self.cost_c)
            .field_f64("cost_d", self.cost_d)
            .field_f64("cost_gvm", self.cost_gvm)
            .field_f64("footprint_gd", self.footprint_gd)
            .field_f64("footprint_g", self.footprint_g)
            .finish()
    }
}

impl ToJson for SimplifiedVars {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_f64("w_bhw", self.w_bhw)
            .field_f64("w_k", self.w_k)
            .field_f64("w_c", self.w_c)
            .field_f64("t_bhw", self.t_bhw)
            .field_f64("t_k", self.t_k)
            .field_f64("t_c", self.t_c)
            .finish()
    }
}

impl ToJson for ClosedForm {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_str("regime", self.regime.name())
            .field_str("family", &self.family.to_string())
            .field_f64("cost", self.cost)
            .field_json("vars", &self.vars)
            .finish()
    }
}

impl ToJson for DistPlan {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_json("problem", &self.problem)
            .field_json("machine", &self.machine)
            .field_str("regime", self.regime.name())
            .field_json("grid", &self.grid)
            .field_json("w", &self.w)
            .field_json("t", &self.t)
            .field_f64("m_l", self.m_l)
            .field_f64("analytic_cost", self.analytic_cost)
            .field_json("predicted", &self.predicted)
            .finish()
    }
}

impl std::fmt::Display for Regime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::fmt::Display for InnerLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            InnerLoop::C => "C",
            InnerLoop::K => "K",
            InnerLoop::Bhw => "Bhw",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;

    #[test]
    fn problem_json_shape() {
        let p = Conv2dProblem::new(2, 8, 4, 8, 8, 3, 3, 1, 1);
        assert_eq!(
            p.to_json(),
            r#"{"nb":2,"nk":8,"nc":4,"nh":8,"nw":8,"nr":3,"ns":3,"sw":1,"sh":1}"#
        );
    }

    #[test]
    fn string_escaping() {
        let j = JsonObject::new().field_str("s", "a\"b\\c\nd\u{1}").finish();
        assert_eq!(j, r#"{"s":"a\"b\\c\nd\u0001"}"#);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let j = JsonObject::new()
            .field_f64("x", f64::NAN)
            .field_f64("y", 1.5)
            .finish();
        assert_eq!(j, r#"{"x":null,"y":1.5}"#);
    }

    #[test]
    fn plan_json_is_wellformed_and_complete() {
        let p = Conv2dProblem::new(2, 8, 8, 8, 8, 3, 3, 1, 1);
        let plan = Planner::new(p, MachineSpec::new(4, 1 << 18))
            .plan()
            .expect("feasible");
        let j = plan.to_json();
        // Structural sanity: balanced braces, all top-level keys present.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced: {j}"
        );
        for key in [
            "\"problem\"",
            "\"machine\"",
            "\"regime\"",
            "\"grid\"",
            "\"w\"",
            "\"t\"",
            "\"m_l\"",
            "\"analytic_cost\"",
            "\"predicted\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // f64 Display round-trips: parse one field back.
        let tail = j.split("\"cost_d\":").nth(1).unwrap();
        let num: f64 = tail.split(&[',', '}'][..]).next().unwrap().parse().unwrap();
        assert_eq!(num, plan.predicted.cost_d);
    }

    #[test]
    fn display_for_enums() {
        assert_eq!(Regime::Summa2D.to_string(), "2D");
        assert_eq!(InnerLoop::Bhw.to_string(), "Bhw");
    }
}

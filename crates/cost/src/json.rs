//! Hand-rolled JSON for report types.
//!
//! The workspace is hermetic (no external crates), so instead of
//! `serde` derives the handful of types that appear in machine-readable
//! reports implement [`ToJson`] by hand, via the [`JsonObject`] /
//! [`JsonArray`] builders. Plans are always recomputed from first
//! principles rather than restored, so the only *parsing* need is
//! tooling that reads reports back for comparison (the bench-trajectory
//! differ, CI validation of committed bench JSON) — [`JsonValue::parse`]
//! covers that with a minimal recursive-descent reader.
//!
//! Numbers are emitted with Rust's shortest-round-trip `f64` display,
//! so `serde_json`-style consumers reconstruct bit-identical values;
//! non-finite floats (never produced by a valid plan) become `null`.

use crate::closed_form::{ClosedForm, Regime};
use crate::planner::{DistPlan, GridShape, PredictedCost};
use crate::problem::{Conv2dProblem, MachineSpec};
use crate::simplified::{InnerLoop, SimplifiedVars};
use crate::tiling::{Partition, Tiling, TwoLevel};
use std::fmt::Write as _;

/// Types that can emit themselves as a JSON value.
pub trait ToJson {
    /// Serialize to a compact JSON string (no trailing newline).
    fn to_json(&self) -> String;
}

/// Incremental `{...}` builder: `field`-then-`finish`.
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{name}\":");
    }

    /// Add an unsigned integer field.
    pub fn field_usize(mut self, name: &str, v: usize) -> Self {
        self.key(name);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add an `f64` field (`null` if non-finite).
    pub fn field_f64(mut self, name: &str, v: f64) -> Self {
        self.key(name);
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Add a string field (callers pass only identifier-like strings;
    /// escaping covers the JSON mandatories all the same).
    pub fn field_str(mut self, name: &str, v: &str) -> Self {
        self.key(name);
        self.buf.push('"');
        for c in v.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\t' => self.buf.push_str("\\t"),
                '\r' => self.buf.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.buf, "\\u{:04x}", c as u32);
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
        self
    }

    /// Add a field whose value is already-serialized JSON.
    pub fn field_json(mut self, name: &str, v: &impl ToJson) -> Self {
        self.key(name);
        self.buf.push_str(&v.to_json());
        self
    }

    /// Close the object.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Incremental `[...]` builder, the array sibling of [`JsonObject`].
pub struct JsonArray {
    buf: String,
    first: bool,
}

impl Default for JsonArray {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonArray {
    /// Start an empty array.
    pub fn new() -> Self {
        JsonArray {
            buf: String::from("["),
            first: true,
        }
    }

    /// Append an already-serialized JSON value.
    pub fn push_raw(mut self, v: &str) -> Self {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str(v);
        self
    }

    /// Append a [`ToJson`] value.
    pub fn push_json(self, v: &impl ToJson) -> Self {
        let s = v.to_json();
        self.push_raw(&s)
    }

    /// Close the array.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

/// A parsed JSON value (the read side of this module — see module
/// docs for why parsing exists at all).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (adequate for report payloads).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(src: &str) -> Result<JsonValue, String> {
        let bytes = src.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|_| JsonValue::Null),
        Some(b't') => expect(b, pos, "true").map(|_| JsonValue::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| JsonValue::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(JsonValue::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Reports never emit surrogate pairs; map
                        // unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so slicing
                // on char boundaries is safe via str indexing).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    if start == *pos {
        return Err(format!("expected value at byte {start}"));
    }
    std::str::from_utf8(&b[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

impl ToJson for Conv2dProblem {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_usize("nb", self.nb)
            .field_usize("nk", self.nk)
            .field_usize("nc", self.nc)
            .field_usize("nh", self.nh)
            .field_usize("nw", self.nw)
            .field_usize("nr", self.nr)
            .field_usize("ns", self.ns)
            .field_usize("sw", self.sw)
            .field_usize("sh", self.sh)
            .finish()
    }
}

impl ToJson for MachineSpec {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_usize("p", self.p)
            .field_usize("mem", self.mem)
            .finish()
    }
}

impl ToJson for GridShape {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_usize("pb", self.pb)
            .field_usize("pk", self.pk)
            .field_usize("pc", self.pc)
            .field_usize("ph", self.ph)
            .field_usize("pw", self.pw)
            .finish()
    }
}

impl ToJson for Partition {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_usize("wb", self.wb)
            .field_usize("wk", self.wk)
            .field_usize("wc", self.wc)
            .field_usize("wh", self.wh)
            .field_usize("ww", self.ww)
            .finish()
    }
}

impl ToJson for Tiling {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_usize("tb", self.tb)
            .field_usize("tk", self.tk)
            .field_usize("tc", self.tc)
            .field_usize("th", self.th)
            .field_usize("tw", self.tw)
            .finish()
    }
}

impl ToJson for TwoLevel {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_json("w", &self.w)
            .field_json("t", &self.t)
            .finish()
    }
}

impl ToJson for PredictedCost {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_f64("cost_i", self.cost_i)
            .field_f64("cost_c", self.cost_c)
            .field_f64("cost_d", self.cost_d)
            .field_f64("cost_gvm", self.cost_gvm)
            .field_f64("footprint_gd", self.footprint_gd)
            .field_f64("footprint_g", self.footprint_g)
            .finish()
    }
}

impl ToJson for SimplifiedVars {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_f64("w_bhw", self.w_bhw)
            .field_f64("w_k", self.w_k)
            .field_f64("w_c", self.w_c)
            .field_f64("t_bhw", self.t_bhw)
            .field_f64("t_k", self.t_k)
            .field_f64("t_c", self.t_c)
            .finish()
    }
}

impl ToJson for ClosedForm {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_str("regime", self.regime.name())
            .field_str("family", &self.family.to_string())
            .field_f64("cost", self.cost)
            .field_json("vars", &self.vars)
            .finish()
    }
}

impl ToJson for DistPlan {
    fn to_json(&self) -> String {
        JsonObject::new()
            .field_json("problem", &self.problem)
            .field_json("machine", &self.machine)
            .field_str("regime", self.regime.name())
            .field_json("grid", &self.grid)
            .field_json("w", &self.w)
            .field_json("t", &self.t)
            .field_f64("m_l", self.m_l)
            .field_f64("analytic_cost", self.analytic_cost)
            .field_json("predicted", &self.predicted)
            .finish()
    }
}

impl std::fmt::Display for Regime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::fmt::Display for InnerLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            InnerLoop::C => "C",
            InnerLoop::K => "K",
            InnerLoop::Bhw => "Bhw",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;

    #[test]
    fn problem_json_shape() {
        let p = Conv2dProblem::new(2, 8, 4, 8, 8, 3, 3, 1, 1);
        assert_eq!(
            p.to_json(),
            r#"{"nb":2,"nk":8,"nc":4,"nh":8,"nw":8,"nr":3,"ns":3,"sw":1,"sh":1}"#
        );
    }

    #[test]
    fn string_escaping() {
        let j = JsonObject::new().field_str("s", "a\"b\\c\nd\u{1}").finish();
        assert_eq!(j, r#"{"s":"a\"b\\c\nd\u0001"}"#);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let j = JsonObject::new()
            .field_f64("x", f64::NAN)
            .field_f64("y", 1.5)
            .finish();
        assert_eq!(j, r#"{"x":null,"y":1.5}"#);
    }

    #[test]
    fn plan_json_is_wellformed_and_complete() {
        let p = Conv2dProblem::new(2, 8, 8, 8, 8, 3, 3, 1, 1);
        let plan = Planner::new(p, MachineSpec::new(4, 1 << 18))
            .plan()
            .expect("feasible");
        let j = plan.to_json();
        // Structural sanity: balanced braces, all top-level keys present.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced: {j}"
        );
        for key in [
            "\"problem\"",
            "\"machine\"",
            "\"regime\"",
            "\"grid\"",
            "\"w\"",
            "\"t\"",
            "\"m_l\"",
            "\"analytic_cost\"",
            "\"predicted\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // f64 Display round-trips: parse one field back.
        let tail = j.split("\"cost_d\":").nth(1).unwrap();
        let num: f64 = tail.split(&[',', '}'][..]).next().unwrap().parse().unwrap();
        assert_eq!(num, plan.predicted.cost_d);
    }

    #[test]
    fn display_for_enums() {
        assert_eq!(Regime::Summa2D.to_string(), "2D");
        assert_eq!(InnerLoop::Bhw.to_string(), "Bhw");
    }

    #[test]
    fn array_builder() {
        let j = JsonArray::new()
            .push_raw("1")
            .push_raw("\"two\"")
            .push_json(&MachineSpec::new(4, 16))
            .finish();
        assert_eq!(j, r#"[1,"two",{"p":4,"mem":16}]"#);
        assert_eq!(JsonArray::new().finish(), "[]");
    }

    #[test]
    fn parse_round_trips_emitted_plan() {
        let p = Conv2dProblem::new(2, 8, 8, 8, 8, 3, 3, 1, 1);
        let plan = Planner::new(p, MachineSpec::new(4, 1 << 18))
            .plan()
            .expect("feasible");
        let v = JsonValue::parse(&plan.to_json()).expect("parses");
        assert_eq!(
            v.get("problem").and_then(|p| p.get("nk")).unwrap().as_f64(),
            Some(8.0)
        );
        assert_eq!(
            v.get("predicted")
                .and_then(|c| c.get("cost_d"))
                .unwrap()
                .as_f64(),
            Some(plan.predicted.cost_d)
        );
        assert_eq!(v.get("regime").unwrap().as_str(), Some(plan.regime.name()));
    }

    #[test]
    fn parse_scalars_arrays_escapes() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("-1.5e2").unwrap(), JsonValue::Num(-150.0));
        assert_eq!(
            JsonValue::parse(r#""a\"b\\c\ndA""#).unwrap(),
            JsonValue::Str("a\"b\\c\ndA".into())
        );
        let arr = JsonValue::parse("[1, [2, 3], {}]").unwrap();
        assert_eq!(arr.as_array().unwrap().len(), 3);
        assert_eq!(arr.as_array().unwrap()[1].as_array().unwrap().len(), 2);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(JsonValue::parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}

//! The simplified optimization objective (Eq. 4) and its generalization
//! to the other innermost-tile-loop families (used to validate Table 2).
//!
//! Eq. 4 drops the `N_r − 1` / `N_s − 1` halo additions, folds
//! `b, h, w` into the composite `bhw`, and fixes `T_c = 1`:
//!
//! ```text
//! cost_L = W_k·W_bhw + (N_k·N_c·N_bhw / P)·(N_r·N_s/T_bhw + σ_w·σ_h/T_k)
//!   s.t.   g_L = T_bhw·T_k ≤ M_L,   P·W_bhw·W_k·W_c = N_bhw·N_k·N_c
//! ```
//!
//! The first term is the resident tensor (`Out`, touched once); the two
//! reload terms come from `Ker` and `In`. Which tensor is resident is
//! determined by the innermost tile loop: the tensor whose indexing does
//! *not* use that loop stays in local memory across its iterations
//! (paper Sec. 2.2 "missing index" observation). [`InnerLoop`]
//! enumerates the three families and [`simplified_cost`] evaluates the
//! corresponding objective; `InnerLoop::C` is exactly Eq. 4.

use crate::problem::Conv2dProblem;

/// Which tile loop is innermost — equivalently, which tensor is resident.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InnerLoop {
    /// `c` innermost → `Out[b,k,w,h]` resident (Eq. 4 / Table 1).
    C,
    /// `k` innermost → `In[b,c,x,y]` resident.
    K,
    /// one of `b,h,w` innermost → `Ker[k,c,r,s]` resident.
    Bhw,
}

impl InnerLoop {
    /// All three families.
    pub const ALL: [InnerLoop; 3] = [InnerLoop::C, InnerLoop::K, InnerLoop::Bhw];
}

/// Real-valued decision variables of the simplified problem: composite
/// work-partition sizes and tile sizes. (`W_c` has no tile because
/// `T_c = 1` in the `C` family; the other families analogously fix the
/// resident tensor's reload tile to 1 — see [`simplified_cost`].)
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimplifiedVars {
    /// Composite `W_bhw`.
    pub w_bhw: f64,
    /// `W_k`.
    pub w_k: f64,
    /// `W_c`.
    pub w_c: f64,
    /// Composite `T_bhw`.
    pub t_bhw: f64,
    /// `T_k`.
    pub t_k: f64,
    /// `T_c`.
    pub t_c: f64,
}

impl SimplifiedVars {
    /// Check the constraint set of Eq. 4 (up to tolerance `tol` on the
    /// Eq. 2 product constraint): bounds `1 ≤ T ≤ W ≤ N` and
    /// `P·W_bhw·W_k·W_c = N_bhw·N_k·N_c`.
    pub fn feasible(&self, p: &Conv2dProblem, procs: usize, tol: f64) -> bool {
        let nbhw = p.nbhw() as f64;
        let bounds = |t: f64, w: f64, n: f64| 1.0 - tol <= t && t <= w + tol && w <= n + tol;
        if !bounds(self.t_bhw, self.w_bhw, nbhw)
            || !bounds(self.t_k, self.w_k, p.nk as f64)
            || !bounds(self.t_c, self.w_c, p.nc as f64)
        {
            return false;
        }
        let lhs = procs as f64 * self.w_bhw * self.w_k * self.w_c;
        let rhs = nbhw * p.nk as f64 * p.nc as f64;
        (lhs / rhs - 1.0).abs() <= tol
    }
}

/// The recurring constant `A = N_k·N_c·N_bhw / P` (total iteration points
/// per processor over the tiled dimensions).
pub fn a_const(p: &Conv2dProblem, procs: usize) -> f64 {
    p.iter_points() as f64 / procs as f64
}

/// Simplified data-movement cost for the given innermost-loop family.
///
/// * `C`   (Eq. 4):  `W_k·W_bhw                + A·(N_rN_s/T_bhw + σ_wσ_h/T_k)`
/// * `K`:            `σ_wσ_h·W_c·W_bhw         + A·(N_rN_s/T_bhw + 2/T_c)`
/// * `Bhw`:          `N_rN_s·W_k·W_c           + A·(σ_wσ_h/T_k  + 2/T_c)`
///
/// For `K`/`Bhw` the non-resident *output* is reloaded **and** stored on
/// each visit, hence the factor 2 on its reload term (the `C` family has
/// no such factor because `Out` is the resident tensor, written once).
pub fn simplified_cost(
    p: &Conv2dProblem,
    procs: usize,
    family: InnerLoop,
    v: &SimplifiedVars,
) -> f64 {
    let a = a_const(p, procs);
    let rs = (p.nr * p.ns) as f64;
    let ss = (p.sw * p.sh) as f64;
    match family {
        InnerLoop::C => v.w_k * v.w_bhw + a * (rs / v.t_bhw + ss / v.t_k),
        InnerLoop::K => ss * v.w_c * v.w_bhw + a * (rs / v.t_bhw + 2.0 / v.t_c),
        InnerLoop::Bhw => rs * v.w_k * v.w_c + a * (ss / v.t_k + 2.0 / v.t_c),
    }
}

/// Simplified memory footprint `g_L` for the family: the resident
/// tensor's tile.
///
/// * `C`:   `T_bhw·T_k`          (`Out` tile)
/// * `K`:   `σ_wσ_h·T_bhw·T_c`   (`In` tile)
/// * `Bhw`: `N_rN_s·T_k·T_c`     (`Ker` tile)
pub fn simplified_footprint(p: &Conv2dProblem, family: InnerLoop, v: &SimplifiedVars) -> f64 {
    let rs = (p.nr * p.ns) as f64;
    let ss = (p.sw * p.sh) as f64;
    match family {
        InnerLoop::C => v.t_bhw * v.t_k,
        InnerLoop::K => ss * v.t_bhw * v.t_c,
        InnerLoop::Bhw => rs * v.t_k * v.t_c,
    }
}

/// Per-processor size of the resident tensor's work-partition slice when
/// the *other two* partitions are maximal (the quantities appearing in
/// Table 2's conditions):
///
/// * `C`:   `N_k·N_bhw / P`
/// * `K`:   `σ_wσ_h·N_c·N_bhw / P`
/// * `Bhw`: `N_rN_s·N_k·N_c / P`
pub fn resident_slice(p: &Conv2dProblem, procs: usize, family: InnerLoop) -> f64 {
    let nbhw = p.nbhw() as f64;
    let (nk, nc) = (p.nk as f64, p.nc as f64);
    let rs = (p.nr * p.ns) as f64;
    let ss = (p.sw * p.sh) as f64;
    match family {
        InnerLoop::C => nk * nbhw / procs as f64,
        InnerLoop::K => ss * nc * nbhw / procs as f64,
        InnerLoop::Bhw => rs * nk * nc / procs as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Conv2dProblem {
        Conv2dProblem::square(4, 16, 16, 8, 3)
    }

    #[test]
    fn eq4_matches_hand_computation() {
        let p = toy(); // Nbhw = 4·8·8 = 256, A = 256·16·16/P
        let procs = 4;
        let v = SimplifiedVars {
            w_bhw: 64.0,
            w_k: 16.0,
            w_c: 16.0,
            t_bhw: 32.0,
            t_k: 8.0,
            t_c: 1.0,
        };
        let a = 256.0 * 16.0 * 16.0 / 4.0;
        let expect = 16.0 * 64.0 + a * (9.0 / 32.0 + 1.0 / 8.0);
        assert_eq!(simplified_cost(&p, procs, InnerLoop::C, &v), expect);
        assert_eq!(simplified_footprint(&p, InnerLoop::C, &v), 32.0 * 8.0);
    }

    #[test]
    fn feasibility_checks_eq2() {
        let p = toy();
        let procs = 4;
        let v = SimplifiedVars {
            w_bhw: 64.0,
            w_k: 16.0,
            w_c: 16.0, // 4·64·16·16 = 65536 = 256·16·16 ✓
            t_bhw: 32.0,
            t_k: 8.0,
            t_c: 1.0,
        };
        assert!(v.feasible(&p, procs, 1e-9));
        let bad = SimplifiedVars { w_c: 8.0, ..v };
        assert!(!bad.feasible(&p, procs, 1e-9));
        let bad_t = SimplifiedVars { t_k: 20.0, ..v };
        assert!(!bad_t.feasible(&p, procs, 1e-9));
    }

    #[test]
    fn resident_slices() {
        let p = toy();
        assert_eq!(resident_slice(&p, 4, InnerLoop::C), 16.0 * 256.0 / 4.0);
        assert_eq!(resident_slice(&p, 4, InnerLoop::K), 16.0 * 256.0 / 4.0); // σ=1
        assert_eq!(
            resident_slice(&p, 4, InnerLoop::Bhw),
            9.0 * 16.0 * 16.0 / 4.0
        );
    }

    #[test]
    fn families_weight_resident_tensor() {
        // With a huge kernel, keeping Ker resident should beat reloading
        // it, all else equal.
        let p = Conv2dProblem::square(2, 8, 8, 16, 7);
        let v = SimplifiedVars {
            w_bhw: 8.0,
            w_k: 4.0,
            w_c: 4.0,
            t_bhw: 8.0,
            t_k: 4.0,
            t_c: 4.0,
        };
        let c_cost = simplified_cost(&p, 64, InnerLoop::C, &v);
        let bhw_cost = simplified_cost(&p, 64, InnerLoop::Bhw, &v);
        // C family pays A·49/8 on Ker reloads; Bhw pays only A·(1/4 + 2/4).
        assert!(bhw_cost < c_cost, "bhw {bhw_cost} vs c {c_cost}");
    }
}

//! Integer tilings and work partitions.
//!
//! The paper's optimization variables come in two levels:
//!
//! * a **work partition** `W = (W_b, W_k, W_c, W_h, W_w)` — the slab of
//!   the iteration space one processor owns (Eq. 2:
//!   `P · ∏ W_i = ∏ N_i`), and
//! * a **tiling** `T = (T_b, T_k, T_c, T_h, T_w)` — the chunk of the work
//!   partition executed between data movements (`T_i ≤ W_i`).
//!
//! This module provides the integer containers, validity checks, and the
//! divisor machinery used both to *round* the paper's real-valued
//! closed-form solutions to feasible integers and to drive the
//! brute-force reference optimizer.

use crate::problem::Conv2dProblem;

/// Dimension order used for all 5-tuples in this crate: `b, k, c, h, w`.
pub const DIM_NAMES: [&str; 5] = ["b", "k", "c", "h", "w"];

/// Tile sizes `T_i` for the five tiled loops, in `[b, k, c, h, w]` order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Tiling {
    /// `T_b`.
    pub tb: usize,
    /// `T_k`.
    pub tk: usize,
    /// `T_c`.
    pub tc: usize,
    /// `T_h`.
    pub th: usize,
    /// `T_w`.
    pub tw: usize,
}

impl Tiling {
    /// Construct a tiling; all sizes must be positive.
    pub fn new(tb: usize, tk: usize, tc: usize, th: usize, tw: usize) -> Self {
        assert!(
            [tb, tk, tc, th, tw].iter().all(|&x| x > 0),
            "tile sizes must be positive"
        );
        Tiling { tb, tk, tc, th, tw }
    }

    /// The composite tile size `T_bhw = T_b · T_h · T_w`.
    pub fn tbhw(&self) -> usize {
        self.tb * self.th * self.tw
    }

    /// As an array in `[b, k, c, h, w]` order.
    pub fn as_array(&self) -> [usize; 5] {
        [self.tb, self.tk, self.tc, self.th, self.tw]
    }
}

/// Work-partition sizes `W_i`, in `[b, k, c, h, w]` order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Partition {
    /// `W_b`.
    pub wb: usize,
    /// `W_k`.
    pub wk: usize,
    /// `W_c`.
    pub wc: usize,
    /// `W_h`.
    pub wh: usize,
    /// `W_w`.
    pub ww: usize,
}

impl Partition {
    /// Construct a partition; all sizes must be positive.
    pub fn new(wb: usize, wk: usize, wc: usize, wh: usize, ww: usize) -> Self {
        assert!(
            [wb, wk, wc, wh, ww].iter().all(|&x| x > 0),
            "partition sizes must be positive"
        );
        Partition { wb, wk, wc, wh, ww }
    }

    /// The composite `W_bhw = W_b · W_h · W_w`.
    pub fn wbhw(&self) -> usize {
        self.wb * self.wh * self.ww
    }

    /// As an array in `[b, k, c, h, w]` order.
    pub fn as_array(&self) -> [usize; 5] {
        [self.wb, self.wk, self.wc, self.wh, self.ww]
    }

    /// Check Eq. 2: `P · ∏ W_i = ∏ N_i` and `W_i ≤ N_i` with every
    /// `W_i` dividing `N_i` (so the processor grid `P_i = N_i / W_i` is
    /// integral).
    pub fn validates_eq2(&self, problem: &Conv2dProblem, p: usize) -> bool {
        let w = self.as_array();
        let n = [problem.nb, problem.nk, problem.nc, problem.nh, problem.nw];
        if !w
            .iter()
            .zip(n.iter())
            .all(|(&wi, &ni)| wi <= ni && ni % wi == 0)
        {
            return false;
        }
        let grid: usize = w.iter().zip(n.iter()).map(|(&wi, &ni)| ni / wi).product();
        grid == p
    }

    /// The processor-grid extents `P_i = N_i / W_i` in `[b,k,c,h,w]`
    /// order. Requires divisibility (checked).
    pub fn grid(&self, problem: &Conv2dProblem) -> [usize; 5] {
        let w = self.as_array();
        let n = [problem.nb, problem.nk, problem.nc, problem.nh, problem.nw];
        let mut g = [0usize; 5];
        for i in 0..5 {
            assert!(
                n[i].is_multiple_of(w[i]),
                "W_{} = {} does not divide N_{} = {}",
                DIM_NAMES[i],
                w[i],
                DIM_NAMES[i],
                n[i]
            );
            g[i] = n[i] / w[i];
        }
        g
    }
}

/// A combined `(W, T)` candidate with `T_i ≤ W_i` enforced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwoLevel {
    /// Work partition.
    pub w: Partition,
    /// Tile sizes within the partition.
    pub t: Tiling,
}

impl TwoLevel {
    /// Construct and validate `T ≤ W` elementwise.
    pub fn new(w: Partition, t: Tiling) -> Self {
        for (i, (&ti, &wi)) in t.as_array().iter().zip(w.as_array().iter()).enumerate() {
            assert!(
                ti <= wi,
                "T_{} = {ti} exceeds W_{} = {wi}",
                DIM_NAMES[i],
                DIM_NAMES[i]
            );
        }
        TwoLevel { w, t }
    }
}

/// All positive divisors of `n`, ascending.
pub fn divisors(n: usize) -> Vec<usize> {
    assert!(n > 0);
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            small.push(d);
            if d != n / d {
                large.push(n / d);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

/// The divisor of `n` closest to real-valued `x` (ties broken downward).
pub fn nearest_divisor(n: usize, x: f64) -> usize {
    let ds = divisors(n);
    *ds.iter()
        .min_by(|&&a, &&b| {
            let da = (a as f64 - x).abs();
            let db = (b as f64 - x).abs();
            da.partial_cmp(&db).unwrap().then_with(|| a.cmp(&b))
        })
        .expect("n > 0 has divisors")
}

/// The largest divisor of `n` that is `<= limit` (at least 1).
pub fn largest_divisor_at_most(n: usize, limit: usize) -> usize {
    divisors(n)
        .into_iter()
        .take_while(|&d| d <= limit)
        .last()
        .unwrap_or(1)
}

/// Factor `p` into `dims` grid extents `g` with `∏ g = p`, each
/// `g[i] ≤ cap[i]`, choosing extents that divide the corresponding cap
/// when possible. Greedy: repeatedly assigns the largest prime factor to
/// the dimension with the most remaining headroom. Returns `None` if `p`
/// cannot be packed under the caps.
pub fn factor_into_grid(p: usize, caps: &[usize]) -> Option<Vec<usize>> {
    let mut g = vec![1usize; caps.len()];
    let mut factors = prime_factors(p);
    // Largest factors first: hardest to place.
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        // Prefer a dimension where multiplying by f still divides cap,
        // maximizing remaining headroom; fall back to any that fits.
        let mut best: Option<(usize, f64)> = None;
        for (i, &cap) in caps.iter().enumerate() {
            let ng = g[i] * f;
            if ng > cap || cap % ng != 0 {
                continue;
            }
            let headroom = cap as f64 / ng as f64;
            if best.is_none_or(|(_, h)| headroom > h) {
                best = Some((i, headroom));
            }
        }
        match best {
            Some((i, _)) => g[i] *= f,
            None => {
                // Relax divisibility: just fit under the cap.
                let i = (0..caps.len())
                    .filter(|&i| g[i] * f <= caps[i])
                    .max_by(|&a, &b| {
                        let ha = caps[a] / (g[a] * f);
                        let hb = caps[b] / (g[b] * f);
                        ha.cmp(&hb)
                    })?;
                g[i] *= f;
            }
        }
    }
    Some(g)
}

/// Prime factorization of `n` (with multiplicity), ascending.
pub fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        while n.is_multiple_of(d) {
            out.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Conv2dProblem {
        Conv2dProblem::square(4, 8, 8, 8, 3)
    }

    #[test]
    fn divisor_lists() {
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(17), vec![1, 17]);
    }

    #[test]
    fn nearest_divisor_picks_closest() {
        assert_eq!(nearest_divisor(12, 5.0), 4); // tie 4 vs 6 → downward
        assert_eq!(nearest_divisor(12, 5.1), 6);
        assert_eq!(nearest_divisor(12, 0.0), 1);
        assert_eq!(nearest_divisor(12, 100.0), 12);
    }

    #[test]
    fn largest_divisor_cap() {
        assert_eq!(largest_divisor_at_most(12, 5), 4);
        assert_eq!(largest_divisor_at_most(12, 12), 12);
        assert_eq!(largest_divisor_at_most(7, 6), 1);
    }

    #[test]
    fn prime_factorization() {
        assert_eq!(prime_factors(1), Vec::<usize>::new());
        assert_eq!(prime_factors(12), vec![2, 2, 3]);
        assert_eq!(prime_factors(97), vec![97]);
        assert_eq!(prime_factors(360), vec![2, 2, 2, 3, 3, 5]);
    }

    #[test]
    fn grid_factoring() {
        let g = factor_into_grid(16, &[4, 8, 8, 8, 8]).unwrap();
        assert_eq!(g.iter().product::<usize>(), 16);
        for (gi, cap) in g.iter().zip([4, 8, 8, 8, 8]) {
            assert!(*gi <= cap);
        }
        // Impossible packing.
        assert_eq!(factor_into_grid(64, &[2, 2]), None);
        // Prime that must land in the only big dimension.
        let g = factor_into_grid(7, &[2, 14]).unwrap();
        assert_eq!(g, vec![1, 7]);
    }

    #[test]
    fn eq2_validation() {
        let p = toy(); // Nb=4 Nk=8 Nc=8 Nh=8 Nw=8 → ∏N = 16384
                       // W = (2,4,8,4,4): grid = (2,2,1,2,2) → P=16.
        let w = Partition::new(2, 4, 8, 4, 4);
        assert!(w.validates_eq2(&p, 16));
        assert!(!w.validates_eq2(&p, 8));
        assert_eq!(w.grid(&p), [2, 2, 1, 2, 2]);
        assert_eq!(w.wbhw(), 2 * 4 * 4);
    }

    #[test]
    fn eq2_rejects_non_divisor() {
        let p = toy();
        let w = Partition::new(3, 8, 8, 8, 8); // 3 does not divide 4
        assert!(!w.validates_eq2(&p, 1));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn two_level_enforces_t_le_w() {
        let w = Partition::new(2, 2, 2, 2, 2);
        let t = Tiling::new(4, 1, 1, 1, 1);
        let _ = TwoLevel::new(w, t);
    }
}

//! # distconv-cost
//!
//! The analytical data-movement model and tile-size optimizer from
//! *Efficient Distributed Algorithms for Convolutional Neural Networks*
//! (SPAA '21), Sec. 2.1–2.2.
//!
//! The paper's method has two stages, both implemented here:
//!
//! 1. **Global-virtual-memory optimization** (Sec. 2.1). Given a CNN
//!    layer ([`Conv2dProblem`]), `P` processors and per-processor local
//!    memory `M`, choose work-partition sizes `W_i` and tile sizes `T_i`
//!    minimizing the volume of data moved between local memories and a
//!    virtual global memory. The exact objective is Eq. 3
//!    ([`exact::eq3_cost`]); the paper solves the simplified Eq. 4
//!    ([`simplified`]) in closed form — [`closed_form::solve_table1`]
//!    reproduces **Table 1** (tile-loop permutations with `c` innermost)
//!    and [`closed_form::solve_table2`] reproduces **Table 2** (all
//!    permutations). The memory deflation `M → M_L` that makes the
//!    simplified solution feasible for the exact constraint is
//!    [`closed_form::ml_deflate`]. A brute-force integer optimizer
//!    ([`brute`]) validates every closed form.
//!
//! 2. **Distributed-memory construction** (Sec. 2.2). [`planner::Planner`]
//!    converts the optimization result into a concrete [`planner::DistPlan`]:
//!    a logical `Pb×Ph×Pw×Pc×Pk` processor grid (`P_i = N_i / W_i`),
//!    integer tile sizes, and the predicted communication cost
//!    `cost_D = cost_I + cost_C` (Eq. 10) and memory footprint `g_D`
//!    (Eq. 11) that `distconv-core` then realizes — and that the
//!    experiments check against *measured* volumes, element for element.
//!
//! All analytic formulas are evaluated in `f64`; concrete integer tilings
//! are evaluated with `u128` arithmetic so the "measured == modeled"
//! tests are exact.

#![warn(missing_docs)]

pub mod brute;
pub mod closed_form;
pub mod exact;
pub mod json;
pub mod planner;
pub mod presets;
pub mod problem;
pub mod simplified;
pub mod tiling;

pub use closed_form::{ml_deflate, solve_table1, solve_table2, ClosedForm, Regime};
pub use exact::{eq10_cost_c, eq10_cost_i, eq11_footprint_gd, eq1_cost, eq3_cost, eq3_footprint_g};
pub use json::ToJson;
pub use planner::{DistPlan, PlanError, Planner};
pub use problem::{Conv2dProblem, MachineSpec};
pub use tiling::{Partition, Tiling};

//! Property tests for the packed im2col-GEMM fast path: randomized
//! shapes with strides σ ∈ {1,2,3}, odd halos, and `T_c` channel
//! splits, validated against the `conv2d_direct` ground truth. Runs on
//! the in-tree `proptest_mini` harness (replay a failing case with
//! `DISTCONV_PROPTEST_SEED=<seed from the failure report>`).

use distconv_conv::kernels::{conv2d_direct, in_shape, ker_shape, out_shape, workload};
use distconv_conv::{conv2d_fast, conv_tile_fast, ConvScratch};
use distconv_cost::Conv2dProblem;
use distconv_par::proptest_mini::{check, Config, Gen};
use distconv_tensor::{assert_close, Range4, Tensor4};

/// Random layers spanning the fast path's structural cases: strides
/// σw, σh ∈ {1,2,3} independently (σh = 1 exercises the implicit
/// zero-copy columns, σh > 1 the gather path), kernel extents 1..4
/// (1×1 pointwise through odd 3-wide halos, and even 2/4), and channel
/// counts past MR so the k-blocking hits partial register blocks.
fn arb_problem(g: &mut Gen) -> Conv2dProblem {
    Conv2dProblem::new(
        g.usize_in(1, 3), // nb
        g.usize_in(1, 7), // nk (crosses MR = 4 boundary)
        g.usize_in(1, 6), // nc
        g.usize_in(1, 5), // nh
        g.usize_in(1, 5), // nw
        g.usize_in(1, 4), // nr
        g.usize_in(1, 4), // ns
        g.usize_in(1, 3), // sw
        g.usize_in(1, 3), // sh
    )
}

#[test]
fn conv_tile_fast_matches_direct() {
    check(
        "conv_tile_fast_matches_direct",
        Config::with_cases(64),
        |g| {
            let p = arb_problem(g);
            let seed = g.u64();
            let (input, ker) = workload::<f64>(&p, seed);
            let reference = conv2d_direct(&p, &input, &ker);
            let mut out = Tensor4::zeros(out_shape(&p));
            let mut scratch = ConvScratch::new();
            conv_tile_fast(&p, &mut out, &input, &ker, &mut scratch);
            assert_close(
                out.as_slice(),
                reference.as_slice(),
                1e-12,
                &format!("conv_tile_fast {p:?}"),
            );
        },
    );
}

#[test]
fn conv2d_fast_matches_direct_f32_and_f64() {
    check("conv2d_fast_matches_direct", Config::with_cases(48), |g| {
        let p = arb_problem(g);
        let seed = g.u64();
        if g.bool() {
            let (input, ker) = workload::<f64>(&p, seed);
            let a = conv2d_direct(&p, &input, &ker);
            let b = conv2d_fast(&p, &input, &ker);
            // Same per-element accumulation order ⇒ bitwise equal.
            assert_eq!(a.as_slice(), b.as_slice(), "f64 {p:?}");
        } else {
            let (input, ker) = workload::<f32>(&p, seed);
            let a = conv2d_direct(&p, &input, &ker);
            let b = conv2d_fast(&p, &input, &ker);
            assert_eq!(a.as_slice(), b.as_slice(), "f32 {p:?}");
        }
    });
}

#[test]
fn conv_tile_fast_accumulates_random_tc_splits() {
    check("conv_tile_fast_tc_splits", Config::with_cases(48), |g| {
        let p = arb_problem(g);
        let seed = g.u64();
        let (input, ker) = workload::<f64>(&p, seed);
        let reference = conv2d_direct(&p, &input, &ker);
        // Split the channel range into random contiguous chunks and
        // accumulate tile contributions through one shared scratch
        // arena — the invariant the c-innermost schedules rely on.
        let mut out = Tensor4::zeros(out_shape(&p));
        let mut scratch = ConvScratch::new();
        let mut c0 = 0;
        while c0 < p.nc {
            let c1 = (c0 + g.usize_in(1, p.nc)).min(p.nc);
            let in_slice = input.slice(Range4::new([0, c0, 0, 0], [p.nb, c1, p.in_w(), p.in_h()]));
            let ker_slice = ker.slice(Range4::new([0, c0, 0, 0], [p.nk, c1, p.nr, p.ns]));
            conv_tile_fast(&p, &mut out, &in_slice, &ker_slice, &mut scratch);
            c0 = c1;
        }
        assert_close(
            out.as_slice(),
            reference.as_slice(),
            1e-12,
            &format!("tc-split {p:?}"),
        );
    });
}

#[test]
fn conv_tile_fast_on_output_subtiles() {
    check("conv_tile_fast_subtiles", Config::with_cases(40), |g| {
        // Random output w/h sub-tiles with their exact halo windows:
        // the geometry the GVM executor and distributed forward use.
        let p = arb_problem(g);
        let seed = g.u64();
        let (input, ker) = workload::<f64>(&p, seed);
        let reference = conv2d_direct(&p, &input, &ker);
        let mut scratch = ConvScratch::new();
        let (w0, h0) = (g.usize_in(0, p.nw - 1), g.usize_in(0, p.nh - 1));
        let (w1, h1) = (g.usize_in(w0 + 1, p.nw), g.usize_in(h0 + 1, p.nh));
        let out_rng = Range4::new([0, 0, w0, h0], [p.nb, p.nk, w1, h1]);
        let in_rng = distconv_tensor::conv_input_region(out_rng, 0, p.nc, p.sw, p.sh, p.nr, p.ns);
        let in_tile = input.slice(in_rng);
        let mut out_tile = Tensor4::zeros(out_rng.shape());
        conv_tile_fast(&p, &mut out_tile, &in_tile, &ker, &mut scratch);
        let expect = reference.slice(out_rng);
        assert_eq!(
            out_tile.as_slice(),
            expect.as_slice(),
            "subtile {out_rng:?} of {p:?}"
        );
    });
}

#[test]
fn shapes_are_consistent() {
    check("fast_shapes_consistent", Config::with_cases(24), |g| {
        let p = arb_problem(g);
        let (input, ker) = workload::<f64>(&p, 1);
        assert_eq!(input.shape(), in_shape(&p));
        assert_eq!(ker.shape(), ker_shape(&p));
        assert_eq!(conv2d_fast(&p, &input, &ker).shape(), out_shape(&p));
    });
}

//! Whole-convolution SIMD-vs-scalar bitwise equivalence.
//!
//! `tensor/tests/simd_equivalence.rs` pins the micro-kernel contract;
//! this suite pins it end-to-end: an entire `conv2d_fast` (and a
//! Winograd run) executed on the AVX2 path must be bit-for-bit what
//! the scalar path produces, *including* the path-dependent register
//! blocking (`mr_block()` is 8 wide vs 4 scalar) — the blocking is a
//! perf hint that must be invisible in results.
//!
//! This file deliberately holds a **single** `#[test]`: it flips the
//! process-global dispatch cache via `simd::force`, and integration
//! tests in one binary may run concurrently. One test per binary ⇒ one
//! process ⇒ no racing observers.

use distconv_conv::kernels::workload;
use distconv_conv::{conv2d_fast, conv2d_winograd};
use distconv_cost::Conv2dProblem;
use distconv_tensor::simd::{detect, force, SimdPath};

#[test]
fn whole_conv_is_bitwise_identical_across_simd_paths() {
    if detect() != SimdPath::Avx2 {
        eprintln!(
            "SKIP-NOTE: host has no avx2+fma — whole-conv SIMD equivalence is \
             vacuous (both runs scalar)"
        );
        return;
    }
    // Shapes chosen to hit: vector main loops (nh ≥ lanes), scalar
    // tails (nh % 8 ≠ 0), partial register blocks (nk % 8 ≠ 0), the
    // strided-h gather path, a pointwise layer, and the Winograd
    // transforms' GEMMs. The 18×20 layer has ≥8 interior tile rows,
    // so the AVX2 Winograd transform blocks (wino_simd) run with both
    // a vector block and a scalar tail.
    let problems = [
        Conv2dProblem::square(2, 9, 5, 13, 3),
        Conv2dProblem::new(1, 7, 3, 16, 5, 3, 3, 1, 1),
        Conv2dProblem::new(2, 5, 4, 7, 6, 3, 2, 2, 2),
        Conv2dProblem::new(1, 12, 6, 9, 9, 1, 1, 1, 1),
        Conv2dProblem::new(1, 4, 3, 18, 20, 3, 3, 1, 1),
    ];
    for (i, p) in problems.iter().enumerate() {
        let (in64, k64) = workload::<f64>(p, 1000 + i as u64);
        let (in32, k32) = workload::<f32>(p, 2000 + i as u64);

        force(Some(SimdPath::Scalar));
        let fast64_s = conv2d_fast(p, &in64, &k64);
        let fast32_s = conv2d_fast(p, &in32, &k32);
        let wino64_s = conv2d_winograd(p, &in64, &k64);
        let wino32_s = conv2d_winograd(p, &in32, &k32);

        force(Some(SimdPath::Avx2));
        let fast64_v = conv2d_fast(p, &in64, &k64);
        let fast32_v = conv2d_fast(p, &in32, &k32);
        let wino64_v = conv2d_winograd(p, &in64, &k64);
        let wino32_v = conv2d_winograd(p, &in32, &k32);

        force(None);
        assert_eq!(fast64_s.as_slice(), fast64_v.as_slice(), "fast f64 {p:?}");
        assert_eq!(fast32_s.as_slice(), fast32_v.as_slice(), "fast f32 {p:?}");
        // Winograd is tolerance-tier vs the *reference*, but must be
        // bitwise self-consistent across ISA paths — both runs perform
        // the same bilinear arithmetic in the same order. The f32 run
        // additionally covers the AVX2 transform blocks (wino_simd).
        assert_eq!(wino64_s.as_slice(), wino64_v.as_slice(), "wino f64 {p:?}");
        assert_eq!(wino32_s.as_slice(), wino32_v.as_slice(), "wino f32 {p:?}");
    }
}

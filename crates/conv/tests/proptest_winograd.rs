//! Property tests for the Winograd `F(2×2, 3×3)` kernel under the
//! workspace's **two-tier numeric policy** (DESIGN.md §7): Winograd
//! evaluates a different bilinear form than the reference, so it is
//! validated with `proptest_mini::assert_close` under analytically
//! justified tolerances (per Ju & Solomonik, arXiv 1910.13367) —
//! `1e-12` for f64, `5e-4` for f32 on the `O(1)`-magnitude random
//! workloads — while shapes outside `F(2×2, 3×3)`'s domain must take
//! the fallback and stay **bitwise** equal to the fast path.
//!
//! Replay a failing case with `DISTCONV_PROPTEST_SEED=<seed from the
//! failure report>`.

use distconv_conv::kernels::{conv2d_direct, out_shape, workload};
use distconv_conv::winograd::winograd_applicable;
use distconv_conv::{
    conv2d, conv2d_fast, conv2d_winograd, conv_tile_winograd, ConvScratch, LocalKernel,
};
use distconv_cost::Conv2dProblem;
use distconv_par::proptest_mini::{assert_close, check, Config, Gen};
use distconv_tensor::{Range4, Scalar, Tensor4};

/// Random 3×3 stride-1 layers — the Winograd domain. Spatial extents
/// 1..=7 cover even tilings, odd (clipped half-tile) edges, and the
/// degenerate single-output case; `nk` crosses every register block.
fn arb_wino_problem(g: &mut Gen) -> Conv2dProblem {
    Conv2dProblem::new(
        g.usize_in(1, 2), // nb
        g.usize_in(1, 9), // nk (crosses MR=4 and MR_MAX=8 blocks)
        g.usize_in(1, 4), // nc
        g.usize_in(1, 7), // nh
        g.usize_in(1, 7), // nw
        3,
        3,
        1,
        1,
    )
}

/// Random layers *outside* the Winograd domain: wrong kernel extent
/// and/or stride > 1.
fn arb_fallback_problem(g: &mut Gen) -> Conv2dProblem {
    loop {
        let p = Conv2dProblem::new(
            g.usize_in(1, 2),
            g.usize_in(1, 5),
            g.usize_in(1, 4),
            g.usize_in(1, 5),
            g.usize_in(1, 5),
            g.usize_in(1, 4),
            g.usize_in(1, 4),
            g.usize_in(1, 2),
            g.usize_in(1, 2),
        );
        if !winograd_applicable(&p) {
            return p;
        }
    }
}

fn to_f64<T: Scalar>(v: &[T]) -> Vec<f64> {
    v.iter().map(|&x| x.to_f64()).collect()
}

#[test]
fn winograd_matches_direct_f64() {
    check("winograd_matches_direct_f64", Config::with_cases(64), |g| {
        let p = arb_wino_problem(g);
        let (input, ker) = workload::<f64>(&p, g.u64());
        let want = conv2d_direct(&p, &input, &ker);
        let got = conv2d_winograd(&p, &input, &ker);
        assert_close(
            &format!("winograd f64 {p:?}"),
            got.as_slice(),
            want.as_slice(),
            1e-12,
        );
    });
}

#[test]
fn winograd_matches_direct_f32() {
    check("winograd_matches_direct_f32", Config::with_cases(64), |g| {
        let p = arb_wino_problem(g);
        let (input, ker) = workload::<f32>(&p, g.u64());
        let want = conv2d_direct(&p, &input, &ker);
        let got = conv2d_winograd(&p, &input, &ker);
        assert_close(
            &format!("winograd f32 {p:?}"),
            &to_f64(got.as_slice()),
            &to_f64(want.as_slice()),
            5e-4,
        );
    });
}

#[test]
fn winograd_tile_accumulates_random_tc_splits() {
    check("winograd_tc_splits", Config::with_cases(48), |g| {
        // The c-innermost schedules accumulate partial-channel tile
        // contributions; Winograd tiles must compose the same way.
        let p = arb_wino_problem(g);
        let (input, ker) = workload::<f64>(&p, g.u64());
        let want = conv2d_direct(&p, &input, &ker);
        let mut out = Tensor4::zeros(out_shape(&p));
        let mut scratch = ConvScratch::new();
        let mut c0 = 0;
        while c0 < p.nc {
            let c1 = (c0 + g.usize_in(1, p.nc)).min(p.nc);
            let in_slice = input.slice(Range4::new([0, c0, 0, 0], [p.nb, c1, p.in_w(), p.in_h()]));
            let ker_slice = ker.slice(Range4::new([0, c0, 0, 0], [p.nk, c1, p.nr, p.ns]));
            conv_tile_winograd(&p, &mut out, &in_slice, &ker_slice, &mut scratch);
            c0 = c1;
        }
        assert_close(
            &format!("winograd tc-split {p:?}"),
            out.as_slice(),
            want.as_slice(),
            1e-12,
        );
    });
}

#[test]
fn winograd_on_output_subtiles_with_exact_halos() {
    check("winograd_subtiles", Config::with_cases(48), |g| {
        // Random output w/h sub-tiles with their exact halo windows —
        // the geometry the GVM executor and distributed forward hand
        // the tile kernel, including padding edges where the halo is
        // clipped to the problem boundary.
        let p = arb_wino_problem(g);
        let (input, ker) = workload::<f64>(&p, g.u64());
        let want = conv2d_direct(&p, &input, &ker);
        let (w0, h0) = (g.usize_in(0, p.nw - 1), g.usize_in(0, p.nh - 1));
        let (w1, h1) = (g.usize_in(w0 + 1, p.nw), g.usize_in(h0 + 1, p.nh));
        let out_rng = Range4::new([0, 0, w0, h0], [p.nb, p.nk, w1, h1]);
        let in_rng = distconv_tensor::conv_input_region(out_rng, 0, p.nc, p.sw, p.sh, p.nr, p.ns);
        let mut out_tile = Tensor4::zeros(out_rng.shape());
        conv_tile_winograd(
            &p,
            &mut out_tile,
            &input.slice(in_rng),
            &ker,
            &mut ConvScratch::new(),
        );
        let expect = want.slice(out_rng);
        assert_close(
            &format!("winograd subtile {out_rng:?} of {p:?}"),
            out_tile.as_slice(),
            expect.as_slice(),
            1e-12,
        );
    });
}

#[test]
fn non_winograd_shapes_fall_back_bitwise_to_fast() {
    check("winograd_fallback_bitwise", Config::with_cases(48), |g| {
        let p = arb_fallback_problem(g);
        let (input, ker) = workload::<f64>(&p, g.u64());
        let fast = conv2d_fast(&p, &input, &ker);
        let wino = conv2d_winograd(&p, &input, &ker);
        // Outside F(2×2, 3×3)'s domain the Winograd entry points ARE
        // the fast path — bitwise, not merely close.
        assert_eq!(fast.as_slice(), wino.as_slice(), "fallback {p:?}");
    });
}

#[test]
fn dispatch_selects_winograd() {
    // f32 on purpose: the deterministic workloads carry 21-bit
    // mantissas, so in f64 every kernel's arithmetic is *exact* on
    // small problems and all algorithms agree bitwise. In f32 the
    // products round, so a genuinely different bilinear algorithm must
    // leave a different rounding signature — which is how we verify
    // the dispatch really took the Winograd path.
    let p = Conv2dProblem::square(1, 3, 2, 6, 3);
    let (input, ker) = workload::<f32>(&p, 5);
    let via_dispatch = conv2d(&p, &input, &ker, LocalKernel::Winograd);
    let direct = conv2d_winograd(&p, &input, &ker);
    assert_eq!(via_dispatch.as_slice(), direct.as_slice());
    let fast = conv2d_fast(&p, &input, &ker);
    assert_ne!(
        via_dispatch.as_slice(),
        fast.as_slice(),
        "winograd unexpectedly bitwise-equal to fast — dispatch suspect"
    );
    assert_close(
        "winograd vs fast tolerance",
        &to_f64(via_dispatch.as_slice()),
        &to_f64(fast.as_slice()),
        5e-4,
    );
}

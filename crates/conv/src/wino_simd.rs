//! AVX2 fast paths for the Winograd `F(2×2, 3×3)` input/output
//! transforms (f32), dispatched through the same runtime switch as the
//! GEMM micro-kernel (`distconv_tensor::simd::active`, i.e. the
//! `DISTCONV_SIMD` knob).
//!
//! **Bitwise contract.** Like the micro-kernel, the vector transforms
//! are *bit-for-bit identical* to the scalar ones: vector lanes map to
//! distinct spatial tiles, every per-element expression tree matches
//! the scalar code's association order, and no FMA contraction is used
//! — the transforms contain only additions/subtractions, so there is
//! nothing to contract. Lane shuffles (the stride-2 deinterleave on
//! load, the 2×2-pair interleave on store) are pure data movement.
//!
//! Only the f32 interior-tile paths are vectorized: f64 transforms
//! stay scalar (the pointwise GEMMs, where most f64 time goes, are
//! already vectorized in the micro-kernel), and clipped boundary tiles
//! always take the scalar gather. Each entry point returns how many
//! tiles it handled; the caller finishes the rest on the scalar path.

use distconv_tensor::Scalar;
use std::any::TypeId;

/// Vectorized slice of [`crate::winograd`]'s input transform: tiles
/// `ty ∈ 0..done` of one `(c, tx)` row quad, where tile `ty` reads
/// `rows[ax][2·ty + ay]` and writes
/// `v[(ax·4 + ay)·xi_stride + base + ty]`. Returns `done` (0 when the
/// AVX2 path is unavailable or `T` is not f32); the caller must
/// process tiles `done..n_tiles` itself.
pub(crate) fn input_rows<T: Scalar>(
    rows: &[&[T]; 4],
    n_tiles: usize,
    v: &mut [T],
    xi_stride: usize,
    base: usize,
) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if distconv_tensor::simd::active() == distconv_tensor::simd::SimdPath::Avx2
            && TypeId::of::<T>() == TypeId::of::<f32>()
        {
            // Sound: T == f32 (checked above), and &[T] / &[f32] have
            // identical layout for the same T.
            let rows32 = unsafe { &*(rows as *const [&[T]; 4] as *const [&[f32]; 4]) };
            let v32 = unsafe { &mut *(v as *mut [T] as *mut [f32]) };
            return x86::input_rows_f32(rows32, n_tiles, v32, xi_stride, base);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (rows, n_tiles, v, xi_stride, base);
    0
}

/// Vectorized slice of the output transform for one `(k, tx)` pair:
/// tile `ty ∈ 0..done` reads `m[(ax·4 + ay)·xi_stride + mbase + ty]`
/// and accumulates its 2×2 result at `out[base0 + 2·ty ..]` (first
/// output row) and `out[base1 + 2·ty ..]` (second row). Returns `done`
/// as in [`input_rows`].
pub(crate) fn output_rows<T: Scalar>(
    m: &[T],
    xi_stride: usize,
    mbase: usize,
    n_tiles: usize,
    out: &mut [T],
    base0: usize,
    base1: usize,
) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if distconv_tensor::simd::active() == distconv_tensor::simd::SimdPath::Avx2
            && TypeId::of::<T>() == TypeId::of::<f32>()
        {
            let m32 = unsafe { &*(m as *const [T] as *const [f32]) };
            let out32 = unsafe { &mut *(out as *mut [T] as *mut [f32]) };
            return x86::output_rows_f32(m32, xi_stride, mbase, n_tiles, out32, base0, base1);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (m, xi_stride, mbase, n_tiles, out, base0, base1);
    0
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// f32 lanes per vector: one AVX2 register covers 8 spatial tiles.
    const LANES: usize = 8;

    /// Safe wrapper: checks every bound the unsafe kernel relies on,
    /// then processes `n_tiles / 8` full vector blocks.
    pub(super) fn input_rows_f32(
        rows: &[&[f32]; 4],
        n_tiles: usize,
        v: &mut [f32],
        xi_stride: usize,
        base: usize,
    ) -> usize {
        let blocks = n_tiles / LANES;
        if blocks == 0 {
            return 0;
        }
        let done = blocks * LANES;
        for r in rows {
            // Block ty0 loads rows[ax][2·ty0 .. 2·ty0 + 18]; the last
            // block starts at done - 8.
            assert!(r.len() >= 2 * (done - LANES) + 18, "input row too short");
        }
        assert!(v.len() >= 15 * xi_stride + base + done, "v panel too short");
        // SAFETY: avx2 is dynamically detected (simd::active() ==
        // Avx2 implies the CPUID check passed); all accesses are
        // bounds-checked above.
        unsafe { input_blocks(rows, blocks, v, xi_stride, base) };
        done
    }

    /// Deinterleave 16 consecutive f32 at `p` into (evens, odds):
    /// `(p[0],p[2],…,p[14])` and `(p[1],p[3],…,p[15])`. Pure data
    /// movement — no arithmetic.
    #[inline]
    unsafe fn deinterleave(p: *const f32) -> (__m256, __m256) {
        let a = _mm256_loadu_ps(p);
        let b = _mm256_loadu_ps(p.add(8));
        // Within each 128-bit lane: [a0 a2 b0 b2 | a4 a6 b4 b6], then
        // reorder 64-bit chunks (0,2,1,3) to restore tile order.
        let ev = _mm256_shuffle_ps(a, b, 0b10_00_10_00);
        let od = _mm256_shuffle_ps(a, b, 0b11_01_11_01);
        let ev = _mm256_castpd_ps(_mm256_permute4x64_pd(_mm256_castps_pd(ev), 0b11_01_10_00));
        let od = _mm256_castpd_ps(_mm256_permute4x64_pd(_mm256_castps_pd(od), 0b11_01_10_00));
        (ev, od)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn input_blocks(
        rows: &[&[f32]; 4],
        blocks: usize,
        v: &mut [f32],
        xi_stride: usize,
        base: usize,
    ) {
        let vp = v.as_mut_ptr();
        for blk in 0..blocks {
            let y0 = 2 * LANES * blk;
            // d[ax][ay], each a vector over 8 tiles: tile i's element
            // is rows[ax][y0 + 2i + ay]. ay ∈ {0,1} are the evens/odds
            // of rows[ax][y0..], ay ∈ {2,3} the same shifted by 2.
            let mut d = [[_mm256_setzero_ps(); 4]; 4];
            for (ax, r) in rows.iter().enumerate() {
                let p = r.as_ptr().add(y0);
                let (e0, o0) = deinterleave(p);
                let (e2, o2) = deinterleave(p.add(2));
                d[ax] = [e0, o0, e2, o2];
            }
            // z = Bᵀ·d over the x axis — same expressions, same order
            // as the scalar bt_d_b.
            let mut z = [[_mm256_setzero_ps(); 4]; 4];
            for ay in 0..4 {
                z[0][ay] = _mm256_sub_ps(d[0][ay], d[2][ay]);
                z[1][ay] = _mm256_add_ps(d[1][ay], d[2][ay]);
                z[2][ay] = _mm256_sub_ps(d[2][ay], d[1][ay]);
                z[3][ay] = _mm256_sub_ps(d[1][ay], d[3][ay]);
            }
            // w = z·B over the y axis (scalar apply_b_cols), stored
            // contiguously into each ξ panel.
            let t = base + LANES * blk;
            for (ax, zr) in z.iter().enumerate() {
                let w = [
                    _mm256_sub_ps(zr[0], zr[2]),
                    _mm256_add_ps(zr[1], zr[2]),
                    _mm256_sub_ps(zr[2], zr[1]),
                    _mm256_sub_ps(zr[1], zr[3]),
                ];
                for (ay, &wv) in w.iter().enumerate() {
                    _mm256_storeu_ps(vp.add((ax * 4 + ay) * xi_stride + t), wv);
                }
            }
        }
    }

    /// Safe wrapper for the output-transform blocks; same
    /// check-then-dispatch shape as [`input_rows_f32`].
    pub(super) fn output_rows_f32(
        m: &[f32],
        xi_stride: usize,
        mbase: usize,
        n_tiles: usize,
        out: &mut [f32],
        base0: usize,
        base1: usize,
    ) -> usize {
        let blocks = n_tiles / LANES;
        if blocks == 0 {
            return 0;
        }
        let done = blocks * LANES;
        assert!(
            m.len() >= 15 * xi_stride + mbase + done,
            "m panel too short"
        );
        assert!(
            out.len() >= base0 + 2 * done && out.len() >= base1 + 2 * done,
            "output rows too short"
        );
        // SAFETY: as in input_rows_f32.
        unsafe { output_blocks(m, xi_stride, mbase, blocks, out, base0, base1) };
        done
    }

    /// Interleave two tile vectors into the 16 consecutive output
    /// elements `(y0[0], y1[0], y0[1], y1[1], …)` and accumulate them
    /// onto `p[0..16]`.
    #[inline]
    unsafe fn interleave_acc(p: *mut f32, y0: __m256, y1: __m256) {
        let lo = _mm256_unpacklo_ps(y0, y1);
        let hi = _mm256_unpackhi_ps(y0, y1);
        let first = _mm256_permute2f128_ps(lo, hi, 0x20);
        let second = _mm256_permute2f128_ps(lo, hi, 0x31);
        _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), first));
        _mm256_storeu_ps(p.add(8), _mm256_add_ps(_mm256_loadu_ps(p.add(8)), second));
    }

    #[target_feature(enable = "avx2")]
    unsafe fn output_blocks(
        m: &[f32],
        xi_stride: usize,
        mbase: usize,
        blocks: usize,
        out: &mut [f32],
        base0: usize,
        base1: usize,
    ) {
        let mp = m.as_ptr();
        let op = out.as_mut_ptr();
        for blk in 0..blocks {
            let t = mbase + LANES * blk;
            let mv = |ax: usize, ay: usize| _mm256_loadu_ps(mp.add((ax * 4 + ay) * xi_stride + t));
            // a = Aᵀ·M over x — matches the scalar column expressions.
            let mut a = [[_mm256_setzero_ps(); 4]; 2];
            #[allow(clippy::needless_range_loop)]
            for ay in 0..4 {
                a[0][ay] = _mm256_add_ps(_mm256_add_ps(mv(0, ay), mv(1, ay)), mv(2, ay));
                a[1][ay] = _mm256_sub_ps(_mm256_sub_ps(mv(1, ay), mv(2, ay)), mv(3, ay));
            }
            // y = a·A over y, then scatter each row's 2-wide pairs.
            let h = 2 * LANES * blk;
            for (i, ar) in a.iter().enumerate() {
                let y0 = _mm256_add_ps(_mm256_add_ps(ar[0], ar[1]), ar[2]);
                let y1 = _mm256_sub_ps(_mm256_sub_ps(ar[1], ar[2]), ar[3]);
                let b = if i == 0 { base0 } else { base1 };
                interleave_acc(op.add(b + h), y0, y1);
            }
        }
    }
}

//! The global-virtual-memory executor (paper Sec. 2.1).
//!
//! The machine model: `P` processors, each with a private local memory
//! of capacity `M`, sharing a *virtual global memory* that holds the
//! three tensors. A processor executes its work partition as a sequence
//! of tiles, copying tile footprints global→local before computing and
//! local→global after (Listing 3). This module executes that schedule
//! **literally** — real buffers, real copies — and counts every element
//! moved, so the analytical cost model can be validated against an
//! execution rather than against itself (experiment E3):
//!
//! * `c`-innermost schedule, stride 1: measured traffic `==` Eq. 3
//!   **exactly** (integer equality, asserted in tests).
//! * stride > 1: measured `≤` Eq. 3 (the model's `σT+N−1` halo form
//!   over-approximates the exact `σ(T−1)+N` window).
//! * `k`/`bhw`-innermost schedules: measured traffic tracks the
//!   generalized simplified objectives of `distconv-cost::simplified`.

use crate::fast::{conv_tile_fast, ConvScratch};
use crate::kernels::{self, conv_tile};
use distconv_cost::simplified::InnerLoop;
use distconv_cost::{Conv2dProblem, Partition, Tiling};
use distconv_par::LocalKernel;
use distconv_tensor::{conv_input_region, Range4, Scalar, Tensor4};

/// Traffic and memory measurements for one work partition's execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GvmMeasurement {
    /// Elements copied global→local for `In` tiles.
    pub loads_in: u128,
    /// Elements copied global→local for `Ker` tiles.
    pub loads_ker: u128,
    /// Elements copied global→local for `Out` tiles (revisits only —
    /// first visits start from zeros).
    pub loads_out: u128,
    /// Elements copied local→global for `Out` tiles.
    pub stores_out: u128,
    /// Peak concurrent local-memory use (elements).
    pub peak_local: u128,
}

impl GvmMeasurement {
    /// Total global↔local traffic (the quantity Eq. 1/3 model).
    pub fn total_traffic(&self) -> u128 {
        self.loads_in + self.loads_ker + self.loads_out + self.stores_out
    }

    fn add(&mut self, other: &GvmMeasurement) {
        self.loads_in += other.loads_in;
        self.loads_ker += other.loads_ker;
        self.loads_out += other.loads_out;
        self.stores_out += other.stores_out;
        self.peak_local = self.peak_local.max(other.peak_local);
    }
}

/// Error conditions of the GVM executor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GvmError {
    /// A tile's buffer set exceeds the local-memory capacity `M`.
    TileExceedsMemory {
        /// Elements the tile set needs.
        needed: u128,
        /// The configured capacity.
        capacity: u128,
    },
    /// Tile sizes do not divide the work partition.
    IndivisibleTiling,
}

impl std::fmt::Display for GvmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GvmError::TileExceedsMemory { needed, capacity } => {
                write!(f, "tile footprint {needed} exceeds local memory {capacity}")
            }
            GvmError::IndivisibleTiling => write!(f, "tile sizes must divide partition sizes"),
        }
    }
}

impl std::error::Error for GvmError {}

/// Simple single-threaded live/peak memory meter for the executor's
/// local buffers.
#[derive(Debug, Default)]
struct LocalMem {
    live: u128,
    peak: u128,
    capacity: Option<u128>,
}

impl LocalMem {
    fn acquire(&mut self, elems: u128) -> Result<(), GvmError> {
        self.live += elems;
        if let Some(cap) = self.capacity {
            if self.live > cap {
                return Err(GvmError::TileExceedsMemory {
                    needed: self.live,
                    capacity: cap,
                });
            }
        }
        self.peak = self.peak.max(self.live);
        Ok(())
    }

    fn release(&mut self, elems: u128) {
        debug_assert!(self.live >= elems);
        self.live -= elems;
    }
}

/// Executor for one processor's work partition under the GVM model.
#[derive(Clone, Copy, Debug)]
pub struct GvmExecutor {
    /// The layer.
    pub problem: Conv2dProblem,
    /// Work-partition sizes `W_i`.
    pub w: Partition,
    /// Tile sizes `T_i`.
    pub t: Tiling,
    /// Which tile loop is innermost (Listing 3 is `InnerLoop::C`).
    pub schedule: InnerLoop,
    /// Local-memory capacity `M` (elements; `None` = unmetered).
    pub capacity: Option<u128>,
    /// Local compute kernel the tile steps dispatch to. Traffic
    /// counters and schedules are kernel-independent (they derive from
    /// tile ranges alone); with the fast kernel even the numerics are
    /// bitwise identical.
    pub kernel: LocalKernel,
}

impl GvmExecutor {
    /// Build an executor; tiles must divide the partition. The local
    /// kernel defaults to [`LocalKernel::from_env`]; override with
    /// [`GvmExecutor::with_kernel`].
    pub fn new(
        problem: Conv2dProblem,
        w: Partition,
        t: Tiling,
        schedule: InnerLoop,
        capacity: Option<u128>,
    ) -> Result<Self, GvmError> {
        let wa = w.as_array();
        let ta = t.as_array();
        if !wa.iter().zip(ta.iter()).all(|(&wi, &ti)| wi % ti == 0) {
            return Err(GvmError::IndivisibleTiling);
        }
        Ok(GvmExecutor {
            problem,
            w,
            t,
            schedule,
            capacity,
            kernel: LocalKernel::from_env(),
        })
    }

    /// Same executor with an explicit local-kernel selection.
    pub fn with_kernel(mut self, kernel: LocalKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Execute the work partition whose grid coordinates are
    /// `part = [ib, ik, ic, ih, iw]`, accumulating into the shared
    /// `Out` (virtual global memory) and counting all traffic.
    pub fn run_partition<T: Scalar>(
        &self,
        part: [usize; 5],
        input: &Tensor4<T>,
        ker: &Tensor4<T>,
        out: &mut Tensor4<T>,
    ) -> Result<GvmMeasurement, GvmError> {
        let p = &self.problem;
        let (w, t) = (self.w, self.t);
        // Partition origin in each dimension.
        let ob = part[0] * w.wb;
        let ok = part[1] * w.wk;
        let oc = part[2] * w.wc;
        let oh = part[3] * w.wh;
        let ow = part[4] * w.ww;
        let mut meas = GvmMeasurement::default();
        let mut mem = LocalMem {
            capacity: self.capacity,
            ..LocalMem::default()
        };
        // One scratch arena for every tile of the partition: the fast
        // kernel's packing buffers grow to the high-water mark once and
        // are reused across all tile steps.
        let mut scratch = ConvScratch::<T>::new();

        // Tile-step counts.
        let (sb, sk, sc, sh, sw) = (
            w.wb / t.tb,
            w.wk / t.tk,
            w.wc / t.tc,
            w.wh / t.th,
            w.ww / t.tw,
        );

        // A tile step is identified by (jb, jk, jc, jh, jw); the three
        // schedules only differ in loop nesting / residency.
        match self.schedule {
            InnerLoop::C => {
                for jk in 0..sk {
                    for jb in 0..sb {
                        for jw in 0..sw {
                            for jh in 0..sh {
                                let out_rng = self.out_tile_range(part, [jb, jk, jh, jw]);
                                let mut out_tile = Tensor4::<T>::zeros(out_rng.shape());
                                mem.acquire(out_rng.len() as u128)?;
                                for jc in 0..sc {
                                    let c_lo = oc + jc * t.tc;
                                    self.load_and_compute(
                                        out_rng,
                                        c_lo,
                                        input,
                                        ker,
                                        &mut out_tile,
                                        &mut meas,
                                        &mut mem,
                                        &mut scratch,
                                    )?;
                                }
                                out.add_unpack_range(out_rng, out_tile.as_slice());
                                meas.stores_out += out_rng.len() as u128;
                                mem.release(out_rng.len() as u128);
                            }
                        }
                    }
                }
            }
            InnerLoop::K => {
                for jb in 0..sb {
                    for jw in 0..sw {
                        for jh in 0..sh {
                            for jc in 0..sc {
                                let c_lo = oc + jc * t.tc;
                                // In tile resident across the k loop.
                                let probe = self.out_tile_range(part, [jb, 0, jh, jw]);
                                let in_rng = conv_input_region(
                                    probe,
                                    c_lo,
                                    c_lo + t.tc,
                                    p.sw,
                                    p.sh,
                                    p.nr,
                                    p.ns,
                                );
                                let in_tile = input.slice(in_rng);
                                mem.acquire(in_rng.len() as u128)?;
                                meas.loads_in += in_rng.len() as u128;
                                for jk in 0..sk {
                                    let out_rng = self.out_tile_range(part, [jb, jk, jh, jw]);
                                    self.ker_out_step(
                                        out_rng,
                                        c_lo,
                                        jc,
                                        &in_tile,
                                        in_rng,
                                        ker,
                                        out,
                                        &mut meas,
                                        &mut mem,
                                        &mut scratch,
                                    )?;
                                }
                                mem.release(in_rng.len() as u128);
                            }
                        }
                    }
                }
            }
            InnerLoop::Bhw => {
                for jk in 0..sk {
                    for jc in 0..sc {
                        let c_lo = oc + jc * t.tc;
                        let k_lo = ok + jk * t.tk;
                        // Ker tile resident across the bhw loops.
                        let ker_rng =
                            Range4::new([k_lo, c_lo, 0, 0], [k_lo + t.tk, c_lo + t.tc, p.nr, p.ns]);
                        let ker_tile = ker.slice(ker_rng);
                        mem.acquire(ker_rng.len() as u128)?;
                        meas.loads_ker += ker_rng.len() as u128;
                        for jb in 0..sb {
                            for jw in 0..sw {
                                for jh in 0..sh {
                                    let out_rng = self.out_tile_range(part, [jb, jk, jh, jw]);
                                    self.in_out_step(
                                        out_rng,
                                        c_lo,
                                        jc,
                                        &ker_tile,
                                        input,
                                        out,
                                        &mut meas,
                                        &mut mem,
                                        &mut scratch,
                                    )?;
                                }
                            }
                        }
                        mem.release(ker_rng.len() as u128);
                    }
                }
            }
        }
        let _ = (ob, oh, ow); // origins folded into out_tile_range
        meas.peak_local = mem.peak;
        Ok(meas)
    }

    /// Global range of the output tile at step `[jb, jk, jh, jw]` of
    /// partition `part`.
    fn out_tile_range(&self, part: [usize; 5], j: [usize; 4]) -> Range4 {
        let (w, t) = (self.w, self.t);
        let b_lo = part[0] * w.wb + j[0] * t.tb;
        let k_lo = part[1] * w.wk + j[1] * t.tk;
        let h_lo = part[3] * w.wh + j[2] * t.th;
        let w_lo = part[4] * w.ww + j[3] * t.tw;
        Range4::new(
            [b_lo, k_lo, w_lo, h_lo],
            [b_lo + t.tb, k_lo + t.tk, w_lo + t.tw, h_lo + t.th],
        )
    }

    /// Dispatch one tile computation to the selected local kernel.
    fn compute_tile<T: Scalar>(
        &self,
        out_tile: &mut Tensor4<T>,
        in_tile: &Tensor4<T>,
        ker_tile: &Tensor4<T>,
        scratch: &mut ConvScratch<T>,
    ) {
        let p = &self.problem;
        match self.kernel {
            LocalKernel::Reference => conv_tile(p, out_tile, in_tile, ker_tile),
            LocalKernel::Fast => conv_tile_fast(p, out_tile, in_tile, ker_tile, scratch),
            LocalKernel::Winograd => {
                crate::winograd::conv_tile_winograd(p, out_tile, in_tile, ker_tile, scratch)
            }
        }
    }

    /// One `c`-innermost inner step: load In + Ker tiles, compute into
    /// the resident out tile.
    #[allow(clippy::too_many_arguments)]
    fn load_and_compute<T: Scalar>(
        &self,
        out_rng: Range4,
        c_lo: usize,
        input: &Tensor4<T>,
        ker: &Tensor4<T>,
        out_tile: &mut Tensor4<T>,
        meas: &mut GvmMeasurement,
        mem: &mut LocalMem,
        scratch: &mut ConvScratch<T>,
    ) -> Result<(), GvmError> {
        let p = &self.problem;
        let t = self.t;
        let in_rng = conv_input_region(out_rng, c_lo, c_lo + t.tc, p.sw, p.sh, p.nr, p.ns);
        let in_tile = input.slice(in_rng);
        mem.acquire(in_rng.len() as u128)?;
        meas.loads_in += in_rng.len() as u128;
        let k_lo = out_rng.lo[1];
        let ker_rng = Range4::new([k_lo, c_lo, 0, 0], [k_lo + t.tk, c_lo + t.tc, p.nr, p.ns]);
        let ker_tile = ker.slice(ker_rng);
        mem.acquire(ker_rng.len() as u128)?;
        meas.loads_ker += ker_rng.len() as u128;
        self.compute_tile(out_tile, &in_tile, &ker_tile, scratch);
        mem.release(in_rng.len() as u128);
        mem.release(ker_rng.len() as u128);
        Ok(())
    }

    /// One `k`-innermost inner step: load Ker + Out tiles (Out zeroed on
    /// the first c step), compute, store Out.
    #[allow(clippy::too_many_arguments)]
    fn ker_out_step<T: Scalar>(
        &self,
        out_rng: Range4,
        c_lo: usize,
        jc: usize,
        in_tile: &Tensor4<T>,
        in_rng: Range4,
        ker: &Tensor4<T>,
        out: &mut Tensor4<T>,
        meas: &mut GvmMeasurement,
        mem: &mut LocalMem,
        scratch: &mut ConvScratch<T>,
    ) -> Result<(), GvmError> {
        let p = &self.problem;
        let t = self.t;
        let k_lo = out_rng.lo[1];
        let ker_rng = Range4::new([k_lo, c_lo, 0, 0], [k_lo + t.tk, c_lo + t.tc, p.nr, p.ns]);
        let ker_tile = ker.slice(ker_rng);
        mem.acquire(ker_rng.len() as u128)?;
        meas.loads_ker += ker_rng.len() as u128;

        mem.acquire(out_rng.len() as u128)?;
        let mut out_tile = if jc == 0 {
            Tensor4::<T>::zeros(out_rng.shape())
        } else {
            meas.loads_out += out_rng.len() as u128;
            out.slice(out_rng)
        };
        // The resident In tile covers exactly this tile's window: its
        // local origin equals in_rng.lo.
        let _ = in_rng;
        self.compute_tile(&mut out_tile, in_tile, &ker_tile, scratch);
        out.unpack_range(out_rng, out_tile.as_slice());
        meas.stores_out += out_rng.len() as u128;
        mem.release(out_rng.len() as u128);
        mem.release(ker_rng.len() as u128);
        Ok(())
    }

    /// One `bhw`-innermost inner step: load In + Out tiles, compute,
    /// store Out.
    #[allow(clippy::too_many_arguments)]
    fn in_out_step<T: Scalar>(
        &self,
        out_rng: Range4,
        c_lo: usize,
        jc: usize,
        ker_tile: &Tensor4<T>,
        input: &Tensor4<T>,
        out: &mut Tensor4<T>,
        meas: &mut GvmMeasurement,
        mem: &mut LocalMem,
        scratch: &mut ConvScratch<T>,
    ) -> Result<(), GvmError> {
        let p = &self.problem;
        let t = self.t;
        let in_rng = conv_input_region(out_rng, c_lo, c_lo + t.tc, p.sw, p.sh, p.nr, p.ns);
        let in_tile = input.slice(in_rng);
        mem.acquire(in_rng.len() as u128)?;
        meas.loads_in += in_rng.len() as u128;
        mem.acquire(out_rng.len() as u128)?;
        let mut out_tile = if jc == 0 {
            Tensor4::<T>::zeros(out_rng.shape())
        } else {
            meas.loads_out += out_rng.len() as u128;
            out.slice(out_rng)
        };
        self.compute_tile(&mut out_tile, &in_tile, ker_tile, scratch);
        out.unpack_range(out_rng, out_tile.as_slice());
        meas.stores_out += out_rng.len() as u128;
        mem.release(out_rng.len() as u128);
        mem.release(in_rng.len() as u128);
        Ok(())
    }

    /// Execute **all** `P` work partitions sequentially against one
    /// shared virtual global memory: returns the full `Out` and the
    /// per-partition measurements. Used to validate both correctness
    /// (against `conv2d_direct`) and Eq. 3 (per partition).
    pub fn execute_all<T: Scalar>(
        &self,
        input: &Tensor4<T>,
        ker: &Tensor4<T>,
    ) -> Result<(Tensor4<T>, Vec<GvmMeasurement>), GvmError> {
        let p = &self.problem;
        let grid = self.w.grid(p);
        let mut out = Tensor4::zeros(kernels::out_shape(p));
        let mut all = Vec::new();
        for ib in 0..grid[0] {
            for ik in 0..grid[1] {
                for ic in 0..grid[2] {
                    for ih in 0..grid[3] {
                        for iw in 0..grid[4] {
                            let m =
                                self.run_partition([ib, ik, ic, ih, iw], input, ker, &mut out)?;
                            all.push(m);
                        }
                    }
                }
            }
        }
        Ok((out, all))
    }

    /// Aggregate of [`GvmExecutor::execute_all`] measurements.
    pub fn aggregate(measurements: &[GvmMeasurement]) -> GvmMeasurement {
        let mut total = GvmMeasurement::default();
        for m in measurements {
            total.add(m);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{conv2d_direct, workload};
    use distconv_cost::exact::{eq3_cost_int, eq3_footprint_g};
    use distconv_tensor::assert_close;

    fn toy() -> Conv2dProblem {
        Conv2dProblem::square(2, 4, 4, 4, 3)
    }

    #[test]
    fn gvm_c_innermost_correct_and_exact() {
        let p = toy();
        let (input, ker) = workload::<f64>(&p, 3);
        let reference = conv2d_direct(&p, &input, &ker);
        // 4 partitions along k and c; tiles strictly smaller than W.
        let w = Partition::new(2, 2, 2, 4, 4);
        let t = Tiling::new(1, 2, 1, 2, 2);
        let ex = GvmExecutor::new(p, w, t, InnerLoop::C, None).unwrap();
        let (out, meas) = ex.execute_all(&input, &ker).unwrap();
        assert_close(out.as_slice(), reference.as_slice(), 1e-12, "gvm-c");
        // Per-partition traffic equals Eq. 3 exactly (σ = 1).
        let model = eq3_cost_int(&p, &w, &t).unwrap();
        for (i, m) in meas.iter().enumerate() {
            assert_eq!(m.total_traffic(), model, "partition {i}");
            assert_eq!(m.loads_out, 0, "c-innermost never reloads Out");
        }
    }

    #[test]
    fn gvm_peak_memory_matches_footprint_g() {
        let p = toy();
        let (input, ker) = workload::<f32>(&p, 5);
        let w = Partition::new(2, 4, 4, 4, 4);
        let t = Tiling::new(1, 2, 1, 2, 2);
        let ex = GvmExecutor::new(p, w, t, InnerLoop::C, None).unwrap();
        let (_, meas) = ex.execute_all(&input, &ker).unwrap();
        let g = eq3_footprint_g(&p, &t);
        for m in &meas {
            assert!(
                m.peak_local <= g,
                "peak {} must be within modeled footprint {g} (σ=1 ⇒ equal halos)",
                m.peak_local
            );
        }
    }

    #[test]
    fn gvm_capacity_enforced() {
        let p = toy();
        let (input, ker) = workload::<f32>(&p, 5);
        let w = Partition::new(2, 4, 4, 4, 4);
        let t = Tiling::new(2, 4, 2, 4, 4);
        let g = eq3_footprint_g(&p, &t);
        let ex = GvmExecutor::new(p, w, t, InnerLoop::C, Some(g / 2)).unwrap();
        let err = ex.execute_all(&input, &ker).unwrap_err();
        assert!(matches!(err, GvmError::TileExceedsMemory { .. }));
    }

    #[test]
    fn gvm_k_innermost_correct() {
        let p = toy();
        let (input, ker) = workload::<f64>(&p, 7);
        let reference = conv2d_direct(&p, &input, &ker);
        let w = Partition::new(2, 4, 4, 4, 4);
        let t = Tiling::new(1, 2, 2, 2, 2);
        let ex = GvmExecutor::new(p, w, t, InnerLoop::K, None).unwrap();
        let (out, meas) = ex.execute_all(&input, &ker).unwrap();
        assert_close(out.as_slice(), reference.as_slice(), 1e-12, "gvm-k");
        // In loaded once per (bhw, c) step: (2·2·2)·2 steps · TbTc(Tw+2)(Th+2).
        let total = GvmExecutor::aggregate(&meas);
        assert_eq!(total.loads_in, 8 * 2 * (2 * 4 * 4) as u128);
        // Out revisited on second c step: loads_out = stores for jc=1.
        assert!(total.loads_out > 0);
    }

    #[test]
    fn gvm_bhw_innermost_correct() {
        let p = toy();
        let (input, ker) = workload::<f64>(&p, 9);
        let reference = conv2d_direct(&p, &input, &ker);
        let w = Partition::new(2, 4, 4, 4, 4);
        let t = Tiling::new(1, 2, 2, 2, 2);
        let ex = GvmExecutor::new(p, w, t, InnerLoop::Bhw, None).unwrap();
        let (out, meas) = ex.execute_all(&input, &ker).unwrap();
        assert_close(out.as_slice(), reference.as_slice(), 1e-12, "gvm-bhw");
        // Ker loaded once per (k, c) step: 2·2 steps of TkTcNrNs = 4·9.
        let total = GvmExecutor::aggregate(&meas);
        assert_eq!(total.loads_ker, 4 * (2 * 2 * 9) as u128);
    }

    #[test]
    fn gvm_strided_measured_at_most_model() {
        let p = Conv2dProblem::new(2, 4, 4, 4, 4, 3, 3, 2, 2);
        let (input, ker) = workload::<f64>(&p, 11);
        let w = Partition::new(2, 4, 4, 4, 4);
        let t = Tiling::new(1, 2, 1, 2, 2);
        let ex = GvmExecutor::new(p, w, t, InnerLoop::C, None).unwrap();
        let (out, meas) = ex.execute_all(&input, &ker).unwrap();
        let reference = conv2d_direct(&p, &input, &ker);
        assert_close(out.as_slice(), reference.as_slice(), 1e-12, "gvm-strided");
        let model = eq3_cost_int(&p, &w, &t).unwrap();
        let m = &meas[0];
        assert!(
            m.total_traffic() <= model,
            "measured {} must be ≤ paper-form model {model} for σ > 1",
            m.total_traffic()
        );
    }

    #[test]
    fn indivisible_tiling_rejected() {
        let p = toy();
        let w = Partition::new(2, 4, 4, 4, 4);
        let t = Tiling::new(2, 3, 1, 2, 2); // 3 does not divide 4
        assert_eq!(
            GvmExecutor::new(p, w, t, InnerLoop::C, None).unwrap_err(),
            GvmError::IndivisibleTiling
        );
    }

    #[test]
    fn kernel_switch_is_invisible() {
        // Same schedule under both local kernels: bitwise-identical
        // output AND identical traffic measurements, for every
        // schedule, including a strided layer.
        for p in [toy(), Conv2dProblem::new(2, 4, 4, 4, 4, 3, 3, 2, 2)] {
            let (input, ker) = workload::<f64>(&p, 17);
            let w = Partition::new(2, 4, 4, 4, 4);
            let t = Tiling::new(1, 2, 2, 2, 2);
            for sched in [InnerLoop::C, InnerLoop::K, InnerLoop::Bhw] {
                let base = GvmExecutor::new(p, w, t, sched, None).unwrap();
                let (out_ref, meas_ref) = base
                    .with_kernel(LocalKernel::Reference)
                    .execute_all(&input, &ker)
                    .unwrap();
                let (out_fast, meas_fast) = base
                    .with_kernel(LocalKernel::Fast)
                    .execute_all(&input, &ker)
                    .unwrap();
                assert_eq!(out_ref.as_slice(), out_fast.as_slice(), "{sched:?} {p:?}");
                assert_eq!(meas_ref, meas_fast, "{sched:?} traffic must not change");
            }
        }
    }

    #[test]
    fn single_tile_partition_minimal_traffic() {
        // T = W = N, P = 1: one tile; traffic = |In| + |Ker| + |Out|.
        let p = toy();
        let (input, ker) = workload::<f64>(&p, 13);
        let w = Partition::new(2, 4, 4, 4, 4);
        let t = Tiling::new(2, 4, 4, 4, 4);
        let ex = GvmExecutor::new(p, w, t, InnerLoop::C, None).unwrap();
        let (_, meas) = ex.execute_all(&input, &ker).unwrap();
        let m = &meas[0];
        assert_eq!(m.loads_in, p.size_in());
        assert_eq!(m.loads_ker, p.size_ker());
        assert_eq!(m.stores_out, p.size_out());
    }
}

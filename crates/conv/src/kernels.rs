//! Convolution compute kernels: references, the thread-parallel local
//! kernel, and the shared tile micro-kernel.

use distconv_cost::Conv2dProblem;
use distconv_par::pool;
use distconv_tensor::{Scalar, Shape4, Tensor4};

/// Shape of the `In` tensor for `p` (exact halo form).
pub fn in_shape(p: &Conv2dProblem) -> Shape4 {
    Shape4::new(p.nb, p.nc, p.in_w(), p.in_h())
}

/// Shape of the `Ker` tensor for `p`.
pub fn ker_shape(p: &Conv2dProblem) -> Shape4 {
    Shape4::new(p.nk, p.nc, p.nr, p.ns)
}

/// Shape of the `Out` tensor for `p`.
pub fn out_shape(p: &Conv2dProblem) -> Shape4 {
    Shape4::new(p.nb, p.nk, p.nw, p.nh)
}

/// Deterministic workload: `(In, Ker)` tensors whose elements are pure
/// functions of `(seed, coordinates)` — reproducible across crates and
/// shardable via [`Tensor4::random_window`].
pub fn workload<T: Scalar>(p: &Conv2dProblem, seed: u64) -> (Tensor4<T>, Tensor4<T>) {
    (
        Tensor4::random(in_shape(p), seed),
        Tensor4::random(ker_shape(p), seed ^ 0xABCD_EF01_2345_6789),
    )
}

/// The paper's Listing 1, verbatim seven-loop reference. `O(N⁷)`,
/// single-threaded — the ground truth everything else is validated
/// against.
pub fn conv2d_direct<T: Scalar>(
    p: &Conv2dProblem,
    input: &Tensor4<T>,
    ker: &Tensor4<T>,
) -> Tensor4<T> {
    assert_eq!(input.shape(), in_shape(p), "In shape mismatch");
    assert_eq!(ker.shape(), ker_shape(p), "Ker shape mismatch");
    let mut out = Tensor4::zeros(out_shape(p));
    for b in 0..p.nb {
        for k in 0..p.nk {
            for w in 0..p.nw {
                for h in 0..p.nh {
                    let mut acc = T::zero();
                    for c in 0..p.nc {
                        for r in 0..p.nr {
                            for s in 0..p.ns {
                                acc +=
                                    input[[b, c, p.sw * w + r, p.sh * h + s]] * ker[[k, c, r, s]];
                            }
                        }
                    }
                    out[[b, k, w, h]] = acc;
                }
            }
        }
    }
    out
}

/// Below this many multiply-adds, [`conv2d_direct_par`] delegates to
/// [`conv2d_direct`] outright: spawn/join overhead exceeds the whole
/// convolution, and even inline the hoisted per-chunk closure measures
/// ~2× slower than the plain seven-loop nest on small layers (the
/// repeated `plane`/`row` slicing dominates the 3×3 stencil work).
/// Both bodies accumulate each element in the same `(c, r, s)` order,
/// so the cutoff cannot change results.
pub const PAR_MADD_CUTOFF: usize = 2_000_000;

/// Thread-parallel direct convolution (parallel over `(b, k)` pairs —
/// independent output planes, so the parallelization is race-free by
/// construction). Produces bitwise-identical results to
/// [`conv2d_direct`]: each output element is an independent sum in the
/// same order. Problems under [`PAR_MADD_CUTOFF`] multiply-adds run
/// serially; larger ones use the shared thread budget
/// (`distconv_par::pool`).
pub fn conv2d_direct_par<T: Scalar>(
    p: &Conv2dProblem,
    input: &Tensor4<T>,
    ker: &Tensor4<T>,
) -> Tensor4<T> {
    assert_eq!(input.shape(), in_shape(p), "In shape mismatch");
    assert_eq!(ker.shape(), ker_shape(p), "Ker shape mismatch");
    let plane = p.nw * p.nh;
    let madds = p.nb * p.nk * plane * p.nc * p.nr * p.ns;
    if madds < PAR_MADD_CUTOFF || pool::num_threads() <= 1 {
        return conv2d_direct(p, input, ker);
    }
    let mut out = Tensor4::zeros(out_shape(p));
    let yt = p.in_h();
    let pool = pool::Pool::default();
    pool.par_chunks_mut(out.as_mut_slice(), plane, |bk, chunk| {
        let b = bk / p.nk;
        let k = bk % p.nk;
        for w in 0..p.nw {
            for h in 0..p.nh {
                let mut acc = T::zero();
                for c in 0..p.nc {
                    // Hoist the (b, c) input plane and per-(k, c, r)
                    // kernel row out of the inner stencil loops; the
                    // (c, r, s) accumulation order is unchanged, so the
                    // result stays bitwise identical to conv2d_direct.
                    let in_plane = input.plane(b, c);
                    for r in 0..p.nr {
                        let irow = &in_plane[(p.sw * w + r) * yt..][..yt];
                        let krow = ker.row(k, c, r);
                        for (s, &kv) in krow.iter().enumerate() {
                            acc += irow[p.sh * h + s] * kv;
                        }
                    }
                }
                chunk[w * p.nh + h] = acc;
            }
        }
    });
    out
}

/// im2col + matmul reference: lower the convolution to
/// `Out[bwh, k] = Col[bwh, crs] · Ker[k, crs]ᵀ` — the classical
/// reduction that also underlies the paper's "CNN generalizes matmul"
/// framing. Used as an independent second reference in property tests.
pub fn conv2d_im2col<T: Scalar>(
    p: &Conv2dProblem,
    input: &Tensor4<T>,
    ker: &Tensor4<T>,
) -> Tensor4<T> {
    assert_eq!(input.shape(), in_shape(p), "In shape mismatch");
    let crs = p.nc * p.nr * p.ns;
    let bwh = p.nb * p.nw * p.nh;
    // Column matrix: row per output point, column per (c, r, s).
    let mut col = vec![T::zero(); bwh * crs];
    for b in 0..p.nb {
        for w in 0..p.nw {
            for h in 0..p.nh {
                let row = (b * p.nw + w) * p.nh + h;
                let base = row * crs;
                let mut j = 0;
                for c in 0..p.nc {
                    for r in 0..p.nr {
                        for s in 0..p.ns {
                            col[base + j] = input[[b, c, p.sw * w + r, p.sh * h + s]];
                            j += 1;
                        }
                    }
                }
            }
        }
    }
    let mut out = Tensor4::zeros(out_shape(p));
    for b in 0..p.nb {
        for w in 0..p.nw {
            for h in 0..p.nh {
                let row = (b * p.nw + w) * p.nh + h;
                for k in 0..p.nk {
                    let mut acc = T::zero();
                    let kbase = k * crs;
                    for j in 0..crs {
                        acc += col[row * crs + j] * ker.as_slice()[kbase + j];
                    }
                    out[[b, k, w, h]] = acc;
                }
            }
        }
    }
    out
}

/// The tile micro-kernel shared by the GVM executor and the distributed
/// algorithm: accumulate one tile's contribution on **local, rebased**
/// buffers.
///
/// * `out_tile`: `[T_b, T_k, T_w, T_h]`, accumulated in place.
/// * `in_tile`:  `[T_b, T_c, X_t, Y_t]` where
///   `X_t ≥ σw·(T_w−1)+N_r`, `Y_t ≥ σh·(T_h−1)+N_s` — the halo window
///   for this tile, with local origin at the tile's first input pixel.
/// * `ker_tile`: `[T_k, T_c, N_r, N_s]`.
pub fn conv_tile<T: Scalar>(
    p: &Conv2dProblem,
    out_tile: &mut Tensor4<T>,
    in_tile: &Tensor4<T>,
    ker_tile: &Tensor4<T>,
) {
    let [tb, tk, tw, th] = out_tile.shape().0;
    let [tb2, tc, xt, yt] = in_tile.shape().0;
    let [tk2, tc2, nr, ns] = ker_tile.shape().0;
    assert_eq!(tb, tb2, "batch tile mismatch");
    assert_eq!(tk, tk2, "k tile mismatch");
    assert_eq!(tc, tc2, "c tile mismatch");
    assert_eq!((nr, ns), (p.nr, p.ns), "kernel extent mismatch");
    assert!(
        xt >= p.sw * (tw - 1) + p.nr && yt >= p.sh * (th - 1) + p.ns,
        "input tile window too small: {xt}x{yt} for out {tw}x{th}"
    );
    for b in 0..tb {
        for k in 0..tk {
            for w in 0..tw {
                for h in 0..th {
                    let mut acc = out_tile[[b, k, w, h]];
                    for c in 0..tc {
                        for r in 0..nr {
                            for s in 0..ns {
                                acc += in_tile[[b, c, p.sw * w + r, p.sh * h + s]]
                                    * ker_tile[[k, c, r, s]];
                            }
                        }
                    }
                    out_tile[[b, k, w, h]] = acc;
                }
            }
        }
    }
}

/// Weight gradient for the training-step example:
/// `dKer[k,c,r,s] = Σ_{b,w,h} dOut[b,k,w,h] · In[b,c,σw·w+r,σh·h+s]`.
pub fn grad_ker<T: Scalar>(
    p: &Conv2dProblem,
    input: &Tensor4<T>,
    d_out: &Tensor4<T>,
) -> Tensor4<T> {
    assert_eq!(input.shape(), in_shape(p), "In shape mismatch");
    assert_eq!(d_out.shape(), out_shape(p), "dOut shape mismatch");
    let mut d_ker = Tensor4::zeros(ker_shape(p));
    for k in 0..p.nk {
        for c in 0..p.nc {
            for r in 0..p.nr {
                for s in 0..p.ns {
                    let mut acc = T::zero();
                    for b in 0..p.nb {
                        for w in 0..p.nw {
                            // Row views hoist the 4-D offset arithmetic
                            // out of the h loop without reordering the
                            // (b, w, h) reduction.
                            let orow = d_out.row(b, k, w);
                            let irow = input.row(b, c, p.sw * w + r);
                            for (h, &ov) in orow.iter().enumerate() {
                                acc += ov * irow[p.sh * h + s];
                            }
                        }
                    }
                    d_ker[[k, c, r, s]] = acc;
                }
            }
        }
    }
    d_ker
}

#[cfg(test)]
mod tests {
    use super::*;
    use distconv_tensor::assert_close;

    fn toy() -> Conv2dProblem {
        Conv2dProblem::square(2, 3, 4, 5, 3)
    }

    #[test]
    fn direct_known_value() {
        // 1x1x1 problem with 1x1 kernel: Out = In·Ker.
        let p = Conv2dProblem::new(1, 1, 1, 1, 1, 1, 1, 1, 1);
        let mut input = Tensor4::<f64>::zeros(in_shape(&p));
        let mut ker = Tensor4::<f64>::zeros(ker_shape(&p));
        input[[0, 0, 0, 0]] = 3.0;
        ker[[0, 0, 0, 0]] = 4.0;
        let out = conv2d_direct(&p, &input, &ker);
        assert_eq!(out[[0, 0, 0, 0]], 12.0);
    }

    #[test]
    fn direct_sum_kernel_is_box_filter() {
        // All-ones kernel and input: every output = Nc·Nr·Ns.
        let p = toy();
        let input = Tensor4::from_vec(in_shape(&p), vec![1.0f64; in_shape(&p).len()]);
        let ker = Tensor4::from_vec(ker_shape(&p), vec![1.0f64; ker_shape(&p).len()]);
        let out = conv2d_direct(&p, &input, &ker);
        for &v in out.as_slice() {
            assert_eq!(v, (p.nc * p.nr * p.ns) as f64);
        }
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let p = toy();
        let (input, ker) = workload::<f64>(&p, 42);
        let a = conv2d_direct(&p, &input, &ker);
        let b = conv2d_direct_par(&p, &input, &ker);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn im2col_matches_direct() {
        let p = toy();
        let (input, ker) = workload::<f64>(&p, 7);
        let a = conv2d_direct(&p, &input, &ker);
        let b = conv2d_im2col(&p, &input, &ker);
        assert_close(a.as_slice(), b.as_slice(), 1e-12, "im2col");
    }

    #[test]
    fn strided_conv_correct() {
        let p = Conv2dProblem::new(1, 2, 2, 3, 3, 3, 3, 2, 2);
        let (input, ker) = workload::<f64>(&p, 9);
        let a = conv2d_direct(&p, &input, &ker);
        let b = conv2d_im2col(&p, &input, &ker);
        assert_close(a.as_slice(), b.as_slice(), 1e-12, "strided");
        assert_eq!(a.shape(), Shape4::new(1, 2, 3, 3));
    }

    #[test]
    fn tile_kernel_whole_problem_matches_direct() {
        // One tile covering everything must equal the reference.
        let p = toy();
        let (input, ker) = workload::<f64>(&p, 11);
        let mut out = Tensor4::zeros(out_shape(&p));
        // in_tile needs rebased layout [b, c, x, y] == whole input here.
        conv_tile(&p, &mut out, &input, &ker);
        let reference = conv2d_direct(&p, &input, &ker);
        assert_eq!(out.as_slice(), reference.as_slice());
    }

    #[test]
    fn tile_kernel_accumulates_channel_splits() {
        // Splitting c into two tiles and accumulating must reproduce the
        // whole result — the invariant the c-innermost schedule relies on.
        let p = toy();
        let (input, ker) = workload::<f64>(&p, 13);
        let reference = conv2d_direct(&p, &input, &ker);
        let mut out = Tensor4::zeros(out_shape(&p));
        for c0 in [0usize, 2] {
            let in_slice = input.slice(distconv_tensor::Range4::new(
                [0, c0, 0, 0],
                [p.nb, c0 + 2, p.in_w(), p.in_h()],
            ));
            let ker_slice = ker.slice(distconv_tensor::Range4::new(
                [0, c0, 0, 0],
                [p.nk, c0 + 2, p.nr, p.ns],
            ));
            conv_tile(&p, &mut out, &in_slice, &ker_slice);
        }
        assert_close(out.as_slice(), reference.as_slice(), 1e-12, "c-split");
    }

    #[test]
    fn grad_ker_matches_finite_difference() {
        // d/dKer[k0,c0,r0,s0] of Σ Out·dOut — check one coordinate by
        // linearity: perturbing Ker by ε at one coordinate changes
        // Σ (Out·dOut) by ε·dKer[coordinate].
        let p = Conv2dProblem::square(1, 2, 2, 3, 2);
        let (input, ker) = workload::<f64>(&p, 21);
        let d_out = Tensor4::random(out_shape(&p), 77);
        let g = grad_ker(&p, &input, &d_out);
        let eps = 1e-6;
        let coord = [1usize, 1, 1, 0];
        let mut ker2 = ker.clone();
        ker2[coord] += eps;
        let f = |kk: &Tensor4<f64>| -> f64 {
            let out = conv2d_direct(&p, &input, kk);
            out.as_slice()
                .iter()
                .zip(d_out.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let fd = (f(&ker2) - f(&ker)) / eps;
        assert!(
            (fd - g[coord]).abs() < 1e-5,
            "finite difference {fd} vs analytic {}",
            g[coord]
        );
    }

    #[test]
    #[should_panic(expected = "In shape mismatch")]
    fn shape_mismatch_panics() {
        let p = toy();
        let bad = Tensor4::<f64>::zeros(Shape4::new(1, 1, 1, 1));
        let ker = Tensor4::zeros(ker_shape(&p));
        let _ = conv2d_direct(&p, &bad, &ker);
    }
}

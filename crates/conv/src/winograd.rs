//! Winograd `F(2×2, 3×3)` fast convolution — the workspace's fast
//! *bilinear* local kernel ([`LocalKernel::Winograd`]
//! (distconv_par::LocalKernel)).
//!
//! For 3×3 stride-1 layers the minimal-filtering algorithm of Winograd
//! (as popularized for CNNs by Lavin & Gray, and analyzed for the
//! distributed setting by Ju & Solomonik, arXiv 1910.13367) computes
//! each 2×2 output tile from a 4×4 input tile with **16 multiplies
//! instead of 36** — a 2.25× reduction in the inner-product work:
//!
//! ```text
//! Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A
//! ```
//!
//! with the F(2,3) transform matrices
//!
//! ```text
//! Bᵀ = ⎡1  0 −1  0⎤   G = ⎡ 1    0    0 ⎤   Aᵀ = ⎡1 1  1  0⎤
//!      ⎢0  1  1  0⎥       ⎢ ½    ½    ½ ⎥        ⎣0 1 −1 −1⎦
//!      ⎢0 −1  1  0⎥       ⎢ ½   −½    ½ ⎥
//!      ⎣0  1  0 −1⎦       ⎣ 0    0    1 ⎦
//! ```
//!
//! The element-wise products over the 16 transform-domain positions
//! `ξ` batch into 16 small GEMMs `M[ξ] = U[ξ] · V[ξ]` (a `T_k × T_c`
//! kernel panel times a `T_c × P` tile panel, `P` = spatial tiles per
//! batch image), which run on the same register-blocked, SIMD-
//! dispatched micro-kernel ([`gemm_acc_rows`]) as the im2col path — so
//! the 2.25× multiply reduction stacks on top of the vector width.
//!
//! **Numeric policy (two-tier).** Unlike `LocalKernel::Fast`, Winograd
//! is *not* bitwise-equal to the reference kernels: it evaluates a
//! different (algebraically equal) bilinear form, and 1910.13367 §5
//! shows its error grows by a modest constant factor over direct
//! convolution for F(2,3) (the growth is polynomial in the tile size;
//! F(2,3) is the gentlest member of the family — all its transform
//! constants are exact powers of two, so the transforms themselves
//! round only on additions). Exact-match suites therefore stay pinned
//! to `Reference`/`Fast`, and Winograd is validated against the
//! reference under a relative tolerance (`assert_close`) chosen from
//! that analysis: `5e-4` for f32, `1e-12` for f64 on the `O(1)`-
//! magnitude workloads the suites generate. See DESIGN.md §7.
//!
//! Shapes the algorithm does not cover (kernels other than 3×3, or any
//! stride > 1) fall back to the fast im2col path — bitwise identical
//! to `Fast` there, so the env knob is safe to set globally.

use distconv_cost::Conv2dProblem;
use distconv_par::pool;
use distconv_tensor::gemm::{gemm_acc_rows, mr_block};
use distconv_tensor::{Scalar, Tensor4};

use crate::fast::{conv2d_fast, conv_tile_fast_rows, ConvScratch};
use crate::kernels::{in_shape, ker_shape, out_shape, PAR_MADD_CUTOFF};

/// `c` (transform-reduction) block size for the 16 pointwise GEMMs —
/// same L1 sizing rationale as the im2col path's `KC`.
const KC: usize = 128;

/// Does `F(2×2, 3×3)` apply to this layer? Anything else falls back to
/// the fast im2col path.
pub fn winograd_applicable(p: &Conv2dProblem) -> bool {
    p.nr == 3 && p.ns == 3 && p.sw == 1 && p.sh == 1
}

/// Reusable scratch for the Winograd kernel, embedded in
/// [`ConvScratch`] so tiled executors keep one arena per worker.
#[derive(Clone, Debug, Default)]
pub(crate) struct WinoScratch<T> {
    /// Transformed kernel, `[ξ][T_c][T_k]` — already in the transposed
    /// panel layout the micro-kernel consumes on its left side.
    pub(crate) u: Vec<T>,
    /// Transformed input tiles, `[ξ][T_c][P]`.
    pub(crate) v: Vec<T>,
    /// Transform-domain products, `[ξ][T_k][P]`.
    pub(crate) m: Vec<T>,
    /// Offset table `boff[c] = c·P` shared by all 16 GEMMs.
    pub(crate) boff: Vec<usize>,
}

/// Kernel transform: `U[ξ][c][k] = (G · Ker[k,c,·,·] · Gᵀ)[ξ]` for the
/// whole `T_k × T_c` kernel tile, written directly in the transposed
/// `[ξ][c][k]` panel layout. `half` additions/multiplies by ½ are
/// exact (powers of two), so this transform only rounds on the sums.
fn transform_kernel<T: Scalar>(ker: &Tensor4<T>, u: &mut Vec<T>) {
    let [tk, tc, nr, ns] = ker.shape().0;
    debug_assert_eq!((nr, ns), (3, 3));
    let half = T::from_f64(0.5);
    u.clear();
    u.resize(16 * tc * tk, T::zero());
    for k in 0..tk {
        for c in 0..tc {
            let g0 = ker.row(k, c, 0);
            let g1 = ker.row(k, c, 1);
            let g2 = ker.row(k, c, 2);
            // t = G·g: four rows of three (over the s axis).
            let mut t = [[T::zero(); 3]; 4];
            for s in 0..3 {
                t[0][s] = g0[s];
                t[1][s] = (g0[s] + g1[s] + g2[s]) * half;
                t[2][s] = (g0[s] - g1[s] + g2[s]) * half;
                t[3][s] = g2[s];
            }
            // U = t·Gᵀ: widen each row of three to four (over s).
            for (ax, tr) in t.iter().enumerate() {
                let row = [
                    tr[0],
                    (tr[0] + tr[1] + tr[2]) * half,
                    (tr[0] - tr[1] + tr[2]) * half,
                    tr[2],
                ];
                for (ay, &val) in row.iter().enumerate() {
                    u[(ax * 4 + ay) * (tc * tk) + c * tk + k] = val;
                }
            }
        }
    }
}

/// Input transform for one batch image: gather every 4×4 tile `d`,
/// compute `Bᵀ d B`, scatter into the `[ξ][T_c][P]` panel. Reads past
/// the *semantic* input window (`tw+2 × th+2` for a `tw × th` output
/// tile) are zero, even when the caller's buffer is larger — results
/// must not depend on how much halo a caller happens to hand over.
#[allow(clippy::too_many_arguments)]
fn transform_input<T: Scalar>(
    in_plane: &[T],
    tc: usize,
    xt: usize,
    yt: usize,
    tw: usize,
    th: usize,
    v: &mut [T],
) {
    let (tiles_w, tiles_h) = (tw.div_ceil(2), th.div_ceil(2));
    let p_tiles = tiles_w * tiles_h;
    let xi_stride = tc * p_tiles;
    // Reads are bounded by the *semantic* window AND the buffer.
    let (lim_x, lim_y) = ((tw + 2).min(xt), (th + 2).min(yt));
    // Tiles fully inside the window take a branch-free path with the
    // four input rows hoisted as slices; only the clipped boundary
    // tiles (at most one per axis) pay the per-element gather.
    let full_tx = tiles_w.min(lim_x.saturating_sub(3).div_ceil(2));
    let full_ty = tiles_h.min(lim_y.saturating_sub(3).div_ceil(2));
    for c in 0..tc {
        let cbase = c * (xt * yt);
        let vbase = c * p_tiles;
        for tx in 0..tiles_w {
            let x0 = 2 * tx;
            let t0 = tx * tiles_h;
            if tx < full_tx {
                let r0 = &in_plane[cbase + x0 * yt..][..lim_y];
                let r1 = &in_plane[cbase + (x0 + 1) * yt..][..lim_y];
                let r2 = &in_plane[cbase + (x0 + 2) * yt..][..lim_y];
                let r3 = &in_plane[cbase + (x0 + 3) * yt..][..lim_y];
                let done = crate::wino_simd::input_rows(
                    &[r0, r1, r2, r3],
                    full_ty,
                    v,
                    xi_stride,
                    vbase + t0,
                );
                for ty in done..full_ty {
                    let y0 = 2 * ty;
                    let d = [
                        &r0[y0..y0 + 4],
                        &r1[y0..y0 + 4],
                        &r2[y0..y0 + 4],
                        &r3[y0..y0 + 4],
                    ];
                    scatter_tile(&bt_d_b(&d), v, xi_stride, vbase + t0 + ty);
                }
                for ty in full_ty..tiles_h {
                    let d = gather_clipped(in_plane, cbase, yt, lim_x, lim_y, x0, 2 * ty);
                    scatter_tile(&bt_d_b_arr(&d), v, xi_stride, vbase + t0 + ty);
                }
            } else {
                for ty in 0..tiles_h {
                    let d = gather_clipped(in_plane, cbase, yt, lim_x, lim_y, x0, 2 * ty);
                    scatter_tile(&bt_d_b_arr(&d), v, xi_stride, vbase + t0 + ty);
                }
            }
        }
    }
}

/// Gather one 4×4 input tile at `(x0, y0)`, zero outside the clipped
/// window — the boundary-tile slow path of [`transform_input`].
fn gather_clipped<T: Scalar>(
    in_plane: &[T],
    cbase: usize,
    yt: usize,
    lim_x: usize,
    lim_y: usize,
    x0: usize,
    y0: usize,
) -> [[T; 4]; 4] {
    let mut d = [[T::zero(); 4]; 4];
    for (ax, dr) in d.iter_mut().enumerate() {
        let x = x0 + ax;
        if x >= lim_x {
            continue;
        }
        let rbase = cbase + x * yt;
        for (ay, dv) in dr.iter_mut().enumerate() {
            let y = y0 + ay;
            if y < lim_y {
                *dv = in_plane[rbase + y];
            }
        }
    }
    d
}

/// `Bᵀ · d · B` for one tile whose rows are borrowed slices.
#[inline]
fn bt_d_b<T: Scalar>(d: &[&[T]; 4]) -> [[T; 4]; 4] {
    let mut z = [[T::zero(); 4]; 4];
    for ay in 0..4 {
        z[0][ay] = d[0][ay] - d[2][ay];
        z[1][ay] = d[1][ay] + d[2][ay];
        z[2][ay] = d[2][ay] - d[1][ay];
        z[3][ay] = d[1][ay] - d[3][ay];
    }
    apply_b_cols(&z)
}

/// `Bᵀ · d · B` for one gathered (owned) tile.
#[inline]
fn bt_d_b_arr<T: Scalar>(d: &[[T; 4]; 4]) -> [[T; 4]; 4] {
    let rows: [&[T]; 4] = [&d[0], &d[1], &d[2], &d[3]];
    bt_d_b(&rows)
}

/// Right-multiply the half-transformed tile by `B` (over the y axis).
#[inline]
fn apply_b_cols<T: Scalar>(z: &[[T; 4]; 4]) -> [[T; 4]; 4] {
    let mut w = [[T::zero(); 4]; 4];
    for (wr, zr) in w.iter_mut().zip(z.iter()) {
        wr[0] = zr[0] - zr[2];
        wr[1] = zr[1] + zr[2];
        wr[2] = zr[2] - zr[1];
        wr[3] = zr[1] - zr[3];
    }
    w
}

/// Scatter one transformed tile into the 16 `ξ` panels at offset
/// `base` (the tile's `c·P + t` slot; panels are `xi_stride` apart).
#[inline]
fn scatter_tile<T: Scalar>(w: &[[T; 4]; 4], v: &mut [T], xi_stride: usize, base: usize) {
    for (ax, wr) in w.iter().enumerate() {
        for (ay, &val) in wr.iter().enumerate() {
            v[(ax * 4 + ay) * xi_stride + base] = val;
        }
    }
}

/// The transform-domain contraction: `M[ξ] += U[ξ] · V[ξ]` for all 16
/// positions, on the shared (SIMD-dispatched) micro-kernel.
fn pointwise_gemms<T: Scalar>(
    tk: usize,
    tc: usize,
    p_tiles: usize,
    u: &[T],
    v: &[T],
    m: &mut [T],
    boff: &mut Vec<usize>,
) {
    boff.clear();
    boff.extend((0..tc).map(|c| c * p_tiles));
    let mrb = mr_block();
    for xi in 0..16 {
        let u_xi = &u[xi * (tc * tk)..(xi + 1) * (tc * tk)];
        let v_xi = &v[xi * (tc * p_tiles)..(xi + 1) * (tc * p_tiles)];
        let m_xi = &mut m[xi * (tk * p_tiles)..(xi + 1) * (tk * p_tiles)];
        for c0 in (0..tc).step_by(KC) {
            let c1 = (c0 + KC).min(tc);
            let mut k0 = 0;
            while k0 < tk {
                let mr = mrb.min(tk - k0);
                gemm_acc_rows(
                    &mut m_xi[k0 * p_tiles..],
                    p_tiles,
                    mr,
                    p_tiles,
                    &u_xi[c0 * tk..],
                    tk,
                    k0,
                    v_xi,
                    &boff[c0..c1],
                );
                k0 += mr;
            }
        }
    }
}

/// Output transform for one batch image: `Y = Aᵀ M A` per `(k, tile)`,
/// accumulated (`+=`) into strided output rows with tiles clipped at
/// the `tw × th` boundary (odd extents discard the ragged half-tile).
#[allow(clippy::too_many_arguments)]
fn transform_output<T: Scalar>(
    m: &[T],
    tk: usize,
    tw: usize,
    th: usize,
    out: &mut [T],
    out_base: usize,
    kstride: usize,
    wstride: usize,
) {
    let (tiles_w, tiles_h) = (tw.div_ceil(2), th.div_ceil(2));
    let p_tiles = tiles_w * tiles_h;
    let xi_stride = tk * p_tiles;
    // Tiles whose 2×2 output lands fully inside tw × th skip the clip
    // branches; only the ragged last row/column (odd extents) clips.
    let (full_tx, full_ty) = (tw / 2, th / 2);
    for k in 0..tk {
        let kbase = k * p_tiles;
        let obase = out_base + k * kstride;
        for tx in 0..tiles_w {
            let t0 = tx * tiles_h;
            let w0 = 2 * tx;
            // Interior tiles first try the AVX2 block path (f32); it
            // returns how many ty tiles it consumed.
            let done = if tx < full_tx {
                let base0 = obase + w0 * wstride;
                crate::wino_simd::output_rows(
                    m,
                    xi_stride,
                    kbase + t0,
                    full_ty,
                    out,
                    base0,
                    base0 + wstride,
                )
            } else {
                0
            };
            for ty in done..tiles_h {
                let base = kbase + t0 + ty;
                // a = Aᵀ·M over x, then ·A over y.
                let mut a = [[T::zero(); 4]; 2];
                for ay in 0..4 {
                    let col = |ax: usize| m[(ax * 4 + ay) * xi_stride + base];
                    a[0][ay] = col(0) + col(1) + col(2);
                    a[1][ay] = col(1) - col(2) - col(3);
                }
                let h0 = 2 * ty;
                if tx < full_tx && ty < full_ty {
                    let y0 = [a[0][0] + a[0][1] + a[0][2], a[0][1] - a[0][2] - a[0][3]];
                    let y1 = [a[1][0] + a[1][1] + a[1][2], a[1][1] - a[1][2] - a[1][3]];
                    let r0 = obase + w0 * wstride + h0;
                    out[r0] += y0[0];
                    out[r0 + 1] += y0[1];
                    let r1 = r0 + wstride;
                    out[r1] += y1[0];
                    out[r1 + 1] += y1[1];
                } else {
                    for (i, ar) in a.iter().enumerate() {
                        let w = w0 + i;
                        if w >= tw {
                            continue;
                        }
                        let y = [ar[0] + ar[1] + ar[2], ar[1] - ar[2] - ar[3]];
                        for (j, &val) in y.iter().enumerate() {
                            let h = h0 + j;
                            if h < th {
                                out[obase + w * wstride + h] += val;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Winograd drop-in for [`crate::fast::conv_tile_fast`]: accumulate one
/// tile's contribution via `F(2×2, 3×3)`, falling back to the fast
/// im2col path (bitwise-identical to `Fast`) when the shape is not a
/// 3×3 stride-1 convolution.
pub fn conv_tile_winograd<T: Scalar>(
    p: &Conv2dProblem,
    out_tile: &mut Tensor4<T>,
    in_tile: &Tensor4<T>,
    ker_tile: &Tensor4<T>,
    scratch: &mut ConvScratch<T>,
) {
    let [tb, tk, tw, th] = out_tile.shape().0;
    let strides = [tk * tw * th, tw * th, th];
    conv_tile_winograd_rows(
        p,
        out_tile.as_mut_slice(),
        0,
        strides,
        [tb, tk, tw, th],
        in_tile,
        ker_tile,
        scratch,
    );
}

/// The row-addressed core, mirroring
/// [`crate::fast::conv_tile_fast_rows`]' contract: output row
/// `(b, k, w, ·)` lives at
/// `out[out_base + b·strides[0] + k·strides[1] + w·strides[2] ..][..T_h]`.
#[allow(clippy::too_many_arguments)]
pub fn conv_tile_winograd_rows<T: Scalar>(
    p: &Conv2dProblem,
    out: &mut [T],
    out_base: usize,
    out_strides: [usize; 3],
    out_extents: [usize; 4],
    in_tile: &Tensor4<T>,
    ker_tile: &Tensor4<T>,
    scratch: &mut ConvScratch<T>,
) {
    if !winograd_applicable(p) {
        return conv_tile_fast_rows(
            p,
            out,
            out_base,
            out_strides,
            out_extents,
            in_tile,
            ker_tile,
            scratch,
        );
    }
    let [tb, tk, tw, th] = out_extents;
    let [tb2, tc, xt, yt] = in_tile.shape().0;
    let [tk2, tc2, nr, ns] = ker_tile.shape().0;
    assert_eq!(tb, tb2, "batch tile mismatch");
    assert_eq!(tk, tk2, "k tile mismatch");
    assert_eq!(tc, tc2, "c tile mismatch");
    assert_eq!((nr, ns), (p.nr, p.ns), "kernel extent mismatch");
    assert!(
        xt >= p.sw * (tw - 1) + p.nr && yt >= p.sh * (th - 1) + p.ns,
        "input tile window too small: {xt}x{yt} for out {tw}x{th}"
    );
    if tb == 0 || tk == 0 || tw == 0 || th == 0 {
        return;
    }
    let p_tiles = tw.div_ceil(2) * th.div_ceil(2);
    let wino = &mut scratch.wino;
    transform_kernel(ker_tile, &mut wino.u);
    wino.v.clear();
    wino.v.resize(16 * tc * p_tiles, T::zero());
    for b in 0..tb {
        transform_input(
            &in_tile.as_slice()[b * tc * xt * yt..],
            tc,
            xt,
            yt,
            tw,
            th,
            &mut wino.v,
        );
        wino.m.clear();
        wino.m.resize(16 * tk * p_tiles, T::zero());
        pointwise_gemms(
            tk,
            tc,
            p_tiles,
            &wino.u,
            &wino.v,
            &mut wino.m,
            &mut wino.boff,
        );
        transform_output(
            &wino.m,
            tk,
            tw,
            th,
            out,
            out_base + b * out_strides[0],
            out_strides[1],
            out_strides[2],
        );
    }
}

/// Whole-problem Winograd convolution: transform `Ker` once, then run
/// the per-image transform → 16 GEMMs → inverse-transform pipeline in
/// parallel over the worker pool (serial below the same work cutoff as
/// the other whole-problem kernels). Falls back to [`conv2d_fast`]
/// when `F(2×2, 3×3)` does not apply.
pub fn conv2d_winograd<T: Scalar>(
    p: &Conv2dProblem,
    input: &Tensor4<T>,
    ker: &Tensor4<T>,
) -> Tensor4<T> {
    if !winograd_applicable(p) {
        return conv2d_fast(p, input, ker);
    }
    assert_eq!(input.shape(), in_shape(p), "In shape mismatch");
    assert_eq!(ker.shape(), ker_shape(p), "Ker shape mismatch");
    let mut out = Tensor4::zeros(out_shape(p));
    let mut u = Vec::new();
    transform_kernel(ker, &mut u);
    let (xt, yt) = (p.in_w(), p.in_h());
    let in_bstride = p.nc * xt * yt;
    let plane = p.nk * p.nw * p.nh;
    let p_tiles = p.nw.div_ceil(2) * p.nh.div_ceil(2);
    let in_data = input.as_slice();
    let u = &u;
    let madds = p.nb * plane * p.nc * p.nr * p.ns;
    let pool = if madds < PAR_MADD_CUTOFF {
        pool::Pool::new(1)
    } else {
        pool::Pool::default()
    };
    pool.par_chunks_mut(out.as_mut_slice(), plane, |b, chunk| {
        let mut v = vec![T::zero(); 16 * p.nc * p_tiles];
        let mut m = vec![T::zero(); 16 * p.nk * p_tiles];
        let mut boff = Vec::new();
        transform_input(&in_data[b * in_bstride..], p.nc, xt, yt, p.nw, p.nh, &mut v);
        pointwise_gemms(p.nk, p.nc, p_tiles, u, &v, &mut m, &mut boff);
        transform_output(&m, p.nk, p.nw, p.nh, chunk, 0, p.nw * p.nh, p.nh);
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{conv2d_direct, conv_tile, workload};
    use distconv_tensor::assert_close;

    #[test]
    fn applicability_gate() {
        assert!(winograd_applicable(&Conv2dProblem::square(1, 2, 2, 6, 3)));
        assert!(!winograd_applicable(&Conv2dProblem::square(1, 2, 2, 6, 1)));
        assert!(!winograd_applicable(&Conv2dProblem::new(
            1, 2, 2, 6, 6, 3, 3, 2, 2
        )));
    }

    #[test]
    fn matches_reference_within_tolerance_even_and_odd() {
        for p in [
            Conv2dProblem::square(2, 3, 4, 6, 3),          // even spatial
            Conv2dProblem::square(1, 2, 3, 5, 3),          // odd — clipped tiles
            Conv2dProblem::new(2, 4, 2, 5, 7, 3, 3, 1, 1), // rectangular, both odd
            Conv2dProblem::square(1, 1, 1, 1, 3),          // degenerate 1×1 output
        ] {
            let (input, ker) = workload::<f64>(&p, 11);
            let want = conv2d_direct(&p, &input, &ker);
            let got = conv2d_winograd(&p, &input, &ker);
            assert_close(got.as_slice(), want.as_slice(), 1e-12, "f64 winograd");
        }
    }

    #[test]
    fn f32_within_analysis_tolerance() {
        let p = Conv2dProblem::square(2, 4, 8, 14, 3);
        let (input, ker) = workload::<f32>(&p, 23);
        let want = conv2d_direct(&p, &input, &ker);
        let got = conv2d_winograd(&p, &input, &ker);
        assert_close(got.as_slice(), want.as_slice(), 5e-4, "f32 winograd");
    }

    #[test]
    fn tile_path_accumulates_channel_splits() {
        // Winograd tiles accumulate over c-splits like every tile
        // kernel; the split sums land within tolerance of the whole.
        let p = Conv2dProblem::square(2, 3, 4, 6, 3);
        let (input, ker) = workload::<f64>(&p, 13);
        let mut whole = Tensor4::zeros(out_shape(&p));
        conv_tile(&p, &mut whole, &input, &ker);
        let mut out = Tensor4::zeros(out_shape(&p));
        let mut scratch = ConvScratch::new();
        for c0 in [0usize, 2] {
            let in_slice = input.slice(distconv_tensor::Range4::new(
                [0, c0, 0, 0],
                [p.nb, c0 + 2, p.in_w(), p.in_h()],
            ));
            let ker_slice = ker.slice(distconv_tensor::Range4::new(
                [0, c0, 0, 0],
                [p.nk, c0 + 2, 3, 3],
            ));
            conv_tile_winograd(&p, &mut out, &in_slice, &ker_slice, &mut scratch);
        }
        assert_close(out.as_slice(), whole.as_slice(), 1e-12, "c-split");
    }

    #[test]
    fn oversized_halo_does_not_change_results() {
        // A caller may hand a bigger input window than the semantic
        // tw+2 × th+2 tile; the gather must zero-pad identically.
        let p = Conv2dProblem::square(1, 2, 2, 5, 3);
        let big = Conv2dProblem::square(1, 2, 2, 7, 3);
        let (input_big, ker) = workload::<f64>(&big, 3);
        // Exact-size window for the 5×5 problem …
        let input = input_big.slice(distconv_tensor::Range4::new(
            [0, 0, 0, 0],
            [1, 2, p.in_w(), p.in_h()],
        ));
        let mut exact = Tensor4::zeros(out_shape(&p));
        conv_tile_winograd(&p, &mut exact, &input, &ker, &mut ConvScratch::new());
        // … vs the full 9×9 window of the 7×7 problem's input.
        let mut over = Tensor4::zeros(out_shape(&p));
        conv_tile_winograd(&p, &mut over, &input_big, &ker, &mut ConvScratch::new());
        assert_eq!(exact.as_slice(), over.as_slice());
    }

    #[test]
    fn fallback_is_bitwise_fast_path() {
        // 5×5 kernel and strided shapes take the im2col path — bitwise
        // equal to conv_tile_fast, not merely close.
        for p in [
            Conv2dProblem::square(1, 2, 3, 4, 5),
            Conv2dProblem::new(2, 3, 2, 4, 4, 3, 3, 2, 2),
        ] {
            let (input, ker) = workload::<f64>(&p, 7);
            let mut fast = Tensor4::zeros(out_shape(&p));
            crate::fast::conv_tile_fast(&p, &mut fast, &input, &ker, &mut ConvScratch::new());
            let mut wino = Tensor4::zeros(out_shape(&p));
            conv_tile_winograd(&p, &mut wino, &input, &ker, &mut ConvScratch::new());
            assert_eq!(fast.as_slice(), wino.as_slice(), "{p:?}");
        }
    }
}

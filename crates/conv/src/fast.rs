//! The fast local compute path: implicit-im2col × packed-kernel GEMM.
//!
//! [`conv_tile`](crate::kernels::conv_tile) is the paper's Listing-1
//! seven-loop kernel applied to a tile: every multiply pays 4-D offset
//! arithmetic and nothing vectorizes. This module lowers the same tile
//! computation to the classical im2col GEMM reduction (the "CNN
//! generalizes matmul" identity the paper builds its cost model on):
//!
//! ```text
//! Out[(b,w), k, h] += Σ_j Ker[k, j] · Col[(b,w), j, h],   j = (c, r, s)
//! ```
//!
//! with three structural optimizations:
//!
//! * **Packed kernel panel** — `Ker[k,c,r,s]` is packed once per call
//!   into a transposed `[crs][T_k]` panel
//!   ([`distconv_tensor::gemm::pack_transposed`]), so the micro-kernel
//!   reads its `MR` coefficients contiguously.
//! * **Implicit im2col** — for `σ_h = 1` the column matrix is never
//!   materialized: column row `(c, r, s)` *is* the subslice
//!   `In[b, c, σ_w·w + r, s..s+T_h]` of an input halo row, addressed
//!   through the micro-kernel's offset table. Only strided-`h` layers
//!   (`σ_h > 1`) gather their column rows into a reusable, L1-sized
//!   scratch buffer. The `1×1` stride-1 case degenerates to a pure
//!   GEMM on the raw input rows — no packing, no halo arithmetic.
//! * **Register blocking** — [`gemm_acc_rows`] updates
//!   [`mr_block`]`()` output rows (8 on the runtime-detected AVX2
//!   path, 4 scalar) per pass over a column row, and the `crs`
//!   dimension is walked in L1-sized blocks so the streamed column
//!   rows are reused across all `T_k` output channels while hot.
//!
//! All scratch (kernel panel, column buffer, offset table) lives in a
//! caller-held [`ConvScratch`] arena, so tiled executors pay zero
//! allocation per tile.
//!
//! **Numerical contract:** every output element accumulates its
//! `(c, r, s)` products in exactly the reference kernel's ascending
//! order, so results are *bitwise identical* to `conv_tile` /
//! `conv2d_direct` — not merely within tolerance. Switching
//! [`LocalKernel`](distconv_par::LocalKernel) therefore cannot perturb
//! golden results or traffic counters.

use distconv_cost::Conv2dProblem;
use distconv_par::{pool, LocalKernel};
use distconv_tensor::gemm::{gemm_acc_rows, mr_block, pack_transposed};
use distconv_tensor::{Scalar, Tensor4};

use crate::kernels::{conv2d_direct_par, in_shape, ker_shape, out_shape};

/// `crs` block size for the GEMM loop: 128 column rows of a 56-wide
/// f32 tile are ~28 KiB — resident in L1/L2 while all `T_k` output
/// channels stream over them.
const KC: usize = 128;

/// Reusable scratch arena for the fast kernels. Create one per run (or
/// per worker thread) and pass it to every tile call — the buffers grow
/// to the high-water mark and are never reallocated per tile.
#[derive(Clone, Debug, Default)]
pub struct ConvScratch<T> {
    /// Packed transposed kernel panel, `[crs][T_k]`.
    at: Vec<T>,
    /// Gathered column rows for strided-`h` tiles, `[crs][T_h]`.
    col: Vec<T>,
    /// Column-row offset table for the current `(b, w)` GEMM.
    boff: Vec<usize>,
    /// Winograd transform buffers (used only by the Winograd kernel).
    pub(crate) wino: crate::winograd::WinoScratch<T>,
}

impl<T: Scalar> ConvScratch<T> {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        ConvScratch {
            at: Vec::new(),
            col: Vec::new(),
            boff: Vec::new(),
            wino: Default::default(),
        }
    }
}

/// Fast drop-in replacement for [`crate::kernels::conv_tile`]:
/// accumulate one tile's contribution on local, rebased buffers via the
/// packed im2col GEMM. Bitwise identical to `conv_tile` (see module
/// docs).
pub fn conv_tile_fast<T: Scalar>(
    p: &Conv2dProblem,
    out_tile: &mut Tensor4<T>,
    in_tile: &Tensor4<T>,
    ker_tile: &Tensor4<T>,
    scratch: &mut ConvScratch<T>,
) {
    let [tb, tk, tw, th] = out_tile.shape().0;
    let strides = [tk * tw * th, tw * th, th];
    conv_tile_fast_rows(
        p,
        out_tile.as_mut_slice(),
        0,
        strides,
        [tb, tk, tw, th],
        in_tile,
        ker_tile,
        scratch,
    );
}

/// The row-addressed core shared by [`conv_tile_fast`] and the
/// distributed forward loop's accumulate-into-`Out`-slice path: output
/// row `(b, k, w, ·)` lives at
/// `out[out_base + b·strides[0] + k·strides[1] + w·strides[2] ..][..T_h]`,
/// which lets callers accumulate directly into a strided window of a
/// resident `Out` shard without a bounce buffer.
#[allow(clippy::too_many_arguments)]
pub fn conv_tile_fast_rows<T: Scalar>(
    p: &Conv2dProblem,
    out: &mut [T],
    out_base: usize,
    out_strides: [usize; 3],
    out_extents: [usize; 4],
    in_tile: &Tensor4<T>,
    ker_tile: &Tensor4<T>,
    scratch: &mut ConvScratch<T>,
) {
    let [tb, tk, tw, th] = out_extents;
    let [tb2, tc, xt, yt] = in_tile.shape().0;
    let [tk2, tc2, nr, ns] = ker_tile.shape().0;
    assert_eq!(tb, tb2, "batch tile mismatch");
    assert_eq!(tk, tk2, "k tile mismatch");
    assert_eq!(tc, tc2, "c tile mismatch");
    assert_eq!((nr, ns), (p.nr, p.ns), "kernel extent mismatch");
    assert!(
        xt >= p.sw * (tw - 1) + p.nr && yt >= p.sh * (th - 1) + p.ns,
        "input tile window too small: {xt}x{yt} for out {tw}x{th}"
    );
    if tb == 0 || tk == 0 || tw == 0 || th == 0 {
        return;
    }
    let crs = tc * nr * ns;
    // Pack Ker[k, (c,r,s)] → [crs][tk] once for the whole tile.
    pack_transposed(ker_tile.as_slice(), tk, crs, &mut scratch.at);
    im2col_gemm(
        p,
        out,
        out_base,
        out_strides,
        [tb, tk, tw, th],
        in_tile.as_slice(),
        [tc, xt, yt],
        &scratch.at,
        &mut scratch.col,
        &mut scratch.boff,
    );
}

/// GEMM core: kernel panel already packed in `at`.
#[allow(clippy::too_many_arguments)]
fn im2col_gemm<T: Scalar>(
    p: &Conv2dProblem,
    out: &mut [T],
    out_base: usize,
    ostr: [usize; 3],
    [tb, tk, tw, th]: [usize; 4],
    in_data: &[T],
    [tc, xt, yt]: [usize; 3],
    at: &[T],
    col: &mut Vec<T>,
    boff: &mut Vec<usize>,
) {
    let (nr, ns, sw, sh) = (p.nr, p.ns, p.sw, p.sh);
    let crs = tc * nr * ns;
    // Register-block height for the active micro-kernel path (8 on the
    // AVX2 path, 4 scalar) — a perf hint only; results are blocking-
    // independent (see gemm module docs).
    let mrb = mr_block();
    boff.clear();
    boff.resize(crs, 0);
    if sh > 1 {
        col.clear();
        col.resize(crs * th, T::zero());
    }
    for b in 0..tb {
        for w in 0..tw {
            // Column-row bases for this (b, w): row j = (c, r, s) starts
            // at In[b, c, σw·w + r, s].
            let mut j = 0;
            for c in 0..tc {
                let cbase = (b * tc + c) * (xt * yt);
                for r in 0..nr {
                    let rbase = cbase + (sw * w + r) * yt;
                    for s in 0..ns {
                        boff[j] = rbase + s;
                        j += 1;
                    }
                }
            }
            let bsl: &[T] = if sh == 1 {
                // Implicit im2col: column rows are input-row subslices.
                in_data
            } else {
                // Strided h: gather each column row once per (b, w).
                for (j, &off) in boff.iter().enumerate() {
                    let src = &in_data[off..off + sh * (th - 1) + 1];
                    for (h, d) in col[j * th..(j + 1) * th].iter_mut().enumerate() {
                        *d = src[sh * h];
                    }
                }
                for (j, off) in boff.iter_mut().enumerate() {
                    *off = j * th;
                }
                col
            };
            let cb = out_base + b * ostr[0] + w * ostr[2];
            // j-blocked so a KC×T_h panel of column rows stays cache-hot
            // across all T_k output channels. Per output element the
            // update order is still j ascending (j0 outer, j inner) —
            // the reference kernel's (c, r, s) order exactly.
            for j0 in (0..crs).step_by(KC) {
                let kk = KC.min(crs - j0);
                let mut k0 = 0;
                while k0 < tk {
                    let mr = mrb.min(tk - k0);
                    gemm_acc_rows(
                        &mut out[cb + k0 * ostr[1]..],
                        ostr[1],
                        mr,
                        th,
                        &at[j0 * tk..],
                        tk,
                        k0,
                        bsl,
                        &boff[j0..j0 + kk],
                    );
                    k0 += mr;
                }
            }
        }
    }
}

/// Whole-problem fast convolution: pack `Ker` once, then run the
/// im2col GEMM per batch image in parallel over the worker pool.
/// Bitwise identical to [`crate::kernels::conv2d_direct`] (and thus to
/// `conv2d_direct_par`) for every shape and stride.
pub fn conv2d_fast<T: Scalar>(
    p: &Conv2dProblem,
    input: &Tensor4<T>,
    ker: &Tensor4<T>,
) -> Tensor4<T> {
    assert_eq!(input.shape(), in_shape(p), "In shape mismatch");
    assert_eq!(ker.shape(), ker_shape(p), "Ker shape mismatch");
    let mut out = Tensor4::zeros(out_shape(p));
    let crs = p.nc * p.nr * p.ns;
    let mut at = Vec::new();
    pack_transposed(ker.as_slice(), p.nk, crs, &mut at);
    let (xt, yt) = (p.in_w(), p.in_h());
    let in_bstride = p.nc * xt * yt;
    let plane = p.nk * p.nw * p.nh;
    let in_data = input.as_slice();
    let at = &at;
    let madds = p.nb * plane * crs;
    let pool = if madds < crate::kernels::PAR_MADD_CUTOFF {
        pool::Pool::new(1)
    } else {
        pool::Pool::default()
    };
    pool.par_chunks_mut(out.as_mut_slice(), plane, |b, chunk| {
        let mut col = Vec::new();
        let mut boff = Vec::new();
        im2col_gemm(
            p,
            chunk,
            0,
            [plane, p.nw * p.nh, p.nh],
            [1, p.nk, p.nw, p.nh],
            &in_data[b * in_bstride..],
            [p.nc, xt, yt],
            at,
            &mut col,
            &mut boff,
        );
    });
    out
}

/// Kernel-selected whole-problem convolution: the entry point the
/// baseline schemes and examples dispatch through.
pub fn conv2d<T: Scalar>(
    p: &Conv2dProblem,
    input: &Tensor4<T>,
    ker: &Tensor4<T>,
    kernel: LocalKernel,
) -> Tensor4<T> {
    match kernel {
        LocalKernel::Reference => conv2d_direct_par(p, input, ker),
        LocalKernel::Fast => conv2d_fast(p, input, ker),
        LocalKernel::Winograd => crate::winograd::conv2d_winograd(p, input, ker),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{conv2d_direct, conv_tile, workload};
    use distconv_tensor::Range4;

    #[test]
    fn whole_tile_bitwise_matches_reference_kernel() {
        for p in [
            Conv2dProblem::square(2, 3, 4, 5, 3),
            Conv2dProblem::new(1, 5, 2, 4, 6, 2, 3, 1, 1),
            Conv2dProblem::new(2, 4, 3, 3, 3, 3, 3, 2, 2),
            Conv2dProblem::new(1, 2, 2, 4, 4, 3, 3, 3, 2),
            Conv2dProblem::new(2, 7, 3, 5, 5, 1, 1, 1, 1), // pointwise
        ] {
            let (input, ker) = workload::<f64>(&p, 31);
            let mut reference = Tensor4::zeros(out_shape(&p));
            conv_tile(&p, &mut reference, &input, &ker);
            let mut fast = Tensor4::zeros(out_shape(&p));
            let mut scratch = ConvScratch::new();
            conv_tile_fast(&p, &mut fast, &input, &ker, &mut scratch);
            assert_eq!(fast.as_slice(), reference.as_slice(), "{p:?}");
        }
    }

    #[test]
    fn f32_bitwise_matches_too() {
        let p = Conv2dProblem::new(2, 5, 3, 6, 4, 3, 2, 2, 1);
        let (input, ker) = workload::<f32>(&p, 8);
        let mut reference = Tensor4::zeros(out_shape(&p));
        conv_tile(&p, &mut reference, &input, &ker);
        let mut fast = Tensor4::zeros(out_shape(&p));
        conv_tile_fast(&p, &mut fast, &input, &ker, &mut ConvScratch::new());
        assert_eq!(fast.as_slice(), reference.as_slice());
    }

    #[test]
    fn accumulates_channel_splits_like_reference() {
        // Same invariant as the reference tile kernel: c-split tiles
        // accumulated in ascending order reproduce the whole result.
        let p = Conv2dProblem::square(2, 3, 4, 5, 3);
        let (input, ker) = workload::<f64>(&p, 13);
        let mut reference = Tensor4::zeros(out_shape(&p));
        conv_tile(&p, &mut reference, &input, &ker);
        let mut out = Tensor4::zeros(out_shape(&p));
        let mut scratch = ConvScratch::new();
        for c0 in [0usize, 2] {
            let in_slice = input.slice(Range4::new(
                [0, c0, 0, 0],
                [p.nb, c0 + 2, p.in_w(), p.in_h()],
            ));
            let ker_slice = ker.slice(Range4::new([0, c0, 0, 0], [p.nk, c0 + 2, p.nr, p.ns]));
            conv_tile_fast(&p, &mut out, &in_slice, &ker_slice, &mut scratch);
        }
        assert_eq!(out.as_slice(), reference.as_slice());
    }

    #[test]
    fn conv2d_fast_matches_direct_bitwise() {
        for p in [
            Conv2dProblem::square(2, 4, 3, 6, 3),
            Conv2dProblem::new(3, 2, 5, 4, 4, 3, 3, 2, 2),
        ] {
            let (input, ker) = workload::<f64>(&p, 77);
            let a = conv2d_direct(&p, &input, &ker);
            let b = conv2d_fast(&p, &input, &ker);
            assert_eq!(a.as_slice(), b.as_slice(), "{p:?}");
        }
    }

    #[test]
    fn dispatch_selects_both_kernels() {
        let p = Conv2dProblem::square(1, 2, 2, 4, 3);
        let (input, ker) = workload::<f64>(&p, 5);
        let a = conv2d(&p, &input, &ker, LocalKernel::Reference);
        let b = conv2d(&p, &input, &ker, LocalKernel::Fast);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn scratch_reuse_across_heterogeneous_tiles() {
        // One arena across tiles of different shapes and strides must
        // not leak state between calls.
        let mut scratch = ConvScratch::new();
        for p in [
            Conv2dProblem::square(1, 4, 4, 6, 3),
            Conv2dProblem::new(2, 3, 2, 3, 5, 2, 2, 2, 2),
            Conv2dProblem::new(1, 1, 1, 2, 2, 1, 1, 1, 1),
        ] {
            let (input, ker) = workload::<f64>(&p, 3);
            let mut reference = Tensor4::zeros(out_shape(&p));
            conv_tile(&p, &mut reference, &input, &ker);
            let mut fast = Tensor4::zeros(out_shape(&p));
            conv_tile_fast(&p, &mut fast, &input, &ker, &mut scratch);
            assert_eq!(fast.as_slice(), reference.as_slice(), "{p:?}");
        }
    }

    #[test]
    #[should_panic(expected = "input tile window too small")]
    fn undersized_window_panics() {
        let p = Conv2dProblem::square(1, 1, 1, 4, 3);
        let mut out = Tensor4::<f64>::zeros(out_shape(&p));
        let input = Tensor4::zeros(distconv_tensor::Shape4::new(1, 1, 3, 3));
        let ker = Tensor4::zeros(ker_shape(&p));
        conv_tile_fast(&p, &mut out, &input, &ker, &mut ConvScratch::new());
    }
}

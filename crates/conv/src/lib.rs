//! # distconv-conv
//!
//! Convolution kernels and the **global-virtual-memory tiled executor**
//! of the paper's Sec. 2.1.
//!
//! Layout conventions (everywhere in the workspace, following the
//! paper's indexing `Out[b,k,w,h] += In[b,c,σw·w+r,σh·h+s]·Ker[k,c,r,s]`):
//!
//! * `In`  : `[N_b, N_c, X, Y]` with `X = σw·(N_w−1)+N_r`,
//!   `Y = σh·(N_h−1)+N_s` (the `r` stencil offsets the `w`-paired axis).
//! * `Ker` : `[N_k, N_c, N_r, N_s]`.
//! * `Out` : `[N_b, N_k, N_w, N_h]`.
//!
//! Contents:
//!
//! * [`kernels`] — `conv2d_direct` (Listing 1 reference),
//!   `conv2d_direct_par` (worker pool), `conv2d_im2col` (matmul-reduction
//!   reference), the shared tile micro-kernel [`kernels::conv_tile`],
//!   and the weight-gradient kernel used by the training-step example.
//! * [`gvm`] — executes Listing 3 (and its `k`/`bhw`-innermost
//!   variants) against an explicit virtual global memory with an
//!   `M`-capacity local buffer set, counting every element copied
//!   between the two. For the `c`-innermost schedule at stride 1 the
//!   measured traffic **equals Eq. 3 exactly** (experiment E3).
//! * [`fast`] — the cache-aware local compute path:
//!   [`fast::conv_tile_fast`] lowers a tile to an implicit-im2col ×
//!   packed-kernel GEMM on the shared register-blocked micro-kernel,
//!   bitwise identical to `conv_tile` but several times faster.
//! * [`winograd`] — `F(2×2, 3×3)` fast bilinear convolution: 2.25×
//!   fewer multiplies on 3×3 stride-1 layers, batched through the same
//!   SIMD-dispatched micro-kernel; reference-equal within a documented
//!   tolerance rather than bitwise (DESIGN.md §7's two-tier policy).
//!
//! Executors dispatch between kernels via
//! [`LocalKernel`](distconv_par::LocalKernel) (DESIGN.md §7).

#![warn(missing_docs)]

pub mod fast;
pub mod gvm;
pub mod kernels;
mod wino_simd;
pub mod winograd;

pub use distconv_par::LocalKernel;
pub use fast::{conv2d, conv2d_fast, conv_tile_fast, conv_tile_fast_rows, ConvScratch};
pub use gvm::{GvmExecutor, GvmMeasurement};
pub use kernels::{conv2d_direct, conv2d_direct_par, conv2d_im2col, conv_tile, grad_ker};
pub use winograd::{conv2d_winograd, conv_tile_winograd, conv_tile_winograd_rows};

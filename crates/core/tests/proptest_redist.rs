//! Property tests for [`distconv_core::redistribution_volume`]'s `O(P)`
//! fast form, on the in-tree `proptest_mini` harness (replay a failing
//! case with `DISTCONV_PROPTEST_SEED=<seed from the failure report>`).
//!
//! The load-bearing property is the first one: the fast form
//! `Σ_c |in_win(c)| − |own out ∩ own in|` must equal the literal
//! `O(P²)` pairwise sum of [`ShardGeometry`] window intersections over
//! arbitrary chains — halos, strides, `P_c > 1` replication and all.
//! The zero-on-identical-grids and swap-symmetry properties only hold
//! in the *pointwise* (`1×1` kernel, stride 1, `P_c = 1`) setting where
//! a rank's next-layer `In` window coincides with its own `Out` window;
//! halos and `c`-replication create genuine traffic even on an
//! unchanged grid, so those tests pin the restricted claim on purpose.
//!
//! [`ShardGeometry`]: distconv_core::distribution::ShardGeometry

use distconv_core::distribution::{out_range, shard_geometry};
use distconv_core::redistribution_volume;
use distconv_cost::{Conv2dProblem, DistPlan, MachineSpec, Planner};
use distconv_par::proptest_mini::{check, Config, Gen};

/// A random producer layer with power-of-two-ish dims so small machines
/// factor, covering halos (`nr, ns ∈ {1,3}`) and non-square spatial
/// extents.
fn arb_prev(g: &mut Gen) -> Conv2dProblem {
    let dims = [1usize, 2, 4, 8];
    Conv2dProblem::new(
        dims[g.usize_in(0, 2)],   // nb
        dims[g.usize_in(1, 3)],   // nk
        dims[g.usize_in(1, 3)],   // nc
        2 * g.usize_in(2, 4),     // nh
        2 * g.usize_in(2, 4),     // nw
        1 + 2 * g.usize_in(0, 1), // nr ∈ {1,3}
        1 + 2 * g.usize_in(0, 1), // ns ∈ {1,3}
        1,
        1,
    )
}

/// A random consumer layer whose input domain is exactly `prev`'s
/// output domain (`N_c = N_k(prev)`, input pixels = output pixels),
/// with random stride/kernel when they tile evenly and a pointwise
/// fallback otherwise.
fn arb_next(g: &mut Gen, prev: &Conv2dProblem) -> Conv2dProblem {
    let nk = [2usize, 4, 8][g.usize_in(0, 2)];
    let (sw, nr) = (g.usize_in(1, 2), 1 + 2 * g.usize_in(0, 1));
    let (sh, ns) = (g.usize_in(1, 2), 1 + 2 * g.usize_in(0, 1));
    let fit = |n: usize, s: usize, r: usize| {
        (n >= r && (n - r).is_multiple_of(s)).then(|| (n - r) / s + 1)
    };
    match (fit(prev.nw, sw, nr), fit(prev.nh, sh, ns)) {
        (Some(nw), Some(nh)) => Conv2dProblem::new(prev.nb, nk, prev.nk, nh, nw, nr, ns, sw, sh),
        _ => Conv2dProblem::new(prev.nb, nk, prev.nk, prev.nh, prev.nw, 1, 1, 1, 1),
    }
}

/// Every grid/regime candidate the tuned planner would consider for
/// `p` — empty when the machine cannot factor this layer (the property
/// closure skips such draws).
fn candidates(p: Conv2dProblem, machine: MachineSpec) -> Vec<DistPlan> {
    Planner::new(p, machine).candidates().unwrap_or_default()
}

/// The literal `O(P²)` definition: for every producer on the
/// `i_c = 0` plane and every *other* consumer, the intersection of the
/// producer's final `Out` range with the consumer's
/// [`shard_geometry`] `In` region.
fn pairwise_volume(prev: &DistPlan, next: &DistPlan) -> u128 {
    let procs = prev.grid.total();
    let mut vol = 0u128;
    for producer in 0..procs {
        let geom = shard_geometry(prev, producer);
        if geom.coords[2] != 0 {
            continue;
        }
        let out_win = out_range(prev, geom.coords);
        for consumer in 0..procs {
            if consumer == producer {
                continue;
            }
            let in_win = shard_geometry(next, consumer).in_region;
            if let Some(i) = out_win.intersect(&in_win) {
                vol += i.len() as u128;
            }
        }
    }
    vol
}

#[test]
fn fast_form_equals_pairwise_shard_geometry_sum() {
    check("redist_fast_equals_pairwise", Config::with_cases(48), |g| {
        let prev = arb_prev(g);
        let next = arb_next(g, &prev);
        let machine = MachineSpec::new([2usize, 4, 8][g.usize_in(0, 2)], 1 << 22);
        let (pc, nc) = (candidates(prev, machine), candidates(next, machine));
        if pc.is_empty() || nc.is_empty() {
            return; // machine does not factor this draw
        }
        let a = &pc[g.usize_in(0, pc.len() - 1)];
        let b = &nc[g.usize_in(0, nc.len() - 1)];
        assert_eq!(
            redistribution_volume(a, b),
            pairwise_volume(a, b),
            "prev={prev:?} grid={:?}  next={next:?} grid={:?}",
            a.grid,
            b.grid
        );
    });
}

#[test]
fn zero_when_consecutive_grids_identical_pointwise() {
    // Pointwise stride-1 layers with P_c = 1: a rank's next-layer In
    // window is exactly its own Out window, so an unchanged grid moves
    // nothing. (With halos or P_c > 1 an unchanged grid still pays
    // real traffic — deliberately out of scope here.)
    check("redist_zero_identical_grids", Config::with_cases(32), |g| {
        let k = [2usize, 4, 8][g.usize_in(0, 2)];
        let p = Conv2dProblem::new(
            [1usize, 2, 4][g.usize_in(0, 2)],
            k,
            k, // c = k so the layer chains with itself
            2 * g.usize_in(2, 4),
            2 * g.usize_in(2, 4),
            1,
            1,
            1,
            1,
        );
        let machine = MachineSpec::new([2usize, 4, 8][g.usize_in(0, 2)], 1 << 22);
        for cand in candidates(p, machine) {
            if cand.grid.pc == 1 {
                assert_eq!(
                    redistribution_volume(&cand, &cand),
                    0,
                    "identical grid {:?} on {p:?}",
                    cand.grid
                );
            }
        }
    });
}

#[test]
fn symmetric_under_grid_swap_pointwise() {
    // Same pointwise P_c = 1 setting: In ≡ Out windows on both sides,
    // so vol(A→B) = N − Σ_r |out_A(r) ∩ out_B(r)| = vol(B→A).
    check("redist_swap_symmetry", Config::with_cases(32), |g| {
        let k = [2usize, 4, 8][g.usize_in(0, 2)];
        let p = Conv2dProblem::new(
            [1usize, 2, 4][g.usize_in(0, 2)],
            k,
            k,
            2 * g.usize_in(2, 4),
            2 * g.usize_in(2, 4),
            1,
            1,
            1,
            1,
        );
        let machine = MachineSpec::new([2usize, 4, 8][g.usize_in(0, 2)], 1 << 22);
        let cands: Vec<DistPlan> = candidates(p, machine)
            .into_iter()
            .filter(|c| c.grid.pc == 1)
            .collect();
        if cands.is_empty() {
            return;
        }
        let a = &cands[g.usize_in(0, cands.len() - 1)];
        let b = &cands[g.usize_in(0, cands.len() - 1)];
        assert_eq!(
            redistribution_volume(a, b),
            redistribution_volume(b, a),
            "grids {:?} vs {:?} on {p:?}",
            a.grid,
            b.grid
        );
    });
}

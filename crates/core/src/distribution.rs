//! Initial data distribution (paper Sec. 2.2, "Initial Data
//! Distribution").
//!
//! The driving observation (quoted): *"For each tensor, one or more of
//! the five loop indices b, c, k, h, w are absent in the indexing
//! expression … identical data slices of a tensor will be accessed by
//! all processors along any missing loop index."* The distribution
//! therefore sub-slices each tensor's per-group slice along `c` across
//! the processors that share it:
//!
//! * `Ker[k, c, r, s]` — missing `b, h, w`: the `(i_c, i_k)` slice
//!   (`W_c × W_k × N_r × N_s` elements) is split along `c` into
//!   `P_b·P_h·P_w` sub-slices, one per rank of the `bhw` fiber.
//! * `In[b, c, x, y]` — missing `k`: the `(i_b, i_c, i_h, i_w)` slice is
//!   split along `c` into `P_k` sub-slices, one per rank of the `k`
//!   fiber.
//! * `Out[b, k, w, h]` — missing `c`: allocated in full on every rank
//!   (replicated along `c` when `P_c > 1`), *"to avoid additional data
//!   movement compared to that required in the global-memory
//!   solution"*.
//!
//! Every shard is materialized deterministically from the workload seed
//! (a pure function of global coordinates), so distribution requires no
//! bootstrap communication and any rank's data can be independently
//! recomputed for verification.

use distconv_cost::DistPlan;
use distconv_simnet::CartGrid;
use distconv_tensor::shape::BlockDist;
use distconv_tensor::{conv_input_extent, Range4, Scalar, Shape4, Tensor4};

/// Seed-offset for the kernel tensor (matches
/// `distconv_conv::kernels::workload`).
pub const KER_SEED_XOR: u64 = 0xABCD_EF01_2345_6789;

/// A rank's placement within the plan's processor grid plus its
/// materialized initial shards.
pub struct RankData<T> {
    /// Grid coordinates `[i_b, i_k, i_c, i_h, i_w]`.
    pub coords: [usize; 5],
    /// Linear index of this rank's position along the `bhw` fiber
    /// (row-major over `(i_b, i_h, i_w)`), used by the `Ker`
    /// sub-slicing.
    pub bhw_pos: usize,
    /// The rank's `Out` slice, zero-initialized
    /// (`[W_b, W_k, W_w, W_h]`, global origin [`RankData::out_origin`]).
    pub out_slice: Tensor4<T>,
    /// Global origin of the `Out` slice.
    pub out_origin: [usize; 4],
    /// The rank's `In` sub-slice
    /// (`[W_b, c_in_count, X_w, Y_h]`, origin [`RankData::in_origin`]).
    pub in_shard: Tensor4<T>,
    /// Global origin of the `In` sub-slice (b, c, x, y).
    pub in_origin: [usize; 4],
    /// Channels (relative to the slice's `W_c` range) covered by the
    /// `In` sub-slice: `[lo, hi)`.
    pub in_c_range: (usize, usize),
    /// The rank's `Ker` sub-slice
    /// (`[W_k, c_ker_count, N_r, N_s]`, origin [`RankData::ker_origin`]).
    pub ker_shard: Tensor4<T>,
    /// Global origin of the `Ker` sub-slice (k, c, r, s).
    pub ker_origin: [usize; 4],
    /// Channels (relative to `W_c`) covered by the `Ker` sub-slice.
    pub ker_c_range: (usize, usize),
}

impl<T: Scalar> RankData<T> {
    /// Total elements across all shards (the initial-distribution
    /// memory footprint the paper's `M_T` denotes).
    pub fn footprint(&self) -> usize {
        self.out_slice.len() + self.in_shard.len() + self.ker_shard.len()
    }
}

/// The grid for a plan (dimension order `[b, k, c, h, w]`, rank id =
/// row-major grid index).
pub fn plan_grid(plan: &DistPlan) -> CartGrid {
    let g = plan.grid;
    CartGrid::new(vec![g.pb, g.pk, g.pc, g.ph, g.pw])
}

/// `In` sub-slice channel distribution: `W_c` channels over the `P_k`
/// fiber.
pub fn in_c_dist(plan: &DistPlan) -> BlockDist {
    BlockDist::new(plan.w.wc, plan.grid.pk)
}

/// `Ker` sub-slice channel distribution: `W_c` channels over the
/// `P_b·P_h·P_w` fiber.
pub fn ker_c_dist(plan: &DistPlan) -> BlockDist {
    BlockDist::new(plan.w.wc, plan.grid.pbhw())
}

/// A rank's shard *geometry*: the global regions its initial `In` and
/// `Ker` sub-slices cover, without materializing any data. Pure
/// function of `(plan, rank_id)` — the degraded-recovery layer uses it
/// to compute redistribution volumes between an old and a shrunken grid
/// by region intersection, exactly like the inter-layer accounting in
/// [`crate::network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardGeometry {
    /// Grid coordinates `[i_b, i_k, i_c, i_h, i_w]`.
    pub coords: [usize; 5],
    /// Linear position along the `bhw` fiber (see [`RankData::bhw_pos`]).
    pub bhw_pos: usize,
    /// Global `In` region `(b, c, x, y)` of the rank's sub-slice.
    pub in_region: Range4,
    /// Channels (relative to `W_c`) of the `In` sub-slice: `[lo, hi)`.
    pub in_c_range: (usize, usize),
    /// Global `Ker` region `(k, c, r, s)` of the rank's sub-slice.
    pub ker_region: Range4,
    /// Channels (relative to `W_c`) of the `Ker` sub-slice.
    pub ker_c_range: (usize, usize),
}

/// Compute rank `rank_id`'s shard geometry for `plan` (data-free twin
/// of [`distribute`] — kept in lockstep by a unit test).
pub fn shard_geometry(plan: &DistPlan, rank_id: usize) -> ShardGeometry {
    let p = &plan.problem;
    let w = plan.w;
    let grid = plan_grid(plan);
    let coords_v = grid.coords_of(rank_id);
    let coords: [usize; 5] = [
        coords_v[0],
        coords_v[1],
        coords_v[2],
        coords_v[3],
        coords_v[4],
    ];
    let [ib, ik, ic, ih, iw] = coords;
    let bhw_pos = (ib * plan.grid.ph + ih) * plan.grid.pw + iw;

    // In sub-slice: channels of the slice split over the k fiber.
    let (c_lo, c_hi) = in_c_dist(plan).range(ik);
    let in_origin = [
        ib * w.wb,
        ic * w.wc + c_lo,
        p.sw * (iw * w.ww),
        p.sh * (ih * w.wh),
    ];
    let in_extents = [
        w.wb,
        c_hi - c_lo,
        conv_input_extent(w.ww, p.sw, p.nr),
        conv_input_extent(w.wh, p.sh, p.ns),
    ];

    // Ker sub-slice: channels of the slice split over the bhw fiber.
    let (kc_lo, kc_hi) = ker_c_dist(plan).range(bhw_pos);
    let ker_origin = [ik * w.wk, ic * w.wc + kc_lo, 0, 0];
    let ker_extents = [w.wk, kc_hi - kc_lo, p.nr, p.ns];

    let hi = |o: [usize; 4], e: [usize; 4]| [o[0] + e[0], o[1] + e[1], o[2] + e[2], o[3] + e[3]];
    ShardGeometry {
        coords,
        bhw_pos,
        in_region: Range4::new(in_origin, hi(in_origin, in_extents)),
        in_c_range: (c_lo, c_hi),
        ker_region: Range4::new(ker_origin, hi(ker_origin, ker_extents)),
        ker_c_range: (kc_lo, kc_hi),
    }
}

/// Materialize rank `rank_id`'s initial data for `plan` from `seed`.
pub fn distribute<T: Scalar>(plan: &DistPlan, rank_id: usize, seed: u64) -> RankData<T> {
    let p = &plan.problem;
    let w = plan.w;
    let geom = shard_geometry(plan, rank_id);
    let [ib, ik, _ic, ih, iw] = geom.coords;

    // --- Out slice: the full work-partition output, zeroed. ---
    let out_origin = [ib * w.wb, ik * w.wk, iw * w.ww, ih * w.wh];
    let out_slice = Tensor4::zeros(Shape4::new(w.wb, w.wk, w.ww, w.wh));

    // --- In sub-slice: channels of the slice split over the k fiber. ---
    let global_in_shape = Shape4::new(p.nb, p.nc, p.in_w(), p.in_h());
    let in_origin = geom.in_region.lo;
    let [eb, ec, ex, ey] = geom.in_region.extents();
    let in_shard = Tensor4::random_window(
        Shape4::new(eb, ec, ex, ey),
        seed,
        in_origin,
        global_in_shape,
    );

    // --- Ker sub-slice: channels of the slice split over the bhw fiber. ---
    let global_ker_shape = Shape4::new(p.nk, p.nc, p.nr, p.ns);
    let ker_origin = geom.ker_region.lo;
    let [kk, kc, kr, ks] = geom.ker_region.extents();
    let ker_shard = Tensor4::random_window(
        Shape4::new(kk, kc, kr, ks),
        seed ^ KER_SEED_XOR,
        ker_origin,
        global_ker_shape,
    );

    RankData {
        coords: geom.coords,
        bhw_pos: geom.bhw_pos,
        out_slice,
        out_origin,
        in_shard,
        in_origin,
        in_c_range: geom.in_c_range,
        ker_shard,
        ker_origin,
        ker_c_range: geom.ker_c_range,
    }
}

/// Global `Out` range covered by a rank's slice.
pub fn out_range(plan: &DistPlan, coords: [usize; 5]) -> Range4 {
    let w = plan.w;
    let [ib, ik, _ic, ih, iw] = coords;
    Range4::new(
        [ib * w.wb, ik * w.wk, iw * w.ww, ih * w.wh],
        [
            (ib + 1) * w.wb,
            (ik + 1) * w.wk,
            (iw + 1) * w.ww,
            (ih + 1) * w.wh,
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use distconv_conv::kernels::workload;
    use distconv_cost::{Conv2dProblem, MachineSpec, Planner};

    fn plan16() -> DistPlan {
        Planner::new(
            Conv2dProblem::square(4, 16, 16, 8, 3),
            MachineSpec::new(16, 1 << 20),
        )
        .plan()
        .unwrap()
    }

    #[test]
    fn shards_match_global_workload() {
        let plan = plan16();
        let p = plan.problem;
        let (input, ker) = workload::<f32>(&p, 99);
        for rank in 0..16 {
            let rd = distribute::<f32>(&plan, rank, 99);
            // Every In shard element equals the global tensor's value.
            for idx in rd.in_shard.shape().full_range().iter() {
                let g = [
                    rd.in_origin[0] + idx[0],
                    rd.in_origin[1] + idx[1],
                    rd.in_origin[2] + idx[2],
                    rd.in_origin[3] + idx[3],
                ];
                assert_eq!(rd.in_shard[idx], input[g], "rank {rank} In at {idx:?}");
            }
            for idx in rd.ker_shard.shape().full_range().iter() {
                let g = [
                    rd.ker_origin[0] + idx[0],
                    rd.ker_origin[1] + idx[1],
                    rd.ker_origin[2] + idx[2],
                    rd.ker_origin[3] + idx[3],
                ];
                assert_eq!(rd.ker_shard[idx], ker[g], "rank {rank} Ker at {idx:?}");
            }
        }
    }

    #[test]
    fn ker_shards_tile_each_slice_exactly() {
        // Within one (i_c, i_k) group, the bhw fiber's Ker shards must
        // partition the W_k × W_c slice with no gaps or overlaps.
        let plan = plan16();
        let grid = plan_grid(&plan);
        let g = plan.grid;
        for ic in 0..g.pc {
            for ik in 0..g.pk {
                let mut covered = vec![false; plan.w.wc];
                for ib in 0..g.pb {
                    for ih in 0..g.ph {
                        for iw in 0..g.pw {
                            let id = grid.index_of(&[ib, ik, ic, ih, iw]);
                            let rd = distribute::<f32>(&plan, id, 1);
                            let (lo, hi) = rd.ker_c_range;
                            for slot in &mut covered[lo..hi] {
                                assert!(!*slot, "channel covered twice");
                                *slot = true;
                            }
                        }
                    }
                }
                assert!(covered.iter().all(|&x| x), "channels uncovered");
            }
        }
    }

    #[test]
    fn in_shards_tile_each_slice_exactly() {
        let plan = plan16();
        let grid = plan_grid(&plan);
        let g = plan.grid;
        for ib in 0..g.pb {
            for ic in 0..g.pc {
                for ih in 0..g.ph {
                    for iw in 0..g.pw {
                        let mut covered = vec![false; plan.w.wc];
                        for ik in 0..g.pk {
                            let id = grid.index_of(&[ib, ik, ic, ih, iw]);
                            let rd = distribute::<f32>(&plan, id, 1);
                            let (lo, hi) = rd.in_c_range;
                            for slot in &mut covered[lo..hi] {
                                assert!(!*slot);
                                *slot = true;
                            }
                        }
                        assert!(covered.iter().all(|&x| x));
                    }
                }
            }
        }
    }

    #[test]
    fn out_slices_cover_output_with_c_replication() {
        let plan = plan16();
        let p = plan.problem;
        let grid = plan_grid(&plan);
        let mut count = vec![0usize; (p.size_out()) as usize];
        let out_shape = Shape4::new(p.nb, p.nk, p.nw, p.nh);
        for id in 0..16 {
            let coords_v = grid.coords_of(id);
            let r = out_range(
                &plan,
                [
                    coords_v[0],
                    coords_v[1],
                    coords_v[2],
                    coords_v[3],
                    coords_v[4],
                ],
            );
            for idx in r.iter() {
                count[out_shape.offset(idx)] += 1;
            }
        }
        // Every output element covered exactly P_c times.
        assert!(count.iter().all(|&c| c == plan.grid.pc));
    }

    #[test]
    fn geometry_matches_distribute() {
        // shard_geometry is the data-free twin of distribute: same
        // coords, same origins, same shapes, for every rank.
        let plan = plan16();
        for r in 0..16 {
            let geom = shard_geometry(&plan, r);
            let data = distribute::<f32>(&plan, r, 7);
            assert_eq!(geom.coords, data.coords);
            assert_eq!(geom.bhw_pos, data.bhw_pos);
            assert_eq!(geom.in_region.lo, data.in_origin);
            assert_eq!(geom.in_region.shape(), data.in_shard.shape());
            assert_eq!(geom.in_c_range, data.in_c_range);
            assert_eq!(geom.ker_region.lo, data.ker_origin);
            assert_eq!(geom.ker_region.shape(), data.ker_shard.shape());
            assert_eq!(geom.ker_c_range, data.ker_c_range);
        }
    }

    #[test]
    fn footprint_tracks_m_t() {
        // Total initial footprint across ranks ≈ Pc·|Out| + |In| + |Ker|
        // (exact when Ph = Pw = 1: no spatial halo overlap).
        let p = Conv2dProblem::square(4, 16, 16, 8, 3);
        let plan = Planner::new(p, MachineSpec::new(8, 1 << 20))
            .with_forced_pc(1)
            .plan()
            .unwrap();
        if plan.grid.ph == 1 && plan.grid.pw == 1 {
            let total: usize = (0..8)
                .map(|r| distribute::<f32>(&plan, r, 0).footprint())
                .sum();
            let expect = p.size_out() as usize + p.size_in() as usize + p.size_ker() as usize;
            assert_eq!(total, expect);
        }
    }
}

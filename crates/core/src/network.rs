//! Multi-layer networks: chain distributed convolutions with
//! inter-layer **redistribution** — the system-level extension that
//! turns the paper's single-layer algorithm into something a training
//! framework could adopt.
//!
//! Each layer gets its own plan (its own processor grid and tiling,
//! chosen by the planner for *that* layer's shape — early layers tend
//! to spatial/batch grids, late layers to `k`/`c` grids). Between
//! layers, the produced `Out` slices must become the next layer's `In`
//! shards: every (producer, consumer) pair exchanges exactly the
//! intersection of the producer's `Out` range with the consumer's `In`
//! shard window (in the next layer's coordinates, `k → c`, output
//! pixels → input pixels). Because all shard geometry is static, every
//! rank computes the full exchange pattern locally — no negotiation
//! traffic.
//!
//! The redistribution volume is an *exact* analytic quantity
//! ([`redistribution_volume`], pinned against measured counters in
//! tests), and is the price the per-layer optimal grids pay for
//! changing shape mid-network — an effect the single-layer paper does
//! not model, surfaced here as a first-class reported cost.

use crate::distribution::{distribute, out_range, RankData};
use crate::exec::CoreError;
use crate::layout::{
    consumer_in_window, forward_layer, producer_out_window, redistribute_to_next, LayerShards,
    RankLayout,
};
use distconv_conv::kernels::{conv2d_direct_par, in_shape, ker_shape};
use distconv_cost::{Conv2dProblem, DistPlan, MachineSpec, PlanError, Planner};
use distconv_simnet::{Machine, MachineConfig, Rank, StatsSnapshot};
use distconv_tensor::{Scalar, Shape4, Tensor4};
use distconv_trace::{ConformanceReport, ConformanceRow, Tolerance};

const TAG_REDIST_BASE: u64 = 0x0E00_0000;

/// A planned multi-layer network.
#[derive(Clone, Debug)]
pub struct NetworkPlan {
    /// Per-layer plans (all on the same machine).
    pub layers: Vec<DistPlan>,
    /// Exact redistribution volume between consecutive layers
    /// (`layers.len() − 1` entries).
    pub redist_volumes: Vec<u128>,
}

impl NetworkPlan {
    /// Plan every layer of `problems` on `machine`, verifying that
    /// consecutive layers are shape-compatible
    /// (`out(i) == in(i+1)`: same batch, `N_k(i) = N_c(i+1)`, output
    /// pixels = input pixels).
    pub fn plan(problems: &[Conv2dProblem], machine: MachineSpec) -> Result<Self, NetworkError> {
        check_shapes(problems)?;
        let layers = problems
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                Planner::new(p, machine)
                    .plan()
                    .map_err(|e| NetworkError::Plan {
                        layer: i,
                        source: e,
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::from_layers(layers))
    }

    /// Plan the network as a whole: a dynamic program over each layer's
    /// candidate set ([`Planner::candidates`] — the memory/communication
    /// Pareto frontier plus the greedy winner) minimizing the
    /// **network** objective
    ///
    /// ```text
    /// Σ_i P · cost_D(layer i)  +  Σ_i redistribution_volume(i, i+1)
    /// ```
    ///
    /// in total elements moved (`cost_D` is per-processor, so it is
    /// scaled by `P`; the redistribution term is already a total). The
    /// per-layer greedy grid is always a candidate, so the tuned plan's
    /// objective is ≤ the greedy [`NetworkPlan::plan`]'s by
    /// construction — strictly lower whenever paying a slightly
    /// sub-optimal layer grid (or a different Case 1/Case 2 regime)
    /// avoids a larger inter-layer reshuffle, the whole-network effect
    /// the single-layer paper does not model.
    pub fn plan_tuned(
        problems: &[Conv2dProblem],
        machine: MachineSpec,
    ) -> Result<Self, NetworkError> {
        check_shapes(problems)?;
        let sets = problems
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                Planner::new(p, machine)
                    .candidates()
                    .map_err(|e| NetworkError::Plan {
                        layer: i,
                        source: e,
                    })
            })
            .collect::<Result<Vec<Vec<DistPlan>>, _>>()?;
        let procs = machine.p as f64;

        // Viterbi over layers: best[j] = cheapest objective of any
        // prefix ending in candidate j of the current layer.
        let mut best: Vec<f64> = sets[0].iter().map(|c| procs * c.predicted.cost_d).collect();
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(sets.len().saturating_sub(1));
        for window in sets.windows(2) {
            let (prev_set, cur_set) = (&window[0], &window[1]);
            let mut cur_best = vec![f64::INFINITY; cur_set.len()];
            let mut cur_back = vec![0usize; cur_set.len()];
            for (j, cand) in cur_set.iter().enumerate() {
                let own = procs * cand.predicted.cost_d;
                for (k, prev) in prev_set.iter().enumerate() {
                    let total = best[k] + redistribution_volume(prev, cand) as f64 + own;
                    if total < cur_best[j] {
                        cur_best[j] = total;
                        cur_back[j] = k;
                    }
                }
            }
            best = cur_best;
            back.push(cur_back);
        }

        // Backtrack the winning path.
        let mut j = best
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
            .map(|(j, _)| j)
            .expect("candidate sets are non-empty");
        let mut picks = vec![j; sets.len()];
        for (i, links) in back.iter().enumerate().rev() {
            j = links[j];
            picks[i] = j;
        }
        let layers = picks
            .iter()
            .zip(&sets)
            .map(|(&j, set)| set[j])
            .collect::<Vec<_>>();
        Ok(Self::from_layers(layers))
    }

    fn from_layers(layers: Vec<DistPlan>) -> Self {
        let redist_volumes = layers
            .windows(2)
            .map(|w| redistribution_volume(&w[0], &w[1]))
            .collect();
        NetworkPlan {
            layers,
            redist_volumes,
        }
    }

    /// Total exact redistribution volume across all layer boundaries.
    pub fn total_redist(&self) -> u128 {
        self.redist_volumes.iter().sum()
    }

    /// The whole-network objective [`NetworkPlan::plan_tuned`]
    /// minimizes, in total elements moved:
    /// `Σ P·cost_D(layer) + Σ redistribution_volume`.
    pub fn predicted_total_cost(&self) -> f64 {
        let layer_cost: f64 = self
            .layers
            .iter()
            .map(|l| l.machine.p as f64 * l.predicted.cost_d)
            .sum();
        layer_cost + self.total_redist() as f64
    }
}

/// Verify `out(i) == in(i+1)` for every consecutive pair: same batch,
/// `N_k(i) = N_c(i+1)`, output pixels = input pixels.
fn check_shapes(problems: &[Conv2dProblem]) -> Result<(), NetworkError> {
    if problems.is_empty() {
        return Err(NetworkError::Empty);
    }
    for (i, w) in problems.windows(2).enumerate() {
        let (a, b) = (&w[0], &w[1]);
        let ok = a.nb == b.nb && a.nk == b.nc && a.nw == b.in_w() && a.nh == b.in_h();
        if !ok {
            return Err(NetworkError::ShapeMismatch {
                layer: i,
                out: (a.nb, a.nk, a.nw, a.nh),
                next_in: (b.nb, b.nc, b.in_w(), b.in_h()),
            });
        }
    }
    Ok(())
}

/// Network-level errors.
#[derive(Clone, Debug, PartialEq)]
pub enum NetworkError {
    /// No layers given.
    Empty,
    /// `out(layer) != in(layer+1)`.
    ShapeMismatch {
        /// Index of the producing layer.
        layer: usize,
        /// Producer output `(b, k, w, h)`.
        out: (usize, usize, usize, usize),
        /// Consumer input `(b, c, x, y)`.
        next_in: (usize, usize, usize, usize),
    },
    /// A layer could not be planned.
    Plan {
        /// Which layer failed.
        layer: usize,
        /// The planner's error.
        source: PlanError,
    },
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::Empty => write!(f, "network has no layers"),
            NetworkError::ShapeMismatch {
                layer,
                out,
                next_in,
            } => write!(
                f,
                "layer {layer} output {out:?} does not match layer {} input {next_in:?}",
                layer + 1
            ),
            NetworkError::Plan { layer, source } => {
                write!(f, "layer {layer} unplannable: {source}")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// Exact inter-rank redistribution volume between two consecutive
/// layers: the sum over (producer, consumer) pairs, excluding
/// self-pairs, of the producer `Out`-window / consumer `In`-window
/// intersections.
///
/// Computed in `O(P)` rather than by the literal `O(P²)` pairwise sum:
/// the producer `Out` windows on the `i_c = 0` plane exactly partition
/// the global output domain, and every consumer `In` window is a
/// sub-box of that domain, so each consumer receives exactly
/// `|in_win|` elements in total, of which the self-pair (data already
/// resident, no network traffic) contributes
/// `|own out_win ∩ own in_win|`:
///
/// ```text
/// vol = Σ_consumers |in_win(c)| − |out_win(c) ∩ in_win(c)|
/// ```
///
/// The equivalence with the pairwise [`shard_geometry`]-intersection
/// sum is property-tested over random chains (`proptest_redist`). The
/// linear form is what makes [`NetworkPlan::plan_tuned`]'s DP
/// affordable at `P = 4096` with tens of candidates per layer.
///
/// [`shard_geometry`]: crate::distribution::shard_geometry
pub fn redistribution_volume(prev: &DistPlan, next: &DistPlan) -> u128 {
    let procs = prev.grid.total();
    debug_assert_eq!(procs, next.grid.total(), "same machine");
    let mut vol = 0u128;
    for consumer in 0..procs {
        let in_win = consumer_in_window(next, consumer);
        vol += in_win.len() as u128;
        if let Some(own_out) = producer_out_window(prev, consumer) {
            if let Some(i) = own_out.intersect(&in_win) {
                vol -= i.len() as u128; // local copy, not network traffic
            }
        }
    }
    vol
}

/// Report of a full network forward pass.
#[derive(Clone, Debug)]
pub struct NetworkReport {
    /// The executed plan.
    pub plan: NetworkPlan,
    /// Measured counters for the whole run (all layers +
    /// redistribution).
    pub stats: StatsSnapshot,
    /// Expected per-layer forward volumes.
    pub expected_layers: Vec<u128>,
    /// Exact expected redistribution volume.
    pub expected_redist: u128,
    /// Final output verified against the chained sequential reference.
    pub verified: bool,
    /// Largest per-rank peak memory.
    pub max_peak_mem: u64,
    /// Simulated α–β time (volume-based estimate).
    pub sim_time: f64,
    /// Lamport communication makespan.
    pub makespan: f64,
}

impl NetworkReport {
    /// Total expected volume (layers + redistribution).
    pub fn expected_total(&self) -> u128 {
        self.expected_layers.iter().sum::<u128>() + self.expected_redist
    }

    /// Total measured volume: algorithmic sends plus redistribution
    /// sends (the two are counted under separate traffic classes).
    pub fn measured_total(&self) -> u128 {
        self.stats.total_elems() as u128 + self.stats.redist.elems as u128
    }

    /// Element-exact conformance of this run: predicted vs measured
    /// algorithmic volume, redistribution volume, and their sum — all
    /// with [`Tolerance::Exact`]. The redistribution row is the new
    /// check the split traffic accounting enables: the analytic
    /// [`redistribution_volume`] must equal the wire counter to the
    /// element.
    pub fn conformance(&self) -> ConformanceReport {
        let layers: u128 = self.expected_layers.iter().sum();
        let mut report = ConformanceReport::new();
        report.push(ConformanceRow::new(
            "network/layer-volume",
            self.stats.total_elems() as f64,
            layers as f64,
            Tolerance::Exact,
        ));
        report.push(ConformanceRow::new(
            "network/redist-volume",
            self.stats.redist.elems as f64,
            self.expected_redist as f64,
            Tolerance::Exact,
        ));
        report.push(ConformanceRow::new(
            "network/total-volume",
            self.measured_total() as f64,
            self.expected_total() as f64,
            Tolerance::Exact,
        ));
        report
    }
}

/// One rank's share of the final layer's output: its grid coordinates,
/// the global `[b, k, x, y]` origin of its reduced `Out` slice, and the
/// slice itself. Only ranks on the `i_c = 0` plane produce one; across
/// those ranks the slices exactly partition the output domain.
pub type NetworkOut<T> = ([usize; 5], [usize; 4], Tensor4<T>);

/// Run a network forward pass under `plan`, verifying the final layer's
/// output against the chained sequential reference. Layer `i`'s kernel
/// uses seed `seed ^ KER_SEED_XOR ^ i`-derived values via the usual
/// deterministic materialization.
pub fn run_network<T: Scalar>(
    plan: &NetworkPlan,
    seed: u64,
    cfg: MachineConfig,
) -> Result<NetworkReport, CoreError> {
    run_network_with_outputs::<T>(plan, seed, cfg).map(|(r, _)| r)
}

/// [`run_network`], additionally returning every rank's verified final
/// output slice. The batch-dispatch entry point ([`crate::batch`])
/// uses the slices to attribute results back to individual batch
/// samples; everything else should keep calling [`run_network`] and
/// skip materializing them.
pub fn run_network_with_outputs<T: Scalar>(
    plan: &NetworkPlan,
    seed: u64,
    cfg: MachineConfig,
) -> Result<(NetworkReport, Vec<NetworkOut<T>>), CoreError> {
    let procs = plan.layers[0].grid.total();
    let report =
        Machine::try_run::<T, _, _>(procs, cfg, |rank| network_rank_body::<T>(rank, plan, seed))?;

    // --- Sequential reference: chain the layers. ---
    let first = plan.layers[0].problem;
    let mut act = Tensor4::<T>::random(in_shape(&first), seed);
    for (i, lp) in plan.layers.iter().enumerate() {
        let ker = Tensor4::<T>::random(ker_shape(&lp.problem), layer_ker_seed(seed, i));
        act = conv2d_direct_par(&lp.problem, &act, &ker);
        if i + 1 < plan.layers.len() {
            // Out [b,k,w,h] becomes In [b,c,x,y] unchanged.
            let next = plan.layers[i + 1].problem;
            debug_assert_eq!(act.shape(), in_shape(&next));
        }
    }
    let last = *plan.layers.last().expect("non-empty");
    let tol = {
        let depth: usize = plan
            .layers
            .iter()
            .map(|l| l.problem.nc * l.problem.nr * l.problem.ns)
            .sum();
        let eps = if std::mem::size_of::<T>() == 4 {
            1e-5
        } else {
            1e-12
        };
        eps * depth as f64 * 8.0
    };
    let mut worst = 0.0f64;
    for (coords, origin, slice) in report.results.iter().flatten() {
        let _ = origin;
        let r = out_range(&last, *coords);
        let expect = act.pack_range(r);
        for (a, b) in slice.as_slice().iter().zip(expect.iter()) {
            let (x, y) = (a.to_f64(), b.to_f64());
            let denom = x.abs().max(y.abs()).max(1.0);
            worst = worst.max((x - y).abs() / denom);
        }
    }
    if worst > tol {
        return Err(CoreError::VerificationFailed { max_rel_err: worst });
    }

    let net_report = NetworkReport {
        expected_layers: plan
            .layers
            .iter()
            .map(|l| crate::expected_volumes(l).total())
            .collect(),
        expected_redist: plan.total_redist(),
        plan: plan.clone(),
        verified: true,
        max_peak_mem: report.peak_mem.iter().copied().max().unwrap_or(0),
        sim_time: report.sim_time,
        makespan: report.makespan,
        stats: report.stats,
    };
    let outputs = report.results.into_iter().flatten().collect();
    Ok((net_report, outputs))
}

fn layer_ker_seed(seed: u64, layer: usize) -> u64 {
    seed ^ crate::distribution::KER_SEED_XOR ^ ((layer as u64) << 48)
}

type NetOut<T> = Option<([usize; 5], [usize; 4], Tensor4<T>)>;

fn network_rank_body<T: Scalar>(rank: &Rank<T>, plan: &NetworkPlan, seed: u64) -> NetOut<T> {
    let mut carried_in: Option<Tensor4<T>> = None; // shard for the next layer

    let mut last_out: NetOut<T> = None;
    for (li, lp) in plan.layers.iter().enumerate() {
        let RankData {
            coords,
            bhw_pos,
            mut out_slice,
            out_origin,
            in_shard: seed_in_shard,
            in_origin,
            in_c_range: _,
            ker_shard: _,
            ker_origin,
            ker_c_range: _,
        } = distribute::<T>(lp, rank.id(), seed);
        // Layer kernels use per-layer seeds; the distribution helper
        // materialized layer-0-seeded kernels — rebuild with the right
        // seed (cheap; shapes identical).
        let ker_shard = {
            let shape = {
                let (kc_lo, kc_hi) = crate::distribution::ker_c_dist(lp).range(bhw_pos);
                Shape4::new(lp.w.wk, kc_hi - kc_lo, lp.problem.nr, lp.problem.ns)
            };
            Tensor4::<T>::random_window(
                shape,
                layer_ker_seed(seed, li),
                ker_origin,
                ker_shape(&lp.problem),
            )
        };
        // First layer: input from the seed; later layers: from
        // redistribution.
        let in_shard = match carried_in.take() {
            Some(sh) => sh,
            None => seed_in_shard,
        };
        let _lease = rank
            .mem()
            .lease_or_panic((out_slice.len() + in_shard.len() + ker_shard.len()) as u64);

        let layout = RankLayout::new(lp, rank);
        let shards = LayerShards {
            in_shard: &in_shard,
            in_origin,
            ker_shard: &ker_shard,
            ker_origin,
            out_origin,
        };
        forward_layer(
            lp,
            rank,
            &layout,
            &shards,
            distconv_par::LocalKernel::from_env(),
            distconv_par::CommMode::from_env(),
            &mut out_slice,
        );

        if li + 1 < plan.layers.len() {
            let next = &plan.layers[li + 1];
            carried_in = Some(redistribute_to_next(
                rank,
                lp,
                next,
                &out_slice,
                out_origin,
                TAG_REDIST_BASE + li as u64,
            ));
        } else {
            last_out = if layout.ic() == 0 {
                Some((coords, out_origin, out_slice))
            } else {
                None
            };
        }
    }
    last_out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-layer chain: 8×8 → 6×6 → 4×4 outputs, channels 4 → 8 → 8 → 4.
    fn chain() -> Vec<Conv2dProblem> {
        vec![
            Conv2dProblem::new(2, 8, 4, 8, 8, 3, 3, 1, 1), // in 10x10
            Conv2dProblem::new(2, 8, 8, 6, 6, 3, 3, 1, 1), // in 8x8
            Conv2dProblem::new(2, 4, 8, 4, 4, 3, 3, 1, 1), // in 6x6
        ]
    }

    #[test]
    fn shape_compatibility_enforced() {
        let mut bad = chain();
        bad[1] = Conv2dProblem::new(2, 8, 8, 5, 5, 3, 3, 1, 1);
        let err = NetworkPlan::plan(&bad, MachineSpec::new(4, 1 << 20)).unwrap_err();
        assert!(
            matches!(err, NetworkError::ShapeMismatch { layer: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn network_verified_and_volume_exact() {
        for procs in [1usize, 2, 4] {
            let plan = NetworkPlan::plan(&chain(), MachineSpec::new(procs, 1 << 20)).unwrap();
            let r = run_network::<f64>(&plan, 13, MachineConfig::default()).expect("verified");
            assert!(r.verified, "P={procs}");
            // The two traffic classes are pinned separately: the
            // algorithmic counter must hold exactly the per-layer
            // closed forms, the redistribution counter exactly the
            // analytic inter-layer volume.
            assert_eq!(
                r.stats.total_elems() as u128,
                r.expected_layers.iter().sum::<u128>(),
                "P={procs}: algorithmic volume"
            );
            assert_eq!(
                r.stats.redist.elems as u128, r.expected_redist,
                "P={procs}: redistribution volume"
            );
            assert_eq!(r.measured_total(), r.expected_total(), "P={procs}: total");
            let conf = r.conformance();
            assert!(conf.pass(), "P={procs}: {:?}", conf.failures());
        }
    }

    #[test]
    fn tuned_plan_never_worse_and_runs_verified() {
        for procs in [2usize, 4, 8] {
            let machine = MachineSpec::new(procs, 1 << 20);
            let greedy = NetworkPlan::plan(&chain(), machine).unwrap();
            let tuned = NetworkPlan::plan_tuned(&chain(), machine).unwrap();
            assert!(
                tuned.predicted_total_cost() <= greedy.predicted_total_cost(),
                "P={procs}: tuned {} > greedy {}",
                tuned.predicted_total_cost(),
                greedy.predicted_total_cost()
            );
            let r = run_network::<f64>(&tuned, 29, MachineConfig::default()).expect("verified");
            assert!(r.verified, "P={procs}");
            let conf = r.conformance();
            assert!(conf.pass(), "P={procs}: {:?}", conf.failures());
        }
    }

    #[test]
    fn tuned_plan_rejects_bad_shapes() {
        let mut bad = chain();
        bad[1] = Conv2dProblem::new(2, 8, 8, 5, 5, 3, 3, 1, 1);
        let err = NetworkPlan::plan_tuned(&bad, MachineSpec::new(4, 1 << 20)).unwrap_err();
        assert!(
            matches!(err, NetworkError::ShapeMismatch { layer: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn redistribution_volume_zero_on_single_rank() {
        let plan = NetworkPlan::plan(&chain(), MachineSpec::new(1, 1 << 20)).unwrap();
        assert_eq!(plan.total_redist(), 0);
    }

    #[test]
    fn redistribution_conserves_data() {
        // Total elements received across consumers must cover each In
        // shard exactly: Σ intersections (incl. self) = Σ |In shards|.
        let plan = NetworkPlan::plan(&chain(), MachineSpec::new(4, 1 << 20)).unwrap();
        for w in plan.layers.windows(2) {
            let (prev, next) = (&w[0], &w[1]);
            let procs = prev.grid.total();
            for consumer in 0..procs {
                let in_win = consumer_in_window(next, consumer);
                let covered: usize = (0..procs)
                    .filter_map(|p| producer_out_window(prev, p))
                    .filter_map(|ow| ow.intersect(&in_win))
                    .map(|i| i.len())
                    .sum();
                assert_eq!(covered, in_win.len(), "consumer {consumer} shard coverage");
            }
        }
    }
}

//! Multi-layer networks: chain distributed convolutions with
//! inter-layer **redistribution** — the system-level extension that
//! turns the paper's single-layer algorithm into something a training
//! framework could adopt.
//!
//! Each layer gets its own plan (its own processor grid and tiling,
//! chosen by the planner for *that* layer's shape — early layers tend
//! to spatial/batch grids, late layers to `k`/`c` grids). Between
//! layers, the produced `Out` slices must become the next layer's `In`
//! shards: every (producer, consumer) pair exchanges exactly the
//! intersection of the producer's `Out` range with the consumer's `In`
//! shard window (in the next layer's coordinates, `k → c`, output
//! pixels → input pixels). Because all shard geometry is static, every
//! rank computes the full exchange pattern locally — no negotiation
//! traffic.
//!
//! The redistribution volume is an *exact* analytic quantity
//! ([`redistribution_volume`], pinned against measured counters in
//! tests), and is the price the per-layer optimal grids pay for
//! changing shape mid-network — an effect the single-layer paper does
//! not model, surfaced here as a first-class reported cost.

use crate::distribution::{distribute, in_c_dist, out_range, plan_grid, RankData};
use crate::exec::CoreError;
use distconv_conv::kernels::{conv2d_direct_par, in_shape, ker_shape};
use distconv_cost::{Conv2dProblem, DistPlan, MachineSpec, PlanError, Planner};
use distconv_simnet::{Machine, MachineConfig, Rank, StatsSnapshot};
use distconv_tensor::{conv_input_extent, Range4, Scalar, Shape4, Tensor4};

const TAG_REDIST_BASE: u64 = 0x0E00_0000;

/// A planned multi-layer network.
#[derive(Clone, Debug)]
pub struct NetworkPlan {
    /// Per-layer plans (all on the same machine).
    pub layers: Vec<DistPlan>,
    /// Exact redistribution volume between consecutive layers
    /// (`layers.len() − 1` entries).
    pub redist_volumes: Vec<u128>,
}

impl NetworkPlan {
    /// Plan every layer of `problems` on `machine`, verifying that
    /// consecutive layers are shape-compatible
    /// (`out(i) == in(i+1)`: same batch, `N_k(i) = N_c(i+1)`, output
    /// pixels = input pixels).
    pub fn plan(problems: &[Conv2dProblem], machine: MachineSpec) -> Result<Self, NetworkError> {
        if problems.is_empty() {
            return Err(NetworkError::Empty);
        }
        for (i, w) in problems.windows(2).enumerate() {
            let (a, b) = (&w[0], &w[1]);
            let ok = a.nb == b.nb && a.nk == b.nc && a.nw == b.in_w() && a.nh == b.in_h();
            if !ok {
                return Err(NetworkError::ShapeMismatch {
                    layer: i,
                    out: (a.nb, a.nk, a.nw, a.nh),
                    next_in: (b.nb, b.nc, b.in_w(), b.in_h()),
                });
            }
        }
        let layers = problems
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                Planner::new(p, machine)
                    .plan()
                    .map_err(|e| NetworkError::Plan {
                        layer: i,
                        source: e,
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let redist_volumes = layers
            .windows(2)
            .map(|w| redistribution_volume(&w[0], &w[1]))
            .collect();
        Ok(NetworkPlan {
            layers,
            redist_volumes,
        })
    }

    /// Total exact redistribution volume across all layer boundaries.
    pub fn total_redist(&self) -> u128 {
        self.redist_volumes.iter().sum()
    }
}

/// Network-level errors.
#[derive(Clone, Debug, PartialEq)]
pub enum NetworkError {
    /// No layers given.
    Empty,
    /// `out(layer) != in(layer+1)`.
    ShapeMismatch {
        /// Index of the producing layer.
        layer: usize,
        /// Producer output `(b, k, w, h)`.
        out: (usize, usize, usize, usize),
        /// Consumer input `(b, c, x, y)`.
        next_in: (usize, usize, usize, usize),
    },
    /// A layer could not be planned.
    Plan {
        /// Which layer failed.
        layer: usize,
        /// The planner's error.
        source: PlanError,
    },
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::Empty => write!(f, "network has no layers"),
            NetworkError::ShapeMismatch {
                layer,
                out,
                next_in,
            } => write!(
                f,
                "layer {layer} output {out:?} does not match layer {} input {next_in:?}",
                layer + 1
            ),
            NetworkError::Plan { layer, source } => {
                write!(f, "layer {layer} unplannable: {source}")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// The `In`-shard window (in the *consumer* layer's input coordinates,
/// which are the *producer* layer's output coordinates) that consumer
/// rank `rank_id` of `next` must receive.
fn consumer_in_window(next: &DistPlan, rank_id: usize) -> Range4 {
    let p = &next.problem;
    let w = next.w;
    let grid = plan_grid(next);
    let coords = grid.coords_of(rank_id);
    let (ib, ik, ic, ih, iw) = (coords[0], coords[1], coords[2], coords[3], coords[4]);
    let (c_lo, c_hi) = in_c_dist(next).range(ik);
    let b0 = ib * w.wb;
    let x0 = p.sw * (iw * w.ww);
    let y0 = p.sh * (ih * w.wh);
    Range4::new(
        [b0, ic * w.wc + c_lo, x0, y0],
        [
            b0 + w.wb,
            ic * w.wc + c_hi,
            x0 + conv_input_extent(w.ww, p.sw, p.nr),
            y0 + conv_input_extent(w.wh, p.sh, p.ns),
        ],
    )
}

/// The `Out` range (in output = next-input coordinates, reordered to
/// `[b, c(=k), x(=w), y(=h)]`) produced by rank `rank_id` of `prev` —
/// `None` for ranks off the `i_c = 0` plane (they hold no final data).
fn producer_out_window(prev: &DistPlan, rank_id: usize) -> Option<Range4> {
    let grid = plan_grid(prev);
    let coords = grid.coords_of(rank_id);
    if coords[2] != 0 {
        return None;
    }
    let r = out_range(
        prev,
        [coords[0], coords[1], coords[2], coords[3], coords[4]],
    );
    // Out is [b, k, w, h]; as next-layer In coordinates that is
    // [b, c, x, y] with the same axis order.
    Some(r)
}

/// Exact inter-rank redistribution volume between two consecutive
/// layers: the sum over producer/consumer pairs (excluding self-pairs)
/// of their window intersections.
pub fn redistribution_volume(prev: &DistPlan, next: &DistPlan) -> u128 {
    let procs = prev.grid.total();
    debug_assert_eq!(procs, next.grid.total(), "same machine");
    let mut vol = 0u128;
    for producer in 0..procs {
        let Some(out_win) = producer_out_window(prev, producer) else {
            continue;
        };
        for consumer in 0..procs {
            if consumer == producer {
                continue; // local copy, not network traffic
            }
            let in_win = consumer_in_window(next, consumer);
            if let Some(i) = out_win.intersect(&in_win) {
                vol += i.len() as u128;
            }
        }
    }
    vol
}

/// Report of a full network forward pass.
#[derive(Clone, Debug)]
pub struct NetworkReport {
    /// The executed plan.
    pub plan: NetworkPlan,
    /// Measured counters for the whole run (all layers +
    /// redistribution).
    pub stats: StatsSnapshot,
    /// Expected per-layer forward volumes.
    pub expected_layers: Vec<u128>,
    /// Exact expected redistribution volume.
    pub expected_redist: u128,
    /// Final output verified against the chained sequential reference.
    pub verified: bool,
    /// Largest per-rank peak memory.
    pub max_peak_mem: u64,
    /// Simulated α–β time (volume-based estimate).
    pub sim_time: f64,
    /// Lamport communication makespan.
    pub makespan: f64,
}

impl NetworkReport {
    /// Total expected volume (layers + redistribution).
    pub fn expected_total(&self) -> u128 {
        self.expected_layers.iter().sum::<u128>() + self.expected_redist
    }
}

/// Run a network forward pass under `plan`, verifying the final layer's
/// output against the chained sequential reference. Layer `i`'s kernel
/// uses seed `seed ^ KER_SEED_XOR ^ i`-derived values via the usual
/// deterministic materialization.
pub fn run_network<T: Scalar>(
    plan: &NetworkPlan,
    seed: u64,
    cfg: MachineConfig,
) -> Result<NetworkReport, CoreError> {
    let procs = plan.layers[0].grid.total();
    let report =
        Machine::try_run::<T, _, _>(procs, cfg, |rank| network_rank_body::<T>(rank, plan, seed))?;

    // --- Sequential reference: chain the layers. ---
    let first = plan.layers[0].problem;
    let mut act = Tensor4::<T>::random(in_shape(&first), seed);
    for (i, lp) in plan.layers.iter().enumerate() {
        let ker = Tensor4::<T>::random(ker_shape(&lp.problem), layer_ker_seed(seed, i));
        act = conv2d_direct_par(&lp.problem, &act, &ker);
        if i + 1 < plan.layers.len() {
            // Out [b,k,w,h] becomes In [b,c,x,y] unchanged.
            let next = plan.layers[i + 1].problem;
            debug_assert_eq!(act.shape(), in_shape(&next));
        }
    }
    let last = *plan.layers.last().expect("non-empty");
    let tol = {
        let depth: usize = plan
            .layers
            .iter()
            .map(|l| l.problem.nc * l.problem.nr * l.problem.ns)
            .sum();
        let eps = if std::mem::size_of::<T>() == 4 {
            1e-5
        } else {
            1e-12
        };
        eps * depth as f64 * 8.0
    };
    let mut worst = 0.0f64;
    for (coords, origin, slice) in report.results.iter().flatten() {
        let _ = origin;
        let r = out_range(&last, *coords);
        let expect = act.pack_range(r);
        for (a, b) in slice.as_slice().iter().zip(expect.iter()) {
            let (x, y) = (a.to_f64(), b.to_f64());
            let denom = x.abs().max(y.abs()).max(1.0);
            worst = worst.max((x - y).abs() / denom);
        }
    }
    if worst > tol {
        return Err(CoreError::VerificationFailed { max_rel_err: worst });
    }

    Ok(NetworkReport {
        expected_layers: plan
            .layers
            .iter()
            .map(|l| crate::expected_volumes(l).total())
            .collect(),
        expected_redist: plan.total_redist(),
        plan: plan.clone(),
        verified: true,
        max_peak_mem: report.peak_mem.iter().copied().max().unwrap_or(0),
        sim_time: report.sim_time,
        makespan: report.makespan,
        stats: report.stats,
    })
}

fn layer_ker_seed(seed: u64, layer: usize) -> u64 {
    seed ^ crate::distribution::KER_SEED_XOR ^ ((layer as u64) << 48)
}

type NetOut<T> = Option<([usize; 5], [usize; 4], Tensor4<T>)>;

fn network_rank_body<T: Scalar>(rank: &Rank<T>, plan: &NetworkPlan, seed: u64) -> NetOut<T> {
    let world: Vec<usize> = (0..rank.size()).collect();
    let mut carried_in: Option<Tensor4<T>> = None; // shard for the next layer

    let mut last_out: NetOut<T> = None;
    for (li, lp) in plan.layers.iter().enumerate() {
        let grid = plan_grid(lp);
        let RankData {
            coords,
            bhw_pos,
            mut out_slice,
            out_origin,
            in_shard: seed_in_shard,
            in_origin,
            in_c_range: _,
            ker_shard: _,
            ker_origin,
            ker_c_range: _,
        } = distribute::<T>(lp, rank.id(), seed);
        let [_ib, ik, ic, _ih, _iw] = coords;
        // Layer kernels use per-layer seeds; the distribution helper
        // materialized layer-0-seeded kernels — rebuild with the right
        // seed (cheap; shapes identical).
        let ker_shard = {
            let shape = {
                let (kc_lo, kc_hi) = crate::distribution::ker_c_dist(lp).range(bhw_pos);
                Shape4::new(lp.w.wk, kc_hi - kc_lo, lp.problem.nr, lp.problem.ns)
            };
            Tensor4::<T>::random_window(
                shape,
                layer_ker_seed(seed, li),
                ker_origin,
                ker_shape(&lp.problem),
            )
        };
        // First layer: input from the seed; later layers: from
        // redistribution.
        let in_shard = match carried_in.take() {
            Some(sh) => sh,
            None => seed_in_shard,
        };
        let _lease = rank
            .mem()
            .lease_or_panic((out_slice.len() + in_shard.len() + ker_shard.len()) as u64);

        let k_comm = grid.sub_comm(rank, rank.id(), &world, &[1]);
        let bhw_comm = grid.sub_comm(rank, rank.id(), &world, &[0, 3, 4]);
        let c_comm = grid.sub_comm(rank, rank.id(), &world, &[2]);

        let ctx = crate::fwd::ForwardCtx {
            plan: lp,
            rank,
            k_comm: &k_comm,
            bhw_comm: &bhw_comm,
            ik,
            ic,
            bhw_pos,
            in_shard: &in_shard,
            in_origin,
            ker_shard: &ker_shard,
            ker_origin,
            out_origin,
            kernel: distconv_par::LocalKernel::from_env(),
            comm: distconv_par::CommMode::from_env(),
        };
        crate::fwd::forward_tiles(&ctx, &mut out_slice);
        if lp.grid.pc > 1 {
            let mut buf =
                std::mem::replace(&mut out_slice, Tensor4::zeros(Shape4::new(1, 1, 1, 1)))
                    .into_vec();
            c_comm.reduce(0, &mut buf);
            out_slice = Tensor4::from_vec(Shape4::new(lp.w.wb, lp.w.wk, lp.w.ww, lp.w.wh), buf);
        }

        if li + 1 < plan.layers.len() {
            // --- Redistribution to the next layer's In shards. ---
            let next = &plan.layers[li + 1];
            let tag = TAG_REDIST_BASE + li as u64;
            let my_out = producer_out_window(lp, rank.id());
            // Send phase (producers on the i_c = 0 plane only).
            if let Some(out_win) = my_out {
                for consumer in 0..rank.size() {
                    let in_win = consumer_in_window(next, consumer);
                    if let Some(isect) = out_win.intersect(&in_win) {
                        let local = isect.relative_to(out_origin);
                        let buf = out_slice.pack_range(local);
                        rank.send_vec(consumer, tag, buf);
                    }
                }
            }
            // Receive phase: assemble my next-layer In shard.
            let my_in_win = consumer_in_window(next, rank.id());
            let mut shard = Tensor4::<T>::zeros(my_in_win.shape());
            for producer in 0..rank.size() {
                let Some(out_win) = producer_out_window(lp, producer) else {
                    continue;
                };
                if let Some(isect) = out_win.intersect(&my_in_win) {
                    let buf = rank.recv(producer, tag);
                    assert_eq!(buf.len(), isect.len(), "redistribution size");
                    shard.unpack_range(isect.relative_to(my_in_win.lo), &buf);
                }
            }
            carried_in = Some(shard);
        } else {
            last_out = if ic == 0 {
                Some((coords, out_origin, out_slice))
            } else {
                None
            };
        }
    }
    last_out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-layer chain: 8×8 → 6×6 → 4×4 outputs, channels 4 → 8 → 8 → 4.
    fn chain() -> Vec<Conv2dProblem> {
        vec![
            Conv2dProblem::new(2, 8, 4, 8, 8, 3, 3, 1, 1), // in 10x10
            Conv2dProblem::new(2, 8, 8, 6, 6, 3, 3, 1, 1), // in 8x8
            Conv2dProblem::new(2, 4, 8, 4, 4, 3, 3, 1, 1), // in 6x6
        ]
    }

    #[test]
    fn shape_compatibility_enforced() {
        let mut bad = chain();
        bad[1] = Conv2dProblem::new(2, 8, 8, 5, 5, 3, 3, 1, 1);
        let err = NetworkPlan::plan(&bad, MachineSpec::new(4, 1 << 20)).unwrap_err();
        assert!(
            matches!(err, NetworkError::ShapeMismatch { layer: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn network_verified_and_volume_exact() {
        for procs in [1usize, 2, 4] {
            let plan = NetworkPlan::plan(&chain(), MachineSpec::new(procs, 1 << 20)).unwrap();
            let r = run_network::<f64>(&plan, 13, MachineConfig::default()).expect("verified");
            assert!(r.verified, "P={procs}");
            assert_eq!(
                r.measured_total(),
                r.expected_total(),
                "P={procs}: measured vs expected"
            );
        }
    }

    #[test]
    fn redistribution_volume_zero_on_single_rank() {
        let plan = NetworkPlan::plan(&chain(), MachineSpec::new(1, 1 << 20)).unwrap();
        assert_eq!(plan.total_redist(), 0);
    }

    #[test]
    fn redistribution_conserves_data() {
        // Total elements received across consumers must cover each In
        // shard exactly: Σ intersections (incl. self) = Σ |In shards|.
        let plan = NetworkPlan::plan(&chain(), MachineSpec::new(4, 1 << 20)).unwrap();
        for w in plan.layers.windows(2) {
            let (prev, next) = (&w[0], &w[1]);
            let procs = prev.grid.total();
            for consumer in 0..procs {
                let in_win = consumer_in_window(next, consumer);
                let covered: usize = (0..procs)
                    .filter_map(|p| producer_out_window(prev, p))
                    .filter_map(|ow| ow.intersect(&in_win))
                    .map(|i| i.len())
                    .sum();
                assert_eq!(covered, in_win.len(), "consumer {consumer} shard coverage");
            }
        }
    }

    impl NetworkReport {
        fn measured_total(&self) -> u128 {
            self.stats.total_elems() as u128
        }
    }
}

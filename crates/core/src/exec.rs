//! Distributed execution: the tiled loop with the paper's
//! rotating-broadcast communication schedule, and the high-level
//! [`DistConv`] driver.

use crate::distribution::{self, distribute, shard_geometry, RankData};
use crate::layout::{forward_layer, LayerShards, RankLayout};
use crate::model::{eq10_aggregate, expected_volumes, ExpectedVolumes};
use distconv_conv::kernels::{conv2d_direct_par, workload};
use distconv_cost::planner::GridShape;
use distconv_cost::{DistPlan, Planner};
use distconv_par::CommMode;
use distconv_simnet::{Machine, MachineConfig, Rank, RunError, StatsSnapshot};
use distconv_tensor::{Scalar, Tensor4};
use distconv_trace::{ConformanceReport, ConformanceRow, RunTrace, SpanEvent, SpanKind, Tolerance};

/// Maximum checkpoint/restart attempts for a crash-injected step.
pub const MAX_STEP_RETRIES: u32 = 3;

/// Errors from the distributed driver.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreError {
    /// The plan's grid does not multiply out to the machine size.
    GridMismatch {
        /// Ranks the grid implies.
        grid: usize,
        /// Ranks the machine was given.
        machine: usize,
    },
    /// The distributed result disagreed with the sequential reference.
    VerificationFailed {
        /// Worst relative error observed.
        max_rel_err: f64,
    },
    /// The simulated machine failed: one or more ranks crashed,
    /// deadlocked or over-committed memory (all enumerated inside).
    Machine(RunError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::GridMismatch { grid, machine } => {
                write!(f, "plan grid has {grid} ranks but machine has {machine}")
            }
            CoreError::VerificationFailed { max_rel_err } => {
                write!(
                    f,
                    "distributed result mismatch: max rel err {max_rel_err:.3e}"
                )
            }
            CoreError::Machine(e) => write!(f, "machine run failed: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<RunError> for CoreError {
    fn from(e: RunError) -> Self {
        CoreError::Machine(e)
    }
}

/// What degraded-grid recovery did: the grid shrink and the checkpoint
/// redistribution it required (see [`DistConv::run_recovering`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradeInfo {
    /// The grid the run started on.
    pub old_grid: GridShape,
    /// The shrunken grid the run finished on.
    pub new_grid: GridShape,
    /// Ranks declared dead (crashed / OOM'd — *not* merely starved).
    pub dead_ranks: Vec<usize>,
    /// Elements of checkpoint state a survivor had to fetch from peers
    /// because its new shard is not covered by its old one. Accounted
    /// separately from both `stats` (algorithmic) and `retry_elems`
    /// (aborted-attempt traffic), like ARQ overhead.
    pub redist_elems: u64,
}

/// Everything a distributed run reports.
#[derive(Clone, Debug)]
pub struct DistConvReport {
    /// The executed plan.
    pub plan: DistPlan,
    /// Measured communication counters.
    pub stats: StatsSnapshot,
    /// Exact model of the schedule's expected traffic.
    pub expected: ExpectedVolumes,
    /// Per-rank peak memory (elements).
    pub peak_mem: Vec<u64>,
    /// Whether verification against the sequential reference passed
    /// (always `true` from [`DistConv::run_verified`]; `false` only from
    /// unverified runs).
    pub verified: bool,
    /// Worst relative error vs the reference (0 when unverified).
    pub max_rel_err: f64,
    /// Simulated α–β communication time (volume-based estimate).
    pub sim_time: f64,
    /// Lamport communication makespan (dependency-aware).
    pub makespan: f64,
    /// Whether a crashed attempt was detected and the step re-run
    /// (only [`DistConv::run_recovering`] can set this).
    pub recovered: bool,
    /// Number of aborted attempts before this report's successful run.
    pub retries: u32,
    /// Elements moved by the aborted attempts — the retry cost, kept
    /// out of `stats` so volume tables still match the fault-free run.
    pub retry_elems: u64,
    /// Whether the run finished on a *shrunken* grid after a persistent
    /// crash exhausted the step retries (see
    /// [`DistConv::run_recovering`]). When `true`, `plan` is the
    /// re-planned grid over the survivors and `degrade` has the details.
    pub degraded: bool,
    /// Degraded-recovery details (`None` unless `degraded`).
    pub degrade: Option<DegradeInfo>,
    /// Per-rank span trace of the successful run (empty when tracing
    /// was disabled). Recovery appends a `CheckpointRestore` marker per
    /// aborted attempt; degraded recovery additionally appends a
    /// `FailureDetect` marker per dead rank and a `Redistribute` marker
    /// carrying the redistribution volume.
    pub trace: RunTrace,
}

impl DistConvReport {
    /// Measured inter-rank volume (elements).
    pub fn measured_volume(&self) -> u64 {
        self.stats.total_elems()
    }

    /// Largest per-rank peak memory.
    pub fn max_peak_mem(&self) -> u64 {
        self.peak_mem.iter().copied().max().unwrap_or(0)
    }

    /// Cost-model conformance: the measured traffic against the exact
    /// schedule model ([`expected_volumes`], element-exact) and against
    /// the paper's Eq. 10 aggregate (an upper bound — it also charges
    /// the initial footprint), plus a per-rank trace-vs-counter
    /// cross-check. The per-rank rows are skipped when the trace is
    /// empty (tracing disabled) or any ring wrapped — a wrapped ring
    /// undercounts by construction.
    pub fn conformance(&self) -> ConformanceReport {
        let mut rep = ConformanceReport::new();
        rep.push(ConformanceRow::new(
            "conv/total-volume",
            self.measured_volume() as f64,
            self.expected.total() as f64,
            Tolerance::Exact,
        ));
        rep.push(ConformanceRow::new(
            "conv/eq10-upper-bound",
            self.measured_volume() as f64,
            eq10_aggregate(&self.plan),
            Tolerance::UpperBound,
        ));
        if !self.trace.is_empty() && self.trace.total_dropped() == 0 {
            for rank in 0..self.plan.grid.total() {
                rep.push(ConformanceRow::new(
                    format!("conv/rank{rank}-sent-elems"),
                    self.trace.sent_elems(rank) as f64,
                    self.stats.per_rank_elems[rank] as f64,
                    Tolerance::Exact,
                ));
            }
        }
        rep
    }
}

/// High-level driver: run a [`DistPlan`] on the simulated machine.
pub struct DistConv<T> {
    plan: DistPlan,
    cfg: MachineConfig,
    enforce_memory: bool,
    comm: CommMode,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Scalar> DistConv<T> {
    /// Driver for `plan` with default machine configuration and the
    /// comm mode resolved from the environment (`DISTCONV_COMM`).
    pub fn new(plan: DistPlan) -> Self {
        DistConv {
            plan,
            cfg: MachineConfig::default(),
            enforce_memory: false,
            comm: CommMode::from_env(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Override the machine configuration.
    pub fn with_config(mut self, cfg: MachineConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Override the communication mode (blocking vs overlapped tile
    /// pipeline). Results and traffic counters are identical in both
    /// modes; this knob only moves *when* ranks wait.
    pub fn with_comm_mode(mut self, mode: CommMode) -> Self {
        self.comm = mode;
        self
    }

    /// Enforce the plan's per-rank memory capacity `M_D` in the
    /// simulator (a lease beyond it panics the offending rank).
    ///
    /// Note: Eq. 11's `In` term charges `|In|/P` without the spatial
    /// halo *overlap* that grids with `P_h·P_w > 1` replicate, so a
    /// plan at the edge of memory can exceed `M_D` by the overlap; the
    /// planner's selection is validated separately by the recorded
    /// peak. Enforcement is therefore opt-in.
    pub fn enforce_memory(mut self, on: bool) -> Self {
        self.enforce_memory = on;
        self
    }

    /// Execute the plan with workload `seed`; no verification. Panics
    /// if the machine fails (see [`DistConv::run_verified`] /
    /// [`DistConv::run_recovering`] for the non-panicking forms).
    pub fn run(&self, seed: u64) -> DistConvReport {
        self.run_inner(self.machine_cfg(), seed, false)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Execute and verify every output element against the sequential
    /// reference ([`conv2d_direct_par`]). Machine failures (rank crash,
    /// deadlock, memory over-commit) surface as [`CoreError::Machine`]
    /// with every failed rank enumerated.
    pub fn run_verified(&self, seed: u64) -> Result<DistConvReport, CoreError> {
        self.run_inner(self.machine_cfg(), seed, true)
    }

    /// Execute with verification and step-level checkpoint/restart: on
    /// a detected fault-injected rank crash, restart from the last
    /// consistent state (the step input, regenerable from `seed`) with
    /// transient rank faults cleared — modelling a replaced process on
    /// the same faulty network — and report `recovered: true` with the
    /// aborted attempts' traffic in `retry_elems`.
    ///
    /// A *persistent* crash survives the retry-time fault clearing, so
    /// [`MAX_STEP_RETRIES`] is eventually exhausted. Rather than fail,
    /// the driver then degrades: it re-plans the grid over the
    /// surviving ranks, redistributes the checkpoint onto the shrunken
    /// grid (volume accounted in [`DegradeInfo::redist_elems`], like
    /// ARQ overhead), finishes the run there, and reports
    /// `degraded: true` with old and new grids.
    pub fn run_recovering(&self, seed: u64) -> Result<DistConvReport, CoreError> {
        let mut cfg = self.machine_cfg();
        let mut retries = 0u32;
        let mut wasted = 0u64;
        loop {
            match self.run_inner(cfg, seed, true) {
                Err(CoreError::Machine(e))
                    if e.has_injected_crash() && retries < MAX_STEP_RETRIES =>
                {
                    retries += 1;
                    wasted += e.wasted_elems;
                    cfg.faults = cfg.faults.without_rank_faults();
                }
                Err(CoreError::Machine(e)) if e.has_injected_crash() => {
                    // Retries exhausted with the crash still firing: the
                    // rank is permanently gone. Shrink the grid over the
                    // survivors and finish degraded.
                    return self.run_degraded(cfg, seed, retries + 1, wasted + e.wasted_elems, &e);
                }
                Err(e) => return Err(e),
                Ok(mut r) => {
                    r.recovered = retries > 0;
                    r.retries = retries;
                    r.retry_elems = wasted;
                    // Mark each aborted attempt in the trace: a restart
                    // is a schedule-level event the timeline should
                    // show, with the wasted traffic on the last marker.
                    for attempt in 0..retries {
                        r.trace.push(
                            0,
                            SpanEvent {
                                kind: SpanKind::CheckpointRestore,
                                step: attempt as u64,
                                peer: None,
                                tag: 0,
                                elems: if attempt + 1 == retries { wasted } else { 0 },
                                start_ns: 0,
                                dur_ns: 0,
                            },
                        );
                    }
                    return Ok(r);
                }
            }
        }
    }

    fn machine_cfg(&self) -> MachineConfig {
        let mut cfg = self.cfg;
        if self.enforce_memory {
            cfg.mem_capacity = Some(self.plan.machine.mem as u64);
        }
        cfg
    }

    /// Execute the plan and also return every rank's output (the
    /// reduced `Out` slices on the `i_c = 0` plane). Used by the
    /// overlap proptests to compare the two comm modes bitwise.
    pub fn run_with_outputs(
        &self,
        seed: u64,
    ) -> Result<(DistConvReport, Vec<RankOut<T>>), CoreError> {
        self.run_full(self.plan, self.machine_cfg(), seed, false)
    }

    fn run_inner(
        &self,
        cfg: MachineConfig,
        seed: u64,
        verify: bool,
    ) -> Result<DistConvReport, CoreError> {
        self.run_full(self.plan, cfg, seed, verify).map(|(r, _)| r)
    }

    /// Retries exhausted with a persistent crash: re-plan over the
    /// survivors, account the checkpoint redistribution, and finish the
    /// run on the shrunken grid. `attempts` counts every aborted
    /// attempt (including the one that exhausted the retries) and
    /// `wasted` their cumulative traffic.
    fn run_degraded(
        &self,
        cfg: MachineConfig,
        seed: u64,
        attempts: u32,
        wasted: u64,
        err: &RunError,
    ) -> Result<DistConvReport, CoreError> {
        let old_plan = self.plan;
        let dead = err.dead_ranks();
        let survivors: Vec<usize> = (0..old_plan.grid.total())
            .filter(|r| !dead.contains(r))
            .collect();

        // Re-plan over P' survivors. P' itself may be unfactorable for
        // this problem (e.g. a prime), so scan downward and idle the
        // remainder — a smaller feasible grid beats no run at all.
        let new_plan = (1..=survivors.len())
            .rev()
            .find_map(|p| {
                Planner::new(
                    old_plan.problem,
                    distconv_cost::MachineSpec::new(p, old_plan.machine.mem),
                )
                .plan()
                .ok()
            })
            .ok_or_else(|| CoreError::Machine(err.clone()))?;

        // Checkpoint redistribution: survivor j restarts as new rank j.
        // Its checkpoint shard covers its *old* global region; whatever
        // the new shard needs beyond the overlap must be fetched from
        // peers (every element is held by some survivor — shards are
        // pure functions of seed and global coordinates).
        let mut redist_elems = 0u64;
        for (new_rank, &old_rank) in survivors.iter().enumerate().take(new_plan.grid.total()) {
            let old = shard_geometry(&old_plan, old_rank);
            let new = shard_geometry(&new_plan, new_rank);
            let in_hit = new
                .in_region
                .intersect(&old.in_region)
                .map_or(0, |r| r.len());
            let ker_hit = new
                .ker_region
                .intersect(&old.ker_region)
                .map_or(0, |r| r.len());
            redist_elems += (new.in_region.len() - in_hit) as u64;
            redist_elems += (new.ker_region.len() - ker_hit) as u64;
        }

        // The dead rank no longer exists on the shrunken machine: drop
        // its faults rather than crash a (re-numbered) innocent rank.
        let mut cfg = cfg;
        cfg.faults.crash = None;
        if cfg
            .faults
            .straggler
            .is_some_and(|s| s.rank >= new_plan.grid.total())
        {
            cfg.faults.straggler = None;
        }

        let (mut r, _) = self.run_full(new_plan, cfg, seed, true)?;
        r.recovered = true;
        r.retries = attempts;
        r.retry_elems = wasted;
        r.degraded = true;
        r.degrade = Some(DegradeInfo {
            old_grid: old_plan.grid,
            new_grid: new_plan.grid,
            dead_ranks: dead.clone(),
            redist_elems,
        });
        // Timeline markers on rank 0: one restart per aborted attempt
        // (wasted traffic on the last), the death verdicts, and the
        // redistribution onto the shrunken grid.
        for attempt in 0..attempts {
            r.trace.push(
                0,
                SpanEvent {
                    kind: SpanKind::CheckpointRestore,
                    step: attempt as u64,
                    peer: None,
                    tag: 0,
                    elems: if attempt + 1 == attempts { wasted } else { 0 },
                    start_ns: 0,
                    dur_ns: 0,
                },
            );
        }
        for &d in &dead {
            r.trace.push(
                0,
                SpanEvent {
                    kind: SpanKind::FailureDetect,
                    step: attempts as u64,
                    peer: Some(d),
                    tag: 0,
                    elems: 0,
                    start_ns: 0,
                    dur_ns: 0,
                },
            );
        }
        r.trace.push(
            0,
            SpanEvent {
                kind: SpanKind::Redistribute,
                step: attempts as u64,
                peer: None,
                tag: 0,
                elems: redist_elems,
                start_ns: 0,
                dur_ns: 0,
            },
        );
        Ok(r)
    }

    fn run_full(
        &self,
        plan: DistPlan,
        cfg: MachineConfig,
        seed: u64,
        verify: bool,
    ) -> Result<(DistConvReport, Vec<RankOut<T>>), CoreError> {
        let comm = self.comm;
        let procs = plan.grid.total();
        let report = Machine::try_run::<T, _, _>(procs, cfg, |rank| {
            rank_body::<T>(rank, &plan, seed, comm)
        })?;

        let (verified, max_rel_err) = if verify {
            let worst = verify_results::<T>(&plan, seed, &report.results);
            let tol = verification_tolerance::<T>(&plan);
            if worst > tol {
                return Err(CoreError::VerificationFailed { max_rel_err: worst });
            }
            (true, worst)
        } else {
            (false, 0.0)
        };

        Ok((
            DistConvReport {
                plan,
                expected: expected_volumes(&plan),
                peak_mem: report.peak_mem,
                verified,
                max_rel_err,
                sim_time: report.sim_time,
                makespan: report.makespan,
                stats: report.stats,
                recovered: false,
                retries: 0,
                retry_elems: 0,
                degraded: false,
                degrade: None,
                trace: report.trace,
            },
            report.results.into_iter().map(|(out, ())| out).collect(),
        ))
    }
}

/// Tolerance scaled to the reduction length and element type: partial
/// sums accumulated in different orders diverge by `O(ε·Σ|terms|)`.
fn verification_tolerance<T: Scalar>(plan: &DistPlan) -> f64 {
    let p = &plan.problem;
    let terms = (p.nc * p.nr * p.ns) as f64;
    let eps = if std::mem::size_of::<T>() == 4 {
        1e-6
    } else {
        1e-14
    };
    eps * terms.max(1.0) * 8.0
}

/// One rank's execution of the distributed CNN algorithm.
fn rank_body<T: Scalar>(
    rank: &Rank<T>,
    plan: &DistPlan,
    seed: u64,
    comm: CommMode,
) -> (RankOut<T>, ()) {
    let RankData {
        coords,
        bhw_pos: _,
        mut out_slice,
        out_origin,
        in_shard,
        in_origin,
        in_c_range: _,
        ker_shard,
        ker_origin,
        ker_c_range: _,
    } = distribute::<T>(plan, rank.id(), seed);
    let _shard_lease = rank
        .mem()
        .lease_or_panic((out_slice.len() + in_shard.len() + ker_shard.len()) as u64);

    let layout = RankLayout::new(plan, rank);
    let shards = LayerShards {
        in_shard: &in_shard,
        in_origin,
        ker_shard: &ker_shard,
        ker_origin,
        out_origin,
    };
    forward_layer(
        plan,
        rank,
        &layout,
        &shards,
        distconv_par::LocalKernel::from_env(),
        comm,
        &mut out_slice,
    );

    (
        RankOut {
            coords,
            out_origin,
            slice: if layout.ic() == 0 {
                Some(out_slice)
            } else {
                None
            },
        },
        (),
    )
}

/// Per-rank result: the final `Out` slice (only on `i_c = 0` ranks).
pub struct RankOut<T> {
    /// Grid coordinates.
    pub coords: [usize; 5],
    /// Global origin of the slice.
    pub out_origin: [usize; 4],
    /// The reduced output slice (`None` off the `i_c = 0` plane).
    pub slice: Option<Tensor4<T>>,
}

/// Compare every `i_c = 0` rank's slice against the sequential
/// reference; returns the worst relative error.
fn verify_results<T: Scalar>(plan: &DistPlan, seed: u64, results: &[(RankOut<T>, ())]) -> f64 {
    let p = plan.problem;
    let (input, ker) = workload::<T>(&p, seed);
    let reference = conv2d_direct_par(&p, &input, &ker);
    let mut worst = 0.0f64;
    for (out, ()) in results {
        let Some(slice) = &out.slice else { continue };
        let r = distribution::out_range(plan, out.coords);
        let ref_buf = reference.pack_range(r);
        for (a, b) in slice.as_slice().iter().zip(ref_buf.iter()) {
            let (x, y) = (a.to_f64(), b.to_f64());
            let denom = x.abs().max(y.abs()).max(1.0);
            worst = worst.max((x - y).abs() / denom);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use distconv_cost::{Conv2dProblem, MachineSpec, Planner};

    fn run_plan(p: Conv2dProblem, procs: usize, mem: usize) -> DistConvReport {
        let plan = Planner::new(p, MachineSpec::new(procs, mem))
            .plan()
            .unwrap();
        DistConv::<f64>::new(plan).run_verified(5).unwrap()
    }

    #[test]
    fn single_rank_correct_and_silent() {
        let r = run_plan(Conv2dProblem::square(2, 4, 4, 4, 3), 1, 1 << 16);
        assert!(r.verified);
        assert_eq!(r.measured_volume(), 0);
        assert_eq!(r.expected.total(), 0);
    }

    #[test]
    fn multi_rank_correct_and_volume_exact() {
        for procs in [2usize, 4, 8, 16] {
            let r = run_plan(Conv2dProblem::square(4, 8, 8, 8, 3), procs, 1 << 18);
            assert!(r.verified, "P={procs}");
            assert_eq!(
                r.measured_volume() as u128,
                r.expected.total(),
                "P={procs}: measured vs expected (grid {:?})",
                r.plan.grid
            );
        }
    }

    #[test]
    fn strided_layer_correct() {
        let r = run_plan(Conv2dProblem::new(2, 8, 8, 4, 4, 3, 3, 2, 2), 4, 1 << 18);
        assert!(r.verified);
        assert_eq!(r.measured_volume() as u128, r.expected.total());
    }

    #[test]
    fn asymmetric_kernel_and_strides() {
        let r = run_plan(Conv2dProblem::new(2, 4, 4, 6, 4, 3, 5, 2, 1), 4, 1 << 18);
        assert!(r.verified);
        assert_eq!(r.measured_volume() as u128, r.expected.total());
    }

    #[test]
    fn f32_runs_verified() {
        let plan = Planner::new(
            Conv2dProblem::square(2, 8, 8, 4, 3),
            MachineSpec::new(4, 1 << 18),
        )
        .plan()
        .unwrap();
        let r = DistConv::<f32>::new(plan).run_verified(11).unwrap();
        assert!(r.verified);
    }

    #[test]
    fn pc_replicated_grid_reduces_out() {
        // Force a grid with Pc > 1 and confirm the reduction path works
        // and is accounted.
        let p = Conv2dProblem::square(2, 4, 16, 4, 3);
        let plan = Planner::new(p, MachineSpec::new(8, 1 << 20))
            .with_forced_pc(2)
            .plan()
            .unwrap();
        assert_eq!(plan.grid.pc, 2);
        let r = DistConv::<f64>::new(plan).run_verified(3).unwrap();
        assert!(r.verified);
        assert!(r.expected.out_reduce > 0);
        assert_eq!(r.measured_volume() as u128, r.expected.total());
    }

    #[test]
    fn peak_memory_within_eq11_when_no_spatial_split() {
        let p = Conv2dProblem::square(2, 8, 8, 4, 3);
        let plan = Planner::new(p, MachineSpec::new(4, 1 << 20))
            .plan()
            .unwrap();
        let r = DistConv::<f64>::new(plan).run_verified(7).unwrap();
        if plan_is_spatial_free(&r.plan) {
            assert!(
                r.max_peak_mem() as f64 <= r.plan.predicted.footprint_gd + 1.0,
                "peak {} vs Eq.11 {}",
                r.max_peak_mem(),
                r.plan.predicted.footprint_gd
            );
        }
    }

    fn plan_is_spatial_free(plan: &DistPlan) -> bool {
        plan.grid.ph == 1 && plan.grid.pw == 1
    }

    #[test]
    fn peak_memory_matches_exact_model_on_every_grid() {
        // The halo-aware model must equal the measured peak per rank,
        // including spatially-split and replicated grids.
        for (p, procs, forced_pc) in [
            (Conv2dProblem::square(4, 8, 8, 8, 3), 8usize, None),
            (Conv2dProblem::square(2, 4, 16, 4, 3), 8, Some(2)),
            (Conv2dProblem::new(4, 8, 8, 8, 8, 3, 3, 2, 2), 16, None),
        ] {
            let mut planner = Planner::new(p, MachineSpec::new(procs, 1 << 20));
            if let Some(pc) = forced_pc {
                planner = planner.with_forced_pc(pc);
            }
            let plan = planner.plan().unwrap();
            let r = DistConv::<f64>::new(plan).run(5);
            for rank in 0..procs {
                assert_eq!(
                    r.peak_mem[rank],
                    crate::model::expected_peak_mem(&plan, rank),
                    "rank {rank} grid {:?}",
                    plan.grid
                );
            }
        }
    }

    #[test]
    fn memory_enforcement_catches_tiny_capacity() {
        // Build a valid plan, then lie about the machine memory and
        // enforce: the run must panic inside a rank (propagated).
        let p = Conv2dProblem::square(2, 8, 8, 4, 3);
        let mut plan = Planner::new(p, MachineSpec::new(4, 1 << 20))
            .plan()
            .unwrap();
        plan.machine.mem = 8; // absurdly small
        let result =
            std::panic::catch_unwind(|| DistConv::<f64>::new(plan).enforce_memory(true).run(1));
        assert!(result.is_err(), "memory enforcement should have fired");
    }

    #[test]
    fn machine_failure_surfaces_as_core_error() {
        use distconv_simnet::FaultPlan;
        let p = Conv2dProblem::square(4, 8, 8, 8, 3);
        let plan = Planner::new(p, MachineSpec::new(4, 1 << 18))
            .plan()
            .unwrap();
        let cfg = MachineConfig {
            recv_timeout: std::time::Duration::from_millis(300),
            faults: FaultPlan::default().with_crash(0, 2),
            ..MachineConfig::default()
        };
        let err = DistConv::<f64>::new(plan)
            .with_config(cfg)
            .run_verified(5)
            .expect_err("crash must fail the run");
        let CoreError::Machine(e) = err else {
            panic!("expected Machine error, got {err:?}");
        };
        assert!(e.has_injected_crash());
        assert!(e.failed_ranks().contains(&0));
    }

    #[test]
    fn crash_injected_run_recovers_to_fault_free_result() {
        use distconv_simnet::FaultPlan;
        let p = Conv2dProblem::square(4, 8, 8, 8, 3);
        let plan = Planner::new(p, MachineSpec::new(4, 1 << 18))
            .plan()
            .unwrap();
        let clean = DistConv::<f64>::new(plan).run_verified(5).unwrap();
        assert!(!clean.recovered && clean.retries == 0 && clean.retry_elems == 0);
        let cfg = MachineConfig {
            recv_timeout: std::time::Duration::from_millis(300),
            faults: FaultPlan::default().with_crash(0, 2),
            ..MachineConfig::default()
        };
        let r = DistConv::<f64>::new(plan)
            .with_config(cfg)
            .run_recovering(5)
            .expect("must recover");
        assert!(r.recovered, "crash must have been detected");
        assert_eq!(r.retries, 1);
        assert!(r.verified);
        // The recovered step's algorithmic volume equals the fault-free
        // run's; the aborted attempt's traffic is reported separately.
        assert_eq!(r.measured_volume(), clean.measured_volume());
        assert!(r.retry_elems > 0, "the aborted attempt moved data");
        // The restart left a marker in the trace with the wasted volume.
        let restores: Vec<_> = r.trace.per_rank[0]
            .events
            .iter()
            .filter(|e| e.kind == SpanKind::CheckpointRestore)
            .collect();
        assert_eq!(restores.len(), 1);
        assert_eq!(restores[0].elems, r.retry_elems);
    }

    #[test]
    fn persistent_crash_degrades_to_survivor_grid() {
        use distconv_simnet::FaultPlan;
        let p = Conv2dProblem::square(4, 8, 8, 8, 3);
        let plan = Planner::new(p, MachineSpec::new(8, 1 << 20))
            .plan()
            .unwrap();
        let cfg = MachineConfig {
            recv_timeout: std::time::Duration::from_millis(300),
            faults: FaultPlan::default().with_persistent_crash(0, 2),
            ..MachineConfig::default()
        };
        let r = DistConv::<f64>::new(plan)
            .with_config(cfg)
            .run_recovering(5)
            .expect("must finish degraded");
        assert!(r.degraded && r.recovered && r.verified);
        // Every attempt on the full grid aborted (initial + retries).
        assert_eq!(r.retries, MAX_STEP_RETRIES + 1);
        assert!(r.retry_elems > 0);
        let info = r.degrade.as_ref().expect("degrade details");
        assert_eq!(info.old_grid, plan.grid);
        assert_eq!(info.dead_ranks, vec![0]);
        // 7 survivors, but 7/6/5 don't factor this problem: P' = 4.
        assert_eq!(info.new_grid, r.plan.grid);
        assert_eq!(r.plan.grid.total(), 4);
        assert!(info.redist_elems > 0, "the shrink must move checkpoints");
        // Conformance validates at P': the report's plan IS the new one.
        let rep = r.conformance();
        assert!(rep.pass(), "degraded conformance failed:\n{rep}");
        // Trace carries the full story on rank 0.
        let kinds = |k: SpanKind| {
            r.trace.per_rank[0]
                .events
                .iter()
                .filter(|e| e.kind == k)
                .count()
        };
        assert_eq!(
            kinds(SpanKind::CheckpointRestore),
            (MAX_STEP_RETRIES + 1) as usize
        );
        assert_eq!(kinds(SpanKind::FailureDetect), 1);
        assert_eq!(kinds(SpanKind::Redistribute), 1);
        let redist = r.trace.per_rank[0]
            .events
            .iter()
            .find(|e| e.kind == SpanKind::Redistribute)
            .unwrap();
        assert_eq!(redist.elems, info.redist_elems);
    }

    #[test]
    fn degraded_result_matches_clean_small_grid_run() {
        use distconv_simnet::FaultPlan;
        // The degraded run on P' ranks must produce the same verified
        // result and traffic as a clean run planned at P' directly.
        let p = Conv2dProblem::square(4, 8, 8, 8, 3);
        let plan8 = Planner::new(p, MachineSpec::new(8, 1 << 20))
            .plan()
            .unwrap();
        let cfg = MachineConfig {
            recv_timeout: std::time::Duration::from_millis(300),
            faults: FaultPlan::default().with_persistent_crash(1, 3),
            ..MachineConfig::default()
        };
        let degraded = DistConv::<f64>::new(plan8)
            .with_config(cfg)
            .run_recovering(9)
            .unwrap();
        let p_new = degraded.plan.grid.total();
        let clean = run_plan(p, p_new, 1 << 20);
        assert_eq!(degraded.plan.grid, clean.plan.grid);
        assert_eq!(degraded.measured_volume(), clean.measured_volume());
        assert_eq!(degraded.stats.per_rank_elems, clean.stats.per_rank_elems);
    }

    #[test]
    fn conformance_passes_and_cross_checks_per_rank() {
        let r = run_plan(Conv2dProblem::square(4, 8, 8, 8, 3), 8, 1 << 18);
        let rep = r.conformance();
        assert!(rep.pass(), "conformance failed:\n{rep}");
        // total + eq10 bound + one cross-check row per rank.
        assert_eq!(rep.rows.len(), 2 + 8, "{rep}");
        assert!(rep
            .rows
            .iter()
            .any(|row| row.name == "conv/eq10-upper-bound"));
    }

    #[test]
    fn deterministic_across_runs() {
        let p = Conv2dProblem::square(2, 8, 8, 4, 3);
        let plan = Planner::new(p, MachineSpec::new(4, 1 << 18))
            .plan()
            .unwrap();
        let a = DistConv::<f64>::new(plan).run(9);
        let b = DistConv::<f64>::new(plan).run(9);
        assert_eq!(a.measured_volume(), b.measured_volume());
        assert_eq!(a.stats.per_rank_elems, b.stats.per_rank_elems);
    }
}

//! Batch dispatch: the serving layer's entry point into the network
//! executor.
//!
//! A serving front-end coalesces asynchronous requests into `Nb`-sized
//! batches and needs two things from the executor that
//! [`crate::network::run_network`] alone does not give it:
//!
//! 1. **Per-sample attribution** — which part of the verified output
//!    belongs to which admitted request. The final layer's `Out`
//!    slices partition the `[b, k, x, y]` output domain across the
//!    `i_c = 0` ranks, so every global batch index `b` is covered
//!    exactly once; [`dispatch_batch`] folds each sample's elements
//!    into an order-independent digest the front-end can hand back per
//!    request (and compare bitwise across replays, grids and
//!    backends — the digest ignores *where* an element was computed).
//! 2. **A seed contract** — batch identity must be a pure function of
//!    the admitted requests so a replayed or re-routed batch computes
//!    bit-identical results. [`batch_seed`] folds the per-request
//!    seeds through SplitMix64 in admission order.

use crate::exec::CoreError;
use crate::network::{run_network_with_outputs, NetworkPlan, NetworkReport};
use distconv_par::rng::splitmix64;
use distconv_simnet::MachineConfig;
use distconv_tensor::Scalar;

/// The result of dispatching one batch onto a cluster.
#[derive(Clone, Debug)]
pub struct BatchRun {
    /// The full network execution report (verified against the chained
    /// sequential reference; conformance rows available).
    pub report: NetworkReport,
    /// One digest per global batch sample `b in 0..Nb`, each an
    /// order-independent fold over that sample's final-layer output
    /// elements. Deterministic in `(plan, seed)`: replaying the batch
    /// on the same plan — on either simnet backend, with any thread
    /// count — reproduces these words bitwise, which is what lets the
    /// serving layer prove a replayed batch equals the fault-free run.
    /// (A *different* grid may legally differ in the last float bits:
    /// channel-partitioned grids reduce in a different order.)
    pub digests: Vec<u64>,
}

/// Fold per-request seeds into the batch seed, in admission order.
/// Requests are materialized *as* the batch input (sample `i` of the
/// seeded input tensor), so the batch seed is the only run parameter —
/// same member seeds in the same slots ⇒ the same batch, bitwise.
pub fn batch_seed(request_seeds: &[u64]) -> u64 {
    // Non-zero init so the empty batch and `[0]` hash differently.
    let mut acc = 0x5e52_5645_5345_4544u64;
    for (i, &s) in request_seeds.iter().enumerate() {
        acc = splitmix64(acc ^ s.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    }
    acc
}

/// Run the planned network once as a batch and attribute the verified
/// output back to individual samples.
///
/// `plan` fixes `Nb` (the first layer's batch extent); `seed` is the
/// [`batch_seed`] of the admitted requests. Execution, verification
/// and traffic accounting are exactly [`run_network`]'s — this entry
/// point only adds the per-sample digest pass on the already-verified
/// slices.
///
/// [`run_network`]: crate::network::run_network
pub fn dispatch_batch<T: Scalar>(
    plan: &NetworkPlan,
    seed: u64,
    cfg: MachineConfig,
) -> Result<BatchRun, CoreError> {
    let (report, outputs) = run_network_with_outputs::<T>(plan, seed, cfg)?;
    let nb = plan.layers[0].problem.nb;
    let mut digests = vec![0u64; nb];
    for (_coords, origin, slice) in &outputs {
        let [b0, k0, x0, y0] = *origin;
        let [db, dk, dx, dy] = slice.shape().0;
        let data = slice.as_slice();
        let mut idx = 0usize;
        for ib in 0..db {
            let digest = &mut digests[b0 + ib];
            for ik in 0..dk {
                for ix in 0..dx {
                    for iy in 0..dy {
                        *digest ^=
                            element_hash(k0 + ik, x0 + ix, y0 + iy, data[idx].to_f64().to_bits());
                        idx += 1;
                    }
                }
            }
        }
    }
    Ok(BatchRun { report, digests })
}

/// Position-keyed element hash: mixes the global `(k, x, y)` output
/// coordinate with the value bits so the XOR fold is independent of
/// the order (and the rank) in which elements were produced, yet any
/// single flipped bit changes the sample digest.
fn element_hash(k: usize, x: usize, y: usize, bits: u64) -> u64 {
    let key = (k as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((x as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((y as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(bits);
    splitmix64(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distconv_cost::{Conv2dProblem, MachineSpec};

    fn chain() -> Vec<Conv2dProblem> {
        vec![
            Conv2dProblem::new(2, 8, 4, 8, 8, 3, 3, 1, 1),
            Conv2dProblem::new(2, 8, 8, 6, 6, 3, 3, 1, 1),
            Conv2dProblem::new(2, 4, 8, 4, 4, 3, 3, 1, 1),
        ]
    }

    #[test]
    fn batch_seed_is_order_and_slot_sensitive() {
        assert_eq!(batch_seed(&[1, 2, 3]), batch_seed(&[1, 2, 3]));
        assert_ne!(batch_seed(&[1, 2, 3]), batch_seed(&[3, 2, 1]));
        assert_ne!(batch_seed(&[1, 2]), batch_seed(&[1, 2, 0]));
        assert_ne!(batch_seed(&[]), batch_seed(&[0]));
    }

    #[test]
    fn digests_cover_every_sample_and_replay_bitwise() {
        let plan4 = NetworkPlan::plan_tuned(&chain(), MachineSpec::new(4, 1 << 20)).unwrap();
        let b4 = dispatch_batch::<f64>(&plan4, 77, MachineConfig::default()).unwrap();
        assert_eq!(b4.digests.len(), 2);
        assert!(b4.digests.iter().all(|&d| d != 0), "empty sample digest");
        // Replaying the same (plan, seed) is bitwise: same digests on
        // the thread backend again and on the event backend — the fold
        // is position-keyed, so rank assignment and delivery order are
        // invisible.
        let replay = dispatch_batch::<f64>(&plan4, 77, MachineConfig::default()).unwrap();
        assert_eq!(b4.digests, replay.digests);
        let event = dispatch_batch::<f64>(
            &plan4,
            77,
            MachineConfig {
                backend: distconv_simnet::Backend::Event,
                ..MachineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(b4.digests, event.digests);
        // A different batch seed changes every sample.
        let other = dispatch_batch::<f64>(&plan4, 78, MachineConfig::default()).unwrap();
        assert_ne!(b4.digests, other.digests);
    }
}

//! The shared forward tile loop: Listing 3 with the paper's
//! rotating-broadcast schedule, parameterized over where the shards
//! came from (seed-materialized, or redistributed from a previous
//! layer). Used by [`crate::exec`], [`crate::train`] and
//! [`crate::network`].

use crate::distribution::{in_c_dist, ker_c_dist};
use distconv_conv::{conv_tile_fast_rows, ConvScratch};
use distconv_cost::DistPlan;
use distconv_par::{CommMode, LocalKernel};
use distconv_simnet::{Communicator, Rank};
use distconv_tensor::{conv_input_region, Range4, Scalar, Tensor4};

/// Everything one rank needs to execute the forward tile loop.
pub(crate) struct ForwardCtx<'a, 'r, T: Scalar> {
    pub plan: &'a DistPlan,
    pub rank: &'a Rank<T>,
    pub k_comm: &'a Communicator<'r, T>,
    pub bhw_comm: &'a Communicator<'r, T>,
    /// This rank's `i_k` grid coordinate.
    pub ik: usize,
    /// This rank's `i_c` grid coordinate.
    pub ic: usize,
    /// This rank's position along the `bhw` fiber.
    pub bhw_pos: usize,
    pub in_shard: &'a Tensor4<T>,
    pub in_origin: [usize; 4],
    pub ker_shard: &'a Tensor4<T>,
    pub ker_origin: [usize; 4],
    pub out_origin: [usize; 4],
    /// Local compute kernel for the tile steps (message schedule and
    /// traffic are kernel-independent; the fast path is bitwise
    /// identical — see `distconv_conv::fast`).
    pub kernel: LocalKernel,
    /// Whether the tile loop overlaps the next step's broadcasts with
    /// the current step's compute (results and traffic counters are
    /// identical either way — see `distconv_par::CommMode`).
    pub comm: CommMode,
}

/// One step of the linearized `(j_k, j_b, j_w, j_h, c_t)` tile loop:
/// everything needed to post, wait for, and consume its two broadcasts.
struct TileStep {
    out_rng: Range4,
    in_owner: usize,
    in_rng: Range4,
    ker_owner: usize,
    ker_rng: Range4,
}

/// Run the full forward tile loop, accumulating into `out_slice`
/// (shape `[W_b, W_k, W_w, W_h]`, local coordinates). The caller is
/// responsible for the final `c`-reduction.
///
/// In [`CommMode::Overlapped`], the loop is double-buffered: step
/// `t+1`'s In/Ker broadcasts are posted before step `t`'s tiles are
/// waited for and convolved. Step order, broadcast trees, payloads and
/// the accumulation order into `out_slice` are identical to the
/// blocking path, so the output is bitwise equal and the traffic
/// counters unchanged.
pub(crate) fn forward_tiles<T: Scalar>(ctx: &ForwardCtx<'_, '_, T>, out_slice: &mut Tensor4<T>) {
    let plan = ctx.plan;
    let p = plan.problem;
    let (w, t) = (plan.w, plan.t);
    assert_eq!(t.tc, 1, "the distributed schedule requires T_c = 1");
    let in_dist = in_c_dist(plan);
    let ker_dist = ker_c_dist(plan);
    let (sb, sk, sh, sw) = (w.wb / t.tb, w.wk / t.tk, w.wh / t.th, w.ww / t.tw);
    // One scratch arena for the whole tile loop (fast kernel only).
    let mut scratch = ConvScratch::<T>::new();

    // Linearize the rotating-broadcast schedule so the pipelined path
    // can look one step ahead; the blocking path walks the same list.
    let mut steps = Vec::with_capacity(sk * sb * sw * sh * w.wc);
    for jk in 0..sk {
        for jb in 0..sb {
            for jw in 0..sw {
                for jh in 0..sh {
                    for ct in 0..w.wc {
                        let out_rng = tile_range(plan, ctx.out_origin, [jb, jk, jh, jw]);
                        let gc = ctx.ic * w.wc + ct;
                        let in_rng = conv_input_region(out_rng, gc, gc + 1, p.sw, p.sh, p.nr, p.ns);
                        let ker_rng = Range4::new(
                            [out_rng.lo[1], gc, 0, 0],
                            [out_rng.hi[1], gc + 1, p.nr, p.ns],
                        );
                        steps.push(TileStep {
                            out_rng,
                            in_owner: in_dist.owner(ct),
                            in_rng,
                            ker_owner: ker_dist.owner(ct),
                            ker_rng,
                        });
                    }
                }
            }
        }
    }

    // Trace stamping: tile step t's broadcasts and convolution are
    // stamped t in both modes — the pipelined path stamps a posted
    // broadcast with the step it feeds, so the canonical trace is
    // mode-independent.
    match ctx.comm {
        CommMode::Blocking => {
            for (t, step) in steps.iter().enumerate() {
                ctx.rank.set_step(t as u64);
                // In tile broadcast along the k fiber.
                let mut in_buf = if ctx.ik == step.in_owner {
                    ctx.in_shard
                        .pack_range(step.in_rng.relative_to(ctx.in_origin))
                } else {
                    vec![T::zero(); step.in_rng.len()]
                };
                let _l_in = ctx.rank.mem().lease_or_panic(in_buf.len() as u64);
                ctx.k_comm.bcast(step.in_owner, &mut in_buf);
                let in_tile = Tensor4::from_vec(step.in_rng.shape(), in_buf);

                // Ker tile broadcast along the bhw fiber.
                let mut ker_buf = if ctx.bhw_pos == step.ker_owner {
                    ctx.ker_shard
                        .pack_range(step.ker_rng.relative_to(ctx.ker_origin))
                } else {
                    vec![T::zero(); step.ker_rng.len()]
                };
                let _l_ker = ctx.rank.mem().lease_or_panic(ker_buf.len() as u64);
                ctx.bhw_comm.bcast(step.ker_owner, &mut ker_buf);
                let ker_tile = Tensor4::from_vec(step.ker_rng.shape(), ker_buf);

                let out_local = step.out_rng.relative_to(ctx.out_origin);
                ctx.rank.time_compute(|| {
                    conv_tile_into_slice(
                        &p,
                        out_slice,
                        out_local,
                        &in_tile,
                        &ker_tile,
                        ctx.kernel,
                        &mut scratch,
                    )
                });
            }
        }
        CommMode::Overlapped => {
            // Post a step's two broadcasts: the owners pack and their
            // tree sends go out immediately; non-owners pass an empty
            // payload and receive on wait.
            let post = |step: &TileStep| {
                let in_payload = if ctx.ik == step.in_owner {
                    ctx.in_shard
                        .pack_range(step.in_rng.relative_to(ctx.in_origin))
                } else {
                    Vec::new()
                };
                let ker_payload = if ctx.bhw_pos == step.ker_owner {
                    ctx.ker_shard
                        .pack_range(step.ker_rng.relative_to(ctx.ker_origin))
                } else {
                    Vec::new()
                };
                (
                    ctx.k_comm.ibcast(step.in_owner, in_payload),
                    ctx.bhw_comm.ibcast(step.ker_owner, ker_payload),
                )
            };
            ctx.rank.set_step(0);
            let mut pending = steps.first().map(&post);
            for (t, step) in steps.iter().enumerate() {
                let (p_in, p_ker) = pending.take().expect("pipeline primed");
                if let Some(next) = steps.get(t + 1) {
                    ctx.rank.set_step(t as u64 + 1);
                    pending = Some(post(next));
                }
                ctx.rank.set_step(t as u64);
                let _l_in = ctx.rank.mem().lease_or_panic(step.in_rng.len() as u64);
                let in_tile = Tensor4::from_vec(step.in_rng.shape(), p_in.wait());
                let _l_ker = ctx.rank.mem().lease_or_panic(step.ker_rng.len() as u64);
                let ker_tile = Tensor4::from_vec(step.ker_rng.shape(), p_ker.wait());

                let out_local = step.out_rng.relative_to(ctx.out_origin);
                ctx.rank.time_compute(|| {
                    conv_tile_into_slice(
                        &p,
                        out_slice,
                        out_local,
                        &in_tile,
                        &ker_tile,
                        ctx.kernel,
                        &mut scratch,
                    )
                });
            }
        }
    }
    // Whatever follows the tile loop (the caller's c-reduction) is its
    // own step, the same one in both modes.
    ctx.rank.set_step(steps.len() as u64);
}

/// Global `Out` range of tile step `[jb, jk, jh, jw]`.
pub(crate) fn tile_range(plan: &DistPlan, origin: [usize; 4], j: [usize; 4]) -> Range4 {
    let t = plan.t;
    let lo = [
        origin[0] + j[0] * t.tb,
        origin[1] + j[1] * t.tk,
        origin[2] + j[3] * t.tw,
        origin[3] + j[2] * t.th,
    ];
    Range4::new(lo, [lo[0] + t.tb, lo[1] + t.tk, lo[2] + t.tw, lo[3] + t.th])
}

/// Accumulate one tile directly into the resident `Out` slice
/// (no separate `Out`-tile buffer — the paper's memory claim).
///
/// The fast and Winograd paths hand the slice to
/// [`distconv_conv::conv_tile_fast_rows`] /
/// [`distconv_conv::conv_tile_winograd_rows`]: the tile's output rows
/// are strided windows of the resident shard (`h` contiguous), so the
/// kernels accumulate in place with no bounce buffer. The fast path
/// is bitwise-identical to the reference loop; Winograd matches it
/// within the documented tolerance (DESIGN.md §7).
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv_tile_into_slice<T: Scalar>(
    p: &distconv_cost::Conv2dProblem,
    out_slice: &mut Tensor4<T>,
    out_local: Range4,
    in_tile: &Tensor4<T>,
    ker_tile: &Tensor4<T>,
    kernel: LocalKernel,
    scratch: &mut ConvScratch<T>,
) {
    let [tb, tk, tw, th] = out_local.extents();
    let tc = in_tile.shape().0[1];
    debug_assert_eq!(tc, ker_tile.shape().0[1]);
    if kernel != LocalKernel::Reference {
        let s = out_slice.shape().strides();
        let base = out_local.lo[0] * s[0]
            + out_local.lo[1] * s[1]
            + out_local.lo[2] * s[2]
            + out_local.lo[3];
        let rows_kernel = match kernel {
            LocalKernel::Fast => conv_tile_fast_rows,
            LocalKernel::Winograd => distconv_conv::conv_tile_winograd_rows,
            LocalKernel::Reference => unreachable!(),
        };
        rows_kernel(
            p,
            out_slice.as_mut_slice(),
            base,
            [s[0], s[1], s[2]],
            [tb, tk, tw, th],
            in_tile,
            ker_tile,
            scratch,
        );
        return;
    }
    for b in 0..tb {
        for k in 0..tk {
            for w in 0..tw {
                for h in 0..th {
                    let idx = [
                        out_local.lo[0] + b,
                        out_local.lo[1] + k,
                        out_local.lo[2] + w,
                        out_local.lo[3] + h,
                    ];
                    let mut acc = out_slice[idx];
                    for c in 0..tc {
                        for r in 0..p.nr {
                            for s in 0..p.ns {
                                acc += in_tile[[b, c, p.sw * w + r, p.sh * h + s]]
                                    * ker_tile[[k, c, r, s]];
                            }
                        }
                    }
                    out_slice[idx] = acc;
                }
            }
        }
    }
}

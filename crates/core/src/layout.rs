//! The shared **layout layer**: per-layer grid placement, fiber
//! communicators, the forward pass, and inter-layer redistribution —
//! hoisted out of the per-algorithm rank bodies so the single-layer
//! driver ([`crate::exec`]) and the multi-layer network executor
//! ([`crate::network`]) set a layer up identically.
//!
//! The redistribution exchange is the executable form of the exact
//! analytic accounting in [`crate::network::redistribution_volume`]:
//! every (producer, consumer) pair moves exactly the intersection of
//! the producer's final `Out` window with the consumer's next-layer
//! `In` window ([`consumer_in_window`] *is*
//! [`shard_geometry`]`(next, rank).in_region` — the same pure geometry
//! that materializes initial shards). Redistribution sends are
//! accounted under [`TrafficClass::Redistribution`], so per-layer
//! algorithmic volumes stay Eq-exact and the measured redistribution
//! counter can be pinned against the analytic volume to the element.

use crate::distribution::{out_range, plan_grid, shard_geometry};
use crate::fwd::{forward_tiles, ForwardCtx};
use distconv_cost::DistPlan;
use distconv_par::{CommMode, LocalKernel};
use distconv_simnet::{Communicator, Rank, Tag, TrafficClass};
use distconv_tensor::{Range4, Scalar, Shape4, Tensor4};

/// A rank's placement in one layer's logical grid plus the three fiber
/// communicators every algorithm needs (`k` for `In` broadcasts, `bhw`
/// for `Ker` broadcasts, `c` for the final `Out` reduction).
pub struct RankLayout<'r, T: Scalar> {
    /// Grid coordinates `[i_b, i_k, i_c, i_h, i_w]`.
    pub coords: [usize; 5],
    /// Linear position along the `bhw` fiber.
    pub bhw_pos: usize,
    /// The `k`-fiber communicator (`In` tile broadcasts).
    pub k_comm: Communicator<'r, T>,
    /// The `bhw`-fiber communicator (`Ker` tile broadcasts).
    pub bhw_comm: Communicator<'r, T>,
    /// The `c`-fiber communicator (final `Out` reduction).
    pub c_comm: Communicator<'r, T>,
}

impl<'r, T: Scalar> RankLayout<'r, T> {
    /// Build the calling rank's layout for `plan`: its grid coordinates
    /// and the three fiber sub-communicators, identical across every
    /// executor (kept in lockstep with [`shard_geometry`]).
    pub fn new(plan: &DistPlan, rank: &'r Rank<T>) -> Self {
        let grid = plan_grid(plan);
        let world: Vec<usize> = (0..rank.size()).collect();
        let geom = shard_geometry(plan, rank.id());
        let layout = RankLayout {
            coords: geom.coords,
            bhw_pos: geom.bhw_pos,
            k_comm: grid.sub_comm(rank, rank.id(), &world, &[1]),
            bhw_comm: grid.sub_comm(rank, rank.id(), &world, &[0, 3, 4]),
            c_comm: grid.sub_comm(rank, rank.id(), &world, &[2]),
        };
        debug_assert_eq!(layout.k_comm.me(), layout.ik());
        debug_assert_eq!(layout.bhw_comm.me(), layout.bhw_pos);
        debug_assert_eq!(layout.c_comm.me(), layout.ic());
        layout
    }

    /// This rank's `i_k` grid coordinate.
    pub fn ik(&self) -> usize {
        self.coords[1]
    }

    /// This rank's `i_c` grid coordinate.
    pub fn ic(&self) -> usize {
        self.coords[2]
    }
}

/// One rank's input shards for a layer, wherever they came from
/// (seed-materialized or redistributed from the previous layer).
pub(crate) struct LayerShards<'a, T: Scalar> {
    pub in_shard: &'a Tensor4<T>,
    pub in_origin: [usize; 4],
    pub ker_shard: &'a Tensor4<T>,
    pub ker_origin: [usize; 4],
    pub out_origin: [usize; 4],
}

/// Run one layer's forward pass on this rank: the rotating-broadcast
/// tile loop accumulating into `out_slice` (shape
/// `[W_b, W_k, W_w, W_h]`), then the final `c`-fiber reduction when
/// `P_c > 1` (partials land on the `i_c = 0` plane).
pub(crate) fn forward_layer<T: Scalar>(
    plan: &DistPlan,
    rank: &Rank<T>,
    layout: &RankLayout<'_, T>,
    shards: &LayerShards<'_, T>,
    kernel: LocalKernel,
    comm: CommMode,
    out_slice: &mut Tensor4<T>,
) {
    let ctx = ForwardCtx {
        plan,
        rank,
        k_comm: &layout.k_comm,
        bhw_comm: &layout.bhw_comm,
        ik: layout.ik(),
        ic: layout.ic(),
        bhw_pos: layout.bhw_pos,
        in_shard: shards.in_shard,
        in_origin: shards.in_origin,
        ker_shard: shards.ker_shard,
        ker_origin: shards.ker_origin,
        out_origin: shards.out_origin,
        kernel,
        comm,
    };
    forward_tiles(&ctx, out_slice);
    if plan.grid.pc > 1 {
        let w = plan.w;
        let mut buf =
            std::mem::replace(out_slice, Tensor4::zeros(Shape4::new(1, 1, 1, 1))).into_vec();
        layout.c_comm.reduce(0, &mut buf);
        *out_slice = Tensor4::from_vec(Shape4::new(w.wb, w.wk, w.ww, w.wh), buf);
    }
}

/// The `In`-shard window (in the *consumer* layer's input coordinates,
/// which are the *producer* layer's output coordinates) that consumer
/// rank `rank_id` of `next` must receive: exactly the rank's initial
/// `In` region from [`shard_geometry`].
pub fn consumer_in_window(next: &DistPlan, rank_id: usize) -> Range4 {
    shard_geometry(next, rank_id).in_region
}

/// The final `Out` range (in output = next-input coordinates,
/// `[b, c(=k), x(=w), y(=h)]`) produced by rank `rank_id` of `prev` —
/// `None` for ranks off the `i_c = 0` plane (they hold no final data
/// after the `c` reduction).
pub fn producer_out_window(prev: &DistPlan, rank_id: usize) -> Option<Range4> {
    let geom = shard_geometry(prev, rank_id);
    (geom.coords[2] == 0).then(|| out_range(prev, geom.coords))
}

/// Exchange this rank's reduced `Out` slice into its `In` shard for
/// `next`'s grid. Every rank computes the full static exchange pattern
/// locally (no negotiation traffic): producers on the `i_c = 0` plane
/// send each window intersection, then every rank assembles its shard
/// from the producers that cover it. All sends are accounted under
/// [`TrafficClass::Redistribution`] so the per-layer algorithmic
/// counters stay untouched.
pub(crate) fn redistribute_to_next<T: Scalar>(
    rank: &Rank<T>,
    prev: &DistPlan,
    next: &DistPlan,
    out_slice: &Tensor4<T>,
    out_origin: [usize; 4],
    tag: Tag,
) -> Tensor4<T> {
    rank.set_traffic_class(TrafficClass::Redistribution);
    // Send phase (producers on the i_c = 0 plane only).
    if let Some(out_win) = producer_out_window(prev, rank.id()) {
        for consumer in 0..rank.size() {
            let in_win = consumer_in_window(next, consumer);
            if let Some(isect) = out_win.intersect(&in_win) {
                let local = isect.relative_to(out_origin);
                rank.send_vec(consumer, tag, out_slice.pack_range(local));
            }
        }
    }
    // Receive phase: assemble my next-layer In shard.
    let my_in_win = consumer_in_window(next, rank.id());
    let mut shard = Tensor4::<T>::zeros(my_in_win.shape());
    for producer in 0..rank.size() {
        let Some(out_win) = producer_out_window(prev, producer) else {
            continue;
        };
        if let Some(isect) = out_win.intersect(&my_in_win) {
            let buf = rank.recv(producer, tag);
            assert_eq!(buf.len(), isect.len(), "redistribution size");
            shard.unpack_range(isect.relative_to(my_in_win.lo), &buf);
        }
    }
    rank.set_traffic_class(TrafficClass::Algorithmic);
    shard
}

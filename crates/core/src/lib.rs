//! # distconv-core
//!
//! **The paper's contribution**: communication-efficient distributed-
//! memory CNN algorithms (SPAA '21, Sec. 2.2), realized on the
//! `distconv-simnet` substrate.
//!
//! The pipeline is plan → distribute → execute → reduce:
//!
//! 1. **Plan** — `distconv-cost::Planner` solves the two-level tile-size
//!    optimization (Sec. 2.1, Tables 1–2) and produces a
//!    [`DistPlan`](distconv_cost::DistPlan): a logical
//!    `P_b × P_k × P_c × P_h × P_w` processor grid, work-partition sizes
//!    `W_i = N_i/P_i`, tile sizes `T_i`, and predicted costs (Eq. 10/11).
//! 2. **Distribute** ([`distribution`]) — the initial data placement of
//!    Sec. 2.2: each rank's `Out` slice allocated in full (replicated
//!    along the `c` grid dimension when `P_c > 1`); its `Ker` slice
//!    sub-sliced along `c` over the `P_b·P_h·P_w` ranks that share it;
//!    its `In` slice sub-sliced along `c` over the `P_k` ranks that
//!    share it.
//! 3. **Execute** ([`exec`]) — the tiled loop of Listing 3 with loads
//!    replaced by the paper's rotating-broadcast schedule: for each
//!    channel step, the owner in the `In` distribution broadcasts the
//!    `In` tile along the `k` fiber, and the owner in the `Ker`
//!    distribution broadcasts the `Ker` tile along the `bhw` fiber
//!    ("after `W_c/P_k` steps, the next processor along the `k`
//!    dimension becomes the originator").
//! 4. **Reduce** — when `P_c > 1`, partial `Out` slices are reduced
//!    along the `c` fiber ("a reduction step at the very end").
//!
//! [`model`] gives the *exact* expected inter-rank volume of this
//! schedule (binomial-tree broadcasts, exact halos), which the E6
//! experiment pins against the measured counters, and relates it to the
//! paper's Eq. 10.

#![warn(missing_docs)]

/// The in-tree scoped worker pool (re-export of [`distconv_par::pool`]).
///
/// Lives in `distconv-par` so the leaf crates (`conv`, `distmm`) can
/// share it without a dependency cycle; re-exported here because this
/// crate is the workspace's front door for algorithm users.
pub use distconv_par::pool;

pub mod batch;
pub mod distribution;
pub mod exec;
pub(crate) mod fwd;
pub mod layout;
pub mod model;
pub mod network;
pub mod train;

pub use batch::{batch_seed, dispatch_batch, BatchRun};
pub use exec::{CoreError, DegradeInfo, DistConv, DistConvReport, MAX_STEP_RETRIES};
pub use layout::{consumer_in_window, producer_out_window, RankLayout};
pub use model::{expected_volumes, ExpectedVolumes};
pub use network::{
    redistribution_volume, run_network, run_network_with_outputs, NetworkError, NetworkOut,
    NetworkPlan, NetworkReport,
};
pub use train::{
    expected_backward_volumes, run_training_step, run_training_step_recovering, BackwardVolumes,
    TrainReport,
};

//! Distributed weight-gradient computation — the training-step
//! extension of the paper's algorithm.
//!
//! The brief announcement covers the forward convolution; a training
//! step also needs `dKer[k,c,r,s] = Σ_{b,w,h} dOut[b,k,w,h] ·
//! In[b,c,σ_w·w+r,σ_h·h+s]`. The paper's distribution extends to it
//! naturally, which is exactly the property that makes the algorithm
//! attractive for training:
//!
//! * `dOut` arrives in `Out`'s layout — already resident, replicated
//!   along `c` (every `c`-fiber member holds identical values).
//! * `In` tiles are re-broadcast along the `k` fiber with the same
//!   rotating-owner schedule as the forward pass — but only once per
//!   `(bhw\text{-tile}, c)` step (the gradient sums over `k` locally),
//!   so the backward `In` traffic is the forward traffic divided by
//!   `W_k/T_k`.
//! * Each rank accumulates a partial `dKer` over its `(b,w,h)`
//!   sub-range; partials are disjoint in `(k,c)` across `(i_k, i_c)`
//!   groups and summed across the `bhw` fiber by a **reduce-scatter
//!   whose chunks are exactly the initial `Ker` distribution** — so
//!   the gradient lands shard-aligned with the weights it updates, and
//!   no further movement is needed for the optimizer step.
//!
//! Traffic: `in_bcast/(W_k/T_k) + (P_bhw−1)·W_k·W_c·N_r·N_s` per fiber —
//! computed exactly by [`expected_backward_volumes`] and pinned against
//! measured counters in tests.

use crate::distribution::{distribute, in_c_dist, ker_c_dist, plan_grid, RankData};
use crate::exec::CoreError;
use distconv_conv::kernels::{grad_ker, out_shape, workload};
use distconv_cost::DistPlan;
use distconv_simnet::{Machine, MachineConfig, Rank, StatsSnapshot};
use distconv_tensor::{conv_input_region, Range4, Scalar, Shape4, Tensor4};

/// Seed-offset for the upstream gradient `dOut` (matches the baselines
/// crate so cross-scheme comparisons share workloads).
pub const DOUT_SEED_XOR: u64 = 0x5A5A_1234_9876_0F0F;

/// Exact expected inter-rank traffic of the backward (gradient) pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackwardVolumes {
    /// `In` tile broadcasts (one per `(bhw`-tile`, c)` step).
    pub in_bcast: u128,
    /// `dKer` reduce-scatter along the `bhw` fibers.
    pub grad_reduce: u128,
}

impl BackwardVolumes {
    /// Total expected backward volume.
    pub fn total(&self) -> u128 {
        self.in_bcast + self.grad_reduce
    }
}

/// Compute the exact expected backward volumes for `plan`.
pub fn expected_backward_volumes(plan: &DistPlan) -> BackwardVolumes {
    let p = &plan.problem;
    let (w, t, g) = (plan.w, plan.t, plan.grid);
    let procs = g.total();
    let steps_bhw = (w.wb / t.tb) as u128 * (w.ww / t.tw) as u128 * (w.wh / t.th) as u128;
    let steps_c = (w.wc / t.tc) as u128;
    let in_tile = (t.tb * t.tc) as u128
        * distconv_tensor::conv_input_extent(t.tw, p.sw, p.nr) as u128
        * distconv_tensor::conv_input_extent(t.th, p.sh, p.ns) as u128;
    let k_fibers = (procs / g.pk) as u128;
    let in_bcast = k_fibers * steps_bhw * steps_c * (g.pk as u128 - 1) * in_tile;
    // Direct reduce-scatter on each bhw fiber: every member sends the
    // full dKer slice minus its own chunk; per fiber that sums to
    // (P_bhw − 1) · W_k·W_c·N_r·N_s.
    let slice = (w.wk * w.wc * p.nr * p.ns) as u128;
    let bhw_fibers = (procs / g.pbhw()) as u128;
    let grad_reduce = bhw_fibers * (g.pbhw() as u128 - 1) * slice;
    BackwardVolumes {
        in_bcast,
        grad_reduce,
    }
}

/// Report of a distributed training step (forward + weight gradient).
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// The executed plan.
    pub plan: DistPlan,
    /// Measured counters for the *whole* step (forward + backward).
    pub stats: StatsSnapshot,
    /// Expected forward volumes (same model as [`crate::expected_volumes`]).
    pub expected_forward: crate::ExpectedVolumes,
    /// Expected backward volumes.
    pub expected_backward: BackwardVolumes,
    /// Forward output verified against the sequential reference.
    pub forward_verified: bool,
    /// Gradient shards verified against the sequential [`grad_ker`].
    pub grad_verified: bool,
    /// Largest per-rank peak memory (elements).
    pub max_peak_mem: u64,
    /// Simulated α–β time (volume-based estimate).
    pub sim_time: f64,
    /// Lamport communication makespan.
    pub makespan: f64,
    /// Whether a crashed attempt was detected and the step re-run
    /// (only [`run_training_step_recovering`] can set this).
    pub recovered: bool,
    /// Number of aborted attempts before the successful one.
    pub retries: u32,
    /// Elements moved by the aborted attempts (retry cost, kept out of
    /// `stats` so the volume tables still match the fault-free run).
    pub retry_elems: u64,
}

impl TrainReport {
    /// Measured inter-rank volume for the full step.
    pub fn measured_volume(&self) -> u64 {
        self.stats.total_elems()
    }

    /// Expected total for the full step.
    pub fn expected_total(&self) -> u128 {
        self.expected_forward.total() + self.expected_backward.total()
    }
}

/// Run one distributed training step (forward + dKer) under `plan`.
///
/// The forward pass is the Sec. 2.2 algorithm verbatim (including the
/// final `Out` reduction when `P_c > 1`); the backward pass follows the
/// module-level description. Both are verified against sequential
/// references.
pub fn run_training_step<T: Scalar>(
    plan: DistPlan,
    seed: u64,
    cfg: MachineConfig,
) -> Result<TrainReport, CoreError> {
    let procs = plan.grid.total();
    let report =
        Machine::try_run::<T, _, _>(procs, cfg, |rank| train_rank_body::<T>(rank, &plan, seed))?;

    // --- Verification against sequential references. ---
    let p = plan.problem;
    let (input, ker) = workload::<T>(&p, seed);
    let reference_out = distconv_conv::kernels::conv2d_direct_par(&p, &input, &ker);
    let d_out = Tensor4::<T>::random(out_shape(&p), seed ^ DOUT_SEED_XOR);
    let reference_grad = grad_ker(&p, &input, &d_out);
    let tol = {
        let terms = (p.nc * p.nr * p.ns).max(p.nbhw()) as f64;
        let eps = if std::mem::size_of::<T>() == 4 {
            1e-6
        } else {
            1e-13
        };
        eps * terms * 8.0
    };

    let mut forward_ok = true;
    let mut grad_ok = true;
    for out in &report.results {
        if let Some(slice) = &out.out_slice {
            let rng = crate::distribution::out_range(&plan, out.coords);
            let expect = reference_out.pack_range(rng);
            if worst_err(slice.as_slice(), &expect) > tol {
                forward_ok = false;
            }
        }
        // Every rank holds a dKer shard aligned with its Ker shard.
        let expect = reference_grad.pack_range(out.grad_range);
        if worst_err(out.grad_shard.as_slice(), &expect) > tol {
            grad_ok = false;
        }
    }
    if !forward_ok || !grad_ok {
        return Err(CoreError::VerificationFailed {
            max_rel_err: f64::NAN,
        });
    }

    Ok(TrainReport {
        plan,
        expected_forward: crate::expected_volumes(&plan),
        expected_backward: expected_backward_volumes(&plan),
        forward_verified: forward_ok,
        grad_verified: grad_ok,
        max_peak_mem: report.peak_mem.iter().copied().max().unwrap_or(0),
        sim_time: report.sim_time,
        makespan: report.makespan,
        stats: report.stats,
        recovered: false,
        retries: 0,
        retry_elems: 0,
    })
}

/// [`run_training_step`] with step-level checkpoint/restart: on a
/// detected fault-injected rank crash, re-run the step from the last
/// consistent state (the step inputs — weights, activations and
/// upstream gradient are all regenerable from `seed`, exactly the
/// checkpointed state a real trainer restores) with transient rank
/// faults cleared, and report `recovered: true` plus the aborted
/// attempts' traffic in `retry_elems`. Link faults and stragglers
/// persist across the restart — the network stays faulty, only the
/// crashed process is replaced.
pub fn run_training_step_recovering<T: Scalar>(
    plan: DistPlan,
    seed: u64,
    cfg: MachineConfig,
) -> Result<TrainReport, CoreError> {
    let mut cfg = cfg;
    let mut retries = 0u32;
    let mut wasted = 0u64;
    loop {
        match run_training_step::<T>(plan, seed, cfg) {
            Err(CoreError::Machine(e))
                if e.has_injected_crash() && retries < crate::exec::MAX_STEP_RETRIES =>
            {
                retries += 1;
                wasted += e.wasted_elems;
                cfg.faults = cfg.faults.without_rank_faults();
            }
            Err(e) => return Err(e),
            Ok(mut r) => {
                r.recovered = retries > 0;
                r.retries = retries;
                r.retry_elems = wasted;
                return Ok(r);
            }
        }
    }
}

fn worst_err<T: Scalar>(a: &[T], b: &[T]) -> f64 {
    distconv_tensor::max_rel_err(a, b).unwrap_or(f64::INFINITY)
}

/// Per-rank result of a training step.
pub struct TrainRankOut<T> {
    /// Grid coordinates.
    pub coords: [usize; 5],
    /// Final `Out` slice (only on `i_c = 0` ranks).
    pub out_slice: Option<Tensor4<T>>,
    /// This rank's `dKer` shard (aligned with its `Ker` shard).
    pub grad_shard: Tensor4<T>,
    /// Global `Ker` range of the shard.
    pub grad_range: Range4,
}

fn train_rank_body<T: Scalar>(rank: &Rank<T>, plan: &DistPlan, seed: u64) -> TrainRankOut<T> {
    let p = plan.problem;
    let (w, t) = (plan.w, plan.t);
    assert_eq!(t.tc, 1, "the distributed schedule requires T_c = 1");
    let grid = plan_grid(plan);
    let world: Vec<usize> = (0..rank.size()).collect();
    let RankData {
        coords,
        bhw_pos,
        mut out_slice,
        out_origin,
        in_shard,
        in_origin,
        in_c_range: _,
        ker_shard,
        ker_origin,
        ker_c_range,
    } = distribute::<T>(plan, rank.id(), seed);
    let [_ib, ik, ic, _ih, _iw] = coords;
    let _shard_lease = rank
        .mem()
        .lease_or_panic((out_slice.len() + in_shard.len() + ker_shard.len()) as u64);

    let k_comm = grid.sub_comm(rank, rank.id(), &world, &[1]);
    let bhw_comm = grid.sub_comm(rank, rank.id(), &world, &[0, 3, 4]);
    let c_comm = grid.sub_comm(rank, rank.id(), &world, &[2]);
    let in_dist = in_c_dist(plan);
    let ker_dist = ker_c_dist(plan);

    // Local dOut slice: same layout as Out, materialized from the seed
    // (in training it would arrive from the downstream layer in place).
    let d_out = Tensor4::<T>::random_window(
        Shape4::new(w.wb, w.wk, w.ww, w.wh),
        seed ^ DOUT_SEED_XOR,
        out_origin,
        out_shape(&p),
    );
    let _dout_lease = rank.mem().lease_or_panic(d_out.len() as u64);

    let (sb, sh, sw) = (w.wb / t.tb, w.wh / t.th, w.ww / t.tw);

    // ---------------- Forward pass (Sec. 2.2 verbatim). ----------------
    let ctx = crate::fwd::ForwardCtx {
        plan,
        rank,
        k_comm: &k_comm,
        bhw_comm: &bhw_comm,
        ik,
        ic,
        bhw_pos,
        in_shard: &in_shard,
        in_origin,
        ker_shard: &ker_shard,
        ker_origin,
        out_origin,
        kernel: distconv_par::LocalKernel::from_env(),
        comm: distconv_par::CommMode::from_env(),
    };
    crate::fwd::forward_tiles(&ctx, &mut out_slice);
    if plan.grid.pc > 1 {
        let mut buf =
            std::mem::replace(&mut out_slice, Tensor4::zeros(Shape4::new(1, 1, 1, 1))).into_vec();
        c_comm.reduce(0, &mut buf);
        out_slice = Tensor4::from_vec(Shape4::new(w.wb, w.wk, w.ww, w.wh), buf);
    }

    // ---------------- Backward pass: dKer. ----------------
    // Partial gradient over this rank's (b,w,h) sub-range, full (Wk, Wc).
    let mut grad_partial = Tensor4::<T>::zeros(Shape4::new(w.wk, w.wc, p.nr, p.ns));
    let _grad_lease = rank.mem().lease_or_panic(grad_partial.len() as u64);
    for jb in 0..sb {
        for jw in 0..sw {
            for jh in 0..sh {
                for ct in 0..w.wc {
                    // Tile over the full local k range (j[1] spans all of
                    // Wk at once: dKer sums over k locally, no reload).
                    let out_rng = Range4::new(
                        [
                            out_origin[0] + jb * t.tb,
                            out_origin[1],
                            out_origin[2] + jw * t.tw,
                            out_origin[3] + jh * t.th,
                        ],
                        [
                            out_origin[0] + jb * t.tb + t.tb,
                            out_origin[1] + w.wk,
                            out_origin[2] + jw * t.tw + t.tw,
                            out_origin[3] + jh * t.th + t.th,
                        ],
                    );
                    let gc = ic * w.wc + ct;
                    let in_owner = in_dist.owner(ct);
                    let in_rng = conv_input_region(out_rng, gc, gc + 1, p.sw, p.sh, p.nr, p.ns);
                    let mut in_buf = if ik == in_owner {
                        in_shard.pack_range(in_rng.relative_to(in_origin))
                    } else {
                        vec![T::zero(); in_rng.len()]
                    };
                    let _l_in = rank.mem().lease_or_panic(in_buf.len() as u64);
                    k_comm.bcast(in_owner, &mut in_buf);
                    let in_tile = Tensor4::from_vec(in_rng.shape(), in_buf);
                    accumulate_grad(
                        &p,
                        &mut grad_partial,
                        ct,
                        out_rng.relative_to(out_origin),
                        &d_out,
                        &in_tile,
                    );
                }
            }
        }
    }
    // Reduce-scatter along the bhw fiber with Ker-distribution chunks.
    let counts: Vec<usize> = (0..plan.grid.pbhw())
        .map(|i| ker_dist.len(i) * w.wk * p.nr * p.ns)
        .collect();
    // Pack grad_partial in bhw-fiber chunk order: chunk i = channels
    // ker_dist.range(i), all (k, r, s). Layout [Wk, Wc, r, s] packs by
    // channel ranges via pack_range per chunk.
    let mut flat = Vec::with_capacity(grad_partial.len());
    for i in 0..plan.grid.pbhw() {
        let (lo, hi) = ker_dist.range(i);
        if lo < hi {
            flat.extend(
                grad_partial.pack_range(Range4::new([0, lo, 0, 0], [w.wk, hi, p.nr, p.ns])),
            );
        }
    }
    let mine = bhw_comm.reduce_scatter(&flat, &counts);
    let (gc_lo, gc_hi) = ker_c_range;
    let grad_range = Range4::new(
        [ker_origin[0], ker_origin[1], 0, 0],
        [
            ker_origin[0] + w.wk,
            ker_origin[1] + (gc_hi - gc_lo),
            p.nr,
            p.ns,
        ],
    );
    let grad_shard = Tensor4::from_vec(Shape4::new(w.wk, gc_hi - gc_lo, p.nr, p.ns), mine);

    TrainRankOut {
        coords,
        out_slice: if ic == 0 { Some(out_slice) } else { None },
        grad_shard,
        grad_range,
    }
}

/// `grad[k, ct, r, s] += Σ_{b,w,h∈tile} dOut[tile]·In[tile]`.
fn accumulate_grad<T: Scalar>(
    p: &distconv_cost::Conv2dProblem,
    grad: &mut Tensor4<T>,
    ct: usize,
    out_local: Range4,
    d_out: &Tensor4<T>,
    in_tile: &Tensor4<T>,
) {
    let [tb, tk, tw, th] = out_local.extents();
    for k in 0..tk {
        for r in 0..p.nr {
            for s in 0..p.ns {
                let mut acc = grad[[out_local.lo[1] + k, ct, r, s]];
                for b in 0..tb {
                    for w in 0..tw {
                        for h in 0..th {
                            let o = [
                                out_local.lo[0] + b,
                                out_local.lo[1] + k,
                                out_local.lo[2] + w,
                                out_local.lo[3] + h,
                            ];
                            acc += d_out[o] * in_tile[[b, 0, p.sw * w + r, p.sh * h + s]];
                        }
                    }
                }
                grad[[out_local.lo[1] + k, ct, r, s]] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distconv_cost::{Conv2dProblem, MachineSpec, Planner};

    fn train(p: Conv2dProblem, procs: usize) -> TrainReport {
        let plan = Planner::new(p, MachineSpec::new(procs, 1 << 20))
            .plan()
            .unwrap();
        run_training_step::<f64>(plan, 77, MachineConfig::default()).expect("verified")
    }

    #[test]
    fn training_step_verified_single_rank() {
        let r = train(Conv2dProblem::square(2, 4, 4, 4, 3), 1);
        assert!(r.forward_verified && r.grad_verified);
        assert_eq!(r.measured_volume(), 0);
    }

    #[test]
    fn training_step_verified_multi_rank() {
        for procs in [2usize, 4, 8] {
            let r = train(Conv2dProblem::square(4, 8, 8, 4, 3), procs);
            assert!(r.forward_verified && r.grad_verified, "P={procs}");
            assert_eq!(
                r.measured_volume() as u128,
                r.expected_total(),
                "P={procs}: measured vs expected"
            );
        }
    }

    #[test]
    fn training_step_strided() {
        let r = train(Conv2dProblem::new(2, 4, 4, 4, 4, 3, 3, 2, 2), 4);
        assert!(r.forward_verified && r.grad_verified);
        assert_eq!(r.measured_volume() as u128, r.expected_total());
    }

    #[test]
    fn backward_in_traffic_cheaper_than_forward() {
        // The gradient pass broadcasts In once per (bhw-tile, c), the
        // forward once per (bhw-tile, k-tile, c).
        let p = Conv2dProblem::square(4, 16, 8, 4, 3);
        let plan = Planner::new(p, MachineSpec::new(8, 1 << 20))
            .plan()
            .unwrap();
        let fwd = crate::expected_volumes(&plan);
        let bwd = expected_backward_volumes(&plan);
        let k_steps = (plan.w.wk / plan.t.tk) as u128;
        assert_eq!(bwd.in_bcast * k_steps, fwd.in_bcast);
    }

    #[test]
    fn grad_lands_shard_aligned() {
        // After the step, each rank's gradient range equals its Ker
        // shard range — no extra movement for the optimizer update.
        let p = Conv2dProblem::square(2, 8, 8, 4, 3);
        let plan = Planner::new(p, MachineSpec::new(4, 1 << 20))
            .plan()
            .unwrap();
        let procs = plan.grid.total();
        let report = Machine::run::<f64, _, _>(procs, MachineConfig::default(), |rank| {
            train_rank_body::<f64>(rank, &plan, 3)
        });
        for out in &report.results {
            // Must match the distribution module's Ker shard for the rank.
            let grid = plan_grid(&plan);
            let id = grid.index_of(out.coords.as_ref());
            let rd = distribute::<f64>(&plan, id, 3);
            assert_eq!(
                out.grad_range.lo,
                [rd.ker_origin[0], rd.ker_origin[1], 0, 0]
            );
            assert_eq!(out.grad_shard.shape(), rd.ker_shard.shape());
        }
    }

    #[test]
    fn training_step_recovers_from_injected_crash() {
        use distconv_simnet::FaultPlan;
        let p = Conv2dProblem::square(4, 8, 8, 4, 3);
        let plan = Planner::new(p, MachineSpec::new(4, 1 << 20))
            .plan()
            .unwrap();
        let clean = run_training_step::<f64>(plan, 77, MachineConfig::default()).unwrap();
        let cfg = MachineConfig {
            recv_timeout: std::time::Duration::from_millis(300),
            faults: FaultPlan::default().with_crash(1, 4),
            ..MachineConfig::default()
        };
        let r = run_training_step_recovering::<f64>(plan, 77, cfg).expect("must recover");
        assert!(r.recovered);
        assert_eq!(r.retries, 1);
        assert!(r.forward_verified && r.grad_verified);
        assert_eq!(r.measured_volume(), clean.measured_volume());
        assert!(r.retry_elems > 0);
    }

    #[test]
    fn replicated_grid_trains_correctly() {
        let p = Conv2dProblem::square(2, 4, 16, 4, 3);
        let plan = Planner::new(p, MachineSpec::new(8, 1 << 20))
            .with_forced_pc(2)
            .plan()
            .unwrap();
        let r = run_training_step::<f64>(plan, 5, MachineConfig::default()).expect("ok");
        assert!(r.forward_verified && r.grad_verified);
        assert_eq!(r.measured_volume() as u128, r.expected_total());
    }
}

//! Exact volume model of the realized communication schedule.
//!
//! The paper's Eq. 10 states per-processor costs in the global-memory
//! idiom (a broadcast "costs" its payload once per consumer, halos in
//! the `σT+N−1` form). The implementation uses binomial-tree broadcasts
//! of exact-halo tiles, whose *inter-rank* traffic is `(n−1)·payload`
//! per fiber of `n` ranks. This module computes that quantity exactly
//! (in integers) so the E6 experiment can assert
//! `measured == expected` to the element, and separately compare both
//! against Eq. 10's analytic form:
//!
//! * `expected_total ≤ P · cost_C + reduction` always;
//! * equality of the In/Ker terms (up to the `(n−1)/n` broadcast
//!   factor) at stride 1.

use crate::distribution::{in_c_dist, ker_c_dist, plan_grid};
use distconv_cost::exact::{eq10_cost_c, eq10_cost_i};
use distconv_cost::DistPlan;
use distconv_tensor::conv_input_extent;

/// Exact expected inter-rank element counts for one full run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpectedVolumes {
    /// `In` tile broadcasts along the `k` fibers.
    pub in_bcast: u128,
    /// `Ker` tile broadcasts along the `bhw` fibers.
    pub ker_bcast: u128,
    /// Final `Out` reduction along the `c` fibers (0 when `P_c = 1`).
    pub out_reduce: u128,
}

impl ExpectedVolumes {
    /// Total expected inter-rank volume.
    pub fn total(&self) -> u128 {
        self.in_bcast + self.ker_bcast + self.out_reduce
    }
}

/// Compute the exact expected volumes for `plan` (see module docs).
pub fn expected_volumes(plan: &DistPlan) -> ExpectedVolumes {
    let p = &plan.problem;
    let (w, t, g) = (plan.w, plan.t, plan.grid);
    let procs = g.total();

    // Tile steps per rank (identical on every rank).
    let steps_bhw = (w.wb / t.tb) as u128 * (w.ww / t.tw) as u128 * (w.wh / t.th) as u128;
    let steps_k = (w.wk / t.tk) as u128;
    let steps_c = (w.wc / t.tc) as u128;
    let steps = steps_bhw * steps_k * steps_c;

    // Exact-halo In tile payload.
    let in_tile = (t.tb * t.tc) as u128
        * conv_input_extent(t.tw, p.sw, p.nr) as u128
        * conv_input_extent(t.th, p.sh, p.ns) as u128;
    let ker_tile = (t.tk * t.tc * p.nr * p.ns) as u128;

    // Binomial broadcast on an n-fiber: (n−1)·payload; fibers of each
    // kind partition the machine.
    let k_fibers = (procs / g.pk) as u128;
    let bhw_fibers = (procs / g.pbhw()) as u128;
    let in_bcast = k_fibers * steps * (g.pk as u128 - 1) * in_tile;
    let ker_bcast = bhw_fibers * steps * (g.pbhw() as u128 - 1) * ker_tile;

    // Out reduction along c fibers: binomial reduce moves (Pc−1)·slice
    // per fiber.
    let out_slice = (w.wb * w.wk * w.ww * w.wh) as u128;
    let c_fibers = (procs / g.pc) as u128;
    let out_reduce = c_fibers * (g.pc as u128 - 1) * out_slice;

    ExpectedVolumes {
        in_bcast,
        ker_bcast,
        out_reduce,
    }
}

/// The paper's Eq. 10 aggregate over all `P` processors:
/// `P · (cost_I + cost_C)` — an upper bound on (and at stride 1, modulo
/// the `(n−1)/n` broadcast factor, a tight model of) the realized
/// traffic plus initial footprint.
pub fn eq10_aggregate(plan: &DistPlan) -> f64 {
    let procs = plan.grid.total();
    procs as f64
        * (eq10_cost_i(&plan.problem, &plan.w, procs)
            + eq10_cost_c(&plan.problem, &plan.w, &plan.t))
}

/// Exact expected peak memory (elements) of rank `rank_id` during a
/// **forward** run: the initial shards plus the resident `Out` slice
/// plus the two transient tile buffers that coexist at the top of the
/// tile loop.
///
/// Unlike Eq. 11 this accounts the *actual* shard sizes — including the
/// spatial halo overlap that `P_h·P_w > 1` grids replicate and the
/// uneven `BlockDist` channel chunks — so it matches the measured peak
/// **exactly** on every grid (pinned in tests).
pub fn expected_peak_mem(plan: &DistPlan, rank_id: usize) -> u64 {
    let p = &plan.problem;
    let (w, t) = (plan.w, plan.t);
    let grid = plan_grid(plan);
    let coords = grid.coords_of(rank_id);
    let (ik, _ic) = (coords[1], coords[2]);
    let bhw_pos = (coords[0] * plan.grid.ph + coords[3]) * plan.grid.pw + coords[4];

    let out_slice = (w.wb * w.wk * w.ww * w.wh) as u64;
    // In shard: my channel chunk of the slice, full spatial halo window.
    let (c_lo, c_hi) = in_c_dist(plan).range(ik);
    let x_ext = conv_input_extent(w.ww, p.sw, p.nr);
    let y_ext = conv_input_extent(w.wh, p.sh, p.ns);
    let in_shard = (w.wb * (c_hi - c_lo) * x_ext * y_ext) as u64;
    // Ker shard: my chunk of the (W_k × W_c) slice.
    let (kc_lo, kc_hi) = ker_c_dist(plan).range(bhw_pos);
    let ker_shard = (w.wk * (kc_hi - kc_lo) * p.nr * p.ns) as u64;
    // Transient tile buffers (exact halos), coexisting per step.
    let in_tile =
        (t.tb * t.tc * conv_input_extent(t.tw, p.sw, p.nr) * conv_input_extent(t.th, p.sh, p.ns))
            as u64;
    let ker_tile = (t.tk * t.tc * p.nr * p.ns) as u64;
    out_slice + in_shard + ker_shard + in_tile + ker_tile
}

/// Maximum of [`expected_peak_mem`] over all ranks.
pub fn expected_max_peak_mem(plan: &DistPlan) -> u64 {
    (0..plan.grid.total())
        .map(|r| expected_peak_mem(plan, r))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distconv_cost::{Conv2dProblem, MachineSpec, Planner};

    fn plan(p: Conv2dProblem, procs: usize, mem: usize) -> DistPlan {
        Planner::new(p, MachineSpec::new(procs, mem))
            .plan()
            .unwrap()
    }

    #[test]
    fn expected_volume_hand_computed_singleton_fibers() {
        // P = 1: no fibers wider than 1 → zero expected traffic.
        let pl = plan(Conv2dProblem::square(2, 4, 4, 4, 3), 1, 1 << 16);
        let ev = expected_volumes(&pl);
        assert_eq!(ev.total(), 0);
    }

    #[test]
    fn expected_volume_scales_with_fiber_width() {
        // Compare a Pk-heavy grid against Pc=1 variants via the formula
        // directly: widening the k fiber adds In broadcast traffic.
        let p = Conv2dProblem::square(4, 16, 16, 8, 3);
        let pl = plan(p, 16, 1 << 20);
        let ev = expected_volumes(&pl);
        if pl.grid.pk > 1 {
            assert!(ev.in_bcast > 0);
        }
        if pl.grid.pbhw() > 1 {
            assert!(ev.ker_bcast > 0);
        }
        if pl.grid.pc > 1 {
            assert!(ev.out_reduce > 0);
        } else {
            assert_eq!(ev.out_reduce, 0);
        }
    }

    #[test]
    fn expected_bounded_by_eq10_aggregate() {
        // The binomial (n−1)/n factor and exact halos make the realized
        // schedule at most the paper's model (which counts the full
        // payload per processor and paper-form halos). cost_I covers the
        // out_reduce term (initial footprint includes the Out slices).
        for procs in [4usize, 8, 16] {
            let p = Conv2dProblem::square(4, 16, 16, 8, 3);
            let pl = plan(p, procs, 1 << 20);
            let ev = expected_volumes(&pl);
            assert!(
                (ev.total() as f64) <= eq10_aggregate(&pl) + 1.0,
                "P={procs}: expected {} > Eq.10 aggregate {}",
                ev.total(),
                eq10_aggregate(&pl)
            );
        }
    }

    #[test]
    fn stride1_in_term_matches_eq10_modulo_bcast_factor() {
        // At σ = 1 halos agree, so: in_bcast = P·cost_C_in·(Pk−1)/Pk.
        let p = Conv2dProblem::square(4, 16, 16, 8, 3);
        let pl = plan(p, 16, 1 << 18);
        if pl.grid.pk > 1 {
            let ev = expected_volumes(&pl);
            let b = distconv_cost::exact::eq3_cost(&pl.problem, &pl.w, &pl.t);
            let model_in = 16.0 * b.inp * (pl.grid.pk as f64 - 1.0) / pl.grid.pk as f64;
            assert!(
                (ev.in_bcast as f64 - model_in).abs() < 1e-6,
                "in_bcast {} vs model {model_in}",
                ev.in_bcast
            );
        }
    }
}

//! Blocking vs overlapped comm modes must be observationally identical
//! for every distmm algorithm: bitwise-equal result blocks and equal
//! algorithmic traffic counters. Only *when* a rank waits moves; what
//! moves, where, and in which per-link order does not.

use distconv_distmm::{
    cannon_rank_body_mode, dns3d_rank_body_mode, s25d_rank_body_mode, summa_rank_body_mode,
    MatmulDims,
};
use distconv_par::CommMode;
use distconv_simnet::{LinkDelay, Machine, MachineConfig, Rank, RunReport};
use distconv_tensor::Matrix;
use std::time::Duration;

fn run_both<F>(p: usize, body: F) -> (RunReport<Matrix<f64>>, RunReport<Matrix<f64>>)
where
    F: Fn(&Rank<f64>, CommMode) -> Matrix<f64> + Send + Sync + Copy,
{
    let blocking = Machine::run::<f64, _, _>(p, MachineConfig::default(), move |rank| {
        body(rank, CommMode::Blocking)
    });
    let overlapped = Machine::run::<f64, _, _>(p, MachineConfig::default(), move |rank| {
        body(rank, CommMode::Overlapped)
    });
    (blocking, overlapped)
}

fn assert_identical(blocking: &RunReport<Matrix<f64>>, overlapped: &RunReport<Matrix<f64>>) {
    assert_eq!(
        blocking.results.len(),
        overlapped.results.len(),
        "rank count"
    );
    for (r, (b, o)) in blocking
        .results
        .iter()
        .zip(overlapped.results.iter())
        .enumerate()
    {
        assert_eq!(b.rows(), o.rows(), "rank {r} rows");
        assert_eq!(b.cols(), o.cols(), "rank {r} cols");
        let bb: Vec<u64> = b.as_slice().iter().map(|x| x.to_bits()).collect();
        let ob: Vec<u64> = o.as_slice().iter().map(|x| x.to_bits()).collect();
        assert_eq!(bb, ob, "rank {r} block must be bitwise identical");
    }
    assert_eq!(
        blocking.stats, overlapped.stats,
        "algorithmic traffic counters must not change with comm mode"
    );
}

#[test]
fn cannon_modes_identical() {
    for (d, q) in [
        (MatmulDims::new(24, 24, 24), 2usize),
        (MatmulDims::new(7, 11, 13), 3),
    ] {
        let (b, o) = run_both(q * q, move |rank, mode| {
            cannon_rank_body_mode(rank, &d, q, mode)
        });
        assert_identical(&b, &o);
    }
}

#[test]
fn summa_modes_identical() {
    for (d, pr, pc) in [
        (MatmulDims::new(32, 24, 40), 2usize, 2usize),
        (MatmulDims::new(30, 20, 25), 2, 3),
        (MatmulDims::new(30, 20, 25), 3, 2),
    ] {
        let (b, o) = run_both(pr * pc, move |rank, mode| {
            summa_rank_body_mode(rank, &d, pr, pc, mode)
        });
        assert_identical(&b, &o);
    }
}

#[test]
fn s25d_modes_identical() {
    for (d, p1, c) in [
        (MatmulDims::new(24, 16, 32), 2usize, 2usize),
        (MatmulDims::new(9, 10, 11), 2, 3),
    ] {
        let (b, o) = run_both(c * p1 * p1, move |rank, mode| {
            s25d_rank_body_mode(rank, &d, p1, c, mode)
        });
        assert_identical(&b, &o);
    }
}

#[test]
fn dns3d_modes_identical() {
    for (d, p1) in [
        (MatmulDims::new(24, 18, 30), 2usize),
        (MatmulDims::new(7, 11, 13), 2),
    ] {
        let (b, o) = run_both(p1 * p1 * p1, move |rank, mode| {
            dns3d_rank_body_mode(rank, &d, p1, mode)
        });
        assert_identical(&b, &o);
    }
}

#[test]
fn modes_identical_under_emulated_link_delay() {
    // The wall-clock link emulation (bench_comm's network model) moves
    // *when* payloads become available, never what they contain — both
    // modes must stay bitwise identical with equal counters under it.
    let cfg = MachineConfig {
        link: LinkDelay::new(Duration::from_micros(300), 2.0),
        ..MachineConfig::default()
    };
    let d = MatmulDims::new(16, 12, 20);
    let run = |mode: CommMode| {
        Machine::run::<f64, _, _>(4, cfg, move |rank| cannon_rank_body_mode(rank, &d, 2, mode))
    };
    let (b, o) = (run(CommMode::Blocking), run(CommMode::Overlapped));
    assert_identical(&b, &o);
}

#[test]
fn overlapped_pipeline_records_timing_breakdown() {
    // The point of the pipeline: the report's timing breakdown has both
    // a comm-wait and a compute component (host wall time, not part of
    // the deterministic counters).
    let d = MatmulDims::new(48, 48, 48);
    let report = Machine::run::<f64, _, _>(4, MachineConfig::default(), move |rank| {
        summa_rank_body_mode(rank, &d, 2, 2, CommMode::Overlapped)
    });
    let t = report.timing;
    assert!(t.compute_ns > 0, "compute time should be recorded");
    assert!(t.comm_wait_ns > 0, "comm-wait time should be recorded");
}

//! Property tests for the packed local matmul kernels: randomized
//! shapes (ragged row counts crossing the MR register block, reduction
//! lengths crossing the KC cache block, degenerate 1-wide extents)
//! validated against the `matmul_acc` ground truth. Replay a failing
//! case with `DISTCONV_PROPTEST_SEED=<seed from the failure report>`.

use distconv_distmm::{local_matmul, matmul_blocked, matmul_blocked_par, matmul_blocked_ref};
use distconv_par::proptest_mini::{check, Config, Gen};
use distconv_par::LocalKernel;
use distconv_tensor::matrix::matmul_acc;
use distconv_tensor::Matrix;

fn arb_dims(g: &mut Gen) -> (usize, usize, usize) {
    // Mostly small; occasionally stretch one dimension past the KC=128
    // reduction block or the PAR_ROW_BLOCK=32 row block.
    let stretch = g.usize_in(0, 3);
    let m = if stretch == 0 {
        g.usize_in(30, 70)
    } else {
        g.usize_in(1, 12)
    };
    let k = if stretch == 1 {
        g.usize_in(120, 160)
    } else {
        g.usize_in(1, 12)
    };
    let n = if stretch == 2 {
        g.usize_in(30, 70)
    } else {
        g.usize_in(1, 12)
    };
    (m, k, n)
}

#[test]
fn packed_matmul_matches_matmul_acc() {
    check(
        "packed_matmul_matches_matmul_acc",
        Config::with_cases(64),
        |g| {
            let (m, k, n) = arb_dims(g);
            let seed = g.u64();
            let a = Matrix::<f64>::random(m, k, seed);
            let b = Matrix::<f64>::random(k, n, seed ^ 0x9E37_79B9_7F4A_7C15);
            let mut c_ref = Matrix::random(m, n, seed ^ 0xABCD);
            let mut c_fast = Matrix::from_vec(m, n, c_ref.as_slice().to_vec());
            // Accumulate onto non-zero C: both must add, not overwrite.
            matmul_acc(&mut c_ref, &a, &b);
            matmul_blocked(&mut c_fast, &a, &b);
            // Ascending-l per-element accumulation ⇒ bitwise equal.
            assert_eq!(c_fast.as_slice(), c_ref.as_slice(), "{m}x{k}x{n}");
        },
    );
}

#[test]
fn all_kernels_agree_bitwise() {
    check("all_matmul_kernels_agree", Config::with_cases(48), |g| {
        let (m, k, n) = arb_dims(g);
        let seed = g.u64();
        let a = Matrix::<f32>::random(m, k, seed);
        let b = Matrix::<f32>::random(k, n, seed ^ 1);
        let mut c_ref = Matrix::zeros(m, n);
        matmul_blocked_ref(&mut c_ref, &a, &b);
        let mut c_par = Matrix::zeros(m, n);
        matmul_blocked_par(&mut c_par, &a, &b);
        assert_eq!(c_par.as_slice(), c_ref.as_slice(), "par {m}x{k}x{n}");
        // Winograd included: matmuls have no fast-bilinear analog, so
        // the variant must be bitwise-identical to Fast here.
        for kernel in [
            LocalKernel::Reference,
            LocalKernel::Fast,
            LocalKernel::Winograd,
        ] {
            let mut c = Matrix::zeros(m, n);
            local_matmul(kernel, &mut c, &a, &b);
            assert_eq!(c.as_slice(), c_ref.as_slice(), "{kernel:?} {m}x{k}x{n}");
        }
    });
}

//! 2D SUMMA (van de Geijn & Watts, 1997) on the simulated machine.
//!
//! Layout: a `pr × pc` grid; every matrix is block-distributed over it
//! (`A` by `(m/pr, k/pc)` blocks, `B` by `(k/pr, n/pc)`, `C` by
//! `(m/pr, n/pc)`). The multiply iterates over panels of the `k`
//! dimension; for each panel, the grid column owning those `A` columns
//! broadcasts them along each row, the grid row owning those `B` rows
//! broadcasts them along each column, and every rank accumulates a
//! local block product.
//!
//! Exact total volume with binomial broadcasts:
//! `(pc−1)·m·k + (pr−1)·k·n` — pinned in tests against the measured
//! counters, validating both the algorithm and the simulator.

use crate::common::{full_a, full_b, shard_a, shard_b, MatmulDims, MmReport};
use crate::local::local_matmul;
use distconv_par::{CommMode, LocalKernel};
use distconv_simnet::{CartGrid, Machine, MachineConfig, Rank, RunError};
use distconv_tensor::matrix::matmul_acc;
use distconv_tensor::shape::BlockDist;
use distconv_tensor::{Matrix, Scalar};

/// Panel boundaries along `k`: the union of `A`'s column-block and
/// `B`'s row-block boundaries, so every panel has a single owner in
/// both distributions.
pub(crate) fn panel_bounds(k: usize, pr: usize, pc: usize) -> Vec<usize> {
    let da = BlockDist::new(k, pc);
    let db = BlockDist::new(k, pr);
    let mut cuts: Vec<usize> = (0..=pc)
        .map(|i| da.lo(i))
        .chain((0..=pr).map(|i| db.lo(i)))
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

/// Per-rank SUMMA body with the comm mode resolved from the
/// environment (`DISTCONV_COMM`): returns this rank's `C` block.
///
/// `rank.id()` is interpreted row-major on the `pr × pc` grid.
pub fn summa_rank_body<T: Scalar + distconv_simnet::Msg>(
    rank: &Rank<T>,
    d: &MatmulDims,
    pr: usize,
    pc: usize,
) -> Matrix<T> {
    summa_rank_body_mode(rank, d, pr, pc, CommMode::from_env())
}

/// [`summa_rank_body`] with an explicit [`CommMode`].
///
/// In [`CommMode::Overlapped`], the panel loop is double-buffered: the
/// two broadcasts for panel `t+1` are *posted* (root sends go out
/// immediately) before panel `t` is waited for and multiplied. Panel
/// order, broadcast trees, payloads, and the accumulation order into
/// `C` are identical to the blocking path, so results are bitwise
/// equal and the traffic counters unchanged.
pub fn summa_rank_body_mode<T: Scalar + distconv_simnet::Msg>(
    rank: &Rank<T>,
    d: &MatmulDims,
    pr: usize,
    pc: usize,
    mode: CommMode,
) -> Matrix<T> {
    assert_eq!(rank.size(), pr * pc, "grid size mismatch");
    let grid = CartGrid::new(vec![pr, pc]);
    let coords = grid.coords_of(rank.id());
    let (i, j) = (coords[0], coords[1]);
    let world: Vec<usize> = (0..rank.size()).collect();
    let row_comm = grid.sub_comm(rank, rank.id(), &world, &[1]); // vary j
    let col_comm = grid.sub_comm(rank, rank.id(), &world, &[0]); // vary i

    let rows_m = BlockDist::new(d.m, pr);
    let cols_k_a = BlockDist::new(d.k, pc);
    let rows_k_b = BlockDist::new(d.k, pr);
    let cols_n = BlockDist::new(d.n, pc);

    let (mi_lo, mi_hi) = rows_m.range(i);
    let (ka_lo, ka_hi) = cols_k_a.range(j);
    let (kb_lo, kb_hi) = rows_k_b.range(i);
    let (nj_lo, nj_hi) = cols_n.range(j);

    // Materialize local blocks (data assumed pre-distributed).
    let a_block = shard_a::<T>(d, mi_lo, mi_hi - mi_lo, ka_lo, ka_hi - ka_lo);
    let b_block = shard_b::<T>(d, kb_lo, kb_hi - kb_lo, nj_lo, nj_hi - nj_lo);
    let mut c_block = Matrix::<T>::zeros(mi_hi - mi_lo, nj_hi - nj_lo);
    let _lease = rank
        .mem()
        .lease_or_panic((a_block.len() + b_block.len() + c_block.len()) as u64);

    let kernel = LocalKernel::from_env();
    let cuts = panel_bounds(d.k, pr, pc);
    let panels: Vec<(usize, usize)> = cuts
        .windows(2)
        .filter(|w| w[0] < w[1])
        .map(|w| (w[0], w[1]))
        .collect();
    // Trace stamping: panel t's broadcasts and multiply are stamped t
    // in both modes — the pipelined path stamps a posted broadcast with
    // the panel it carries, so the canonical trace is mode-independent.
    match mode {
        CommMode::Blocking => {
            for (t, &(k0, k1)) in panels.iter().enumerate() {
                rank.set_step(t as u64);
                let kk = k1 - k0;
                // --- A panel: owner column broadcasts along the row. ---
                let ja = cols_k_a.owner(k0);
                let mut a_panel = if j == ja {
                    a_block.pack_block(0, k0 - ka_lo, mi_hi - mi_lo, kk)
                } else {
                    vec![T::zero(); (mi_hi - mi_lo) * kk]
                };
                let _pl = rank.mem().lease_or_panic(a_panel.len() as u64);
                row_comm.bcast(ja, &mut a_panel);
                // --- B panel: owner row broadcasts along the column. ---
                let ib = rows_k_b.owner(k0);
                let mut b_panel = if i == ib {
                    b_block.pack_block(k0 - kb_lo, 0, kk, nj_hi - nj_lo)
                } else {
                    vec![T::zero(); kk * (nj_hi - nj_lo)]
                };
                let _pl2 = rank.mem().lease_or_panic(b_panel.len() as u64);
                col_comm.bcast(ib, &mut b_panel);
                // --- Local block product. ---
                let a_m = Matrix::from_vec(mi_hi - mi_lo, kk, a_panel);
                let b_m = Matrix::from_vec(kk, nj_hi - nj_lo, b_panel);
                rank.time_compute(|| local_matmul(kernel, &mut c_block, &a_m, &b_m));
            }
        }
        CommMode::Overlapped => {
            // Post both broadcasts for a panel: the owner packs its
            // piece and its tree sends go out immediately; non-owners
            // pass an empty payload (ignored — they receive on wait).
            let post = |k0: usize, k1: usize| {
                let kk = k1 - k0;
                let ja = cols_k_a.owner(k0);
                let a_payload = if j == ja {
                    a_block.pack_block(0, k0 - ka_lo, mi_hi - mi_lo, kk)
                } else {
                    Vec::new()
                };
                let ib = rows_k_b.owner(k0);
                let b_payload = if i == ib {
                    b_block.pack_block(k0 - kb_lo, 0, kk, nj_hi - nj_lo)
                } else {
                    Vec::new()
                };
                (
                    row_comm.ibcast(ja, a_payload),
                    col_comm.ibcast(ib, b_payload),
                )
            };
            // Prime the pipeline with panel 0, then per step: post the
            // broadcasts for panel t+1, wait for panel t, multiply.
            rank.set_step(0);
            let mut pending = panels.first().map(|&(k0, k1)| post(k0, k1));
            for (t, &(k0, k1)) in panels.iter().enumerate() {
                let (pa, pb) = pending.take().expect("pipeline primed");
                if let Some(&(n0, n1)) = panels.get(t + 1) {
                    rank.set_step(t as u64 + 1);
                    pending = Some(post(n0, n1));
                }
                rank.set_step(t as u64);
                let kk = k1 - k0;
                let _pl = rank.mem().lease_or_panic(((mi_hi - mi_lo) * kk) as u64);
                let a_panel = pa.wait();
                let _pl2 = rank.mem().lease_or_panic((kk * (nj_hi - nj_lo)) as u64);
                let b_panel = pb.wait();
                let a_m = Matrix::from_vec(mi_hi - mi_lo, kk, a_panel);
                let b_m = Matrix::from_vec(kk, nj_hi - nj_lo, b_panel);
                rank.time_compute(|| local_matmul(kernel, &mut c_block, &a_m, &b_m));
            }
        }
    }
    c_block
}

/// Exact analytic total volume of SUMMA on a `pr × pc` grid:
/// `(pc−1)·m·k + (pr−1)·k·n`.
pub fn summa_analytic_volume(d: &MatmulDims, pr: usize, pc: usize) -> u128 {
    (pc as u128 - 1) * d.size_a() + (pr as u128 - 1) * d.size_b()
}

/// Drive a full SUMMA run: execute, verify every block against the
/// sequential reference, report measured vs analytic volumes.
pub fn run_summa(d: MatmulDims, pr: usize, pc: usize, cfg: MachineConfig) -> MmReport {
    try_run_summa(d, pr, pc, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_summa`]: surfaces rank failures (injected crashes,
/// deadlocks, OOM) as a [`RunError`] instead of panicking.
pub fn try_run_summa(
    d: MatmulDims,
    pr: usize,
    pc: usize,
    cfg: MachineConfig,
) -> Result<MmReport, RunError> {
    let report = Machine::try_run::<f64, _, _>(pr * pc, cfg, |rank| {
        summa_rank_body::<f64>(rank, &d, pr, pc)
    })?;
    let verified = verify_blocks(&d, pr, pc, &report.results);
    Ok(MmReport {
        dims: d,
        procs: pr * pc,
        analytic_volume: summa_analytic_volume(&d, pr, pc),
        verified,
        max_peak_mem: report.max_peak_mem(),
        sim_time: report.sim_time,
        makespan: report.makespan,
        stats: report.stats,
        trace: report.trace,
    })
}

/// Check every rank's `C` block against the sequential product.
pub(crate) fn verify_blocks(d: &MatmulDims, pr: usize, pc: usize, blocks: &[Matrix<f64>]) -> bool {
    let a = full_a::<f64>(d);
    let b = full_b::<f64>(d);
    let mut c_ref = Matrix::zeros(d.m, d.n);
    matmul_acc(&mut c_ref, &a, &b);
    let rows = BlockDist::new(d.m, pr);
    let cols = BlockDist::new(d.n, pc);
    let grid = CartGrid::new(vec![pr, pc]);
    for (id, block) in blocks.iter().enumerate() {
        let coords = grid.coords_of(id);
        let (r0, r1) = rows.range(coords[0]);
        let (c0, c1) = cols.range(coords[1]);
        if block.rows() != r1 - r0 || block.cols() != c1 - c0 {
            return false;
        }
        for bi in 0..block.rows() {
            for bj in 0..block.cols() {
                let got = block[(bi, bj)];
                let want = c_ref[(r0 + bi, c0 + bj)];
                let denom = want.abs().max(1.0);
                if (got - want).abs() / denom > 1e-9 {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_run_surfaces_injected_crash() {
        use distconv_simnet::{FailureKind, FaultPlan};
        let d = MatmulDims::new(16, 16, 16);
        let cfg = MachineConfig {
            recv_timeout: std::time::Duration::from_millis(300),
            faults: FaultPlan::default().with_crash(0, 1),
            ..MachineConfig::default()
        };
        let err = try_run_summa(d, 2, 2, cfg).expect_err("crash must fail the run");
        assert!(err.has_injected_crash());
        assert!(err
            .failures
            .iter()
            .any(|f| f.rank == 0 && f.kind == FailureKind::Crash));
    }

    #[test]
    fn summa_square_grid_exact_volume() {
        let d = MatmulDims::new(32, 24, 40);
        let r = run_summa(d, 2, 2, MachineConfig::default());
        assert!(r.verified, "result mismatch");
        assert_eq!(r.stats.total_elems() as u128, r.analytic_volume);
        assert_eq!(r.analytic_volume, (32 * 40 + 40 * 24) as u128);
    }

    #[test]
    fn summa_rectangular_grids() {
        let d = MatmulDims::new(30, 20, 25); // non-divisible everywhere
        for (pr, pc) in [(1usize, 4usize), (4, 1), (2, 3), (3, 2)] {
            let r = run_summa(d, pr, pc, MachineConfig::default());
            assert!(r.verified, "grid {pr}x{pc}");
            assert_eq!(
                r.stats.total_elems() as u128,
                summa_analytic_volume(&d, pr, pc),
                "grid {pr}x{pc}"
            );
        }
    }

    #[test]
    fn summa_single_rank_no_traffic() {
        let d = MatmulDims::square(16);
        let r = run_summa(d, 1, 1, MachineConfig::default());
        assert!(r.verified);
        assert_eq!(r.stats.total_elems(), 0);
    }

    #[test]
    fn summa_volume_scales_with_grid_width() {
        // Doubling pc roughly doubles the A broadcast term.
        let d = MatmulDims::square(32);
        let v2 = run_summa(d, 2, 2, MachineConfig::default())
            .stats
            .total_elems();
        let v4 = run_summa(d, 2, 4, MachineConfig::default())
            .stats
            .total_elems();
        assert!(v4 > v2, "wider grid must move more A data: {v4} vs {v2}");
    }

    #[test]
    fn conformance_cross_checks_trace_against_counters() {
        let d = MatmulDims::new(30, 20, 25);
        let r = run_summa(d, 2, 3, MachineConfig::default());
        let rep = r.conformance("summa");
        assert!(rep.pass(), "conformance failed:\n{rep}");
        // One total-volume row plus one cross-check row per rank.
        assert_eq!(rep.rows.len(), 1 + 6, "{rep}");
        assert!(rep.rows[0].name.contains("summa/total-volume"));
    }

    #[test]
    fn conformance_names_a_regressed_row() {
        let d = MatmulDims::square(16);
        let mut r = run_summa(d, 2, 2, MachineConfig::default());
        r.analytic_volume += 1; // simulate a volume regression
        let rep = r.conformance("summa");
        assert!(!rep.pass());
        assert_eq!(rep.failures()[0].name, "summa/total-volume");
    }

    #[test]
    fn panel_bounds_union() {
        // k=10, pc=2 cuts {0,5,10}; pr=3 cuts {0,4,7,10}.
        assert_eq!(panel_bounds(10, 3, 2), vec![0, 4, 5, 7, 10]);
    }
}

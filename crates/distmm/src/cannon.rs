//! Cannon's algorithm (1969) on the simulated machine.
//!
//! The other classic 2D matmul: a square `q × q` grid where `A` blocks
//! shift left and `B` blocks shift up each step, after an initial skew.
//! Same asymptotic volume as SUMMA (`Θ(n²√P)` total) but a completely
//! different *message* structure — `O(q)` large point-to-point shifts
//! instead of `O(q log q)` broadcast-tree messages — which makes it the
//! interesting third point in the α–β time experiments (E11): Cannon
//! trades broadcast fan-out for neighbor shifts.
//!
//! Exact total volume with the skew done as a rotation:
//! `skew: Σ_i (shift_i≠0) blocks + q²·(q−1) per-step shifts` — computed
//! exactly by [`cannon_analytic_volume`] and pinned in tests.
//!
//! Requires a square grid; block sizes may be uneven (BlockDist).

use crate::common::{shard_a, shard_b, MatmulDims, MmReport};
use crate::local::local_matmul;
use crate::summa::verify_blocks;
use distconv_par::{CommMode, LocalKernel};
use distconv_simnet::{CartGrid, Machine, MachineConfig, Rank, RunError};
use distconv_tensor::shape::BlockDist;
use distconv_tensor::{Matrix, Scalar};

/// Per-rank Cannon body on a `q × q` grid with the comm mode resolved
/// from the environment (`DISTCONV_COMM`). Returns this rank's `C`
/// block.
pub fn cannon_rank_body<T: Scalar + distconv_simnet::Msg>(
    rank: &Rank<T>,
    d: &MatmulDims,
    q: usize,
) -> Matrix<T> {
    cannon_rank_body_mode(rank, d, q, CommMode::from_env())
}

/// [`cannon_rank_body`] with an explicit [`CommMode`].
///
/// In [`CommMode::Overlapped`], each step posts the `t+1` shift
/// exchange *before* computing step `t`'s block product, then waits —
/// the double-buffered pipeline. The shift schedule (message order per
/// link, payloads, accumulation order into `C`) is identical to the
/// blocking path, so results are bitwise equal and traffic counters
/// unchanged; only the wait moves.
///
/// Note on uneven blocks: after skewing, block shapes no longer match a
/// fixed per-rank buffer, so every shifted message carries its own
/// extent implicitly via length; the inner dimension of the current `A`
/// block always equals the current `B` block's row count because both
/// were skewed by the same schedule.
pub fn cannon_rank_body_mode<T: Scalar + distconv_simnet::Msg>(
    rank: &Rank<T>,
    d: &MatmulDims,
    q: usize,
    mode: CommMode,
) -> Matrix<T> {
    assert_eq!(rank.size(), q * q, "grid size mismatch");
    let grid = CartGrid::new(vec![q, q]);
    let coords = grid.coords_of(rank.id());
    let (i, j) = (coords[0], coords[1]);
    let world: Vec<usize> = (0..rank.size()).collect();
    let row_comm = grid.sub_comm(rank, rank.id(), &world, &[1]); // vary j
    let col_comm = grid.sub_comm(rank, rank.id(), &world, &[0]); // vary i

    let rows_m = BlockDist::new(d.m, q);
    let dist_k = BlockDist::new(d.k, q);
    let cols_n = BlockDist::new(d.n, q);
    let (mi_lo, mi_hi) = rows_m.range(i);
    let (nj_lo, nj_hi) = cols_n.range(j);

    // Initial (unskewed) blocks: A(i, j), B(i, j).
    let (ka_lo, ka_hi) = dist_k.range(j);
    let (kb_lo, kb_hi) = dist_k.range(i);
    let mut a_block = shard_a::<T>(d, mi_lo, mi_hi - mi_lo, ka_lo, ka_hi - ka_lo).into_vec();
    let mut b_block = shard_b::<T>(d, kb_lo, kb_hi - kb_lo, nj_lo, nj_hi - nj_lo).into_vec();
    // Track which k-block each buffer currently holds (for shapes).
    let mut a_kblk = j;
    let mut b_kblk = i;
    let _la = rank
        .mem()
        .lease_or_panic((a_block.len() + b_block.len()) as u64);

    // --- Skew: row i rotates A left by i; column j rotates B up by j. ---
    // A left-shift by s: my new block is the one s to my right.
    if i > 0 {
        let dst = (j + q - i) % q; // member index within the row
        let src = (j + i) % q;
        a_block = row_comm.sendrecv_vec(dst, src, a_block);
        a_kblk = (j + i) % q;
    }
    if j > 0 {
        let dst = (i + q - j) % q;
        let src = (i + j) % q;
        b_block = col_comm.sendrecv_vec(dst, src, b_block);
        b_kblk = (i + j) % q;
    }

    let mut c_block = Matrix::<T>::zeros(mi_hi - mi_lo, nj_hi - nj_lo);
    let _lc = rank.mem().lease_or_panic(c_block.len() as u64);

    // Shift A left by one, B up by one — same neighbors every step.
    let a_dst = (j + q - 1) % q;
    let a_src = (j + 1) % q;
    let b_dst = (i + q - 1) % q;
    let b_src = (i + 1) % q;

    let kernel = LocalKernel::from_env();
    // --- q multiply-shift steps. ---
    for step in 0..q {
        debug_assert_eq!(a_kblk, b_kblk, "skew must align k-blocks");
        let (k_lo, k_hi) = dist_k.range(a_kblk);
        let kk = k_hi - k_lo;
        // Trace stamping: the shift that feeds step t+1 is stamped t+1
        // in both modes, so the canonical trace is mode-independent.
        match mode {
            CommMode::Blocking => {
                // Compute step t, then exchange for t+1 (wait inline).
                rank.set_step(step as u64);
                let a_m = Matrix::from_vec(mi_hi - mi_lo, kk, a_block);
                let b_m = Matrix::from_vec(kk, nj_hi - nj_lo, b_block);
                rank.time_compute(|| local_matmul(kernel, &mut c_block, &a_m, &b_m));
                a_block = a_m.into_vec();
                b_block = b_m.into_vec();
                if step + 1 < q {
                    rank.set_step(step as u64 + 1);
                    a_block = row_comm.sendrecv_vec(a_dst, a_src, a_block);
                    b_block = col_comm.sendrecv_vec(b_dst, b_src, b_block);
                }
            }
            CommMode::Overlapped => {
                // Post the t+1 exchange first (the sends copy the
                // current blocks onto the wire), compute step t while
                // the shifted blocks are in flight, then wait.
                let pending = if step + 1 < q {
                    rank.set_step(step as u64 + 1);
                    let pa = row_comm.isendrecv(a_dst, a_src, a_block.clone());
                    let pb = col_comm.isendrecv(b_dst, b_src, b_block.clone());
                    Some((pa, pb))
                } else {
                    None
                };
                rank.set_step(step as u64);
                let a_m = Matrix::from_vec(mi_hi - mi_lo, kk, std::mem::take(&mut a_block));
                let b_m = Matrix::from_vec(kk, nj_hi - nj_lo, std::mem::take(&mut b_block));
                rank.time_compute(|| local_matmul(kernel, &mut c_block, &a_m, &b_m));
                if let Some((pa, pb)) = pending {
                    rank.set_step(step as u64 + 1);
                    a_block = pa.wait();
                    b_block = pb.wait();
                }
            }
        }
        if step + 1 < q {
            a_kblk = (a_kblk + 1) % q;
            b_kblk = (b_kblk + 1) % q;
        }
    }
    c_block
}

/// Exact analytic total volume of Cannon on a `q × q` grid.
///
/// Skew: rows `i > 0` rotate their `A` blocks (`q` blocks of `m_i × k`
/// columns move once each), columns `j > 0` likewise for `B`. Steps:
/// `q−1` shifts of every `A` and `B` block. With uneven `BlockDist`
/// blocks the exact count sums actual block sizes; for divisible
/// dimensions it reduces to `(q−1)·(|A| + |B|) + skew`.
pub fn cannon_analytic_volume(d: &MatmulDims, q: usize) -> u128 {
    let rows_m = BlockDist::new(d.m, q);
    let dist_k = BlockDist::new(d.k, q);
    let cols_n = BlockDist::new(d.n, q);
    let mut vol: u128 = 0;
    // Skew volume: every rank in row i > 0 sends its A block once;
    // every rank in column j > 0 sends its B block once.
    for i in 0..q {
        for j in 0..q {
            let a_len = (rows_m.len(i) * dist_k.len(j)) as u128;
            let b_len = (dist_k.len(i) * cols_n.len(j)) as u128;
            if i > 0 {
                vol += a_len;
            }
            if j > 0 {
                vol += b_len;
            }
        }
    }
    // Step shifts: q−1 rounds; in each, every rank ships its *current*
    // A and B blocks. Total over rounds = (q−1)·(|A| + |B|) regardless
    // of which block sits where (blocks permute, sizes conserved).
    vol += (q as u128 - 1) * (d.size_a() + d.size_b());
    vol
}

/// Drive a Cannon run on `q²` ranks; verify all blocks.
pub fn run_cannon(d: MatmulDims, q: usize, cfg: MachineConfig) -> MmReport {
    try_run_cannon(d, q, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_cannon`]: surfaces rank failures as a [`RunError`]
/// instead of panicking.
pub fn try_run_cannon(d: MatmulDims, q: usize, cfg: MachineConfig) -> Result<MmReport, RunError> {
    let report =
        Machine::try_run::<f64, _, _>(q * q, cfg, |rank| cannon_rank_body::<f64>(rank, &d, q))?;
    let verified = verify_blocks(&d, q, q, &report.results);
    Ok(MmReport {
        dims: d,
        procs: q * q,
        analytic_volume: cannon_analytic_volume(&d, q),
        verified,
        max_peak_mem: report.max_peak_mem(),
        sim_time: report.sim_time,
        makespan: report.makespan,
        stats: report.stats,
        trace: report.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summa::run_summa;

    #[test]
    fn cannon_square_divisible() {
        let d = MatmulDims::new(24, 24, 24);
        for q in [1usize, 2, 3, 4] {
            let r = run_cannon(d, q, MachineConfig::default());
            assert!(r.verified, "q={q}");
            assert_eq!(
                r.stats.total_elems() as u128,
                r.analytic_volume,
                "q={q}: measured vs analytic"
            );
        }
    }

    #[test]
    fn cannon_uneven_blocks() {
        let d = MatmulDims::new(7, 11, 13);
        let r = run_cannon(d, 3, MachineConfig::default());
        assert!(r.verified);
        assert_eq!(r.stats.total_elems() as u128, r.analytic_volume);
    }

    #[test]
    fn cannon_fewer_messages_than_summa() {
        // The structural difference E11 exploits: at the same grid,
        // Cannon sends O(q) messages per rank vs SUMMA's broadcast
        // trees.
        let d = MatmulDims::square(32);
        let rc = run_cannon(d, 4, MachineConfig::default());
        let rs = run_summa(d, 4, 4, MachineConfig::default());
        assert!(rc.verified && rs.verified);
        // Volumes are the same order; message counts differ structurally.
        assert!(rc.stats.total_msgs() < rs.stats.total_msgs() * 2);
        let ratio = rc.stats.total_elems() as f64 / rs.stats.total_elems() as f64;
        assert!((0.5..2.5).contains(&ratio), "volume ratio {ratio}");
    }

    #[test]
    fn cannon_shift_chain_shows_in_makespan() {
        // Cannon's shifts serialize (step t+1 needs step t's block),
        // so its makespan is Θ(q) hops; SUMMA's per-panel broadcast
        // trees are Θ(log q) deep but there are more of them. Both
        // must exceed their own volume-based per-rank estimates under
        // a latency-heavy profile.
        use distconv_simnet::CostParams;
        let cfg = MachineConfig {
            cost: CostParams {
                alpha: 1e-4,
                beta: 1e-10,
            },
            ..MachineConfig::default()
        };
        let d = MatmulDims::square(32);
        let rc = run_cannon(d, 4, cfg);
        let rs = run_summa(d, 4, 4, cfg);
        assert!(rc.verified && rs.verified);
        assert!(rc.makespan > 0.0 && rs.makespan > 0.0);
        // Cannon: ≥ skew + (q−1) serialized shifts ≈ 5+ hops of α.
        assert!(
            rc.makespan >= 4.0 * 1e-4,
            "Cannon makespan {} should reflect the shift chain",
            rc.makespan
        );
    }

    #[test]
    fn cannon_rectangular() {
        let d = MatmulDims::new(16, 8, 32);
        let r = run_cannon(d, 2, MachineConfig::default());
        assert!(r.verified);
        assert_eq!(r.stats.total_elems() as u128, r.analytic_volume);
    }
}

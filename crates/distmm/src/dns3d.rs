//! 3D matrix multiplication (Dekel–Nassimi–Sahni; Agarwal et al.) on
//! the simulated machine.
//!
//! Grid `p₁ × p₁ × p₁` with coordinates `(i, j, l)`; rank `(i, j, l)`
//! computes the partial product `A(i,l) · B(l,j)` and the partials are
//! reduced over `l`:
//!
//! 1. `A(i,l)` lives on the `j = 0` face; broadcast along the `j` fiber.
//! 2. `B(l,j)` lives on the `i = 0` face; broadcast along the `i` fiber.
//! 3. Local block product.
//! 4. Reduce `C(i,j)` partials along the `l` fiber to `l = 0`.
//!
//! Exact total volume with binomial trees:
//! `(p₁−1)·(m·k + k·n + m·n)` — pinned in tests. Per-rank volume decays
//! as `P^{2/3}`, the 3D algorithm's signature (vs `P^{1/2}` for 2D).

use crate::common::{shard_a, shard_b, MatmulDims, MmReport};
use crate::local::local_matmul;
use crate::summa::verify_blocks;
use distconv_par::{CommMode, LocalKernel};
use distconv_simnet::{CartGrid, Machine, MachineConfig, Rank, RunError};
use distconv_tensor::shape::BlockDist;
use distconv_tensor::{Matrix, Scalar};

/// Per-rank 3D-algorithm body with the comm mode resolved from the
/// environment (`DISTCONV_COMM`). Returns this rank's reduced `C`
/// block on the `l = 0` face (empty matrix elsewhere).
pub fn dns3d_rank_body<T: Scalar + distconv_simnet::Msg>(
    rank: &Rank<T>,
    d: &MatmulDims,
    p1: usize,
) -> Matrix<T> {
    dns3d_rank_body_mode(rank, d, p1, CommMode::from_env())
}

/// [`dns3d_rank_body`] with an explicit [`CommMode`].
///
/// The 3D algorithm has a single compute step, so there is no multi-step
/// pipeline to double-buffer; in [`CommMode::Overlapped`] the `A` and
/// `B` face broadcasts are *posted together* (both root faces send
/// immediately) instead of completing the `A` broadcast before the `B`
/// broadcast starts. Payloads, trees, and the one local product are
/// identical, so results are bitwise equal and counters unchanged.
pub fn dns3d_rank_body_mode<T: Scalar + distconv_simnet::Msg>(
    rank: &Rank<T>,
    d: &MatmulDims,
    p1: usize,
    mode: CommMode,
) -> Matrix<T> {
    assert_eq!(rank.size(), p1 * p1 * p1, "grid size mismatch");
    let grid = CartGrid::new(vec![p1, p1, p1]);
    let coords = grid.coords_of(rank.id());
    let (i, j, l) = (coords[0], coords[1], coords[2]);
    let world: Vec<usize> = (0..rank.size()).collect();
    let j_comm = grid.sub_comm(rank, rank.id(), &world, &[1]);
    let i_comm = grid.sub_comm(rank, rank.id(), &world, &[0]);
    let l_comm = grid.sub_comm(rank, rank.id(), &world, &[2]);

    let rows_m = BlockDist::new(d.m, p1);
    let dist_k = BlockDist::new(d.k, p1);
    let cols_n = BlockDist::new(d.n, p1);
    let (mi_lo, mi_hi) = rows_m.range(i);
    let (kl_lo, kl_hi) = dist_k.range(l);
    let (nj_lo, nj_hi) = cols_n.range(j);

    let a_len = (mi_hi - mi_lo) * (kl_hi - kl_lo);
    let b_len = (kl_hi - kl_lo) * (nj_hi - nj_lo);
    let (a_buf, b_buf, _la, _lb) = match mode {
        CommMode::Blocking => {
            // A(i,l): materialized on the j=0 face, broadcast along j.
            let mut a_buf = if j == 0 {
                shard_a::<T>(d, mi_lo, mi_hi - mi_lo, kl_lo, kl_hi - kl_lo).into_vec()
            } else {
                vec![T::zero(); a_len]
            };
            let la = rank.mem().lease_or_panic(a_buf.len() as u64);
            j_comm.bcast(0, &mut a_buf);

            // B(l,j): materialized on the i=0 face, broadcast along i.
            let mut b_buf = if i == 0 {
                shard_b::<T>(d, kl_lo, kl_hi - kl_lo, nj_lo, nj_hi - nj_lo).into_vec()
            } else {
                vec![T::zero(); b_len]
            };
            let lb = rank.mem().lease_or_panic(b_buf.len() as u64);
            i_comm.bcast(0, &mut b_buf);
            (a_buf, b_buf, la, lb)
        }
        CommMode::Overlapped => {
            // Post both face broadcasts before waiting for either, so
            // the two trees' sends are in flight concurrently.
            let a_payload = if j == 0 {
                shard_a::<T>(d, mi_lo, mi_hi - mi_lo, kl_lo, kl_hi - kl_lo).into_vec()
            } else {
                Vec::new()
            };
            let pa = j_comm.ibcast(0, a_payload);
            let b_payload = if i == 0 {
                shard_b::<T>(d, kl_lo, kl_hi - kl_lo, nj_lo, nj_hi - nj_lo).into_vec()
            } else {
                Vec::new()
            };
            let pb = i_comm.ibcast(0, b_payload);
            let la = rank.mem().lease_or_panic(a_len as u64);
            let a_buf = pa.wait();
            let lb = rank.mem().lease_or_panic(b_len as u64);
            let b_buf = pb.wait();
            (a_buf, b_buf, la, lb)
        }
    };

    // Local partial product.
    let a_m = Matrix::from_vec(mi_hi - mi_lo, kl_hi - kl_lo, a_buf);
    let b_m = Matrix::from_vec(kl_hi - kl_lo, nj_hi - nj_lo, b_buf);
    let mut c_part = Matrix::<T>::zeros(mi_hi - mi_lo, nj_hi - nj_lo);
    let _lc = rank.mem().lease_or_panic(c_part.len() as u64);
    rank.time_compute(|| local_matmul(LocalKernel::from_env(), &mut c_part, &a_m, &b_m));

    // Reduce partials over l to the l = 0 face. The broadcast phase is
    // stamped step 0 (the default) in both modes; the reduction is its
    // own step.
    rank.set_step(1);
    let mut c_buf = c_part.into_vec();
    l_comm.reduce(0, &mut c_buf);
    if l == 0 {
        Matrix::from_vec(mi_hi - mi_lo, nj_hi - nj_lo, c_buf)
    } else {
        Matrix::zeros(0, 0)
    }
}

/// Exact analytic total volume: `(p₁−1)·(|A| + |B| + |C|)`.
pub fn dns3d_analytic_volume(d: &MatmulDims, p1: usize) -> u128 {
    (p1 as u128 - 1) * (d.size_a() + d.size_b() + d.size_c())
}

/// Drive a 3D run on `p₁³` ranks; verify the `l = 0` face blocks.
pub fn run_dns3d(d: MatmulDims, p1: usize, cfg: MachineConfig) -> MmReport {
    try_run_dns3d(d, p1, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_dns3d`]: surfaces rank failures as a [`RunError`]
/// instead of panicking.
pub fn try_run_dns3d(d: MatmulDims, p1: usize, cfg: MachineConfig) -> Result<MmReport, RunError> {
    let report = Machine::try_run::<f64, _, _>(p1 * p1 * p1, cfg, |rank| {
        dns3d_rank_body::<f64>(rank, &d, p1)
    })?;
    // Collect the l = 0 face in (i, j) row-major order for verification.
    let grid = CartGrid::new(vec![p1, p1, p1]);
    let mut face = Vec::with_capacity(p1 * p1);
    for i in 0..p1 {
        for j in 0..p1 {
            face.push(report.results[grid.index_of(&[i, j, 0])].clone());
        }
    }
    let verified = verify_blocks(&d, p1, p1, &face);
    Ok(MmReport {
        dims: d,
        procs: p1 * p1 * p1,
        analytic_volume: dns3d_analytic_volume(&d, p1),
        verified,
        max_peak_mem: report.max_peak_mem(),
        sim_time: report.sim_time,
        makespan: report.makespan,
        stats: report.stats,
        trace: report.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summa::{run_summa, summa_analytic_volume};

    #[test]
    fn dns3d_exact_volume_and_result() {
        let d = MatmulDims::new(24, 18, 30);
        let r = run_dns3d(d, 2, MachineConfig::default());
        assert!(r.verified);
        assert_eq!(r.stats.total_elems() as u128, r.analytic_volume);
        assert_eq!(r.analytic_volume, (24 * 30 + 30 * 18 + 24 * 18) as u128);
    }

    #[test]
    fn dns3d_p1_equals_local() {
        let d = MatmulDims::square(12);
        let r = run_dns3d(d, 1, MachineConfig::default());
        assert!(r.verified);
        assert_eq!(r.stats.total_elems(), 0);
    }

    #[test]
    fn dns3d_beats_summa_at_same_proc_count() {
        // The headline trade-off: at P = 64, 3D (4³) moves less than
        // 2D SUMMA (8×8) for a square problem — the paper's Case-2 vs
        // Case-1 distinction in matmul form.
        let d = MatmulDims::square(64);
        let v3d = dns3d_analytic_volume(&d, 4);
        let v2d = summa_analytic_volume(&d, 8, 8);
        assert!(
            v3d < v2d,
            "3D volume {v3d} should undercut 2D volume {v2d} at P=64"
        );
        // And measured agrees for a small instance.
        let r3 = run_dns3d(MatmulDims::square(16), 2, MachineConfig::default());
        let r2 = run_summa(MatmulDims::square(16), 2, 4, MachineConfig::default());
        assert!(r3.verified && r2.verified);
        assert!(r3.stats.total_elems() < r2.stats.total_elems());
    }

    #[test]
    fn dns3d_uneven_blocks() {
        let d = MatmulDims::new(7, 11, 13); // nothing divides
        let r = run_dns3d(d, 2, MachineConfig::default());
        assert!(r.verified);
        assert_eq!(r.stats.total_elems() as u128, r.analytic_volume);
    }
}

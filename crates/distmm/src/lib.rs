//! # distconv-distmm
//!
//! Distributed matrix-multiplication reference algorithms on the
//! `simnet` substrate: **2D SUMMA** (van de Geijn–Watts), **3D**
//! (Dekel–Nassimi–Sahni / Agarwal et al.) and **2.5D**
//! (Solomonik–Demmel).
//!
//! These are the algorithms the paper's Sec. 2.2 identifies its CNN
//! regimes with ("The Case 1 solution is analogous to the 2D SUMMA
//! algorithm … Case 2 corresponds to the 2.5D and 3D algorithms").
//! This crate implements them for three purposes:
//!
//! 1. **Analogy validation (experiment E7)** — a 1×1-stride-1
//!    convolution *is* a matrix multiplication
//!    (`[bhw × c] · [c × k]`); the distributed CNN algorithm's measured
//!    communication volumes are compared against these algorithms' on
//!    the same processor grids.
//! 2. **Baselines** — the memory/communication trade-off curves
//!    (2D → 2.5D → 3D as memory grows) that the CNN algorithm must
//!    reproduce in shape.
//! 3. **Substrate validation** — their volumes are known closed forms
//!    (pinned exactly in tests), which double-checks the simulator's
//!    accounting.
//!
//! Conventions: `C[m×n] = A[m×k] · B[k×n]`, all matrices dense
//! row-major. Each rank *materializes* its input blocks locally from
//! the deterministic seed (no distribution phase is charged — the
//! standard assumption in the matmul literature, which counts the
//! multiply-phase traffic; the CNN side's `cost_I` is charged
//! separately, as the paper does).

#![warn(missing_docs)]

pub mod cannon;
pub mod common;
pub mod dns3d;
pub mod local;
pub mod s25d;
pub mod summa;

pub use cannon::{cannon_rank_body, cannon_rank_body_mode, run_cannon, try_run_cannon};
pub use common::{MatmulDims, MmReport};
pub use dns3d::{dns3d_rank_body, dns3d_rank_body_mode, run_dns3d, try_run_dns3d};
pub use local::{local_matmul, matmul_blocked, matmul_blocked_par, matmul_blocked_ref};
pub use s25d::{run_25d, s25d_rank_body, s25d_rank_body_mode, try_run_25d};
pub use summa::{run_summa, summa_rank_body, summa_rank_body_mode, try_run_summa};

//! 2.5D matrix multiplication (Solomonik & Demmel, 2011) on the
//! simulated machine.
//!
//! Grid `c × p₁ × p₁` (`c` layers of a `p₁ × p₁` SUMMA grid,
//! `P = c·p₁²`), coordinates `(l, i, j)`:
//!
//! 1. The `k` dimension is cut into `c` **slabs**; layer `l` receives
//!    slab `l` of `A`'s columns and `B`'s rows from the layer-0 owners
//!    (point-to-point redistribution — each input element travels to
//!    exactly one layer).
//! 2. Each layer runs SUMMA panel steps over its own slab on its
//!    `p₁ × p₁` grid, producing a **partial `C`** — the replicated
//!    tensor (`c` copies of `C` live simultaneously, which is where the
//!    extra memory goes; exactly analogous to the CNN paper's
//!    replication of `Out` along the `c` grid dimension).
//! 3. Partial `C`s are reduced along `l` to layer 0.
//!
//! Exact total volume with binomial trees and even slabs:
//!
//! ```text
//! (c−1)/c·(m·k + k·n)        redistribution
//! + (p₁−1)·(m·k + k·n)       panel broadcasts (grid is narrower!)
//! + (c−1)·m·n                C reduction
//! ```
//!
//! At fixed `P`, growing `c` shrinks `p₁ = √(P/c)` and with it the
//! dominant panel term: memory buys communication. `c = 1` degenerates
//! to exact 2D SUMMA; `c = p₁` reaches the 3D regime.

use crate::common::{shard_a, shard_b, MatmulDims, MmReport};
use crate::local::local_matmul;
use crate::summa::verify_blocks;
use distconv_par::{CommMode, LocalKernel};
use distconv_simnet::{CartGrid, Machine, MachineConfig, Rank, RunError};
use distconv_tensor::shape::BlockDist;
use distconv_tensor::{Matrix, Scalar};

const TAG_A_SLAB: u64 = 0x25D0_000A;
const TAG_B_SLAB: u64 = 0x25D0_000B;

/// Panel boundaries inside `[s_lo, s_hi)`: slab edges plus any `A`
/// column-block or `B` row-block boundary falling inside the slab.
fn slab_panels(s_lo: usize, s_hi: usize, k: usize, p1: usize) -> Vec<usize> {
    let da = BlockDist::new(k, p1);
    let mut cuts: Vec<usize> = (0..=p1)
        .map(|i| da.lo(i))
        .filter(|&x| x > s_lo && x < s_hi)
        .collect();
    cuts.push(s_lo);
    cuts.push(s_hi);
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

/// Per-rank 2.5D body with the comm mode resolved from the environment
/// (`DISTCONV_COMM`). Returns this rank's reduced `C` block on layer 0
/// (empty matrix on other layers).
pub fn s25d_rank_body<T: Scalar + distconv_simnet::Msg>(
    rank: &Rank<T>,
    d: &MatmulDims,
    p1: usize,
    c: usize,
) -> Matrix<T> {
    s25d_rank_body_mode(rank, d, p1, c, CommMode::from_env())
}

/// [`s25d_rank_body`] with an explicit [`CommMode`].
///
/// In [`CommMode::Overlapped`], the per-layer SUMMA panel loop is
/// double-buffered exactly as in
/// [`summa_rank_body_mode`](crate::summa::summa_rank_body_mode): the
/// broadcasts for panel `t+1` are posted before panel `t` is waited
/// for and multiplied. The slab redistribution (layer 0's eager
/// point-to-point sends) and the final reduction are unchanged.
pub fn s25d_rank_body_mode<T: Scalar + distconv_simnet::Msg>(
    rank: &Rank<T>,
    d: &MatmulDims,
    p1: usize,
    c: usize,
    mode: CommMode,
) -> Matrix<T> {
    assert_eq!(rank.size(), c * p1 * p1, "grid size mismatch");
    let grid = CartGrid::new(vec![c, p1, p1]);
    let coords = grid.coords_of(rank.id());
    let (l, i, j) = (coords[0], coords[1], coords[2]);
    let world: Vec<usize> = (0..rank.size()).collect();
    let l_comm = grid.sub_comm(rank, rank.id(), &world, &[0]);
    let row_comm = grid.sub_comm(rank, rank.id(), &world, &[2]); // vary j
    let col_comm = grid.sub_comm(rank, rank.id(), &world, &[1]); // vary i

    let rows_m = BlockDist::new(d.m, p1);
    let dist_k = BlockDist::new(d.k, p1); // blocks of A-cols and B-rows
    let cols_n = BlockDist::new(d.n, p1);
    let slabs = BlockDist::new(d.k, c);
    let (mi_lo, mi_hi) = rows_m.range(i);
    let (ka_lo, ka_hi) = dist_k.range(j); // my A column block
    let (kb_lo, kb_hi) = dist_k.range(i); // my B row block
    let (nj_lo, nj_hi) = cols_n.range(j);
    let (s_lo, s_hi) = slabs.range(l); // my layer's slab

    // --- Step 1: slab redistribution from layer 0. ---
    // Layer-0 rank (0,i,j) owns A rows m_i × cols ka_j and B rows kb_i ×
    // cols n_j; it sends each other layer the intersection with that
    // layer's slab (possibly empty — still a message, faithfully
    // charging α).
    let my_a_cols = (ka_lo.max(s_lo), ka_hi.min(s_hi));
    let my_b_rows = (kb_lo.max(s_lo), kb_hi.min(s_hi));
    let a_cols_len = my_a_cols.1.saturating_sub(my_a_cols.0);
    let b_rows_len = my_b_rows.1.saturating_sub(my_b_rows.0);

    let (a_slab, b_slab) = if l == 0 {
        // Materialize my full blocks, ship slab pieces to other layers.
        let a_block = shard_a::<T>(d, mi_lo, mi_hi - mi_lo, ka_lo, ka_hi - ka_lo);
        let b_block = shard_b::<T>(d, kb_lo, kb_hi - kb_lo, nj_lo, nj_hi - nj_lo);
        for dest_l in 1..c {
            let (t_lo, t_hi) = slabs.range(dest_l);
            let (a0, a1) = (ka_lo.max(t_lo), ka_hi.min(t_hi));
            let a_piece = if a0 < a1 {
                a_block.pack_block(0, a0 - ka_lo, mi_hi - mi_lo, a1 - a0)
            } else {
                Vec::new()
            };
            let dest = grid.index_of(&[dest_l, i, j]);
            rank.send_vec(dest, TAG_A_SLAB, a_piece);
            let (b0, b1) = (kb_lo.max(t_lo), kb_hi.min(t_hi));
            let b_piece = if b0 < b1 {
                b_block.pack_block(b0 - kb_lo, 0, b1 - b0, nj_hi - nj_lo)
            } else {
                Vec::new()
            };
            rank.send_vec(dest, TAG_B_SLAB, b_piece);
        }
        // Keep only my own slab's intersection.
        let a_keep = if a_cols_len > 0 {
            let buf = a_block.pack_block(0, my_a_cols.0 - ka_lo, mi_hi - mi_lo, a_cols_len);
            Matrix::from_vec(mi_hi - mi_lo, a_cols_len, buf)
        } else {
            Matrix::zeros(mi_hi - mi_lo, 0)
        };
        let b_keep = if b_rows_len > 0 {
            let buf = b_block.pack_block(my_b_rows.0 - kb_lo, 0, b_rows_len, nj_hi - nj_lo);
            Matrix::from_vec(b_rows_len, nj_hi - nj_lo, buf)
        } else {
            Matrix::zeros(0, nj_hi - nj_lo)
        };
        (a_keep, b_keep)
    } else {
        let src = grid.index_of(&[0, i, j]);
        let a_buf = rank.recv(src, TAG_A_SLAB);
        let b_buf = rank.recv(src, TAG_B_SLAB);
        assert_eq!(a_buf.len(), (mi_hi - mi_lo) * a_cols_len, "A slab size");
        assert_eq!(b_buf.len(), b_rows_len * (nj_hi - nj_lo), "B slab size");
        (
            Matrix::from_vec(mi_hi - mi_lo, a_cols_len, a_buf),
            Matrix::from_vec(b_rows_len, nj_hi - nj_lo, b_buf),
        )
    };
    let _lease = rank
        .mem()
        .lease_or_panic((a_slab.len() + b_slab.len()) as u64);

    // --- Step 2: SUMMA panel steps over my slab. ---
    let mut c_block = Matrix::<T>::zeros(mi_hi - mi_lo, nj_hi - nj_lo);
    let _lc = rank.mem().lease_or_panic(c_block.len() as u64);
    let kernel = LocalKernel::from_env();
    let cuts = slab_panels(s_lo, s_hi, d.k, p1);
    let panels: Vec<(usize, usize)> = cuts
        .windows(2)
        .filter(|w| w[0] < w[1])
        .map(|w| (w[0], w[1]))
        .collect();
    // Trace stamping: the slab redistribution above is step 0, panel t
    // is step t+1, the final reduction comes after the panels — and the
    // pipelined path stamps a posted broadcast with the panel it
    // carries, so the canonical trace is mode-independent.
    match mode {
        CommMode::Blocking => {
            for (t, &(k0, k1)) in panels.iter().enumerate() {
                rank.set_step(t as u64 + 1);
                let kk = k1 - k0;
                let ja = dist_k.owner(k0);
                let mut a_panel = if j == ja {
                    a_slab.pack_block(0, k0 - my_a_cols.0, mi_hi - mi_lo, kk)
                } else {
                    vec![T::zero(); (mi_hi - mi_lo) * kk]
                };
                let _pl = rank.mem().lease_or_panic(a_panel.len() as u64);
                row_comm.bcast(ja, &mut a_panel);
                let ib = dist_k.owner(k0);
                let mut b_panel = if i == ib {
                    b_slab.pack_block(k0 - my_b_rows.0, 0, kk, nj_hi - nj_lo)
                } else {
                    vec![T::zero(); kk * (nj_hi - nj_lo)]
                };
                let _pl2 = rank.mem().lease_or_panic(b_panel.len() as u64);
                col_comm.bcast(ib, &mut b_panel);
                let a_m = Matrix::from_vec(mi_hi - mi_lo, kk, a_panel);
                let b_m = Matrix::from_vec(kk, nj_hi - nj_lo, b_panel);
                rank.time_compute(|| local_matmul(kernel, &mut c_block, &a_m, &b_m));
            }
        }
        CommMode::Overlapped => {
            let post = |k0: usize, k1: usize| {
                let kk = k1 - k0;
                let ja = dist_k.owner(k0);
                let a_payload = if j == ja {
                    a_slab.pack_block(0, k0 - my_a_cols.0, mi_hi - mi_lo, kk)
                } else {
                    Vec::new()
                };
                let ib = dist_k.owner(k0);
                let b_payload = if i == ib {
                    b_slab.pack_block(k0 - my_b_rows.0, 0, kk, nj_hi - nj_lo)
                } else {
                    Vec::new()
                };
                (
                    row_comm.ibcast(ja, a_payload),
                    col_comm.ibcast(ib, b_payload),
                )
            };
            rank.set_step(1);
            let mut pending = panels.first().map(|&(k0, k1)| post(k0, k1));
            for (t, &(k0, k1)) in panels.iter().enumerate() {
                let (pa, pb) = pending.take().expect("pipeline primed");
                if let Some(&(n0, n1)) = panels.get(t + 1) {
                    rank.set_step(t as u64 + 2);
                    pending = Some(post(n0, n1));
                }
                rank.set_step(t as u64 + 1);
                let kk = k1 - k0;
                let _pl = rank.mem().lease_or_panic(((mi_hi - mi_lo) * kk) as u64);
                let a_panel = pa.wait();
                let _pl2 = rank.mem().lease_or_panic((kk * (nj_hi - nj_lo)) as u64);
                let b_panel = pb.wait();
                let a_m = Matrix::from_vec(mi_hi - mi_lo, kk, a_panel);
                let b_m = Matrix::from_vec(kk, nj_hi - nj_lo, b_panel);
                rank.time_compute(|| local_matmul(kernel, &mut c_block, &a_m, &b_m));
            }
        }
    }

    // --- Step 3: reduce partial C along l to layer 0. ---
    rank.set_step(panels.len() as u64 + 1);
    let mut c_buf = c_block.into_vec();
    l_comm.reduce(0, &mut c_buf);
    if l == 0 {
        Matrix::from_vec(mi_hi - mi_lo, nj_hi - nj_lo, c_buf)
    } else {
        Matrix::zeros(0, 0)
    }
}

/// Exact analytic total volume (even or uneven slabs):
/// redistribution `Σ_{l≥1} (m + n)·slab_l`
/// `+ (p₁−1)·(m·k + k·n)` panel broadcasts
/// `+ (c−1)·m·n` reduction.
pub fn s25d_analytic_volume(d: &MatmulDims, p1: usize, c: usize) -> u128 {
    let slabs = BlockDist::new(d.k, c);
    let shipped: u128 = (1..c)
        .map(|l| slabs.len(l) as u128 * (d.m as u128 + d.n as u128))
        .sum();
    shipped + (p1 as u128 - 1) * (d.size_a() + d.size_b()) + (c as u128 - 1) * d.size_c()
}

/// Drive a 2.5D run on `c·p₁²` ranks; verify layer-0 blocks.
pub fn run_25d(d: MatmulDims, p1: usize, c: usize, cfg: MachineConfig) -> MmReport {
    try_run_25d(d, p1, c, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_25d`]: surfaces rank failures as a [`RunError`]
/// instead of panicking.
pub fn try_run_25d(
    d: MatmulDims,
    p1: usize,
    c: usize,
    cfg: MachineConfig,
) -> Result<MmReport, RunError> {
    let report = Machine::try_run::<f64, _, _>(c * p1 * p1, cfg, |rank| {
        s25d_rank_body::<f64>(rank, &d, p1, c)
    })?;
    let grid = CartGrid::new(vec![c, p1, p1]);
    let mut face = Vec::with_capacity(p1 * p1);
    for i in 0..p1 {
        for j in 0..p1 {
            face.push(report.results[grid.index_of(&[0, i, j])].clone());
        }
    }
    let verified = verify_blocks(&d, p1, p1, &face);
    Ok(MmReport {
        dims: d,
        procs: c * p1 * p1,
        analytic_volume: s25d_analytic_volume(&d, p1, c),
        verified,
        max_peak_mem: report.max_peak_mem(),
        sim_time: report.sim_time,
        makespan: report.makespan,
        stats: report.stats,
        trace: report.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summa::{run_summa, summa_analytic_volume};

    #[test]
    fn s25d_exact_volume_and_result() {
        let d = MatmulDims::new(24, 16, 32);
        let r = run_25d(d, 2, 2, MachineConfig::default());
        assert!(r.verified);
        assert_eq!(r.stats.total_elems() as u128, r.analytic_volume);
    }

    #[test]
    fn c_equals_one_degenerates_to_summa() {
        let d = MatmulDims::square(20);
        let r25 = run_25d(d, 2, 1, MachineConfig::default());
        let r2 = run_summa(d, 2, 2, MachineConfig::default());
        assert!(r25.verified && r2.verified);
        assert_eq!(r25.stats.total_elems(), r2.stats.total_elems());
        assert_eq!(
            s25d_analytic_volume(&d, 2, 1),
            summa_analytic_volume(&d, 2, 2)
        );
    }

    #[test]
    fn replication_buys_communication_at_fixed_p() {
        // P = 16: 2D as 4×4 vs 2.5D as 4 layers of 2×2, inner-dimension
        // heavy so the panel term dominates.
        let d = MatmulDims::new(32, 32, 256);
        let v2d = summa_analytic_volume(&d, 4, 4);
        let v25 = s25d_analytic_volume(&d, 2, 4);
        assert!(v25 < v2d, "2.5D {v25} should undercut 2D {v2d}");
        let r = run_25d(d, 2, 4, MachineConfig::default());
        assert!(r.verified);
        assert_eq!(r.stats.total_elems() as u128, v25);
    }

    #[test]
    fn volume_monotone_in_c_for_k_heavy_problems() {
        // With k ≫ m, n the panel term dominates and more layers help.
        let d = MatmulDims::new(16, 16, 512);
        let v1 = s25d_analytic_volume(&d, 4, 1); // P=16, 2D point
        let v4 = s25d_analytic_volume(&d, 2, 4); // P=16, c=4
        assert!(v4 < v1, "c=4 {v4} vs c=1 {v1}");
    }

    #[test]
    fn uneven_panels_verified() {
        let d = MatmulDims::new(9, 10, 11);
        let r = run_25d(d, 2, 3, MachineConfig::default());
        assert!(r.verified);
        assert_eq!(r.stats.total_elems() as u128, r.analytic_volume);
    }

    #[test]
    fn c_memory_grows_with_layers() {
        // The replicated-C memory signature: peak per-rank memory at
        // c = 4 (P = 16) exceeds the 2D (P = 16) peak for the same
        // problem, because every layer holds a full C block.
        let d = MatmulDims::new(64, 64, 64);
        let r2 = run_summa(d, 4, 4, MachineConfig::default());
        let r25 = run_25d(d, 2, 4, MachineConfig::default());
        assert!(r25.verified);
        assert!(
            r25.max_peak_mem > r2.max_peak_mem,
            "2.5D peak {} should exceed 2D peak {}",
            r25.max_peak_mem,
            r2.max_peak_mem
        );
    }
}

//! Shared types for the distributed matmul algorithms.

use distconv_simnet::StatsSnapshot;
use distconv_tensor::{Matrix, Scalar};
use distconv_trace::{ConformanceReport, ConformanceRow, RunTrace, Tolerance};

/// Problem dimensions: `C[m×n] = A[m×k] · B[k×n]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatmulDims {
    /// Rows of `A` and `C`.
    pub m: usize,
    /// Columns of `B` and `C`.
    pub n: usize,
    /// Inner (contraction) dimension.
    pub k: usize,
}

impl MatmulDims {
    /// Construct dimensions (all positive).
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "dims must be positive");
        MatmulDims { m, n, k }
    }

    /// Square dimensions.
    pub fn square(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Elements of `A`.
    pub fn size_a(&self) -> u128 {
        self.m as u128 * self.k as u128
    }

    /// Elements of `B`.
    pub fn size_b(&self) -> u128 {
        self.k as u128 * self.n as u128
    }

    /// Elements of `C`.
    pub fn size_c(&self) -> u128 {
        self.m as u128 * self.n as u128
    }
}

/// Seeds for the deterministic input matrices.
pub const SEED_A: u64 = 0x00A0_B1C2_D3E4_F505;
/// Seed for the `B` matrix.
pub const SEED_B: u64 = 0x1717_2828_3939_4A4A;

/// Materialize the global `A` (for references/verification).
pub fn full_a<T: Scalar>(d: &MatmulDims) -> Matrix<T> {
    Matrix::random_window(d.m, d.k, SEED_A, 0, 0, d.k)
}

/// Materialize the global `B`.
pub fn full_b<T: Scalar>(d: &MatmulDims) -> Matrix<T> {
    Matrix::random_window(d.k, d.n, SEED_B, 0, 0, d.n)
}

/// Materialize a window of the global `A` (a rank's shard).
pub fn shard_a<T: Scalar>(
    d: &MatmulDims,
    r0: usize,
    rows: usize,
    c0: usize,
    cols: usize,
) -> Matrix<T> {
    Matrix::random_window(rows, cols, SEED_A, r0, c0, d.k)
}

/// Materialize a window of the global `B`.
pub fn shard_b<T: Scalar>(
    d: &MatmulDims,
    r0: usize,
    rows: usize,
    c0: usize,
    cols: usize,
) -> Matrix<T> {
    Matrix::random_window(rows, cols, SEED_B, r0, c0, d.n)
}

/// Outcome of running a distributed matmul: measured traffic plus the
/// verification flag (result compared block-by-block against the local
/// reference product).
#[derive(Clone, Debug)]
pub struct MmReport {
    /// Problem dimensions.
    pub dims: MatmulDims,
    /// Ranks used.
    pub procs: usize,
    /// Measured communication counters.
    pub stats: StatsSnapshot,
    /// Analytic total-volume prediction for this algorithm/grid.
    pub analytic_volume: u128,
    /// Whether every rank's block matched the sequential reference.
    pub verified: bool,
    /// Largest per-rank peak memory (elements).
    pub max_peak_mem: u64,
    /// Simulated α–β time (seconds, volume-based estimate).
    pub sim_time: f64,
    /// Lamport communication makespan (dependency-aware).
    pub makespan: f64,
    /// Per-rank span trace (empty when tracing was disabled).
    pub trace: RunTrace,
}

impl MmReport {
    /// Cost-model conformance: the measured total traffic against the
    /// algorithm's exact closed-form volume, plus a per-rank
    /// trace-vs-counter cross-check. The per-rank rows are skipped when
    /// the trace is empty (tracing disabled) or any ring wrapped — a
    /// wrapped ring undercounts by construction, so comparing it would
    /// manufacture a failure.
    pub fn conformance(&self, algo: &str) -> ConformanceReport {
        let mut rep = ConformanceReport::new();
        rep.push(ConformanceRow::new(
            format!("{algo}/total-volume"),
            self.stats.total_elems() as f64,
            self.analytic_volume as f64,
            Tolerance::Exact,
        ));
        if !self.trace.is_empty() && self.trace.total_dropped() == 0 {
            for rank in 0..self.procs {
                rep.push(ConformanceRow::new(
                    format!("{algo}/rank{rank}-sent-elems"),
                    self.trace.sent_elems(rank) as f64,
                    self.stats.per_rank_elems[rank] as f64,
                    Tolerance::Exact,
                ));
            }
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_match_full() {
        let d = MatmulDims::new(6, 5, 4);
        let a = full_a::<f64>(&d);
        let s = shard_a::<f64>(&d, 2, 3, 1, 2);
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(s[(i, j)], a[(2 + i, 1 + j)]);
            }
        }
        let b = full_b::<f64>(&d);
        let s = shard_b::<f64>(&d, 0, 4, 3, 2);
        for i in 0..4 {
            for j in 0..2 {
                assert_eq!(s[(i, j)], b[(i, 3 + j)]);
            }
        }
    }

    #[test]
    fn sizes() {
        let d = MatmulDims::new(2, 3, 4);
        assert_eq!(d.size_a(), 8);
        assert_eq!(d.size_b(), 12);
        assert_eq!(d.size_c(), 6);
    }
}

//! Local (single-node) matmul kernels: the blocked cache-tiled kernel
//! and its thread-parallel version, used by every distributed algorithm
//! for its per-rank block products.

use distconv_par::pool;
use distconv_tensor::{Matrix, Scalar};

/// Cache-blocking tile edge. 64×64 f32 tiles are 16 KiB — comfortably
/// L1-resident alongside the B panel.
const BLK: usize = 64;

/// `C += A · B`, blocked ikj within `BLK`-sized tiles.
pub fn matmul_blocked<T: Scalar>(c: &mut Matrix<T>, a: &Matrix<T>, b: &Matrix<T>) {
    let (m, k, n) = check_dims(c, a, b);
    for i0 in (0..m).step_by(BLK) {
        let i1 = (i0 + BLK).min(m);
        for l0 in (0..k).step_by(BLK) {
            let l1 = (l0 + BLK).min(k);
            for j0 in (0..n).step_by(BLK) {
                let j1 = (j0 + BLK).min(n);
                block_ikj(c, a, b, i0, i1, l0, l1, j0, j1, n, k);
            }
        }
    }
}

/// `C += A · B`, rows of `C` parallelized over the worker pool.
/// Deterministic: each output row is accumulated by exactly one task in
/// a fixed order.
pub fn matmul_blocked_par<T: Scalar>(c: &mut Matrix<T>, a: &Matrix<T>, b: &Matrix<T>) {
    let (m, k, n) = check_dims(c, a, b);
    let b_slice = b.as_slice();
    let a_slice = a.as_slice();
    pool::par_chunks_mut(c.as_mut_slice(), n, |i, crow| {
        debug_assert!(i < m);
        for l0 in (0..k).step_by(BLK) {
            let l1 = (l0 + BLK).min(k);
            for l in l0..l1 {
                let av = a_slice[i * k + l];
                let brow = &b_slice[l * n..(l + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += av * bv;
                }
            }
        }
    });
}

fn check_dims<T: Scalar>(c: &Matrix<T>, a: &Matrix<T>, b: &Matrix<T>) -> (usize, usize, usize) {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "C rows mismatch");
    assert_eq!(c.cols(), b.cols(), "C cols mismatch");
    (a.rows(), a.cols(), b.cols())
}

#[allow(clippy::too_many_arguments)]
fn block_ikj<T: Scalar>(
    c: &mut Matrix<T>,
    a: &Matrix<T>,
    b: &Matrix<T>,
    i0: usize,
    i1: usize,
    l0: usize,
    l1: usize,
    j0: usize,
    j1: usize,
    n: usize,
    k: usize,
) {
    let a_s = a.as_slice();
    let b_s = b.as_slice();
    let c_s = c.as_mut_slice();
    for i in i0..i1 {
        for l in l0..l1 {
            let av = a_s[i * k + l];
            let brow = &b_s[l * n + j0..l * n + j1];
            let crow = &mut c_s[i * n + j0..i * n + j1];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distconv_tensor::assert_close;
    use distconv_tensor::matrix::matmul_acc;

    fn reference(m: usize, k: usize, n: usize) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        let a = Matrix::random(m, k, 1);
        let b = Matrix::random(k, n, 2);
        let mut c = Matrix::zeros(m, n);
        matmul_acc(&mut c, &a, &b);
        (a, b, c)
    }

    #[test]
    fn blocked_matches_reference_various_shapes() {
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 7),
            (64, 64, 64),
            (65, 130, 67),
            (128, 1, 128),
        ] {
            let (a, b, c_ref) = reference(m, k, n);
            let mut c = Matrix::zeros(m, n);
            matmul_blocked(&mut c, &a, &b);
            assert_close(c.as_slice(), c_ref.as_slice(), 1e-10, "blocked");
        }
    }

    #[test]
    fn parallel_matches_reference() {
        for (m, k, n) in [(3, 5, 7), (100, 70, 90)] {
            let (a, b, c_ref) = reference(m, k, n);
            let mut c = Matrix::zeros(m, n);
            matmul_blocked_par(&mut c, &a, &b);
            assert_close(c.as_slice(), c_ref.as_slice(), 1e-10, "parallel");
        }
    }

    #[test]
    fn accumulates_rather_than_overwrites() {
        let (a, b, c_ref) = reference(4, 4, 4);
        let mut c = Matrix::zeros(4, 4);
        matmul_blocked(&mut c, &a, &b);
        matmul_blocked(&mut c, &a, &b);
        let doubled: Vec<f64> = c_ref.as_slice().iter().map(|x| 2.0 * x).collect();
        assert_close(c.as_slice(), &doubled, 1e-10, "accumulate");
    }
}

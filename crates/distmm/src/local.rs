//! Local (single-node) matmul kernels: the packed register-blocked
//! kernel, its thread-parallel version, and the [`LocalKernel`]
//! dispatch used by every distributed algorithm for its per-rank block
//! products.
//!
//! The fast path packs `A` into a transposed `[k][m]` panel
//! ([`pack_transposed`]) so the shared micro-kernel
//! ([`gemm_acc_rows`], the same one behind `conv_tile_fast`) reads its
//! [`mr_block`]`()` row coefficients contiguously (8 on the
//! runtime-detected AVX2 path, 4 scalar), then walks the reduction
//! dimension in L1-sized blocks streaming rows of `B` directly from
//! their natural layout — no `B` copy at all.
//!
//! Every kernel here accumulates each `C` element in ascending-`l`
//! order, exactly like the `matmul_acc` ground truth, so all three
//! (reference blocked, packed serial, packed parallel) are **bitwise
//! identical** — to each other and across thread counts.

use distconv_par::{pool, LocalKernel};
use distconv_tensor::gemm::{gemm_acc_rows, mr_block, pack_transposed};
use distconv_tensor::{Matrix, Scalar};

/// Cache-blocking tile edge for the reference kernel. 64×64 f32 tiles
/// are 16 KiB — comfortably L1-resident alongside the B panel.
const BLK: usize = 64;

/// Reduction-dimension block for the packed kernel: a 128×MR panel of
/// packed `A` plus one streamed `B` row stay hot in L1 across all row
/// blocks of `C`.
const KC: usize = 128;

/// Below this many multiply-adds the parallel kernel runs serially —
/// pool dispatch costs more than the whole product.
const PAR_CUTOFF_FLOPS: usize = 64 * 64 * 64;

/// Rows of `C` per parallel task: a multiple of every register-block
/// height ([`mr_block`] is 4 or 8) big enough that task dispatch
/// amortizes, small enough to balance ragged shapes.
const PAR_ROW_BLOCK: usize = 32;

/// `C += A · B` with the paper-literal blocked ikj loop — the reference
/// local kernel ([`LocalKernel::Reference`]).
pub fn matmul_blocked_ref<T: Scalar>(c: &mut Matrix<T>, a: &Matrix<T>, b: &Matrix<T>) {
    let (m, k, n) = check_dims(c, a, b);
    for i0 in (0..m).step_by(BLK) {
        let i1 = (i0 + BLK).min(m);
        for l0 in (0..k).step_by(BLK) {
            let l1 = (l0 + BLK).min(k);
            for j0 in (0..n).step_by(BLK) {
                let j1 = (j0 + BLK).min(n);
                block_ikj(c, a, b, i0, i1, l0, l1, j0, j1, n, k);
            }
        }
    }
}

/// `C += A · B` via the packed register-blocked kernel. Bitwise
/// identical to [`matmul_blocked_ref`] and `matmul_acc` (ascending-`l`
/// accumulation per element), several times faster.
pub fn matmul_blocked<T: Scalar>(c: &mut Matrix<T>, a: &Matrix<T>, b: &Matrix<T>) {
    let (m, k, n) = check_dims(c, a, b);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let mut at = Vec::new();
    pack_transposed(a.as_slice(), m, k, &mut at);
    let boff: Vec<usize> = (0..k).map(|l| l * n).collect();
    packed_rows(c.as_mut_slice(), 0, m, m, k, n, &at, b.as_slice(), &boff);
}

/// `C += A · B`, row blocks of `C` parallelized over the worker pool,
/// falling back to the serial packed kernel for small products.
/// Deterministic and bitwise identical across thread counts: each
/// output row is accumulated by exactly one task in ascending-`l`
/// order regardless of how rows are grouped into tasks.
pub fn matmul_blocked_par<T: Scalar>(c: &mut Matrix<T>, a: &Matrix<T>, b: &Matrix<T>) {
    let (m, k, n) = check_dims(c, a, b);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    if m * k * n < PAR_CUTOFF_FLOPS || pool::num_threads() <= 1 {
        return matmul_blocked(c, a, b);
    }
    let mut at = Vec::new();
    pack_transposed(a.as_slice(), m, k, &mut at);
    let boff: Vec<usize> = (0..k).map(|l| l * n).collect();
    let (at, boff) = (&at, &boff);
    let b_slice = b.as_slice();
    pool::par_chunks_mut(c.as_mut_slice(), PAR_ROW_BLOCK * n, |blk, chunk| {
        let i_lo = blk * PAR_ROW_BLOCK;
        let rows = chunk.len() / n;
        packed_rows(chunk, i_lo, rows, m, k, n, at, b_slice, boff);
    });
}

/// [`LocalKernel`]-dispatched block product: the entry point the
/// distributed algorithms (Cannon / SUMMA / 2.5D / 3D) call per rank.
pub fn local_matmul<T: Scalar>(
    kernel: LocalKernel,
    c: &mut Matrix<T>,
    a: &Matrix<T>,
    b: &Matrix<T>,
) {
    match kernel {
        LocalKernel::Reference => matmul_blocked_ref(c, a, b),
        // Winograd is a convolution algorithm; matmuls have no fast
        // bilinear analog here, so it means "the fast packed kernel" —
        // bitwise identical to Fast, keeping the env knob global-safe.
        LocalKernel::Fast | LocalKernel::Winograd => matmul_blocked_par(c, a, b),
    }
}

/// Packed-kernel core over `C` rows `i_lo .. i_lo + rows`, writing into
/// `c_rows` (those rows only, row-major, stride `n`). `at` is the full
/// `[k][m]` packed transpose of `A`; `boff[l] = l·n` indexes rows of
/// `B`.
#[allow(clippy::too_many_arguments)]
fn packed_rows<T: Scalar>(
    c_rows: &mut [T],
    i_lo: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
    at: &[T],
    b: &[T],
    boff: &[usize],
) {
    let mrb = mr_block();
    for l0 in (0..k).step_by(KC) {
        let l1 = (l0 + KC).min(k);
        let mut i = 0;
        while i < rows {
            let mr = mrb.min(rows - i);
            gemm_acc_rows(
                &mut c_rows[i * n..],
                n,
                mr,
                n,
                &at[l0 * m..],
                m,
                i_lo + i,
                b,
                &boff[l0..l1],
            );
            i += mr;
        }
    }
}

fn check_dims<T: Scalar>(c: &Matrix<T>, a: &Matrix<T>, b: &Matrix<T>) -> (usize, usize, usize) {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "C rows mismatch");
    assert_eq!(c.cols(), b.cols(), "C cols mismatch");
    (a.rows(), a.cols(), b.cols())
}

#[allow(clippy::too_many_arguments)]
fn block_ikj<T: Scalar>(
    c: &mut Matrix<T>,
    a: &Matrix<T>,
    b: &Matrix<T>,
    i0: usize,
    i1: usize,
    l0: usize,
    l1: usize,
    j0: usize,
    j1: usize,
    n: usize,
    k: usize,
) {
    let a_s = a.as_slice();
    let b_s = b.as_slice();
    let c_s = c.as_mut_slice();
    for i in i0..i1 {
        for l in l0..l1 {
            let av = a_s[i * k + l];
            let brow = &b_s[l * n + j0..l * n + j1];
            let crow = &mut c_s[i * n + j0..i * n + j1];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distconv_tensor::assert_close;
    use distconv_tensor::matrix::matmul_acc;

    fn reference(m: usize, k: usize, n: usize) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        let a = Matrix::random(m, k, 1);
        let b = Matrix::random(k, n, 2);
        let mut c = Matrix::zeros(m, n);
        matmul_acc(&mut c, &a, &b);
        (a, b, c)
    }

    #[test]
    fn blocked_matches_reference_various_shapes() {
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 7),
            (64, 64, 64),
            (65, 130, 67),
            (128, 1, 128),
            (5, 200, 3),
        ] {
            let (a, b, c_ref) = reference(m, k, n);
            let mut c = Matrix::zeros(m, n);
            matmul_blocked(&mut c, &a, &b);
            // Ascending-l accumulation ⇒ bitwise equal to matmul_acc.
            assert_eq!(c.as_slice(), c_ref.as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn reference_kernel_matches_ground_truth() {
        for (m, k, n) in [(3, 5, 7), (65, 130, 67)] {
            let (a, b, c_ref) = reference(m, k, n);
            let mut c = Matrix::zeros(m, n);
            matmul_blocked_ref(&mut c, &a, &b);
            assert_eq!(c.as_slice(), c_ref.as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn parallel_matches_reference() {
        // Spans the serial cutoff in both directions and ragged row
        // counts that end in a partial PAR_ROW_BLOCK and partial MR.
        for (m, k, n) in [(3, 5, 7), (100, 70, 90), (130, 64, 64), (97, 64, 71)] {
            let (a, b, c_ref) = reference(m, k, n);
            let mut c = Matrix::zeros(m, n);
            matmul_blocked_par(&mut c, &a, &b);
            assert_eq!(c.as_slice(), c_ref.as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn local_matmul_dispatch_agrees() {
        let (a, b, c_ref) = reference(33, 40, 29);
        // Winograd is conv-only; for matmuls it must be bitwise Fast.
        for kernel in [
            LocalKernel::Reference,
            LocalKernel::Fast,
            LocalKernel::Winograd,
        ] {
            let mut c = Matrix::zeros(33, 29);
            local_matmul(kernel, &mut c, &a, &b);
            assert_eq!(c.as_slice(), c_ref.as_slice(), "{kernel:?}");
        }
    }

    #[test]
    fn accumulates_rather_than_overwrites() {
        let (a, b, c_ref) = reference(4, 4, 4);
        let mut c = Matrix::zeros(4, 4);
        matmul_blocked(&mut c, &a, &b);
        matmul_blocked(&mut c, &a, &b);
        let doubled: Vec<f64> = c_ref.as_slice().iter().map(|x| 2.0 * x).collect();
        assert_close(c.as_slice(), &doubled, 1e-10, "accumulate");
    }
}

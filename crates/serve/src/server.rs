//! The admission/batching server.
//!
//! Three kinds of threads cooperate through one mutex + two condvars:
//!
//! * **Submitters** (any thread) call [`Server::submit`]: admission is
//!   a bounded-queue push — `O(1)`, never blocks on execution — with a
//!   typed [`SubmitError::Saturated`] reject when the model's queue is
//!   full (backpressure).
//! * The **batcher** thread coalesces waiting requests into
//!   `Nb`-sized batches, flushing a *partial* batch when the oldest
//!   waiting request exceeds the latency budget (never an empty one:
//!   a deadline with an empty queue is a no-op). Membership is always
//!   a FIFO prefix, so batch composition is a pure function of the
//!   admission order — the property the replay/chaos tests pin.
//! * **Cluster workers** (`ServeConfig::clusters` threads) pop formed
//!   batches and run them on their own simulated machine via
//!   [`crate::cluster::execute_batch`], recovering from injected
//!   crashes by replay or degraded re-plan.
//!
//! A *request* is modeled by its seed: sample `i` of a batch whose
//! member seeds fold (in slot order) into the batch seed via
//! [`distconv_core::batch::batch_seed`]. The per-request result is the
//! sample's output digest — deterministic in (plan, batch seed, slot),
//! which is what makes rejected-free runs comparable bitwise across
//! replays and backends.

use crate::cluster::execute_batch;
use crate::config::ServeConfig;
use crate::report::{percentile_ms, ModelReport, ServeReport};
use distconv_core::batch::batch_seed;
use distconv_core::{NetworkError, NetworkPlan};
use distconv_cost::{Conv2dProblem, MachineSpec};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One tenant: a named layer chain planned once at server start.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    /// Display name (report rows are keyed by it).
    pub name: String,
    /// The layer chain (consecutive shapes must be compatible).
    pub layers: Vec<Conv2dProblem>,
    /// The simulated machine the model's clusters run on.
    pub machine: MachineSpec,
}

/// Globally unique request handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RequestId(pub u64);

/// Why a submission was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The model's bounded queue is full — the caller should back off.
    Saturated {
        /// Index of the saturated model.
        model: usize,
        /// The configured queue capacity it hit.
        capacity: usize,
    },
    /// No such model index.
    UnknownModel {
        /// The out-of-range index.
        model: usize,
    },
    /// The server is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Saturated { model, capacity } => {
                write!(f, "model {model} queue saturated (capacity {capacity})")
            }
            SubmitError::UnknownModel { model } => write!(f, "unknown model index {model}"),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A completed request's attribution.
#[derive(Clone, Debug)]
pub struct RequestResult {
    /// The admission handle.
    pub id: RequestId,
    /// Which model served it.
    pub model: usize,
    /// The request's seed (as submitted).
    pub seed: u64,
    /// The request's output-sample digest (see
    /// [`distconv_core::batch::BatchRun::digests`]).
    pub digest: u64,
    /// Queueing + execution latency.
    pub latency: Duration,
    /// How many real requests shared the batch (≤ `Nb`).
    pub batch_fill: usize,
}

struct Pending {
    id: RequestId,
    seed: u64,
    submitted: Instant,
}

struct FormedBatch {
    model: usize,
    members: Vec<Pending>,
}

#[derive(Default)]
struct BatchTallies {
    batches: usize,
    partial_flushes: usize,
    replays: u32,
    degraded_batches: usize,
    expected_volume: u128,
    measured_volume: u128,
}

struct State {
    queues: Vec<VecDeque<Pending>>,
    dispatch: VecDeque<FormedBatch>,
    in_flight: usize,
    results: Vec<RequestResult>,
    rejected: Vec<usize>,
    tallies: Vec<BatchTallies>,
    errors: Vec<String>,
    next_id: u64,
    shutdown: bool,
    batcher_done: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signaled on submit and shutdown — wakes the batcher.
    submitted: Condvar,
    /// Signaled when a batch is formed (or the batcher exits) — wakes
    /// cluster workers.
    work: Condvar,
}

struct ModelRuntime {
    spec: ModelSpec,
    plan: NetworkPlan,
    nb: usize,
}

/// The serving front-end. Construct with [`Server::start`], submit
/// with [`Server::submit`], and finish with [`Server::shutdown`] —
/// which drains every queue (as partial batches), joins all threads
/// and returns the SLO report plus per-request results.
pub struct Server {
    shared: Arc<Shared>,
    models: Arc<Vec<ModelRuntime>>,
    cfg: ServeConfig,
    started: Instant,
    batcher: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Plan every model (via [`NetworkPlan::plan_tuned`]) and start the
    /// batcher and cluster worker threads.
    pub fn start(models: Vec<ModelSpec>, cfg: ServeConfig) -> Result<Server, NetworkError> {
        assert!(!models.is_empty(), "need at least one model");
        assert!(cfg.clusters >= 1, "need at least one cluster");
        let models: Vec<ModelRuntime> = models
            .into_iter()
            .map(|spec| {
                let plan = NetworkPlan::plan_tuned(&spec.layers, spec.machine)?;
                let nb = spec.layers[0].nb;
                Ok(ModelRuntime { spec, plan, nb })
            })
            .collect::<Result<_, NetworkError>>()?;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queues: models.iter().map(|_| VecDeque::new()).collect(),
                dispatch: VecDeque::new(),
                in_flight: 0,
                results: Vec::new(),
                rejected: vec![0; models.len()],
                tallies: models.iter().map(|_| BatchTallies::default()).collect(),
                errors: Vec::new(),
                next_id: 0,
                shutdown: false,
                batcher_done: false,
            }),
            submitted: Condvar::new(),
            work: Condvar::new(),
        });
        let models = Arc::new(models);

        let batcher = {
            let shared = Arc::clone(&shared);
            let models = Arc::clone(&models);
            let budget = cfg.latency_budget;
            std::thread::spawn(move || batcher_loop(&shared, &models, budget))
        };
        let workers = (0..cfg.clusters)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let models = Arc::clone(&models);
                let machine_cfg = cfg.machine;
                std::thread::spawn(move || worker_loop(&shared, &models, machine_cfg))
            })
            .collect();

        Ok(Server {
            shared,
            models,
            cfg,
            started: Instant::now(),
            batcher: Some(batcher),
            workers,
        })
    }

    /// Admit one request for `model`. Non-blocking: either the request
    /// is queued (its handle is returned) or a typed reject explains
    /// why. A `Saturated` reject is counted in the final report.
    pub fn submit(&self, model: usize, seed: u64) -> Result<RequestId, SubmitError> {
        if model >= self.models.len() {
            return Err(SubmitError::UnknownModel { model });
        }
        let mut st = self.shared.state.lock().unwrap();
        if st.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if st.queues[model].len() >= self.cfg.queue_capacity {
            st.rejected[model] += 1;
            return Err(SubmitError::Saturated {
                model,
                capacity: self.cfg.queue_capacity,
            });
        }
        let id = RequestId(st.next_id);
        st.next_id += 1;
        st.queues[model].push_back(Pending {
            id,
            seed,
            submitted: Instant::now(),
        });
        self.shared.submitted.notify_all();
        Ok(id)
    }

    /// Requests currently waiting (admitted, not yet batched) for
    /// `model`. Snapshot — for tests and load shedding heuristics.
    pub fn queue_depth(&self, model: usize) -> usize {
        self.shared.state.lock().unwrap().queues[model].len()
    }

    /// Block until every admitted request has completed — queues,
    /// dispatch backlog and in-flight batches all empty — or `timeout`
    /// elapses; returns whether the server went quiescent. Unlike
    /// [`Server::shutdown`], draining relies on the *batcher's* flush
    /// policy, so a sub-`Nb` tail leaves via the latency-budget
    /// deadline, not the shutdown drain.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().unwrap();
        loop {
            let busy = st.queues.iter().any(|q| !q.is_empty())
                || !st.dispatch.is_empty()
                || st.in_flight > 0;
            if !busy {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let wait = (deadline - now).min(Duration::from_millis(5));
            st = self.shared.submitted.wait_timeout(st, wait).unwrap().0;
        }
    }

    /// Stop admitting, drain every queue as (partial) batches, join
    /// all threads, and return the SLO report plus every completed
    /// request's result. Errors surfaced by cluster workers (anything
    /// other than a recovered fault) are returned as strings.
    pub fn shutdown(mut self) -> (ServeReport, Vec<RequestResult>, Vec<String>) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.submitted.notify_all();
        }
        if let Some(b) = self.batcher.take() {
            b.join().expect("batcher panicked");
        }
        {
            let mut st = self.shared.state.lock().unwrap();
            st.batcher_done = true;
            self.shared.work.notify_all();
        }
        for w in self.workers.drain(..) {
            w.join().expect("cluster worker panicked");
        }
        let wall = self.started.elapsed();
        let st = self.shared.state.lock().unwrap();
        let report = build_report(&self.models, &st, wall);
        (report, st.results.clone(), st.errors.clone())
    }
}

/// Pick the next batch to form, if any: a full `Nb` prefix, or (when
/// draining or past the latency budget) a non-empty partial prefix.
fn take_ready_batch(
    st: &mut State,
    models: &[ModelRuntime],
    budget: Duration,
    draining: bool,
) -> Option<FormedBatch> {
    for (m, rt) in models.iter().enumerate() {
        let q = &mut st.queues[m];
        if q.is_empty() {
            continue;
        }
        let full = q.len() >= rt.nb;
        let overdue = q.front().is_some_and(|p| p.submitted.elapsed() >= budget);
        if full || overdue || draining {
            let take = q.len().min(rt.nb);
            let members: Vec<Pending> = q.drain(..take).collect();
            return Some(FormedBatch { model: m, members });
        }
    }
    None
}

fn batcher_loop(shared: &Shared, models: &[ModelRuntime], budget: Duration) {
    let mut st = shared.state.lock().unwrap();
    loop {
        let draining = st.shutdown;
        if let Some(batch) = take_ready_batch(&mut st, models, budget, draining) {
            st.dispatch.push_back(batch);
            shared.work.notify_all();
            continue;
        }
        // Nothing ready. If draining, every queue is empty: done.
        if draining {
            return;
        }
        // Sleep until the next deadline of a waiting request (a
        // deadline firing with an empty queue flushes nothing), or
        // until a submit/shutdown wakes us.
        let next_deadline = st
            .queues
            .iter()
            .filter_map(|q| q.front())
            .map(|p| budget.saturating_sub(p.submitted.elapsed()))
            .min();
        st = match next_deadline {
            Some(wait) => {
                shared
                    .submitted
                    .wait_timeout(st, wait.max(Duration::from_micros(100)))
                    .unwrap()
                    .0
            }
            None => shared.submitted.wait(st).unwrap(),
        };
    }
}

fn worker_loop(
    shared: &Shared,
    models: &[ModelRuntime],
    machine_cfg: distconv_simnet::MachineConfig,
) {
    loop {
        let batch = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(b) = st.dispatch.pop_front() {
                    st.in_flight += 1;
                    break b;
                }
                if st.batcher_done {
                    return;
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        let rt = &models[batch.model];
        let seeds: Vec<u64> = batch.members.iter().map(|p| p.seed).collect();
        let seed = batch_seed(&seeds);
        let outcome = execute_batch(
            &rt.plan,
            &rt.spec.layers,
            rt.spec.machine,
            seed,
            machine_cfg,
        );
        let done = Instant::now();
        let mut st = shared.state.lock().unwrap();
        st.in_flight -= 1;
        match outcome {
            Ok(out) => {
                let t = &mut st.tallies[batch.model];
                t.batches += 1;
                if batch.members.len() < rt.nb {
                    t.partial_flushes += 1;
                }
                t.replays += out.replays;
                if out.degraded_to.is_some() {
                    t.degraded_batches += 1;
                }
                t.expected_volume += out.run.report.expected_total();
                t.measured_volume += out.run.report.measured_total();
                let fill = batch.members.len();
                for (slot, p) in batch.members.into_iter().enumerate() {
                    st.results.push(RequestResult {
                        id: p.id,
                        model: batch.model,
                        seed: p.seed,
                        digest: out.run.digests[slot],
                        latency: done.duration_since(p.submitted),
                        batch_fill: fill,
                    });
                }
            }
            Err(e) => {
                st.errors.push(format!(
                    "model {} batch of {}: {e}",
                    rt.spec.name,
                    batch.members.len()
                ));
            }
        }
    }
}

fn build_report(models: &[ModelRuntime], st: &State, wall: Duration) -> ServeReport {
    let wall_s = wall.as_secs_f64().max(1e-9);
    let reports = models
        .iter()
        .enumerate()
        .map(|(m, rt)| {
            let mut lat: Vec<Duration> = st
                .results
                .iter()
                .filter(|r| r.model == m)
                .map(|r| r.latency)
                .collect();
            lat.sort();
            let completed = lat.len();
            let mean_ms = if completed == 0 {
                0.0
            } else {
                lat.iter().map(|d| d.as_secs_f64() * 1e3).sum::<f64>() / completed as f64
            };
            let t = &st.tallies[m];
            ModelReport {
                name: rt.spec.name.clone(),
                completed,
                rejected: st.rejected[m],
                batches: t.batches,
                partial_flushes: t.partial_flushes,
                replays: t.replays,
                degraded_batches: t.degraded_batches,
                p50_ms: percentile_ms(&lat, 50.0),
                p95_ms: percentile_ms(&lat, 95.0),
                p99_ms: percentile_ms(&lat, 99.0),
                mean_ms,
                max_ms: lat.last().map_or(0.0, |d| d.as_secs_f64() * 1e3),
                throughput_rps: completed as f64 / wall_s,
                expected_volume: t.expected_volume,
                measured_volume: t.measured_volume,
            }
        })
        .collect();
    ServeReport {
        models: reports,
        wall_ms: wall.as_secs_f64() * 1e3,
    }
}

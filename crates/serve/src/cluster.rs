//! One cluster's batch executor: dispatch with crash recovery.
//!
//! Mirrors `DistConv::run_recovering`'s policy at the network level:
//! an injected crash mid-batch triggers a bounded number of **replays**
//! (transient faults are cleared, the batch re-runs bitwise-identically
//! on the same grid — the batch is a pure function of its seed); a
//! *persistent* crash survives the clearing, exhausts the replays, and
//! drives a **degraded re-plan**: the network is re-tuned over the
//! survivor count (scanning downward past unfactorable `P′`) and the
//! batch re-routed onto the shrunken grid.

use distconv_core::batch::{dispatch_batch, BatchRun};
use distconv_core::{CoreError, NetworkPlan, MAX_STEP_RETRIES};
use distconv_cost::{Conv2dProblem, MachineSpec};
use distconv_simnet::MachineConfig;

/// How a batch finally completed.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// The successful run (on the original or the degraded plan).
    pub run: BatchRun,
    /// Replay attempts consumed by injected crashes.
    pub replays: u32,
    /// `Some(new_p)` when the batch finished on a degraded grid over
    /// `new_p` ranks.
    pub degraded_to: Option<usize>,
}

/// Execute one batch with recovery. `plan` is the model's tuned
/// layout, `problems`/`machine` its planning inputs (needed to re-plan
/// when degrading), `seed` the folded batch seed.
pub fn execute_batch(
    plan: &NetworkPlan,
    problems: &[Conv2dProblem],
    machine: MachineSpec,
    seed: u64,
    cfg: MachineConfig,
) -> Result<BatchOutcome, CoreError> {
    let mut cfg = cfg;
    let mut replays = 0u32;
    loop {
        match dispatch_batch::<f64>(plan, seed, cfg) {
            Ok(run) => {
                return Ok(BatchOutcome {
                    run,
                    replays,
                    degraded_to: None,
                })
            }
            Err(CoreError::Machine(e)) if e.has_injected_crash() && replays < MAX_STEP_RETRIES => {
                // Transient crash: clear one-shot rank faults and
                // replay the whole batch. Same plan + same seed ⇒ the
                // replayed results are bitwise identical to what the
                // fault-free run would have produced.
                replays += 1;
                cfg.faults = cfg.faults.without_rank_faults();
            }
            Err(CoreError::Machine(e)) if e.has_injected_crash() => {
                // Persistent crash: the rank is gone for good. Re-plan
                // the network over the survivors and re-route the
                // batch there.
                let dead = e.dead_ranks();
                let survivors = plan.layers[0].grid.total().saturating_sub(dead.len());
                let new_plan = (1..=survivors)
                    .rev()
                    .find_map(|p| {
                        NetworkPlan::plan_tuned(problems, MachineSpec::new(p, machine.mem)).ok()
                    })
                    .ok_or(CoreError::Machine(e))?;
                // The dead rank does not exist on the shrunken grid:
                // drop its faults rather than crash an innocent
                // renumbered rank.
                cfg.faults.crash = None;
                if cfg
                    .faults
                    .straggler
                    .is_some_and(|s| s.rank >= new_plan.layers[0].grid.total())
                {
                    cfg.faults.straggler = None;
                }
                let run = dispatch_batch::<f64>(&new_plan, seed, cfg)?;
                let new_p = new_plan.layers[0].grid.total();
                return Ok(BatchOutcome {
                    run,
                    replays: replays + 1,
                    degraded_to: Some(new_p),
                });
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distconv_simnet::FaultPlan;

    fn chain() -> Vec<Conv2dProblem> {
        vec![
            Conv2dProblem::new(2, 8, 4, 8, 8, 3, 3, 1, 1),
            Conv2dProblem::new(2, 8, 8, 6, 6, 3, 3, 1, 1),
        ]
    }

    /// Crash detection on the thread backend waits out `recv_timeout`
    /// in wall-clock time — shorten it so the retry loop is fast.
    fn fast_cfg() -> MachineConfig {
        MachineConfig {
            recv_timeout: std::time::Duration::from_millis(300),
            ..MachineConfig::default()
        }
    }

    #[test]
    fn transient_crash_replays_bitwise() {
        let problems = chain();
        let machine = MachineSpec::new(4, 1 << 20);
        let plan = NetworkPlan::plan_tuned(&problems, machine).unwrap();
        let clean = execute_batch(&plan, &problems, machine, 99, fast_cfg()).expect("fault-free");
        assert_eq!(clean.replays, 0);

        let mut faulty = fast_cfg();
        faulty.faults = FaultPlan::default().with_crash(1, 3);
        let recovered =
            execute_batch(&plan, &problems, machine, 99, faulty).expect("recovers via replay");
        assert!(recovered.replays >= 1);
        assert_eq!(recovered.degraded_to, None);
        assert_eq!(
            recovered.run.digests, clean.run.digests,
            "replayed batch must be bitwise identical to the fault-free run"
        );
    }

    #[test]
    fn persistent_crash_degrades_and_completes() {
        let problems = chain();
        let machine = MachineSpec::new(4, 1 << 20);
        let plan = NetworkPlan::plan_tuned(&problems, machine).unwrap();
        let mut faulty = fast_cfg();
        faulty.faults = FaultPlan::default().with_persistent_crash(2, 2);
        let out = execute_batch(&plan, &problems, machine, 41, faulty).expect("degrades");
        let new_p = out.degraded_to.expect("must re-plan over survivors");
        assert!(new_p < 4, "degraded grid must shrink");
        assert_eq!(out.replays, MAX_STEP_RETRIES + 1);
        // The degraded run is itself deterministic: the same batch on
        // the same degraded plan fault-free matches bitwise.
        let degraded_plan = (1..=new_p)
            .rev()
            .find_map(|p| NetworkPlan::plan_tuned(&problems, MachineSpec::new(p, machine.mem)).ok())
            .unwrap();
        let clean = execute_batch(&degraded_plan, &problems, machine, 41, fast_cfg()).unwrap();
        assert_eq!(out.run.digests, clean.run.digests);
    }
}

//! Per-request SLO accounting: latency percentiles, throughput, and
//! element-exact volume conformance aggregated over every batch a
//! model ran.

use distconv_trace::{ConformanceReport, ConformanceRow, Tolerance};
use std::time::Duration;

/// Nearest-rank percentile (`q` in `[0, 100]`) over a sorted slice of
/// latencies, in milliseconds. Empty input yields 0.
pub fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    let idx = rank.clamp(1, sorted.len()) - 1;
    sorted[idx].as_secs_f64() * 1e3
}

/// One model's (tenant's) serving outcome.
#[derive(Clone, Debug)]
pub struct ModelReport {
    /// The model's name (from [`crate::ModelSpec`]).
    pub name: String,
    /// Requests that completed with a result digest.
    pub completed: usize,
    /// Requests rejected at admission (queue saturated).
    pub rejected: usize,
    /// Batches dispatched.
    pub batches: usize,
    /// Batches flushed below `Nb` by the latency budget or shutdown.
    pub partial_flushes: usize,
    /// Fault-recovery replays across all batches.
    pub replays: u32,
    /// Batches that finished on a degraded (re-planned) grid.
    pub degraded_batches: usize,
    /// p50 queueing+execution latency, milliseconds.
    pub p50_ms: f64,
    /// p95 latency, milliseconds.
    pub p95_ms: f64,
    /// p99 latency, milliseconds.
    pub p99_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Worst observed latency, milliseconds.
    pub max_ms: f64,
    /// Completed requests per wall-clock second over the serve window.
    pub throughput_rps: f64,
    /// Sum of the executor's exact expected volumes over all batches.
    pub expected_volume: u128,
    /// Sum of the measured wire counters over all batches.
    pub measured_volume: u128,
}

/// The whole server's outcome: one [`ModelReport`] per tenant plus the
/// serve window length.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Per-model reports, in registration order.
    pub models: Vec<ModelReport>,
    /// Wall-clock serve window (start of serving to shutdown), ms.
    pub wall_ms: f64,
}

impl ServeReport {
    /// Element-exact conformance of everything this server executed:
    /// per model, the summed measured wire volume must equal the
    /// summed analytic expectation — sums of exact per-batch
    /// quantities are exact, so the serving layer composes with the
    /// same [`Tolerance::Exact`] contract as a single run. Batches
    /// that recovered via replay or a degraded re-plan are excluded by
    /// the executor's own accounting (wasted traffic is reported
    /// separately), so the rows stay exact under chaos.
    pub fn conformance(&self) -> ConformanceReport {
        let mut report = ConformanceReport::new();
        for m in &self.models {
            report.push(ConformanceRow::new(
                format!("serve/{}/volume", m.name),
                m.measured_volume as f64,
                m.expected_volume as f64,
                Tolerance::Exact,
            ));
        }
        report
    }

    /// Completed requests across all models.
    pub fn total_completed(&self) -> usize {
        self.models.iter().map(|m| m.completed).sum()
    }

    /// Rejected requests across all models.
    pub fn total_rejected(&self) -> usize {
        self.models.iter().map(|m| m.rejected).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile_ms(&ms, 50.0), 50.0);
        assert_eq!(percentile_ms(&ms, 95.0), 95.0);
        assert_eq!(percentile_ms(&ms, 99.0), 99.0);
        assert_eq!(percentile_ms(&ms, 100.0), 100.0);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
        let one = [Duration::from_millis(7)];
        for q in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile_ms(&one, q), 7.0);
        }
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut ms: Vec<Duration> = (0..37).map(|i| Duration::from_micros(i * 131)).collect();
        ms.sort();
        let (p50, p95, p99) = (
            percentile_ms(&ms, 50.0),
            percentile_ms(&ms, 95.0),
            percentile_ms(&ms, 99.0),
        );
        assert!(p50 <= p95 && p95 <= p99);
    }
}

//! # distconv-serve — admission/batching inference front-end
//!
//! The paper's comm-optimal grids assume a *fixed* batch `Nb`; a
//! production front-end must **form** those batches from asynchronous
//! requests. This crate is that front-end, over the existing simulated
//! executor:
//!
//! * **Admission** — bounded per-model queues with typed backpressure
//!   ([`SubmitError::Saturated`]); submission never blocks on
//!   execution.
//! * **Batching** — a dedicated batcher coalesces waiting requests
//!   into `Nb`-sized FIFO-prefix batches, flushing a *partial* batch
//!   once the oldest request exceeds the configurable latency budget
//!   (and never flushing an empty one).
//! * **Dispatch** — one or more simnet "clusters" execute batches on
//!   [`distconv_core::NetworkPlan::plan_tuned`] layouts through
//!   [`distconv_core::batch::dispatch_batch`]; concurrent tenants
//!   share cores through the `distconv-par` thread-budget arbiter
//!   (each simulated machine registers its ranks; pools divide).
//! * **Recovery** — a rank killed mid-batch triggers bounded replays
//!   (bitwise-identical by the batch-seed contract) and, for
//!   persistent faults, a degraded re-plan over the survivors
//!   ([`cluster::execute_batch`]).
//! * **SLO accounting** — [`ServeReport`] carries per-model
//!   p50/p95/p99 latency, throughput, and element-exact volume
//!   conformance composing with the `distconv-trace` machinery.
//!
//! Requests are modeled by their seeds: member seeds fold (in slot
//! order) into the batch seed, the batch input tensor is derived from
//! that seed, and each request's result is its sample's output digest
//! — fully deterministic given admission order, which is what the
//! replay and chaos tests pin bitwise.

pub mod cluster;
pub mod config;
pub mod report;
pub mod server;

pub use cluster::{execute_batch, BatchOutcome};
pub use config::{ServeConfig, BUDGET_ENV, CLUSTERS_ENV, QUEUE_ENV};
pub use report::{percentile_ms, ModelReport, ServeReport};
pub use server::{ModelSpec, RequestId, RequestResult, Server, SubmitError};

//! Serving configuration: the admission policy's three knobs and the
//! per-cluster simnet configuration.

use distconv_simnet::MachineConfig;
use std::time::Duration;

/// `DISTCONV_SERVE_BUDGET_MS`: per-request queueing latency budget in
/// milliseconds — when the oldest waiting request has been queued this
/// long, the batcher flushes a partial batch rather than keep waiting
/// for a full `Nb`.
pub const BUDGET_ENV: &str = "DISTCONV_SERVE_BUDGET_MS";

/// `DISTCONV_SERVE_QUEUE`: per-model bounded-queue capacity — requests
/// beyond this many *waiting* (admitted, not yet batched) are rejected
/// with [`crate::SubmitError::Saturated`].
pub const QUEUE_ENV: &str = "DISTCONV_SERVE_QUEUE";

/// `DISTCONV_SERVE_CLUSTERS`: number of simnet clusters (concurrent
/// batch executors) the server runs.
pub const CLUSTERS_ENV: &str = "DISTCONV_SERVE_CLUSTERS";

/// Tunables of the serving layer. [`ServeConfig::from_env`] reads the
/// three `DISTCONV_SERVE_*` knobs; defaults favor small deterministic
/// test runs over throughput.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Flush a partial batch once the oldest waiting request has
    /// queued this long.
    pub latency_budget: Duration,
    /// Bounded per-model queue: admitted-but-unbatched requests beyond
    /// this are rejected (backpressure).
    pub queue_capacity: usize,
    /// Number of cluster worker threads executing batches. Each runs
    /// its own simulated machine; the PR 4 thread-budget arbiter
    /// divides cores among whatever ranks they register.
    pub clusters: usize,
    /// Simnet configuration for every cluster (backend, faults, trace
    /// — chaos tests inject [`distconv_simnet::FaultPlan`]s here).
    pub machine: MachineConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            latency_budget: Duration::from_millis(25),
            queue_capacity: 64,
            clusters: 1,
            machine: MachineConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by the `DISTCONV_SERVE_*` environment knobs.
    /// Unparseable values are hard errors, matching the
    /// `DISTCONV_THREADS` precedent — a typo must not silently fall
    /// back to a default.
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Ok(v) = std::env::var(BUDGET_ENV) {
            let ms: u64 = v
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("invalid {BUDGET_ENV} value {v:?}: want milliseconds"));
            cfg.latency_budget = Duration::from_millis(ms);
        }
        if let Ok(v) = std::env::var(QUEUE_ENV) {
            let n: usize = v.trim().parse().unwrap_or_else(|_| {
                panic!("invalid {QUEUE_ENV} value {v:?}: want a positive integer")
            });
            assert!(n > 0, "{QUEUE_ENV} must be positive");
            cfg.queue_capacity = n;
        }
        if let Ok(v) = std::env::var(CLUSTERS_ENV) {
            let n: usize = v.trim().parse().unwrap_or_else(|_| {
                panic!("invalid {CLUSTERS_ENV} value {v:?}: want a positive integer")
            });
            assert!(n > 0, "{CLUSTERS_ENV} must be positive");
            cfg.clusters = n;
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.latency_budget > Duration::ZERO);
        assert!(cfg.queue_capacity > 0);
        assert_eq!(cfg.clusters, 1);
    }
}

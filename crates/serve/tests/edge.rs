//! Batcher edge cases: zero-request deadline, partial flush of a lone
//! request, queue-full backpressure, and a property test pinning
//! deterministic batch composition.

use distconv_cost::{Conv2dProblem, MachineSpec};
use distconv_par::proptest_mini::{check, Config, Gen};
use distconv_serve::{ModelSpec, ServeConfig, Server, SubmitError};
use distconv_simnet::MachineConfig;
use std::time::Duration;

/// A single tiny layer with `Nb = 4` on 2 simulated ranks.
fn tiny_model(name: &str) -> ModelSpec {
    ModelSpec {
        name: name.to_string(),
        layers: vec![Conv2dProblem::new(4, 4, 2, 4, 4, 3, 3, 1, 1)],
        machine: MachineSpec::new(2, 1 << 20),
    }
}

fn cfg(budget: Duration) -> ServeConfig {
    ServeConfig {
        latency_budget: budget,
        queue_capacity: 16,
        clusters: 1,
        machine: MachineConfig {
            recv_timeout: Duration::from_millis(300),
            ..MachineConfig::default()
        },
    }
}

#[test]
fn zero_requests_never_flush_an_empty_batch() {
    let server = Server::start(vec![tiny_model("idle")], cfg(Duration::from_millis(5))).unwrap();
    // Let several latency budgets elapse with nothing queued.
    std::thread::sleep(Duration::from_millis(40));
    let (report, results, errors) = server.shutdown();
    assert!(errors.is_empty(), "{errors:?}");
    assert_eq!(report.models[0].batches, 0, "no empty batch may form");
    assert_eq!(report.models[0].completed, 0);
    assert!(results.is_empty());
}

#[test]
fn single_request_below_nb_partial_flushes_at_deadline() {
    let server = Server::start(vec![tiny_model("lone")], cfg(Duration::from_millis(10))).unwrap();
    let id = server.submit(0, 42).expect("admitted");
    // The deadline flush (10 ms budget), not the shutdown drain, must
    // ship the lone request.
    assert!(server.drain(Duration::from_secs(30)), "drain timed out");
    let (report, results, errors) = server.shutdown();
    assert!(errors.is_empty(), "{errors:?}");
    let m = &report.models[0];
    assert_eq!(m.completed, 1);
    assert_eq!(m.batches, 1);
    assert_eq!(
        m.partial_flushes, 1,
        "a lone request (1 < Nb = 4) must ship as a partial batch"
    );
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].id, id);
    assert_eq!(results[0].batch_fill, 1);
    assert_ne!(results[0].digest, 0);
}

#[test]
fn saturated_queue_rejects_with_typed_error() {
    // Long budget + capacity below Nb: nothing can be batched, so the
    // queue deterministically fills and the next submit must bounce.
    let mut c = cfg(Duration::from_secs(60));
    c.queue_capacity = 3;
    let server = Server::start(vec![tiny_model("full")], c).unwrap();
    for seed in 0..3 {
        server.submit(0, seed).expect("within capacity");
    }
    let err = server.submit(0, 99).expect_err("queue is full");
    assert_eq!(
        err,
        SubmitError::Saturated {
            model: 0,
            capacity: 3
        }
    );
    assert_eq!(server.queue_depth(0), 3, "reject must not consume a slot");
    let (report, results, errors) = server.shutdown();
    assert!(errors.is_empty(), "{errors:?}");
    assert_eq!(report.models[0].rejected, 1);
    // Shutdown drains the three waiting requests as a partial batch.
    assert_eq!(report.models[0].completed, 3);
    assert_eq!(results.len(), 3);
}

#[test]
fn unknown_model_and_shutdown_are_typed() {
    let server = Server::start(vec![tiny_model("one")], cfg(Duration::from_secs(60))).unwrap();
    assert_eq!(
        server.submit(7, 1).expect_err("no model 7"),
        SubmitError::UnknownModel { model: 7 }
    );
    let (_, _, errors) = server.shutdown();
    assert!(errors.is_empty(), "{errors:?}");
}

/// Property: batch composition — and therefore every request's digest
/// — is a pure function of the admission order. Two servers fed the
/// same seed sequence produce identical digests per request, and a
/// third run on two clusters (racing workers, different completion
/// order) still matches.
#[test]
fn proptest_batch_composition_is_deterministic() {
    check(
        "serve_composition_deterministic",
        Config::with_cases(4),
        |g: &mut Gen| {
            let n = g.usize_in(1, 11);
            let seeds: Vec<u64> = (0..n).map(|_| g.u64()).collect();
            let run = |clusters: usize| {
                let mut c = cfg(Duration::from_secs(60));
                c.clusters = clusters;
                let server = Server::start(vec![tiny_model("prop")], c).unwrap();
                for &s in &seeds {
                    server.submit(0, s).expect("under capacity");
                }
                let (report, mut results, errors) = server.shutdown();
                assert!(errors.is_empty(), "{errors:?}");
                assert_eq!(report.models[0].completed, n);
                results.sort_by_key(|r| r.id.0);
                results
                    .into_iter()
                    .map(|r| (r.seed, r.digest, r.batch_fill))
                    .collect::<Vec<_>>()
            };
            let a = run(1);
            let b = run(1);
            assert_eq!(a, b, "same admission order ⇒ same digests");
            let c = run(2);
            assert_eq!(a, c, "worker count must not change composition");
            // Full batches carry Nb members; only the tail may be short.
            let nb = 4;
            for (i, (_, _, fill)) in a.iter().enumerate() {
                let expected = if (i / nb + 1) * nb <= n { nb } else { n % nb };
                assert_eq!(*fill, expected, "request {i} batch fill");
            }
        },
    );
}

/// Two tenants with different shapes served concurrently on two
/// clusters: both complete everything, reports stay per-model, and the
/// element-exact volume conformance composes across the whole server.
#[test]
fn multi_tenant_models_share_clusters() {
    let wide = ModelSpec {
        name: "wide".to_string(),
        layers: vec![Conv2dProblem::new(4, 8, 4, 6, 6, 3, 3, 1, 1)],
        machine: MachineSpec::new(4, 1 << 20),
    };
    let mut c = cfg(Duration::from_millis(10));
    c.clusters = 2;
    let server = Server::start(vec![tiny_model("tiny"), wide], c).unwrap();
    for i in 0..6 {
        server.submit(i % 2, 500 + i as u64).expect("admitted");
    }
    assert!(server.drain(Duration::from_secs(60)), "drain timed out");
    let (report, results, errors) = server.shutdown();
    assert!(errors.is_empty(), "{errors:?}");
    assert_eq!(report.models[0].completed, 3);
    assert_eq!(report.models[1].completed, 3);
    assert_eq!(results.len(), 6);
    assert!(report.models.iter().all(|m| m.p50_ms <= m.p99_ms));
    let conf = report.conformance();
    assert!(conf.pass(), "{:?}", conf.failures());
    assert_eq!(conf.rows.len(), 2, "one exact volume row per tenant");
}

//! Serving under chaos: a rank killed mid-batch must not lose the
//! batch — the batcher's replay produces results bitwise identical to
//! the fault-free run, and a persistently dead rank degrades the grid
//! rather than failing the request.

use distconv_cost::{Conv2dProblem, MachineSpec};
use distconv_serve::{ModelSpec, ServeConfig, Server};
use distconv_simnet::{FaultPlan, MachineConfig};
use std::time::Duration;

fn model() -> ModelSpec {
    ModelSpec {
        name: "chaos".to_string(),
        layers: vec![
            Conv2dProblem::new(2, 8, 4, 8, 8, 3, 3, 1, 1),
            Conv2dProblem::new(2, 8, 8, 6, 6, 3, 3, 1, 1),
        ],
        machine: MachineSpec::new(4, 1 << 20),
    }
}

fn cfg(faults: FaultPlan) -> ServeConfig {
    ServeConfig {
        latency_budget: Duration::from_millis(20),
        queue_capacity: 32,
        clusters: 1,
        machine: MachineConfig {
            recv_timeout: Duration::from_millis(300),
            faults,
            ..MachineConfig::default()
        },
    }
}

/// Run `n` requests with fixed seeds through a server and return
/// `(report, seed → digest pairs sorted by admission id)`.
fn serve_run(faults: FaultPlan, n: u64) -> (distconv_serve::ServeReport, Vec<(u64, u64)>) {
    let server = Server::start(vec![model()], cfg(faults)).unwrap();
    for seed in 0..n {
        server.submit(0, 1000 + seed).expect("admitted");
    }
    let (report, mut results, errors) = server.shutdown();
    assert!(errors.is_empty(), "unrecovered batch errors: {errors:?}");
    results.sort_by_key(|r| r.id.0);
    let digests = results.into_iter().map(|r| (r.seed, r.digest)).collect();
    (report, digests)
}

#[test]
fn kill_mid_batch_replays_bitwise_and_meets_slo() {
    // Rank 1 dies at its 3rd send in every batch — mid-batch, after
    // real traffic has moved. Transient: the replay clears it.
    let (clean_report, clean) = serve_run(FaultPlan::default(), 4);
    let (chaos_report, chaos) = serve_run(FaultPlan::default().with_crash(1, 3), 4);

    assert_eq!(clean_report.models[0].completed, 4);
    assert_eq!(
        chaos_report.models[0].completed, 4,
        "no request may be lost"
    );
    assert!(
        chaos_report.models[0].replays >= 1,
        "the injected crash must have forced at least one replay"
    );
    assert_eq!(
        chaos, clean,
        "replayed batches must be bitwise identical to the fault-free run"
    );
    // SLO still met: recovery cost is bounded by the retry budget, not
    // unbounded queueing. (Generous bound — CI machines are noisy; the
    // point is that p99 is finite and reported, not a tight latency.)
    let p99 = chaos_report.models[0].p99_ms;
    assert!(p99 > 0.0 && p99 < 30_000.0, "p99 = {p99} ms");
    // Exact volume conformance holds under chaos: wasted traffic from
    // aborted attempts is accounted separately from committed batches.
    let conf = chaos_report.conformance();
    assert!(conf.pass(), "{:?}", conf.failures());
}

#[test]
fn persistent_death_degrades_grid_and_still_serves() {
    let (report, digests) = serve_run(FaultPlan::default().with_persistent_crash(2, 2), 2);
    assert_eq!(report.models[0].completed, 2, "degraded grid must serve");
    assert!(
        report.models[0].degraded_batches >= 1,
        "persistent crash must re-plan over survivors"
    );
    assert!(digests.iter().all(|&(_, d)| d != 0));
    let conf = report.conformance();
    assert!(conf.pass(), "{:?}", conf.failures());
}

//! # distconv-bench
//!
//! Experiment drivers for every table/figure in the reproduction (see
//! DESIGN.md §4 for the experiment index, EXPERIMENTS.md for recorded
//! results). Each `eN_*` function runs one experiment and returns a
//! printable [`table::Table`]; the `repro_*` binaries in `src/bin/`
//! are thin wrappers, and the criterion benches in `benches/` time the
//! hot paths.

#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::*;
pub use table::Table;

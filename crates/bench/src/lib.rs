//! # distconv-bench
//!
//! Experiment drivers for every table/figure in the reproduction (see
//! DESIGN.md §4 for the experiment index, EXPERIMENTS.md for recorded
//! results). Each `eN_*` function runs one experiment and returns a
//! printable [`table::Table`]; the `repro_*` binaries in `src/bin/`
//! are thin wrappers, and the wall-clock benches in `benches/` (built
//! on [`wallbench`]) time the hot paths.

#![warn(missing_docs)]

pub mod experiments;
pub mod table;
pub mod wallbench;

pub use experiments::*;
pub use table::Table;
pub use wallbench::{bench_report_json, BenchRecord, Suite};

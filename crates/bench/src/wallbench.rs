//! A tiny wall-clock bench runner: the in-tree replacement for
//! `criterion` (hermeticity policy, DESIGN.md).
//!
//! Each `benches/bench_*.rs` target is a plain `main()` (the manifests
//! keep `harness = false`) that builds [`Suite`]s and times closures.
//! Compared to criterion this keeps: named groups, per-case labels,
//! warmup, multiple timed batches with min/median reporting, and a
//! throughput column. It drops: statistical regression analysis, HTML
//! reports, and saved baselines — for this repo the benches are
//! *relative* ablations (blocked vs parallel, optimal vs bad tiles),
//! where a median over a few batches answers the question.
//!
//! Environment knobs:
//!
//! * `DISTCONV_BENCH_QUICK=1` — one warmup + one batch of one
//!   iteration per case. CI uses this as a "benches still run" smoke
//!   test; timings are meaningless in this mode.
//! * `DISTCONV_BENCH_BATCHES=<n>` — timed batches per case (default 7).
//! * `DISTCONV_BENCH_MIN_MS=<n>` — target milliseconds per batch
//!   (default 40): iterations per batch are auto-calibrated so one
//!   batch runs at least this long.

use distconv_cost::json::{JsonArray, JsonObject};
use distconv_cost::ToJson;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Resolved runner settings (see module docs for the env knobs).
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Timed batches per case; the median batch is reported.
    pub batches: u32,
    /// Target wall time per batch, used to calibrate iterations.
    pub min_batch: Duration,
    /// Smoke mode: one iteration, one batch.
    pub quick: bool,
}

impl BenchConfig {
    /// Read configuration from the environment.
    pub fn from_env() -> Self {
        let quick = std::env::var("DISTCONV_BENCH_QUICK").is_ok_and(|v| v != "0");
        let batches = std::env::var("DISTCONV_BENCH_BATCHES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(7);
        let min_ms = std::env::var("DISTCONV_BENCH_MIN_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(40u64);
        BenchConfig {
            batches: batches.max(1),
            min_batch: Duration::from_millis(min_ms.max(1)),
            quick,
        }
    }
}

/// A named group of benchmark cases, printed as a table on [`Suite::finish`].
pub struct Suite {
    name: String,
    cfg: BenchConfig,
    rows: Vec<Row>,
}

struct Row {
    label: String,
    iters: u64,
    median_ns: f64,
    min_ns: f64,
    throughput: Option<u64>,
    flops: Option<u64>,
}

/// One finished measurement, as returned by [`Suite::finish`] — the
/// machine-readable twin of a printed table row, serializable via
/// [`ToJson`] for bench-trajectory files (`BENCH_*.json`).
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Suite (group) name.
    pub suite: String,
    /// Case label within the suite.
    pub label: String,
    /// Iterations per timed batch.
    pub iters: u64,
    /// Median per-iteration wall time over the batches, nanoseconds.
    pub median_ns: f64,
    /// Fastest per-iteration wall time, nanoseconds.
    pub min_ns: f64,
    /// Elements processed per iteration, if declared.
    pub elems: Option<u64>,
    /// Floating-point operations per iteration, if declared.
    pub flops: Option<u64>,
}

impl BenchRecord {
    /// Median throughput in GFLOP/s, if `flops` was declared.
    pub fn gflops(&self) -> Option<f64> {
        self.flops.map(|f| f as f64 / (self.median_ns / 1e9) / 1e9)
    }
}

impl ToJson for BenchRecord {
    fn to_json(&self) -> String {
        let mut o = JsonObject::new()
            .field_str("suite", &self.suite)
            .field_str("label", &self.label)
            .field_usize("iters", self.iters as usize)
            .field_f64("median_ns", self.median_ns)
            .field_f64("min_ns", self.min_ns);
        if let Some(e) = self.elems {
            o = o.field_usize("elems", e as usize);
        }
        if let Some(f) = self.flops {
            o = o.field_usize("flops", f as usize);
            o = o.field_f64("gflops", self.gflops().unwrap());
        }
        o.finish()
    }
}

/// Serialize a bench run to the `BENCH_*.json` trajectory schema:
/// `{schema, quick, derived: {...}, records: [...]}`. `quick` is
/// recorded so consumers can refuse to compare smoke-mode timings.
pub fn bench_report_json(records: &[BenchRecord], derived: &[(&str, f64)]) -> String {
    let mut arr = JsonArray::new();
    for r in records {
        arr = arr.push_json(r);
    }
    let mut dobj = JsonObject::new();
    for (k, v) in derived {
        dobj = dobj.field_f64(k, *v);
    }
    JsonObject::new()
        .field_str("schema", "distconv-bench-v1")
        .field_usize("quick", BenchConfig::from_env().quick as usize)
        .field_json("derived", &RawJson(dobj.finish()))
        .field_json("records", &RawJson(arr.finish()))
        .finish()
}

struct RawJson(String);

impl ToJson for RawJson {
    fn to_json(&self) -> String {
        self.0.clone()
    }
}

impl Suite {
    /// Start a group named `name` with environment-derived settings.
    pub fn new(name: impl Into<String>) -> Self {
        Suite {
            name: name.into(),
            cfg: BenchConfig::from_env(),
            rows: Vec::new(),
        }
    }

    /// Time `f`, reporting per-iteration cost under `label`.
    pub fn bench<R, F: FnMut() -> R>(&mut self, label: impl Into<String>, f: F) -> &mut Self {
        self.bench_throughput(label, None, f)
    }

    /// Like [`Suite::bench`], additionally reporting `elems/s` derived
    /// from `elems` processed per iteration.
    pub fn bench_throughput<R, F: FnMut() -> R>(
        &mut self,
        label: impl Into<String>,
        elems: Option<u64>,
        f: F,
    ) -> &mut Self {
        self.bench_case(label, elems, None, f)
    }

    /// Like [`Suite::bench`], additionally reporting GFLOP/s derived
    /// from `flops` floating-point operations per iteration — the
    /// column that makes kernel ablations comparable across shapes.
    pub fn bench_flops<R, F: FnMut() -> R>(
        &mut self,
        label: impl Into<String>,
        flops: u64,
        f: F,
    ) -> &mut Self {
        self.bench_case(label, None, Some(flops), f)
    }

    fn bench_case<R, F: FnMut() -> R>(
        &mut self,
        label: impl Into<String>,
        elems: Option<u64>,
        flops: Option<u64>,
        mut f: F,
    ) -> &mut Self {
        let label = label.into();
        // Warmup + calibration: run batches of growing size until one
        // takes min_batch; that size is the measured batch size.
        let mut iters: u64 = 1;
        if !self.cfg.quick {
            loop {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                let el = t.elapsed();
                if el >= self.cfg.min_batch || iters >= 1 << 24 {
                    break;
                }
                // Aim past the target so the next probe usually ends it.
                let factor = (self.cfg.min_batch.as_secs_f64() / el.as_secs_f64().max(1e-9))
                    .clamp(1.5, 100.0);
                iters = ((iters as f64 * factor).ceil() as u64).max(iters + 1);
            }
        }
        let batches = if self.cfg.quick { 1 } else { self.cfg.batches };
        let mut samples: Vec<f64> = (0..batches)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_secs_f64() * 1e9 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.rows.push(Row {
            label,
            iters,
            median_ns: samples[samples.len() / 2],
            min_ns: samples[0],
            throughput: elems,
            flops,
        });
        self
    }

    /// Print the group's table to stdout and return the measurements
    /// as [`BenchRecord`]s (for `BENCH_*.json` emission; callers that
    /// only want the table simply drop the return value).
    pub fn finish(&mut self) -> Vec<BenchRecord> {
        println!("\n## {}", self.name);
        println!(
            "| {:<28} | {:>12} | {:>12} | {:>8} | {:>14} | {:>10} |",
            "case", "median/iter", "min/iter", "iters", "throughput", "GFLOP/s"
        );
        println!(
            "|{}|{}|{}|{}|{}|{}|",
            "-".repeat(30),
            "-".repeat(14),
            "-".repeat(14),
            "-".repeat(10),
            "-".repeat(16),
            "-".repeat(12)
        );
        let records: Vec<BenchRecord> = self
            .rows
            .drain(..)
            .map(|r| BenchRecord {
                suite: self.name.clone(),
                label: r.label,
                iters: r.iters,
                median_ns: r.median_ns,
                min_ns: r.min_ns,
                elems: r.throughput,
                flops: r.flops,
            })
            .collect();
        for r in &records {
            let tp = r
                .elems
                .map(|e| {
                    let per_sec = e as f64 / (r.median_ns / 1e9);
                    format!("{} elem/s", human(per_sec))
                })
                .unwrap_or_else(|| "-".into());
            let gf = r
                .gflops()
                .map(|g| format!("{g:.2}"))
                .unwrap_or_else(|| "-".into());
            println!(
                "| {:<28} | {:>12} | {:>12} | {:>8} | {:>14} | {:>10} |",
                r.label,
                human_ns(r.median_ns),
                human_ns(r.min_ns),
                r.iters,
                tp,
                gf
            );
        }
        records
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human(x: f64) -> String {
    if x < 1e3 {
        format!("{x:.0}")
    } else if x < 1e6 {
        format!("{:.1}K", x / 1e3)
    } else if x < 1e9 {
        format!("{:.1}M", x / 1e6)
    } else {
        format!("{:.2}G", x / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_each_case_once_per_batch() {
        let mut s = Suite::new("test");
        s.cfg = BenchConfig {
            batches: 3,
            min_batch: Duration::from_millis(1),
            quick: true,
        };
        let mut calls = 0u64;
        s.bench("counted", || calls += 1);
        assert_eq!(calls, 1, "quick mode: no warmup, single 1-iter batch");
        assert_eq!(s.rows.len(), 1);
        assert_eq!(s.rows[0].iters, 1);
    }

    #[test]
    fn calibration_reaches_min_batch() {
        let mut s = Suite::new("test");
        s.cfg = BenchConfig {
            batches: 2,
            min_batch: Duration::from_millis(2),
            quick: false,
        };
        s.bench("spin", || std::hint::black_box((0..1000).sum::<u64>()));
        assert!(s.rows[0].iters > 1, "cheap op must be batched up");
        assert!(s.rows[0].median_ns > 0.0);
    }

    #[test]
    fn flops_column_and_records() {
        let mut s = Suite::new("g");
        s.cfg = BenchConfig {
            batches: 1,
            min_batch: Duration::from_millis(1),
            quick: true,
        };
        s.bench_flops("case", 2_000_000_000, || {
            std::thread::sleep(Duration::from_millis(1))
        });
        let recs = s.finish();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].suite, "g");
        assert_eq!(recs[0].flops, Some(2_000_000_000));
        // ≥1 ms per iter at 2 GFLOP ⇒ well under 2000 GFLOP/s.
        let g = recs[0].gflops().unwrap();
        assert!(g > 0.0 && g < 2000.0, "{g}");
    }

    #[test]
    fn report_json_parses_back() {
        use distconv_cost::json::JsonValue;
        let rec = BenchRecord {
            suite: "s".into(),
            label: "l".into(),
            iters: 3,
            median_ns: 1.5e6,
            min_ns: 1.0e6,
            elems: None,
            flops: Some(1_000_000),
        };
        let j = bench_report_json(&[rec], &[("speedup", 3.5)]);
        let v = JsonValue::parse(&j).expect("valid json");
        assert_eq!(v.get("schema").unwrap().as_str(), Some("distconv-bench-v1"));
        assert_eq!(
            v.get("derived")
                .and_then(|d| d.get("speedup"))
                .unwrap()
                .as_f64(),
            Some(3.5)
        );
        let recs = v.get("records").unwrap().as_array().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].get("label").unwrap().as_str(), Some("l"));
        let gf = recs[0].get("gflops").unwrap().as_f64().unwrap();
        assert!((gf - (1e6 / 1.5e-3 / 1e9)).abs() < 1e-9);
    }

    #[test]
    fn humanizers() {
        assert_eq!(human_ns(12.34), "12.3 ns");
        assert_eq!(human_ns(12_340.0), "12.34 µs");
        assert_eq!(human_ns(12_340_000.0), "12.34 ms");
        assert_eq!(human(1500.0), "1.5K");
        assert_eq!(human(2.5e7), "25.0M");
    }
}

//! Whole-network autotuner sweep: DP over per-layer candidate grids
//! with exactly-costed redistribution vs greedy per-layer planning,
//! executed and element-exact at the small scales (E17).
fn main() {
    println!("{}", distconv_bench::e17_autotune());
}

//! M_L deflation validity and lower bound (E5).
fn main() {
    println!("{}", distconv_bench::e5_ml_deflation());
}

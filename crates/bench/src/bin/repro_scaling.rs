//! Strong and weak scaling of the distributed algorithm (E10).
fn main() {
    println!("{}", distconv_bench::e10_scaling());
}

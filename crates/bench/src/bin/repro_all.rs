//! Run every experiment (E1–E10) in order — the full reproduction.
//! Output is the material recorded in EXPERIMENTS.md.
fn main() {
    println!("{}", distconv_bench::e1_table1());
    println!("{}", distconv_bench::e2_table2());
    println!("{}", distconv_bench::e3_gvm_exactness());
    println!("{}", distconv_bench::e4_property5());
    println!("{}", distconv_bench::e5_ml_deflation());
    println!("{}", distconv_bench::e6_distributed());
    println!("{}", distconv_bench::e7_matmul_analogy());
    println!("{}", distconv_bench::e8_regime_sweep());
    println!("{}", distconv_bench::e9_baselines());
    println!("{}", distconv_bench::e9_baselines_analytic(32));
    println!("{}", distconv_bench::e10_scaling());
    println!("{}", distconv_bench::e11_alpha_beta());
    println!("{}", distconv_bench::e12_network());
    println!("{}", distconv_bench::e17_autotune());
}

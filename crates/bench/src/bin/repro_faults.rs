//! Chaos reproduction: the fault-sweep table (E13).
fn main() {
    println!("{}", distconv_bench::e13_fault_sweep());
}

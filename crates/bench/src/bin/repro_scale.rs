//! Event-backend scale sweep: Eq. 10/11 and the constant-gap theorem
//! validated against measured traffic at P up to 4096 (E15).
fn main() {
    println!("{}", distconv_bench::e15_scale_sweep());
}

//! 1×1-conv ≡ matmul analogy: distconv vs SUMMA/2.5D/3D (E7).
fn main() {
    println!("{}", distconv_bench::e7_matmul_analogy());
}

//! Memory sweep: 2D → 2.5D → 3D regime transitions (E8).
fn main() {
    println!("{}", distconv_bench::e8_regime_sweep());
}

//! distconv vs data/spatial/filter parallelism, measured and
//! full-scale analytic (E9).
fn main() {
    println!("{}", distconv_bench::e9_baselines());
    println!("{}", distconv_bench::e9_baselines_analytic(32));
}

//! Eq. 1/3 exactness of the GVM executor (E3).
fn main() {
    println!("{}", distconv_bench::e3_gvm_exactness());
}

//! Chaos at scale: sampled fault plans at P ∈ {256, 1024} on the
//! discrete-event backend, plus degraded recovery from a persistent
//! crash (E16). Every row is a pure function of the pinned chaos seed.
fn main() {
    println!("{}", distconv_bench::e16_chaos_sweep());
    println!("{}", distconv_bench::e16_degraded_recovery());
}

//! The distributed algorithm: measured vs Eq. 10/11 and the
//! constant-gap theorem (E6).
fn main() {
    println!("{}", distconv_bench::e6_distributed());
}

//! α–β time-model comparison across network profiles (E11).
fn main() {
    println!("{}", distconv_bench::e11_alpha_beta());
}

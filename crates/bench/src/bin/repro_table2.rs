//! Regenerate Table 2 (E2) and Property (5) checks (E4).
fn main() {
    println!("{}", distconv_bench::e2_table2());
    println!("{}", distconv_bench::e4_property5());
}

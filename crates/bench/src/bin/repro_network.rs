//! Multi-layer network with inter-layer redistribution (E12).
fn main() {
    println!("{}", distconv_bench::e12_network());
}

//! Compare (or validate) `BENCH_*.json` bench-trajectory files.
//!
//! ```text
//! bench_compare --validate FILE [--require SUBSTR]...
//!                                      # schema + sanity checks, exit 1 on failure
//! bench_compare OLD.json NEW.json      # per-case speedup table
//! ```
//!
//! Each `--require SUBSTR` demands that some `suite/label` case key
//! contains `SUBSTR` — CI uses this to pin the presence of the
//! `fast_simd` and `winograd` records in `BENCH_kernels.json`.
//! Validation also enforces the `direct_par` regression guard — in
//! every suite carrying both labels, `direct_par` must not be slower
//! than `direct` by more than 10% (the serial fallback below
//! `PAR_MADD_CUTOFF` makes small shapes free) — uniformly in quick and
//! full mode, plus the autotune and serving derived-field guards.
//!
//! Usually invoked through `scripts/bench_compare.sh`. Files are the
//! `distconv-bench-v1` schema written by
//! `cargo bench --bench bench_kernels -- --json`.

use distconv_cost::json::JsonValue;
use std::process::ExitCode;

struct Case {
    key: String,
    median_ns: f64,
    gflops: Option<f64>,
}

struct Report {
    quick: bool,
    cases: Vec<Case>,
    derived: Vec<(String, f64)>,
}

fn load(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let v = JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    match v.get("schema").and_then(|s| s.as_str()) {
        Some("distconv-bench-v1") => {}
        other => return Err(format!("{path}: unsupported schema {other:?}")),
    }
    let quick = v.get("quick").and_then(|q| q.as_f64()).unwrap_or(0.0) != 0.0;
    let records = v
        .get("records")
        .and_then(|r| r.as_array())
        .ok_or_else(|| format!("{path}: missing records array"))?;
    let mut cases = Vec::new();
    for (i, r) in records.iter().enumerate() {
        let suite = r
            .get("suite")
            .and_then(|s| s.as_str())
            .ok_or_else(|| format!("{path}: record {i} missing suite"))?;
        let label = r
            .get("label")
            .and_then(|s| s.as_str())
            .ok_or_else(|| format!("{path}: record {i} missing label"))?;
        let median_ns = r
            .get("median_ns")
            .and_then(|m| m.as_f64())
            .ok_or_else(|| format!("{path}: record {i} missing median_ns"))?;
        if median_ns <= 0.0 {
            return Err(format!("{path}: record {i} non-positive median_ns"));
        }
        cases.push(Case {
            key: format!("{suite}/{label}"),
            median_ns,
            gflops: r.get("gflops").and_then(|g| g.as_f64()),
        });
    }
    let derived = match v.get("derived") {
        Some(JsonValue::Obj(fields)) => fields
            .iter()
            .filter_map(|(k, val)| val.as_f64().map(|x| (k.clone(), x)))
            .collect(),
        _ => Vec::new(),
    };
    Ok(Report {
        quick,
        cases,
        derived,
    })
}

/// Suites where both `direct` and `direct_par` appear may see the
/// parallel kernel at most this factor slower than the serial one —
/// the `PAR_MADD_CUTOFF` serial fallback guarantees small shapes never
/// pay pool-dispatch overhead.
const DIRECT_PAR_SLOWDOWN_LIMIT: f64 = 1.10;

fn validate(path: &str, require: &[String]) -> Result<(), String> {
    let rep = load(path)?;
    if rep.cases.is_empty() {
        return Err(format!("{path}: no bench records"));
    }
    for want in require {
        if !rep.cases.iter().any(|c| c.key.contains(want.as_str())) {
            return Err(format!(
                "{path}: no case key contains required substring {want:?}"
            ));
        }
    }
    // The direct_par guard applies uniformly: quick mode shortens the
    // measurement but the serial-fallback cutoff it polices is just as
    // visible there, and skipping it let CI quick runs mask a real
    // regression.
    check_direct_par_guard(path, &rep)?;
    check_autotune_guard(path, &rep)?;
    check_serving_guard(path, &rep)?;
    println!(
        "{path}: ok — {} records{}, derived: {}",
        rep.cases.len(),
        if rep.quick { " (quick mode)" } else { "" },
        if rep.derived.is_empty() {
            "none".to_string()
        } else {
            rep.derived
                .iter()
                .map(|(k, v)| format!("{k}={v:.3}"))
                .collect::<Vec<_>>()
                .join(", ")
        }
    );
    Ok(())
}

/// The satellite regression guard: `direct_par` must never be slower
/// than `direct` by more than [`DIRECT_PAR_SLOWDOWN_LIMIT`] in any
/// suite that records both.
fn check_direct_par_guard(path: &str, rep: &Report) -> Result<(), String> {
    for c in &rep.cases {
        let Some(suite) = c.key.strip_suffix("/direct_par") else {
            continue;
        };
        let direct_key = format!("{suite}/direct");
        let Some(d) = rep.cases.iter().find(|o| o.key == direct_key) else {
            continue;
        };
        let ratio = c.median_ns / d.median_ns;
        if ratio > DIRECT_PAR_SLOWDOWN_LIMIT {
            return Err(format!(
                "{path}: {key} is {ratio:.2}x slower than {direct_key} \
                 (limit {DIRECT_PAR_SLOWDOWN_LIMIT:.2}x) — the serial \
                 fallback below PAR_MADD_CUTOFF should make small shapes \
                 free; re-measure or fix the cutoff",
                key = c.key,
            ));
        }
        println!(
            "{path}: {key} vs {direct_key}: {ratio:.2}x (ok)",
            key = c.key
        );
    }
    Ok(())
}

/// The autotuner acceptance guard: when a file carries the
/// `speedup_tuned_over_greedy` derived field (BENCH_autotune.json), it
/// must be ≥ 1.0 — the network DP contains the greedy path, so a value
/// below 1 means the tuner regressed into actively losing to greedy
/// planning. Derived fields are deterministic predicted-cost ratios,
/// so this holds in quick mode too.
fn check_autotune_guard(path: &str, rep: &Report) -> Result<(), String> {
    let key = "speedup_tuned_over_greedy";
    if let Some((_, v)) = rep.derived.iter().find(|(k, _)| k == key) {
        if *v < 1.0 {
            return Err(format!(
                "{path}: derived {key} = {v:.4} < 1.0 — the tuned network \
                 plan must never cost more than the greedy one (the DP \
                 includes the greedy path); the planner or DP regressed"
            ));
        }
        println!("{path}: derived {key} = {v:.4} (>= 1.0, ok)");
    }
    Ok(())
}

/// The serving acceptance guard: when a file carries the serving
/// latency percentiles (BENCH_serving.json), they must be ordered
/// (p50 ≤ p95 ≤ p99, all positive) and the saturation throughput must
/// be positive. Percentile ordering is a property of the estimator,
/// not the machine, so this holds in quick mode too.
fn check_serving_guard(path: &str, rep: &Report) -> Result<(), String> {
    let find = |key: &str| rep.derived.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
    let Some(p50) = find("serving_p50_ms") else {
        return Ok(());
    };
    let p95 = find("serving_p95_ms")
        .ok_or_else(|| format!("{path}: serving_p50_ms present but serving_p95_ms missing"))?;
    let p99 = find("serving_p99_ms")
        .ok_or_else(|| format!("{path}: serving_p50_ms present but serving_p99_ms missing"))?;
    let rps = find("serving_saturation_rps")
        .ok_or_else(|| format!("{path}: serving percentiles present but saturation rps missing"))?;
    if !(p50 > 0.0 && p50 <= p95 && p95 <= p99) {
        return Err(format!(
            "{path}: serving percentiles disordered: p50={p50:.3} p95={p95:.3} p99={p99:.3} \
             (need 0 < p50 <= p95 <= p99)"
        ));
    }
    if rps <= 0.0 {
        return Err(format!(
            "{path}: serving_saturation_rps = {rps:.3} must be positive — the saturation \
             scan found no sustainable offered load"
        ));
    }
    println!(
        "{path}: serving p50/p95/p99 = {p50:.3}/{p95:.3}/{p99:.3} ms, \
         saturation {rps:.1} req/s (ok)"
    );
    Ok(())
}

fn compare(old_path: &str, new_path: &str) -> Result<(), String> {
    let old = load(old_path)?;
    let new = load(new_path)?;
    if old.quick || new.quick {
        eprintln!("warning: comparing quick-mode timings — speedups are meaningless");
    }
    println!(
        "| {:<44} | {:>10} | {:>10} | {:>8} |",
        "case", "old", "new", "speedup"
    );
    println!(
        "|{}|{}|{}|{}|",
        "-".repeat(46),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(10)
    );
    let mut matched = 0;
    for n in &new.cases {
        let Some(o) = old.cases.iter().find(|o| o.key == n.key) else {
            println!(
                "| {:<44} | {:>10} | {:>10} | {:>8} |",
                n.key,
                "-",
                ms(n.median_ns),
                "new"
            );
            continue;
        };
        matched += 1;
        println!(
            "| {:<44} | {:>10} | {:>10} | {:>7.2}x |",
            n.key,
            ms(o.median_ns),
            ms(n.median_ns),
            o.median_ns / n.median_ns
        );
        if let (Some(og), Some(ng)) = (o.gflops, n.gflops) {
            let _ = (og, ng); // GFLOP/s implied by the time ratio; kept in the files
        }
    }
    for o in &old.cases {
        if !new.cases.iter().any(|n| n.key == o.key) {
            println!(
                "| {:<44} | {:>10} | {:>10} | {:>8} |",
                o.key,
                ms(o.median_ns),
                "-",
                "gone"
            );
        }
    }
    for (k, nv) in &new.derived {
        match old.derived.iter().find(|(ok, _)| ok == k) {
            Some((_, ov)) => println!("derived {k}: {ov:.3} -> {nv:.3}"),
            None => println!("derived {k}: {nv:.3} (new)"),
        }
    }
    if matched == 0 {
        return Err("no common cases between the two files".into());
    }
    Ok(())
}

fn ms(ns: f64) -> String {
    if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else {
        format!("{:.2} ms", ns / 1e6)
    }
}

/// Parse trailing `--require SUBSTR` pairs after `--validate FILE`.
fn parse_requires(rest: &[String]) -> Result<Vec<String>, String> {
    let mut require = Vec::new();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if flag != "--require" {
            return Err(format!(
                "unexpected argument {flag:?} (want --require SUBSTR)"
            ));
        }
        match it.next() {
            Some(s) => require.push(s.clone()),
            None => return Err("--require needs a substring argument".into()),
        }
    }
    Ok(require)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [flag, path, rest @ ..] if flag == "--validate" => {
            parse_requires(rest).and_then(|require| validate(path, &require))
        }
        [old, new] => compare(old, new),
        _ => Err(
            "usage: bench_compare --validate FILE [--require SUBSTR]... \
             | bench_compare OLD.json NEW.json"
                .into(),
        ),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_compare: {e}");
            ExitCode::FAILURE
        }
    }
}

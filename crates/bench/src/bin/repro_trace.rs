//! Reproduce the observability artifacts: run the cost-model
//! conformance suite over the golden shapes, print the per-row table,
//! and optionally export / schema-validate the Chrome trace of the
//! representative conv layer.
//!
//! ```text
//! repro_trace [--json] [--export PATH] [--schema PATH]
//! ```
//!
//! * `--json` — print the conformance report as JSON instead of a table
//! * `--export PATH` — write the sample run's Chrome trace-event JSON to
//!   PATH (load in chrome://tracing or ui.perfetto.dev)
//! * `--schema PATH` — validate the exported trace against the committed
//!   schema (`tests/goldens/trace_schema.json`)
//!
//! Exit codes: 0 ok, 1 conformance failure, 2 schema failure.

use distconv_bench::{e14_sample_trace, e14_trace_conformance, validate_chrome_trace};

fn main() {
    let mut json = false;
    let mut export: Option<String> = None;
    let mut schema: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--export" => export = Some(args.next().expect("--export needs a path")),
            "--schema" => schema = Some(args.next().expect("--schema needs a path")),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let rep = e14_trace_conformance();
    if json {
        println!("{}", rep.to_json());
    } else {
        println!("{rep}");
    }

    if export.is_some() || schema.is_some() {
        let trace = e14_sample_trace();
        let chrome = trace.to_chrome_json();
        if !json {
            println!("\nPer-rank span metrics (representative layer, P=8):");
            println!("{}", trace.metrics_table());
        }
        if let Some(path) = &export {
            std::fs::write(path, &chrome).expect("write trace export");
            eprintln!("wrote {} events to {path}", trace.len());
        }
        if let Some(path) = &schema {
            let text = std::fs::read_to_string(path).expect("read schema");
            match validate_chrome_trace(&chrome, &text) {
                Ok(n) => eprintln!("schema ok: {n} events validated against {path}"),
                Err(e) => {
                    eprintln!("schema FAILED: {e}");
                    std::process::exit(2);
                }
            }
        }
    }

    if !rep.pass() {
        for row in rep.failures() {
            eprintln!("conformance FAILED: {}", row.name);
        }
        std::process::exit(1);
    }
}

//! Regenerate Table 1 (experiment E1): closed-form vs brute force.
fn main() {
    println!("{}", distconv_bench::e1_table1());
}

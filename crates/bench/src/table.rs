//! Minimal fixed-width table formatting for experiment output.

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (printed above the header).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes printed below the table.
    pub notes: Vec<String>,
}

impl Table {
    /// New table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a footnote.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render to a string (also what `Display` prints).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {:<w$} |", c, w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        for n in &self.notes {
            out.push_str(&format!("> {n}\n"));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Format a float compactly: integers plain, large values in engineering
/// notation.
pub fn fnum(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a >= 1e7 {
        format!("{v:.3e}")
    } else if (v.round() - v).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

/// Format a u128 with engineering notation above 10^7.
pub fn inum(v: u128) -> String {
    if v >= 10_000_000 {
        fnum(v as f64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-col"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["1000".into(), "x".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| 1000 |"));
        assert!(s.contains("> a note"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(fnum(3.0), "3");
        assert_eq!(fnum(3.25), "3.25");
        assert_eq!(fnum(1.25e9), "1.250e9");
        assert_eq!(inum(42), "42");
    }
}

//! E16 — chaos at scale: randomized fault plans at P ∈ {256, 1024} on
//! the discrete-event backend, plus the degraded-recovery scenario (a
//! persistent crash exhausts the step retries and the run finishes on a
//! re-planned survivor grid). Every fault plan is derived from one
//! pinned seed, so the whole sweep is bit-reproducible and golden-pinned
//! in CI — "randomized" means *sampled*, never *nondeterministic*.

use crate::table::{fnum, inum, Table};
use distconv_core::DistConv;
use distconv_cost::{Conv2dProblem, MachineSpec, Planner};
use distconv_par::rng::SplitMix64;
use distconv_simnet::{Backend, FaultPlan, MachineConfig};
use distconv_trace::TraceConfig;
use std::time::Duration;

/// One pinned seed for the whole chaos sweep: every sampled fault plan
/// is a pure function of it, so CI replays exactly this table.
pub const E16_CHAOS_SEED: u64 = 0xC4A0_5CA1;

/// Sample a reliable-mode fault plan from `rng`. Probabilities are kept
/// ≤ 20% so the ARQ overhead stays bounded at P = 1024 (a drop rate is
/// per *wire*, and a thousand-rank broadcast tree has a lot of wires).
fn sample_plan(rng: &mut SplitMix64) -> FaultPlan {
    let mut plan = FaultPlan::reliable(rng.next_u64());
    if rng.bool() {
        plan = plan.with_drops(rng.next_f64() * 0.2);
    }
    if rng.bool() {
        plan = plan.with_dups(rng.next_f64() * 0.2);
    }
    if rng.bool() {
        plan = plan.with_delays(rng.next_f64() * 0.2, rng.next_f64() * 4.0);
    }
    if rng.bool() {
        plan = plan.with_reorders(rng.next_f64() * 0.2);
    }
    plan
}

/// **E16 / chaos sweep**: the E15 layer at P ∈ {256, 1024} on the event
/// backend, fault-free and under sampled fault plans. Results must stay
/// bit-exact (verified at P = 256, element-exact traffic at both) with
/// all fault overhead in the separate counters.
pub fn e16_chaos_sweep() -> Table {
    let mut t = Table::new(
        "E16 — chaos at scale: sampled fault plans on the event backend",
        &[
            "P",
            "fault plan",
            "volume",
            "retrans",
            "dropped",
            "acks",
            "dups",
            "makespan",
            "verified",
        ],
    );
    let p = Conv2dProblem::square(8, 64, 32, 16, 3);
    let mut rng = SplitMix64::new(E16_CHAOS_SEED);
    for procs in [256usize, 1024] {
        let plan = Planner::new(p, MachineSpec::new(procs, 1 << 20))
            .plan()
            .unwrap();
        let mut cases: Vec<(String, FaultPlan)> = vec![("none".into(), FaultPlan::default())];
        for i in 0..3 {
            let fp = sample_plan(&mut rng);
            cases.push((
                format!(
                    "#{i}: drop {:.0}% dup {:.0}% delay {:.0}% reorder {:.0}%",
                    fp.drop_prob * 100.0,
                    fp.dup_prob * 100.0,
                    fp.delay_prob * 100.0,
                    fp.reorder_prob * 100.0
                ),
                fp,
            ));
        }

        let mut baseline_volume = None;
        for (name, fp) in cases {
            let cfg = MachineConfig {
                backend: Backend::Event,
                trace: TraceConfig::off(),
                recv_timeout: Duration::from_millis(500),
                faults: fp,
                ..MachineConfig::default()
            };
            let drv = DistConv::<f64>::new(plan).with_config(cfg);
            // Verification replays the sequential reference per run; do
            // it where it is cheap and lean on the element-exact traffic
            // identity plus backend equivalence at P = 1024.
            let verify = procs <= 256;
            let r = if verify {
                drv.run_verified(23).unwrap()
            } else {
                drv.run(23)
            };
            assert_eq!(
                r.measured_volume() as u128,
                r.expected.total(),
                "P={procs} {name}: volume must stay element-exact under faults"
            );
            let base = *baseline_volume.get_or_insert(r.measured_volume());
            assert_eq!(
                r.measured_volume(),
                base,
                "P={procs} {name}: algorithmic volume must be fault-independent"
            );
            if fp.is_noop() {
                assert!(r.stats.fault.is_zero(), "P={procs}: no-op plan injected");
            }
            let f = &r.stats.fault;
            t.row(vec![
                procs.to_string(),
                name,
                inum(r.measured_volume() as u128),
                inum(f.retrans_msgs as u128),
                inum(f.dropped_msgs as u128),
                inum(f.ack_msgs as u128),
                inum(f.dup_msgs as u128),
                fnum(r.makespan),
                if verify { "yes" } else { "traffic" }.to_string(),
            ]);
        }
    }
    t.note("every row's volume equals its fault-free baseline: ARQ retransmit/ack");
    t.note("traffic is accounted separately and never leaks into the volume counters.");
    t.note(format!(
        "chaos seed {E16_CHAOS_SEED:#x}; all fault plans sampled from it, bit-reproducible."
    ));
    t
}

/// **E16 / degraded recovery**: a persistent crash survives every
/// checkpoint/restart retry; the driver re-plans over the survivors,
/// redistributes the checkpoint (volume reported separately, like ARQ
/// overhead), and finishes verified on the shrunken grid.
pub fn e16_degraded_recovery() -> Table {
    let mut t = Table::new(
        "E16 — degraded recovery: persistent crash, retries exhausted, grid shrunk",
        &[
            "scenario",
            "old grid",
            "new grid",
            "dead",
            "attempts",
            "retry elems",
            "redist elems",
            "volume",
            "conformance",
        ],
    );
    let p = Conv2dProblem::square(4, 8, 8, 8, 3);
    let plan = Planner::new(p, MachineSpec::new(8, 1 << 20))
        .plan()
        .unwrap();
    for (name, crash_rank, at_send) in [
        ("crash r0 @send 2", 0usize, 2u64),
        ("crash r5 @send 2", 5, 2),
    ] {
        let cfg = MachineConfig {
            backend: Backend::Event,
            recv_timeout: Duration::from_millis(500),
            faults: FaultPlan::reliable(E16_CHAOS_SEED).with_persistent_crash(crash_rank, at_send),
            ..MachineConfig::default()
        };
        let r = DistConv::<f64>::new(plan)
            .with_config(cfg)
            .run_recovering(11)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            r.degraded && r.recovered && r.verified,
            "{name}: must finish verified on a shrunken grid"
        );
        let info = r.degrade.as_ref().unwrap();
        let conf = r.conformance();
        assert!(conf.pass(), "{name}: conformance at P' failed:\n{conf}");
        let gridfmt = |g: &distconv_cost::planner::GridShape| {
            format!("{}x{}x{}x{}x{}", g.pb, g.pk, g.pc, g.ph, g.pw)
        };
        t.row(vec![
            name.to_string(),
            gridfmt(&info.old_grid),
            gridfmt(&info.new_grid),
            format!("{:?}", info.dead_ranks),
            r.retries.to_string(),
            inum(r.retry_elems as u128),
            inum(info.redist_elems as u128),
            inum(r.measured_volume() as u128),
            "pass".to_string(),
        ]);
    }
    t.note("the post-shrink run verifies against the sequential reference and its");
    t.note("traffic passes conformance at P' — correctness degrades to fewer ranks,");
    t.note("never to wrong answers.");
    t
}

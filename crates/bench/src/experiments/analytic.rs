//! Analytic experiments: the paper's two tables, the structural
//! property, the `M_L` deflation, and the regime sweep (E1, E2, E4,
//! E5, E8).

use crate::table::{fnum, inum, Table};
use distconv_cost::brute::{brute_eq4, brute_eq4_conforming, property5_holds};
use distconv_cost::closed_form::{
    ml_deflate, solve_table1, solve_table2, solve_table2_factored, thresh3d,
};
use distconv_cost::exact::eq3_footprint_g;
use distconv_cost::simplified::{resident_slice, InnerLoop};
use distconv_cost::tiling::{largest_divisor_at_most, Tiling};
use distconv_cost::{Conv2dProblem, MachineSpec, Planner};

/// The layer grid the analytic experiments sweep: friendly
/// power-of-two layers spanning the three regimes.
pub fn analytic_layers() -> Vec<(&'static str, Conv2dProblem)> {
    vec![
        ("early(wide-image)", Conv2dProblem::square(4, 16, 16, 16, 3)),
        ("mid(balanced)", Conv2dProblem::square(4, 32, 32, 8, 3)),
        ("late(deep)", Conv2dProblem::square(4, 64, 64, 4, 3)),
        ("strided", Conv2dProblem::new(4, 16, 16, 8, 8, 3, 3, 2, 2)),
    ]
}

/// **E1 / Table 1**: closed-form optimal cost vs the brute-force
/// integer optimum of Eq. 4 (c-innermost family), across layers,
/// processor counts and memory levels. The closed form must
/// lower-bound the integer optimum and stay close to it; the regime
/// column reproduces Table 1's three conditions.
pub fn e1_table1() -> Table {
    let mut t = Table::new(
        "E1 — Table 1: closed-form vs brute-force integer optimum (Eq. 4, c innermost)",
        &[
            "layer",
            "P",
            "M_L",
            "regime",
            "closed",
            "brute",
            "brute/closed",
        ],
    );
    let mut worst_ratio = 1.0f64;
    for (name, p) in analytic_layers() {
        for procs in [4usize, 16, 64] {
            let r = resident_slice(&p, procs, InnerLoop::C);
            let t3 = thresh3d(&p, procs);
            for m_l in [r * 0.25, r * 0.9, (r + t3) / 2.0, t3 * 2.0] {
                let m_l = m_l.max(4.0);
                let cf = solve_table1(&p, procs, m_l);
                let Some(b) = brute_eq4(&p, procs, m_l, InnerLoop::C) else {
                    continue;
                };
                let ratio = b.cost / cf.cost;
                worst_ratio = worst_ratio.max(ratio);
                assert!(
                    cf.cost <= b.cost * (1.0 + 1e-9),
                    "closed form must lower-bound the integer optimum"
                );
                t.row(vec![
                    name.to_string(),
                    procs.to_string(),
                    fnum(m_l),
                    cf.regime.name().to_string(),
                    fnum(cf.cost),
                    fnum(b.cost),
                    format!("{ratio:.3}"),
                ]);
            }
        }
    }
    t.note(format!(
        "closed form lower-bounds the integer optimum everywhere; worst integer/relaxed ratio {worst_ratio:.3}"
    ));
    t.note("regimes: 2D = Case 1a (Eq.6), 2.5D = Case 2b (Eq.9), 3D = Case 2a (Eq.8)");
    t
}

/// **E2 / Table 2**: all-permutation closed form (as printed, and with
/// the factored Row-1 min) vs the brute-force optimum over all three
/// innermost-loop families.
pub fn e2_table2() -> Table {
    let mut t = Table::new(
        "E2 — Table 2: all-permutation solutions vs brute force over the three families",
        &[
            "layer",
            "P",
            "M_L",
            "printed",
            "factored",
            "brute(best)",
            "family",
            "printed≤t1",
        ],
    );
    for (name, p) in analytic_layers() {
        for procs in [4usize, 16, 64] {
            let r = resident_slice(&p, procs, InnerLoop::C);
            for m_l in [r * 0.25, r * 4.0] {
                let m_l = m_l.max(4.0);
                let printed = solve_table2(&p, procs, m_l);
                let factored = solve_table2_factored(&p, procs, m_l);
                let t1 = solve_table1(&p, procs, m_l);
                // Brute force across the three generalized objectives.
                let best = InnerLoop::ALL
                    .iter()
                    .filter_map(|&f| brute_eq4(&p, procs, m_l, f).map(|b| (f, b)))
                    .min_by(|a, b| a.1.cost.partial_cmp(&b.1.cost).unwrap());
                let Some((fam, b)) = best else { continue };
                assert!(
                    printed.cost <= t1.cost + 1e-6,
                    "Table 2 must be at most Table 1"
                );
                t.row(vec![
                    name.to_string(),
                    procs.to_string(),
                    fnum(m_l),
                    fnum(printed.cost),
                    fnum(factored.cost),
                    fnum(b.cost),
                    format!("{fam:?}"),
                    "yes".into(),
                ]);
            }
        }
    }
    t.note("printed = Table 2 verbatim (Row-1 min over unweighted products);");
    t.note("factored = Row-1 min over σσ/NrNs-weighted resident slices (consistent with the row's own conditions);");
    t.note("the factored variant tracks the brute-force family optimum; the printed one can undershoot it (apparent typo in the paper's Row 1).");
    t
}

/// **E4 / Property (5)**: on every brute-force optimum, check
/// `(W_k = T_k ∧ W_bhw = T_bhw) ∨ W_c = N_c`.
pub fn e4_property5() -> Table {
    let mut t = Table::new(
        "E4 — structural Property (5) on brute-force optima",
        &["layer", "P", "M_L", "Wc=Nc", "Wk=Tk&Wbhw=Tbhw", "holds"],
    );
    let mut checked = 0;
    for (name, p) in analytic_layers() {
        for procs in [2usize, 8, 32] {
            for m_l in [32.0, 512.0, 8192.0, 131072.0] {
                let Some(b) = brute_eq4(&p, procs, m_l, InnerLoop::C) else {
                    continue;
                };
                let wc_full = (b.vars.w_c - p.nc as f64).abs() < 1e-9;
                let tw_eq = (b.vars.w_k - b.vars.t_k).abs() < 1e-9
                    && (b.vars.w_bhw - b.vars.t_bhw).abs() < 1e-9;
                let holds = property5_holds(&p, &b.vars);
                assert!(holds, "Property 5 violated at {name} P={procs} M_L={m_l}");
                checked += 1;
                t.row(vec![
                    name.to_string(),
                    procs.to_string(),
                    fnum(m_l),
                    if wc_full { "yes" } else { "no" }.into(),
                    if tw_eq { "yes" } else { "no" }.into(),
                    if holds { "yes" } else { "NO" }.into(),
                ]);
            }
        }
    }
    t.note(format!(
        "{checked} optima on divisor-rich layers checked, all satisfy Property (5)"
    ));

    // Non-dyadic extents: integer violations can occur; certify each as
    // an integrality artifact (no conforming point matches the optimum).
    let awkward = [
        (
            "awkward(30,6,6)",
            Conv2dProblem::new(2, 6, 6, 3, 5, 1, 1, 1, 1),
        ),
        (
            "awkward(21,10,14)",
            Conv2dProblem::new(3, 10, 14, 7, 1, 3, 3, 1, 1),
        ),
    ];
    let mut violations = 0;
    let mut certified = 0;
    for (name, p) in awkward {
        for procs in [2usize, 4, 8] {
            for m_l in [32.0, 256.0, 4096.0] {
                let Some(b) = brute_eq4(&p, procs, m_l, InnerLoop::C) else {
                    continue;
                };
                if !property5_holds(&p, &b.vars) {
                    violations += 1;
                    let cert = match brute_eq4_conforming(&p, procs, m_l, InnerLoop::C) {
                        None => true,
                        Some(c) => c.cost > b.cost * (1.0 + 1e-12),
                    };
                    assert!(
                        cert,
                        "{name}: real Property-5 violation at P={procs} M_L={m_l}"
                    );
                    certified += 1;
                }
            }
        }
    }
    t.note(format!(
        "non-dyadic layers: {violations} integer violations found, {certified}/{violations} \
         certified as integrality artifacts (no conforming integer point attains the optimum; \
         the paper's claim concerns the continuous relaxation, where it always holds)"
    ));
    t
}

/// **E5 / M_L deflation**: tiles sized by the deflated capacity always
/// satisfy the exact footprint `g ≤ M`; `Table1(M_L=M)` lower-bounds
/// `Table1(deflate(M))`.
pub fn e5_ml_deflation() -> Table {
    let mut t = Table::new(
        "E5 — M_L deflation: validity of the K-formula (Sec. 2.1)",
        &[
            "layer",
            "M",
            "M_L",
            "tile(Tk×Tbhw)",
            "exact g",
            "g≤M",
            "LB",
            "achieved",
        ],
    );
    for (name, p) in analytic_layers() {
        for m in [1usize << 10, 1 << 13, 1 << 16, 1 << 20] {
            let m_l = ml_deflate(m as f64, &p);
            let sol = solve_table1(&p, 16, m_l);
            // Round the real tile sizes DOWN to feasible integers the way
            // the planner does, split bhw as (1, th, tw) balanced.
            let tk = largest_divisor_at_most(p.nk, sol.vars.t_k.floor().max(1.0) as usize);
            let side = (sol.vars.t_bhw.max(1.0)).sqrt().floor().max(1.0) as usize;
            let tw = largest_divisor_at_most(p.nw, side.min(p.nw));
            let th = largest_divisor_at_most(
                p.nh,
                ((sol.vars.t_bhw / tw as f64).floor().max(1.0) as usize).min(p.nh),
            );
            let tiling = Tiling::new(1, tk.max(1), 1, th.max(1), tw.max(1));
            let g = eq3_footprint_g(&p, &tiling);
            assert!(
                g <= m as u128,
                "{name} M={m}: deflated tiles violate g ≤ M (g={g})"
            );
            let lb = solve_table1(&p, 16, m as f64).cost;
            let ach = sol.cost;
            assert!(lb <= ach + 1e-9);
            t.row(vec![
                name.to_string(),
                m.to_string(),
                fnum(m_l),
                format!("{}x{}", tk, th * tw),
                inum(g),
                "yes".into(),
                fnum(lb),
                fnum(ach),
            ]);
        }
    }
    t.note("LB = Table1 cost at M_L = M (paper's lower bound); achieved = cost at deflated M_L.");
    t
}

/// **E8 / regime sweep**: fixed layer and `P`, sweep the per-processor
/// memory `M_D`; the planner's chosen grid walks 2D → 2.5D → 3D and
/// the predicted `cost_D` falls monotonically — the paper's central
/// memory/communication trade-off.
pub fn e8_regime_sweep() -> Table {
    let mut t = Table::new(
        "E8 — memory sweep: regime transitions of the planned grid (P = 64)",
        &[
            "layer",
            "M_D",
            "grid(b,k,c,h,w)",
            "Pc",
            "regime",
            "cost_D",
            "gd",
        ],
    );
    let p = Conv2dProblem::square(8, 64, 64, 8, 3);
    let mut prev = f64::INFINITY;
    for shift in [10usize, 11, 12, 13, 14, 16, 18, 20] {
        let mem = 1usize << shift;
        match Planner::new(p, MachineSpec::new(64, mem)).plan() {
            Ok(plan) => {
                assert!(
                    plan.predicted.cost_d <= prev * (1.0 + 1e-9),
                    "cost must not increase with memory"
                );
                prev = plan.predicted.cost_d;
                let g = plan.grid;
                t.row(vec![
                    "mid(8×64×64×8²)".into(),
                    format!("2^{shift}"),
                    format!("{}x{}x{}x{}x{}", g.pb, g.pk, g.pc, g.ph, g.pw),
                    g.pc.to_string(),
                    plan.regime.name().to_string(),
                    fnum(plan.predicted.cost_d),
                    fnum(plan.predicted.footprint_gd),
                ]);
            }
            Err(e) => {
                t.row(vec![
                    "mid(8×64×64×8²)".into(),
                    format!("2^{shift}"),
                    "-".into(),
                    "-".into(),
                    format!("infeasible"),
                    "-".into(),
                    format!("{e}"),
                ]);
            }
        }
    }
    t.note("growing memory lets the planner replicate Out along c (Pc > 1), mirroring 2D→2.5D→3D matmul.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_runs_and_validates() {
        let t = e1_table1();
        assert!(
            t.rows.len() >= 30,
            "expected a dense sweep, got {}",
            t.rows.len()
        );
    }

    #[test]
    fn e4_runs() {
        let t = e4_property5();
        assert!(t.rows.iter().all(|r| r[5] == "yes"));
    }

    #[test]
    fn e5_runs() {
        let t = e5_ml_deflation();
        assert!(t.rows.iter().all(|r| r[5] == "yes"));
    }

    #[test]
    fn e8_runs() {
        let t = e8_regime_sweep();
        assert!(!t.rows.is_empty());
    }
}

//! E13 — fault sweep: the distributed CNN algorithm under injected
//! network faults. Demonstrates the robustness contract: under
//! reliable delivery every link-fault plan yields **bit-identical**
//! results and the exact fault-free algorithmic volume, with the
//! recovery machinery's cost reported in separate overhead columns;
//! an injected crash is detected and the step re-run to the same
//! answer.

use crate::table::{fnum, inum, Table};
use distconv_core::DistConv;
use distconv_cost::{Conv2dProblem, MachineSpec, Planner};
use distconv_simnet::{FaultPlan, MachineConfig};
use std::time::Duration;

/// One pinned seed for the whole sweep: every row is reproducible, and
/// the chaos CI job replays exactly this table.
pub const E13_FAULT_SEED: u64 = 0xC0DE_FA17;

/// **E13 / fault sweep**: one layer, one grid, a ladder of fault plans.
pub fn e13_fault_sweep() -> Table {
    let mut t = Table::new(
        "E13 — fault sweep: DistConv under injected faults (reliable delivery)",
        &[
            "fault plan",
            "volume",
            "retrans",
            "dropped",
            "acks",
            "dups",
            "makespan",
            "recovered",
            "retry elems",
        ],
    );
    let p = Conv2dProblem::square(4, 8, 8, 8, 3);
    let plan = Planner::new(p, MachineSpec::new(8, 1 << 20))
        .plan()
        .unwrap();

    let s = E13_FAULT_SEED;
    let cases: Vec<(&str, FaultPlan)> = vec![
        ("none", FaultPlan::default()),
        ("drop 10%", FaultPlan::reliable(s).with_drops(0.10)),
        ("drop 30%", FaultPlan::reliable(s).with_drops(0.30)),
        ("dup 20%", FaultPlan::reliable(s).with_dups(0.20)),
        (
            "delay 20% ×5α",
            FaultPlan::reliable(s).with_delays(0.20, 5.0),
        ),
        ("reorder 20%", FaultPlan::reliable(s).with_reorders(0.20)),
        (
            "drop+dup+reorder 15%",
            FaultPlan::reliable(s)
                .with_drops(0.15)
                .with_dups(0.15)
                .with_reorders(0.15),
        ),
        (
            "straggler r1 ×4",
            FaultPlan::reliable(s).with_straggler(1, 4.0),
        ),
        ("crash r0 @send 3", FaultPlan::reliable(s).with_crash(0, 3)),
    ];

    let baseline = DistConv::<f64>::new(plan).run_verified(11).unwrap();
    for (name, fp) in cases {
        let cfg = MachineConfig {
            recv_timeout: Duration::from_millis(500),
            faults: fp,
            ..MachineConfig::default()
        };
        let r = DistConv::<f64>::new(plan)
            .with_config(cfg)
            .run_recovering(11)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(r.verified, "{name}: result diverged from the reference");
        assert_eq!(
            r.measured_volume(),
            baseline.measured_volume(),
            "{name}: algorithmic volume must be fault-independent"
        );
        if fp.is_noop() {
            assert!(
                r.stats.fault.is_zero(),
                "{name}: no-op plan must inject nothing"
            );
        }
        if fp.crash.is_some() {
            assert!(r.recovered, "{name}: crash must be detected and retried");
        }
        let f = &r.stats.fault;
        t.row(vec![
            name.to_string(),
            r.measured_volume().to_string(),
            inum(f.retrans_msgs as u128),
            inum(f.dropped_msgs as u128),
            inum(f.ack_msgs as u128),
            inum(f.dup_msgs as u128),
            fnum(r.makespan),
            if r.recovered {
                format!("yes ({}x)", r.retries)
            } else {
                "no".into()
            },
            r.retry_elems.to_string(),
        ]);
    }
    t.note("every row's volume equals the fault-free baseline: retransmit/ack traffic is");
    t.note("accounted separately and never leaks into the Table 1/2 volume counters.");
    t.note(format!(
        "fault seed {s:#x}; all rows deterministic and replayable."
    ));
    t
}

//! Simulated experiments: everything that runs on the simulated
//! machine (E3, E6, E7, E9, E10 on the thread-per-rank backend, E15 on
//! the discrete-event backend).

use crate::table::{fnum, inum, Table};
use distconv_baselines::{
    run_data_parallel, run_filter_parallel, run_spatial_parallel, spatial_feasible,
};
use distconv_conv::gvm::GvmExecutor;
use distconv_conv::kernels::workload;
use distconv_core::{expected_volumes, DistConv};
use distconv_cost::exact::{constant_gap, eq3_cost_int};
use distconv_cost::simplified::InnerLoop;
use distconv_cost::{
    eq10_cost_c, eq10_cost_i, Conv2dProblem, MachineSpec, Partition, Planner, Tiling,
};
use distconv_distmm::{run_25d, run_cannon, run_dns3d, run_summa, MatmulDims};
use distconv_simnet::{Backend, CostParams, MachineConfig, StatsSnapshot};
use distconv_trace::TraceConfig;

/// **E3 / Eq. 3 exactness**: the GVM executor's measured traffic vs the
/// analytic model, across tilings and schedules.
pub fn e3_gvm_exactness() -> Table {
    let mut t = Table::new(
        "E3 — GVM executor: measured global↔local traffic vs Eq. 3",
        &[
            "tiling (Tb,Tk,Tc,Th,Tw)",
            "σ",
            "schedule",
            "measured",
            "Eq.3",
            "relation",
        ],
    );
    let cases = [
        (
            Conv2dProblem::square(2, 4, 4, 4, 3),
            Tiling::new(1, 2, 1, 2, 2),
        ),
        (
            Conv2dProblem::square(2, 4, 4, 4, 3),
            Tiling::new(2, 1, 1, 4, 1),
        ),
        (
            Conv2dProblem::square(2, 8, 8, 4, 3),
            Tiling::new(1, 4, 1, 2, 4),
        ),
        (
            Conv2dProblem::new(2, 4, 4, 4, 4, 3, 3, 2, 2),
            Tiling::new(1, 2, 1, 2, 2),
        ),
    ];
    for (p, tiling) in cases {
        let w = Partition::new(p.nb, p.nk, p.nc, p.nh, p.nw);
        let (input, ker) = workload::<f64>(&p, 17);
        for sched in [InnerLoop::C, InnerLoop::K, InnerLoop::Bhw] {
            let ex = GvmExecutor::new(p, w, tiling, sched, None).unwrap();
            let (_, meas) = ex.execute_all(&input, &ker).unwrap();
            let m = GvmExecutor::aggregate(&meas);
            let model = eq3_cost_int(&p, &w, &tiling).unwrap();
            let relation = match sched {
                InnerLoop::C => {
                    if p.sw == 1 && p.sh == 1 {
                        assert_eq!(m.total_traffic(), model, "σ=1 c-innermost must be exact");
                        "== (exact)"
                    } else {
                        assert!(m.total_traffic() <= model);
                        "≤ (σ>1 halo)"
                    }
                }
                _ => "n/a (other family)",
            };
            t.row(vec![
                format!(
                    "{},{},{},{},{}",
                    tiling.tb, tiling.tk, tiling.tc, tiling.th, tiling.tw
                ),
                format!("{}", p.sw),
                format!("{sched:?}"),
                inum(m.total_traffic()),
                inum(model),
                relation.to_string(),
            ]);
        }
    }
    t.note("Eq.3 models the c-innermost schedule; at stride 1 measured == model to the element.");
    t
}

/// Simulator-scale layers for the measured experiments.
fn sim_layers() -> Vec<(&'static str, Conv2dProblem)> {
    vec![
        ("sim/mid", Conv2dProblem::square(4, 16, 16, 8, 3)),
        ("sim/deep", Conv2dProblem::square(4, 32, 32, 4, 3)),
        (
            "sim/strided",
            Conv2dProblem::new(4, 16, 16, 8, 8, 3, 3, 2, 2),
        ),
    ]
}

/// **E6 / the distributed algorithm**: measured volume == exact schedule
/// model; peak memory vs Eq. 11; the constant-gap theorem.
pub fn e6_distributed() -> Table {
    let mut t = Table::new(
        "E6 — distributed CNN algorithm: measured vs modeled (Eq. 10/11)",
        &[
            "layer",
            "P",
            "grid",
            "measured",
            "expected",
            "eq10·P",
            "peak",
            "gd(Eq11)",
            "gap==|In|+|Ker|/P",
        ],
    );
    for (name, p) in sim_layers() {
        for procs in [4usize, 8, 16] {
            let plan = Planner::new(p, MachineSpec::new(procs, 1 << 20))
                .plan()
                .unwrap();
            let r = DistConv::<f64>::new(plan).run_verified(23).unwrap();
            assert!(r.verified);
            assert_eq!(r.measured_volume() as u128, r.expected.total());
            let gap = plan.predicted.cost_d - plan.predicted.cost_gvm;
            let theorem = (p.size_in_paper() + p.size_ker()) as f64 / procs as f64;
            assert!((gap - theorem).abs() < 1e-6, "constant-gap theorem");
            let g = plan.grid;
            t.row(vec![
                name.into(),
                procs.to_string(),
                format!("{}x{}x{}x{}x{}", g.pb, g.pk, g.pc, g.ph, g.pw),
                r.measured_volume().to_string(),
                inum(r.expected.total()),
                fnum(distconv_core::model::eq10_aggregate(&plan)),
                r.max_peak_mem().to_string(),
                fnum(plan.predicted.footprint_gd),
                "yes".into(),
            ]);
        }
    }
    t.note("measured == expected to the element on every row (binomial-tree model of the realized schedule);");
    t.note("eq10·P is the paper's per-processor model aggregated — an upper bound on realized traffic.");
    t
}

/// **E7 / matmul analogy**: a 1×1 stride-1 convolution *is* the matmul
/// `Out[bhw×k] = In[bhw×c]·Ker[c×k]`; compare the distributed CNN
/// algorithm's measured volume with SUMMA / 2.5D / 3D on matching
/// grids.
pub fn e7_matmul_analogy() -> Table {
    let mut t = Table::new(
        "E7 — 1×1-conv ≡ matmul: distconv vs SUMMA/2.5D/3D measured volumes",
        &["algorithm", "P", "grid", "measured", "verified"],
    );
    // 1×1 conv: bhw = 4·8·8 = 256, c = 32, k = 32.
    let p = Conv2dProblem::new(4, 32, 32, 8, 8, 1, 1, 1, 1);
    let dims = MatmulDims::new(p.nbhw(), p.nk, p.nc);
    let cfg = MachineConfig::default();
    let procs = 16;

    // The paper's algorithm (planner free to choose the grid).
    let plan = Planner::new(p, MachineSpec::new(procs, 1 << 22))
        .plan()
        .unwrap();
    let r = DistConv::<f64>::new(plan).run_verified(31).unwrap();
    let g = plan.grid;
    t.row(vec![
        "distconv (Case chosen by planner)".into(),
        procs.to_string(),
        format!("{}x{}x{}x{}x{}", g.pb, g.pk, g.pc, g.ph, g.pw),
        r.measured_volume().to_string(),
        r.verified.to_string(),
    ]);
    // Forced 2D-family (Pc = 1): the SUMMA analog.
    let plan2d = Planner::new(p, MachineSpec::new(procs, 1 << 22))
        .with_forced_pc(1)
        .plan()
        .unwrap();
    let r2d = DistConv::<f64>::new(plan2d).run_verified(31).unwrap();
    let g = plan2d.grid;
    t.row(vec![
        "distconv (forced Pc=1, 2D analog)".into(),
        procs.to_string(),
        format!("{}x{}x{}x{}x{}", g.pb, g.pk, g.pc, g.ph, g.pw),
        r2d.measured_volume().to_string(),
        r2d.verified.to_string(),
    ]);

    // Forced replication (Pc = 4): the 2.5D/3D analog.
    if let Ok(plan3d) = Planner::new(p, MachineSpec::new(procs, 1 << 22))
        .with_forced_pc(4)
        .plan()
    {
        let r3d = DistConv::<f64>::new(plan3d).run_verified(31).unwrap();
        let g = plan3d.grid;
        t.row(vec![
            "distconv (forced Pc=4, 2.5D/3D analog)".into(),
            procs.to_string(),
            format!("{}x{}x{}x{}x{}", g.pb, g.pk, g.pc, g.ph, g.pw),
            r3d.measured_volume().to_string(),
            r3d.verified.to_string(),
        ]);
    }

    let s = run_summa(dims, 4, 4, cfg);
    t.row(vec![
        "SUMMA-2D".into(),
        "16".into(),
        "4x4".into(),
        s.stats.total_elems().to_string(),
        s.verified.to_string(),
    ]);
    let s25 = run_25d(dims, 2, 4, cfg);
    t.row(vec![
        "2.5D (c=4)".into(),
        "16".into(),
        "4x2x2".into(),
        s25.stats.total_elems().to_string(),
        s25.verified.to_string(),
    ]);
    let s3 = run_dns3d(MatmulDims::new(dims.m, dims.n, dims.k), 2, cfg);
    t.row(vec![
        "3D (2³=8 ranks)".into(),
        "8".into(),
        "2x2x2".into(),
        s3.stats.total_elems().to_string(),
        s3.verified.to_string(),
    ]);
    let sc = run_cannon(dims, 4, cfg);
    t.row(vec![
        "Cannon (shift-based 2D)".into(),
        "16".into(),
        "4x4".into(),
        sc.stats.total_elems().to_string(),
        sc.verified.to_string(),
    ]);
    t.note("same computation, same substrate: the CNN algorithm's volumes sit in the same band as the matmul analogs;");
    t.note("the (Pbhw×Pk) CNN grid plays SUMMA's (rows×cols), Pc plays the replication depth c.");
    t
}

/// **E9 (measured)**: distconv vs the three baselines on
/// simulator-scale layers — recurring volumes per forward step.
pub fn e9_baselines() -> Table {
    let mut t = Table::new(
        "E9 — distconv vs baseline schemes (measured, simulator scale)",
        &[
            "layer",
            "P",
            "scheme",
            "recurring",
            "placement",
            "peak mem",
            "ok",
        ],
    );
    let cfg = MachineConfig::default();
    for (name, p) in sim_layers() {
        {
            let procs = 4usize;
            let plan = Planner::new(p, MachineSpec::new(procs, 1 << 20))
                .plan()
                .unwrap();
            let r = DistConv::<f64>::new(plan).run_verified(41).unwrap();
            t.row(vec![
                name.into(),
                procs.to_string(),
                "distconv".into(),
                r.measured_volume().to_string(),
                fnum(r.plan.predicted.cost_i * procs as f64),
                r.max_peak_mem().to_string(),
                r.verified.to_string(),
            ]);
            let dp = run_data_parallel(p, procs, 41, false, cfg);
            t.row(vec![
                name.into(),
                procs.to_string(),
                dp.kind.name().into(),
                inum(dp.analytic_recurring),
                inum(dp.analytic_placement),
                dp.max_peak_mem.to_string(),
                dp.verified.to_string(),
            ]);
            if spatial_feasible(&p, procs) {
                let sp = run_spatial_parallel(p, procs, 41, cfg);
                t.row(vec![
                    name.into(),
                    procs.to_string(),
                    sp.kind.name().into(),
                    inum(sp.analytic_recurring),
                    inum(sp.analytic_placement),
                    sp.max_peak_mem.to_string(),
                    sp.verified.to_string(),
                ]);
            } else {
                t.row(vec![
                    name.into(),
                    procs.to_string(),
                    "spatial-parallel".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "bands too narrow".into(),
                ]);
            }
            let fp = run_filter_parallel(p, procs, 41, cfg);
            t.row(vec![
                name.into(),
                procs.to_string(),
                fp.kind.name().into(),
                inum(fp.analytic_recurring),
                inum(fp.analytic_placement),
                fp.max_peak_mem.to_string(),
                fp.verified.to_string(),
            ]);
        }
    }
    t.note("distconv 'recurring' = measured broadcast+reduction traffic; baselines' = exact analytic (== their measured totals, pinned in unit tests);");
    t.note("baselines replicate tensors (peak mem) that distconv partitions — the memory/communication trade-off.");
    t
}

/// **E9 (analytic, full scale)**: ResNet-50 / VGG-16 layers at training
/// scale — per-step communication of distconv (Eq. 10) vs data-parallel
/// gradient all-reduce, across `P`.
pub fn e9_baselines_analytic(nb: usize) -> Table {
    let mut t = Table::new(
        format!("E9b — full-scale analytic: per-step volume/processor, batch {nb}"),
        &[
            "layer",
            "P",
            "distconv cost_C",
            "dp allreduce",
            "dp/distconv",
            "winner",
        ],
    );
    let layers = distconv_cost::presets::resnet50(nb)
        .into_iter()
        .chain(distconv_cost::presets::vgg16(nb));
    for l in layers {
        let p = l.problem;
        for procs in [16usize, 64, 256] {
            // Memory: 4 GiB of f32 words per rank.
            let mem = 1usize << 30;
            let Ok(plan) = Planner::new(p, MachineSpec::new(procs, mem)).plan() else {
                continue;
            };
            let dc = plan.predicted.cost_c;
            // Horovod recurring: 2·|Ker|·(P−1)/P per rank per step.
            let dp = 2.0 * p.size_ker() as f64 * (procs as f64 - 1.0) / procs as f64;
            let ratio = dp / dc.max(1.0);
            t.row(vec![
                l.name.into(),
                procs.to_string(),
                fnum(dc),
                fnum(dp),
                format!("{ratio:.2}"),
                if dc < dp { "distconv" } else { "data-parallel" }.into(),
            ]);
        }
    }
    t.note(
        "distconv wins where kernels are large relative to per-rank work (late layers, high P);",
    );
    t.note("data-parallel wins on wide-image early layers where its allreduce is tiny — matching the paper's motivation that no single simple scheme dominates.");
    t
}

/// **E10 / scaling**: strong scaling (fixed problem) and weak scaling
/// (batch grows with `P`) of the distributed algorithm — measured
/// volume and simulated α–β time.
pub fn e10_scaling() -> Table {
    let mut t = Table::new(
        "E10 — strong & weak scaling of the distributed algorithm",
        &["mode", "P", "grid", "measured/rank", "sim time (ms)", "ok"],
    );
    // Strong: fixed layer.
    let p = Conv2dProblem::square(8, 16, 16, 8, 3);
    for procs in [1usize, 2, 4, 8, 16] {
        let plan = Planner::new(p, MachineSpec::new(procs, 1 << 20))
            .plan()
            .unwrap();
        let r = DistConv::<f64>::new(plan).run_verified(51).unwrap();
        let g = plan.grid;
        t.row(vec![
            "strong".into(),
            procs.to_string(),
            format!("{}x{}x{}x{}x{}", g.pb, g.pk, g.pc, g.ph, g.pw),
            fnum(r.measured_volume() as f64 / procs as f64),
            format!("{:.3}", r.sim_time * 1e3),
            r.verified.to_string(),
        ]);
    }
    // Weak: batch scales with P.
    for procs in [1usize, 2, 4, 8] {
        let p = Conv2dProblem::square(2 * procs, 16, 16, 8, 3);
        let plan = Planner::new(p, MachineSpec::new(procs, 1 << 20))
            .plan()
            .unwrap();
        let r = DistConv::<f64>::new(plan).run_verified(53).unwrap();
        let g = plan.grid;
        t.row(vec![
            "weak".into(),
            procs.to_string(),
            format!("{}x{}x{}x{}x{}", g.pb, g.pk, g.pc, g.ph, g.pw),
            fnum(r.measured_volume() as f64 / procs as f64),
            format!("{:.3}", r.sim_time * 1e3),
            r.verified.to_string(),
        ]);
    }
    t.note("volumes are per rank; sim time uses the default α–β parameters (1 µs, 100 Gb/s).");
    t
}

/// Convenience: verify E6's core invariant once for an arbitrary plan —
/// used by integration tests.
pub fn check_volume_invariant(p: Conv2dProblem, procs: usize, mem: usize, seed: u64) -> bool {
    let Ok(plan) = Planner::new(p, MachineSpec::new(procs, mem)).plan() else {
        return false;
    };
    let Ok(r) = DistConv::<f64>::new(plan).run_verified(seed) else {
        return false;
    };
    r.measured_volume() as u128 == expected_volumes(&plan).total()
}

/// **E11 / α–β time**: the volume metric is network-agnostic; time is
/// not. Re-run each scheme under three network profiles and report the
/// **Lamport makespan** (dependency-aware: tree depths and serialized
/// shifts count, unlike a volume-based estimate).
pub fn e11_alpha_beta() -> Table {
    let mut t = Table::new(
        "E11 — α–β makespan: three network profiles (P = 8)",
        &[
            "scheme",
            "msgs",
            "elems",
            "latency-bound",
            "balanced",
            "bandwidth-bound",
        ],
    );
    let p = Conv2dProblem::square(8, 32, 32, 8, 3);
    let procs = 8;
    let profiles = [
        (
            "latency-bound",
            CostParams {
                alpha: 1e-4,
                beta: 1e-10,
            },
        ),
        ("balanced", CostParams::default()),
        (
            "bandwidth-bound",
            CostParams {
                alpha: 1e-7,
                beta: 1e-7,
            },
        ),
    ];

    // Each row: (name, closure running the scheme under a config and
    // returning (stats, makespan)).
    type RunFn = Box<dyn Fn(MachineConfig) -> (StatsSnapshot, f64)>;
    let plan = Planner::new(p, MachineSpec::new(procs, 1 << 22))
        .plan()
        .unwrap();
    let plan2d = Planner::new(p, MachineSpec::new(procs, 1 << 22))
        .with_forced_pc(1)
        .plan()
        .ok();
    let mut schemes: Vec<(String, RunFn)> = vec![(
        "distconv (planner grid)".into(),
        Box::new(move |cfg| {
            let r = DistConv::<f64>::new(plan).with_config(cfg).run(61);
            (r.stats, r.makespan)
        }),
    )];
    if let Some(p2d) = plan2d {
        schemes.push((
            "distconv (forced Pc=1)".into(),
            Box::new(move |cfg| {
                let r = DistConv::<f64>::new(p2d).with_config(cfg).run(61);
                (r.stats, r.makespan)
            }),
        ));
    }
    schemes.push((
        "data-parallel (training)".into(),
        Box::new(move |cfg| {
            let r = run_data_parallel(p, procs, 61, true, cfg);
            (r.stats, r.makespan)
        }),
    ));
    schemes.push((
        "filter-parallel".into(),
        Box::new(move |cfg| {
            let r = run_filter_parallel(p, procs, 61, cfg);
            (r.stats, r.makespan)
        }),
    ));

    for (name, run) in &schemes {
        let mut times = Vec::new();
        let mut stats = None;
        for (_, prof) in &profiles {
            let cfg = MachineConfig {
                cost: *prof,
                ..MachineConfig::default()
            };
            let (s, mk) = run(cfg);
            times.push(mk);
            stats = Some(s);
        }
        let s = stats.unwrap();
        t.row(vec![
            name.clone(),
            s.total_msgs().to_string(),
            s.total_elems().to_string(),
            format!("{:.3} ms", times[0] * 1e3),
            format!("{:.3} ms", times[1] * 1e3),
            format!("{:.3} ms", times[2] * 1e3),
        ]);
    }
    t.note("all rows report the dependency-aware Lamport makespan;");
    t.note("latency-bound networks punish many small tile broadcasts, bandwidth-bound networks punish bulk replication.");
    t
}

/// **E12 / multi-layer networks**: per-layer optimal grids plus the
/// inter-layer redistribution cost the single-layer theory does not
/// model. Exact measured == expected, end-to-end verified.
pub fn e12_network() -> Table {
    use distconv_core::{run_network, NetworkPlan};
    let mut t = Table::new(
        "E12 — multi-layer network: per-layer grids + redistribution tax",
        &[
            "P",
            "layers",
            "fwd volume",
            "redist volume",
            "redist %",
            "exact",
            "verified",
        ],
    );
    let layers = vec![
        Conv2dProblem::new(2, 16, 4, 16, 16, 3, 3, 1, 1),
        Conv2dProblem::new(2, 32, 16, 14, 14, 3, 3, 1, 1),
        Conv2dProblem::new(2, 32, 32, 12, 12, 3, 3, 1, 1),
        Conv2dProblem::new(2, 16, 32, 10, 10, 3, 3, 1, 1),
    ];
    for procs in [1usize, 2, 4, 8] {
        let plan = NetworkPlan::plan(&layers, MachineSpec::new(procs, 1 << 22)).unwrap();
        let r = run_network::<f64>(&plan, 7, MachineConfig::default()).expect("verified");
        let fwd: u128 = r.expected_layers.iter().sum();
        let total = r.expected_total();
        t.row(vec![
            procs.to_string(),
            layers.len().to_string(),
            inum(fwd),
            inum(r.expected_redist),
            if total > 0 {
                format!("{:.1}%", 100.0 * r.expected_redist as f64 / total as f64)
            } else {
                "0%".into()
            },
            (r.measured_total() == total).to_string(),
            r.verified.to_string(),
        ]);
    }
    t.note(
        "redistribution = activations moving between consecutive layers' different optimal grids;",
    );
    t.note("a real cost (≈25% of traffic at P=4 here) that per-layer analysis leaves on the table — future-work territory the reproduction surfaces.");
    t
}

/// **E15 / event-backend scale sweep**: the conv layer at `P` ∈
/// {64, 256, 1024, 4096} on the discrete-event backend — scales the
/// thread-per-rank machine cannot reach — validating at every point
/// that the measured traffic equals the exact schedule model to the
/// element, that per-rank peak memory matches the exact Eq. 11-style
/// model, and that the constant-gap theorem
/// `cost_D − cost = (|In| + |Ker|)/P` holds exactly against
/// measured-validated traffic.
pub fn e15_scale_sweep() -> Table {
    let mut t = Table::new(
        "E15 — event-backend scale sweep: measured vs Eq. 10/11 at P ∈ {64 … 4096}",
        &[
            "P",
            "grid",
            "measured",
            "expected",
            "P·cost_C",
            "P·cost_C(meas)",
            "cost_D",
            "gap",
            "(|In|+|Ker|)/P",
            "peak",
            "peak(model)",
            "verified",
        ],
    );
    // Power-of-two extents so every P in the sweep factors onto the
    // rank grid; small enough that P=4096 stays well inside the CI
    // budget on the event backend. The `k`-heavy shape keeps the
    // planner's optimum at `P_k > 1` and `P_bhw > 1` across the whole
    // sweep, so both broadcast families carry real traffic at every P.
    let p = Conv2dProblem::square(8, 64, 32, 16, 3);
    for procs in [64usize, 256, 1024, 4096] {
        let plan = Planner::new(p, MachineSpec::new(procs, 1 << 20))
            .plan()
            .unwrap();
        let cfg = MachineConfig {
            backend: Backend::Event,
            trace: TraceConfig::off(),
            ..MachineConfig::default()
        };
        let drv = DistConv::<f64>::new(plan).with_config(cfg);
        // Verification replays the full sequential reference per run;
        // do it at the small scales, where it is cheap, and lean on
        // backend equivalence (tests/backend_equivalence.rs) plus the
        // element-exact traffic identity at the large ones.
        let verify = procs <= 256;
        let r = if verify {
            drv.run_verified(23).unwrap()
        } else {
            drv.run(23)
        };
        assert_eq!(r.verified, verify);

        // Measured traffic is element-exact against the schedule model,
        // so the model's In/Ker/Out split is measured-validated.
        let exp = r.expected;
        assert_eq!(r.measured_volume() as u128, exp.total(), "P={procs}");

        // Undo the realized broadcasts' (n−1)/n inter-rank factor to
        // recover the paper's per-processor Eq. 10 cost_C, aggregated:
        // In broadcasts along k fibers (n = P_k), Ker along bhw fibers
        // (n = P_b·P_h·P_w). Exact in integers — in_bcast carries a
        // (P_k − 1) factor per fiber, ker_bcast a (P_bhw − 1) one.
        let g = plan.grid;
        let pbhw = g.pb * g.ph * g.pw;
        assert!(
            g.pk > 1 && pbhw > 1,
            "P={procs}: grid degenerated (pk={}, pbhw={pbhw}); both broadcast \
             families must be exercised for the traffic-derived identity",
            g.pk
        );
        let derived_pcost_c = exp.in_bcast * g.pk as u128 / (g.pk as u128 - 1)
            + exp.ker_bcast * pbhw as u128 / (pbhw as u128 - 1);
        let model_pcost_c = procs as f64 * eq10_cost_c(&p, &plan.w, &plan.t);
        assert_eq!(
            derived_pcost_c as f64, model_pcost_c,
            "P={procs}: measured-derived P·cost_C diverged from Eq. 10"
        );

        // The constant-gap theorem, exactly (f64 arithmetic is exact
        // here: every term is an integer < 2^53 and P is a power of
        // two, so the /P divisions are exact in binary).
        let (gap, theorem) = constant_gap(&p, &plan.w, &plan.t, procs);
        assert_eq!(gap, theorem, "P={procs}: constant-gap theorem");

        // Peak memory: exact per-rank model (halo overlap included).
        let peak_model = (0..procs)
            .map(|id| distconv_core::model::expected_peak_mem(&plan, id))
            .max()
            .unwrap();
        assert_eq!(r.max_peak_mem(), peak_model, "P={procs}: peak memory");

        t.row(vec![
            procs.to_string(),
            format!("{}x{}x{}x{}x{}", g.pb, g.pk, g.pc, g.ph, g.pw),
            r.measured_volume().to_string(),
            inum(exp.total()),
            fnum(model_pcost_c),
            derived_pcost_c.to_string(),
            fnum(
                procs as f64
                    * (eq10_cost_i(&p, &plan.w, procs) + eq10_cost_c(&p, &plan.w, &plan.t)),
            ),
            fnum(gap),
            fnum(theorem),
            r.max_peak_mem().to_string(),
            peak_model.to_string(),
            r.verified.to_string(),
        ]);
    }
    t.note("event backend; measured == expected to the element at every P, peak == exact model on every rank;");
    t.note("P·cost_C(meas) rescales measured broadcast traffic by n/(n−1) per fiber — equal to Eq. 10's aggregate exactly;");
    t.note("gap == (|In|+|Ker|)/P exactly (constant-gap theorem) at every scale.");
    t
}

/// The E17 network zoo: three chains with different reasons for the
/// per-layer greedy grids to disagree across a layer boundary —
/// channel expansion, stride-2 downsampling, and 3×3/1×1 alternation.
pub fn autotune_nets() -> Vec<(&'static str, Vec<Conv2dProblem>)> {
    vec![
        (
            "expand",
            vec![
                Conv2dProblem::new(4, 16, 4, 16, 16, 3, 3, 1, 1),
                Conv2dProblem::new(4, 32, 16, 14, 14, 3, 3, 1, 1),
                Conv2dProblem::new(4, 64, 32, 12, 12, 3, 3, 1, 1),
                Conv2dProblem::new(4, 64, 64, 10, 10, 3, 3, 1, 1),
            ],
        ),
        (
            "downsample",
            vec![
                Conv2dProblem::new(8, 8, 4, 32, 32, 3, 3, 1, 1),
                Conv2dProblem::new(8, 16, 8, 16, 16, 2, 2, 2, 2),
                Conv2dProblem::new(8, 32, 16, 14, 14, 3, 3, 1, 1),
                Conv2dProblem::new(8, 32, 32, 7, 7, 2, 2, 2, 2),
            ],
        ),
        (
            "mixer",
            vec![
                Conv2dProblem::new(2, 32, 8, 8, 8, 3, 3, 1, 1),
                Conv2dProblem::new(2, 64, 32, 8, 8, 1, 1, 1, 1),
                Conv2dProblem::new(2, 32, 64, 6, 6, 3, 3, 1, 1),
                Conv2dProblem::new(2, 16, 32, 6, 6, 1, 1, 1, 1),
            ],
        ),
    ]
}

/// **E17 / whole-network autotuner**: greedy per-layer planning
/// ([`NetworkPlan::plan`]) vs the DP over per-layer candidate grids
/// with exactly-costed inter-layer redistribution
/// ([`NetworkPlan::plan_tuned`]), swept over `P` on three nets.
/// Asserts tuned ≤ greedy at *every* point (the DP contains the greedy
/// path), strictly lower somewhere, and — at the executed scales — that
/// both plans run verified with element-exact measured redistribution
/// (`NetworkReport::conformance`).
pub fn e17_autotune() -> Table {
    use distconv_core::{run_network, NetworkPlan};
    let mut t = Table::new(
        "E17 — whole-network autotuner: DP over candidate grids vs greedy per-layer planning",
        &[
            "net",
            "P",
            "greedy cost",
            "tuned cost",
            "saved",
            "greedy redist",
            "tuned redist",
            "grids changed",
            "exec(exact)",
        ],
    );
    let mut strict = 0usize;
    for (name, layers) in autotune_nets() {
        for procs in [4usize, 16, 64, 256, 1024] {
            let machine = MachineSpec::new(procs, 1 << 22);
            let greedy = NetworkPlan::plan(&layers, machine).unwrap();
            let tuned = NetworkPlan::plan_tuned(&layers, machine).unwrap();
            let (gc, tc) = (greedy.predicted_total_cost(), tuned.predicted_total_cost());
            assert!(
                tc <= gc,
                "{name} P={procs}: tuned {tc} worse than greedy {gc} — the DP lost the greedy path"
            );
            if tc < gc {
                strict += 1;
            }
            let changed = greedy
                .layers
                .iter()
                .zip(&tuned.layers)
                .filter(|(a, b)| a.grid != b.grid)
                .count();
            // Execute both plans at the small scales (event backend):
            // end-to-end verified, and the measured redistribution
            // counter must equal the analytic volume to the element.
            let exec = if procs <= 16 {
                let cfg = MachineConfig {
                    backend: Backend::Event,
                    trace: TraceConfig::off(),
                    ..MachineConfig::default()
                };
                let mut exact = true;
                for plan in [&greedy, &tuned] {
                    let r = run_network::<f64>(plan, 41, cfg).expect("verified");
                    let conf = r.conformance();
                    assert!(
                        conf.pass(),
                        "{name} P={procs}: conformance {:?}",
                        conf.failures()
                    );
                    exact &= r.verified && r.stats.redist.elems as u128 == plan.total_redist();
                }
                exact.to_string()
            } else {
                "-".into()
            };
            t.row(vec![
                name.to_string(),
                procs.to_string(),
                fnum(gc),
                fnum(tc),
                format!("{:.2}%", 100.0 * (gc - tc) / gc),
                inum(greedy.total_redist()),
                inum(tuned.total_redist()),
                changed.to_string(),
                exec,
            ]);
        }
    }
    assert!(
        strict > 0,
        "autotuner never strictly beat greedy on any net/P — candidate sets degenerate"
    );
    t.note("tuned ≤ greedy at every point by construction (the greedy path is in the DP);");
    t.note("savings come from aligning adjacent layers' grids when the reshuffle outweighs the per-layer cost gap;");
    t.note("exec(exact): both plans run end-to-end verified on the event backend with measured redistribution == analytic volume to the element.");
    t
}

//! Experiment drivers, one `eN_*` function per DESIGN.md §4 entry.

pub mod analytic;
pub mod chaos;
pub mod faults;
pub mod simulated;
pub mod trace;

pub use analytic::{e1_table1, e2_table2, e4_property5, e5_ml_deflation, e8_regime_sweep};
pub use chaos::{e16_chaos_sweep, e16_degraded_recovery, E16_CHAOS_SEED};
pub use faults::{e13_fault_sweep, E13_FAULT_SEED};
pub use simulated::{
    autotune_nets, e10_scaling, e11_alpha_beta, e12_network, e15_scale_sweep, e17_autotune,
    e3_gvm_exactness, e6_distributed, e7_matmul_analogy, e9_baselines, e9_baselines_analytic,
};
pub use trace::{e14_sample_trace, e14_trace_conformance, validate_chrome_trace};

//! **E14 / observability**: the cost-model conformance suite and the
//! Chrome trace-event export, driven over the golden shapes.
//!
//! Every row compares a *measured* quantity (the simulator's traffic
//! counters, or the per-rank span trace) against an *analytic*
//! prediction (the per-algorithm closed forms, the exact schedule
//! model, the Eq. 10 aggregate). A communication-volume regression
//! fails the suite with the offending row's name — not a diffed table.

use distconv_core::DistConv;
use distconv_cost::json::JsonValue;
use distconv_cost::{Conv2dProblem, MachineSpec, Planner};
use distconv_simnet::MachineConfig;
use distconv_trace::{ConformanceReport, RunTrace};

/// The conv golden shapes the conformance suite sweeps (a subset of the
/// E6 layers — enough to cover balanced, deep and strided schedules).
fn conformance_layers() -> Vec<(&'static str, Conv2dProblem, Vec<usize>)> {
    vec![
        (
            "sim/mid",
            Conv2dProblem::square(4, 16, 16, 8, 3),
            vec![4, 8, 16],
        ),
        ("sim/deep", Conv2dProblem::square(4, 32, 32, 4, 3), vec![8]),
        (
            "sim/strided",
            Conv2dProblem::new(4, 16, 16, 8, 8, 3, 3, 2, 2),
            vec![8],
        ),
    ]
}

/// Prefix every row of `rep` with `label/` so suite-level reports stay
/// unambiguous when the same check runs on several shapes.
fn prefixed(mut rep: ConformanceReport, label: &str) -> ConformanceReport {
    for row in &mut rep.rows {
        row.name = format!("{label}/{}", row.name);
    }
    rep
}

/// Run the full conformance suite: the distributed CNN algorithm on the
/// golden shapes, all four distmm algorithms, and the three baselines —
/// every measured volume against its analytic prediction, every rank's
/// trace against the machine's counters.
pub fn e14_trace_conformance() -> ConformanceReport {
    let mut rep = ConformanceReport::new();

    for (name, p, proc_list) in conformance_layers() {
        for procs in proc_list {
            let plan = Planner::new(p, MachineSpec::new(procs, 1 << 20))
                .plan()
                .unwrap();
            let r = DistConv::<f64>::new(plan).run_verified(23).unwrap();
            rep.extend(prefixed(r.conformance(), &format!("{name}/P{procs}")));
        }
    }

    let cfg = MachineConfig::default();
    let d = distconv_distmm::MatmulDims::new(30, 20, 25);
    rep.extend(distconv_distmm::run_summa(d, 2, 3, cfg).conformance("summa"));
    let dq = distconv_distmm::MatmulDims::new(7, 11, 13);
    rep.extend(distconv_distmm::run_cannon(dq, 3, cfg).conformance("cannon"));
    let d3 = distconv_distmm::MatmulDims::new(24, 18, 30);
    rep.extend(distconv_distmm::run_dns3d(d3, 2, cfg).conformance("dns3d"));
    let d25 = distconv_distmm::MatmulDims::new(24, 16, 32);
    rep.extend(distconv_distmm::run_25d(d25, 2, 2, cfg).conformance("s25d"));

    let bp = Conv2dProblem::square(8, 4, 4, 8, 3);
    rep.extend(distconv_baselines::run_data_parallel(bp, 4, 3, true, cfg).conformance());
    rep.extend(distconv_baselines::run_spatial_parallel(bp, 4, 7, cfg).conformance());
    rep.extend(distconv_baselines::run_filter_parallel(bp, 4, 13, cfg).conformance());

    rep
}

/// Run the representative conv layer once and return its trace — the
/// sample the exporter, schema validation and metrics table all use.
pub fn e14_sample_trace() -> RunTrace {
    let plan = Planner::new(
        Conv2dProblem::square(4, 16, 16, 8, 3),
        MachineSpec::new(8, 1 << 20),
    )
    .plan()
    .unwrap();
    DistConv::<f64>::new(plan).run_verified(23).unwrap().trace
}

/// Validate an exported Chrome trace against the committed schema
/// (`tests/goldens/trace_schema.json`). Returns the number of events
/// checked; the error names the first offending event and field.
///
/// The schema is a plain JSON document naming the required top-level
/// fields, the required per-event fields, the allowed phases and the
/// allowed event names — enough to catch an exporter regression without
/// an external JSON-Schema engine (the build stays hermetic).
pub fn validate_chrome_trace(trace_json: &str, schema_json: &str) -> Result<usize, String> {
    let schema = JsonValue::parse(schema_json).map_err(|e| format!("schema unparsable: {e}"))?;
    let trace = JsonValue::parse(trace_json).map_err(|e| format!("trace unparsable: {e}"))?;

    let str_list = |key: &str| -> Result<Vec<String>, String> {
        schema
            .get(key)
            .and_then(|v| v.as_array())
            .ok_or_else(|| format!("schema missing list {key:?}"))?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("schema {key:?} holds a non-string"))
            })
            .collect()
    };
    let required_top = str_list("required_top")?;
    let event_required = str_list("event_required")?;
    let phases = str_list("phases")?;
    let names = str_list("names")?;
    let args_required = str_list("args_required")?;

    for key in &required_top {
        if trace.get(key).is_none() {
            return Err(format!("trace missing top-level field {key:?}"));
        }
    }
    let events = trace
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .ok_or("traceEvents is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        for key in &event_required {
            if ev.get(key).is_none() {
                return Err(format!("event {i} missing field {key:?}"));
            }
        }
        let ph = ev.get("ph").and_then(|p| p.as_str()).unwrap_or("");
        if !phases.iter().any(|p| p == ph) {
            return Err(format!("event {i} has unknown phase {ph:?}"));
        }
        let name = ev.get("name").and_then(|n| n.as_str()).unwrap_or("");
        if !names.iter().any(|n| n == name) {
            return Err(format!("event {i} has unknown name {name:?}"));
        }
        // Complete events carry a duration; instants carry a scope.
        let extra = if ph == "X" { "dur" } else { "s" };
        if ev.get(extra).is_none() {
            return Err(format!("event {i} ({name}, ph {ph:?}) missing {extra:?}"));
        }
        let args = ev
            .get("args")
            .ok_or_else(|| format!("event {i} missing args"))?;
        for key in &args_required {
            if args.get(key).is_none() {
                return Err(format!("event {i} args missing {key:?}"));
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The schema text as committed — kept in sync by the CI step that
    /// validates `repro_trace --schema tests/goldens/trace_schema.json`.
    const SCHEMA: &str = include_str!("../../../../tests/goldens/trace_schema.json");

    #[test]
    fn sample_trace_validates_against_committed_schema() {
        let trace = e14_sample_trace();
        assert!(!trace.is_empty(), "tracing is on by default");
        let n = validate_chrome_trace(&trace.to_chrome_json(), SCHEMA).expect("schema valid");
        assert_eq!(n, trace.len());
    }

    #[test]
    fn validator_names_the_broken_field() {
        let bad = r#"{"displayTimeUnit":"ms","traceEvents":[{"name":"compute","cat":"d","ph":"Q","pid":0,"tid":0,"ts":1,"args":{"step":0,"elems":0}}]}"#;
        let err = validate_chrome_trace(bad, SCHEMA).unwrap_err();
        assert!(err.contains("phase"), "{err}");
    }

    #[test]
    fn conformance_suite_passes() {
        let rep = e14_trace_conformance();
        assert!(rep.pass(), "conformance failures:\n{rep}");
        assert!(
            rep.rows.len() > 30,
            "suite unexpectedly small: {}",
            rep.rows.len()
        );
    }
}

//! Wall-clock bench: the dynamic-batching serving layer — raw batch
//! dispatch cost per model, then an end-to-end server run measuring
//! request latency percentiles and closed-loop saturation throughput.
//!
//! The headline derived fields are `serving_p50_ms` / `serving_p95_ms`
//! / `serving_p99_ms` (per-request latency under paced `Nb`-sized
//! waves) and `serving_saturation_rps` (completed requests per second
//! with every tenant queue kept full) — what `bench_compare --validate
//! --require serving` guards on the committed `BENCH_serving.json`.
//!
//! `cargo bench -p distconv-bench --bench bench_serving -- --json
//! [PATH]` writes the `distconv-bench-v1` trajectory (default
//! `BENCH_serving.json`).

use distconv_bench::wallbench::BenchConfig;
use distconv_bench::{autotune_nets, bench_report_json, BenchRecord, Suite};
use distconv_core::{dispatch_batch, NetworkPlan};
use distconv_cost::MachineSpec;
use distconv_serve::{ModelSpec, ServeConfig, Server};
use distconv_simnet::{Backend, MachineConfig};
use distconv_trace::TraceConfig;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The simulated cluster every model plans against: 4 ranks, 2^22
/// words each — the scale where the tuned plans genuinely differ from
/// greedy ones and a batch executes in milliseconds.
const PROCS: usize = 4;
const MEM: usize = 1 << 22;

fn sim_cfg() -> MachineConfig {
    MachineConfig {
        backend: Backend::Event,
        trace: TraceConfig::off(),
        ..MachineConfig::default()
    }
}

/// Raw cost of one verified batch dispatch (plan → distribute →
/// execute → reduce, plus per-sample digesting) for each E17 net.
fn bench_dispatch(records: &mut Vec<BenchRecord>) {
    let mut g = Suite::new("serving_dispatch");
    for (name, layers) in autotune_nets() {
        let machine = MachineSpec::new(PROCS, MEM);
        let plan = NetworkPlan::plan_tuned(&layers, machine).unwrap();
        let nb = layers[0].nb as u64;
        let cfg = sim_cfg();
        g.bench_throughput(format!("dispatch_batch/{name}"), Some(nb), move || {
            let run = dispatch_batch::<f64>(black_box(&plan), 41, cfg).expect("verified");
            black_box(run.digests.len())
        });
    }
    records.extend(g.finish());
}

fn tenants() -> Vec<ModelSpec> {
    autotune_nets()
        .into_iter()
        .map(|(name, layers)| ModelSpec {
            name: name.to_string(),
            layers,
            machine: MachineSpec::new(PROCS, MEM),
        })
        .collect()
}

/// Paced load: one full `Nb` wave at a time against a single-tenant
/// server, drained between waves — the percentiles measure service
/// latency (batch formation + dispatch), not queueing depth.
fn latency_percentiles(derived: &mut Vec<(String, f64)>) {
    let waves = if BenchConfig::from_env().quick { 2 } else { 8 };
    let spec = tenants().remove(0);
    let nb = spec.layers[0].nb;
    let server = Server::start(
        vec![spec],
        ServeConfig {
            latency_budget: Duration::from_millis(25),
            queue_capacity: 64,
            clusters: 1,
            machine: sim_cfg(),
        },
    )
    .expect("plannable");
    for wave in 0..waves {
        for slot in 0..nb {
            server
                .submit(0, 1000 + (wave * nb + slot) as u64)
                .expect("under capacity");
        }
        assert!(server.drain(Duration::from_secs(120)), "wave drain timeout");
    }
    let (report, results, errors) = server.shutdown();
    assert!(errors.is_empty(), "{errors:?}");
    assert_eq!(results.len(), waves * nb);
    let m = &report.models[0];
    println!(
        "\nserving latency (paced, {} waves of Nb={nb}): p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        waves, m.p50_ms, m.p95_ms, m.p99_ms
    );
    derived.push(("serving_p50_ms".into(), m.p50_ms));
    derived.push(("serving_p95_ms".into(), m.p95_ms));
    derived.push(("serving_p99_ms".into(), m.p99_ms));
}

/// Closed-loop saturation: every tenant's queue is filled up front and
/// two clusters drain them flat out — completed requests over the
/// submit→drain wall time is the saturation throughput.
fn saturation_scan(derived: &mut Vec<(String, f64)>) {
    let per_model = if BenchConfig::from_env().quick { 8 } else { 32 };
    let models = tenants();
    let n_models = models.len();
    let server = Server::start(
        models,
        ServeConfig {
            latency_budget: Duration::from_millis(25),
            queue_capacity: per_model.max(64),
            clusters: 2,
            machine: sim_cfg(),
        },
    )
    .expect("plannable");
    let t = Instant::now();
    for i in 0..per_model {
        for model in 0..n_models {
            server
                .submit(model, 5000 + (model * per_model + i) as u64)
                .expect("under capacity");
        }
    }
    assert!(server.drain(Duration::from_secs(600)), "drain timeout");
    let wall_s = t.elapsed().as_secs_f64();
    let (report, _, errors) = server.shutdown();
    assert!(errors.is_empty(), "{errors:?}");
    assert_eq!(report.total_completed(), per_model * n_models);
    assert_eq!(report.total_rejected(), 0);
    let conf = report.conformance();
    assert!(conf.pass(), "{:?}", conf.failures());
    let rps = report.total_completed() as f64 / wall_s;
    println!(
        "serving saturation ({n_models} tenants x {per_model} reqs, 2 clusters): {rps:.1} req/s"
    );
    derived.push(("serving_saturation_rps".into(), rps));
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_serving.json".to_string())
    });

    let mut records = Vec::new();
    let mut derived: Vec<(String, f64)> = Vec::new();
    bench_dispatch(&mut records);
    latency_percentiles(&mut derived);
    saturation_scan(&mut derived);

    if let Some(path) = json_path {
        let derived_refs: Vec<(&str, f64)> =
            derived.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let json = bench_report_json(&records, &derived_refs);
        std::fs::write(&path, json + "\n").expect("write bench json");
        println!("wrote {path}");
    }
}

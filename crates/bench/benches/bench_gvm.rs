//! Wall-clock bench: the global-virtual-memory tiled executor (E3) —
//! how tile-size choice changes wall time, alongside the data-movement
//! model it validates. Optimal tiles (from Table 1) vs deliberately bad
//! tiles is the ablation.

use distconv_bench::Suite;
use distconv_conv::gvm::GvmExecutor;
use distconv_conv::kernels::workload;
use distconv_cost::simplified::InnerLoop;
use distconv_cost::{Conv2dProblem, Partition, Tiling};
use std::hint::black_box;

fn bench_gvm_tilings() {
    let p = Conv2dProblem::square(2, 16, 16, 8, 3);
    let w = Partition::new(p.nb, p.nk, p.nc, p.nh, p.nw);
    let (input, ker) = workload::<f32>(&p, 3);
    let mut g = Suite::new("gvm_tilings");
    for (name, t) in [
        ("unit_tiles", Tiling::new(1, 1, 1, 1, 1)),
        ("balanced_tiles", Tiling::new(1, 4, 1, 4, 4)),
        ("full_tiles", Tiling::new(2, 16, 16, 8, 8)),
    ] {
        let ex = GvmExecutor::new(p, w, t, InnerLoop::C, None).unwrap();
        g.bench(name, || {
            ex.execute_all(black_box(&input), black_box(&ker)).unwrap()
        });
    }
    g.finish();
}

fn bench_gvm_schedules() {
    let p = Conv2dProblem::square(2, 16, 16, 8, 3);
    let w = Partition::new(p.nb, p.nk, p.nc, p.nh, p.nw);
    let t = Tiling::new(1, 4, 2, 4, 4);
    let (input, ker) = workload::<f32>(&p, 5);
    let mut g = Suite::new("gvm_schedules");
    for sched in [InnerLoop::C, InnerLoop::K, InnerLoop::Bhw] {
        let ex = GvmExecutor::new(p, w, t, sched, None).unwrap();
        g.bench(format!("{sched:?}_innermost"), || {
            ex.execute_all(black_box(&input), black_box(&ker)).unwrap()
        });
    }
    g.finish();
}

fn main() {
    bench_gvm_tilings();
    bench_gvm_schedules();
}

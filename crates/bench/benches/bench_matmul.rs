//! Criterion bench: the distributed matmul analogs (E7) — SUMMA-2D vs
//! 2.5D vs 3D wall time at matched processor counts, plus the local
//! GEMM kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use distconv_distmm::{matmul_blocked, matmul_blocked_par, run_25d, run_dns3d, run_summa, MatmulDims};
use distconv_simnet::MachineConfig;
use distconv_tensor::Matrix;
use std::hint::black_box;

fn bench_local_gemm(c: &mut Criterion) {
    let n = 192;
    let a = Matrix::<f32>::random(n, n, 1);
    let b = Matrix::<f32>::random(n, n, 2);
    let mut g = c.benchmark_group("local_gemm_192");
    g.bench_function("blocked", |bch| {
        bch.iter(|| {
            let mut cm = Matrix::<f32>::zeros(n, n);
            matmul_blocked(&mut cm, black_box(&a), black_box(&b));
            cm
        })
    });
    g.bench_function("blocked_par", |bch| {
        bch.iter(|| {
            let mut cm = Matrix::<f32>::zeros(n, n);
            matmul_blocked_par(&mut cm, black_box(&a), black_box(&b));
            cm
        })
    });
    g.finish();
}

fn bench_distributed_matmul(c: &mut Criterion) {
    let d = MatmulDims::square(128);
    let cfg = MachineConfig::default();
    let mut g = c.benchmark_group("dist_matmul_p8_n128");
    g.sample_size(10);
    g.bench_function("summa_2x4", |b| b.iter(|| black_box(run_summa(d, 2, 4, cfg))));
    g.bench_function("s25d_2x2_c2", |b| b.iter(|| black_box(run_25d(d, 2, 2, cfg))));
    g.bench_function("dns3d_2", |b| b.iter(|| black_box(run_dns3d(d, 2, cfg))));
    g.finish();
}

criterion_group!(benches, bench_local_gemm, bench_distributed_matmul);
criterion_main!(benches);

//! Wall-clock bench: the distributed matmul analogs (E7) — SUMMA-2D vs
//! 2.5D vs 3D wall time at matched processor counts, plus the local
//! GEMM kernels.

use distconv_bench::Suite;
use distconv_distmm::{
    matmul_blocked, matmul_blocked_par, run_25d, run_dns3d, run_summa, MatmulDims,
};
use distconv_simnet::MachineConfig;
use distconv_tensor::Matrix;
use std::hint::black_box;

fn bench_local_gemm() {
    let n = 192;
    let a = Matrix::<f32>::random(n, n, 1);
    let b = Matrix::<f32>::random(n, n, 2);
    let mut g = Suite::new("local_gemm_192");
    g.bench("blocked", || {
        let mut cm = Matrix::<f32>::zeros(n, n);
        matmul_blocked(&mut cm, black_box(&a), black_box(&b));
        cm
    });
    g.bench("blocked_par", || {
        let mut cm = Matrix::<f32>::zeros(n, n);
        matmul_blocked_par(&mut cm, black_box(&a), black_box(&b));
        cm
    });
    g.finish();
}

fn bench_distributed_matmul() {
    let d = MatmulDims::square(128);
    let cfg = MachineConfig::default();
    let mut g = Suite::new("dist_matmul_p8_n128");
    g.bench("summa_2x4", || black_box(run_summa(d, 2, 4, cfg)));
    g.bench("s25d_2x2_c2", || black_box(run_25d(d, 2, 2, cfg)));
    g.bench("dns3d_2", || black_box(run_dns3d(d, 2, cfg)));
    g.finish();
}

fn main() {
    bench_local_gemm();
    bench_distributed_matmul();
}

//! Criterion bench: local convolution kernels — direct vs im2col vs
//! rayon-parallel direct, across representative layer shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distconv_conv::kernels::{conv2d_direct, conv2d_direct_par, conv2d_im2col, workload};
use distconv_cost::Conv2dProblem;
use std::hint::black_box;

fn bench_conv_kernels(c: &mut Criterion) {
    let layers = [
        ("early_16x16", Conv2dProblem::square(2, 8, 8, 16, 3)),
        ("mid_8x8", Conv2dProblem::square(2, 16, 16, 8, 3)),
        ("pointwise", Conv2dProblem::new(2, 32, 32, 8, 8, 1, 1, 1, 1)),
    ];
    for (name, p) in layers {
        let (input, ker) = workload::<f32>(&p, 1);
        let mut g = c.benchmark_group(format!("conv_{name}"));
        g.bench_function("direct", |b| {
            b.iter(|| black_box(conv2d_direct(&p, &input, &ker)))
        });
        g.bench_function("direct_par", |b| {
            b.iter(|| black_box(conv2d_direct_par(&p, &input, &ker)))
        });
        g.bench_function("im2col", |b| {
            b.iter(|| black_box(conv2d_im2col(&p, &input, &ker)))
        });
        g.finish();
    }
}

fn bench_strided(c: &mut Criterion) {
    let p = Conv2dProblem::new(2, 16, 16, 8, 8, 3, 3, 2, 2);
    let (input, ker) = workload::<f32>(&p, 2);
    let mut g = c.benchmark_group("conv_strided");
    g.bench_with_input(BenchmarkId::new("direct", "s2"), &p, |b, p| {
        b.iter(|| black_box(conv2d_direct(p, &input, &ker)))
    });
    g.bench_with_input(BenchmarkId::new("im2col", "s2"), &p, |b, p| {
        b.iter(|| black_box(conv2d_im2col(p, &input, &ker)))
    });
    g.finish();
}

criterion_group!(benches, bench_conv_kernels, bench_strided);
criterion_main!(benches);

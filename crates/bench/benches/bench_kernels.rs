//! Wall-clock bench: local convolution kernels — direct vs im2col vs
//! thread-parallel direct, across representative layer shapes.

use distconv_bench::Suite;
use distconv_conv::kernels::{conv2d_direct, conv2d_direct_par, conv2d_im2col, workload};
use distconv_cost::Conv2dProblem;
use std::hint::black_box;

fn bench_conv_kernels() {
    let layers = [
        ("early_16x16", Conv2dProblem::square(2, 8, 8, 16, 3)),
        ("mid_8x8", Conv2dProblem::square(2, 16, 16, 8, 3)),
        ("pointwise", Conv2dProblem::new(2, 32, 32, 8, 8, 1, 1, 1, 1)),
    ];
    for (name, p) in layers {
        let (input, ker) = workload::<f32>(&p, 1);
        let mut g = Suite::new(format!("conv_{name}"));
        g.bench("direct", || black_box(conv2d_direct(&p, &input, &ker)));
        g.bench("direct_par", || {
            black_box(conv2d_direct_par(&p, &input, &ker))
        });
        g.bench("im2col", || black_box(conv2d_im2col(&p, &input, &ker)));
        g.finish();
    }
}

fn bench_strided() {
    let p = Conv2dProblem::new(2, 16, 16, 8, 8, 3, 3, 2, 2);
    let (input, ker) = workload::<f32>(&p, 2);
    let mut g = Suite::new("conv_strided");
    g.bench("direct/s2", || black_box(conv2d_direct(&p, &input, &ker)));
    g.bench("im2col/s2", || black_box(conv2d_im2col(&p, &input, &ker)));
    g.finish();
}

fn main() {
    bench_conv_kernels();
    bench_strided();
}

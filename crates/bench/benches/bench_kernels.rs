//! Wall-clock bench: local convolution kernels — the paper-literal
//! reference loops vs the packed im2col-GEMM fast path, the
//! runtime-dispatched SIMD micro-kernel, and the Winograd `F(2×2,3×3)`
//! bilinear kernel, with a GFLOP/s column and a machine-readable
//! trajectory.
//!
//! **Record policy:** the legacy labels (`conv_tile/reference`,
//! `conv_tile_fast/packed`, `conv2d_fast/whole`, the sweep's
//! `direct`/`direct_par`/`im2col`/`fast`) are pinned to the **scalar**
//! micro-kernel so their GFLOP/s trajectory stays comparable across
//! commits and hosts; the new `*_simd` and `winograd` labels run on
//! the active (env + CPUID resolved) path. A startup note names the
//! selected ISA so a scalar-host (or `DISTCONV_SIMD=off`) run is never
//! mistaken for a vectorized one.
//!
//! `cargo bench -p distconv-bench --bench bench_kernels -- --json [PATH]`
//! additionally writes the measurements (plus the headline
//! `speedup_fast_over_reference` / `speedup_simd_over_scalar` /
//! `speedup_winograd_over_fast` on the representative ResNet-style
//! layer) to `PATH` (default `BENCH_kernels.json`) in the
//! `distconv-bench-v1` schema — see `scripts/bench_compare.sh` for
//! diffing two such files across commits.

use distconv_bench::{bench_report_json, BenchRecord, Suite};
use distconv_conv::kernels::{
    conv2d_direct, conv2d_direct_par, conv2d_im2col, conv_tile, out_shape, workload,
};
use distconv_conv::{conv2d_fast, conv_tile_fast, conv_tile_winograd, ConvScratch};
use distconv_cost::Conv2dProblem;
use distconv_tensor::simd::{self, SimdPath};
use distconv_tensor::Tensor4;
use std::hint::black_box;

/// Multiply-adds of one forward pass ×2 (mul + add).
fn conv_flops(p: &Conv2dProblem) -> u64 {
    2 * (p.nb * p.nk * p.nw * p.nh * p.nc * p.nr * p.ns) as u64
}

/// The acceptance shape for the fast path: a ResNet-style mid layer,
/// Nb=4, Nc=64, Nk=64, 56×56, 3×3, stride 1 (~0.92 GFLOP per pass).
fn representative() -> Conv2dProblem {
    Conv2dProblem::new(4, 64, 64, 56, 56, 3, 3, 1, 1)
}

/// Pin the scalar micro-kernel, run `f`, restore env+CPUID dispatch.
fn pinned_scalar<R>(f: impl FnOnce() -> R) -> R {
    simd::force(Some(SimdPath::Scalar));
    let r = f();
    simd::force(None);
    r
}

/// Headline suite on the representative layer (single tile covering
/// the problem, f32): reference and scalar-pinned fast baselines, then
/// the SIMD-dispatched fast path and the Winograd kernel.
fn bench_conv_kernels(records: &mut Vec<BenchRecord>) -> Vec<(&'static str, f64)> {
    let p = representative();
    let flops = conv_flops(&p);
    let (input, ker) = workload::<f32>(&p, 1);
    let mut g = Suite::new("conv_kernels_rep_56x56");
    pinned_scalar(|| {
        let mut out = Tensor4::<f32>::zeros(out_shape(&p));
        g.bench_flops("conv_tile/reference", flops, || {
            conv_tile(&p, &mut out, &input, &ker);
            black_box(out.as_slice()[0])
        });
        let mut out_fast = Tensor4::<f32>::zeros(out_shape(&p));
        let mut scratch = ConvScratch::new();
        g.bench_flops("conv_tile_fast/packed", flops, || {
            conv_tile_fast(&p, &mut out_fast, &input, &ker, &mut scratch);
            black_box(out_fast.as_slice()[0])
        });
        g.bench_flops("conv2d_fast/whole", flops, || {
            black_box(conv2d_fast(&p, &input, &ker))
        });
    });
    {
        let mut out_simd = Tensor4::<f32>::zeros(out_shape(&p));
        let mut scratch = ConvScratch::new();
        g.bench_flops("conv_tile_fast_simd", flops, || {
            conv_tile_fast(&p, &mut out_simd, &input, &ker, &mut scratch);
            black_box(out_simd.as_slice()[0])
        });
        let mut out_wino = Tensor4::<f32>::zeros(out_shape(&p));
        let mut scratch = ConvScratch::new();
        // Same effective-FLOP accounting as every other record: the
        // GFLOP/s column reports *direct-conv-equivalent* throughput,
        // so the 2.25× multiply reduction shows up as speed.
        g.bench_flops("conv_tile_winograd", flops, || {
            conv_tile_winograd(&p, &mut out_wino, &input, &ker, &mut scratch);
            black_box(out_wino.as_slice()[0])
        });
    }
    let recs = g.finish();
    let median = |label: &str| -> Option<f64> {
        recs.iter().find(|r| r.label == label).map(|r| r.median_ns)
    };
    let mut derived = Vec::new();
    let ratio = |num: Option<f64>, den: Option<f64>| match (num, den) {
        (Some(a), Some(b)) if b > 0.0 => Some(a / b),
        _ => None,
    };
    if let Some(s) = ratio(
        median("conv_tile/reference"),
        median("conv_tile_fast/packed"),
    ) {
        derived.push(("speedup_fast_over_reference", s));
    }
    if let Some(s) = ratio(
        median("conv_tile_fast/packed"),
        median("conv_tile_fast_simd"),
    ) {
        derived.push(("speedup_simd_over_scalar", s));
    }
    if let Some(s) = ratio(median("conv_tile_fast_simd"), median("conv_tile_winograd")) {
        derived.push(("speedup_winograd_over_fast", s));
    }
    records.extend(recs);
    derived
}

/// Smaller layer shapes: the four scalar-pinned local kernels side by
/// side, plus the SIMD fast path and (on 3×3 stride-1 shapes) Winograd.
fn bench_layer_sweep(records: &mut Vec<BenchRecord>) {
    let layers = [
        ("early_16x16", Conv2dProblem::square(2, 8, 8, 16, 3)),
        ("mid_8x8", Conv2dProblem::square(2, 16, 16, 8, 3)),
        ("pointwise", Conv2dProblem::new(2, 32, 32, 8, 8, 1, 1, 1, 1)),
    ];
    for (name, p) in layers {
        let flops = conv_flops(&p);
        let (input, ker) = workload::<f32>(&p, 1);
        let mut g = Suite::new(format!("conv_{name}"));
        pinned_scalar(|| {
            g.bench_flops("direct", flops, || {
                black_box(conv2d_direct(&p, &input, &ker))
            });
            g.bench_flops("direct_par", flops, || {
                black_box(conv2d_direct_par(&p, &input, &ker))
            });
            g.bench_flops("im2col", flops, || {
                black_box(conv2d_im2col(&p, &input, &ker))
            });
            g.bench_flops("fast", flops, || black_box(conv2d_fast(&p, &input, &ker)));
        });
        g.bench_flops("fast_simd", flops, || {
            black_box(conv2d_fast(&p, &input, &ker))
        });
        if distconv_conv::winograd::winograd_applicable(&p) {
            g.bench_flops("winograd", flops, || {
                black_box(distconv_conv::conv2d_winograd(&p, &input, &ker))
            });
        }
        records.extend(g.finish());
    }
}

/// Strided layers exercise the gather (σ_h > 1) and implicit (σ_h = 1)
/// column paths (Winograd does not apply; `fast_simd` still does).
fn bench_strided(records: &mut Vec<BenchRecord>) {
    let layers = [
        ("s2x2", Conv2dProblem::new(2, 16, 16, 8, 8, 3, 3, 2, 2)),
        ("s2x1", Conv2dProblem::new(2, 16, 16, 8, 8, 3, 3, 2, 1)),
    ];
    for (name, p) in layers {
        let flops = conv_flops(&p);
        let (input, ker) = workload::<f32>(&p, 2);
        let mut g = Suite::new(format!("conv_strided_{name}"));
        pinned_scalar(|| {
            g.bench_flops("direct", flops, || {
                black_box(conv2d_direct(&p, &input, &ker))
            });
            g.bench_flops("fast", flops, || black_box(conv2d_fast(&p, &input, &ker)));
        });
        g.bench_flops("fast_simd", flops, || {
            black_box(conv2d_fast(&p, &input, &ker))
        });
        records.extend(g.finish());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_kernels.json".to_string())
    });

    // One-line ISA note: which micro-kernel path the unpinned records
    // (fast_simd / winograd) actually ran on.
    println!(
        "micro-kernel ISA path: {} ({}={}; host supports {})",
        simd::active().name(),
        simd::SIMD_ENV,
        std::env::var(simd::SIMD_ENV).unwrap_or_else(|_| "unset".into()),
        simd::detect().name(),
    );

    let mut records = Vec::new();
    let derived = bench_conv_kernels(&mut records);
    bench_layer_sweep(&mut records);
    bench_strided(&mut records);

    for (k, v) in &derived {
        println!("{k}: {v:.2}x");
    }
    if let Some(path) = json_path {
        let json = bench_report_json(&records, &derived);
        std::fs::write(&path, json + "\n").expect("write bench json");
        println!("wrote {path}");
    }
}

//! Wall-clock bench: the full distributed CNN algorithm (E6/E8/E9) —
//! end-to-end wall time of plan + distribute + execute + reduce, and
//! the regime ablation (planner's grid vs forced 2D grid).

use distconv_baselines::run_data_parallel;
use distconv_bench::Suite;
use distconv_core::DistConv;
use distconv_cost::{Conv2dProblem, MachineSpec, Planner};
use distconv_simnet::MachineConfig;
use std::hint::black_box;

fn layer() -> Conv2dProblem {
    Conv2dProblem::square(4, 16, 16, 8, 3)
}

fn bench_distconv() {
    let mut g = Suite::new("distconv_end_to_end");
    for procs in [4usize, 8, 16] {
        let plan = Planner::new(layer(), MachineSpec::new(procs, 1 << 20))
            .plan()
            .unwrap();
        g.bench(format!("ranks/{procs}"), move || {
            black_box(DistConv::<f32>::new(plan).run(7))
        });
    }
    g.finish();
}

fn bench_regime_ablation() {
    // Same layer and P, optimizer grid vs forced-Pc=1 grid: the cost of
    // ignoring the paper's Case-2 option.
    let p = Conv2dProblem::square(4, 8, 32, 4, 3);
    let mut g = Suite::new("regime_ablation");
    let free = Planner::new(p, MachineSpec::new(16, 1 << 22))
        .plan()
        .unwrap();
    let forced = Planner::new(p, MachineSpec::new(16, 1 << 22))
        .with_forced_pc(1)
        .plan()
        .unwrap();
    g.bench("planner_choice", move || {
        black_box(DistConv::<f32>::new(free).run(9))
    });
    g.bench("forced_pc1", move || {
        black_box(DistConv::<f32>::new(forced).run(9))
    });
    g.finish();
}

fn bench_vs_data_parallel() {
    let p = layer();
    let mut g = Suite::new("vs_data_parallel");
    let plan = Planner::new(p, MachineSpec::new(4, 1 << 20))
        .plan()
        .unwrap();
    g.bench("distconv_p4", move || {
        black_box(DistConv::<f32>::new(plan).run(11))
    });
    g.bench("data_parallel_p4", move || {
        black_box(run_data_parallel(p, 4, 11, true, MachineConfig::default()))
    });
    g.finish();
}

fn main() {
    bench_distconv();
    bench_regime_ablation();
    bench_vs_data_parallel();
}

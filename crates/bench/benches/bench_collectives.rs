//! Criterion bench: simulator collectives — the substrate's overhead
//! per collective, across rank counts and payloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use distconv_simnet::{Communicator, Machine, MachineConfig};
use std::hint::black_box;

fn bench_bcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("bcast");
    for procs in [4usize, 8, 16] {
        let len = 64 * 1024usize;
        g.throughput(Throughput::Elements((len * (procs - 1)) as u64));
        g.bench_with_input(BenchmarkId::new("ranks", procs), &procs, |b, &procs| {
            b.iter(|| {
                Machine::run::<f32, _, _>(procs, MachineConfig::default(), |rank| {
                    let comm = Communicator::world(rank);
                    let mut buf = vec![1.0f32; len];
                    comm.bcast(0, &mut buf);
                    black_box(buf[0])
                })
            })
        });
    }
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce");
    for len in [1024usize, 64 * 1024] {
        g.throughput(Throughput::Elements(len as u64));
        g.bench_with_input(BenchmarkId::new("len", len), &len, |b, &len| {
            b.iter(|| {
                Machine::run::<f32, _, _>(8, MachineConfig::default(), |rank| {
                    let comm = Communicator::world(rank);
                    let mut buf = vec![rank.id() as f32; len];
                    comm.allreduce(&mut buf);
                    black_box(buf[0])
                })
            })
        });
    }
    g.finish();
}

fn bench_machine_spinup(c: &mut Criterion) {
    // Thread spawn + teardown cost: the fixed overhead every simulated
    // experiment pays.
    let mut g = c.benchmark_group("machine_spinup");
    for procs in [4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::new("ranks", procs), &procs, |b, &procs| {
            b.iter(|| Machine::run::<f32, _, _>(procs, MachineConfig::default(), |rank| rank.id()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bcast, bench_allreduce, bench_machine_spinup);
criterion_main!(benches);

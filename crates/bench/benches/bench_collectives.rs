//! Broadcast-schedule comparison: linear point-to-point vs binomial
//! tree vs segmented ring vs the paper's rotating schedule, under the
//! α–β model on the discrete-event backend — plus the substrate's
//! wall-clock overhead per collective.
//!
//! Two kinds of numbers come out of this bench:
//!
//! * **wall records** (host-dependent): how much real time the
//!   simulator substrate spends running each schedule — overhead, not
//!   a claim about the algorithms;
//! * **derived virtual makespans** (deterministic): the α–β Lamport
//!   makespan of each schedule on the event backend, plus the root's
//!   message count — the per-rank evidence for why the paper's
//!   rotating schedule wins (it splits the payload across rotating
//!   roots so no single rank serializes `n−1` full-payload sends).
//!
//! `cargo bench -p distconv-bench --bench bench_collectives -- --json
//! [PATH]` writes everything to `PATH` (default
//! `BENCH_collectives.json`) in the `distconv-bench-v1` schema; see
//! `scripts/bench_compare.sh` for diffing across commits.

use distconv_bench::{bench_report_json, BenchRecord, Suite};
use distconv_simnet::{Backend, BcastAlgo, Communicator, Machine, MachineConfig};
use distconv_trace::TraceConfig;
use std::hint::black_box;

/// Rank count for the schedule comparison (power of two keeps the
/// binomial tree depth exactly log₂ n).
const RANKS: usize = 64;
/// Broadcast payload (elements). Large enough that bandwidth dominates
/// latency even for a 1/n panel (β·LEN/n > α) — the regime the paper's
/// schedule targets; below it, rotating's n× message count makes it
/// *lose* to a single tree broadcast.
const LEN: usize = 1 << 19;

fn event_cfg() -> MachineConfig {
    MachineConfig {
        backend: Backend::Event,
        trace: TraceConfig::off(),
        ..MachineConfig::default()
    }
}

/// One root-0 broadcast of `LEN` elements with `algo`; returns the
/// deterministic virtual makespan and the root's outbound messages.
fn bcast_makespan(algo: BcastAlgo) -> (f64, u64) {
    let rep = Machine::run::<f32, _, _>(RANKS, event_cfg(), move |rank| {
        let comm = Communicator::world(rank);
        let mut buf = vec![1.0f32; LEN];
        comm.bcast_algo(0, &mut buf, algo);
        black_box(buf[0])
    });
    (rep.makespan, rep.stats.per_rank_msgs[0])
}

/// The paper's rotating schedule, as the conv executor uses it along
/// fibers: the payload lives as `n` per-rank panels and every round a
/// different root broadcasts its panel, so the same `(n−1)·LEN` total
/// volume flows but the per-round serialization is `(n−1)·(LEN/n)`
/// elements and the `n` roots' sends overlap on disjoint links.
fn rotating_makespan() -> (f64, u64) {
    let rep = Machine::run::<f32, _, _>(RANKS, event_cfg(), |rank| {
        let comm = Communicator::world(rank);
        let panel = LEN / RANKS;
        let mut acc = 0.0f32;
        for root in 0..RANKS {
            let mut buf = if comm.me() == root {
                vec![root as f32; panel]
            } else {
                Vec::new()
            };
            comm.bcast_algo(root, &mut buf, BcastAlgo::Linear);
            acc += buf[0];
        }
        black_box(acc)
    });
    let max_msgs = rep.stats.per_rank_msgs.iter().copied().max().unwrap_or(0);
    (rep.makespan, max_msgs)
}

/// Wall-clock cost of running each schedule on the substrate (thread
/// backend, default config — the overhead every experiment pays).
fn bench_bcast_schedules(records: &mut Vec<BenchRecord>) {
    let mut g = Suite::new("bcast_schedules_wall");
    for (name, algo) in [
        ("linear", BcastAlgo::Linear),
        ("binomial", BcastAlgo::Binomial),
        ("ring", BcastAlgo::Ring),
    ] {
        let len = 64 * 1024usize;
        g.bench_throughput(name, Some((len * 7) as u64), move || {
            Machine::run::<f32, _, _>(8, MachineConfig::default(), move |rank| {
                let comm = Communicator::world(rank);
                let mut buf = vec![1.0f32; len];
                comm.bcast_algo(0, &mut buf, algo);
                black_box(buf[0])
            })
        });
    }
    records.extend(g.finish());
}

fn bench_allreduce(records: &mut Vec<BenchRecord>) {
    let mut g = Suite::new("allreduce");
    for len in [1024usize, 64 * 1024] {
        g.bench_throughput(format!("len/{len}"), Some(len as u64), || {
            Machine::run::<f32, _, _>(8, MachineConfig::default(), |rank| {
                let comm = Communicator::world(rank);
                let mut buf = vec![rank.id() as f32; len];
                comm.allreduce(&mut buf);
                black_box(buf[0])
            })
        });
    }
    records.extend(g.finish());
}

fn bench_machine_spinup(records: &mut Vec<BenchRecord>) {
    // Thread spawn + teardown cost: the fixed overhead every simulated
    // experiment pays, on both backends (the event backend adds the
    // scheduler handoffs).
    let mut g = Suite::new("machine_spinup");
    for procs in [4usize, 16, 64] {
        g.bench(format!("threads/ranks/{procs}"), move || {
            Machine::run::<f32, _, _>(procs, MachineConfig::default(), |rank| rank.id())
        });
        g.bench(format!("event/ranks/{procs}"), move || {
            Machine::run::<f32, _, _>(procs, event_cfg(), |rank| rank.id())
        });
    }
    records.extend(g.finish());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_collectives.json".to_string())
    });

    let mut records = Vec::new();
    bench_bcast_schedules(&mut records);
    bench_allreduce(&mut records);
    bench_machine_spinup(&mut records);

    // The deterministic comparison: same (n−1)·LEN delivered volume on
    // every row; only the schedule changes.
    let (linear, linear_root_msgs) = bcast_makespan(BcastAlgo::Linear);
    let (binomial, binomial_root_msgs) = bcast_makespan(BcastAlgo::Binomial);
    let (ring, ring_root_msgs) = bcast_makespan(BcastAlgo::Ring);
    let (rotating, rotating_max_msgs) = rotating_makespan();

    println!("\nvirtual α–β makespan, {RANKS} ranks, {LEN}-element payload:");
    println!("  linear    {linear:.6e} s  (root sends {linear_root_msgs} full payloads serially)");
    println!("  binomial  {binomial:.6e} s  (root sends {binomial_root_msgs}; depth ⌈log₂ n⌉)");
    println!("  ring      {ring:.6e} s  (root sends {ring_root_msgs} segments down the chain)");
    println!("  rotating  {rotating:.6e} s  (paper's schedule; busiest rank sends {rotating_max_msgs} panel-sized messages)");

    if let Some(path) = json_path {
        let derived: Vec<(&str, f64)> = vec![
            ("virtual_makespan_linear_s", linear),
            ("virtual_makespan_binomial_s", binomial),
            ("virtual_makespan_ring_s", ring),
            ("virtual_makespan_rotating_s", rotating),
            ("root_msgs_linear", linear_root_msgs as f64),
            ("root_msgs_binomial", binomial_root_msgs as f64),
            ("root_msgs_ring", ring_root_msgs as f64),
            ("max_rank_msgs_rotating", rotating_max_msgs as f64),
        ];
        let json = bench_report_json(&records, &derived);
        std::fs::write(&path, json + "\n").expect("write bench json");
        println!("wrote {path}");
    }
}

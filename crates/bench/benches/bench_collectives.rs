//! Wall-clock bench: simulator collectives — the substrate's overhead
//! per collective, across rank counts and payloads.

use distconv_bench::Suite;
use distconv_simnet::{Communicator, Machine, MachineConfig};
use std::hint::black_box;

fn bench_bcast() {
    let mut g = Suite::new("bcast");
    for procs in [4usize, 8, 16] {
        let len = 64 * 1024usize;
        g.bench_throughput(
            format!("ranks/{procs}"),
            Some((len * (procs - 1)) as u64),
            || {
                Machine::run::<f32, _, _>(procs, MachineConfig::default(), |rank| {
                    let comm = Communicator::world(rank);
                    let mut buf = vec![1.0f32; len];
                    comm.bcast(0, &mut buf);
                    black_box(buf[0])
                })
            },
        );
    }
    g.finish();
}

fn bench_allreduce() {
    let mut g = Suite::new("allreduce");
    for len in [1024usize, 64 * 1024] {
        g.bench_throughput(format!("len/{len}"), Some(len as u64), || {
            Machine::run::<f32, _, _>(8, MachineConfig::default(), |rank| {
                let comm = Communicator::world(rank);
                let mut buf = vec![rank.id() as f32; len];
                comm.allreduce(&mut buf);
                black_box(buf[0])
            })
        });
    }
    g.finish();
}

fn bench_machine_spinup() {
    // Thread spawn + teardown cost: the fixed overhead every simulated
    // experiment pays.
    let mut g = Suite::new("machine_spinup");
    for procs in [4usize, 16, 64] {
        g.bench(format!("ranks/{procs}"), || {
            Machine::run::<f32, _, _>(procs, MachineConfig::default(), |rank| rank.id())
        });
    }
    g.finish();
}

fn main() {
    bench_bcast();
    bench_allreduce();
    bench_machine_spinup();
}

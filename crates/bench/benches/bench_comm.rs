//! Wall-clock bench: communication/computation overlap — the blocking
//! step loops vs the double-buffered pipelines, for the simulator
//! collectives, all four distributed matmul algorithms, and the CNN
//! executor.
//!
//! The distmm headline runs the representative layer's im2col GEMM
//! (Nb=4, Nc=64, Nk=64, 56×56, 3×3 ⇒ m=12544, n=64, k=576) under both
//! comm modes and additionally reports the per-rank comm-wait vs
//! compute breakdown from the machine's `TimingSnapshot`, so the
//! derived fields show *where* the overlap saves time, not just that
//! the wall clock moved.
//!
//! `cargo bench -p distconv-bench --bench bench_comm -- --json [PATH]`
//! additionally writes the measurements (plus the headline
//! `speedup_overlapped_over_blocking_cannon_rep`) to `PATH` (default
//! `BENCH_comm.json`) in the `distconv-bench-v1` schema — see
//! `scripts/bench_compare.sh` for diffing two such files.

use distconv_bench::{bench_report_json, BenchRecord, Suite};
use distconv_core::DistConv;
use distconv_cost::{Conv2dProblem, MachineSpec, Planner};
use distconv_distmm::{
    cannon_rank_body_mode, dns3d_rank_body_mode, s25d_rank_body_mode, summa_rank_body_mode,
    MatmulDims,
};
use distconv_par::CommMode;
use distconv_simnet::{
    CartGrid, Communicator, LinkDelay, Machine, MachineConfig, Rank, TimingSnapshot,
};
use distconv_tensor::Matrix;
use distconv_trace::TraceConfig;
use std::hint::black_box;
use std::time::Duration;

/// The emulated network for the distmm suites: 200 µs latency,
/// 15 ns/element (~0.27 GB/s for f32) — slow enough that the wire is a
/// visible fraction of a step, the regime where overlap matters. The
/// in-process default (no delay) makes the wire a memcpy competing with
/// the kernels for host memory bandwidth, where overlap cannot win by
/// construction; see `LinkDelay`.
fn bench_link() -> LinkDelay {
    LinkDelay::new(Duration::from_micros(200), 15.0)
}

/// The representative layer's im2col GEMM: Nb=4, Nc=64, Nk=64, 56×56,
/// 3×3 stride 1 ⇒ `C[12544×64] = A[12544×576] · B[576×64]`.
fn rep_gemm() -> MatmulDims {
    MatmulDims::new(4 * 56 * 56, 64, 64 * 3 * 3)
}

/// Multiply-adds ×2 for one distributed matmul.
fn mm_flops(d: &MatmulDims) -> u64 {
    2 * (d.m * d.n * d.k) as u64
}

/// Blocking vs nonblocking collective starts and the owned vs borrowed
/// point-to-point exchange — the substrate primitives the pipelines
/// are built from.
fn bench_collective_starts(records: &mut Vec<BenchRecord>) {
    let mut g = Suite::new("comm_primitives");
    let len = 64 * 1024usize;
    for procs in [4usize, 8] {
        let moved = (len * (procs - 1)) as u64;
        g.bench_throughput(format!("bcast/ranks{procs}"), Some(moved), || {
            Machine::run::<f32, _, _>(procs, MachineConfig::default(), |rank| {
                let comm = Communicator::world(rank);
                let mut buf = vec![1.0f32; len];
                comm.bcast(0, &mut buf);
                black_box(buf[0])
            })
        });
        g.bench_throughput(format!("ibcast/ranks{procs}"), Some(moved), || {
            Machine::run::<f32, _, _>(procs, MachineConfig::default(), |rank| {
                let comm = Communicator::world(rank);
                let payload = if rank.id() == 0 {
                    vec![1.0f32; len]
                } else {
                    Vec::new()
                };
                let buf = comm.ibcast(0, payload).wait();
                black_box(buf[0])
            })
        });
    }
    for (label, owned) in [("sendrecv/borrowed", false), ("sendrecv_vec/owned", true)] {
        g.bench_throughput(label, Some(2 * len as u64), move || {
            Machine::run::<f32, _, _>(2, MachineConfig::default(), move |rank| {
                let grid = CartGrid::new(vec![2]);
                let world: Vec<usize> = (0..2).collect();
                let comm = grid.sub_comm(rank, rank.id(), &world, &[0]);
                let me = rank.id();
                let v = vec![me as f32; len];
                let got = if owned {
                    comm.sendrecv_vec(1 - me, 1 - me, v)
                } else {
                    comm.sendrecv(1 - me, 1 - me, &v)
                };
                black_box(got[0])
            })
        });
    }
    records.extend(g.finish());
}

/// Per-rank average comm-wait and compute milliseconds of one run.
fn per_rank_ms(t: &TimingSnapshot, p: usize) -> (f64, f64) {
    (
        t.comm_wait_ns as f64 / p as f64 / 1e6,
        t.compute_ns as f64 / p as f64 / 1e6,
    )
}

/// One distmm algorithm under both comm modes: wall time per mode in
/// the suite, plus the comm-wait/compute breakdown of a single
/// instrumented run per mode as derived fields.
fn bench_distmm_alg<F>(
    alg: &str,
    p: usize,
    d: &MatmulDims,
    records: &mut Vec<BenchRecord>,
    derived: &mut Vec<(String, f64)>,
    body: F,
) -> Option<f64>
where
    F: Fn(&Rank<f32>, CommMode) -> Matrix<f32> + Send + Sync + Copy,
{
    let flops = mm_flops(d);
    let cfg = MachineConfig {
        link: bench_link(),
        ..MachineConfig::default()
    };
    let mut g = Suite::new(format!("distmm_{alg}_rep"));
    let mut busy = [0.0f64; 2];
    for (m, mode) in [CommMode::Blocking, CommMode::Overlapped]
        .into_iter()
        .enumerate()
    {
        g.bench_flops(mode.name(), flops, move || {
            let report = Machine::run::<f32, _, _>(p, cfg, move |rank| body(rank, mode));
            black_box(report.results.len())
        });
        let report = Machine::run::<f32, _, _>(p, cfg, move |rank| body(rank, mode));
        let (wait_ms, comp_ms) = per_rank_ms(&report.timing, p);
        busy[m] = wait_ms + comp_ms;
        derived.push((format!("{alg}_{}_comm_wait_ms", mode.name()), wait_ms));
        derived.push((format!("{alg}_{}_compute_ms", mode.name()), comp_ms));
    }
    // The acceptance ratio: blocking comm-wait + compute over the
    // overlapped per-rank busy time (> 1 means the pipeline beats the
    // serialized sum).
    if busy[1] > 0.0 {
        derived.push((format!("{alg}_busy_speedup"), busy[0] / busy[1]));
    }
    let recs = g.finish();
    let median = |label: &str| -> Option<f64> {
        recs.iter().find(|r| r.label == label).map(|r| r.median_ns)
    };
    let speedup = match (
        median(CommMode::Blocking.name()),
        median(CommMode::Overlapped.name()),
    ) {
        (Some(b), Some(o)) if o > 0.0 => Some(b / o),
        _ => None,
    };
    records.extend(recs);
    speedup
}

/// The CNN executor on a mid-size layer, blocking vs overlapped halo
/// and filter exchange (wall time; the executor aggregates the same
/// timing counters internally).
fn bench_gvm_executor(records: &mut Vec<BenchRecord>) {
    let layer = Conv2dProblem::square(4, 16, 16, 16, 3);
    let plan = Planner::new(layer, MachineSpec::new(4, 1 << 22))
        .plan()
        .expect("plan rep layer");
    let cfg = MachineConfig {
        link: bench_link(),
        ..MachineConfig::default()
    };
    let mut g = Suite::new("gvm_executor_comm");
    for mode in [CommMode::Blocking, CommMode::Overlapped] {
        g.bench(mode.name(), move || {
            let (report, _) = DistConv::<f32>::new(plan)
                .with_config(cfg)
                .with_comm_mode(mode)
                .run_with_outputs(7)
                .expect("executor run");
            black_box(report.stats.total_msgs())
        });
    }
    records.extend(g.finish());
}

/// Tracing overhead on the representative-layer GEMM: the default-on
/// ring tracing vs `TraceConfig::off()`, same algorithm, same machine.
/// The acceptance budget (DESIGN.md §9) is < 5 % wall-clock; the
/// measured percentage is committed as the
/// `trace_overhead_pct_cannon_rep` derived field.
fn bench_trace_overhead(records: &mut Vec<BenchRecord>, derived: &mut Vec<(String, f64)>) {
    let d = rep_gemm();
    let flops = mm_flops(&d);
    let mut g = Suite::new("trace_overhead_rep");
    for (label, trace) in [
        ("traced", TraceConfig::default()),
        ("untraced", TraceConfig::off()),
    ] {
        let cfg = MachineConfig {
            trace,
            ..MachineConfig::default()
        };
        g.bench_flops(label, flops, move || {
            let report = Machine::run::<f32, _, _>(4, cfg, move |rank| {
                cannon_rank_body_mode(rank, &d, 2, CommMode::Overlapped)
            });
            black_box(report.results.len())
        });
    }
    let recs = g.finish();
    let median = |label: &str| -> Option<f64> {
        recs.iter().find(|r| r.label == label).map(|r| r.median_ns)
    };
    if let (Some(traced), Some(untraced)) = (median("traced"), median("untraced")) {
        if untraced > 0.0 {
            let pct = (traced / untraced - 1.0) * 100.0;
            println!("\ntracing overhead (Cannon 2x2, rep GEMM): {pct:.2}%");
            derived.push(("trace_overhead_pct_cannon_rep".into(), pct));
        }
    }
    records.extend(recs);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_comm.json".to_string())
    });

    let mut records = Vec::new();
    let mut derived: Vec<(String, f64)> = Vec::new();
    bench_collective_starts(&mut records);

    let d = rep_gemm();
    let cannon_speedup = bench_distmm_alg(
        "cannon",
        4,
        &d,
        &mut records,
        &mut derived,
        move |rank, mode| cannon_rank_body_mode(rank, &d, 2, mode),
    );
    bench_distmm_alg(
        "summa",
        4,
        &d,
        &mut records,
        &mut derived,
        move |rank, mode| summa_rank_body_mode(rank, &d, 2, 2, mode),
    );
    bench_distmm_alg(
        "s25d",
        8,
        &d,
        &mut records,
        &mut derived,
        move |rank, mode| s25d_rank_body_mode(rank, &d, 2, 2, mode),
    );
    bench_distmm_alg(
        "dns3d",
        8,
        &d,
        &mut records,
        &mut derived,
        move |rank, mode| dns3d_rank_body_mode(rank, &d, 2, mode),
    );
    bench_gvm_executor(&mut records);
    bench_trace_overhead(&mut records, &mut derived);

    if let Some(s) = cannon_speedup {
        println!("\nspeedup overlapped over blocking (Cannon 2x2, rep GEMM): {s:.2}x");
        derived.push(("speedup_overlapped_over_blocking_cannon_rep".into(), s));
    }
    if let Some(path) = json_path {
        let derived_refs: Vec<(&str, f64)> =
            derived.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let json = bench_report_json(&records, &derived_refs);
        std::fs::write(&path, json + "\n").expect("write bench json");
        println!("wrote {path}");
    }
}

//! Wall-clock bench: the analytical machinery (E1/E2 ablation) —
//! closed-form solve vs brute-force integer optimization, and the full
//! planner. Regenerates the cost side of Tables 1–2; the point is the
//! *speed gap* between the paper's closed form (O(1)) and the
//! exhaustive search it replaces.

use distconv_bench::Suite;
use distconv_cost::brute::{brute_eq3, brute_eq4};
use distconv_cost::closed_form::{solve_table1, solve_table2};
use distconv_cost::simplified::InnerLoop;
use distconv_cost::{Conv2dProblem, MachineSpec, Planner};
use std::hint::black_box;

fn layer() -> Conv2dProblem {
    Conv2dProblem::square(4, 32, 32, 8, 3)
}

fn bench_closed_forms() {
    let p = layer();
    let mut g = Suite::new("table_solvers");
    g.bench("table1_closed_form", || {
        solve_table1(black_box(&p), black_box(64), black_box(4096.0))
    });
    g.bench("table2_closed_form", || {
        solve_table2(black_box(&p), black_box(64), black_box(4096.0))
    });
    g.bench("table1_brute_force_eq4", || {
        brute_eq4(
            black_box(&p),
            black_box(64),
            black_box(4096.0),
            InnerLoop::C,
        )
    });
    g.finish();
}

fn bench_exact_brute() {
    // Small problem: the 5-D exhaustive search is exponential.
    let p = Conv2dProblem::square(2, 4, 4, 4, 3);
    let mut g = Suite::new("eq3_brute_force");
    g.bench("small", || {
        brute_eq3(black_box(&p), black_box(4), black_box(256))
    });
    g.finish();
}

fn bench_planner() {
    let p = layer();
    let mut g = Suite::new("planner");
    for procs in [16usize, 64, 256] {
        g.bench(format!("plan/{procs}"), || {
            Planner::new(black_box(p), MachineSpec::new(procs, 1 << 20))
                .plan()
                .unwrap()
        });
    }
    g.finish();
}

fn main() {
    bench_closed_forms();
    bench_exact_brute();
    bench_planner();
}

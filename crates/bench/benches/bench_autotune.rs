//! Wall-clock bench: the whole-network autotuner — greedy per-layer
//! planning vs the candidate-grid DP with exactly-costed inter-layer
//! redistribution, plus executed forward passes under both plans.
//!
//! The headline derived field, `speedup_tuned_over_greedy`, is the
//! ratio of summed predicted network costs (greedy / tuned) over the
//! E17 net zoo at the sweep scales — ≥ 1.0 by construction (the DP
//! contains the greedy path), and what `bench_compare --validate`
//! guards on the committed `BENCH_autotune.json`.
//!
//! `cargo bench -p distconv-bench --bench bench_autotune -- --json
//! [PATH]` writes the `distconv-bench-v1` trajectory (default
//! `BENCH_autotune.json`).

use distconv_bench::{autotune_nets, bench_report_json, BenchRecord, Suite};
use distconv_core::{run_network, NetworkPlan};
use distconv_cost::MachineSpec;
use distconv_simnet::{Backend, MachineConfig};
use distconv_trace::TraceConfig;
use std::hint::black_box;

/// Planning cost: the greedy per-layer pass vs the DP (candidate
/// enumeration + O(P) redistribution costing per transition) at a
/// mid-size P.
fn bench_planning(records: &mut Vec<BenchRecord>) {
    let mut g = Suite::new("autotune_planning");
    for (name, layers) in autotune_nets() {
        let machine = MachineSpec::new(256, 1 << 22);
        let l = layers.clone();
        g.bench(format!("plan_greedy/{name}"), move || {
            NetworkPlan::plan(black_box(&l), machine).unwrap()
        });
        let l = layers.clone();
        g.bench(format!("plan_tuned/{name}"), move || {
            NetworkPlan::plan_tuned(black_box(&l), machine).unwrap()
        });
    }
    records.extend(g.finish());
}

/// Executed forward passes under both plans on the event backend, at a
/// P where the tuned plan genuinely differs from the greedy one.
fn bench_execution(records: &mut Vec<BenchRecord>) {
    let mut g = Suite::new("autotune_exec");
    let (name, layers) = &autotune_nets()[0]; // expand: tuned differs at P=4
    let machine = MachineSpec::new(4, 1 << 22);
    let cfg = MachineConfig {
        backend: Backend::Event,
        trace: TraceConfig::off(),
        ..MachineConfig::default()
    };
    for (label, plan) in [
        ("run_greedy", NetworkPlan::plan(layers, machine).unwrap()),
        (
            "run_tuned",
            NetworkPlan::plan_tuned(layers, machine).unwrap(),
        ),
    ] {
        let moved = plan
            .layers
            .iter()
            .map(|l| distconv_core::expected_volumes(l).total())
            .sum::<u128>()
            + plan.total_redist();
        g.bench_throughput(format!("{label}/{name}"), Some(moved as u64), move || {
            let r = run_network::<f32>(black_box(&plan), 41, cfg).expect("verified");
            black_box(r.stats.total_msgs())
        });
    }
    records.extend(g.finish());
}

/// Deterministic headline: summed predicted network cost, greedy over
/// tuned, across the E17 zoo and sweep scales.
fn predicted_speedup(derived: &mut Vec<(String, f64)>) {
    let (mut greedy_sum, mut tuned_sum) = (0.0f64, 0.0f64);
    for (name, layers) in autotune_nets() {
        for procs in [4usize, 16, 64, 256, 1024] {
            let machine = MachineSpec::new(procs, 1 << 22);
            let g = NetworkPlan::plan(&layers, machine).unwrap();
            let t = NetworkPlan::plan_tuned(&layers, machine).unwrap();
            greedy_sum += g.predicted_total_cost();
            tuned_sum += t.predicted_total_cost();
            if procs == 64 {
                derived.push((
                    format!("redist_saved_frac_{name}_p64"),
                    1.0 - t.total_redist() as f64 / g.total_redist().max(1) as f64,
                ));
            }
        }
    }
    let speedup = greedy_sum / tuned_sum;
    println!("\npredicted network cost, greedy over tuned (zoo aggregate): {speedup:.4}x");
    derived.push(("speedup_tuned_over_greedy".into(), speedup));
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_autotune.json".to_string())
    });

    let mut records = Vec::new();
    let mut derived: Vec<(String, f64)> = Vec::new();
    bench_planning(&mut records);
    bench_execution(&mut records);
    predicted_speedup(&mut derived);

    if let Some(path) = json_path {
        let derived_refs: Vec<(&str, f64)> =
            derived.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let json = bench_report_json(&records, &derived_refs);
        std::fs::write(&path, json + "\n").expect("write bench json");
        println!("wrote {path}");
    }
}

//! # distconv-par
//!
//! The workspace's zero-dependency substrate, introduced when the repo
//! went hermetic (no external crates, `cargo build --offline` is the
//! supported path — see DESIGN.md §"Hermeticity policy"). Three small
//! modules replace what used to come from crates.io:
//!
//! * [`pool`] — a std-`thread` scoped worker pool with
//!   [`pool::par_chunks_mut`] / [`pool::par_iter_indexed`], replacing
//!   the two `rayon::prelude` uses (conv kernels, local GEMM).
//! * [`rng`] — a [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//!   PRNG, replacing `rand` for workload generation and case sampling.
//! * [`proptest_mini`] — a seeded property-testing harness with
//!   failure-seed replay via `DISTCONV_PROPTEST_SEED`, replacing
//!   `proptest` for the four property suites.
//! * [`kernel`] — the [`kernel::LocalKernel`] runtime policy selecting
//!   between the paper-literal reference compute kernels and the packed
//!   GEMM fast path (`DISTCONV_LOCAL_KERNEL` to override).
//! * [`comm`] — the [`comm::CommMode`] runtime policy selecting between
//!   blocking and overlapped (double-buffered) communication schedules
//!   (`DISTCONV_COMM` to override).
//! * [`budget`] — the shared thread-budget arbiter: while a simulated
//!   machine's `P` rank threads run, each rank's pool gets
//!   `max(1, cores/P)` workers instead of all cores.
//!
//! The crate deliberately has **no dependencies** (not even intra-
//! workspace ones) so every other crate — including dev-dependency
//! cycles from test suites — can use it freely.

#![warn(missing_docs)]

pub mod budget;
pub mod comm;
pub mod kernel;
pub mod pool;
pub mod proptest_mini;
pub mod rng;

pub use comm::CommMode;
pub use kernel::LocalKernel;
pub use pool::{budgeted_threads, num_threads, par_chunks_mut, par_iter_indexed, Pool};
pub use proptest_mini::{check, Config, Gen};
pub use rng::SplitMix64;

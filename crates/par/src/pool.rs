//! A std-`thread` scoped worker pool: the in-tree replacement for the
//! two `rayon::prelude` parallel loops the workspace used to contain.
//!
//! Design notes:
//!
//! * Workers are spawned inside [`std::thread::scope`], so closures may
//!   borrow from the caller's stack (the whole point: the conv kernel
//!   parallelizes over `&mut` output planes) and worker panics are
//!   re-raised on the caller when the scope joins — the same panic
//!   propagation contract rayon gave us.
//! * Scheduling is *static and deterministic*: chunk `i` is always
//!   processed by worker `i / per_worker`, so runs are reproducible and
//!   the output is bitwise-identical across thread counts (each chunk
//!   is an independent disjoint write, accumulated in a fixed order).
//!   Both call sites distribute uniform work, so dynamic stealing would
//!   buy nothing and cost determinism.
//! * Nested use is safe by construction: a scope spawned from inside a
//!   worker is just another scope; there is no global executor to
//!   deadlock against.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-count override, read once per call (cheap: one env probe).
/// `DISTCONV_THREADS=1` forces sequential execution — handy for
/// debugging and for bitwise-determinism checks in CI. An unparseable
/// or zero value is a hard error, never a silent fallback.
pub const THREADS_ENV: &str = "DISTCONV_THREADS";

/// Parse an explicit `DISTCONV_THREADS` value: a positive integer.
/// `Err` carries the full diagnostic (offending value and what is
/// accepted) — `0` and non-numeric values used to be silently ignored.
pub fn parse_threads(v: &str) -> Result<usize, String> {
    match v.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "invalid {THREADS_ENV} value \"0\": the worker count must be a positive \
             integer (unset the variable to use the budgeted default)"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "invalid {THREADS_ENV} value {v:?}: expected a positive integer \
             (unset the variable to use the budgeted default)"
        )),
    }
}

/// Number of workers a parallel call will use: `DISTCONV_THREADS` if
/// set (an exact per-pool pin that bypasses the budget arbiter —
/// panics on a zero or non-numeric value), else the machine's available
/// parallelism divided by the number of rank threads currently
/// registered with [`crate::budget::enter_ranks`] — so a `P`-rank
/// simulated machine and its per-rank kernel pools share the cores
/// instead of multiplying them (1 if parallelism cannot be determined).
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        return parse_threads(&v).unwrap_or_else(|e| panic!("{e}"));
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    budgeted_threads(cores, crate::budget::active_ranks())
}

/// Per-pool worker count under the shared budget: `max(1, cores /
/// active_ranks)`.
///
/// Public so higher layers can *size* work against the arbiter without
/// registering ranks — the serving layer uses it to decide how many
/// simnet clusters the machine can sustain before multi-tenant runs
/// start time-slicing a single core. Pure arithmetic: the authoritative
/// runtime path is still [`num_threads`].
pub fn budgeted_threads(cores: usize, active_ranks: usize) -> usize {
    (cores / active_ranks.max(1)).max(1)
}

/// A sized worker pool. [`Pool::new`] pins the worker count;
/// [`Pool::default`] follows [`num_threads`]. The pool owns no threads
/// between calls — each parallel call runs inside its own
/// [`std::thread::scope`], which is what makes borrowing and nesting
/// sound without `unsafe`.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool {
            threads: num_threads(),
        }
    }
}

impl Pool {
    /// A pool that will use exactly `threads` workers (`threads ≥ 1`).
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "pool needs at least one worker");
        Pool { threads }
    }

    /// This pool's worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Split `data` into `chunk`-sized pieces and run
    /// `f(chunk_index, chunk)` on each, in parallel. The final chunk
    /// may be shorter. Equivalent to rayon's
    /// `data.par_chunks_mut(chunk).enumerate().for_each(...)`.
    ///
    /// Chunks are assigned to workers in contiguous runs, so for any
    /// fixed input the work assignment is deterministic. If a worker
    /// panics, the panic is re-raised here after all workers stop.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let n_chunks = data.len().div_ceil(chunk);
        if n_chunks <= 1 || self.threads == 1 {
            for (i, c) in data.chunks_mut(chunk).enumerate() {
                f(i, c);
            }
            return;
        }
        let workers = self.threads.min(n_chunks);
        let per_worker = n_chunks.div_ceil(workers);
        let mut chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk).enumerate().collect();
        let f = &f;
        std::thread::scope(|s| {
            for group in chunks.chunks_mut(per_worker) {
                s.spawn(move || {
                    for (i, c) in group.iter_mut() {
                        f(*i, c);
                    }
                });
            }
        });
    }

    /// Run `f(i)` for every `i in 0..n`, in parallel, with dynamic
    /// (atomic-counter) scheduling — right for irregular per-index
    /// work. `f` must tolerate any execution order.
    pub fn par_iter_indexed<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n <= 1 || self.threads == 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        let (next, f) = (&next, &f);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    f(i);
                });
            }
        });
    }
}

/// [`Pool::par_chunks_mut`] on a default-sized pool.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    Pool::default().par_chunks_mut(data, chunk, f)
}

/// [`Pool::par_iter_indexed`] on a default-sized pool.
pub fn par_iter_indexed<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    Pool::default().par_iter_indexed(n, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads("16"), Ok(16));
        assert_eq!(parse_threads(" 4 "), Ok(4), "whitespace trimmed");
    }

    #[test]
    fn parse_threads_rejects_zero_and_garbage() {
        // Both used to be silently ignored in favor of the budget.
        let zero = parse_threads("0").expect_err("0 workers is meaningless");
        assert!(zero.contains("DISTCONV_THREADS"), "names the knob: {zero}");
        assert!(zero.contains("positive integer"), "says what fits: {zero}");
        let junk = parse_threads("four").expect_err("non-numeric");
        assert!(junk.contains("four"), "names the offender: {junk}");
        assert!(parse_threads("").is_err());
        assert!(parse_threads("-2").is_err());
        assert!(parse_threads("2.5").is_err());
    }

    #[test]
    fn chunks_cover_every_element_exactly_once() {
        let mut data = vec![0u64; 1003]; // deliberately not a multiple of chunk
        Pool::new(4).par_chunks_mut(&mut data, 64, |i, c| {
            for (j, v) in c.iter_mut().enumerate() {
                *v += (i * 64 + j) as u64 + 1;
            }
        });
        for (k, &v) in data.iter().enumerate() {
            assert_eq!(v, k as u64 + 1, "element {k} touched wrong number of times");
        }
    }

    #[test]
    fn chunk_indices_are_global_and_complete() {
        let mut data = vec![0u8; 130];
        let seen = Mutex::new(Vec::new());
        Pool::new(3).par_chunks_mut(&mut data, 32, |i, c| {
            seen.lock().unwrap().push((i, c.len()));
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 32), (1, 32), (2, 32), (3, 32), (4, 2)]);
    }

    #[test]
    fn distribution_uses_multiple_workers() {
        // With 4 workers and 8 equal chunks, at least 2 distinct threads
        // must participate (each worker gets a contiguous run of 2).
        let mut data = vec![0u8; 8];
        let ids = Mutex::new(std::collections::HashSet::new());
        Pool::new(4).par_chunks_mut(&mut data, 1, |_, _| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(ids.into_inner().unwrap().len() >= 2);
    }

    #[test]
    fn par_iter_indexed_visits_each_index_once() {
        let n = 500;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        Pool::new(8).par_iter_indexed(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            let mut data = vec![0u8; 16];
            Pool::new(4).par_chunks_mut(&mut data, 2, |i, _| {
                if i == 3 {
                    panic!("deliberate worker panic");
                }
            });
        });
        assert!(result.is_err(), "caller must observe the worker panic");
    }

    #[test]
    fn nested_parallel_calls_are_safe() {
        let outer = 4;
        let inner = 100;
        let total = AtomicUsize::new(0);
        Pool::new(2).par_iter_indexed(outer, |_| {
            Pool::new(2).par_iter_indexed(inner, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), outer * inner);
    }

    #[test]
    fn single_thread_pool_is_sequential_and_ordered() {
        let mut data = vec![0usize; 10];
        let order = Mutex::new(Vec::new());
        Pool::new(1).par_chunks_mut(&mut data, 3, |i, _| order.lock().unwrap().push(i));
        assert_eq!(order.into_inner().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn result_independent_of_thread_count() {
        let run = |threads: usize| {
            let mut data = vec![0.0f64; 257];
            Pool::new(threads).par_chunks_mut(&mut data, 16, |i, c| {
                for (j, v) in c.iter_mut().enumerate() {
                    *v = (i * 31 + j) as f64 * 0.5;
                }
            });
            data
        };
        let a = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(a, run(threads), "threads={threads}");
        }
    }

    #[test]
    fn budgeted_threads_is_public_and_monotone() {
        // The serving layer sizes cluster fan-out with this hook: more
        // registered ranks must never yield *more* threads per pool,
        // and the floor is always one worker.
        for cores in [1usize, 3, 8, 64] {
            let mut prev = usize::MAX;
            for active in 1..=2 * cores {
                let t = budgeted_threads(cores, active);
                assert!(t >= 1, "cores={cores} active={active}");
                assert!(t <= prev, "cores={cores} active={active}: not monotone");
                prev = t;
            }
            assert_eq!(budgeted_threads(cores, 1), cores);
        }
        assert_eq!(budgeted_threads(8, 0), 8); // zero active clamps to 1
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let mut empty: Vec<u8> = vec![];
        par_chunks_mut(&mut empty, 4, |_, _| panic!("no chunks expected"));
        par_iter_indexed(0, |_| panic!("no indices expected"));
        let mut one = vec![7u8];
        par_chunks_mut(&mut one, 4, |i, c| {
            assert_eq!((i, c.len()), (0, 1));
            c[0] = 9;
        });
        assert_eq!(one, vec![9]);
    }
}

//! SplitMix64: the workspace's only pseudo-random number generator.
//!
//! Chosen because it is 5 lines, passes BigCrush, and — critically for
//! a reproduction whose every claim rests on determinism — each output
//! is a pure function of `(seed, step)`. This is the same generator
//! family the tensor crate's `fill_random` hashing already relied on;
//! this module is the seekable/streaming form used for case generation
//! in [`crate::proptest_mini`] and anywhere `rand` would have appeared.

/// A SplitMix64 stream. `Copy` on purpose: forking the state is how
/// callers derive independent substreams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// One stateless SplitMix64 output step: the finalizing hash applied to
/// `x + GOLDEN_GAMMA`. Public so callers can hash coordinates directly.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SplitMix64 {
    /// A stream seeded with `seed`. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi]` (inclusive). Uses rejection-free modulo
    /// reduction — bias is ≤ 2⁻⁵⁰ for the tiny ranges this workspace
    /// draws, which is far below what any test can observe.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// A uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fork an independent substream (hash of the current state). The
    /// parent stream advances by one step.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(splitmix64(self.next_u64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_vector() {
        // First outputs of splitmix64 with seed 1234567, from the
        // public-domain reference implementation (Vigna).
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SplitMix64::new(7);
        let n = 20_000;
        let mut sum = 0.0;
        let mut buckets = [0u32; 10];
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            buckets[(x * 10.0) as usize] += 1;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for (i, &b) in buckets.iter().enumerate() {
            // Expected 2000 per bucket; allow ±10%.
            assert!((1800..=2200).contains(&b), "bucket {i}: {b}");
        }
    }

    #[test]
    fn ranges_are_inclusive_and_cover() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = r.usize_in(3, 7);
            assert!((3..=7).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 3..=7 should appear");
        assert_eq!(r.usize_in(9, 9), 9, "degenerate range");
    }

    #[test]
    fn fork_streams_are_decorrelated() {
        let mut parent = SplitMix64::new(99);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn bool_is_balanced() {
        let mut r = SplitMix64::new(5);
        let trues = (0..10_000).filter(|_| r.bool()).count();
        assert!((4700..=5300).contains(&trues), "trues {trues}");
    }
}

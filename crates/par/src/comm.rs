//! [`CommMode`]: whether executors run their communication schedules
//! blocking or overlapped with compute.
//!
//! Like [`crate::kernel::LocalKernel`], this is a runtime policy of the
//! execution substrate, not a property of any one algorithm: every
//! distmm step loop and the GVM executor's tile exchange carry both a
//! blocking reference path and a double-buffered pipelined path that
//! posts step `t+1`'s transfers before computing step `t`. The two
//! paths move the same bytes in the same per-link order and accumulate
//! in the same order, so switching modes never changes results or
//! algorithmic traffic counters — only *when* ranks wait.

/// How executors schedule communication relative to compute.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CommMode {
    /// Reference schedule: complete each transfer before computing the
    /// step that consumed it. Wall-clock is `comm + comp`.
    Blocking,
    /// Double-buffered pipeline: post step `t+1`'s transfers, compute
    /// step `t`, then wait. Wall-clock approaches `max(comm, comp)`.
    #[default]
    Overlapped,
}

/// Env override, read by [`CommMode::from_env`]:
/// `blocking`/`block`/`sync` selects [`CommMode::Blocking`], anything
/// else (or unset) the default [`CommMode::Overlapped`].
pub const COMM_MODE_ENV: &str = "DISTCONV_COMM";

impl CommMode {
    /// Resolve the mode from [`COMM_MODE_ENV`], falling back to the
    /// default ([`CommMode::Overlapped`]). Drivers call this once per
    /// run; tests pass the mode explicitly instead (env mutation is
    /// racy under a parallel test harness).
    pub fn from_env() -> Self {
        match std::env::var(COMM_MODE_ENV) {
            Ok(v) if matches!(v.trim(), "blocking" | "block" | "sync") => CommMode::Blocking,
            _ => CommMode::Overlapped,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            CommMode::Blocking => "blocking",
            CommMode::Overlapped => "overlapped",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_overlapped() {
        assert_eq!(CommMode::default(), CommMode::Overlapped);
        assert_eq!(CommMode::Overlapped.name(), "overlapped");
        assert_eq!(CommMode::Blocking.name(), "blocking");
    }
}

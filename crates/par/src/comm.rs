//! [`CommMode`]: whether executors run their communication schedules
//! blocking or overlapped with compute.
//!
//! Like [`crate::kernel::LocalKernel`], this is a runtime policy of the
//! execution substrate, not a property of any one algorithm: every
//! distmm step loop and the GVM executor's tile exchange carry both a
//! blocking reference path and a double-buffered pipelined path that
//! posts step `t+1`'s transfers before computing step `t`. The two
//! paths move the same bytes in the same per-link order and accumulate
//! in the same order, so switching modes never changes results or
//! algorithmic traffic counters — only *when* ranks wait.

/// How executors schedule communication relative to compute.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CommMode {
    /// Reference schedule: complete each transfer before computing the
    /// step that consumed it. Wall-clock is `comm + comp`.
    Blocking,
    /// Double-buffered pipeline: post step `t+1`'s transfers, compute
    /// step `t`, then wait. Wall-clock approaches `max(comm, comp)`.
    #[default]
    Overlapped,
}

/// Env override, read by [`CommMode::from_env`]:
/// `blocking`/`block`/`sync` selects [`CommMode::Blocking`],
/// `overlapped`/`overlap`/`async` selects [`CommMode::Overlapped`],
/// unset means the default ([`CommMode::Overlapped`]). Any other value
/// is a hard error — a typo must never silently become the default.
pub const COMM_MODE_ENV: &str = "DISTCONV_COMM";

impl CommMode {
    /// Parse an explicit mode spelling. `Err` carries the full
    /// diagnostic (offending value plus every accepted spelling).
    pub fn parse(v: &str) -> Result<Self, String> {
        match v.trim() {
            "blocking" | "block" | "sync" => Ok(CommMode::Blocking),
            "overlapped" | "overlap" | "async" => Ok(CommMode::Overlapped),
            other => Err(format!(
                "unrecognized {COMM_MODE_ENV} value {other:?}: expected one of \
                 \"blocking\"/\"block\"/\"sync\" or \"overlapped\"/\"overlap\"/\"async\" \
                 (or unset for the default, overlapped)"
            )),
        }
    }

    /// Resolve the mode from [`COMM_MODE_ENV`], falling back to the
    /// default ([`CommMode::Overlapped`]) only when the variable is
    /// unset. An unrecognized value panics with the accepted spellings.
    /// Drivers call this once per run; tests pass the mode explicitly
    /// instead (env mutation is racy under a parallel test harness).
    pub fn from_env() -> Self {
        match std::env::var(COMM_MODE_ENV) {
            Ok(v) => Self::parse(&v).unwrap_or_else(|e| panic!("{e}")),
            Err(_) => CommMode::Overlapped,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            CommMode::Blocking => "blocking",
            CommMode::Overlapped => "overlapped",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_overlapped() {
        assert_eq!(CommMode::default(), CommMode::Overlapped);
        assert_eq!(CommMode::Overlapped.name(), "overlapped");
        assert_eq!(CommMode::Blocking.name(), "blocking");
    }

    #[test]
    fn parse_accepts_every_documented_spelling() {
        for v in ["blocking", "block", "sync", " blocking "] {
            assert_eq!(CommMode::parse(v), Ok(CommMode::Blocking), "{v:?}");
        }
        for v in ["overlapped", "overlap", "async"] {
            assert_eq!(CommMode::parse(v), Ok(CommMode::Overlapped), "{v:?}");
        }
    }

    #[test]
    fn parse_rejects_typos_with_a_clear_message() {
        // The motivating bug: "overlaped" used to fall through to the
        // default silently.
        let err = CommMode::parse("overlaped").expect_err("typo must be rejected");
        assert!(err.contains("overlaped"), "names the offender: {err}");
        assert!(err.contains("DISTCONV_COMM"), "names the knob: {err}");
        assert!(err.contains("\"blocking\""), "lists spellings: {err}");
        assert!(CommMode::parse("").is_err());
        assert!(CommMode::parse("Blocking").is_err(), "case-sensitive");
    }
}

//! Shared thread-budget arbiter: rank threads and kernel pools divide
//! the machine's cores instead of multiplying them.
//!
//! The simulated `Machine` runs `P` rank bodies on `P` OS threads, and
//! each body may open a [`crate::Pool`] for its local kernel. Before
//! this module existed the pool sized itself to *all* cores, so a
//! `P`-rank run asked the OS for `P × cores` runnable threads — pure
//! oversubscription that made `direct_par` bench *slower* than the
//! serial kernel. The fix is a process-global count of active rank
//! threads: while a machine run is in flight, [`crate::num_threads`]
//! hands each rank's pool `max(1, cores / active_ranks)` workers so the
//! whole process stays at ≈ one runnable thread per core.
//!
//! The count is advisory and never affects *results*: the pool's static
//! chunk assignment is bitwise-deterministic for any worker count, so
//! concurrent machine runs (e.g. parallel tests) sharing the global
//! counter only shift wall-clock, never output.
//!
//! An explicit `DISTCONV_THREADS=N` bypasses the arbiter entirely and
//! pins every pool to exactly `N` workers — the escape hatch CI uses
//! for its cross-thread-count determinism matrix.

use std::sync::atomic::{AtomicUsize, Ordering};

static ACTIVE_RANKS: AtomicUsize = AtomicUsize::new(0);

/// RAII guard returned by [`enter_ranks`]; dropping it releases the
/// rank threads back to the budget.
#[derive(Debug)]
pub struct RankGuard {
    n: usize,
}

impl Drop for RankGuard {
    fn drop(&mut self) {
        ACTIVE_RANKS.fetch_sub(self.n, Ordering::SeqCst);
    }
}

/// Declare that `n` rank threads are about to run concurrently (the
/// simulated machine calls this for the lifetime of a run). While the
/// returned guard lives, [`crate::num_threads`] divides the core budget
/// by the total number of active ranks.
pub fn enter_ranks(n: usize) -> RankGuard {
    ACTIVE_RANKS.fetch_add(n, Ordering::SeqCst);
    RankGuard { n }
}

/// Number of rank threads currently registered (at least 1, so the
/// budget divide is always well-defined).
pub fn active_ranks() -> usize {
    ACTIVE_RANKS.load(Ordering::SeqCst).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_balances_the_counter() {
        // Other tests may hold guards concurrently; assert on deltas.
        let before = ACTIVE_RANKS.load(Ordering::SeqCst);
        {
            let _g = enter_ranks(4);
            let _h = enter_ranks(2);
            assert!(ACTIVE_RANKS.load(Ordering::SeqCst) >= before + 6);
        }
        // Our own contribution is gone (others may still fluctuate).
        let _g = enter_ranks(0);
        drop(_g);
        assert!(active_ranks() >= 1);
    }

    #[test]
    fn budget_divides_cores_among_ranks() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let _g = enter_ranks(cores * 2); // more ranks than cores
        assert_eq!(crate::pool::budgeted_threads(cores, active_ranks()), 1);
        assert_eq!(crate::pool::budgeted_threads(16, 4), 4);
        assert_eq!(crate::pool::budgeted_threads(16, 5), 3);
        assert_eq!(crate::pool::budgeted_threads(3, 1), 3);
    }
}

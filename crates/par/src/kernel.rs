//! [`LocalKernel`]: which local compute-kernel implementation the
//! executors use for tile convolutions and block matmuls.
//!
//! Every distributed algorithm in the workspace separates *what moves*
//! (the communication schedule — the paper's subject) from *what
//! computes* (the per-rank tile kernel). The selection lives here, in
//! the substrate crate every executor already depends on, next to the
//! analogous `DISTCONV_THREADS` runtime knob: the choice is a runtime
//! policy of the execution substrate, not a property of any one
//! algorithm.
//!
//! [`LocalKernel::Reference`] and [`LocalKernel::Fast`] compute
//! identical sums in the identical per-element order, so switching
//! between them is bitwise invisible. [`LocalKernel::Winograd`] is a
//! *fast bilinear* algorithm (different arithmetic, fewer multiplies):
//! it never changes traffic counters or message schedules, but its
//! results match the references only within the documented relative
//! tolerance — exact-match suites stay pinned to the other two (see
//! DESIGN.md §7's numeric policy).

/// Which local compute kernel executors dispatch to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LocalKernel {
    /// The paper-literal seven-loop kernels (`conv_tile`,
    /// `matmul_acc`): slow, simple, the ground truth every property
    /// suite validates against.
    Reference,
    /// Packed im2col-GEMM / panel-packed block kernels built on the
    /// shared register-blocked micro-kernel (`distconv_tensor::gemm`).
    #[default]
    Fast,
    /// Winograd `F(2×2, 3×3)` fast convolution (2.25× fewer multiplies
    /// on 3×3 stride-1 layers; other shapes fall back to
    /// [`LocalKernel::Fast`]). Matmuls have no Winograd analog and use
    /// the fast kernel. **Not bitwise-equal** to the references — see
    /// module docs.
    Winograd,
}

/// Env override, read by [`LocalKernel::from_env`]:
/// `reference`/`ref`/`slow` selects [`LocalKernel::Reference`],
/// `fast`/`gemm` selects [`LocalKernel::Fast`], unset means the default
/// ([`LocalKernel::Fast`]). Any other value is a hard error — a typo
/// must never silently become the default.
pub const LOCAL_KERNEL_ENV: &str = "DISTCONV_LOCAL_KERNEL";

impl LocalKernel {
    /// Parse an explicit kernel spelling. `Err` carries the full
    /// diagnostic (offending value plus every accepted spelling).
    pub fn parse(v: &str) -> Result<Self, String> {
        match v.trim() {
            "reference" | "ref" | "slow" => Ok(LocalKernel::Reference),
            "fast" | "gemm" => Ok(LocalKernel::Fast),
            "winograd" | "wino" => Ok(LocalKernel::Winograd),
            other => Err(format!(
                "unrecognized {LOCAL_KERNEL_ENV} value {other:?}: expected one of \
                 \"reference\"/\"ref\"/\"slow\", \"fast\"/\"gemm\", or \
                 \"winograd\"/\"wino\" (or unset for the default, fast)"
            )),
        }
    }

    /// Resolve the kernel selection from [`LOCAL_KERNEL_ENV`], falling
    /// back to the default ([`LocalKernel::Fast`]) only when the
    /// variable is unset; an unrecognized value panics with the
    /// accepted spellings. Executors call this once per run, so
    /// flipping the whole workspace onto the reference kernels (e.g. to
    /// bisect a numerical question) is one env var.
    pub fn from_env() -> Self {
        match std::env::var(LOCAL_KERNEL_ENV) {
            Ok(v) => Self::parse(&v).unwrap_or_else(|e| panic!("{e}")),
            Err(_) => LocalKernel::Fast,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            LocalKernel::Reference => "reference",
            LocalKernel::Fast => "fast",
            LocalKernel::Winograd => "winograd",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fast() {
        assert_eq!(LocalKernel::default(), LocalKernel::Fast);
        assert_eq!(LocalKernel::Fast.name(), "fast");
        assert_eq!(LocalKernel::Reference.name(), "reference");
    }

    #[test]
    fn parse_accepts_every_documented_spelling() {
        for v in ["reference", "ref", "slow", " ref "] {
            assert_eq!(LocalKernel::parse(v), Ok(LocalKernel::Reference), "{v:?}");
        }
        for v in ["fast", "gemm"] {
            assert_eq!(LocalKernel::parse(v), Ok(LocalKernel::Fast), "{v:?}");
        }
        for v in ["winograd", "wino"] {
            assert_eq!(LocalKernel::parse(v), Ok(LocalKernel::Winograd), "{v:?}");
        }
        assert_eq!(LocalKernel::Winograd.name(), "winograd");
    }

    #[test]
    fn parse_rejects_typos_with_a_clear_message() {
        // The motivating bug: "fats" used to fall through to the
        // default silently.
        let err = LocalKernel::parse("fats").expect_err("typo must be rejected");
        assert!(err.contains("fats"), "names the offender: {err}");
        assert!(
            err.contains("DISTCONV_LOCAL_KERNEL"),
            "names the knob: {err}"
        );
        assert!(err.contains("\"reference\""), "lists spellings: {err}");
        assert!(LocalKernel::parse("").is_err());
    }
}

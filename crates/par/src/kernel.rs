//! [`LocalKernel`]: which local compute-kernel implementation the
//! executors use for tile convolutions and block matmuls.
//!
//! Every distributed algorithm in the workspace separates *what moves*
//! (the communication schedule — the paper's subject) from *what
//! computes* (the per-rank tile kernel). The selection lives here, in
//! the substrate crate every executor already depends on, next to the
//! analogous `DISTCONV_THREADS` runtime knob: the choice is a runtime
//! policy of the execution substrate, not a property of any one
//! algorithm.
//!
//! The two implementations compute identical sums in different
//! association orders, so switching kernels never changes traffic
//! counters or message schedules — only floating-point rounding within
//! the documented verification tolerances.

/// Which local compute kernel executors dispatch to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LocalKernel {
    /// The paper-literal seven-loop kernels (`conv_tile`,
    /// `matmul_acc`): slow, simple, the ground truth every property
    /// suite validates against.
    Reference,
    /// Packed im2col-GEMM / panel-packed block kernels built on the
    /// shared register-blocked micro-kernel (`distconv_tensor::gemm`).
    #[default]
    Fast,
}

/// Env override, read by [`LocalKernel::from_env`]:
/// `reference`/`ref`/`slow` selects [`LocalKernel::Reference`],
/// anything else (or unset) the default [`LocalKernel::Fast`].
pub const LOCAL_KERNEL_ENV: &str = "DISTCONV_LOCAL_KERNEL";

impl LocalKernel {
    /// Resolve the kernel selection from [`LOCAL_KERNEL_ENV`], falling
    /// back to the default ([`LocalKernel::Fast`]). Executors call this
    /// once per run, so flipping the whole workspace onto the reference
    /// kernels (e.g. to bisect a numerical question) is one env var.
    pub fn from_env() -> Self {
        match std::env::var(LOCAL_KERNEL_ENV) {
            Ok(v) if matches!(v.trim(), "reference" | "ref" | "slow") => LocalKernel::Reference,
            _ => LocalKernel::Fast,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            LocalKernel::Reference => "reference",
            LocalKernel::Fast => "fast",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fast() {
        assert_eq!(LocalKernel::default(), LocalKernel::Fast);
        assert_eq!(LocalKernel::Fast.name(), "fast");
        assert_eq!(LocalKernel::Reference.name(), "reference");
    }
}

//! A minimal property-testing harness: seeded case generation and
//! failure-seed replay, no macros, no shrinking.
//!
//! The four property suites that used to run on `proptest` run on this
//! instead. The contract:
//!
//! * [`check`] runs a property closure against `cases` generated cases.
//!   Each case gets a [`Gen`] seeded with a *case seed* derived from the
//!   base seed, and asserts by panicking (plain `assert!` and friends).
//! * On failure the harness prints the failing case seed and re-raises
//!   the panic. Re-running with `DISTCONV_PROPTEST_SEED=<that seed>`
//!   replays exactly that case (and only it) — the replacement for
//!   proptest's `proptest-regressions` files. Persistent regressions
//!   are promoted to explicit `#[test]` cases instead (see
//!   `tests/property_based.rs`).
//! * `DISTCONV_PROPTEST_CASES=<n>` globally overrides the case count
//!   (e.g. crank it up for a soak run, or to 1 for a smoke pass).
//!
//! There is no shrinking: case inputs here are small by construction
//! (the references being validated are `O(N⁷)`), so raw failing cases
//! are already readable. A failing case seed plus the printed `Debug`
//! of whatever the property sampled is the debugging interface.

use crate::rng::{splitmix64, SplitMix64};

/// Env var: replay exactly one case with this seed.
pub const SEED_ENV: &str = "DISTCONV_PROPTEST_SEED";
/// Env var: override the number of generated cases.
pub const CASES_ENV: &str = "DISTCONV_PROPTEST_CASES";

/// Per-case value source handed to property closures. Thin wrapper
/// over [`SplitMix64`] that records its case seed for diagnostics.
pub struct Gen {
    rng: SplitMix64,
    case_seed: u64,
}

impl Gen {
    /// A generator for one case.
    pub fn new(case_seed: u64) -> Self {
        Gen {
            rng: SplitMix64::new(case_seed),
            case_seed,
        }
    }

    /// The seed that reproduces this case via [`SEED_ENV`].
    pub fn case_seed(&self) -> u64 {
        self.case_seed
    }

    /// Uniform 64 random bits (proptest's `any::<u64>()`).
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `u32` in `[lo, hi]` inclusive.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.u64_in(lo as u64, hi as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi]` inclusive.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.usize_in(lo, hi)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// Uniform bool.
    pub fn bool(&mut self) -> bool {
        self.rng.bool()
    }
}

/// Harness configuration, resolved from defaults + environment.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of cases to generate (before env overrides).
    pub cases: u32,
    /// Base seed; case `i`'s seed is `splitmix64(base ^ i)`.
    pub base_seed: u64,
}

impl Config {
    /// Default configuration: `cases` cases from a fixed base seed.
    /// Tests are deterministic run-to-run by default; variation is
    /// opt-in via [`SEED_ENV`] on a failure report.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            base_seed: 0xD15C_0411_C0FF_EE00,
        }
    }
}

/// Run `property` against generated cases. See the module docs for the
/// env-var contract. `name` labels failure output — use the test
/// function's name.
pub fn check<F>(name: &str, cfg: Config, property: F)
where
    F: Fn(&mut Gen),
{
    // Replay mode: exactly one case, exactly that seed.
    if let Ok(v) = std::env::var(SEED_ENV) {
        let seed = parse_seed(&v)
            .unwrap_or_else(|| panic!("{SEED_ENV}={v:?} is not a u64 (decimal or 0x-hex)"));
        eprintln!("proptest_mini[{name}]: replaying single case, seed {seed:#018x}");
        let mut g = Gen::new(seed);
        property(&mut g);
        return;
    }
    let cases = std::env::var(CASES_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .unwrap_or(cfg.cases);
    for i in 0..cases {
        let case_seed = splitmix64(cfg.base_seed ^ i as u64);
        let mut g = Gen::new(case_seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut g);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest_mini[{name}]: case {i}/{cases} FAILED — replay with \
                 {SEED_ENV}={case_seed:#018x} (cargo test {name})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Assert two result slices agree element-wise within `rel_tol`
/// relative error — the harness half of the workspace's **two-tier
/// numeric policy** (DESIGN.md §7): bitwise-equal kernels use plain
/// `assert_eq!`; fast *bilinear* kernels (Winograd) are validated with
/// this, under an analytically justified bound.
///
/// The per-element denominator is `max(|got|, |want|, 1)` — relative
/// error for `O(1)`-and-larger magnitudes, absolute below 1, so
/// near-cancelled elements don't demand impossible relative precision.
/// Non-finite values always fail. Panics name the worst element, its
/// error, and the bound, so a tolerance failure reads like a bench
/// regression report rather than a bare `assertion failed`.
pub fn assert_close(what: &str, got: &[f64], want: &[f64], rel_tol: f64) {
    assert_eq!(
        got.len(),
        want.len(),
        "{what}: length mismatch ({} vs {})",
        got.len(),
        want.len()
    );
    let mut worst = 0.0f64;
    let mut worst_i = 0usize;
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.is_finite() && w.is_finite(),
            "{what}: non-finite element at index {i}: got {g}, want {w}"
        );
        let err = (g - w).abs() / g.abs().max(w.abs()).max(1.0);
        if err > worst {
            (worst, worst_i) = (err, i);
        }
    }
    assert!(
        worst <= rel_tol,
        "{what}: max relative error {worst:.3e} at index {worst_i} \
         (got {}, want {}) exceeds tolerance {rel_tol:.1e}",
        got[worst_i],
        want[worst_i]
    );
}

fn parse_seed(v: &str) -> Option<u64> {
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

    #[test]
    fn runs_requested_number_of_cases() {
        let count = AtomicU32::new(0);
        check("count", Config::with_cases(37), |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn case_seeds_are_deterministic_across_runs() {
        let collect = || {
            let seeds = std::sync::Mutex::new(Vec::new());
            check("seeds", Config::with_cases(8), |g| {
                seeds.lock().unwrap().push(g.case_seed());
            });
            seeds.into_inner().unwrap()
        };
        let a = collect();
        let b = collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        // And distinct per case.
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8);
    }

    #[test]
    fn failure_reports_a_seed_that_replays_the_same_case() {
        // Find the case that fails, capture its seed from the Gen, then
        // verify a fresh Gen with that seed regenerates identical values
        // — the property the env-var replay path relies on.
        let failing_seed = AtomicU64::new(0);
        let sampled = AtomicU64::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check("replay", Config::with_cases(16), |g| {
                let v = g.u64();
                if g.case_seed() % 5 == 0 {
                    failing_seed.store(g.case_seed(), Ordering::Relaxed);
                    sampled.store(v, Ordering::Relaxed);
                    panic!("synthetic failure");
                }
            });
        }));
        assert!(result.is_err(), "some case seed must be divisible by 5");
        let seed = failing_seed.load(Ordering::Relaxed);
        let mut replay = Gen::new(seed);
        assert_eq!(
            replay.u64(),
            sampled.load(Ordering::Relaxed),
            "replaying the reported seed must regenerate the case"
        );
    }

    #[test]
    fn parse_seed_accepts_decimal_and_hex() {
        assert_eq!(parse_seed("123"), Some(123));
        assert_eq!(parse_seed(" 0xff "), Some(255));
        assert_eq!(parse_seed("0XDEADBEEF"), Some(0xDEAD_BEEF));
        assert_eq!(parse_seed("nope"), None);
    }

    #[test]
    fn gen_ranges_behave() {
        let mut g = Gen::new(1);
        for _ in 0..100 {
            let v = g.usize_in(2, 4);
            assert!((2..=4).contains(&v));
            let u = g.u32_in(7, 7);
            assert_eq!(u, 7);
            let f = g.f64_unit();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn assert_close_accepts_within_tolerance() {
        assert_close("ok", &[1.0, 2.0 + 1e-9], &[1.0, 2.0], 1e-8);
        // Small magnitudes are judged absolutely (denominator floors
        // at 1), so cancellation noise below the bound passes.
        assert_close("small", &[1e-10], &[0.0], 1e-9);
        assert_close("empty", &[], &[], 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds tolerance")]
    fn assert_close_reports_worst_element() {
        assert_close("bad", &[1.0, 5.0], &[1.0, 4.0], 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn assert_close_rejects_nan() {
        assert_close("nan", &[f64::NAN], &[0.0], 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn assert_close_rejects_length_mismatch() {
        assert_close("len", &[1.0], &[1.0, 2.0], 1.0);
    }
}

//! Filter (model) parallelism: split the output features, replicate
//! the input.
//!
//! Each rank owns a band of output features `k` and the matching
//! kernel slice — the only baseline whose *weight* memory scales with
//! `P`. The price: every rank needs the entire input, so each step
//! broadcasts `|In|` to all ranks.
//!
//! * **Placement**: kernel shards scattered from the source,
//!   `Σ_{i≠0}|Ker_i|` (≈ `|Ker|·(P−1)/P` — cheaper than the other
//!   baselines' full replication).
//! * **Recurring**: input broadcast, `(P−1)·|In|` — the term that blows
//!   up with `P` and makes pure filter parallelism uncompetitive beyond
//!   a few ranks (visible in E9's curves; the paper's algorithm avoids
//!   it by *also* partitioning `bhw`).

use crate::common::{BaselineKind, BaselineReport};
use distconv_conv::kernels::{conv2d_direct_par, in_shape, ker_shape, workload};
use distconv_cost::Conv2dProblem;
use distconv_simnet::{Communicator, Machine, MachineConfig, RunError};
use distconv_tensor::shape::BlockDist;
use distconv_tensor::{max_rel_err, Range4, Shape4, Tensor4};

const TAG_KER_SCATTER: u64 = 0x0DA7_0004;

/// Run the filter-parallel scheme. Requires `procs ≤ N_k`.
pub fn run_filter_parallel(
    p: Conv2dProblem,
    procs: usize,
    seed: u64,
    cfg: MachineConfig,
) -> BaselineReport {
    try_run_filter_parallel(p, procs, seed, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_filter_parallel`]: surfaces rank failures (injected
/// crashes, deadlocks, OOM) as a [`RunError`] instead of panicking.
pub fn try_run_filter_parallel(
    p: Conv2dProblem,
    procs: usize,
    seed: u64,
    cfg: MachineConfig,
) -> Result<BaselineReport, RunError> {
    assert!(
        procs <= p.nk,
        "filter parallelism cannot use more ranks ({procs}) than output features ({})",
        p.nk
    );
    let dist = BlockDist::new(p.nk, procs);

    let report = Machine::try_run::<f64, _, _>(procs, cfg, |rank| {
        let comm = Communicator::world(rank);
        let me = rank.id();
        let (k_lo, k_hi) = dist.range(me);
        let my_nk = k_hi - k_lo;

        // --- Placement: kernel shards scattered from rank 0. ---
        let ker_shard = if me == 0 {
            let full = Tensor4::<f64>::random(ker_shape(&p), seed ^ crate::KER_SEED_XOR);
            let _lf = rank.mem().lease_or_panic(full.len() as u64);
            for dst in 1..procs {
                let (dk_lo, dk_hi) = dist.range(dst);
                let rng = Range4::new([dk_lo, 0, 0, 0], [dk_hi, p.nc, p.nr, p.ns]);
                rank.send_vec(dst, TAG_KER_SCATTER, full.pack_range(rng));
            }
            full.slice(Range4::new([0, 0, 0, 0], [k_hi, p.nc, p.nr, p.ns]))
        } else {
            Tensor4::from_vec(
                Shape4::new(my_nk, p.nc, p.nr, p.ns),
                rank.recv(0, TAG_KER_SCATTER),
            )
        };
        let _lk = rank.mem().lease_or_panic(ker_shard.len() as u64);

        // --- Recurring: full input broadcast from rank 0. ---
        // Trace steps: 0 = kernel placement, 1 = input broadcast,
        // 2 = local forward.
        rank.set_step(1);
        let mut in_buf = if me == 0 {
            Tensor4::<f64>::random(in_shape(&p), seed).into_vec()
        } else {
            vec![0.0; in_shape(&p).len()]
        };
        let _li = rank.mem().lease_or_panic(in_buf.len() as u64);
        comm.bcast(0, &mut in_buf);
        let input = Tensor4::from_vec(in_shape(&p), in_buf);

        // --- Local forward on the feature band. ---
        rank.set_step(2);
        let sub = Conv2dProblem::new(p.nb, my_nk, p.nc, p.nh, p.nw, p.nr, p.ns, p.sw, p.sh);
        let out = rank.time_compute(|| {
            distconv_conv::conv2d(
                &sub,
                &input,
                &ker_shard,
                distconv_conv::LocalKernel::from_env(),
            )
        });
        (k_lo, out)
    })?;

    // --- Verification. ---
    let (input, ker) = workload::<f64>(&p, seed);
    let reference = conv2d_direct_par(&p, &input, &ker);
    let mut verified = true;
    for (k_lo, out) in &report.results {
        let nk = out.shape().0[1];
        let rng = Range4::new([0, *k_lo, 0, 0], [p.nb, k_lo + nk, p.nw, p.nh]);
        let expect = reference.pack_range(rng);
        if max_rel_err(out.as_slice(), &expect).is_none_or(|e| e > 1e-9) {
            verified = false;
        }
    }

    // --- Exact analytic volumes. ---
    let per_k = (p.nc * p.nr * p.ns) as u128;
    let placement: u128 = (1..procs).map(|i| dist.len(i) as u128 * per_k).sum();
    let recurring = (procs as u128 - 1) * p.size_in();
    Ok(BaselineReport {
        kind: BaselineKind::FilterParallel,
        problem: p,
        procs,
        analytic_placement: placement,
        analytic_recurring: recurring,
        verified,
        max_peak_mem: report.max_peak_mem(),
        sim_time: report.sim_time,
        makespan: report.makespan,
        stats: report.stats,
        trace: report.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_verified_and_exact_volume() {
        let p = Conv2dProblem::square(2, 8, 4, 4, 3);
        for procs in [1usize, 2, 4, 8] {
            let r = run_filter_parallel(p, procs, 13, MachineConfig::default());
            assert!(r.verified, "P={procs}");
            assert_eq!(
                r.stats.total_elems() as u128,
                r.analytic_total(),
                "P={procs}"
            );
        }
    }

    #[test]
    fn input_broadcast_dominates_at_scale() {
        // The recurring term must grow linearly with P — the scheme's
        // known failure mode.
        let p = Conv2dProblem::square(2, 8, 4, 8, 3);
        let r2 = run_filter_parallel(p, 2, 1, MachineConfig::default());
        let r8 = run_filter_parallel(p, 8, 1, MachineConfig::default());
        assert_eq!(r2.analytic_recurring, p.size_in());
        assert_eq!(r8.analytic_recurring, 7 * p.size_in());
        assert!(r8.stats.total_elems() > r2.stats.total_elems());
    }

    #[test]
    fn uneven_feature_split() {
        let p = Conv2dProblem::square(2, 7, 4, 4, 3);
        let r = run_filter_parallel(p, 3, 2, MachineConfig::default());
        assert!(r.verified);
        assert_eq!(r.stats.total_elems() as u128, r.analytic_total());
    }

    #[test]
    #[should_panic(expected = "cannot use more ranks")]
    fn too_many_ranks_rejected() {
        let p = Conv2dProblem::square(2, 4, 4, 4, 3);
        run_filter_parallel(p, 5, 0, MachineConfig::default());
    }
}

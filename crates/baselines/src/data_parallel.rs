//! Data parallelism: split the batch, replicate the kernel.
//!
//! The scheme behind TensorFlow's and PyTorch-DDP's default distribution
//! and Horovod's all-reduce training:
//!
//! * **Placement** (one-time): the kernel is broadcast to all ranks —
//!   `(P−1)·|Ker|` elements, and `|Ker|` *memory per rank* forever (the
//!   scheme does not scale kernel memory).
//! * **Recurring** (every step): the fresh input batch is scattered
//!   from its source — `Σ_{i≠0} |shard_i|` elements; in training, the
//!   weight gradient is all-reduced — `2·(P−1)·|Ker|` elements total.
//! * Forward compute itself needs **no** communication — the scheme's
//!   enduring appeal, and the baseline the paper's algorithms must beat
//!   only where kernel replication hurts (memory) or gradient
//!   all-reduce dominates (large `Ker`, small batch).

use crate::common::{BaselineKind, BaselineReport};
use distconv_conv::kernels::{
    conv2d_direct_par, grad_ker, in_shape, ker_shape, out_shape, workload,
};
use distconv_cost::Conv2dProblem;
use distconv_simnet::{Communicator, Machine, MachineConfig, RunError};
use distconv_tensor::shape::BlockDist;
use distconv_tensor::{max_rel_err, Shape4, Tensor4};

/// Seed-offset for the upstream gradient `dOut` in training mode.
pub const DOUT_SEED_XOR: u64 = 0x5A5A_1234_9876_0F0F;

const TAG_IN_SCATTER: u64 = 0x0DA7_0001;

/// Run the data-parallel scheme on `procs` ranks. `train` adds the
/// backward weight-gradient all-reduce. Requires `procs ≤ N_b`.
pub fn run_data_parallel(
    p: Conv2dProblem,
    procs: usize,
    seed: u64,
    train: bool,
    cfg: MachineConfig,
) -> BaselineReport {
    try_run_data_parallel(p, procs, seed, train, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_data_parallel`]: surfaces rank failures (injected
/// crashes, deadlocks, OOM) as a [`RunError`] instead of panicking.
pub fn try_run_data_parallel(
    p: Conv2dProblem,
    procs: usize,
    seed: u64,
    train: bool,
    cfg: MachineConfig,
) -> Result<BaselineReport, RunError> {
    assert!(
        procs <= p.nb,
        "data parallelism cannot use more ranks ({procs}) than batch items ({})",
        p.nb
    );
    let dist = BlockDist::new(p.nb, procs);

    let report = Machine::try_run::<f64, _, _>(procs, cfg, |rank| {
        let comm = Communicator::world(rank);
        let me = rank.id();
        let (b_lo, b_hi) = dist.range(me);
        let my_nb = b_hi - b_lo;
        let global_in = in_shape(&p);
        let shard_shape = Shape4::new(my_nb, p.nc, p.in_w(), p.in_h());

        // --- Placement: kernel broadcast from rank 0. ---
        let mut ker_buf = if me == 0 {
            Tensor4::<f64>::random(ker_shape(&p), seed ^ crate::KER_SEED_XOR).into_vec()
        } else {
            vec![0.0; ker_shape(&p).len()]
        };
        let _lk = rank.mem().lease_or_panic(ker_buf.len() as u64);
        comm.bcast(0, &mut ker_buf);
        let ker = Tensor4::from_vec(ker_shape(&p), ker_buf);

        // --- Recurring: input batch scatter from rank 0 (the data
        //     source). ---
        // Trace steps: 0 = kernel placement, 1 = input scatter,
        // 2 = local forward, 3 = gradient all-reduce.
        rank.set_step(1);
        let in_shard = if me == 0 {
            let full = Tensor4::<f64>::random(global_in, seed);
            let _lf = rank.mem().lease_or_panic(full.len() as u64);
            for dst in 1..procs {
                let (lo, hi) = dist.range(dst);
                let rng =
                    distconv_tensor::Range4::new([lo, 0, 0, 0], [hi, p.nc, p.in_w(), p.in_h()]);
                rank.send_vec(dst, TAG_IN_SCATTER, full.pack_range(rng));
            }
            full.slice(distconv_tensor::Range4::new(
                [0, 0, 0, 0],
                [b_hi, p.nc, p.in_w(), p.in_h()],
            ))
        } else {
            Tensor4::from_vec(shard_shape, rank.recv(0, TAG_IN_SCATTER))
        };
        let _li = rank.mem().lease_or_panic(in_shard.len() as u64);

        // --- Local forward: an independent sub-problem on my batch. ---
        rank.set_step(2);
        let sub = Conv2dProblem::new(my_nb, p.nk, p.nc, p.nh, p.nw, p.nr, p.ns, p.sw, p.sh);
        let out = rank.time_compute(|| {
            distconv_conv::conv2d(
                &sub,
                &in_shard,
                &ker,
                distconv_conv::LocalKernel::from_env(),
            )
        });

        // --- Training: gradient all-reduce (Horovod). ---
        rank.set_step(3);
        let d_ker = if train {
            let d_out = Tensor4::<f64>::random_window(
                out_shape(&sub),
                seed ^ DOUT_SEED_XOR,
                [b_lo, 0, 0, 0],
                out_shape(&p),
            );
            let mut g = grad_ker(&sub, &in_shard, &d_out).into_vec();
            comm.allreduce(&mut g);
            Some(Tensor4::from_vec(ker_shape(&p), g))
        } else {
            None
        };
        (b_lo, out, d_ker)
    })?;

    // --- Verification. ---
    let (input, ker) = workload::<f64>(&p, seed);
    let reference = conv2d_direct_par(&p, &input, &ker);
    let ref_grad = if train {
        let d_out = Tensor4::<f64>::random(out_shape(&p), seed ^ DOUT_SEED_XOR);
        Some(grad_ker(&p, &input, &d_out))
    } else {
        None
    };
    let mut verified = true;
    for (b_lo, out, d_ker) in &report.results {
        let rng = distconv_tensor::Range4::new(
            [*b_lo, 0, 0, 0],
            [b_lo + out.shape().0[0], p.nk, p.nw, p.nh],
        );
        let expect = reference.pack_range(rng);
        if max_rel_err(out.as_slice(), &expect).is_none_or(|e| e > 1e-9) {
            verified = false;
        }
        if let (Some(g), Some(rg)) = (d_ker, &ref_grad) {
            if max_rel_err(g.as_slice(), rg.as_slice()).is_none_or(|e| e > 1e-9) {
                verified = false;
            }
        }
    }

    // --- Exact analytic volumes. ---
    let placement = (procs as u128 - 1) * p.size_ker();
    let scatter: u128 = (1..procs)
        .map(|i| dist.len(i) as u128 * (p.nc * p.in_w() * p.in_h()) as u128)
        .sum();
    let allreduce = if train {
        2 * (procs as u128 - 1) * p.size_ker()
    } else {
        0
    };
    Ok(BaselineReport {
        kind: BaselineKind::DataParallel,
        problem: p,
        procs,
        analytic_placement: placement,
        analytic_recurring: scatter + allreduce,
        verified,
        max_peak_mem: report.max_peak_mem(),
        sim_time: report.sim_time,
        makespan: report.makespan,
        stats: report.stats,
        trace: report.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Conv2dProblem {
        Conv2dProblem::square(8, 4, 4, 4, 3)
    }

    #[test]
    fn try_run_surfaces_injected_crash() {
        use distconv_simnet::FaultPlan;
        let cfg = MachineConfig {
            recv_timeout: std::time::Duration::from_millis(300),
            faults: FaultPlan::default().with_crash(1, 1),
            ..MachineConfig::default()
        };
        let err = try_run_data_parallel(toy(), 4, 3, false, cfg).expect_err("crash must fail");
        assert!(err.has_injected_crash());
        assert!(err.failed_ranks().contains(&1));
    }

    #[test]
    fn forward_verified_and_exact_volume() {
        for procs in [1usize, 2, 4, 8] {
            let r = run_data_parallel(toy(), procs, 3, false, MachineConfig::default());
            assert!(r.verified, "P={procs}");
            assert_eq!(
                r.stats.total_elems() as u128,
                r.analytic_total(),
                "P={procs}"
            );
        }
    }

    #[test]
    fn training_allreduce_counted() {
        let r_fwd = run_data_parallel(toy(), 4, 3, false, MachineConfig::default());
        let r_trn = run_data_parallel(toy(), 4, 3, true, MachineConfig::default());
        assert!(r_trn.verified);
        assert_eq!(
            r_trn.analytic_recurring - r_fwd.analytic_recurring,
            2 * 3 * toy().size_ker()
        );
        assert_eq!(r_trn.stats.total_elems() as u128, r_trn.analytic_total());
    }

    #[test]
    fn conformance_cross_checks_trace_against_counters() {
        let r = run_data_parallel(toy(), 4, 3, true, MachineConfig::default());
        let rep = r.conformance();
        assert!(rep.pass(), "conformance failed:\n{rep}");
        assert_eq!(rep.rows.len(), 1 + 4, "{rep}");
    }

    #[test]
    fn uneven_batch_split() {
        let p = Conv2dProblem::square(7, 4, 4, 4, 3);
        let r = run_data_parallel(p, 3, 5, true, MachineConfig::default());
        assert!(r.verified);
        assert_eq!(r.stats.total_elems() as u128, r.analytic_total());
    }

    #[test]
    #[should_panic(expected = "cannot use more ranks")]
    fn too_many_ranks_rejected() {
        run_data_parallel(toy(), 9, 0, false, MachineConfig::default());
    }
}

//! # distconv-baselines
//!
//! The "simple and restricted schemes" the paper's introduction says
//! are all that existing distributed DNN systems implement
//! (TensorFlow \[1\], FlexFlow \[6\], PyTorch-DDP \[10\], Horovod \[13\]),
//! realized on the same simulated machine as the paper's algorithm so
//! experiment E9 can compare volumes apples-to-apples:
//!
//! * [`data_parallel`] — split the batch `b`; every rank holds the full
//!   kernel. Forward pass needs no communication once weights are
//!   placed (the scheme's appeal) but replicates `|Ker|` per rank (its
//!   memory cost); a training step pays a gradient all-reduce of
//!   `2·|Ker|·(P−1)/P` per rank (Horovod's recurring cost).
//! * [`spatial_parallel`] — split the image width `w`; halo columns are
//!   exchanged with neighbors each step. Cheap for large images, but
//!   the kernel is still fully replicated.
//! * [`filter_parallel`] — split the output features `k`; the kernel is
//!   partitioned (memory scales!) but the whole input must reach every
//!   rank.
//!
//! Each scheme executes real data movement on `simnet`, verifies its
//! result against the sequential reference, and carries an exact
//! analytic volume that the measured counters must equal.
//!
//! Charging conventions (documented per scheme, consistent with how
//! the paper charges its own algorithm): one-time weight/input
//! *placement* broadcasts are reported separately from *recurring*
//! per-step traffic, because the interesting comparison — like the
//! paper's `cost_I` vs `cost_C` split — is between amortizable setup
//! and every-step cost.

#![warn(missing_docs)]

pub mod common;
pub mod data_parallel;
pub mod filter_parallel;
pub mod spatial_parallel;

pub use common::{BaselineKind, BaselineReport};

/// Seed-offset for the kernel tensor (matches
/// `distconv_conv::kernels::workload` so baseline runs and references
/// see identical weights).
pub const KER_SEED_XOR: u64 = 0xABCD_EF01_2345_6789;
pub use data_parallel::{run_data_parallel, try_run_data_parallel};
pub use filter_parallel::{run_filter_parallel, try_run_filter_parallel};
pub use spatial_parallel::{run_spatial_parallel, spatial_feasible, try_run_spatial_parallel};

//! Shared report types for the baseline schemes.

use distconv_cost::Conv2dProblem;
use distconv_simnet::StatsSnapshot;
use distconv_trace::{ConformanceReport, ConformanceRow, RunTrace, Tolerance};

/// Which baseline scheme produced a report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// Batch split (`b`), kernel replicated.
    DataParallel,
    /// Width split (`w`), halo exchange, kernel replicated.
    SpatialParallel,
    /// Output-feature split (`k`), input replicated.
    FilterParallel,
}

impl BaselineKind {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineKind::DataParallel => "data-parallel",
            BaselineKind::SpatialParallel => "spatial-parallel",
            BaselineKind::FilterParallel => "filter-parallel",
        }
    }
}

/// Result of running a baseline scheme.
#[derive(Clone, Debug)]
pub struct BaselineReport {
    /// The scheme.
    pub kind: BaselineKind,
    /// The layer.
    pub problem: Conv2dProblem,
    /// Ranks used.
    pub procs: usize,
    /// Measured counters for the whole run.
    pub stats: StatsSnapshot,
    /// Exact analytic one-time placement volume (weight/input
    /// replication broadcasts).
    pub analytic_placement: u128,
    /// Exact analytic recurring per-step volume (halo exchanges,
    /// gradient all-reduce).
    pub analytic_recurring: u128,
    /// Whether the forward result (and gradient, if trained) matched
    /// the sequential reference.
    pub verified: bool,
    /// Largest per-rank peak memory (elements).
    pub max_peak_mem: u64,
    /// Simulated α–β time (volume-based estimate).
    pub sim_time: f64,
    /// Lamport communication makespan (dependency-aware).
    pub makespan: f64,
    /// Per-rank span trace (empty when tracing was disabled).
    pub trace: RunTrace,
}

impl BaselineReport {
    /// Total analytic volume (placement + recurring).
    pub fn analytic_total(&self) -> u128 {
        self.analytic_placement + self.analytic_recurring
    }

    /// Cost-model conformance: the measured total traffic against the
    /// scheme's exact analytic volume, plus a per-rank trace-vs-counter
    /// cross-check (skipped when the trace is empty or a ring wrapped —
    /// a wrapped ring undercounts by construction).
    pub fn conformance(&self) -> ConformanceReport {
        let name = self.kind.name();
        let mut rep = ConformanceReport::new();
        rep.push(ConformanceRow::new(
            format!("{name}/total-volume"),
            self.stats.total_elems() as f64,
            self.analytic_total() as f64,
            Tolerance::Exact,
        ));
        if !self.trace.is_empty() && self.trace.total_dropped() == 0 {
            for rank in 0..self.procs {
                rep.push(ConformanceRow::new(
                    format!("{name}/rank{rank}-sent-elems"),
                    self.trace.sent_elems(rank) as f64,
                    self.stats.per_rank_elems[rank] as f64,
                    Tolerance::Exact,
                ));
            }
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(BaselineKind::DataParallel.name(), "data-parallel");
        assert_eq!(BaselineKind::SpatialParallel.name(), "spatial-parallel");
        assert_eq!(BaselineKind::FilterParallel.name(), "filter-parallel");
    }
}

//! Spatial parallelism: split the image width, exchange halos.
//!
//! Each rank owns a contiguous band of output columns (`w`) and the
//! matching input columns; computing its band needs `N_r − σ_w` extra
//! input columns from its right neighbor (the *halo*), exchanged every
//! step. The kernel is fully replicated (like data parallelism).
//!
//! * **Placement**: kernel broadcast, `(P−1)·|Ker|`.
//! * **Recurring**: input-band scatter `Σ_{i≠0}|band_i|` + halo
//!   exchange `(P−1)·(N_r−σ_w)·Y·N_b·N_c` (zero when `σ_w ≥ N_r`).
//!
//! Scales activation memory (unlike data parallelism) and suits large
//! images; the halo term grows with the kernel and shrinks with the
//! band width, which is what kills it on deep, small-image layers —
//! one of the trade-offs E9 charts.

use crate::common::{BaselineKind, BaselineReport};
use distconv_conv::kernels::{conv2d_direct_par, ker_shape, workload};
use distconv_cost::Conv2dProblem;
use distconv_simnet::{Communicator, Machine, MachineConfig, RunError};
use distconv_tensor::shape::BlockDist;
use distconv_tensor::{max_rel_err, Range4, Tensor4};

const TAG_IN_SCATTER: u64 = 0x0DA7_0002;
const TAG_HALO: u64 = 0x0DA7_0003;

/// Can the spatial scheme run this layer on `procs` ranks? (Bands must
/// be wide enough that each halo comes from the immediate neighbor
/// only.)
pub fn spatial_feasible(p: &Conv2dProblem, procs: usize) -> bool {
    if procs > p.nw {
        return false;
    }
    let dist = BlockDist::new(p.nw, procs);
    let halo = p.nr.saturating_sub(p.sw);
    (0..procs.saturating_sub(1)).all(|i| p.sw * dist.len(i + 1) >= halo || i + 1 == procs - 1)
}

/// Run the spatial (width-split) scheme. Requires `procs ≤ N_w` and
/// every band to be wide enough that halos come from the immediate
/// neighbor only (`σ_w·band ≥ N_r − σ_w` for every band) — check with
/// [`spatial_feasible`].
pub fn run_spatial_parallel(
    p: Conv2dProblem,
    procs: usize,
    seed: u64,
    cfg: MachineConfig,
) -> BaselineReport {
    try_run_spatial_parallel(p, procs, seed, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_spatial_parallel`]: surfaces rank failures (injected
/// crashes, deadlocks, OOM) as a [`RunError`] instead of panicking.
pub fn try_run_spatial_parallel(
    p: Conv2dProblem,
    procs: usize,
    seed: u64,
    cfg: MachineConfig,
) -> Result<BaselineReport, RunError> {
    assert!(
        procs <= p.nw,
        "spatial parallelism cannot use more ranks ({procs}) than output columns ({})",
        p.nw
    );
    let dist = BlockDist::new(p.nw, procs);
    let halo = p.nr.saturating_sub(p.sw);
    for i in 0..procs.saturating_sub(1) {
        // Band i+1 must own the halo band i reads.
        assert!(
            p.sw * dist.len(i + 1) >= halo || i + 1 == procs - 1,
            "band {i} too narrow for single-neighbor halo exchange"
        );
    }

    let report = Machine::try_run::<f64, _, _>(procs, cfg, |rank| {
        let comm = Communicator::world(rank);
        let me = rank.id();
        let (w_lo, w_hi) = dist.range(me);
        let my_nw = w_hi - w_lo;
        // Owned input columns: [σ·w_lo, σ·w_hi), except the last band
        // which also owns the global tail.
        let x_lo = p.sw * w_lo;
        let x_hi_owned = if me == procs - 1 {
            p.in_w()
        } else {
            p.sw * w_hi
        };
        // Needed for compute: up to σ·(w_hi−1) + N_r.
        let x_hi_needed = p.sw * (w_hi - 1) + p.nr;

        // --- Placement: kernel broadcast. ---
        let mut ker_buf = if me == 0 {
            Tensor4::<f64>::random(ker_shape(&p), seed ^ crate::KER_SEED_XOR).into_vec()
        } else {
            vec![0.0; ker_shape(&p).len()]
        };
        let _lk = rank.mem().lease_or_panic(ker_buf.len() as u64);
        comm.bcast(0, &mut ker_buf);
        let ker = Tensor4::from_vec(ker_shape(&p), ker_buf);

        // --- Recurring: input band scatter from rank 0. ---
        // Trace steps: 0 = kernel placement, 1 = band scatter,
        // 2 = halo exchange, 3 = local forward.
        rank.set_step(1);
        let in_full_shape = distconv_conv::kernels::in_shape(&p);
        let owned = if me == 0 {
            let full = Tensor4::<f64>::random(in_full_shape, seed);
            let _lf = rank.mem().lease_or_panic(full.len() as u64);
            for dst in 1..procs {
                let (dw_lo, dw_hi) = dist.range(dst);
                let dx_lo = p.sw * dw_lo;
                let dx_hi = if dst == procs - 1 {
                    p.in_w()
                } else {
                    p.sw * dw_hi
                };
                let rng = Range4::new([0, 0, dx_lo, 0], [p.nb, p.nc, dx_hi, p.in_h()]);
                rank.send_vec(dst, TAG_IN_SCATTER, full.pack_range(rng));
            }
            full.slice(Range4::new(
                [0, 0, 0, 0],
                [p.nb, p.nc, x_hi_owned, p.in_h()],
            ))
        } else {
            let buf = rank.recv(0, TAG_IN_SCATTER);
            Tensor4::from_vec(
                distconv_tensor::Shape4::new(p.nb, p.nc, x_hi_owned - x_lo, p.in_h()),
                buf,
            )
        };
        let _lo = rank.mem().lease_or_panic(owned.len() as u64);

        // --- Halo exchange: send my leading columns to the left
        //     neighbor; receive my right halo. ---
        rank.set_step(2);
        let my_halo_need = x_hi_needed.saturating_sub(x_hi_owned);
        if me > 0 {
            // Left neighbor (me−1) needs columns [x_lo, x_lo + its_need).
            let (lw_lo, lw_hi) = dist.range(me - 1);
            let l_x_hi_owned = p.sw * lw_hi;
            let l_need = (p.sw * (lw_hi - 1) + p.nr).saturating_sub(l_x_hi_owned);
            let _ = lw_lo;
            let cols = l_need.min(x_hi_owned - x_lo);
            if cols > 0 {
                let rng = Range4::new([0, 0, 0, 0], [p.nb, p.nc, cols, p.in_h()]);
                rank.send_vec(me - 1, TAG_HALO, owned.pack_range(rng));
            }
        }
        // Assemble my compute window = owned ++ halo.
        let window_w = x_hi_needed - x_lo;
        let mut window =
            Tensor4::<f64>::zeros(distconv_tensor::Shape4::new(p.nb, p.nc, window_w, p.in_h()));
        let _lw = rank.mem().lease_or_panic(window.len() as u64);
        window.unpack_range(
            Range4::new([0, 0, 0, 0], [p.nb, p.nc, x_hi_owned - x_lo, p.in_h()]),
            owned.as_slice(),
        );
        if my_halo_need > 0 {
            let buf = rank.recv(me + 1, TAG_HALO);
            window.unpack_range(
                Range4::new(
                    [0, 0, x_hi_owned - x_lo, 0],
                    [p.nb, p.nc, window_w, p.in_h()],
                ),
                &buf,
            );
        }

        // --- Local forward on the band sub-problem. ---
        rank.set_step(3);
        let sub = Conv2dProblem::new(p.nb, p.nk, p.nc, p.nh, my_nw, p.nr, p.ns, p.sw, p.sh);
        // The window may be wider than the sub-problem's nominal input
        // (tail bands): trim to exactly σ(my_nw−1)+Nr columns.
        let trimmed = window.slice(Range4::new(
            [0, 0, 0, 0],
            [p.nb, p.nc, p.sw * (my_nw - 1) + p.nr, p.in_h()],
        ));
        let out = rank.time_compute(|| {
            distconv_conv::conv2d(&sub, &trimmed, &ker, distconv_conv::LocalKernel::from_env())
        });
        (w_lo, out)
    })?;

    // --- Verification. ---
    let (input, ker) = workload::<f64>(&p, seed);
    let reference = conv2d_direct_par(&p, &input, &ker);
    let mut verified = true;
    for (w_lo, out) in &report.results {
        let nw = out.shape().0[2];
        let rng = Range4::new([0, 0, *w_lo, 0], [p.nb, p.nk, w_lo + nw, p.nh]);
        let expect = reference.pack_range(rng);
        if max_rel_err(out.as_slice(), &expect).is_none_or(|e| e > 1e-9) {
            verified = false;
        }
    }

    // --- Exact analytic volumes. ---
    let placement = (procs as u128 - 1) * p.size_ker();
    let plane = (p.nb * p.nc * p.in_h()) as u128;
    let scatter: u128 = (1..procs)
        .map(|i| {
            let (dw_lo, dw_hi) = dist.range(i);
            let dx_lo = p.sw * dw_lo;
            let dx_hi = if i == procs - 1 {
                p.in_w()
            } else {
                p.sw * dw_hi
            };
            (dx_hi - dx_lo) as u128 * plane
        })
        .sum();
    let halo_vol: u128 = (0..procs.saturating_sub(1))
        .map(|i| {
            let (_, w_hi) = dist.range(i);
            let owned_hi = p.sw * w_hi;
            let need = (p.sw * (w_hi - 1) + p.nr).saturating_sub(owned_hi);
            need as u128 * plane
        })
        .sum();
    Ok(BaselineReport {
        kind: BaselineKind::SpatialParallel,
        problem: p,
        procs,
        analytic_placement: placement,
        analytic_recurring: scatter + halo_vol,
        verified,
        max_peak_mem: report.max_peak_mem(),
        sim_time: report.sim_time,
        makespan: report.makespan,
        stats: report.stats,
        trace: report.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_verified_and_exact_volume() {
        let p = Conv2dProblem::square(2, 4, 4, 8, 3);
        for procs in [1usize, 2, 4] {
            let r = run_spatial_parallel(p, procs, 7, MachineConfig::default());
            assert!(r.verified, "P={procs}");
            assert_eq!(
                r.stats.total_elems() as u128,
                r.analytic_total(),
                "P={procs}"
            );
        }
    }

    #[test]
    fn strided_no_halo_when_stride_covers_kernel() {
        // σ = 3 ≥ Nr = 3: bands read disjoint inputs, halo = 0.
        let p = Conv2dProblem::new(1, 2, 2, 4, 4, 3, 3, 3, 3);
        let r = run_spatial_parallel(p, 2, 1, MachineConfig::default());
        assert!(r.verified);
        let plane = (p.nb * p.nc * p.in_h()) as u128;
        let halo_part = r.analytic_recurring - (1..2u128).map(|_| 0).sum::<u128>() - {
            // subtract the scatter part to isolate halo
            let dist = BlockDist::new(p.nw, 2);
            let (dw_lo, _) = dist.range(1);
            (p.in_w() - p.sw * dw_lo) as u128 * plane
        };
        assert_eq!(halo_part, 0, "no halo expected for σ ≥ Nr");
    }

    #[test]
    fn uneven_bands() {
        let p = Conv2dProblem::square(2, 2, 2, 7, 3);
        let r = run_spatial_parallel(p, 3, 9, MachineConfig::default());
        assert!(r.verified);
        assert_eq!(r.stats.total_elems() as u128, r.analytic_total());
    }

    #[test]
    #[should_panic(expected = "cannot use more ranks")]
    fn too_many_ranks_rejected() {
        let p = Conv2dProblem::square(1, 2, 2, 4, 3);
        run_spatial_parallel(p, 5, 0, MachineConfig::default());
    }
}

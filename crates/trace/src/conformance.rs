//! The cost-model conformance checker: measured traffic vs the
//! analytic predictions (Eqs. 4, 6–9 via the per-algorithm closed
//! forms, Eq. 10 as an aggregate upper bound).
//!
//! Each comparison is a named [`ConformanceRow`] with an explicit
//! [`Tolerance`]; a failing row names itself, so a communication-volume
//! regression fails CI with "cannon/total-volume deviated", not a
//! diffed table.

use distconv_cost::json::{JsonArray, JsonObject};

/// How close measured must be to predicted for a row to pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Tolerance {
    /// Bit-exact: the algorithmic schedules are deterministic integer
    /// element counts, so their totals must match the closed forms
    /// element for element.
    Exact,
    /// Relative deviation at most this fraction (e.g. `0.05` = 5%).
    Relative(f64),
    /// The prediction is an upper bound: measured must not exceed it
    /// (the Eq. 10 aggregate rows — the realized schedule may beat the
    /// model's simplifications, never the other way).
    UpperBound,
}

impl Tolerance {
    /// Human-readable description for reports.
    pub fn describe(&self) -> String {
        match self {
            Tolerance::Exact => "exact".to_string(),
            Tolerance::Relative(r) => format!("rel<={r}"),
            Tolerance::UpperBound => "upper-bound".to_string(),
        }
    }
}

/// One measured-vs-predicted comparison.
#[derive(Clone, Debug)]
pub struct ConformanceRow {
    /// What is being compared (algorithm/quantity, e.g.
    /// `"cannon/total-volume"` or `"conv/rank3-sent-elems"`).
    pub name: String,
    /// The measured value (element counts as `f64` — exact below 2^53,
    /// far beyond any shape in the suites).
    pub measured: f64,
    /// The analytic prediction.
    pub predicted: f64,
    /// The pass criterion.
    pub tol: Tolerance,
}

impl ConformanceRow {
    /// A named comparison row.
    pub fn new(name: impl Into<String>, measured: f64, predicted: f64, tol: Tolerance) -> Self {
        ConformanceRow {
            name: name.into(),
            measured,
            predicted,
            tol,
        }
    }

    /// Absolute deviation `|measured − predicted|`.
    pub fn abs_dev(&self) -> f64 {
        (self.measured - self.predicted).abs()
    }

    /// Relative deviation `|measured − predicted| / max(|predicted|, 1)`.
    pub fn rel_dev(&self) -> f64 {
        self.abs_dev() / self.predicted.abs().max(1.0)
    }

    /// Does this row meet its tolerance?
    pub fn pass(&self) -> bool {
        match self.tol {
            Tolerance::Exact => self.measured == self.predicted,
            Tolerance::Relative(r) => self.rel_dev() <= r,
            Tolerance::UpperBound => self.measured <= self.predicted,
        }
    }
}

/// A full conformance report: every row of one run (or one suite).
#[derive(Clone, Debug, Default)]
pub struct ConformanceReport {
    /// The comparisons, in presentation order.
    pub rows: Vec<ConformanceRow>,
}

impl ConformanceReport {
    /// An empty report.
    pub fn new() -> Self {
        ConformanceReport::default()
    }

    /// Append a row.
    pub fn push(&mut self, row: ConformanceRow) {
        self.rows.push(row);
    }

    /// Append every row of `other`.
    pub fn extend(&mut self, other: ConformanceReport) {
        self.rows.extend(other.rows);
    }

    /// True iff every row passes.
    pub fn pass(&self) -> bool {
        self.rows.iter().all(ConformanceRow::pass)
    }

    /// The failing rows (empty on a passing report).
    pub fn failures(&self) -> Vec<&ConformanceRow> {
        self.rows.iter().filter(|r| !r.pass()).collect()
    }

    /// Machine-readable JSON (`distconv-conformance-v1`).
    pub fn to_json(&self) -> String {
        let mut rows = JsonArray::new();
        for r in &self.rows {
            rows = rows.push_raw(
                &JsonObject::new()
                    .field_str("name", &r.name)
                    .field_f64("measured", r.measured)
                    .field_f64("predicted", r.predicted)
                    .field_f64("abs_dev", r.abs_dev())
                    .field_f64("rel_dev", r.rel_dev())
                    .field_str("tolerance", &r.tol.describe())
                    .field_str("status", if r.pass() { "pass" } else { "FAIL" })
                    .finish(),
            );
        }
        JsonObject::new()
            .field_str("schema", "distconv-conformance-v1")
            .field_str("status", if self.pass() { "pass" } else { "FAIL" })
            .field_json("rows", &RawJson(rows.finish()))
            .finish()
    }
}

struct RawJson(String);
impl distconv_cost::ToJson for RawJson {
    fn to_json(&self) -> String {
        self.0.clone()
    }
}

impl std::fmt::Display for ConformanceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<34}  {:>16}  {:>16}  {:>10}  {:>11}  {:>6}",
            "row", "measured", "predicted", "rel_dev", "tolerance", "status"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<34}  {:>16}  {:>16}  {:>10.3e}  {:>11}  {:>6}",
                r.name,
                r.measured,
                r.predicted,
                r.rel_dev(),
                r.tol.describe(),
                if r.pass() { "pass" } else { "FAIL" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_rows_demand_equality() {
        assert!(ConformanceRow::new("a", 100.0, 100.0, Tolerance::Exact).pass());
        assert!(!ConformanceRow::new("a", 100.0, 101.0, Tolerance::Exact).pass());
    }

    #[test]
    fn relative_rows_allow_the_stated_slack() {
        let row = |m| ConformanceRow::new("r", m, 1000.0, Tolerance::Relative(0.05));
        assert!(row(1050.0).pass());
        assert!(row(950.0).pass());
        assert!(!row(1051.0).pass());
        assert!((row(1050.0).rel_dev() - 0.05).abs() < 1e-12);
        assert_eq!(row(1050.0).abs_dev(), 50.0);
    }

    #[test]
    fn upper_bound_rows_are_one_sided() {
        assert!(ConformanceRow::new("u", 10.0, 100.0, Tolerance::UpperBound).pass());
        assert!(ConformanceRow::new("u", 100.0, 100.0, Tolerance::UpperBound).pass());
        assert!(!ConformanceRow::new("u", 100.1, 100.0, Tolerance::UpperBound).pass());
    }

    #[test]
    fn report_names_the_failing_row() {
        let mut rep = ConformanceReport::new();
        rep.push(ConformanceRow::new("good", 5.0, 5.0, Tolerance::Exact));
        rep.push(ConformanceRow::new("bad-row", 6.0, 5.0, Tolerance::Exact));
        assert!(!rep.pass());
        let fails = rep.failures();
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].name, "bad-row");
        let text = rep.to_string();
        assert!(text.contains("bad-row"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
    }

    #[test]
    fn json_roundtrips_through_the_in_tree_parser() {
        use distconv_cost::json::JsonValue;
        let mut rep = ConformanceReport::new();
        rep.push(ConformanceRow::new("x", 4.0, 4.0, Tolerance::Exact));
        let v = JsonValue::parse(&rep.to_json()).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("distconv-conformance-v1")
        );
        assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("pass"));
        let rows = v.get("rows").and_then(|r| r.as_array()).unwrap();
        assert_eq!(rows[0].get("name").and_then(|n| n.as_str()), Some("x"));
    }

    #[test]
    fn rel_dev_guards_divide_by_zero() {
        let r = ConformanceRow::new("z", 3.0, 0.0, Tolerance::Relative(0.1));
        assert_eq!(r.rel_dev(), 3.0);
        assert!(!r.pass());
    }
}

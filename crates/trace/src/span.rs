//! Typed span events: what a rank was doing, stamped with the schedule
//! step it belongs to.

/// The span taxonomy. Declaration order defines the canonical sort
/// order (see [`CanonicalSpan`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A timed local-compute section (`Rank::time_compute`).
    Compute,
    /// A logical point-to-point send (collective edges included — every
    /// collective is built from point-to-point sends). Self-sends are
    /// recorded too, distinguishable by `peer == rank`.
    Send,
    /// A matched message delivery: the payload reached the application.
    Recv,
    /// The blocking wait of a receive (wall-clock duration; the
    /// duration is stripped from the canonical view).
    CommWait,
    /// An ARQ retransmission under fault injection (overhead traffic,
    /// never algorithmic volume).
    Retransmit,
    /// A checkpoint/restart retry boundary, appended by the recovery
    /// layer after a crashed attempt.
    CheckpointRestore,
    /// The virtual-time failure detector flagged a rank (crash,
    /// straggler, or deadlock — `peer` carries the detected rank).
    /// Appended after `CheckpointRestore` so existing canonical digests
    /// of detector-free runs are unchanged.
    FailureDetect,
    /// Degraded-grid recovery moved checkpoint shards onto a shrunken
    /// grid; `elems` is the redistribution volume (overhead traffic,
    /// accounted like ARQ retransmits — never algorithmic volume).
    Redistribute,
}

impl SpanKind {
    /// All kinds, in canonical order.
    pub const ALL: [SpanKind; 8] = [
        SpanKind::Compute,
        SpanKind::Send,
        SpanKind::Recv,
        SpanKind::CommWait,
        SpanKind::Retransmit,
        SpanKind::CheckpointRestore,
        SpanKind::FailureDetect,
        SpanKind::Redistribute,
    ];

    /// Short display name (also the Chrome trace event name).
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::Send => "send",
            SpanKind::Recv => "recv",
            SpanKind::CommWait => "comm-wait",
            SpanKind::Retransmit => "retransmit",
            SpanKind::CheckpointRestore => "checkpoint-restore",
            SpanKind::FailureDetect => "failure-detect",
            SpanKind::Redistribute => "redistribute",
        }
    }
}

/// One recorded span. `step`, `peer`, `tag` and `elems` are
/// deterministic schedule facts; `start_ns`/`dur_ns` are wall-clock
/// (host-dependent) and excluded from the canonical view.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpanEvent {
    /// What the rank was doing.
    pub kind: SpanKind,
    /// Schedule step the span belongs to — the step of the payload it
    /// moves, or the step it computes (stamped by the executors via
    /// `Rank::set_step`, so blocking and pipelined schedules stamp the
    /// same traffic identically).
    pub step: u64,
    /// Peer rank for communication spans (`None` for compute and
    /// checkpoint spans).
    pub peer: Option<usize>,
    /// Message tag for communication spans (0 otherwise).
    pub tag: u64,
    /// Elements moved (0 for compute spans).
    pub elems: u64,
    /// Wall-clock start, nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
}

/// A span with the wall-clock fields stripped, plus the owning rank:
/// the unit of deterministic comparison. Ordered by
/// `(rank, step, kind, peer, tag, elems)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalSpan {
    /// The recording rank.
    pub rank: usize,
    /// Schedule step.
    pub step: u64,
    /// Span kind.
    pub kind: SpanKind,
    /// Peer rank, if any.
    pub peer: Option<usize>,
    /// Message tag.
    pub tag: u64,
    /// Elements moved.
    pub elems: u64,
}

impl CanonicalSpan {
    /// Strip the wall-clock fields off `ev`, attributing it to `rank`.
    pub fn from_event(rank: usize, ev: &SpanEvent) -> Self {
        CanonicalSpan {
            rank,
            step: ev.step,
            kind: ev.kind,
            peer: ev.peer,
            tag: ev.tag,
            elems: ev.elems,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        let names: Vec<_> = SpanKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "compute",
                "send",
                "recv",
                "comm-wait",
                "retransmit",
                "checkpoint-restore",
                "failure-detect",
                "redistribute"
            ]
        );
    }

    #[test]
    fn canonical_strips_wall_clock() {
        let mk = |start_ns, dur_ns| SpanEvent {
            kind: SpanKind::Send,
            step: 3,
            peer: Some(1),
            tag: 7,
            elems: 100,
            start_ns,
            dur_ns,
        };
        assert_eq!(
            CanonicalSpan::from_event(0, &mk(10, 20)),
            CanonicalSpan::from_event(0, &mk(999, 0)),
        );
    }

    #[test]
    fn canonical_order_is_rank_then_step() {
        let a = CanonicalSpan {
            rank: 0,
            step: 9,
            kind: SpanKind::CheckpointRestore,
            peer: None,
            tag: 0,
            elems: 0,
        };
        let b = CanonicalSpan {
            rank: 1,
            step: 0,
            kind: SpanKind::Compute,
            peer: None,
            tag: 0,
            elems: 0,
        };
        assert!(a < b);
    }
}

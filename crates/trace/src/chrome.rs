//! Chrome trace-event JSON export (the `chrome://tracing` / Perfetto
//! "JSON Array Format"), built on the in-tree `distconv_cost::json`
//! writer — no external serializer, the build stays hermetic.
//!
//! Mapping: one process (`pid` 0) per run, one thread (`tid`) per rank.
//! Spans with a duration (compute, comm-wait) become complete events
//! (`ph: "X"`, `ts`/`dur` in microseconds); point events (send, recv,
//! retransmit, checkpoint-restore) become thread-scoped instants
//! (`ph: "i"`, `s: "t"`). Schedule facts travel in `args`.

use crate::span::{SpanEvent, SpanKind};
use crate::trace::RunTrace;
use distconv_cost::json::{JsonArray, JsonObject};
use distconv_cost::ToJson;

/// `args` payload of one exported event.
struct SpanArgs<'a>(&'a SpanEvent);

impl ToJson for SpanArgs<'_> {
    fn to_json(&self) -> String {
        let ev = self.0;
        let mut o = JsonObject::new()
            .field_usize("step", ev.step as usize)
            .field_usize("elems", ev.elems as usize);
        if let Some(peer) = ev.peer {
            o = o
                .field_usize("peer", peer)
                .field_usize("tag", ev.tag as usize);
        }
        o.finish()
    }
}

fn event_json(rank: usize, ev: &SpanEvent) -> String {
    let durational = matches!(ev.kind, SpanKind::Compute | SpanKind::CommWait);
    let mut o = JsonObject::new()
        .field_str("name", ev.kind.name())
        .field_str("cat", "distconv")
        .field_str("ph", if durational { "X" } else { "i" })
        .field_usize("pid", 0)
        .field_usize("tid", rank)
        .field_f64("ts", ev.start_ns as f64 / 1e3);
    if durational {
        o = o.field_f64("dur", ev.dur_ns as f64 / 1e3);
    } else {
        o = o.field_str("s", "t");
    }
    o.field_json("args", &SpanArgs(ev)).finish()
}

impl RunTrace {
    /// Export the timeline as Chrome trace-event JSON. Open the file in
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn to_chrome_json(&self) -> String {
        let mut events = JsonArray::new();
        for r in &self.per_rank {
            for ev in &r.events {
                events = events.push_raw(&event_json(r.rank, ev));
            }
        }
        JsonObject::new()
            .field_str("displayTimeUnit", "ms")
            .field_raw_into("traceEvents", events.finish())
            .finish()
    }
}

/// Append a pre-rendered JSON value as an object field. Lives here (as
/// a tiny extension trait) rather than in `distconv_cost::json` to keep
/// that writer's surface minimal.
trait FieldRaw {
    fn field_raw_into(self, name: &str, rendered: String) -> Self;
}

impl FieldRaw for JsonObject {
    fn field_raw_into(self, name: &str, rendered: String) -> Self {
        struct Raw(String);
        impl ToJson for Raw {
            fn to_json(&self) -> String {
                self.0.clone()
            }
        }
        self.field_json(name, &Raw(rendered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;
    use distconv_cost::json::JsonValue;

    fn sample_trace() -> RunTrace {
        let t = Tracer::new(2, 16);
        t.record(
            0,
            SpanEvent {
                kind: SpanKind::Compute,
                step: 0,
                peer: None,
                tag: 0,
                elems: 0,
                start_ns: 1_000,
                dur_ns: 2_500,
            },
        );
        t.record(
            0,
            SpanEvent {
                kind: SpanKind::Send,
                step: 1,
                peer: Some(1),
                tag: 42,
                elems: 64,
                start_ns: 4_000,
                dur_ns: 0,
            },
        );
        t.record(
            1,
            SpanEvent {
                kind: SpanKind::CommWait,
                step: 1,
                peer: Some(0),
                tag: 42,
                elems: 64,
                start_ns: 500,
                dur_ns: 3_700,
            },
        );
        t.into_run_trace()
    }

    #[test]
    fn export_parses_and_has_one_event_per_span() {
        let json = sample_trace().to_chrome_json();
        let v = JsonValue::parse(&json).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 3);
        assert_eq!(
            v.get("displayTimeUnit").and_then(|d| d.as_str()),
            Some("ms")
        );
    }

    #[test]
    fn durational_and_instant_phases() {
        let json = sample_trace().to_chrome_json();
        let v = JsonValue::parse(&json).unwrap();
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let compute = &events[0];
        assert_eq!(compute.get("ph").and_then(|p| p.as_str()), Some("X"));
        assert_eq!(compute.get("ts").and_then(|t| t.as_f64()), Some(1.0));
        assert_eq!(compute.get("dur").and_then(|d| d.as_f64()), Some(2.5));
        let send = &events[1];
        assert_eq!(send.get("ph").and_then(|p| p.as_str()), Some("i"));
        assert_eq!(send.get("s").and_then(|s| s.as_str()), Some("t"));
        assert_eq!(send.get("tid").and_then(|t| t.as_f64()), Some(0.0));
        let wait = &events[2];
        assert_eq!(wait.get("tid").and_then(|t| t.as_f64()), Some(1.0));
        assert_eq!(wait.get("name").and_then(|n| n.as_str()), Some("comm-wait"));
    }

    #[test]
    fn args_carry_schedule_facts() {
        let json = sample_trace().to_chrome_json();
        let v = JsonValue::parse(&json).unwrap();
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let args = events[1].get("args").expect("args object");
        assert_eq!(args.get("step").and_then(|s| s.as_f64()), Some(1.0));
        assert_eq!(args.get("peer").and_then(|p| p.as_f64()), Some(1.0));
        assert_eq!(args.get("elems").and_then(|e| e.as_f64()), Some(64.0));
        // Compute spans have no peer/tag.
        assert!(events[0].get("args").unwrap().get("peer").is_none());
    }
}

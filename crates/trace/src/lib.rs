//! # distconv-trace
//!
//! Low-overhead structured tracing for the simulated machine, plus the
//! cost-model conformance checker that compares measured traffic
//! against the paper's Eq. 4/6–9 predictions.
//!
//! Every rank records typed [`SpanEvent`]s (compute / send / recv /
//! comm-wait / retransmit / checkpoint-restore) into its own slot of a
//! shared [`Tracer`] — one ring buffer per rank, written only by the
//! owning rank thread, so recording is an uncontended mutex lock plus a
//! vector write. At `Machine::run` exit the buffers are drained into a
//! [`RunTrace`] carried on the run report.
//!
//! Two views are deliberately separated, mirroring the
//! `StatsSnapshot` / `TimingSnapshot` split in simnet:
//!
//! * the **canonical** view ([`RunTrace::canonical`]) strips wall-clock
//!   fields and sorts spans by `(rank, step, kind, peer, tag, elems)` —
//!   deterministic across thread counts and comm modes, compared
//!   bit-for-bit by the determinism suites and digested for goldens;
//! * the **timeline** view ([`RunTrace::to_chrome_json`]) keeps the
//!   wall-clock fields and exports Chrome trace-event JSON (open in
//!   `chrome://tracing` or Perfetto), built with the in-tree
//!   `distconv_cost::json` writer so the build stays hermetic.
//!
//! The [`conformance`] module turns measured volumes and analytic
//! predictions into a typed pass/fail report with absolute and relative
//! deviations, wired into the golden/repro suites so a
//! communication-volume regression fails CI with a named row instead of
//! a diffed total.

#![warn(missing_docs)]

pub mod chrome;
pub mod conformance;
pub mod span;
pub mod trace;

pub use conformance::{ConformanceReport, ConformanceRow, Tolerance};
pub use span::{CanonicalSpan, SpanEvent, SpanKind};
pub use trace::{RankTrace, RunTrace, TraceConfig, Tracer};

//! The shared tracer (per-rank ring buffers, written during the run)
//! and the merged [`RunTrace`] (read after the run).

use crate::span::{CanonicalSpan, SpanEvent, SpanKind};
use std::sync::Mutex;
use std::time::Instant;

/// Tracing configuration, carried on the machine config.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record spans at all. On by default: the per-event cost is one
    /// `Instant::now` plus an uncontended lock, under the documented
    /// <5% overhead budget on the bench_comm representative layer.
    pub enabled: bool,
    /// Ring capacity per rank, in events. When a rank exceeds it, the
    /// *oldest* events are overwritten and the drop is counted — the
    /// conformance cross-check refuses to run on a wrapped trace.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: true,
            capacity: 1 << 16,
        }
    }
}

impl TraceConfig {
    /// A disabled tracer (no recording, empty trace on the report).
    pub fn off() -> Self {
        TraceConfig {
            enabled: false,
            capacity: 0,
        }
    }
}

/// One rank's ring: newest `capacity` events, oldest overwritten first.
struct Ring {
    events: Vec<SpanEvent>,
    /// Index of the logical start when the ring has wrapped.
    head: usize,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            events: Vec::new(),
            head: 0,
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    fn push(&mut self, ev: SpanEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn into_ordered(mut self) -> (Vec<SpanEvent>, u64) {
        self.events.rotate_left(self.head);
        (self.events, self.dropped)
    }
}

/// The shared recording side: one ring per rank plus the wall-clock
/// epoch. Only the owning rank thread writes a given ring, so the
/// per-ring mutex is uncontended during the run.
pub struct Tracer {
    start: Instant,
    rings: Vec<Mutex<Ring>>,
}

impl Tracer {
    /// A tracer for `p` ranks with per-rank ring `capacity`.
    pub fn new(p: usize, capacity: usize) -> Self {
        Tracer {
            start: Instant::now(),
            rings: (0..p).map(|_| Mutex::new(Ring::new(capacity))).collect(),
        }
    }

    /// Nanoseconds since this tracer's epoch.
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Record `ev` on behalf of `rank`.
    pub fn record(&self, rank: usize, ev: SpanEvent) {
        self.rings[rank]
            .lock()
            .expect("tracer ring poisoned")
            .push(ev);
    }

    /// Drain every ring into the merged post-run view.
    pub fn into_run_trace(self) -> RunTrace {
        RunTrace {
            per_rank: self
                .rings
                .into_iter()
                .enumerate()
                .map(|(rank, ring)| {
                    let (events, dropped) = ring
                        .into_inner()
                        .expect("tracer ring poisoned")
                        .into_ordered();
                    RankTrace {
                        rank,
                        events,
                        dropped,
                    }
                })
                .collect(),
        }
    }
}

/// One rank's recorded spans, in program order (oldest surviving event
/// first), plus how many events the ring overwrote.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankTrace {
    /// The recording rank.
    pub rank: usize,
    /// Surviving events in recording order.
    pub events: Vec<SpanEvent>,
    /// Events overwritten because the ring wrapped.
    pub dropped: u64,
}

/// The merged per-run trace, carried on `RunReport`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunTrace {
    /// Per-rank traces, indexed by rank id. Empty when tracing was
    /// disabled.
    pub per_rank: Vec<RankTrace>,
}

impl RunTrace {
    /// An empty trace for `p` ranks (tracing disabled).
    pub fn empty(p: usize) -> Self {
        RunTrace {
            per_rank: (0..p)
                .map(|rank| RankTrace {
                    rank,
                    ..RankTrace::default()
                })
                .collect(),
        }
    }

    /// True when no spans were recorded (tracing off or a no-op run).
    pub fn is_empty(&self) -> bool {
        self.per_rank.iter().all(|r| r.events.is_empty())
    }

    /// Total events across ranks.
    pub fn len(&self) -> usize {
        self.per_rank.iter().map(|r| r.events.len()).sum()
    }

    /// Total ring-wrap drops across ranks. Nonzero means sums over the
    /// trace undercount the run; raise `TraceConfig::capacity`.
    pub fn total_dropped(&self) -> u64 {
        self.per_rank.iter().map(|r| r.dropped).sum()
    }

    /// Append a post-run event (e.g. a checkpoint-restore marker from
    /// the recovery layer) to `rank`'s trace.
    pub fn push(&mut self, rank: usize, ev: SpanEvent) {
        if let Some(r) = self.per_rank.get_mut(rank) {
            r.events.push(ev);
        }
    }

    /// The deterministic view: every span with wall-clock fields
    /// stripped, sorted by `(rank, step, kind, peer, tag, elems)`.
    /// Identical across thread counts and comm modes for the same
    /// schedule — the pipelined executors stamp traffic with the step
    /// of the payload it carries, not the step they happen to post in.
    pub fn canonical(&self) -> Vec<CanonicalSpan> {
        let mut out: Vec<CanonicalSpan> = self
            .per_rank
            .iter()
            .flat_map(|r| {
                r.events
                    .iter()
                    .map(|ev| CanonicalSpan::from_event(r.rank, ev))
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// FNV-1a digest of the canonical view — a one-number golden for
    /// trace-regression checks.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1000_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for s in self.canonical() {
            eat(s.rank as u64);
            eat(s.step);
            eat(s.kind as u64);
            eat(s.peer.map_or(u64::MAX, |p| p as u64));
            eat(s.tag);
            eat(s.elems);
        }
        h
    }

    /// Elements `rank` sent to *other* ranks according to the trace
    /// (self-sends excluded) — cross-checked against the machine's
    /// `StatsSnapshot::per_rank_elems` by the conformance layer.
    pub fn sent_elems(&self, rank: usize) -> u64 {
        self.per_rank
            .get(rank)
            .map(|r| {
                r.events
                    .iter()
                    .filter(|e| e.kind == SpanKind::Send && e.peer != Some(rank))
                    .map(|e| e.elems)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Per-rank, per-kind flat metrics table: count, elements and
    /// wall-clock nanoseconds per `(rank, kind)`.
    pub fn metrics_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>4}  {:<18}  {:>8}  {:>12}  {:>14}",
            "rank", "kind", "count", "elems", "wall_ns"
        );
        for r in &self.per_rank {
            for kind in SpanKind::ALL {
                let (mut count, mut elems, mut ns) = (0u64, 0u64, 0u64);
                for e in r.events.iter().filter(|e| e.kind == kind) {
                    count += 1;
                    elems += e.elems;
                    ns += e.dur_ns;
                }
                if count > 0 {
                    let _ = writeln!(
                        out,
                        "{:>4}  {:<18}  {:>8}  {:>12}  {:>14}",
                        r.rank,
                        kind.name(),
                        count,
                        elems,
                        ns
                    );
                }
            }
            if r.dropped > 0 {
                let _ = writeln!(out, "{:>4}  (ring dropped {} events)", r.rank, r.dropped);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: SpanKind, step: u64, peer: Option<usize>, elems: u64) -> SpanEvent {
        SpanEvent {
            kind,
            step,
            peer,
            tag: 1,
            elems,
            start_ns: 5,
            dur_ns: 9,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut ring = Ring::new(3);
        for step in 0..5 {
            ring.push(ev(SpanKind::Send, step, Some(1), 10));
        }
        let (events, dropped) = ring.into_ordered();
        assert_eq!(dropped, 2);
        assert_eq!(
            events.iter().map(|e| e.step).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest overwritten, survivors in order"
        );
    }

    #[test]
    fn tracer_merges_per_rank_in_order() {
        let t = Tracer::new(2, 16);
        t.record(1, ev(SpanKind::Compute, 0, None, 0));
        t.record(0, ev(SpanKind::Send, 0, Some(1), 4));
        t.record(1, ev(SpanKind::Recv, 0, Some(0), 4));
        let trace = t.into_run_trace();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.per_rank[0].events.len(), 1);
        assert_eq!(trace.per_rank[1].events.len(), 2);
        assert_eq!(trace.per_rank[1].events[0].kind, SpanKind::Compute);
        assert_eq!(trace.total_dropped(), 0);
    }

    #[test]
    fn canonical_is_mode_order_independent() {
        // Same spans recorded in different program order (as a blocking
        // vs pipelined schedule would) canonicalize identically.
        let blocking = {
            let t = Tracer::new(1, 16);
            t.record(0, ev(SpanKind::Compute, 0, None, 0));
            t.record(0, ev(SpanKind::Send, 1, Some(1), 8));
            t.into_run_trace()
        };
        let overlapped = {
            let t = Tracer::new(1, 16);
            t.record(0, ev(SpanKind::Send, 1, Some(1), 8));
            t.record(0, ev(SpanKind::Compute, 0, None, 0));
            t.into_run_trace()
        };
        assert_eq!(blocking.canonical(), overlapped.canonical());
        assert_eq!(blocking.digest(), overlapped.digest());
    }

    #[test]
    fn digest_sees_schedule_changes_not_wall_clock() {
        let mk = |elems, dur_ns| {
            let t = Tracer::new(1, 16);
            t.record(
                0,
                SpanEvent {
                    dur_ns,
                    ..ev(SpanKind::Send, 0, Some(1), elems)
                },
            );
            t.into_run_trace()
        };
        assert_eq!(mk(8, 1).digest(), mk(8, 999).digest());
        assert_ne!(mk(8, 1).digest(), mk(9, 1).digest());
    }

    #[test]
    fn sent_elems_excludes_self_sends() {
        let t = Tracer::new(2, 16);
        t.record(0, ev(SpanKind::Send, 0, Some(1), 10));
        t.record(0, ev(SpanKind::Send, 0, Some(0), 99)); // self-copy
        t.record(0, ev(SpanKind::Recv, 0, Some(1), 7)); // not a send
        let trace = t.into_run_trace();
        assert_eq!(trace.sent_elems(0), 10);
        assert_eq!(trace.sent_elems(1), 0);
    }

    #[test]
    fn metrics_table_aggregates_by_kind() {
        let t = Tracer::new(1, 16);
        t.record(0, ev(SpanKind::Send, 0, Some(1), 10));
        t.record(0, ev(SpanKind::Send, 1, Some(1), 10));
        let table = t.into_run_trace().metrics_table();
        assert!(table.contains("send"), "{table}");
        assert!(table.contains("20"), "summed elems: {table}");
        assert!(!table.contains("compute"), "absent kinds omitted: {table}");
    }

    #[test]
    fn empty_trace_shape() {
        let trace = RunTrace::empty(3);
        assert!(trace.is_empty());
        assert_eq!(trace.per_rank.len(), 3);
        assert_eq!(trace.per_rank[2].rank, 2);
        assert_eq!(trace.canonical(), vec![]);
    }

    #[test]
    fn push_appends_post_run_events() {
        let mut trace = RunTrace::empty(2);
        trace.push(
            1,
            SpanEvent {
                kind: SpanKind::CheckpointRestore,
                step: 0,
                peer: None,
                tag: 0,
                elems: 123,
                start_ns: 0,
                dur_ns: 0,
            },
        );
        assert_eq!(trace.per_rank[1].events.len(), 1);
        assert_eq!(trace.canonical()[0].elems, 123);
    }
}

//! # distconv-simnet
//!
//! A distributed-memory machine **simulator**: the substrate the paper's
//! algorithms run on in this reproduction (substituting for an MPI
//! cluster, per DESIGN.md §2).
//!
//! ## Model
//!
//! A [`Machine`] runs `P` *ranks*, one OS thread each. Ranks share
//! **nothing**: each gets a [`Rank`] handle whose only inter-rank
//! facility is explicit message passing ([`Rank::send`] /
//! [`Rank::recv`]), exactly the partitioned-memory semantics of the
//! paper's Sec. 2.2. On top of point-to-point messages,
//! [`Communicator`] provides MPI-style collectives (broadcast, reduce,
//! all-reduce, gather, scatter, all-gather, reduce-scatter, barrier,
//! all-to-all) implemented with standard tree/ring algorithms — so
//! measured communication *volumes* are those of a real MPI stack.
//!
//! ## What is measured
//!
//! * [`Stats`] counts every point-to-point message and every element it
//!   carries, globally and per rank. Collectives are built from p2p
//!   sends, so their cost is accounted automatically and honestly.
//! * [`MemoryTracker`] meters per-rank live allocations against a
//!   capacity `M_D`; exceeding it fails the run — this is how Eq. 11's
//!   memory-feasibility claims are *checked*, not assumed.
//! * An α–β time model ([`CostParams`]) converts per-rank message/volume
//!   counters into simulated seconds for who-wins comparisons.
//!
//! ## Fault injection
//!
//! A seeded [`FaultPlan`] attached to [`MachineConfig`] deterministically
//! drops, duplicates, delays or reorders messages, crashes a rank at its
//! Nth send, or slows one rank by a straggler factor — all decided by a
//! SplitMix64 hash of the seed, so every chaos run replays exactly. An
//! ARQ reliable-delivery mode makes collectives survive link faults
//! bit-identically, with retransmit/ack traffic accounted separately
//! ([`FaultTraffic`]) from the algorithmic counters. [`Machine::try_run`]
//! aggregates every rank failure into a [`RunError`] for recovery
//! machinery upstream. See DESIGN.md §6 ("Fault model").
//!
//! ## Topology
//!
//! [`CartGrid`] gives the logical multi-dimensional processor view of
//! Sec. 2.2 (`P_b × P_k × P_c × P_h × P_w` for CNNs, 2-D/3-D grids for
//! the matmul analogs), with fiber sub-communicators along any subset of
//! dimensions (the "broadcast along the `k` dimension" operations of the
//! paper's communication schedule).

#![warn(missing_docs)]

pub mod channel;
pub mod comm;
pub mod detect;
pub mod event;
pub mod fault;
pub mod grid;
pub mod machine;
pub mod memory;
pub mod rank;
pub mod stats;

pub use comm::{BcastAlgo, CommError, Communicator, PendingBcast, PendingRecv};
pub use detect::{Detection, DetectionKind, DetectorConfig};
pub use event::{Backend, ComputeModel};
pub use fault::{CrashAt, FaultPlan, FaultPlanError, Straggler, CRASH_MARKER, MAX_SEND_ATTEMPTS};
pub use grid::CartGrid;
pub use machine::{
    FailureKind, LinkDelay, Machine, MachineConfig, RankFailure, RunError, RunReport,
};
pub use memory::{MemLease, MemoryError, MemoryTracker};
pub use rank::{Msg, Rank, RankId, RecvHandle, SendHandle, Tag, TrafficClass};
pub use stats::{CostParams, FaultTraffic, RedistTraffic, Stats, StatsSnapshot, TimingSnapshot};

//! An in-tree unbounded channel (`Mutex` + `Condvar`), replacing
//! `crossbeam::channel` — part of the workspace's hermeticity policy.
//!
//! Only what the simulator needs is implemented:
//!
//! * [`unbounded`] construction, one mailbox per rank;
//! * [`Sender`] is `Clone + Send + Sync` — every rank holds a shared
//!   reference to every other rank's sender and may send concurrently;
//! * [`Receiver::recv_timeout`] with crossbeam-compatible
//!   [`RecvTimeoutError`] semantics: `Timeout` on deadline expiry (the
//!   deadlock trap depends on it), `Disconnected` once every sender is
//!   dropped **and** the queue is drained — messages sent before a
//!   sender vanished must still be deliverable.
//!
//! The queue is FIFO, which together with per-thread program order
//! gives the per-`(src, tag)` FIFO guarantee [`crate::Rank::recv`]
//! documents.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error from [`Sender::send`]: the receiver is gone. Carries the
/// unsent message back to the caller, like crossbeam/std.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error from [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Deadline expired with no message available.
    Timeout,
    /// All senders dropped and the queue is empty: nothing can ever
    /// arrive again.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    nonempty: Condvar,
}

/// The sending half. Cloning increments the sender count; the receiver
/// reports `Disconnected` only after every clone is dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half (single consumer in this workspace).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        nonempty: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue `msg`. Fails only if the receiver was dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock().expect("channel poisoned");
        if !st.receiver_alive {
            return Err(SendError(msg));
        }
        st.queue.push_back(msg);
        drop(st);
        self.shared.nonempty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel poisoned").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("channel poisoned");
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            // Wake a blocked receiver so it can observe disconnection.
            self.shared.nonempty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared
            .state
            .lock()
            .expect("channel poisoned")
            .receiver_alive = false;
    }
}

/// Error from [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// All senders dropped and the queue is empty.
    Disconnected,
}

impl<T> Receiver<T> {
    /// Dequeue the next message if one is already queued, without
    /// blocking. The reliable transport uses this to drain acknowledged
    /// traffic opportunistically between sends.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.state.lock().expect("channel poisoned");
        if let Some(msg) = st.queue.pop_front() {
            return Ok(msg);
        }
        if st.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Dequeue the next message, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = st.queue.pop_front() {
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _wait) = self
                .shared
                .nonempty
                .wait_timeout(st, remaining)
                .expect("channel poisoned");
            st = guard;
            // Loop re-checks queue/senders/deadline; spurious wakeups
            // and timeout races both resolve correctly there.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn send_then_recv() {
        let (tx, rx) = unbounded();
        tx.send(5u32).unwrap();
        tx.send(6).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(5));
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(6));
    }

    #[test]
    fn timeout_when_empty() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnected_after_all_senders_drop_and_queue_drained() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1u8).unwrap();
        drop(tx);
        // A clone still alive: not disconnected even when drained later.
        tx2.send(2).unwrap();
        drop(tx2);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9u8), Err(SendError(9)));
    }

    #[test]
    fn try_recv_never_blocks() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(3u8).unwrap();
        assert_eq!(rx.try_recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocked_receiver_wakes_on_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        tx.send(42u64).unwrap();
        assert_eq!(h.join().unwrap(), Ok(42));
    }

    #[test]
    fn blocked_receiver_wakes_on_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        let h = std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn concurrent_senders_preserve_all_messages() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(t * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv_timeout(Duration::from_millis(100)) {
            got.push(v);
        }
        assert_eq!(got.len(), 800);
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 800, "no message lost or duplicated");
    }
}

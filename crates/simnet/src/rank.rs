//! The per-rank execution context: typed point-to-point messaging.
//!
//! A [`Rank`] is handed to each simulated processor's closure by
//! [`crate::Machine::run`]. It owns the rank's mailbox and is the *only*
//! channel to other ranks — the partitioned-memory model. Matching is
//! MPI-like: [`Rank::recv`] blocks for a message with a given
//! `(source, tag)`; messages that arrive out of order are parked in an
//! unexpected-message queue, preserving per-(src, tag) FIFO order.
//!
//! A receive that waits longer than the machine's configured timeout
//! panics with a diagnostic — the simulator's deadlock trap. A mismatched
//! collective or a wrong schedule therefore fails loudly instead of
//! hanging the test suite.
//!
//! ## Fault-aware transport
//!
//! When the machine's [`FaultPlan`] is not a no-op, sends route through a
//! fault layer (see [`crate::fault`] for the model):
//!
//! * link faults (drop / duplicate / delay / reorder) are decided by a
//!   deterministic hash of `(seed, src, dst, wire-sequence)`;
//! * under [`FaultPlan::reliable`], every logical message carries a
//!   per-`(pair, tag)` sequence number and is pushed through an ARQ:
//!   dropped copies are retransmitted with exponential backoff in
//!   simulated time, receivers acknowledge every delivered copy and
//!   suppress duplicates, and `recv` re-assembles FIFO order from the
//!   sequence numbers — so collectives survive any link-fault plan
//!   bit-identically;
//! * without `reliable`, faults hit the raw transport: a dropped message
//!   surfaces as a deadlock trap, a duplicate or reorder as silent
//!   corruption downstream — the failure modes the chaos suite exists to
//!   demonstrate.
//!
//! Retransmit/ack/duplicate traffic is recorded in
//! [`crate::stats::FaultTraffic`], never in the algorithmic counters:
//! the logical (attempt-0) send is what `record_send` sees, so volume
//! tables match the fault-free run even under heavy fault plans.
//! Loopback (self-)sends never fault: they model a local copy, not the
//! network. With an all-zero plan the transport takes the exact
//! pre-fault code path.

use crate::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use crate::event::{ComputeModel, EventScheduler};
use crate::fault::{FaultPlan, CRASH_MARKER, MAX_SEND_ATTEMPTS};
use crate::machine::{LinkDelay, MachineConfig};
use crate::memory::MemoryTracker;
use crate::stats::{CostParams, Stats};
use distconv_trace::{SpanEvent, SpanKind, Tracer};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Rank identifier: `0..P` within a [`crate::Machine`] run.
pub type RankId = usize;

/// Message tag. User point-to-point tags must keep the top bit clear;
/// tags with the top bit set are reserved for collectives.
pub type Tag = u64;

/// Element types that can travel in messages: plain old data with an
/// additive reduction (enough for every algorithm in the workspace; the
/// reduction is only exercised by reduce-style collectives).
pub trait Msg: Copy + Send + Default + std::ops::AddAssign + 'static {}
impl<T: Copy + Send + Default + std::ops::AddAssign + 'static> Msg for T {}

/// What a physical packet is carrying.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PacketKind {
    /// A payload-bearing message.
    Data,
    /// An (empty) acknowledgement under the reliable transport. Pure
    /// traffic: the ARQ's control decisions are computed analytically on
    /// both sides from the shared fault hash, so receivers of an ack
    /// discard it on sight.
    Ack,
}

/// A message in flight. Carries the sender's logical clock at
/// transmission time (after the α–β cost of this send), implementing a
/// Lamport-style communication makespan: the receiver's clock advances
/// to at least the arrival time.
#[derive(Clone, Debug)]
pub(crate) struct Packet<T> {
    pub src: RankId,
    pub tag: Tag,
    pub data: Vec<T>,
    pub sent_at: f64,
    /// Wall-clock transmit instant — stamped and consulted only when the
    /// machine's [`crate::LinkDelay`] emulation is on (thread backend).
    /// `None` everywhere else: on the event backend time is *virtual*,
    /// so a wall-clock stamp would be meaningless — retransmit backoff
    /// and delivery eligibility are derived from `sent_at` (the α–β
    /// Lamport clock) instead.
    pub sent_wall: Option<std::time::Instant>,
    pub kind: PacketKind,
    /// Per-`(src → dst, tag)` sequence number: FIFO reassembly and
    /// duplicate suppression under the reliable transport.
    pub seq: u64,
    /// Per-`(src → dst)` wire sequence: the key of every fault decision.
    pub wire: u64,
    /// ARQ attempt index this physical copy was transmitted on.
    pub attempt: u32,
}

/// Which accounting bucket a rank's subsequent sends belong to.
///
/// The paper's volume claims are stated per layer, so multi-layer
/// executors switch to [`TrafficClass::Redistribution`] around the
/// inter-layer shard exchange: those sends land in
/// [`crate::stats::RedistTraffic`] (and record `Redistribute` trace
/// spans) instead of the algorithmic counters, keeping per-layer
/// volumes Eq-exact. Transport, clocks, fault injection, and ARQ are
/// identical for both classes — only accounting and span kind differ.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TrafficClass {
    /// Per-layer algorithmic traffic (the default).
    #[default]
    Algorithmic,
    /// Inter-layer redistribution traffic.
    Redistribution,
}

/// One simulated processor's execution context.
pub struct Rank<T: Msg> {
    id: RankId,
    size: usize,
    senders: Arc<Vec<Sender<Packet<T>>>>,
    rx: Receiver<Packet<T>>,
    pending: RefCell<VecDeque<Packet<T>>>,
    stats: Arc<Stats>,
    mem: MemoryTracker,
    timeout: Duration,
    cost: CostParams,
    link: LinkDelay,
    faults: FaultPlan,
    /// Cached straggler clock multiplier for this rank (1.0 normally).
    straggle: f64,
    /// Cached crash trigger: this rank dies at its Nth send (1-based).
    crash_at: Option<u64>,
    /// Logical sends issued so far (crash-trigger counter).
    send_count: Cell<u64>,
    /// Next outgoing sequence number per `(dst, tag)`.
    send_seq: RefCell<HashMap<(RankId, Tag), u64>>,
    /// Next expected incoming sequence number per `(src, tag)`.
    recv_next: RefCell<HashMap<(RankId, Tag), u64>>,
    /// Next wire sequence per destination (fault-decision key).
    wire_seq: RefCell<HashMap<RankId, u64>>,
    /// Held-back (reorder-faulted) physical packets per destination.
    holdback: RefCell<HashMap<RankId, Vec<Packet<T>>>>,
    /// Logical communication clock (seconds of simulated network time
    /// this rank has accumulated). Advanced by α+β·n per send, and to
    /// the arrival time on each receive — a Lamport makespan clock.
    clock: Cell<f64>,
    /// Shared span tracer (`None` when tracing is disabled).
    tracer: Option<Arc<Tracer>>,
    /// Cooperative scheduler of the discrete-event backend (`None` on
    /// the thread backend — blocking receives use the OS instead).
    sched: Option<Arc<EventScheduler>>,
    /// Virtual-clock charge for compute sections (default: free).
    compute: ComputeModel,
    /// Current schedule step, stamped onto every recorded span.
    /// Executors advance it via [`Rank::set_step`] so that blocking and
    /// pipelined schedules stamp the same traffic with the same step.
    step: Cell<u64>,
    /// Accounting bucket for subsequent sends (see [`TrafficClass`]).
    traffic_class: Cell<TrafficClass>,
}

impl<T: Msg> Rank<T> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: RankId,
        size: usize,
        senders: Arc<Vec<Sender<Packet<T>>>>,
        rx: Receiver<Packet<T>>,
        stats: Arc<Stats>,
        mem: MemoryTracker,
        cfg: &MachineConfig,
        tracer: Option<Arc<Tracer>>,
        sched: Option<Arc<EventScheduler>>,
    ) -> Self {
        Rank {
            id,
            size,
            senders,
            rx,
            pending: RefCell::new(VecDeque::new()),
            stats,
            mem,
            timeout: cfg.recv_timeout,
            cost: cfg.cost,
            link: cfg.link,
            faults: cfg.faults,
            straggle: cfg.faults.straggle_factor(id),
            crash_at: cfg.faults.crashes_at(id),
            send_count: Cell::new(0),
            send_seq: RefCell::new(HashMap::new()),
            recv_next: RefCell::new(HashMap::new()),
            wire_seq: RefCell::new(HashMap::new()),
            holdback: RefCell::new(HashMap::new()),
            clock: Cell::new(0.0),
            tracer,
            sched,
            compute: cfg.compute,
            step: Cell::new(0),
            traffic_class: Cell::new(TrafficClass::Algorithmic),
        }
    }

    /// This rank's current logical communication clock (seconds).
    pub fn clock(&self) -> f64 {
        self.clock.get()
    }

    /// Wall-clock stamp for an outgoing packet: taken only when the
    /// [`LinkDelay`] emulation will actually read it. With emulation
    /// off — the event backend's normal configuration — packets carry
    /// no wall time at all: the clock is virtual, retransmit timing is
    /// analytic, and `Instant::now()` per packet would be a pointless
    /// syscall on the hot path. When `LinkDelay` is explicitly on it
    /// still sleeps real time on either backend (DESIGN.md §10).
    fn wall_stamp(&self) -> Option<std::time::Instant> {
        (!self.link.is_off()).then(std::time::Instant::now)
    }

    /// Set the schedule step stamped onto subsequently recorded spans.
    /// Pipelined executors call this with the step of the *payload*
    /// being posted or awaited, keeping canonical traces identical to
    /// the blocking schedule's. No-op semantics aside from tracing.
    pub fn set_step(&self, step: u64) {
        self.step.set(step);
    }

    /// The schedule step currently stamped onto recorded spans.
    pub fn current_step(&self) -> u64 {
        self.step.get()
    }

    /// Set the accounting bucket for subsequent sends. Multi-layer
    /// executors switch to [`TrafficClass::Redistribution`] around the
    /// inter-layer exchange and back afterwards; everything else leaves
    /// the default [`TrafficClass::Algorithmic`] untouched.
    pub fn set_traffic_class(&self, class: TrafficClass) {
        self.traffic_class.set(class);
    }

    /// The accounting bucket currently applied to sends.
    pub fn traffic_class(&self) -> TrafficClass {
        self.traffic_class.get()
    }

    /// Nanoseconds since the tracer epoch (0 with tracing disabled).
    fn trace_now(&self) -> u64 {
        self.tracer.as_ref().map_or(0, |t| t.now_ns())
    }

    /// Record a span for this rank (no-op with tracing disabled).
    fn trace_span(
        &self,
        kind: SpanKind,
        peer: Option<RankId>,
        tag: Tag,
        elems: u64,
        start_ns: u64,
        dur_ns: u64,
    ) {
        if let Some(t) = &self.tracer {
            t.record(
                self.id,
                SpanEvent {
                    kind,
                    step: self.step.get(),
                    peer,
                    tag,
                    elems,
                    start_ns,
                    dur_ns,
                },
            );
        }
    }

    /// This rank's id (`0..size`).
    pub fn id(&self) -> RankId {
        self.id
    }

    /// Number of ranks in the machine.
    pub fn size(&self) -> usize {
        self.size
    }

    /// This rank's memory tracker (lease buffers from it to participate
    /// in capacity enforcement and peak accounting).
    pub fn mem(&self) -> &MemoryTracker {
        &self.mem
    }

    /// Send `data` to `dst` with `tag`, consuming the buffer (no copy).
    pub fn send_vec(&self, dst: RankId, tag: Tag, data: Vec<T>) {
        assert!(dst < self.size, "send to nonexistent rank {dst}");
        if let Some(at) = self.crash_at {
            let this_send = self.send_count.get() + 1;
            if this_send >= at {
                panic!(
                    "rank {}: {CRASH_MARKER} at send {this_send} (fault seed {:#x})",
                    self.id, self.faults.seed
                );
            }
        }
        self.send_count.set(self.send_count.get() + 1);
        let span_kind = match self.traffic_class.get() {
            TrafficClass::Algorithmic => {
                self.stats
                    .record_send(self.id, data.len() as u64, dst == self.id);
                SpanKind::Send
            }
            TrafficClass::Redistribution => {
                self.stats.record_redist(data.len() as u64, dst == self.id);
                SpanKind::Redistribute
            }
        };
        self.trace_span(
            span_kind,
            Some(dst),
            tag,
            data.len() as u64,
            self.trace_now(),
            0,
        );
        // Advance the logical clock by this message's α–β cost, scaled
        // by the straggler factor (self-sends are local copies: free).
        if dst != self.id {
            self.clock.set(
                self.clock.get()
                    + self.straggle * (self.cost.alpha + self.cost.beta * data.len() as f64),
            );
        }
        if self.faults.is_noop() {
            // Fault-free fast path: exactly the pre-fault transport.
            let pkt = Packet {
                src: self.id,
                tag,
                data,
                sent_at: self.clock.get(),
                sent_wall: self.wall_stamp(),
                kind: PacketKind::Data,
                seq: 0,
                wire: 0,
                attempt: 0,
            };
            self.transmit(dst, pkt);
            return;
        }
        self.send_faulty(dst, tag, data);
    }

    /// Send a copy of `data` to `dst` with `tag`.
    pub fn send(&self, dst: RankId, tag: Tag, data: &[T]) {
        self.send_vec(dst, tag, data.to_vec());
    }

    /// Nonblocking send: post `data` for `dst` and return a completion
    /// handle. The simulated transport buffers every send (mailboxes
    /// are unbounded), so the message is on the wire when this returns
    /// and the handle completes immediately — it exists so pipelined
    /// code reads symmetrically (`isend`/`irecv`/`wait`) and so the
    /// send's ARQ/fault accounting happens at *post* time, exactly like
    /// the blocking path.
    pub fn isend(&self, dst: RankId, tag: Tag, data: Vec<T>) -> SendHandle {
        self.send_vec(dst, tag, data);
        SendHandle { _completed: () }
    }

    /// Nonblocking receive: record interest in the next message from
    /// `(src, tag)` and return a handle whose [`RecvHandle::wait`]
    /// performs the blocking match. Posting is free (matching state
    /// lives in the rank's pending queue either way); the value of the
    /// handle is *when* the caller chooses to block — the pipelined
    /// executors post the receive for step `t+1`, compute step `t`,
    /// then wait.
    pub fn irecv(&self, src: RankId, tag: Tag) -> RecvHandle<'_, T> {
        RecvHandle {
            rank: self,
            src,
            tag,
        }
    }

    /// Run `f`, recording its wall-clock duration in the machine's
    /// compute-time counter (see `TimingSnapshot`). The executors wrap
    /// their local kernels in this so `bench_comm` can split step time
    /// into comm-wait vs compute.
    pub fn time_compute<R>(&self, f: impl FnOnce() -> R) -> R {
        let start_ns = self.trace_now();
        let t0 = std::time::Instant::now();
        let out = f();
        let dur_ns = t0.elapsed().as_nanos() as u64;
        self.stats.record_compute_ns(dur_ns);
        self.trace_span(SpanKind::Compute, None, 0, 0, start_ns, dur_ns);
        // Under a non-default ComputeModel the section also charges the
        // virtual clock (straggler-scaled, like every other charge).
        let virt = match self.compute {
            ComputeModel::Off => 0.0,
            ComputeModel::Measured { scale } => dur_ns as f64 * 1e-9 * scale,
            ComputeModel::Fixed { seconds } => seconds,
        };
        if virt > 0.0 {
            self.clock.set(self.clock.get() + self.straggle * virt);
        }
        out
    }

    /// The fault-layer send path: sequence numbering, link faults, and
    /// (when enabled) the ARQ reliable transport.
    fn send_faulty(&self, dst: RankId, tag: Tag, data: Vec<T>) {
        let f = self.faults;
        let seq = {
            let mut m = self.send_seq.borrow_mut();
            let c = m.entry((dst, tag)).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        if dst == self.id {
            // Loopback is a local copy: never faulted, never ARQ'd.
            let pkt = self.data_packet(tag, data, seq, 0, 0, self.clock.get());
            self.transmit(dst, pkt);
            return;
        }
        let wire = {
            let mut m = self.wire_seq.borrow_mut();
            let c = m.entry(dst).or_insert(0);
            let w = *c;
            *c += 1;
            w
        };
        if f.reliable {
            // Keep ack traffic from piling up in our mailbox.
            self.drain_mailbox();
        }
        let n = data.len() as u64;
        let delayed = f.delays(self.id, dst, wire);
        if delayed {
            self.stats.record_delay();
        }
        let skew = if delayed { f.delay_skew } else { 0.0 };

        // Physical copies that reach the destination mailbox.
        let mut copies: Vec<Packet<T>> = Vec::new();
        if !f.reliable {
            // Raw transport: one shot, faults land where they land.
            if f.drops_data(self.id, dst, wire, 0) {
                self.stats.record_drop(n);
            } else {
                copies.push(self.data_packet(tag, data, seq, wire, 0, self.clock.get() + skew));
            }
        } else {
            // Sender-side ARQ. Fault decisions are pure functions of
            // (seed, src, dst, wire, attempt), so the sender models the
            // whole stop-and-wait exchange analytically — no blocking on
            // real acks (which arrive as traffic and are discarded) and
            // therefore no new deadlock modes.
            let mut attempt = 0u32;
            loop {
                if attempt > 0 {
                    self.stats.record_retransmit(n);
                    self.trace_span(SpanKind::Retransmit, Some(dst), tag, n, self.trace_now(), 0);
                    // Exponential backoff in simulated time before the
                    // retransmit, plus the retransmit's own α–β cost.
                    let backoff = self.cost.alpha * (1u64 << attempt.min(20)) as f64;
                    self.clock.set(
                        self.clock.get()
                            + self.straggle
                                * (backoff + self.cost.alpha + self.cost.beta * n as f64),
                    );
                }
                if f.drops_data(self.id, dst, wire, attempt) {
                    self.stats.record_drop(n);
                } else {
                    copies.push(self.data_packet(
                        tag,
                        data.clone(),
                        seq,
                        wire,
                        attempt,
                        self.clock.get() + skew,
                    ));
                    if !f.drops_ack(self.id, dst, wire, attempt) {
                        break; // delivered and acknowledged
                    }
                    // Data arrived but the ack was lost: retransmit; the
                    // receiver will suppress the duplicate.
                }
                attempt += 1;
                assert!(
                    attempt < MAX_SEND_ATTEMPTS,
                    "rank {}: reliable delivery to rank {dst} exhausted {MAX_SEND_ATTEMPTS} \
                     attempts (tag {tag:#x}, fault seed {:#x})",
                    self.id,
                    f.seed
                );
            }
        }
        if f.duplicates(self.id, dst, wire) {
            if let Some(last) = copies.last() {
                self.stats.record_dup_injected();
                copies.push(last.clone());
            }
        }
        if f.reliable {
            // Every delivered copy gets acknowledged by the receiver,
            // and every delivered copy beyond the first is a duplicate
            // the receiver suppresses; count both analytically here —
            // the receiver's side would race with its own body exit for
            // late extra copies, making the counters schedule-dependent
            // and breaking bitwise thread↔event backend equivalence.
            for _ in &copies {
                self.stats.record_ack();
            }
            for _ in 1..copies.len() {
                self.stats.record_dup_suppressed();
            }
        }
        if !copies.is_empty()
            && f.reorders(self.id, dst, wire)
            && !self.holdback.borrow().contains_key(&dst)
        {
            self.stats.record_reorder();
            self.holdback.borrow_mut().insert(dst, copies);
            return; // flushed behind the next send to dst, before our
                    // next blocking receive, or at rank-body exit
        }
        // Physical copies are best-effort: under the ARQ a retransmit or
        // injected duplicate of an already-delivered message can race
        // with the receiver finishing its body and dropping its mailbox.
        // The logical delivery guarantee lives in the analytic ARQ, not
        // in any individual copy landing.
        for pkt in copies {
            self.transmit_lossy(dst, pkt);
        }
        // This send overtakes any message held back for the same
        // destination: release it now (the reorder).
        self.flush_holdback_to(dst);
    }

    fn data_packet(
        &self,
        tag: Tag,
        data: Vec<T>,
        seq: u64,
        wire: u64,
        attempt: u32,
        sent_at: f64,
    ) -> Packet<T> {
        Packet {
            src: self.id,
            tag,
            data,
            sent_at,
            sent_wall: self.wall_stamp(),
            kind: PacketKind::Data,
            seq,
            wire,
            attempt,
        }
    }

    /// Enqueue into `dst`'s mailbox; a gone receiver is a hard error
    /// (that rank's thread already panicked — fail loudly here too).
    fn transmit(&self, dst: RankId, pkt: Packet<T>) {
        if self.senders[dst].send(pkt).is_err() {
            panic!(
                "rank {}: send to rank {dst} failed (receiver gone)",
                self.id
            );
        }
        self.notify_sched(dst);
    }

    /// Best-effort enqueue for fire-and-forget traffic (acks, holdback
    /// flushes): if the destination is gone it already failed on its
    /// own; losing this packet is the realistic outcome, not a new
    /// failure.
    fn transmit_lossy(&self, dst: RankId, pkt: Packet<T>) {
        if self.senders[dst].send(pkt).is_ok() {
            self.notify_sched(dst);
        }
    }

    /// Event backend: a packet just landed in `dst`'s mailbox — mark a
    /// blocked destination runnable. No-op on the thread backend (the
    /// channel's condvar wakes the receiver) and for self-sends (we are
    /// running, hence not blocked).
    fn notify_sched(&self, dst: RankId) {
        if let Some(s) = &self.sched {
            if dst != self.id {
                s.notify(dst);
            }
        }
    }

    /// Transmit every held-back (reorder-faulted) packet. Called before
    /// this rank blocks in a receive and by the machine when the rank
    /// body returns, so a held message can never deadlock a
    /// well-terminating run. (A *crashed* rank's held packets are lost —
    /// exactly like a real process dying with data in its TX queue.)
    pub(crate) fn flush_holdbacks(&self) {
        let held: Vec<(RankId, Vec<Packet<T>>)> = self.holdback.borrow_mut().drain().collect();
        for (dst, pkts) in held {
            for pkt in pkts {
                self.transmit_lossy(dst, pkt);
            }
        }
    }

    fn flush_holdback_to(&self, dst: RankId) {
        let held = self.holdback.borrow_mut().remove(&dst);
        if let Some(pkts) = held {
            for pkt in pkts {
                self.transmit_lossy(dst, pkt);
            }
        }
    }

    /// Move every already-arrived packet into the pending queue without
    /// blocking (acks are processed and discarded on the way).
    fn drain_mailbox(&self) {
        while let Ok(pkt) = self.rx.try_recv() {
            if let Some(pkt) = self.ingest(pkt) {
                self.pending.borrow_mut().push_back(pkt);
            }
        }
    }

    /// First touch of every packet pulled from the mailbox. Acks are
    /// discarded (their effect on the ARQ is computed analytically at
    /// the sender). Under the reliable transport every data packet from
    /// a peer is acknowledged here; whether that ack survives the link
    /// is decided by the same deterministic hash both sides share. The
    /// ack *counter* is recorded by the sender (which knows analytically
    /// how many copies get delivered) — counting here would race with
    /// rank-body exit when an extra copy arrives late.
    fn ingest(&self, pkt: Packet<T>) -> Option<Packet<T>> {
        if pkt.kind == PacketKind::Ack {
            return None;
        }
        if self.faults.reliable
            && pkt.src != self.id
            && !self
                .faults
                .drops_ack(pkt.src, self.id, pkt.wire, pkt.attempt)
        {
            let ack = Packet {
                src: self.id,
                tag: pkt.tag,
                data: Vec::new(),
                sent_at: self.clock.get(),
                sent_wall: self.wall_stamp(),
                kind: PacketKind::Ack,
                seq: pkt.seq,
                wire: pkt.wire,
                attempt: pkt.attempt,
            };
            self.transmit_lossy(pkt.src, ack);
        }
        Some(pkt)
    }

    /// Blocking receive of the next message from `src` with `tag`
    /// (FIFO per `(src, tag)` pair). Panics after the machine's receive
    /// timeout — the deadlock trap. Time spent here is recorded in the
    /// machine's comm-wait counter.
    pub fn recv(&self, src: RankId, tag: Tag) -> Vec<T> {
        let start_ns = self.trace_now();
        let t0 = std::time::Instant::now();
        let out = self.recv_inner(src, tag);
        let waited_ns = t0.elapsed().as_nanos() as u64;
        self.stats.record_comm_wait_ns(waited_ns);
        let n = out.len() as u64;
        self.trace_span(SpanKind::CommWait, Some(src), tag, n, start_ns, waited_ns);
        self.trace_span(SpanKind::Recv, Some(src), tag, n, start_ns + waited_ns, 0);
        out
    }

    /// Pull the next packet from the mailbox, blocking in the
    /// backend-appropriate way: the thread backend waits on the channel
    /// (bounded by the deadlock-trap timeout), the event backend yields
    /// the floor to the scheduler until a message arrives. A scheduler
    /// poison (provable deadlock) surfaces as `Timeout`, so both
    /// backends trip the identical deadlock-trap panic at the caller.
    fn blocking_pull(&self, remaining: Duration) -> Result<Packet<T>, RecvTimeoutError> {
        let Some(sched) = &self.sched else {
            return self.rx.recv_timeout(remaining);
        };
        loop {
            match self.rx.try_recv() {
                Ok(pkt) => return Ok(pkt),
                Err(TryRecvError::Disconnected) => return Err(RecvTimeoutError::Disconnected),
                Err(TryRecvError::Empty) => {
                    if sched.yield_blocked(self.id, self.clock.get()).is_err() {
                        return Err(RecvTimeoutError::Timeout);
                    }
                }
            }
        }
    }

    fn recv_inner(&self, src: RankId, tag: Tag) -> Vec<T> {
        if !self.faults.is_noop() {
            self.flush_holdbacks();
            if self.faults.reliable {
                return self.recv_seq(src, tag);
            }
        }
        // First, check the unexpected-message queue.
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|p| p.src == src && p.tag == tag) {
                let pkt = pending.remove(pos).expect("position valid");
                self.arrive(&pkt);
                return pkt.data;
            }
        }
        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.blocking_pull(remaining) {
                Ok(pkt) => {
                    let Some(pkt) = self.ingest(pkt) else {
                        continue;
                    };
                    if pkt.src == src && pkt.tag == tag {
                        self.arrive(&pkt);
                        return pkt.data;
                    }
                    self.pending.borrow_mut().push_back(pkt);
                }
                Err(RecvTimeoutError::Timeout) => panic!(
                    "rank {}: deadlock trap — no message from rank {src} with tag {tag:#x} \
                     within {:?} ({} unexpected messages parked)",
                    self.id,
                    self.timeout,
                    self.pending.borrow().len()
                ),
                Err(RecvTimeoutError::Disconnected) => panic!(
                    "rank {}: mailbox disconnected while waiting for rank {src} tag {tag:#x}",
                    self.id
                ),
            }
        }
    }

    /// Sequence-numbered receive (reliable transport): deliver exactly
    /// the next expected sequence for `(src, tag)`, suppressing
    /// duplicates and re-assembling FIFO order.
    fn recv_seq(&self, src: RankId, tag: Tag) -> Vec<T> {
        let expected = self.expected(src, tag);
        if let Some(pkt) = self.take_pending(src, tag, expected) {
            return self.deliver(pkt);
        }
        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.blocking_pull(remaining) {
                Ok(pkt) => {
                    let Some(pkt) = self.ingest(pkt) else {
                        continue;
                    };
                    if pkt.src == src && pkt.tag == tag {
                        if pkt.seq == expected {
                            return self.deliver(pkt);
                        }
                        if pkt.seq < expected {
                            // Stale duplicate (already counted at the
                            // sender): suppress.
                            continue;
                        }
                        // A future sequence (retransmit overtook the
                        // stream): park until we catch up.
                    }
                    self.pending.borrow_mut().push_back(pkt);
                }
                Err(RecvTimeoutError::Timeout) => panic!(
                    "rank {}: deadlock trap — no message from rank {src} with tag {tag:#x} \
                     within {:?} ({} unexpected messages parked)",
                    self.id,
                    self.timeout,
                    self.pending.borrow().len()
                ),
                Err(RecvTimeoutError::Disconnected) => panic!(
                    "rank {}: mailbox disconnected while waiting for rank {src} tag {tag:#x}",
                    self.id
                ),
            }
        }
    }

    /// Blocking receive of the next message with `tag` from *any* rank.
    /// Returns `(source, data)`. Time spent here is recorded in the
    /// machine's comm-wait counter.
    pub fn recv_any(&self, tag: Tag) -> (RankId, Vec<T>) {
        let start_ns = self.trace_now();
        let t0 = std::time::Instant::now();
        let (src, out) = self.recv_any_inner(tag);
        let waited_ns = t0.elapsed().as_nanos() as u64;
        self.stats.record_comm_wait_ns(waited_ns);
        let n = out.len() as u64;
        self.trace_span(SpanKind::CommWait, Some(src), tag, n, start_ns, waited_ns);
        self.trace_span(SpanKind::Recv, Some(src), tag, n, start_ns + waited_ns, 0);
        (src, out)
    }

    fn recv_any_inner(&self, tag: Tag) -> (RankId, Vec<T>) {
        if !self.faults.is_noop() {
            self.flush_holdbacks();
            if self.faults.reliable {
                return self.recv_any_seq(tag);
            }
        }
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|p| p.tag == tag) {
                let pkt = pending.remove(pos).expect("position valid");
                self.arrive(&pkt);
                return (pkt.src, pkt.data);
            }
        }
        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.blocking_pull(remaining) {
                Ok(pkt) => {
                    let Some(pkt) = self.ingest(pkt) else {
                        continue;
                    };
                    if pkt.tag == tag {
                        self.arrive(&pkt);
                        return (pkt.src, pkt.data);
                    }
                    self.pending.borrow_mut().push_back(pkt);
                }
                Err(RecvTimeoutError::Timeout) => panic!(
                    "rank {}: deadlock trap — no message with tag {tag:#x} within {:?}",
                    self.id, self.timeout
                ),
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("rank {}: mailbox disconnected (tag {tag:#x})", self.id)
                }
            }
        }
    }

    /// Sequence-numbered any-source receive (reliable transport).
    fn recv_any_seq(&self, tag: Tag) -> (RankId, Vec<T>) {
        if let Some(pkt) = self.take_pending_any(tag) {
            let src = pkt.src;
            return (src, self.deliver(pkt));
        }
        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.blocking_pull(remaining) {
                Ok(pkt) => {
                    let Some(pkt) = self.ingest(pkt) else {
                        continue;
                    };
                    if pkt.tag == tag {
                        let expected = self.expected(pkt.src, tag);
                        if pkt.seq == expected {
                            let src = pkt.src;
                            return (src, self.deliver(pkt));
                        }
                        if pkt.seq < expected {
                            // Stale duplicate (counted at the sender).
                            continue;
                        }
                    }
                    self.pending.borrow_mut().push_back(pkt);
                }
                Err(RecvTimeoutError::Timeout) => panic!(
                    "rank {}: deadlock trap — no message with tag {tag:#x} within {:?}",
                    self.id, self.timeout
                ),
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("rank {}: mailbox disconnected (tag {tag:#x})", self.id)
                }
            }
        }
    }

    /// Next expected sequence number for `(src, tag)`.
    fn expected(&self, src: RankId, tag: Tag) -> u64 {
        *self.recv_next.borrow().get(&(src, tag)).unwrap_or(&0)
    }

    /// Consume a matched packet: advance the per-stream cursor and the
    /// Lamport clock, hand out the payload.
    fn deliver(&self, pkt: Packet<T>) -> Vec<T> {
        self.recv_next
            .borrow_mut()
            .insert((pkt.src, pkt.tag), pkt.seq + 1);
        self.arrive(&pkt);
        pkt.data
    }

    /// Scan the pending queue for `(src, tag, seq == expected)`,
    /// purging stale duplicates of that stream along the way.
    fn take_pending(&self, src: RankId, tag: Tag, expected: u64) -> Option<Packet<T>> {
        let mut pending = self.pending.borrow_mut();
        let mut found = None;
        let mut i = 0;
        while i < pending.len() {
            let p = &pending[i];
            if p.src == src && p.tag == tag {
                if p.seq == expected && found.is_none() {
                    found = pending.remove(i);
                    continue;
                }
                if p.seq < expected {
                    // Stale duplicate (counted at the sender).
                    pending.remove(i);
                    continue;
                }
            }
            i += 1;
        }
        found
    }

    /// Scan the pending queue for any stream of `tag` whose next
    /// expected packet is parked, purging stale duplicates on the way.
    fn take_pending_any(&self, tag: Tag) -> Option<Packet<T>> {
        let mut pending = self.pending.borrow_mut();
        let mut i = 0;
        while i < pending.len() {
            let p = &pending[i];
            if p.tag == tag {
                let expected = self.expected(p.src, tag);
                if p.seq == expected {
                    return pending.remove(i);
                }
                if p.seq < expected {
                    // Stale duplicate (counted at the sender).
                    pending.remove(i);
                    continue;
                }
            }
            i += 1;
        }
        None
    }

    /// Number of parked unexpected messages (diagnostics).
    pub fn parked(&self) -> usize {
        self.pending.borrow().len()
    }

    /// A matched payload reaches the application: advance the Lamport
    /// clock and, when link emulation is on, hold until the message's
    /// wall-clock wire time has elapsed.
    fn arrive(&self, pkt: &Packet<T>) {
        self.observe_arrival(pkt.src, pkt.sent_at);
        self.link_wait(pkt);
    }

    /// Advance the logical clock to a received message's arrival time
    /// (Lamport max; self-sends carry our own clock and are no-ops).
    fn observe_arrival(&self, src: RankId, sent_at: f64) {
        if src != self.id {
            self.clock.set(self.clock.get().max(sent_at));
        }
    }

    /// Hold the receiver until `alpha + beta·n` of real time has passed
    /// since the packet went on the wire (see [`LinkDelay`]). Time
    /// already spent elsewhere since the send — compute, other waits —
    /// counts toward the deadline, which is exactly what lets pipelined
    /// executors hide the wire. No-op when emulation is off or for
    /// self-sends (local copies).
    fn link_wait(&self, pkt: &Packet<T>) {
        if self.link.is_off() || pkt.src == self.id {
            return;
        }
        // Unstamped packets come from the event backend, where the wire
        // is already charged on the virtual clock — nothing to emulate.
        let Some(sent_wall) = pkt.sent_wall else {
            return;
        };
        let deadline = sent_wall + self.link.wire_time(pkt.data.len());
        let now = std::time::Instant::now();
        if deadline > now {
            std::thread::sleep(deadline - now);
        }
    }
}

/// Completion handle of a nonblocking send ([`Rank::isend`]). The
/// simulated transport buffers sends, so the operation is already
/// complete when the handle exists; [`SendHandle::wait`] is a no-op
/// kept for call-site symmetry with [`RecvHandle`].
#[derive(Debug)]
#[must_use = "wait (or drop) the handle where the blocking send would have completed"]
pub struct SendHandle {
    _completed: (),
}

impl SendHandle {
    /// Complete the send (immediate).
    pub fn wait(self) {}
}

/// Completion handle of a nonblocking receive ([`Rank::irecv`]): a
/// posted `(src, tag)` match whose blocking part runs at
/// [`RecvHandle::wait`]. All matching goes through the rank's normal
/// receive path, so ARQ reliability, FIFO reassembly and fault
/// accounting are identical to a blocking [`Rank::recv`] issued at the
/// wait point.
#[must_use = "an unawaited irecv never takes its message out of the mailbox"]
pub struct RecvHandle<'a, T: Msg> {
    rank: &'a Rank<T>,
    src: RankId,
    tag: Tag,
}

impl<T: Msg> RecvHandle<'_, T> {
    /// The posted source rank.
    pub fn src(&self) -> RankId {
        self.src
    }

    /// The posted tag.
    pub fn tag(&self) -> Tag {
        self.tag
    }

    /// Block until the posted message arrives and return its payload.
    pub fn wait(self) -> Vec<T> {
        self.rank.recv(self.src, self.tag)
    }
}

#[cfg(test)]
mod tests {
    use crate::fault::FaultPlan;
    use crate::machine::{Machine, MachineConfig};
    use std::time::Duration;

    #[test]
    fn pingpong() {
        let report = Machine::run::<f32, _, _>(2, MachineConfig::default(), |rank| {
            if rank.id() == 0 {
                rank.send(1, 7, &[1.0, 2.0, 3.0]);
                rank.recv(1, 8)
            } else {
                let v = rank.recv(0, 7);
                let doubled: Vec<f32> = v.iter().map(|x| x * 2.0).collect();
                rank.send(0, 8, &doubled);
                v
            }
        });
        assert_eq!(report.results[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(report.results[1], vec![1.0, 2.0, 3.0]);
        assert_eq!(report.stats.total_msgs(), 2);
        assert_eq!(report.stats.total_elems(), 6);
        assert!(report.stats.fault.is_zero());
    }

    #[test]
    fn out_of_order_tags_are_parked() {
        let report = Machine::run::<u64, _, _>(2, MachineConfig::default(), |rank| {
            if rank.id() == 0 {
                rank.send(1, 1, &[10]);
                rank.send(1, 2, &[20]);
                0
            } else {
                // Receive in the opposite order of sending.
                let b = rank.recv(0, 2);
                let a = rank.recv(0, 1);
                assert_eq!((a[0], b[0]), (10, 20));
                rank.parked() as u64
            }
        });
        assert_eq!(report.results[1], 0, "queue drained");
    }

    #[test]
    fn fifo_per_src_tag() {
        let report = Machine::run::<u64, _, _>(2, MachineConfig::default(), |rank| {
            if rank.id() == 0 {
                for i in 0..10u64 {
                    rank.send(1, 5, &[i]);
                }
                vec![]
            } else {
                (0..10).map(|_| rank.recv(0, 5)[0]).collect::<Vec<_>>()
            }
        });
        assert_eq!(report.results[1], (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn recv_any_finds_sender() {
        let report = Machine::run::<u64, _, _>(3, MachineConfig::default(), |rank| {
            if rank.id() == 0 {
                let mut from = vec![];
                for _ in 0..2 {
                    let (src, data) = rank.recv_any(9);
                    from.push((src, data[0]));
                }
                from.sort_unstable();
                from
            } else {
                rank.send(0, 9, &[rank.id() as u64 * 100]);
                vec![]
            }
        });
        assert_eq!(report.results[0], vec![(1, 100), (2, 200)]);
    }

    #[test]
    fn self_send_not_counted_as_traffic() {
        let report = Machine::run::<f64, _, _>(1, MachineConfig::default(), |rank| {
            rank.send(0, 3, &[1.0, 2.0]);
            rank.recv(0, 3)
        });
        assert_eq!(report.results[0], vec![1.0, 2.0]);
        assert_eq!(report.stats.total_elems(), 0);
        assert_eq!(report.stats.self_elems, 2);
    }

    #[test]
    #[should_panic(expected = "deadlock trap")]
    fn deadlock_trap_fires() {
        let cfg = MachineConfig {
            recv_timeout: Duration::from_millis(50),
            ..MachineConfig::default()
        };
        Machine::run::<f32, _, _>(2, cfg, |rank| {
            if rank.id() == 0 {
                // Rank 0 waits for a message nobody sends.
                let _ = rank.recv(1, 42);
            }
        });
    }

    #[test]
    fn isend_irecv_roundtrip_counts_like_blocking() {
        let report = Machine::run::<u64, _, _>(2, MachineConfig::default(), |rank| {
            if rank.id() == 0 {
                // Post both shifts up front, then wait — the pipelined
                // shape. Waits may complete in either order.
                let h1 = rank.isend(1, 1, vec![10, 20]);
                let h2 = rank.isend(1, 2, vec![30]);
                let r = rank.irecv(1, 3);
                h1.wait();
                h2.wait();
                r.wait()
            } else {
                let b = rank.irecv(0, 2);
                let a = rank.irecv(0, 1);
                assert_eq!((a.src(), a.tag()), (0, 1));
                let out = vec![b.wait()[0], a.wait()[0]];
                rank.isend(0, 3, out.clone()).wait();
                out
            }
        });
        assert_eq!(report.results[0], vec![30, 10]);
        assert_eq!(report.stats.total_msgs(), 3);
        assert_eq!(report.stats.total_elems(), 5);
    }

    #[test]
    fn isend_irecv_reliable_under_faults() {
        let cfg = MachineConfig {
            faults: FaultPlan::reliable(0xBEEF)
                .with_drops(0.4)
                .with_dups(0.3)
                .with_reorders(0.3),
            ..MachineConfig::default()
        };
        let report = Machine::run::<u64, _, _>(2, cfg, |rank| {
            if rank.id() == 0 {
                let handles: Vec<_> = (0..10u64).map(|i| rank.isend(1, 5, vec![i])).collect();
                for h in handles {
                    h.wait();
                }
                vec![]
            } else {
                let handles: Vec<_> = (0..10).map(|_| rank.irecv(0, 5)).collect();
                handles.into_iter().map(|h| h.wait()[0]).collect::<Vec<_>>()
            }
        });
        assert_eq!(report.results[1], (0..10).collect::<Vec<u64>>());
        assert_eq!(report.stats.total_msgs(), 10);
    }

    #[test]
    fn comm_wait_and_compute_time_recorded() {
        let report = Machine::run::<u64, _, _>(2, MachineConfig::default(), |rank| {
            if rank.id() == 0 {
                rank.time_compute(|| std::thread::sleep(Duration::from_millis(2)));
                rank.send(1, 1, &[1]);
            } else {
                // Blocks until rank 0 finishes its compute and sends.
                let _ = rank.recv(0, 1);
            }
        });
        assert!(report.timing.compute_ns >= 2_000_000);
        assert!(report.timing.comm_wait_ns > 0);
    }

    #[test]
    fn link_delay_holds_delivery_until_wire_time() {
        use crate::machine::LinkDelay;
        let cfg = MachineConfig {
            link: LinkDelay::new(Duration::from_millis(20), 0.0),
            ..MachineConfig::default()
        };
        let report = Machine::run::<u64, _, _>(2, cfg, |rank| {
            if rank.id() == 0 {
                rank.send(1, 1, &[7]);
                Duration::ZERO
            } else {
                let t0 = std::time::Instant::now();
                let got = rank.recv(0, 1);
                assert_eq!(got, vec![7]);
                t0.elapsed()
            }
        });
        // The receiver posted its recv at spawn, well inside the 20 ms
        // window, so it must have been held for most of it.
        assert!(
            report.results[1] >= Duration::from_millis(10),
            "recv returned after {:?}, before the emulated wire time",
            report.results[1]
        );
        // Emulation must not leak into the analytic counters or clocks.
        assert_eq!(report.stats.total_msgs(), 1);
        assert_eq!(report.stats.total_elems(), 1);
    }

    #[test]
    fn link_delay_elapses_concurrently_with_receiver_work() {
        use crate::machine::LinkDelay;
        let cfg = MachineConfig {
            link: LinkDelay::new(Duration::from_millis(20), 0.0),
            ..MachineConfig::default()
        };
        let report = Machine::run::<u64, _, _>(2, cfg, |rank| {
            if rank.id() == 0 {
                rank.send(1, 1, &[7]);
                Duration::ZERO
            } else {
                // Busy past the wire time before waiting: the hold must
                // find the deadline already passed.
                std::thread::sleep(Duration::from_millis(30));
                let t0 = std::time::Instant::now();
                let got = rank.recv(0, 1);
                assert_eq!(got, vec![7]);
                t0.elapsed()
            }
        });
        assert!(
            report.results[1] < Duration::from_millis(15),
            "wait blocked {:?} although the wire time was already hidden",
            report.results[1]
        );
    }

    // ---- fault-layer tests -------------------------------------------

    /// A fault plan guaranteed to drop at least one message in a 10-long
    /// stream (p = 0.5, pinned seed).
    fn drops_half() -> FaultPlan {
        FaultPlan::reliable(0xC0FFEE).with_drops(0.5)
    }

    #[test]
    fn reliable_stream_survives_heavy_drops() {
        let cfg = MachineConfig {
            faults: drops_half(),
            ..MachineConfig::default()
        };
        let report = Machine::run::<u64, _, _>(2, cfg, |rank| {
            if rank.id() == 0 {
                for i in 0..10u64 {
                    rank.send(1, 5, &[i]);
                }
                vec![]
            } else {
                (0..10).map(|_| rank.recv(0, 5)[0]).collect::<Vec<_>>()
            }
        });
        assert_eq!(report.results[1], (0..10).collect::<Vec<u64>>());
        // Logical volume is fault-independent…
        assert_eq!(report.stats.total_msgs(), 10);
        assert_eq!(report.stats.total_elems(), 10);
        // …and at p = 0.5 over 10 messages the plan certainly dropped
        // something, so retransmits must show up in the fault counters.
        assert!(report.stats.fault.retrans_msgs > 0);
        assert!(report.stats.fault.dropped_msgs > 0);
        assert!(report.stats.fault.ack_msgs > 0);
    }

    #[test]
    fn reliable_with_dups_and_reorders_is_fifo() {
        let cfg = MachineConfig {
            faults: FaultPlan::reliable(7)
                .with_drops(0.3)
                .with_dups(0.4)
                .with_reorders(0.4)
                .with_delays(0.3, 5.0),
            ..MachineConfig::default()
        };
        let report = Machine::run::<u64, _, _>(2, cfg, |rank| {
            if rank.id() == 0 {
                for i in 0..20u64 {
                    rank.send(1, 5, &[i]);
                }
                vec![]
            } else {
                (0..20).map(|_| rank.recv(0, 5)[0]).collect::<Vec<_>>()
            }
        });
        assert_eq!(report.results[1], (0..20).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "deadlock trap")]
    fn unreliable_drop_trips_the_trap() {
        // Without the ARQ, a dropped message must surface as a loud
        // deadlock, never silent corruption of a later receive.
        let cfg = MachineConfig {
            recv_timeout: Duration::from_millis(100),
            faults: FaultPlan {
                seed: 1,
                drop_prob: 1.0,
                ..FaultPlan::default()
            },
            ..MachineConfig::default()
        };
        Machine::run::<u64, _, _>(2, cfg, |rank| {
            if rank.id() == 0 {
                rank.send(1, 5, &[1]);
            } else {
                let _ = rank.recv(0, 5);
            }
        });
    }

    #[test]
    #[should_panic(expected = "fault-injected crash")]
    fn crash_at_nth_send_fires() {
        let cfg = MachineConfig {
            recv_timeout: Duration::from_millis(100),
            faults: FaultPlan::default().with_crash(0, 3),
            ..MachineConfig::default()
        };
        Machine::run::<u64, _, _>(2, cfg, |rank| {
            if rank.id() == 0 {
                for i in 0..5u64 {
                    rank.send(1, 5, &[i]);
                }
            } else {
                for _ in 0..5 {
                    let _ = rank.recv(0, 5);
                }
            }
        });
    }

    #[test]
    fn straggler_stretches_the_makespan() {
        let base = MachineConfig::default();
        let send = |rank: &crate::Rank<f32>| {
            if rank.id() == 0 {
                rank.send(1, 1, &vec![0.0f32; 1000]);
            } else {
                let _ = rank.recv(0, 1);
            }
        };
        let clean = Machine::run::<f32, _, _>(2, base, send);
        let slow_cfg = MachineConfig {
            faults: FaultPlan {
                seed: 0,
                straggler: Some(crate::fault::Straggler {
                    rank: 0,
                    factor: 3.0,
                }),
                ..FaultPlan::default()
            },
            ..base
        };
        let slow = Machine::run::<f32, _, _>(2, slow_cfg, send);
        assert!(
            (slow.makespan - 3.0 * clean.makespan).abs() < 1e-12,
            "{} vs 3×{}",
            slow.makespan,
            clean.makespan
        );
        // The straggler bends time, not data or volume.
        assert_eq!(slow.stats.total_elems(), clean.stats.total_elems());
    }

    #[test]
    fn delay_skews_the_makespan_only() {
        let cfg = MachineConfig {
            faults: FaultPlan::reliable(3).with_delays(1.0, 7.5),
            ..MachineConfig::default()
        };
        let report = Machine::run::<u64, _, _>(2, cfg, |rank| {
            if rank.id() == 0 {
                rank.send(1, 1, &[42]);
                0
            } else {
                rank.recv(0, 1)[0]
            }
        });
        assert_eq!(report.results[1], 42);
        assert!(report.makespan >= 7.5, "makespan {}", report.makespan);
        assert_eq!(report.stats.fault.delayed_msgs, 1);
    }
}

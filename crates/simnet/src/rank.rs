//! The per-rank execution context: typed point-to-point messaging.
//!
//! A [`Rank`] is handed to each simulated processor's closure by
//! [`crate::Machine::run`]. It owns the rank's mailbox and is the *only*
//! channel to other ranks — the partitioned-memory model. Matching is
//! MPI-like: [`Rank::recv`] blocks for a message with a given
//! `(source, tag)`; messages that arrive out of order are parked in an
//! unexpected-message queue, preserving per-(src, tag) FIFO order.
//!
//! A receive that waits longer than the machine's configured timeout
//! panics with a diagnostic — the simulator's deadlock trap. A mismatched
//! collective or a wrong schedule therefore fails loudly instead of
//! hanging the test suite.

use crate::channel::{Receiver, RecvTimeoutError, Sender};
use crate::memory::MemoryTracker;
use crate::stats::{CostParams, Stats};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Rank identifier: `0..P` within a [`crate::Machine`] run.
pub type RankId = usize;

/// Message tag. User point-to-point tags must keep the top bit clear;
/// tags with the top bit set are reserved for collectives.
pub type Tag = u64;

/// Element types that can travel in messages: plain old data with an
/// additive reduction (enough for every algorithm in the workspace; the
/// reduction is only exercised by reduce-style collectives).
pub trait Msg: Copy + Send + Default + std::ops::AddAssign + 'static {}
impl<T: Copy + Send + Default + std::ops::AddAssign + 'static> Msg for T {}

/// A message in flight. Carries the sender's logical clock at
/// transmission time (after the α–β cost of this send), implementing a
/// Lamport-style communication makespan: the receiver's clock advances
/// to at least the arrival time.
#[derive(Debug)]
pub(crate) struct Packet<T> {
    pub src: RankId,
    pub tag: Tag,
    pub data: Vec<T>,
    pub sent_at: f64,
}

/// One simulated processor's execution context.
pub struct Rank<T: Msg> {
    id: RankId,
    size: usize,
    senders: Arc<Vec<Sender<Packet<T>>>>,
    rx: Receiver<Packet<T>>,
    pending: RefCell<VecDeque<Packet<T>>>,
    stats: Arc<Stats>,
    mem: MemoryTracker,
    timeout: Duration,
    cost: CostParams,
    /// Logical communication clock (seconds of simulated network time
    /// this rank has accumulated). Advanced by α+β·n per send, and to
    /// the arrival time on each receive — a Lamport makespan clock.
    clock: std::cell::Cell<f64>,
}

impl<T: Msg> Rank<T> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: RankId,
        size: usize,
        senders: Arc<Vec<Sender<Packet<T>>>>,
        rx: Receiver<Packet<T>>,
        stats: Arc<Stats>,
        mem: MemoryTracker,
        timeout: Duration,
        cost: CostParams,
    ) -> Self {
        Rank {
            id,
            size,
            senders,
            rx,
            pending: RefCell::new(VecDeque::new()),
            stats,
            mem,
            timeout,
            cost,
            clock: std::cell::Cell::new(0.0),
        }
    }

    /// This rank's current logical communication clock (seconds).
    pub fn clock(&self) -> f64 {
        self.clock.get()
    }

    /// This rank's id (`0..size`).
    pub fn id(&self) -> RankId {
        self.id
    }

    /// Number of ranks in the machine.
    pub fn size(&self) -> usize {
        self.size
    }

    /// This rank's memory tracker (lease buffers from it to participate
    /// in capacity enforcement and peak accounting).
    pub fn mem(&self) -> &MemoryTracker {
        &self.mem
    }

    /// Send `data` to `dst` with `tag`, consuming the buffer (no copy).
    pub fn send_vec(&self, dst: RankId, tag: Tag, data: Vec<T>) {
        assert!(dst < self.size, "send to nonexistent rank {dst}");
        self.stats
            .record_send(self.id, data.len() as u64, dst == self.id);
        // Advance the logical clock by this message's α–β cost
        // (self-sends are local copies: free).
        if dst != self.id {
            self.clock
                .set(self.clock.get() + self.cost.alpha + self.cost.beta * data.len() as f64);
        }
        let pkt = Packet {
            src: self.id,
            tag,
            data,
            sent_at: self.clock.get(),
        };
        // Unbounded channel: send only fails if the receiver is gone,
        // which means that rank's thread already panicked; propagate a
        // clear diagnostic instead of a bare unwrap.
        if self.senders[dst].send(pkt).is_err() {
            panic!(
                "rank {}: send to rank {dst} failed (receiver gone)",
                self.id
            );
        }
    }

    /// Send a copy of `data` to `dst` with `tag`.
    pub fn send(&self, dst: RankId, tag: Tag, data: &[T]) {
        self.send_vec(dst, tag, data.to_vec());
    }

    /// Blocking receive of the next message from `src` with `tag`
    /// (FIFO per `(src, tag)` pair). Panics after the machine's receive
    /// timeout — the deadlock trap.
    pub fn recv(&self, src: RankId, tag: Tag) -> Vec<T> {
        // First, check the unexpected-message queue.
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|p| p.src == src && p.tag == tag) {
                let pkt = pending.remove(pos).expect("position valid");
                self.observe_arrival(pkt.src, pkt.sent_at);
                return pkt.data;
            }
        }
        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(pkt) if pkt.src == src && pkt.tag == tag => {
                    self.observe_arrival(pkt.src, pkt.sent_at);
                    return pkt.data;
                }
                Ok(pkt) => self.pending.borrow_mut().push_back(pkt),
                Err(RecvTimeoutError::Timeout) => panic!(
                    "rank {}: deadlock trap — no message from rank {src} with tag {tag:#x} \
                     within {:?} ({} unexpected messages parked)",
                    self.id,
                    self.timeout,
                    self.pending.borrow().len()
                ),
                Err(RecvTimeoutError::Disconnected) => panic!(
                    "rank {}: mailbox disconnected while waiting for rank {src} tag {tag:#x}",
                    self.id
                ),
            }
        }
    }

    /// Blocking receive of the next message with `tag` from *any* rank.
    /// Returns `(source, data)`.
    pub fn recv_any(&self, tag: Tag) -> (RankId, Vec<T>) {
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|p| p.tag == tag) {
                let pkt = pending.remove(pos).expect("position valid");
                self.observe_arrival(pkt.src, pkt.sent_at);
                return (pkt.src, pkt.data);
            }
        }
        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(pkt) if pkt.tag == tag => {
                    self.observe_arrival(pkt.src, pkt.sent_at);
                    return (pkt.src, pkt.data);
                }
                Ok(pkt) => self.pending.borrow_mut().push_back(pkt),
                Err(RecvTimeoutError::Timeout) => panic!(
                    "rank {}: deadlock trap — no message with tag {tag:#x} within {:?}",
                    self.id, self.timeout
                ),
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("rank {}: mailbox disconnected (tag {tag:#x})", self.id)
                }
            }
        }
    }

    /// Number of parked unexpected messages (diagnostics).
    pub fn parked(&self) -> usize {
        self.pending.borrow().len()
    }

    /// Advance the logical clock to a received message's arrival time
    /// (Lamport max; self-sends carry our own clock and are no-ops).
    fn observe_arrival(&self, src: RankId, sent_at: f64) {
        if src != self.id {
            self.clock.set(self.clock.get().max(sent_at));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::{Machine, MachineConfig};
    use std::time::Duration;

    #[test]
    fn pingpong() {
        let report = Machine::run::<f32, _, _>(2, MachineConfig::default(), |rank| {
            if rank.id() == 0 {
                rank.send(1, 7, &[1.0, 2.0, 3.0]);
                rank.recv(1, 8)
            } else {
                let v = rank.recv(0, 7);
                let doubled: Vec<f32> = v.iter().map(|x| x * 2.0).collect();
                rank.send(0, 8, &doubled);
                v
            }
        });
        assert_eq!(report.results[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(report.results[1], vec![1.0, 2.0, 3.0]);
        assert_eq!(report.stats.total_msgs(), 2);
        assert_eq!(report.stats.total_elems(), 6);
    }

    #[test]
    fn out_of_order_tags_are_parked() {
        let report = Machine::run::<u64, _, _>(2, MachineConfig::default(), |rank| {
            if rank.id() == 0 {
                rank.send(1, 1, &[10]);
                rank.send(1, 2, &[20]);
                0
            } else {
                // Receive in the opposite order of sending.
                let b = rank.recv(0, 2);
                let a = rank.recv(0, 1);
                assert_eq!((a[0], b[0]), (10, 20));
                rank.parked() as u64
            }
        });
        assert_eq!(report.results[1], 0, "queue drained");
    }

    #[test]
    fn fifo_per_src_tag() {
        let report = Machine::run::<u64, _, _>(2, MachineConfig::default(), |rank| {
            if rank.id() == 0 {
                for i in 0..10u64 {
                    rank.send(1, 5, &[i]);
                }
                vec![]
            } else {
                (0..10).map(|_| rank.recv(0, 5)[0]).collect::<Vec<_>>()
            }
        });
        assert_eq!(report.results[1], (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn recv_any_finds_sender() {
        let report = Machine::run::<u64, _, _>(3, MachineConfig::default(), |rank| {
            if rank.id() == 0 {
                let mut from = vec![];
                for _ in 0..2 {
                    let (src, data) = rank.recv_any(9);
                    from.push((src, data[0]));
                }
                from.sort_unstable();
                from
            } else {
                rank.send(0, 9, &[rank.id() as u64 * 100]);
                vec![]
            }
        });
        assert_eq!(report.results[0], vec![(1, 100), (2, 200)]);
    }

    #[test]
    fn self_send_not_counted_as_traffic() {
        let report = Machine::run::<f64, _, _>(1, MachineConfig::default(), |rank| {
            rank.send(0, 3, &[1.0, 2.0]);
            rank.recv(0, 3)
        });
        assert_eq!(report.results[0], vec![1.0, 2.0]);
        assert_eq!(report.stats.total_elems(), 0);
        assert_eq!(report.stats.self_elems, 2);
    }

    #[test]
    #[should_panic(expected = "deadlock trap")]
    fn deadlock_trap_fires() {
        let cfg = MachineConfig {
            recv_timeout: Duration::from_millis(50),
            ..MachineConfig::default()
        };
        Machine::run::<f32, _, _>(2, cfg, |rank| {
            if rank.id() == 0 {
                // Rank 0 waits for a message nobody sends.
                let _ = rank.recv(1, 42);
            }
        });
    }
}

//! Virtual-time failure detector.
//!
//! A real distributed runtime cannot see a peer's panic — it sees
//! *silence*, and must decide from heartbeat timeouts whether the peer
//! crashed, is merely slow, or whether the whole group is deadlocked.
//! This module models that decision in **simulated seconds** on the α–β
//! Lamport clock, so detections are deterministic, backend-independent
//! facts of the schedule rather than wall-clock accidents:
//!
//! * **Crash** — a rank died mid-run; the detector flags it one
//!   heartbeat timeout after the victim's last clock advance
//!   (`clock_at_death + heartbeat_timeout` — the survivors' clocks keep
//!   running, the victim's stops).
//! * **Straggler** — the run finished, but a rank's final clock exceeds
//!   [`DetectorConfig::straggler_threshold`] × the median final clock:
//!   the fault plan's straggler factor (or a pathological schedule)
//!   made it an outlier worth flagging even though nothing failed.
//! * **Deadlock** — the run failed with starved receives and *no* crash
//!   anywhere: the silence is mutual, so the detector classifies the
//!   group as deadlocked rather than blaming a dead peer.
//!
//! When a crash **is** present, ranks that died in the deadlock trap
//! were not themselves at fault — they starved waiting on the corpse.
//! With the detector enabled, [`crate::Machine::try_run`] reclassifies
//! them as [`crate::FailureKind::Starved`], which is what lets the
//! recovery layer in `distconv-core` count *survivors* correctly when
//! shrinking the grid (a starved rank is recoverable; a crashed one is
//! not).
//!
//! The detector is **off by default**: detection timestamps ride on the
//! failure path of every run, and goldens pinned before this module
//! existed must stay byte-identical.

use crate::rank::RankId;

/// Failure-detector configuration (see module docs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetectorConfig {
    /// Master switch; `false` (the default) records no detections and
    /// performs no reclassification.
    pub enabled: bool,
    /// Simulated seconds of silence after which a dead rank is flagged.
    pub heartbeat_timeout: f64,
    /// Flag a rank as a straggler when its final clock is at least this
    /// multiple of the median final clock.
    pub straggler_threshold: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            enabled: false,
            heartbeat_timeout: 1.0,
            straggler_threshold: 4.0,
        }
    }
}

impl DetectorConfig {
    /// An enabled detector with the given heartbeat timeout (simulated
    /// seconds) and the default straggler threshold.
    pub fn with_timeout(heartbeat_timeout: f64) -> Self {
        DetectorConfig {
            enabled: true,
            heartbeat_timeout,
            ..DetectorConfig::default()
        }
    }
}

/// What the detector decided about a rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectionKind {
    /// The rank died; flagged one heartbeat timeout after its clock
    /// stopped.
    Crash,
    /// The rank finished, but far behind the group (clock outlier).
    Straggler,
    /// The group starved with no crash anywhere: a true deadlock.
    Deadlock,
}

/// One detector verdict: which rank, what, and *when* in simulated
/// seconds the detector could first have known.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Detection {
    /// The detected rank.
    pub rank: RankId,
    /// The verdict.
    pub kind: DetectionKind,
    /// Simulated time of the detection on the α–β clock.
    pub at: f64,
}

/// Classify a *failed* run: crashes are detected a heartbeat timeout
/// after the victim's clock stopped; starved (deadlock-trapped) ranks
/// are reported as deadlocks only when no crash explains the silence.
/// `crashed`/`starved` are rank-id lists from the failure aggregation;
/// `clocks` is every rank's final clock (a victim's clock at death).
pub(crate) fn classify_failed_run(
    cfg: &DetectorConfig,
    crashed: &[RankId],
    starved: &[RankId],
    clocks: &[f64],
) -> Vec<Detection> {
    let mut out = Vec::new();
    for &r in crashed {
        out.push(Detection {
            rank: r,
            kind: DetectionKind::Crash,
            at: clocks[r] + cfg.heartbeat_timeout,
        });
    }
    if crashed.is_empty() {
        for &r in starved {
            out.push(Detection {
                rank: r,
                kind: DetectionKind::Deadlock,
                at: clocks[r] + cfg.heartbeat_timeout,
            });
        }
    }
    out
}

/// Flag stragglers on a *successful* run: ranks whose final clock is at
/// least `straggler_threshold` × the median final clock (median must be
/// positive — an all-idle run has no meaningful baseline).
pub(crate) fn detect_stragglers(cfg: &DetectorConfig, clocks: &[f64]) -> Vec<Detection> {
    let mut sorted: Vec<f64> = clocks.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    if median <= 0.0 {
        return Vec::new();
    }
    clocks
        .iter()
        .enumerate()
        .filter(|(_, &c)| c >= cfg.straggler_threshold * median)
        .map(|(rank, &c)| Detection {
            rank,
            kind: DetectionKind::Straggler,
            at: c,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let d = DetectorConfig::default();
        assert!(!d.enabled);
        assert!(DetectorConfig::with_timeout(2.0).enabled);
    }

    #[test]
    fn crash_detected_a_timeout_after_the_clock_stopped() {
        let cfg = DetectorConfig::with_timeout(0.5);
        let dets = classify_failed_run(&cfg, &[1], &[2], &[0.0, 3.0, 4.0]);
        assert_eq!(dets.len(), 1, "starved ranks are explained by the crash");
        assert_eq!(dets[0].rank, 1);
        assert_eq!(dets[0].kind, DetectionKind::Crash);
        assert!((dets[0].at - 3.5).abs() < 1e-12);
    }

    #[test]
    fn pure_starvation_is_a_deadlock() {
        let cfg = DetectorConfig::with_timeout(1.0);
        let dets = classify_failed_run(&cfg, &[], &[0, 2], &[1.0, 0.0, 2.0]);
        assert_eq!(dets.len(), 2);
        assert!(dets.iter().all(|d| d.kind == DetectionKind::Deadlock));
        assert_eq!(dets[0].rank, 0);
        assert!((dets[1].at - 3.0).abs() < 1e-12);
    }

    #[test]
    fn straggler_is_a_clock_outlier() {
        let cfg = DetectorConfig::with_timeout(1.0);
        let dets = detect_stragglers(&cfg, &[1.0, 1.1, 0.9, 5.0]);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].rank, 3);
        assert_eq!(dets[0].kind, DetectionKind::Straggler);
        assert_eq!(dets[0].at, 5.0);
        // An all-idle run has no baseline to be an outlier of.
        assert!(detect_stragglers(&cfg, &[0.0, 0.0]).is_empty());
        // A uniform group has no outliers.
        assert!(detect_stragglers(&cfg, &[1.0, 1.0, 1.0]).is_empty());
    }
}

//! The machine: spawn `P` rank threads, run a closure on each, collect
//! results, statistics and peak memory.

use crate::channel::unbounded;
use crate::memory::MemoryTracker;
use crate::rank::{Msg, Packet, Rank};
use crate::stats::{CostParams, Stats, StatsSnapshot};
use std::sync::Arc;
use std::time::Duration;

/// Machine-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Per-rank memory capacity in elements (`None` = unmetered).
    pub mem_capacity: Option<u64>,
    /// Deadlock-trap timeout for blocking receives.
    pub recv_timeout: Duration,
    /// α–β parameters for simulated-time reporting.
    pub cost: CostParams,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            mem_capacity: None,
            recv_timeout: Duration::from_secs(30),
            cost: CostParams::default(),
        }
    }
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunReport<R> {
    /// Per-rank return values, indexed by rank id.
    pub results: Vec<R>,
    /// Communication counters for the whole run.
    pub stats: StatsSnapshot,
    /// Per-rank peak live memory (elements) — compare against Eq. 11.
    pub peak_mem: Vec<u64>,
    /// Simulated communication time under the configured α–β model:
    /// the per-rank volume-based estimate (`max_r α·msgs_r + β·elems_r`).
    pub sim_time: f64,
    /// Lamport makespan: the largest per-rank logical clock at exit.
    /// Unlike `sim_time`, this respects the *dependency structure* of
    /// the schedule (tree depths, serialized shifts), making it the
    /// better who-wins metric for latency-sensitive comparisons.
    pub makespan: f64,
}

impl<R> RunReport<R> {
    /// Largest per-rank peak memory.
    pub fn max_peak_mem(&self) -> u64 {
        self.peak_mem.iter().copied().max().unwrap_or(0)
    }
}

/// The simulated distributed-memory machine.
pub struct Machine;

impl Machine {
    /// Run `body` on `p` ranks (one OS thread each) and collect results.
    ///
    /// Rank threads communicate only through their [`Rank`] handles. If
    /// any rank panics, the panic is re-raised on the caller thread
    /// (after all threads have stopped) with the rank id attached;
    /// remaining ranks blocked on receives are released by the deadlock
    /// trap.
    ///
    /// Type parameters: `T` — message element type; `R` — per-rank
    /// result.
    pub fn run<T, R, F>(p: usize, cfg: MachineConfig, body: F) -> RunReport<R>
    where
        T: Msg,
        R: Send,
        F: Fn(&Rank<T>) -> R + Send + Sync,
    {
        assert!(p > 0, "machine needs at least one rank");
        let stats = Arc::new(Stats::new(p));
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..p).map(|_| unbounded::<Packet<T>>()).unzip();
        let senders = Arc::new(senders);
        let trackers: Vec<MemoryTracker> = (0..p)
            .map(|id| MemoryTracker::new(id, cfg.mem_capacity))
            .collect();

        let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
        let clocks: Vec<std::sync::atomic::AtomicU64> = (0..p)
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect();
        let panics: std::sync::Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> =
            std::sync::Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (id, (rx, slot)) in receivers.into_iter().zip(results.iter_mut()).enumerate() {
                let rank = Rank::new(
                    id,
                    p,
                    Arc::clone(&senders),
                    rx,
                    Arc::clone(&stats),
                    trackers[id].clone(),
                    cfg.recv_timeout,
                    cfg.cost,
                );
                let body = &body;
                let panics = &panics;
                let clock_slot = &clocks[id];
                handles.push(scope.spawn(move || {
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&rank))) {
                        Ok(r) => {
                            *slot = Some(r);
                            clock_slot.store(
                                rank.clock().to_bits(),
                                std::sync::atomic::Ordering::Relaxed,
                            );
                        }
                        Err(e) => panics.lock().unwrap().push((id, e)),
                    }
                }));
            }
            for h in handles {
                // Threads never panic (they catch), so join always succeeds.
                h.join().expect("rank thread poisoned");
            }
        });

        let mut panics = panics.into_inner().unwrap();
        if let Some((id, payload)) = panics.drain(..).next() {
            eprintln!("simnet: rank {id} panicked; re-raising");
            std::panic::resume_unwind(payload);
        }

        let snapshot = stats.snapshot();
        let sim_time = snapshot.simulated_time(&cfg.cost);
        let makespan = clocks
            .iter()
            .map(|c| f64::from_bits(c.load(std::sync::atomic::Ordering::Relaxed)))
            .fold(0.0, f64::max);
        RunReport {
            results: results
                .into_iter()
                .map(|r| r.expect("rank completed"))
                .collect(),
            peak_mem: trackers.iter().map(|t| t.peak()).collect(),
            stats: snapshot,
            sim_time,
            makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let r = Machine::run::<f32, _, _>(1, MachineConfig::default(), |rank| rank.id() * 10);
        assert_eq!(r.results, vec![0]);
        assert_eq!(r.stats.total_msgs(), 0);
    }

    #[test]
    fn results_indexed_by_rank() {
        let r = Machine::run::<f32, _, _>(8, MachineConfig::default(), |rank| rank.id());
        assert_eq!(r.results, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn memory_capacity_enforced() {
        let cfg = MachineConfig {
            mem_capacity: Some(100),
            ..MachineConfig::default()
        };
        let r = Machine::run::<f32, _, _>(2, cfg, |rank| {
            let lease = rank.mem().lease(60).unwrap();
            let second = rank.mem().lease(60); // would exceed 100
            drop(lease);
            second.is_err()
        });
        assert_eq!(r.results, vec![true, true]);
        assert_eq!(r.peak_mem, vec![60, 60]);
    }

    #[test]
    fn peak_memory_reported() {
        let r = Machine::run::<f32, _, _>(3, MachineConfig::default(), |rank| {
            let _a = rank.mem().lease((rank.id() as u64 + 1) * 10).unwrap();
        });
        assert_eq!(r.peak_mem, vec![10, 20, 30]);
        assert_eq!(r.max_peak_mem(), 30);
    }

    #[test]
    #[should_panic(expected = "boom from rank 2")]
    fn rank_panic_propagates() {
        Machine::run::<f32, _, _>(4, MachineConfig::default(), |rank| {
            if rank.id() == 2 {
                panic!("boom from rank {}", rank.id());
            }
        });
    }

    #[test]
    fn makespan_single_hop() {
        // One message: makespan = α + β·n exactly.
        let cfg = MachineConfig::default();
        let n = 1000usize;
        let r = Machine::run::<f32, _, _>(2, cfg, move |rank| {
            if rank.id() == 0 {
                rank.send(1, 1, &vec![0.0; n]);
            } else {
                let _ = rank.recv(0, 1);
            }
        });
        let expect = cfg.cost.alpha + cfg.cost.beta * n as f64;
        assert!(
            (r.makespan - expect).abs() < 1e-15,
            "{} vs {expect}",
            r.makespan
        );
    }

    #[test]
    fn makespan_respects_dependency_chains() {
        // A 4-hop relay has makespan 4·(α+β) even though each rank only
        // sends once (per-rank sim_time would be 1 hop).
        let cfg = MachineConfig::default();
        let r = Machine::run::<f32, _, _>(5, cfg, move |rank| {
            if rank.id() == 0 {
                rank.send(1, 1, &[1.0]);
            } else {
                let v = rank.recv(rank.id() - 1, 1);
                if rank.id() < 4 {
                    rank.send(rank.id() + 1, 1, &v);
                }
            }
        });
        let hop = cfg.cost.alpha + cfg.cost.beta;
        assert!(
            (r.makespan - 4.0 * hop).abs() < 1e-15,
            "relay makespan {} vs {}",
            r.makespan,
            4.0 * hop
        );
        // The volume-based estimate cannot see the chain.
        assert!(r.sim_time < r.makespan);
    }

    #[test]
    fn makespan_tree_depth_not_volume() {
        // Binomial bcast among 8: makespan grows with depth (3 levels),
        // not with total volume (7 messages).
        use crate::comm::Communicator;
        let cfg = MachineConfig::default();
        let n = 1usize << 14;
        let r = Machine::run::<f32, _, _>(8, cfg, move |rank| {
            let comm = Communicator::world(rank);
            let mut buf = vec![0.0f32; n];
            comm.bcast(0, &mut buf);
        });
        let hop = cfg.cost.alpha + cfg.cost.beta * n as f64;
        // Root sends its 3 children serially; the last child's subtree
        // is shallow — classic binomial: makespan = 3 hops (depth) and
        // at most ~(log2 P + small) hops, never the 7 hops of volume.
        assert!(
            r.makespan >= 3.0 * hop * 0.99,
            "{} vs {}",
            r.makespan,
            3.0 * hop
        );
        assert!(r.makespan <= 4.0 * hop, "{} vs {}", r.makespan, 4.0 * hop);
    }

    #[test]
    fn sim_time_positive_when_traffic() {
        let r = Machine::run::<f32, _, _>(2, MachineConfig::default(), |rank| {
            if rank.id() == 0 {
                rank.send(1, 1, &[0.0; 1000]);
            } else {
                let _ = rank.recv(0, 1);
            }
        });
        assert!(r.sim_time > 0.0);
    }
}
